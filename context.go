package psharp

import (
	"fmt"

	"github.com/psharp-go/psharp/internal/vclock"
)

// Context is the handle actions use to interact with the runtime: sending
// events, creating machines, controlled nondeterminism, assertions, and
// state-machine effects (Goto/Raise/Halt). A Context is only valid inside
// the action it is passed to.
//
// Monitor actions receive a restricted Context: Assert, Goto, Raise and
// Logf work as for machines, but Send, CreateMachine, Halt, RandomBool,
// RandomInt, Read and Write are forbidden — a specification monitor
// passively observes the program and must not influence it. Calling a
// forbidden operation fails the iteration with BugMonitor.
type Context struct {
	m   *machineInstance
	mon *monitorInstance // non-nil when the context belongs to a monitor
	rt  *Runtime

	currentEvent Event
	pendingGoto  string
	pendingRaise Event
	pendingHalt  bool
}

// monitorForbids panics (reported as BugMonitor by the observing dispatch)
// when a monitor action calls an operation reserved for machines.
func (c *Context) monitorForbids(op string) {
	if c.mon != nil {
		panic(assertFailed{msg: fmt.Sprintf("monitors cannot %s: they are passive observers", op)})
	}
}

func (c *Context) resetPending() {
	c.pendingGoto = ""
	c.pendingRaise = nil
	c.pendingHalt = false
}

func (c *Context) takePending() (halt bool, gotoState string, raised Event) {
	halt, gotoState, raised = c.pendingHalt, c.pendingGoto, c.pendingRaise
	c.resetPending()
	return halt, gotoState, raised
}

// ID returns the machine's identifier. For a monitor context the ID carries
// the monitor's name with a zero sequence (monitors are not schedulable
// machines, so their IDs are never valid send targets).
func (c *Context) ID() MachineID {
	if c.mon != nil {
		return MachineID{Type: c.mon.name}
	}
	return c.m.id
}

// State returns the name of the machine's (or monitor's) current state.
func (c *Context) State() string {
	if c.mon != nil {
		return c.mon.state
	}
	return c.m.state
}

// Send enqueues ev in target's event queue. In bug-finding mode this is a
// scheduling point (the paper's send operation, Section 6.2).
func (c *Context) Send(target MachineID, ev Event) {
	c.monitorForbids("Send")
	if ev == nil {
		panic(assertFailed{msg: fmt.Sprintf("%s: Send of nil event", c.m.id)})
	}
	if target.IsNil() {
		panic(assertFailed{msg: fmt.Sprintf("%s: Send(%s) to nil machine", c.m.id, eventName(ev))})
	}
	c.rt.enqueue(target, ev, c.m.id, true)
}

// CreateMachine instantiates a new machine of the registered type and
// returns its ID. payload (which may be nil) is passed to the initial
// state's entry action. In bug-finding mode this is a scheduling point.
func (c *Context) CreateMachine(machineType string, payload Event) MachineID {
	c.monitorForbids("CreateMachine")
	id, err := c.rt.create(machineType, payload, c.m)
	if err != nil {
		panic(assertFailed{msg: err.Error()})
	}
	return id
}

// RandomBool returns a controlled nondeterministic boolean. Under the
// testing runtime the value is chosen by the scheduling strategy and
// recorded in the trace, so buggy schedules replay deterministically; under
// the production runtime it is pseudo-random.
func (c *Context) RandomBool() bool {
	c.monitorForbids("RandomBool")
	return c.rt.randomBool(c.m)
}

// RandomInt returns a controlled nondeterministic integer in [0, n).
func (c *Context) RandomInt(n int) int {
	c.monitorForbids("RandomInt")
	if n <= 0 {
		panic(assertFailed{msg: fmt.Sprintf("%s: RandomInt(%d): n must be positive", c.m.id, n)})
	}
	return c.rt.randomInt(c.m, n)
}

// Assert checks a safety property; a violation is reported as a bug (and in
// bug-finding mode terminates the iteration with a replayable trace).
func (c *Context) Assert(cond bool, format string, args ...any) {
	if !cond {
		panic(assertFailed{msg: fmt.Sprintf(format, args...)})
	}
}

// Goto requests a transition to the named state once the current action
// returns. The target state's entry action receives the event that was
// being handled. At most one of Goto/Raise/Halt may be pending.
func (c *Context) Goto(state string) {
	c.checkNoPending("Goto")
	if _, ok := c.schema().states[state]; !ok {
		panic(assertFailed{msg: fmt.Sprintf("%s: Goto(%q): no such state", c.ID(), state)})
	}
	c.pendingGoto = state
}

// schema returns the dispatching schema of the context's owner.
func (c *Context) schema() *compiledSchema {
	if c.mon != nil {
		return c.mon.schema
	}
	return c.m.schema
}

// Raise requests that ev be handled immediately after the current action
// returns, bypassing the event queue.
func (c *Context) Raise(ev Event) {
	c.checkNoPending("Raise")
	if ev == nil {
		panic(assertFailed{msg: fmt.Sprintf("%s: Raise of nil event", c.ID())})
	}
	c.pendingRaise = ev
}

// Halt terminates the machine once the current action returns; queued
// events are dropped and later sends to it are discarded.
func (c *Context) Halt() {
	c.monitorForbids("Halt")
	c.checkNoPending("Halt")
	c.pendingHalt = true
}

func (c *Context) checkNoPending(op string) {
	if c.pendingGoto != "" || c.pendingRaise != nil || c.pendingHalt {
		panic(assertFailed{msg: fmt.Sprintf("%s: %s: another Goto/Raise/Halt is already pending", c.ID(), op)})
	}
}

// Logf writes a formatted message to the runtime log (if configured).
func (c *Context) Logf(format string, args ...any) {
	if c.mon != nil {
		c.rt.logf("monitor %s: %s", c.mon.name, fmt.Sprintf(format, args...))
		return
	}
	c.rt.logf("%s: %s", c.m.id, fmt.Sprintf(format, args...))
}

// Read instruments a read of the named shared location for the
// happens-before race detector (active only in RD-on testing mode; a no-op
// otherwise). Race-free P# programs never trigger reports, which is exactly
// what makes the paper's RD-off optimization sound once the static analysis
// has verified the program.
func (c *Context) Read(location string) {
	c.monitorForbids("Read")
	c.rt.access(c.m, location, vclock.Read)
}

// Write instruments a write of the named shared location; see Read.
func (c *Context) Write(location string) {
	c.monitorForbids("Write")
	c.rt.access(c.m, location, vclock.Write)
}
