package psharp_test

import (
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/obs"
	"github.com/psharp-go/psharp/sct"
)

// TestCoverageRecordsDispatchedTransitions checks that a coverage set
// attached via TestConfig.Coverage accumulates the (machine, state, event)
// triples that bug-finding iterations actually dispatch.
func TestCoverageRecordsDispatchedTransitions(t *testing.T) {
	var cov obs.StateEventCoverage
	dfs := sct.NewDFS()
	dfs.PrepareIteration(0)
	res := psharp.RunTest(func(r *psharp.Runtime) {
		r.MustRegister("Gate", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Closed").
					OnEventGoto(&evB{}, "Open")
				sc.State("Open").
					OnEventDo(&evA{}, func(ctx *psharp.Context, ev psharp.Event) {})
			})
		})
		id := r.MustCreate("Gate", nil)
		mustSend(t, r, id, &evB{})
		mustSend(t, r, id, &evA{})
	}, psharp.TestConfig{Strategy: dfs, MaxSteps: 10000, Coverage: &cov})
	if res.Bug != nil {
		t.Fatalf("bug: %v", res.Bug)
	}
	if got := cov.Distinct(); got != 2 {
		t.Fatalf("distinct transitions = %d, want 2 (%+v)", got, cov.Snapshot())
	}
	snap := cov.Snapshot()
	want := []obs.Transition{
		{Machine: "Gate", State: "Closed", Event: "evB"},
		{Machine: "Gate", State: "Open", Event: "evA"},
	}
	for i, w := range want {
		if snap[i].Transition != w {
			t.Fatalf("transition[%d] = %+v, want %+v", i, snap[i].Transition, w)
		}
		if snap[i].Count != 1 {
			t.Fatalf("transition[%d] count = %d, want 1", i, snap[i].Count)
		}
	}
}

// TestProductionRuntimeMetrics checks the always-on operational counters of
// a production-mode runtime, plus WithCoverage.
func TestProductionRuntimeMetrics(t *testing.T) {
	var cov obs.StateEventCoverage
	r := psharp.NewRuntime(psharp.WithCoverage(&cov))
	handled := make(chan struct{}, 8)
	r.MustRegister("Sink", func() psharp.Machine {
		return psharp.MachineFunc(func(sc *psharp.Schema) {
			sc.Start("S").
				OnEventDo(&evA{}, func(ctx *psharp.Context, ev psharp.Event) { handled <- struct{}{} }).
				OnEventGoto(&evB{}, "Done")
			sc.State("Done")
		})
	})
	id := r.MustCreate("Sink", nil)
	for i := 0; i < 3; i++ {
		if err := r.SendEvent(id, &evA{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	m := r.Metrics()
	if m.Creates != 1 {
		t.Fatalf("creates = %d, want 1", m.Creates)
	}
	if m.Sends != 3 {
		t.Fatalf("sends = %d, want 3", m.Sends)
	}
	if m.MailboxMax < 1 {
		t.Fatalf("mailbox max = %d, want >= 1", m.MailboxMax)
	}
	if got := cov.Distinct(); got != 1 {
		t.Fatalf("distinct transitions = %d, want 1 (%+v)", got, cov.Snapshot())
	}
	r.Stop()
}
