package psharp_test

// Tests for the reusable TestHarness: behavioural equivalence with one-shot
// RunTest across many recycled iterations, and the allocation-regression
// caps that keep the exploration hot path near zero allocations.

import (
	"bytes"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

type evSpin struct {
	psharp.EventBase
	Left int
}

type evBallot struct {
	psharp.EventBase
	From psharp.MachineID
}

// spinSetup builds a single machine that bounces one preallocated event to
// itself n times and halts. The program itself allocates nothing per step,
// so it isolates the runtime's own per-scheduling-point allocations. The
// spinner keeps its state in the event, so it can use the static
// declaration form (its schema is compiled once per harness, not per
// iteration).
func spinSetup(n int) func(*psharp.Runtime) {
	spin := psharp.StaticMachineFunc(func(sc *psharp.Schema) {
		sc.Start("Spin").
			OnEventDo(&evSpin{}, func(ctx *psharp.Context, ev psharp.Event) {
				e := ev.(*evSpin)
				if e.Left == 0 {
					ctx.Halt()
					return
				}
				e.Left--
				ctx.Send(ctx.ID(), e)
			})
	})
	return func(r *psharp.Runtime) {
		r.MustRegister("Spinner", func() psharp.Machine { return spin })
		id := r.MustCreate("Spinner", nil)
		if err := r.SendEvent(id, &evSpin{Left: n}); err != nil {
			panic(err)
		}
	}
}

// ballotSetup builds an interleaving- and choice-sensitive program: voters
// race their ballots to a collector, which asserts creation-order arrival,
// and each voter flips a controlled coin that decides whether it halts or
// re-sends. It exercises sends, creates, blocking, halting, deferred
// controlled choices, and both buggy and clean schedules.
func ballotSetup() func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Collector", func() psharp.Machine {
			var first psharp.MachineID
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Collect").
					OnEventDo(&evBallot{}, func(ctx *psharp.Context, ev psharp.Event) {
						from := ev.(*evBallot).From
						if first.IsNil() {
							first = from
							return
						}
						ctx.Assert(first.Seq < from.Seq, "ballots arrived out of creation order")
					})
			})
		})
		r.MustRegister("Voter", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Vote").
					OnEventDo(&evBallot{}, func(ctx *psharp.Context, ev psharp.Event) {
						target := ev.(*evBallot).From
						ctx.Send(target, &evBallot{From: ctx.ID()})
						if ctx.RandomBool() || ctx.RandomInt(3) == 0 {
							ctx.Halt()
						}
					})
			})
		})
		collector := r.MustCreate("Collector", nil)
		for i := 0; i < 3; i++ {
			v := r.MustCreate("Voter", nil)
			if err := r.SendEvent(v, &evBallot{From: collector}); err != nil {
				panic(err)
			}
		}
	}
}

// Static twins of ballotSetup's machines, identical to the closure form
// line for line except that the instance arrives as a parameter. Used by
// the declaration-form equivalence test.

type sbCollector struct {
	psharp.StaticBase
	first psharp.MachineID
}

func (*sbCollector) ConfigureType(sc *psharp.Schema) {
	sc.Start("Collect").
		OnEventDoM(&evBallot{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*sbCollector)
			from := ev.(*evBallot).From
			if c.first.IsNil() {
				c.first = from
				return
			}
			ctx.Assert(c.first.Seq < from.Seq, "ballots arrived out of creation order")
		})
}

type sbVoter struct{ psharp.StaticBase }

func (*sbVoter) ConfigureType(sc *psharp.Schema) {
	sc.Start("Vote").
		OnEventDo(&evBallot{}, func(ctx *psharp.Context, ev psharp.Event) {
			target := ev.(*evBallot).From
			ctx.Send(target, &evBallot{From: ctx.ID()})
			if ctx.RandomBool() || ctx.RandomInt(3) == 0 {
				ctx.Halt()
			}
		})
}

// staticBallotSetup is ballotSetup with the machines in static form.
func staticBallotSetup() func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Collector", func() psharp.Machine { return &sbCollector{} })
		r.MustRegister("Voter", func() psharp.Machine { return &sbVoter{} })
		collector := r.MustCreate("Collector", nil)
		for i := 0; i < 3; i++ {
			v := r.MustCreate("Voter", nil)
			if err := r.SendEvent(v, &evBallot{From: collector}); err != nil {
				panic(err)
			}
		}
	}
}

func encodeTrace(t *testing.T, tr *psharp.Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestHarnessMatchesRunTest checks that a recycled harness behaves exactly
// like a fresh one-shot RunTest on every iteration: same bug, same counts,
// and byte-identical traces — i.e. recycling leaks no state between runs.
func TestHarnessMatchesRunTest(t *testing.T) {
	setup := ballotSetup()
	h := psharp.NewTestHarness(setup)
	defer h.Close()
	sawBug, sawClean := false, false
	for i := 0; i < 25; i++ {
		seed := uint64(i) + 1
		pooled := h.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 500})
		oneshot := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 500})
		if (pooled.Bug == nil) != (oneshot.Bug == nil) {
			t.Fatalf("seed %d: pooled bug %v, one-shot bug %v", seed, pooled.Bug, oneshot.Bug)
		}
		if pooled.Bug != nil {
			sawBug = true
			if pooled.Bug.Kind != oneshot.Bug.Kind || pooled.Bug.Message != oneshot.Bug.Message {
				t.Fatalf("seed %d: pooled bug %v, one-shot bug %v", seed, pooled.Bug, oneshot.Bug)
			}
		} else {
			sawClean = true
		}
		if pooled.SchedulingPoints != oneshot.SchedulingPoints || pooled.Machines != oneshot.Machines {
			t.Fatalf("seed %d: pooled (SP=%d, M=%d), one-shot (SP=%d, M=%d)", seed,
				pooled.SchedulingPoints, pooled.Machines, oneshot.SchedulingPoints, oneshot.Machines)
		}
		if a, b := encodeTrace(t, pooled.Trace), encodeTrace(t, oneshot.Trace); a != b {
			t.Fatalf("seed %d: traces diverge:\npooled:\n%s\none-shot:\n%s", seed, a, b)
		}
	}
	if !sawBug || !sawClean {
		t.Fatalf("test program not exercising both outcomes (bug=%v clean=%v); strengthen the setup", sawBug, sawClean)
	}
}

// TestDeclarationFormsEquivalent checks that the static and closure
// declaration forms of the same machine are behaviorally indistinguishable
// across recycled harness iterations: same bug (or none), same counts, and
// byte-identical traces for every seed — while only the static harness
// gets to reuse compiled schemas.
func TestDeclarationFormsEquivalent(t *testing.T) {
	hStatic := psharp.NewTestHarness(staticBallotSetup())
	defer hStatic.Close()
	hClosure := psharp.NewTestHarness(ballotSetup())
	defer hClosure.Close()
	sawBug, sawClean := false, false
	for i := 0; i < 25; i++ {
		seed := uint64(i) + 1
		static := hStatic.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 500})
		closure := hClosure.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 500})
		if (static.Bug == nil) != (closure.Bug == nil) {
			t.Fatalf("seed %d: static bug %v, closure bug %v", seed, static.Bug, closure.Bug)
		}
		if static.Bug != nil {
			sawBug = true
			if static.Bug.Kind != closure.Bug.Kind || static.Bug.Message != closure.Bug.Message {
				t.Fatalf("seed %d: static bug %v, closure bug %v", seed, static.Bug, closure.Bug)
			}
		} else {
			sawClean = true
		}
		if static.SchedulingPoints != closure.SchedulingPoints || static.Machines != closure.Machines {
			t.Fatalf("seed %d: static (SP=%d, M=%d), closure (SP=%d, M=%d)", seed,
				static.SchedulingPoints, static.Machines, closure.SchedulingPoints, closure.Machines)
		}
		if a, b := encodeTrace(t, static.Trace), encodeTrace(t, closure.Trace); a != b {
			t.Fatalf("seed %d: traces diverge:\nstatic:\n%s\nclosure:\n%s", seed, a, b)
		}
	}
	if !sawBug || !sawClean {
		t.Fatalf("test program not exercising both outcomes (bug=%v clean=%v); strengthen the setup", sawBug, sawClean)
	}
	// The static harness compiled one schema per type, ever; the closure
	// harness compiled one per machine instance per iteration.
	if got := hStatic.SchemaCompiles(); got != 2 {
		t.Errorf("static harness schema compiles = %d, want 2", got)
	}
	if got := hClosure.SchemaCompiles(); got < 25*4 {
		t.Errorf("closure harness schema compiles = %d, want >= %d (one per instance per iteration)", got, 25*4)
	}
}

// harnessAllocs measures steady-state allocations per iteration through a
// warmed-up harness, and returns the scheduling points of one iteration.
func harnessAllocs(t *testing.T, rounds int) (allocs float64, sp int) {
	t.Helper()
	h := psharp.NewTestHarness(spinSetup(rounds))
	defer h.Close()
	strategy := sct.NewRandom(1)
	cfg := psharp.TestConfig{Strategy: strategy, MaxSteps: 0}
	for i := 0; i < 5; i++ { // warm the pools and grow every buffer
		strategy.PrepareIteration(i)
		sp = h.Run(cfg).SchedulingPoints
	}
	iter := 5
	allocs = testing.AllocsPerRun(100, func() {
		strategy.PrepareIteration(iter)
		iter++
		h.Run(cfg)
	})
	return allocs, sp
}

// TestHarnessAllocationCaps is the allocation-regression test: it asserts a
// hard cap on steady-state allocations per iteration through the reusable
// harness, and a near-zero cap on the marginal allocations per scheduling
// point (the ready-list scheduler and recycled buffers make extra steps
// free; only per-machine setup work remains).
func TestHarnessAllocationCaps(t *testing.T) {
	allocsShort, spShort := harnessRound(t, 32)
	allocsLong, spLong := harnessRound(t, 512)

	// Per-iteration budget: with the spinner's schema compiled once per
	// harness (static declaration) and every buffer recycled, an iteration
	// costs a couple of allocations of setup wiring. The seed's RunTest
	// needed hundreds for the same program and the pre-cache harness ~8;
	// even one machine's schema rebuild (builder, state table, handler
	// slice, frozen form) blows this cap, so schema work cannot silently
	// return to the per-iteration path.
	const perIterationCap = 6
	if allocsShort > perIterationCap {
		t.Errorf("steady-state allocations per iteration = %.1f, want <= %d", allocsShort, perIterationCap)
	}

	// Marginal cost of a scheduling point: with the ready list, trace
	// buffer, and queue slices recycled, extra steps must not allocate.
	perSP := (allocsLong - allocsShort) / float64(spLong-spShort)
	if perSP > 0.05 {
		t.Errorf("marginal allocations per scheduling point = %.4f (%.1f -> %.1f allocs for %d -> %d SPs), want <= 0.05",
			perSP, allocsShort, allocsLong, spShort, spLong)
	}
}

func harnessRound(t *testing.T, rounds int) (float64, int) {
	allocs, sp := harnessAllocs(t, rounds)
	if sp < rounds {
		t.Fatalf("spin program with %d rounds took only %d scheduling points", rounds, sp)
	}
	return allocs, sp
}

// TestProtocolAllocationCap locks in the schema-cache win on a real
// protocol workload: TwoPhaseCommit creates six machines of five static
// types per iteration, and with their schemas compiled once per type the
// pooled steady state measures ~70 allocs/iteration (it was 163.8 when
// every create rebuilt its machine's schema, and ~155 with the cache
// disabled). The cap sits between the two regimes so any per-instance
// schema rebuild sneaking back in fails the test.
func TestProtocolAllocationCap(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommit", true)
	h := psharp.NewTestHarness(b.Setup)
	defer h.Close()
	strategy := sct.NewRandom(1)
	cfg := psharp.TestConfig{Strategy: strategy, MaxSteps: b.MaxSteps}
	iter := 0
	for ; iter < 5; iter++ { // warm the pools and grow every buffer
		strategy.PrepareIteration(iter)
		h.Run(cfg)
	}
	allocs := testing.AllocsPerRun(100, func() {
		strategy.PrepareIteration(iter)
		iter++
		h.Run(cfg)
	})
	const protocolCap = 100
	if allocs > protocolCap {
		t.Errorf("TwoPhaseCommit steady-state allocations per iteration = %.1f, want <= %d", allocs, protocolCap)
	}
	t.Logf("TwoPhaseCommit allocs/iteration through warmed harness: %.1f", allocs)
}

// TestStaticSchemasCompileOncePerHarness asserts the compile-once
// discipline end to end: a harness running a protocol whose machines all
// use the static declaration form compiles exactly one schema per machine
// type, across however many recycled iterations (and machine creates)
// follow.
func TestStaticSchemasCompileOncePerHarness(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommit", true)
	const types = 5 // coordinator, participant, checker, timer, logger
	h := psharp.NewTestHarness(b.Setup)
	defer h.Close()
	strategy := sct.NewRandom(1)
	for i := 0; i < 10; i++ {
		strategy.PrepareIteration(i)
		h.Run(psharp.TestConfig{Strategy: strategy, MaxSteps: b.MaxSteps})
	}
	if got := h.SchemaCompiles(); got != types {
		t.Errorf("schema compiles across 10 iterations = %d, want %d (once per type)", got, types)
	}
	if got := h.CachedSchemas(); got != types {
		t.Errorf("cached schemas = %d, want %d", got, types)
	}
}

// TestStaticSchemasCompileOncePerRuntime covers the production runtime: N
// creates of one static type share the schema compiled at registration.
func TestStaticSchemasCompileOncePerRuntime(t *testing.T) {
	r := psharp.NewRuntime()
	r.MustRegister("Spinner", func() psharp.Machine {
		return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
			sc.Start("Spin").Ignore(&evSpin{})
		})
	})
	for i := 0; i < 8; i++ {
		r.MustCreate("Spinner", nil)
	}
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	r.Stop()
	if got := r.SchemaCompiles(); got != 1 {
		t.Errorf("schema compiles for 8 creates of one static type = %d, want 1", got)
	}
}

// TestInvalidStaticSchemaFailsAtRegister locks Register's error contract:
// a static machine with an invalid schema is rejected at registration,
// whether the per-type cache is enabled or not.
func TestInvalidStaticSchemaFailsAtRegister(t *testing.T) {
	bad := psharp.StaticMachineFunc(func(sc *psharp.Schema) {
		sc.Start("A")
		sc.Start("B") // duplicate start state
	})
	for _, tc := range []struct {
		name string
		opts []psharp.Option
	}{
		{"cached", nil},
		{"cache-off", []psharp.Option{psharp.WithoutSchemaCache()}},
	} {
		r := psharp.NewRuntime(tc.opts...)
		if err := r.Register("Bad", func() psharp.Machine { return bad }); err == nil {
			t.Errorf("%s: Register accepted an invalid static schema", tc.name)
		}
	}
}

// TestHarnessHalvesAllocations pins the headline perf claim: the pooled
// harness allocates less than half of what per-iteration RunTest allocates
// for the same workload (it is typically far below half).
func TestHarnessHalvesAllocations(t *testing.T) {
	setup := spinSetup(64)

	oneshotStrategy := sct.NewRandom(1)
	oneshotIter := 0
	oneshot := testing.AllocsPerRun(50, func() {
		oneshotStrategy.PrepareIteration(oneshotIter)
		oneshotIter++
		psharp.RunTest(setup, psharp.TestConfig{Strategy: oneshotStrategy})
	})

	pooled, _ := harnessAllocs(t, 64)
	if pooled > oneshot/2 {
		t.Errorf("pooled harness allocates %.1f/iteration vs one-shot RunTest %.1f: want <= 50%%", pooled, oneshot)
	}
	t.Logf("allocs/iteration: one-shot RunTest %.1f, pooled harness %.1f (%.1f%% saved)",
		oneshot, pooled, 100*(1-pooled/oneshot))
}

// TestHarnessCloseIsIdempotentAndGuarded covers the harness lifecycle edges.
func TestHarnessCloseIsIdempotentAndGuarded(t *testing.T) {
	h := psharp.NewTestHarness(spinSetup(4))
	h.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(1))})
	h.Close()
	h.Close() // second Close is a no-op
	defer func() {
		if recover() == nil {
			t.Error("Run after Close did not panic")
		}
	}()
	h.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(1))})
}
