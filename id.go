package psharp

import "fmt"

// MachineID identifies a machine instance. IDs are assigned sequentially in
// creation order, which makes them deterministic under the serialized
// testing runtime and therefore usable in schedule traces.
//
// The zero value is not a valid machine.
type MachineID struct {
	// Type is the registered machine type name.
	Type string
	// Seq is the 1-based global creation index.
	Seq uint64
}

// IsNil reports whether the ID is the zero (invalid) ID.
func (id MachineID) IsNil() bool { return id.Seq == 0 }

func (id MachineID) String() string {
	if id.IsNil() {
		return "<nil-machine>"
	}
	return fmt.Sprintf("%s(%d)", id.Type, id.Seq)
}
