package psharp

import (
	"io"
	"sync"

	"github.com/psharp-go/psharp/internal/vclock"
)

// TestHarness runs bug-finding iterations of one program repeatedly while
// recycling every piece of per-iteration machinery: the serialized Runtime,
// machine instances and their Contexts, event-queue slices, resume channels,
// a pool of parked machine goroutines, and the trace buffer. Rebuilding all
// of that dominated the cost of short schedules, so an exploration engine
// that calls Run thousands of times (the paper's Table 2 setup) should hold
// one harness per worker instead of calling RunTest per iteration.
//
// A harness is NOT safe for concurrent use: each exploration worker owns its
// own. Close releases the parked goroutine pool; after Close the harness
// must not be used again.
type TestHarness struct {
	setup  func(*Runtime)
	rt     *Runtime
	c      *controller
	closed bool

	// baseSeed and baseLog preserve what the construction Options set, so
	// reset restores them every Run instead of silently discarding them.
	baseSeed uint64
	baseLog  io.Writer
}

// NewTestHarness returns a harness that executes the program constructed by
// setup. setup runs once per Run call, against a recycled Runtime.
//
// The harness keeps the runtime's per-type compiled-schema cache across
// iterations: setup re-registers its machine types every Run, but a type
// whose schema is already cached is not recompiled, so static-form
// machines pay zero schema allocations from iteration 2 on. This assumes
// setup registers the same declaration under the same type name every
// iteration — which any deterministic setup does.
func NewTestHarness(setup func(*Runtime), opts ...Option) *TestHarness {
	rt := &Runtime{
		factories:      make(map[string]func() Machine),
		schemas:        make(map[string]*compiledSchema),
		monitorSchemas: make(map[string]*compiledSchema),
		rngState:       1,
	}
	rt.qcond = sync.NewCond(&rt.mu)
	for _, o := range opts {
		o(rt)
	}
	c := &controller{rt: rt, yield: make(chan yieldMsg), trace: &Trace{}}
	rt.test = c
	return &TestHarness{setup: setup, rt: rt, c: c, baseSeed: rt.rngState, baseLog: rt.logw}
}

// Run executes one bug-finding iteration, exactly like RunTest but against
// the harness's recycled machinery.
//
// The returned result's Trace aliases the harness's reusable buffer: it is
// valid only until the next Run call. Callers that retain it (to replay a
// bug later) must copy it with Trace.Clone first.
func (h *TestHarness) Run(cfg TestConfig) IterationResult {
	if cfg.Strategy == nil {
		panic("psharp: TestHarness.Run requires a Strategy")
	}
	if h.closed {
		panic("psharp: Run on a closed TestHarness")
	}
	h.reset(cfg)
	h.setup(h.rt)
	h.c.loop()

	c := h.c
	res := IterationResult{
		Bug:              c.bug,
		Interrupted:      c.interrupted,
		Pruned:           c.pruned,
		BoundReached:     c.bound,
		SchedulingPoints: c.steps,
		Machines:         len(h.rt.machines),
		Trace:            c.trace,
		Faults:           c.faults,
	}
	if c.det != nil {
		for _, r := range c.det.Races() {
			res.Races = append(res.Races, r.String())
		}
	}
	h.park()
	return res
}

// reset rewinds the runtime and controller to their pre-setup state while
// retaining every allocation: the factories map is cleared in place and all
// slices are truncated with their capacity kept. The compiled-schema caches
// (rt.schemas and rt.monitorSchemas) deliberately survive: schemas are
// per-type, not per-iteration, so recompiling them would be pure waste.
func (h *TestHarness) reset(cfg TestConfig) {
	rt, c := h.rt, h.c
	clear(rt.factories)
	rt.nextSeq, rt.sendSeq = 0, 0
	rt.busy = 0
	rt.failure = nil
	rt.stopped = false
	rt.rngState = h.baseSeed
	rt.cover = cfg.Coverage
	rt.logw = cfg.Log
	if cfg.Log == nil {
		rt.logw = h.baseLog // WithLog default when the iteration sets none
	}

	c.cfg = cfg
	c.setDecider()
	c.faults = FaultStats{}
	c.instances = c.instances[:0]
	c.statuses = c.statuses[:0]
	c.ready = c.ready[:0]
	c.current = MachineID{}
	c.steps = 0
	c.bug = nil
	c.bound = false
	c.interrupted = false
	c.aborting.Store(false)
	c.trace.Decisions = c.trace.Decisions[:0]
	c.det = nil
	if cfg.RaceDetect {
		c.det = vclock.NewDetector()
	}
}

// park returns every machine instance of the finished iteration to the
// freelist, and every monitor instance to the per-name monitor pool. Their
// goroutines stay parked on their job channels; only called after the
// controller's teardown has joined all of them, so the field resets cannot
// race with machine code.
func (h *TestHarness) park() {
	rt, c := h.rt, h.c
	for i, m := range rt.machines {
		m.recycle()
		c.free = append(c.free, m)
		rt.machines[i] = nil
	}
	rt.machines = rt.machines[:0]
	for i, mon := range rt.monitors {
		// Drop all per-iteration state; the next RegisterMonitor of the same
		// name reuses the instance (and its Context) with fresh logic.
		mon.logic = nil
		mon.state = ""
		mon.hot = false
		mon.temp = 0
		mon.ctx.currentEvent = nil
		mon.ctx.resetPending()
		if c.freeMons == nil {
			c.freeMons = make(map[string]*monitorInstance)
		}
		c.freeMons[mon.name] = mon
		rt.monitors[i] = nil
	}
	rt.monitors = rt.monitors[:0]
}

// Close releases the pool of parked machine goroutines. The harness must be
// idle (no Run in progress); using it after Close panics.
func (h *TestHarness) Close() {
	if h.closed {
		return
	}
	h.closed = true
	for _, m := range h.c.free {
		close(m.job)
	}
	h.c.free = nil
}
