package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for the core language.
type parser struct {
	lex *lexer
	tok Token
}

// Parse parses a compilation unit. The returned program has not been
// checked; call Check before analysis or interpretation.
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != TokEOF {
		switch {
		case p.isKeyword("event"):
			d, err := p.parseEvent()
			if err != nil {
				return nil, err
			}
			prog.Events = append(prog.Events, d)
		case p.isKeyword("class"):
			d, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			prog.Classes = append(prog.Classes, d)
		case p.isKeyword("machine"):
			d, err := p.parseMachine("machine")
			if err != nil {
				return nil, err
			}
			prog.Machines = append(prog.Machines, d)
		case p.isKeyword("monitor"):
			d, err := p.parseMachine("monitor")
			if err != nil {
				return nil, err
			}
			d.IsMonitor = true
			prog.Monitors = append(prog.Monitors, d)
		default:
			return nil, p.errorf("expected 'event', 'class', 'machine' or 'monitor', got %s", p.tok)
		}
	}
	return prog, nil
}

// MustParse parses src and panics on error; for tests and embedded sources.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("lang: %s: %s", p.tok.Pos, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %q, got %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expect(kind TokenKind, what string) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, p.errorf("expected %s, got %s", what, p.tok)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) parseIdent() (string, Pos, error) {
	pos := p.tok.Pos
	t, err := p.expect(TokIdent, "identifier")
	return t.Text, pos, err
}

func (p *parser) parseType() (Type, error) {
	if p.tok.Kind == TokKeyword {
		switch p.tok.Text {
		case "int", "bool", "machine":
			name := p.tok.Text
			return Type{Name: name}, p.advance()
		}
	}
	if p.tok.Kind == TokIdent {
		name := p.tok.Text
		return Type{Name: name}, p.advance()
	}
	return Type{}, p.errorf("expected a type, got %s", p.tok)
}

func (p *parser) parseEvent() (*EventDecl, error) {
	pos := p.tok.Pos
	if err := p.expectKeyword("event"); err != nil {
		return nil, err
	}
	name, _, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return &EventDecl{Name: name, Pos: pos}, nil
}

func (p *parser) parseVarDecl() (*VarDecl, error) {
	pos := p.tok.Pos
	if err := p.expectKeyword("var"); err != nil {
		return nil, err
	}
	name, _, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon, "':'"); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return &VarDecl{Name: name, Type: typ, Pos: pos}, nil
}

func (p *parser) parseMethod() (*MethodDecl, error) {
	pos := p.tok.Pos
	if err := p.expectKeyword("method"); err != nil {
		return nil, err
	}
	name, _, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	var params []*VarDecl
	for p.tok.Kind != TokRParen {
		if len(params) > 0 {
			if _, err := p.expect(TokComma, "','"); err != nil {
				return nil, err
			}
		}
		pname, ppos, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon, "':'"); err != nil {
			return nil, err
		}
		ptyp, err := p.parseType()
		if err != nil {
			return nil, err
		}
		params = append(params, &VarDecl{Name: pname, Type: ptyp, Pos: ppos})
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	var result *Type
	if p.tok.Kind == TokColon {
		if err := p.advance(); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		result = &typ
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &MethodDecl{Name: name, Params: params, Result: result, Body: body, Pos: pos}, nil
}

func (p *parser) parseClass() (*ClassDecl, error) {
	pos := p.tok.Pos
	if err := p.expectKeyword("class"); err != nil {
		return nil, err
	}
	name, _, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	cd := &ClassDecl{Name: name, Pos: pos}
	for p.tok.Kind != TokRBrace {
		switch {
		case p.isKeyword("var"):
			f, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			cd.Fields = append(cd.Fields, f)
		case p.isKeyword("method"):
			m, err := p.parseMethod()
			if err != nil {
				return nil, err
			}
			cd.Methods = append(cd.Methods, m)
		default:
			return nil, p.errorf("expected 'var' or 'method' in class, got %s", p.tok)
		}
	}
	return cd, p.advance()
}

// parseMachine parses a machine or monitor declaration; kw is the
// introducing keyword ("machine" or "monitor") — the two share their whole
// grammar except that monitor states may carry hot/cold annotations (the
// checker enforces the monitor-only rules).
func (p *parser) parseMachine(kw string) (*MachineDecl, error) {
	pos := p.tok.Pos
	if err := p.expectKeyword(kw); err != nil {
		return nil, err
	}
	name, _, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	md := &MachineDecl{Name: name, Pos: pos}
	for p.tok.Kind != TokRBrace {
		switch {
		case p.isKeyword("var"):
			f, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			md.Fields = append(md.Fields, f)
		case p.isKeyword("method"):
			m, err := p.parseMethod()
			if err != nil {
				return nil, err
			}
			md.Methods = append(md.Methods, m)
		case p.isKeyword("start") || p.isKeyword("hot") || p.isKeyword("cold") || p.isKeyword("state"):
			s, err := p.parseState()
			if err != nil {
				return nil, err
			}
			md.States = append(md.States, s)
		default:
			return nil, p.errorf("expected 'var', 'method' or 'state' in %s, got %s", kw, p.tok)
		}
	}
	return md, p.advance()
}

func (p *parser) parseState() (*StateDecl, error) {
	pos := p.tok.Pos
	sd := &StateDecl{
		Pos:     pos,
		OnDo:    make(map[string]string),
		OnGoto:  make(map[string]string),
		Defers:  make(map[string]bool),
		Ignores: make(map[string]bool),
	}
	// State modifiers may appear in any order before the state keyword:
	// "start hot state S" and "hot start state S" are both accepted.
modifiers:
	for {
		switch {
		case p.isKeyword("start"):
			if sd.Start {
				return nil, p.errorf("duplicate 'start' modifier")
			}
			sd.Start = true
		case p.isKeyword("hot"):
			if sd.Hot || sd.Cold {
				return nil, p.errorf("duplicate hot/cold modifier")
			}
			sd.Hot = true
		case p.isKeyword("cold"):
			if sd.Hot || sd.Cold {
				return nil, p.errorf("duplicate hot/cold modifier")
			}
			sd.Cold = true
		default:
			break modifiers
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("state"); err != nil {
		return nil, err
	}
	name, _, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	sd.Name = name
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRBrace {
		switch {
		case p.isKeyword("entry"):
			if sd.Entry != nil {
				return nil, p.errorf("state %q: duplicate entry block", name)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			body, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			if body == nil {
				body = []Stmt{}
			}
			sd.Entry = body
		case p.isKeyword("on"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			evt, _, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			switch {
			case p.isKeyword("do"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				meth, _, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				sd.OnDo[evt] = meth
			case p.isKeyword("goto"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				target, _, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				sd.OnGoto[evt] = target
			default:
				return nil, p.errorf("expected 'do' or 'goto', got %s", p.tok)
			}
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
		case p.isKeyword("defer"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			evt, _, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			sd.Defers[evt] = true
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
		case p.isKeyword("ignore"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			evt, _, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			sd.Ignores[evt] = true
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected 'entry', 'on', 'defer' or 'ignore' in state, got %s", p.tok)
		}
	}
	return sd, p.advance()
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var out []Stmt
	for p.tok.Kind != TokRBrace {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, p.advance()
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.tok.Pos
	switch {
	case p.isKeyword("var"):
		d, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		return &LocalDecl{Decl: d}, nil
	case p.isKeyword("if"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.isKeyword("else") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: pos}, nil
	case p.isKeyword("while"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
	case p.isKeyword("return"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokSemi {
			return &ReturnStmt{Pos: pos}, p.advance()
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: val, Pos: pos}, nil
	case p.isKeyword("send"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		dst, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma, "','"); err != nil {
			return nil, err
		}
		evt, _, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		var payload Expr
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			payload, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &SendStmt{Dst: dst, Event: evt, Payload: payload, Pos: pos}, nil
	case p.isKeyword("raise"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		evt, _, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		var payload Expr
		if p.tok.Kind == TokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			payload, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &RaiseStmt{Event: evt, Payload: payload, Pos: pos}, nil
	case p.isKeyword("assert"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &AssertStmt{Cond: cond, Pos: pos}, nil
	case p.isKeyword("this"):
		// this.f := expr;  or  this.m(args);
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokDot, "'.'"); err != nil {
			return nil, err
		}
		name, _, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLParen {
			call, err := p.parseCallTail(&ThisRef{Pos: pos}, name, pos)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
			return &ExprStmt{X: call, Pos: pos}, nil
		}
		if _, err := p.expect(TokAssign, "':='"); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		return &AssignStmt{ToField: name, Value: val, Pos: pos}, nil
	case p.tok.Kind == TokIdent:
		// v := expr;  or  v.m(args);
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokAssign:
			if err := p.advance(); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
			return &AssignStmt{Target: name, Value: val, Pos: pos}, nil
		case TokDot:
			if err := p.advance(); err != nil {
				return nil, err
			}
			meth, _, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			call, err := p.parseCallTail(&VarRef{Name: name, Pos: pos}, meth, pos)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi, "';'"); err != nil {
				return nil, err
			}
			return &ExprStmt{X: call, Pos: pos}, nil
		}
		return nil, p.errorf("expected ':=' or '.' after identifier %q", name)
	}
	return nil, p.errorf("unexpected token %s at start of statement", p.tok)
}

func (p *parser) parseCallTail(recv Expr, method string, pos Pos) (*CallExpr, error) {
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	var args []Expr
	for p.tok.Kind != TokRParen {
		if len(args) > 0 {
			if _, err := p.expect(TokComma, "','"); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	return &CallExpr{Recv: recv, Method: method, Args: args, Pos: pos}, nil
}

// Binary operator precedence, loosest first.
var precedence = map[TokenKind]int{
	TokOrOr: 1, TokAndAnd: 2,
	TokEq: 3, TokNeq: 3,
	TokLt: 4, TokLe: 4, TokGt: 4, TokGe: 4,
	TokPlus: 5, TokMinus: 5,
	TokStar: 6, TokSlash: 6, TokPercent: 6,
}

var opText = map[TokenKind]string{
	TokOrOr: "||", TokAndAnd: "&&", TokEq: "==", TokNeq: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := precedence[p.tok.Kind]
		if !ok || prec < minPrec {
			return left, nil
		}
		op := opText[p.tok.Kind]
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right, Pos: pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokBang:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x, Pos: pos}, nil
	case TokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch {
	case p.tok.Kind == TokInt:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal: %v", err)
		}
		return &IntLit{Value: v, Pos: pos}, p.advance()
	case p.isKeyword("true"), p.isKeyword("false"):
		v := p.tok.Text == "true"
		return &BoolLit{Value: v, Pos: pos}, p.advance()
	case p.isKeyword("null"):
		return &NullLit{Pos: pos}, p.advance()
	case p.isKeyword("new"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, _, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &NewExpr{Class: name, Pos: pos}, nil
	case p.isKeyword("create"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, _, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		var payload Expr
		if p.tok.Kind != TokRParen {
			payload, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return &CreateExpr{Machine: name, Payload: payload, Pos: pos}, nil
	case p.isKeyword("this"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokDot {
			return &ThisRef{Pos: pos}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, _, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLParen {
			return p.parseCallTail(&ThisRef{Pos: pos}, name, pos)
		}
		return &FieldRef{Field: name, Pos: pos}, nil
	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			meth, _, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return p.parseCallTail(&VarRef{Name: name, Pos: pos}, meth, pos)
		}
		return &VarRef{Name: name, Pos: pos}, nil
	case p.tok.Kind == TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("unexpected token %s in expression", p.tok)
}
