package lang

import (
	"fmt"
)

// Check resolves names and types for the program, filling symbol tables and
// per-expression types. It enforces the paper's core-language assumptions:
// member variables are only accessible through this; machines exchange
// data only through events; locals and parameters have method-wide scope.
func Check(prog *Program) error {
	c := &checker{prog: prog}
	return c.run()
}

// MustCheck panics on a check error; for tests and embedded sources.
func MustCheck(prog *Program) *Program {
	if err := Check(prog); err != nil {
		panic(err)
	}
	return prog
}

// holder abstracts over classes, machines and monitors (all hold fields +
// methods).
type holder struct {
	name    string
	fields  map[string]*VarDecl
	methods map[string]*MethodDecl
	machine bool
	// monitor marks a specification monitor: machine-shaped, but its method
	// bodies must be passive (no send, no create) and it cannot be created
	// or addressed by the program.
	monitor bool
}

type checker struct {
	prog    *Program
	holders map[string]*holder

	// current method scope
	cur    *holder
	method *MethodDecl
	scope  map[string]Type
}

func (c *checker) errf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("lang: %s: %s", pos, fmt.Sprintf(format, args...))
}

func (c *checker) run() error {
	p := c.prog
	p.ClassByName = make(map[string]*ClassDecl)
	p.MachineByName = make(map[string]*MachineDecl)
	p.MonitorByName = make(map[string]*MachineDecl)
	p.EventByName = make(map[string]*EventDecl)
	c.holders = make(map[string]*holder)

	for _, e := range p.Events {
		if _, dup := p.EventByName[e.Name]; dup {
			return c.errf(e.Pos, "event %q declared twice", e.Name)
		}
		p.EventByName[e.Name] = e
	}
	for _, cd := range p.Classes {
		if _, dup := c.holders[cd.Name]; dup {
			return c.errf(cd.Pos, "type %q declared twice", cd.Name)
		}
		cd.FieldByName = make(map[string]*VarDecl)
		cd.MethodByName = make(map[string]*MethodDecl)
		h := &holder{name: cd.Name, fields: cd.FieldByName, methods: cd.MethodByName}
		c.holders[cd.Name] = h
		p.ClassByName[cd.Name] = cd
		if err := c.fillMembers(h, cd.Fields, cd.Methods, cd.Pos); err != nil {
			return err
		}
	}
	for _, md := range p.Machines {
		if _, dup := c.holders[md.Name]; dup {
			return c.errf(md.Pos, "type %q declared twice", md.Name)
		}
		md.FieldByName = make(map[string]*VarDecl)
		md.MethodByName = make(map[string]*MethodDecl)
		md.StateByName = make(map[string]*StateDecl)
		h := &holder{name: md.Name, fields: md.FieldByName, methods: md.MethodByName, machine: true}
		c.holders[md.Name] = h
		p.MachineByName[md.Name] = md
		if err := c.fillMembers(h, md.Fields, md.Methods, md.Pos); err != nil {
			return err
		}
	}
	for _, md := range p.Monitors {
		if _, dup := c.holders[md.Name]; dup {
			return c.errf(md.Pos, "type %q declared twice", md.Name)
		}
		md.FieldByName = make(map[string]*VarDecl)
		md.MethodByName = make(map[string]*MethodDecl)
		md.StateByName = make(map[string]*StateDecl)
		h := &holder{name: md.Name, fields: md.FieldByName, methods: md.MethodByName, machine: true, monitor: true}
		c.holders[md.Name] = h
		p.MonitorByName[md.Name] = md
		if err := c.fillMembers(h, md.Fields, md.Methods, md.Pos); err != nil {
			return err
		}
	}

	// Validate types of all fields and method signatures.
	for _, cd := range p.Classes {
		if err := c.checkSignatures(cd.Fields, cd.Methods); err != nil {
			return err
		}
	}
	for _, md := range p.Machines {
		if err := c.checkSignatures(md.Fields, md.Methods); err != nil {
			return err
		}
	}
	for _, md := range p.Monitors {
		if err := c.checkSignatures(md.Fields, md.Methods); err != nil {
			return err
		}
	}

	// Check machine and monitor state tables.
	for _, md := range p.Machines {
		if err := c.checkStates(md); err != nil {
			return err
		}
	}
	for _, md := range p.Monitors {
		if err := c.checkStates(md); err != nil {
			return err
		}
	}

	// Check method bodies.
	for _, cd := range p.Classes {
		for _, m := range cd.Methods {
			if err := c.checkMethod(c.holders[cd.Name], m); err != nil {
				return err
			}
		}
	}
	for _, md := range p.Machines {
		if err := c.checkMachineBodies(md); err != nil {
			return err
		}
	}
	for _, md := range p.Monitors {
		if err := c.checkMachineBodies(md); err != nil {
			return err
		}
	}
	return nil
}

// checkMachineBodies checks the method and state-entry bodies of one
// machine or monitor declaration.
func (c *checker) checkMachineBodies(md *MachineDecl) error {
	for _, m := range md.Methods {
		if err := c.checkMethod(c.holders[md.Name], m); err != nil {
			return err
		}
	}
	for _, s := range md.States {
		if s.Entry != nil {
			entry := &MethodDecl{Name: "$entry_" + s.Name, Body: s.Entry, Pos: s.Pos}
			if err := c.checkMethod(c.holders[md.Name], entry); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) fillMembers(h *holder, fields []*VarDecl, methods []*MethodDecl, pos Pos) error {
	for _, f := range fields {
		if _, dup := h.fields[f.Name]; dup {
			return c.errf(f.Pos, "%s: field %q declared twice", h.name, f.Name)
		}
		h.fields[f.Name] = f
	}
	for _, m := range methods {
		if _, dup := h.methods[m.Name]; dup {
			return c.errf(m.Pos, "%s: method %q declared twice", h.name, m.Name)
		}
		h.methods[m.Name] = m
	}
	return nil
}

func (c *checker) validType(t Type) bool {
	if t.IsScalar() {
		return true
	}
	h, ok := c.holders[t.Name]
	return ok && !h.machine // machine instances are addressed via 'machine' handles
}

func (c *checker) checkSignatures(fields []*VarDecl, methods []*MethodDecl) error {
	for _, f := range fields {
		if !c.validType(f.Type) {
			return c.errf(f.Pos, "field %q has unknown type %q", f.Name, f.Type.Name)
		}
	}
	for _, m := range methods {
		for _, pdecl := range m.Params {
			if !c.validType(pdecl.Type) {
				return c.errf(pdecl.Pos, "parameter %q has unknown type %q", pdecl.Name, pdecl.Type.Name)
			}
		}
		if m.Result != nil && !c.validType(*m.Result) {
			return c.errf(m.Pos, "method %q has unknown result type %q", m.Name, m.Result.Name)
		}
	}
	return nil
}

func (c *checker) checkStates(md *MachineDecl) error {
	kind := "machine"
	if md.IsMonitor {
		kind = "monitor"
	}
	for _, s := range md.States {
		if _, dup := md.StateByName[s.Name]; dup {
			return c.errf(s.Pos, "%s %q: state %q declared twice", kind, md.Name, s.Name)
		}
		md.StateByName[s.Name] = s
		if s.Start {
			if md.StartState != nil {
				return c.errf(s.Pos, "%s %q: more than one start state", kind, md.Name)
			}
			md.StartState = s
		}
		if (s.Hot || s.Cold) && !md.IsMonitor {
			return c.errf(s.Pos, "machine %q state %q: hot/cold annotations are only allowed on monitor states", md.Name, s.Name)
		}
	}
	if md.StartState == nil {
		return c.errf(md.Pos, "%s %q: no start state", kind, md.Name)
	}
	for _, s := range md.States {
		// An event may be bound at most once per state across all tables
		// (paper Section 6.1: "an event can be handled in more than one way
		// in the same state" is an error).
		seen := make(map[string]bool)
		bind := func(evt string) error {
			if _, ok := c.prog.EventByName[evt]; !ok {
				return c.errf(s.Pos, "%s %q state %q: unknown event %q", kind, md.Name, s.Name, evt)
			}
			if seen[evt] {
				return c.errf(s.Pos, "%s %q state %q: event %q bound more than once", kind, md.Name, s.Name, evt)
			}
			seen[evt] = true
			return nil
		}
		for evt, meth := range s.OnDo {
			if err := bind(evt); err != nil {
				return err
			}
			m, ok := md.MethodByName[meth]
			if !ok {
				return c.errf(s.Pos, "%s %q state %q: action %q is not a method", kind, md.Name, s.Name, meth)
			}
			if len(m.Params) > 1 {
				return c.errf(m.Pos, "%s %q: handler method %q must take at most one (payload) parameter", kind, md.Name, meth)
			}
		}
		for evt, target := range s.OnGoto {
			if err := bind(evt); err != nil {
				return err
			}
			if _, ok := md.StateByName[target]; !ok {
				return c.errf(s.Pos, "%s %q state %q: goto target %q is not a state", kind, md.Name, s.Name, target)
			}
		}
		for evt := range s.Defers {
			if md.IsMonitor {
				return c.errf(s.Pos, "monitor %q state %q: monitors cannot defer events (they have no queue)", md.Name, s.Name)
			}
			if err := bind(evt); err != nil {
				return err
			}
		}
		for evt := range s.Ignores {
			if err := bind(evt); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) checkMethod(h *holder, m *MethodDecl) error {
	c.cur = h
	c.method = m
	c.scope = make(map[string]Type)
	for _, p := range m.Params {
		if _, dup := c.scope[p.Name]; dup {
			return c.errf(p.Pos, "duplicate parameter %q", p.Name)
		}
		c.scope[p.Name] = p.Type
	}
	return c.checkStmts(m.Body)
}

func (c *checker) checkStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *LocalDecl:
		d := st.Decl
		if !c.validType(d.Type) {
			return c.errf(d.Pos, "local %q has unknown type %q", d.Name, d.Type.Name)
		}
		if _, dup := c.scope[d.Name]; dup {
			return c.errf(d.Pos, "variable %q already declared", d.Name)
		}
		c.scope[d.Name] = d.Type
		return nil
	case *AssignStmt:
		vt, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		var target Type
		if st.ToField != "" {
			f, ok := c.cur.fields[st.ToField]
			if !ok {
				return c.errf(st.Pos, "%s has no field %q", c.cur.name, st.ToField)
			}
			target = f.Type
		} else {
			t, ok := c.scope[st.Target]
			if !ok {
				return c.errf(st.Pos, "undeclared variable %q", st.Target)
			}
			target = t
		}
		if !assignable(target, vt, st.Value) {
			return c.errf(st.Pos, "cannot assign %s to %s", vt.Name, target.Name)
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *SendStmt:
		if c.cur.monitor {
			return c.errf(st.Pos, "monitor %q: monitors cannot send events (they are passive observers)", c.cur.name)
		}
		dt, err := c.checkExpr(st.Dst)
		if err != nil {
			return err
		}
		if dt.Name != "machine" {
			return c.errf(st.Pos, "send destination must have type machine, got %s", dt.Name)
		}
		if _, ok := c.prog.EventByName[st.Event]; !ok {
			return c.errf(st.Pos, "unknown event %q", st.Event)
		}
		if st.Payload != nil {
			if _, err := c.checkExpr(st.Payload); err != nil {
				return err
			}
		}
		return nil
	case *RaiseStmt:
		if _, ok := c.prog.EventByName[st.Event]; !ok {
			return c.errf(st.Pos, "unknown event %q", st.Event)
		}
		if st.Payload != nil {
			if _, err := c.checkExpr(st.Payload); err != nil {
				return err
			}
		}
		return nil
	case *ReturnStmt:
		if st.Value == nil {
			if c.method.Result != nil {
				return c.errf(st.Pos, "method %q must return a %s", c.method.Name, c.method.Result.Name)
			}
			return nil
		}
		if c.method.Result == nil {
			return c.errf(st.Pos, "method %q returns no value", c.method.Name)
		}
		vt, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if !assignable(*c.method.Result, vt, st.Value) {
			return c.errf(st.Pos, "cannot return %s from method of type %s", vt.Name, c.method.Result.Name)
		}
		return nil
	case *IfStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Name != "bool" {
			return c.errf(st.Pos, "if condition must be bool, got %s", ct.Name)
		}
		if err := c.checkStmts(st.Then); err != nil {
			return err
		}
		return c.checkStmts(st.Else)
	case *WhileStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Name != "bool" {
			return c.errf(st.Pos, "while condition must be bool, got %s", ct.Name)
		}
		return c.checkStmts(st.Body)
	case *AssertStmt:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Name != "bool" {
			return c.errf(st.Pos, "assert condition must be bool, got %s", ct.Name)
		}
		return nil
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

// assignable reports whether a value of type src (produced by expr) can be
// stored in a slot of type dst. null is assignable to any reference type.
func assignable(dst, src Type, expr Expr) bool {
	if _, isNull := expr.(*NullLit); isNull {
		return dst.IsRef()
	}
	return dst.Name == src.Name
}

func (c *checker) setType(e Expr, t Type) Type {
	switch x := e.(type) {
	case *IntLit:
		x.typ = t
	case *BoolLit:
		x.typ = t
	case *NullLit:
		x.typ = t
	case *VarRef:
		x.typ = t
	case *ThisRef:
		x.typ = t
	case *FieldRef:
		x.typ = t
	case *NewExpr:
		x.typ = t
	case *CreateExpr:
		x.typ = t
	case *CallExpr:
		x.typ = t
	case *UnaryExpr:
		x.typ = t
	case *BinaryExpr:
		x.typ = t
	}
	return t
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return c.setType(e, Type{"int"}), nil
	case *BoolLit:
		return c.setType(e, Type{"bool"}), nil
	case *NullLit:
		// null's static type is resolved by context; give it a marker.
		return c.setType(e, Type{"null"}), nil
	case *VarRef:
		t, ok := c.scope[x.Name]
		if !ok {
			return Type{}, c.errf(x.Pos, "undeclared variable %q", x.Name)
		}
		return c.setType(e, t), nil
	case *ThisRef:
		return c.setType(e, Type{c.cur.name}), nil
	case *FieldRef:
		f, ok := c.cur.fields[x.Field]
		if !ok {
			return Type{}, c.errf(x.Pos, "%s has no field %q", c.cur.name, x.Field)
		}
		return c.setType(e, f.Type), nil
	case *NewExpr:
		h, ok := c.holders[x.Class]
		if !ok || h.machine {
			return Type{}, c.errf(x.Pos, "new of unknown class %q", x.Class)
		}
		return c.setType(e, Type{x.Class}), nil
	case *CreateExpr:
		if c.cur.monitor {
			return Type{}, c.errf(x.Pos, "monitor %q: monitors cannot create machines (they are passive observers)", c.cur.name)
		}
		h, ok := c.holders[x.Machine]
		if !ok || !h.machine {
			return Type{}, c.errf(x.Pos, "create of unknown machine %q", x.Machine)
		}
		if h.monitor {
			return Type{}, c.errf(x.Pos, "cannot create monitor %q: monitors are attached automatically, one instance per run", x.Machine)
		}
		if x.Payload != nil {
			if _, err := c.checkExpr(x.Payload); err != nil {
				return Type{}, err
			}
		}
		return c.setType(e, Type{"machine"}), nil
	case *CallExpr:
		rt, err := c.checkExpr(x.Recv)
		if err != nil {
			return Type{}, err
		}
		h, ok := c.holders[rt.Name]
		if !ok {
			return Type{}, c.errf(x.Pos, "cannot call method on value of type %s", rt.Name)
		}
		m, ok := h.methods[x.Method]
		if !ok {
			return Type{}, c.errf(x.Pos, "%s has no method %q", rt.Name, x.Method)
		}
		if len(x.Args) != len(m.Params) {
			return Type{}, c.errf(x.Pos, "%s.%s expects %d arguments, got %d", rt.Name, x.Method, len(m.Params), len(x.Args))
		}
		for i, a := range x.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return Type{}, err
			}
			if !assignable(m.Params[i].Type, at, a) {
				return Type{}, c.errf(x.Pos, "argument %d of %s.%s: cannot pass %s as %s",
					i+1, rt.Name, x.Method, at.Name, m.Params[i].Type.Name)
			}
		}
		if m.Result == nil {
			return c.setType(e, Type{"void"}), nil
		}
		return c.setType(e, *m.Result), nil
	case *UnaryExpr:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return Type{}, err
		}
		switch x.Op {
		case "!":
			if xt.Name != "bool" {
				return Type{}, c.errf(x.Pos, "! requires bool, got %s", xt.Name)
			}
			return c.setType(e, Type{"bool"}), nil
		case "-":
			if xt.Name != "int" {
				return Type{}, c.errf(x.Pos, "unary - requires int, got %s", xt.Name)
			}
			return c.setType(e, Type{"int"}), nil
		}
		return Type{}, c.errf(x.Pos, "unknown unary operator %q", x.Op)
	case *BinaryExpr:
		lt, err := c.checkExpr(x.L)
		if err != nil {
			return Type{}, err
		}
		rt, err := c.checkExpr(x.R)
		if err != nil {
			return Type{}, err
		}
		switch x.Op {
		case "+", "-", "*", "/", "%":
			if lt.Name != "int" || rt.Name != "int" {
				return Type{}, c.errf(x.Pos, "%s requires int operands, got %s and %s", x.Op, lt.Name, rt.Name)
			}
			return c.setType(e, Type{"int"}), nil
		case "<", "<=", ">", ">=":
			if lt.Name != "int" || rt.Name != "int" {
				return Type{}, c.errf(x.Pos, "%s requires int operands, got %s and %s", x.Op, lt.Name, rt.Name)
			}
			return c.setType(e, Type{"bool"}), nil
		case "&&", "||":
			if lt.Name != "bool" || rt.Name != "bool" {
				return Type{}, c.errf(x.Pos, "%s requires bool operands, got %s and %s", x.Op, lt.Name, rt.Name)
			}
			return c.setType(e, Type{"bool"}), nil
		case "==", "!=":
			if lt.Name != rt.Name && lt.Name != "null" && rt.Name != "null" {
				return Type{}, c.errf(x.Pos, "%s requires matching operand types, got %s and %s", x.Op, lt.Name, rt.Name)
			}
			return c.setType(e, Type{"bool"}), nil
		}
		return Type{}, c.errf(x.Pos, "unknown operator %q", x.Op)
	}
	return Type{}, fmt.Errorf("lang: unknown expression %T", e)
}
