package lang

import "fmt"

// lexer tokenizes core-language source text. Comments run from "//" to end
// of line; whitespace separates tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("lang: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// next returns the next token.
func (l *lexer) next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return l.lexToken()
		}
	}
	return Token{Kind: TokEOF, Pos: Pos{l.line, l.col}}, nil
}

func (l *lexer) lexToken() (Token, error) {
	pos := Pos{l.line, l.col}
	c := l.peekByte()
	switch {
	case isLetter(c):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peekByte()) || isDigit(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		return Token{Kind: TokInt, Text: l.src[start:l.pos], Pos: pos}, nil
	}
	l.advance()
	two := func(second byte, k2 TokenKind, k1 TokenKind, text1, text2 string) (Token, error) {
		if l.peekByte() == second {
			l.advance()
			return Token{Kind: k2, Text: text2, Pos: pos}, nil
		}
		if k1 == TokEOF {
			return Token{}, l.errorf("unexpected character %q", string(c))
		}
		return Token{Kind: k1, Text: text1, Pos: pos}, nil
	}
	switch c {
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Text: ";", Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Text: ".", Pos: pos}, nil
	case ':':
		return two('=', TokAssign, TokColon, ":", ":=")
	case '+':
		return Token{Kind: TokPlus, Text: "+", Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Text: "-", Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Text: "/", Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Text: "%", Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokEOF, "", "==")
	case '!':
		return two('=', TokNeq, TokBang, "!", "!=")
	case '<':
		return two('=', TokLe, TokLt, "<", "<=")
	case '>':
		return two('=', TokGe, TokGt, ">", ">=")
	case '&':
		return two('&', TokAndAnd, TokEOF, "", "&&")
	case '|':
		return two('|', TokOrOr, TokEOF, "", "||")
	}
	return Token{}, l.errorf("unexpected character %q", string(c))
}

// Lex tokenizes src fully (used by tests and tools).
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
