// Package lang implements a front end for the paper's core object-oriented
// language (Figure 2), extended with the machine, state and event
// declarations of Section 4: a lexer, a recursive-descent parser producing
// an AST, and a name/type checker. The analysis package consumes the
// checked AST; the interp package executes it under the paper's operational
// semantics (Figures 3 and 4).
package lang

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokKeyword
	// Punctuation and operators.
	TokLBrace  // {
	TokRBrace  // }
	TokLParen  // (
	TokRParen  // )
	TokSemi    // ;
	TokComma   // ,
	TokColon   // :
	TokDot     // .
	TokAssign  // :=
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokEq      // ==
	TokNeq     // !=
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokAndAnd  // &&
	TokOrOr    // ||
	TokBang    // !
)

var keywords = map[string]bool{
	"class": true, "machine": true, "event": true, "state": true,
	"start": true, "entry": true, "on": true, "do": true, "goto": true,
	"defer": true, "ignore": true, "var": true, "method": true,
	"if": true, "else": true, "while": true, "return": true,
	"send": true, "create": true, "new": true, "assert": true, "raise": true,
	"this": true, "null": true, "true": true, "false": true,
	"int": true, "bool": true, "halt": true,
	"monitor": true, "hot": true, "cold": true,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}
