package lang

import (
	"strings"
	"testing"
)

// TestLexerBasics covers token classes and operators.
func TestLexerBasics(t *testing.T) {
	toks, err := Lex(`machine m { var x: int; } // comment
x := 1 + 2 * 3 <= 4 && !true || a != b;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if kinds[0] != TokKeyword || toks[0].Text != "machine" {
		t.Fatalf("first token = %v", toks[0])
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatal("missing EOF token")
	}
	joined := ""
	for _, tok := range toks {
		joined += tok.Text + " "
	}
	for _, op := range []string{":=", "<=", "&&", "!", "||", "!="} {
		if !strings.Contains(joined, op) {
			t.Errorf("operator %q not lexed: %s", op, joined)
		}
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	if _, err := Lex("machine m @ {}"); err == nil {
		t.Fatal("want error on '@'")
	}
}

// TestParsePrecedence checks the expression grammar's precedence.
func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`
machine m {
	var x: int;
	start state S {
		entry {
			var b: bool;
			b := 1 + 2 * 3 == 7 && 4 < 5;
			if (b) { this.x := 1; } else { this.x := 2; }
		}
	}
}`)
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	entry := prog.Machines[0].States[0].Entry
	assign := entry[1].(*AssignStmt)
	and, ok := assign.Value.(*BinaryExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("top operator = %v, want &&", assign.Value)
	}
	eq, ok := and.L.(*BinaryExpr)
	if !ok || eq.Op != "==" {
		t.Fatalf("left of && = %v, want ==", and.L)
	}
	plus, ok := eq.L.(*BinaryExpr)
	if !ok || plus.Op != "+" {
		t.Fatalf("left of == = %v, want +", eq.L)
	}
	if mul, ok := plus.R.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Fatalf("right of + = %v, want *", plus.R)
	}
}

// TestParseStateTables covers entry/on-do/on-goto/defer/ignore.
func TestParseStateTables(t *testing.T) {
	prog := MustParse(`
event eA;
event eB;
event eC;
event eD;
machine m {
	start state S1 {
		entry { raise eA; }
		on eA goto S2;
		defer eB;
		ignore eC;
	}
	state S2 {
		on eB do handle;
		on eD goto S1;
	}
	method handle(v: int) { assert v == v; }
}`)
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	md := prog.Machines[0]
	if md.StartState.Name != "S1" {
		t.Fatalf("start state %q", md.StartState.Name)
	}
	s1 := md.StateByName["S1"]
	if s1.OnGoto["eA"] != "S2" || !s1.Defers["eB"] || !s1.Ignores["eC"] {
		t.Fatalf("state tables wrong: %+v", s1)
	}
	if md.StateByName["S2"].OnDo["eB"] != "handle" {
		t.Fatal("on-do binding lost")
	}
}

// TestCheckerErrors enumerates the diagnostics the checker must produce.
func TestCheckerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown event", `machine m { start state S { on eNope do h; } method h() {} }`, "unknown event"},
		{"double binding", `event eA; machine m { start state S { on eA do h; on eA goto S; } method h() {} }`, "bound more than once"},
		{"no start state", `machine m { state S { } }`, "no start state"},
		{"bad goto target", `event eA; machine m { start state S { on eA goto Nope; } }`, "not a state"},
		{"undeclared var", `machine m { start state S { entry { x := 1; } } }`, "undeclared variable"},
		{"type mismatch", `machine m { var x: int; start state S { entry { this.x := true; } } }`, "cannot assign"},
		{"unknown field", `machine m { start state S { entry { this.y := 1; } } }`, "no field"},
		{"bad payload count", `event eA; machine m { start state S { on eA do h; } method h(a: int, b: int) {} }`, "at most one"},
		{"arity", `class c { method f(x: int) {} } machine m { start state S { entry { var o: c; o := new c; o.f(); } } }`, "expects 1 arguments"},
		{"send non-machine", `event eA; machine m { start state S { entry { send 3, eA; } } }`, "must have type machine"},
		{"cond not bool", `machine m { start state S { entry { if (1) {} } } }`, "must be bool"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err == nil {
				err = Check(prog)
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestParserErrors checks syntax diagnostics.
func TestParserErrors(t *testing.T) {
	cases := []string{
		`machine {`,
		`machine m { start state S { entry { x := ; } } }`,
		`machine m { start state S { on }`,
		`event eA`,
		`class c { var x int; }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("want parse error for %q", src)
		}
	}
}

// TestNullAssignability checks null against reference and scalar slots.
func TestNullAssignability(t *testing.T) {
	good := `class c { var x: int; } machine m { var f: c; start state S { entry { this.f := null; } } }`
	if err := Check(MustParse(good)); err != nil {
		t.Fatalf("null to reference field must check: %v", err)
	}
	bad := `machine m { var x: int; start state S { entry { this.x := null; } } }`
	if err := Check(MustParse(bad)); err == nil {
		t.Fatal("null to int must be rejected")
	}
}
