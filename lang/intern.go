package lang

// Interned symbol tables and AST-lowering helpers for back ends that want
// dense integer handles instead of name maps. The interp package's bytecode
// compiler resolves every event, field, method and state reference through
// these tables at compile time, so its dispatch loop never hashes a string.

// SymbolTable interns a checked Program's declared names as dense indices,
// assigned in declaration order so the numbering is deterministic for a
// given source text. It is derived data: build it with Intern, which caches
// one table per Program via the auxiliary store.
type SymbolTable struct {
	// Events lists event names by index; EventIndex inverts it.
	Events     []string
	EventIndex map[string]int

	// MachineIndex and ClassIndex number the program's machine and class
	// declarations (monitors are numbered separately via MonitorIndex, in
	// Program.Monitors order, since they live outside the machine list).
	MachineIndex map[*MachineDecl]int
	MonitorIndex map[*MachineDecl]int
	ClassIndex   map[*ClassDecl]int

	// FieldSlot assigns each member variable its slot within the declaring
	// machine, monitor or class (dense, declaration order); MethodIndex and
	// StateIndex do the same for methods and states.
	FieldSlot   map[*VarDecl]int
	MethodIndex map[*MethodDecl]int
	StateIndex  map[*StateDecl]int
}

// internKey keys the cached SymbolTable in a Program's auxiliary store.
type internKey struct{}

// Intern returns prog's interned symbol table, building it on first use and
// caching it on the Program. The table is immutable after construction, so
// concurrent callers may share the returned pointer; a rare duplicate build
// under concurrent first use is harmless (both builds are identical).
func Intern(prog *Program) *SymbolTable {
	if v, ok := prog.AuxLoad(internKey{}); ok {
		return v.(*SymbolTable)
	}
	st := &SymbolTable{
		EventIndex:   make(map[string]int, len(prog.Events)),
		MachineIndex: make(map[*MachineDecl]int, len(prog.Machines)),
		MonitorIndex: make(map[*MachineDecl]int, len(prog.Monitors)),
		ClassIndex:   make(map[*ClassDecl]int, len(prog.Classes)),
		FieldSlot:    make(map[*VarDecl]int),
		MethodIndex:  make(map[*MethodDecl]int),
		StateIndex:   make(map[*StateDecl]int),
	}
	for i, e := range prog.Events {
		st.Events = append(st.Events, e.Name)
		st.EventIndex[e.Name] = i
	}
	intern := func(fields []*VarDecl, methods []*MethodDecl, states []*StateDecl) {
		for i, f := range fields {
			st.FieldSlot[f] = i
		}
		for i, m := range methods {
			st.MethodIndex[m] = i
		}
		for i, s := range states {
			st.StateIndex[s] = i
		}
	}
	for i, cd := range prog.Classes {
		st.ClassIndex[cd] = i
		intern(cd.Fields, cd.Methods, nil)
	}
	for i, md := range prog.Machines {
		st.MachineIndex[md] = i
		intern(md.Fields, md.Methods, md.States)
	}
	for i, md := range prog.Monitors {
		st.MonitorIndex[md] = i
		intern(md.Fields, md.Methods, md.States)
	}
	prog.AuxStore(internKey{}, st)
	return st
}

// WalkStmts calls f for every statement in body, including statements
// nested inside if and while bodies, in source order. It is the lowering
// pass's traversal primitive (local-slot collection, loop counting).
func WalkStmts(body []Stmt, f func(Stmt)) {
	for _, s := range body {
		f(s)
		switch st := s.(type) {
		case *IfStmt:
			WalkStmts(st.Then, f)
			WalkStmts(st.Else, f)
		case *WhileStmt:
			WalkStmts(st.Body, f)
		}
	}
}

// CollectLocals assigns dense frame slots to one body's variables:
// parameters first (slot = parameter position), then every local
// declaration in source order, however deeply nested — the checker gives
// locals method-wide scope and unique names, so one flat numbering per
// body is exact. The returned slice maps slot -> declaration.
func CollectLocals(params []*VarDecl, body []Stmt) []*VarDecl {
	out := make([]*VarDecl, 0, len(params)+4)
	out = append(out, params...)
	WalkStmts(body, func(s Stmt) {
		if ld, ok := s.(*LocalDecl); ok {
			out = append(out, ld.Decl)
		}
	})
	return out
}
