package lang

import "testing"

const internSrc = `
event eA;
event eB;

class box {
	var v: int;
	method get(): int { var r: int; r := this.v; return r; }
}

machine m1 {
	var f1: int;
	var f2: bool;
	start state S0 {
		entry {
			var a: int;
			if (true) {
				var b: bool;
				b := false;
			}
			while (a < 2) {
				var c: int;
				a := a + 1;
			}
		}
		on eA do h;
		on eB goto S1;
	}
	state S1 {
	}
	method h(p: int) {
		var x: int;
		x := p;
	}
}

monitor obs_m {
	var seen: int;
	start state Watch {
		on eA do note;
	}
	method note() { this.seen := this.seen + 1; }
}
`

func mustLoad(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// TestInternDeterministic checks declaration-order numbering and that the
// table is cached per Program.
func TestInternDeterministic(t *testing.T) {
	prog := mustLoad(t, internSrc)
	st := Intern(prog)
	if st != Intern(prog) {
		t.Fatal("Intern did not cache the table on the Program")
	}
	if st.EventIndex["eA"] != 0 || st.EventIndex["eB"] != 1 {
		t.Fatalf("event indices = %v, want declaration order", st.EventIndex)
	}
	md := prog.MachineByName["m1"]
	if st.MachineIndex[md] != 0 {
		t.Fatalf("machine index = %d, want 0", st.MachineIndex[md])
	}
	if got := st.FieldSlot[md.FieldByName["f2"]]; got != 1 {
		t.Fatalf("f2 slot = %d, want 1", got)
	}
	if got := st.StateIndex[md.StateByName["S1"]]; got != 1 {
		t.Fatalf("S1 index = %d, want 1", got)
	}
	mon := prog.MonitorByName["obs_m"]
	if st.MonitorIndex[mon] != 0 {
		t.Fatalf("monitor index = %d, want 0", st.MonitorIndex[mon])
	}
	if got := st.FieldSlot[mon.FieldByName["seen"]]; got != 0 {
		t.Fatalf("monitor field slot = %d, want 0", got)
	}
	cd := prog.ClassByName["box"]
	if st.ClassIndex[cd] != 0 || st.MethodIndex[cd.MethodByName["get"]] != 0 {
		t.Fatal("class interning broke")
	}
}

// TestCollectLocals checks flat slot assignment: params first, then nested
// locals in source order.
func TestCollectLocals(t *testing.T) {
	prog := mustLoad(t, internSrc)
	md := prog.MachineByName["m1"]

	h := md.MethodByName["h"]
	slots := CollectLocals(h.Params, h.Body)
	if len(slots) != 2 || slots[0].Name != "p" || slots[1].Name != "x" {
		t.Fatalf("method h slots = %v, want [p x]", names(slots))
	}

	entry := md.StartState.Entry
	slots = CollectLocals(nil, entry)
	if len(slots) != 3 || slots[0].Name != "a" || slots[1].Name != "b" || slots[2].Name != "c" {
		t.Fatalf("entry slots = %v, want [a b c] (nested decls in source order)", names(slots))
	}
}

func names(decls []*VarDecl) []string {
	out := make([]string, len(decls))
	for i, d := range decls {
		out[i] = d.Name
	}
	return out
}
