package lang

// Tests for the monitor declaration form: grammar (monitor/hot/cold),
// symbol tables, and the checker's monitor-only rules.

import (
	"strings"
	"testing"
)

const monitorSrc = `
event eReq;
event eAck;
machine m {
	start state S {
		on eReq do handle;
	}
	method handle() { }
}
monitor spec_m {
	var pending: int;
	start cold state Idle {
		on eReq goto Waiting;
	}
	hot state Waiting {
		on eAck goto Idle;
		ignore eReq;
	}
}
`

func TestParseMonitorDeclaration(t *testing.T) {
	prog := MustParse(monitorSrc)
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	if len(prog.Monitors) != 1 {
		t.Fatalf("Monitors = %d, want 1", len(prog.Monitors))
	}
	mon := prog.Monitors[0]
	if !mon.IsMonitor || mon.Name != "spec_m" {
		t.Fatalf("monitor decl = %+v", mon)
	}
	if prog.MonitorByName["spec_m"] != mon {
		t.Fatal("MonitorByName not filled")
	}
	if _, inMachines := prog.MachineByName["spec_m"]; inMachines {
		t.Fatal("monitor leaked into MachineByName")
	}
	idle, waiting := mon.StateByName["Idle"], mon.StateByName["Waiting"]
	if idle == nil || !idle.Start || !idle.Cold || idle.Hot {
		t.Fatalf("Idle = %+v, want start+cold", idle)
	}
	if waiting == nil || !waiting.Hot || waiting.Cold {
		t.Fatalf("Waiting = %+v, want hot", waiting)
	}
}

func TestParseStateModifierOrder(t *testing.T) {
	prog := MustParse(`
event e;
monitor m_ {
	hot start state S {
		on e do h;
	}
	method h() { }
}
`)
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	s := prog.Monitors[0].States[0]
	if !s.Start || !s.Hot {
		t.Fatalf("state = %+v, want start+hot in either modifier order", s)
	}
}

func TestParseRejectsDuplicateModifiers(t *testing.T) {
	for _, src := range []string{
		`monitor m_ { hot cold state S { } }`,
		`monitor m_ { hot hot state S { } }`,
		`machine m_ { start start state S { } }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsed %q without error", src)
		}
	}
}

// checkErr parses src and returns the Check error (failing the test if the
// parse itself fails).
func checkErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func TestCheckMonitorRules(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			"no send in monitors",
			`event e;
			 machine m { var w: machine; start state S { } }
			 monitor mon { var w: machine; start state S { on e do h; } method h() { send this.w, e; } }`,
			"monitors cannot send",
		},
		{
			"no create in monitors",
			`event e;
			 machine m { start state S { } }
			 monitor mon { start state S { on e do h; } method h() { var w: machine; w := create m(); } }`,
			"monitors cannot create",
		},
		{
			"no defer in monitors",
			`event e;
			 machine m { start state S { } }
			 monitor mon { start state S { defer e; } }`,
			"cannot defer",
		},
		{
			"no hot states on machines",
			`machine m { start hot state S { } }`,
			"only allowed on monitor states",
		},
		{
			"machines cannot create monitors",
			`event e;
			 monitor mon { start state S { } }
			 machine m { start state S { entry { var x: machine; x := create mon(); } } }`,
			"cannot create monitor",
		},
		{
			"monitor needs a start state",
			`monitor mon { state S { } }`,
			"no start state",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkErr(t, tc.src)
			if err == nil {
				t.Fatalf("Check accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

// TestCheckMonitorMayRaiseAndAssert confirms the passive operations stay
// legal inside monitors.
func TestCheckMonitorMayRaiseAndAssert(t *testing.T) {
	err := checkErr(t, `
event e;
event f;
machine m { start state S { } }
monitor mon {
	var n: int;
	start state S {
		on e do h;
		on f goto T;
	}
	state T { }
	method h() {
		this.n := this.n + 1;
		assert this.n < 10;
		raise f;
	}
}
`)
	if err != nil {
		t.Fatalf("Check rejected a legal monitor: %v", err)
	}
}
