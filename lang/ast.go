package lang

import "sync"

// Type is a core-language type: int and bool are scalars; machine and class
// names are reference types (paper Section 4: "the type of each variable is
// either scalar ... or a reference type").
type Type struct {
	// Name is "int", "bool", "machine", or a class name.
	Name string
}

// IsScalar reports whether values of the type are passed by value. Machine
// identifiers are scalar handles (sending one does not transfer ownership
// of heap data).
func (t Type) IsScalar() bool {
	return t.Name == "int" || t.Name == "bool" || t.Name == "machine"
}

// IsRef reports whether the type is a heap reference type.
func (t Type) IsRef() bool { return !t.IsScalar() }

// Program is a parsed compilation unit.
type Program struct {
	Events   []*EventDecl
	Classes  []*ClassDecl
	Machines []*MachineDecl
	// Monitors are specification monitor declarations: machine-shaped
	// (fields, methods, states with hot/cold annotations) but passive — the
	// checker forbids send and create in their bodies, and the interpreter
	// dispatches observed program events to them synchronously instead of
	// scheduling them. They are not part of Machines: the static analysis
	// analyzes only the program proper.
	Monitors []*MachineDecl

	// Symbol tables filled by Check.
	ClassByName   map[string]*ClassDecl
	MachineByName map[string]*MachineDecl
	MonitorByName map[string]*MachineDecl
	EventByName   map[string]*EventDecl

	// aux carries derived, per-Program artifacts computed lazily by other
	// packages (e.g. the interpreter's compiled dispatch schemas), so a
	// cache's lifetime is tied to the Program instead of a process-global
	// map that would pin every loaded Program forever.
	aux sync.Map
}

// AuxLoad returns the auxiliary artifact stored under key, if any.
func (p *Program) AuxLoad(key any) (any, bool) { return p.aux.Load(key) }

// AuxStore records an auxiliary artifact under key; see AuxLoad. Callers
// wanting compute-once semantics must serialize their own compute path.
func (p *Program) AuxStore(key, value any) { p.aux.Store(key, value) }

// EventDecl declares an event name.
type EventDecl struct {
	Name string
	Pos  Pos
}

// VarDecl declares a member field, local variable or formal parameter.
type VarDecl struct {
	Name string
	Type Type
	Pos  Pos
}

// MethodDecl declares a method: formal parameters, optional result type,
// local declarations and a statement body.
type MethodDecl struct {
	Name   string
	Params []*VarDecl
	Result *Type // nil for void
	Body   []Stmt
	Pos    Pos
}

// ClassDecl declares a plain data class.
type ClassDecl struct {
	Name    string
	Fields  []*VarDecl
	Methods []*MethodDecl
	Pos     Pos

	FieldByName  map[string]*VarDecl
	MethodByName map[string]*MethodDecl
}

// MachineDecl declares a machine: fields, methods, and states. A machine is
// also a class (its methods are analyzed the same way); states bind events
// to methods or transitions. Monitor declarations reuse this node with
// IsMonitor set.
type MachineDecl struct {
	Name    string
	Fields  []*VarDecl
	Methods []*MethodDecl
	States  []*StateDecl
	// IsMonitor marks a specification monitor declaration ("monitor M").
	IsMonitor bool
	Pos       Pos

	FieldByName  map[string]*VarDecl
	MethodByName map[string]*MethodDecl
	StateByName  map[string]*StateDecl
	StartState   *StateDecl
}

// StateDecl declares one machine state.
type StateDecl struct {
	Name  string
	Start bool
	// Hot and Cold are liveness temperature annotations ("hot state S",
	// "cold state S"); only monitor states may carry them.
	Hot     bool
	Cold    bool
	Entry   []Stmt            // entry block (may be nil)
	OnDo    map[string]string // event -> method
	OnGoto  map[string]string // event -> state
	Defers  map[string]bool
	Ignores map[string]bool
	Pos     Pos
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// LocalDecl declares a local variable (value undefined until assigned).
type LocalDecl struct {
	Decl *VarDecl
}

// AssignStmt assigns Expr to a local variable or a field of this.
type AssignStmt struct {
	// Target is the local variable name; empty if ToField is set.
	Target string
	// ToField is the field of this being assigned, if any.
	ToField string
	Value   Expr
	Pos     Pos
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// SendStmt sends an event with an optional payload: send dst, evt, payload;
type SendStmt struct {
	Dst     Expr
	Event   string
	Payload Expr // nil if none
	Pos     Pos
}

// ReturnStmt returns from a method.
type ReturnStmt struct {
	Value Expr // nil for void return
	Pos   Pos
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil if absent
	Pos  Pos
}

// WhileStmt is a loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// AssertStmt checks a boolean condition at run time.
type AssertStmt struct {
	Cond Expr
	Pos  Pos
}

// RaiseStmt transitions the machine by raising an event to itself... not in
// the core calculus; provided for completeness of the interp and ignored by
// the analysis (the payload, if any, is treated like a send payload).
type RaiseStmt struct {
	Event   string
	Payload Expr
	Pos     Pos
}

func (*LocalDecl) stmtNode()  {}
func (*AssignStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*SendStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*AssertStmt) stmtNode() {}
func (*RaiseStmt) stmtNode()  {}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// TypeOf returns the checked type (valid after Check).
	TypeOf() Type
}

type exprBase struct{ typ Type }

func (e *exprBase) exprNode()    {}
func (e *exprBase) TypeOf() Type { return e.typ }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
	Pos   Pos
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Value bool
	Pos   Pos
}

// NullLit is the null reference.
type NullLit struct {
	exprBase
	Pos Pos
}

// VarRef names a local variable or formal parameter.
type VarRef struct {
	exprBase
	Name string
	Pos  Pos
}

// ThisRef is the receiver reference.
type ThisRef struct {
	exprBase
	Pos Pos
}

// FieldRef reads a field of this: this.f.
type FieldRef struct {
	exprBase
	Field string
	Pos   Pos
}

// NewExpr allocates a class instance: new C.
type NewExpr struct {
	exprBase
	Class string
	Pos   Pos
}

// CreateExpr creates a machine instance: create M(payload?). Ownership of
// the payload transfers, exactly like a send.
type CreateExpr struct {
	exprBase
	Machine string
	Payload Expr // nil if none
	Pos     Pos
}

// CallExpr invokes a method: recv.m(args). Recv is a VarRef or ThisRef.
type CallExpr struct {
	exprBase
	Recv   Expr
	Method string
	Args   []Expr
	Pos    Pos
}

// UnaryExpr is !x or -x.
type UnaryExpr struct {
	exprBase
	Op  string
	X   Expr
	Pos Pos
}

// BinaryExpr is a binary scalar operation.
type BinaryExpr struct {
	exprBase
	Op   string
	L, R Expr
	Pos  Pos
}
