package psharp_test

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// TestChessLikeModeAddsSchedulingPoints checks the Table 2 baseline
// mechanism: CHESS-granularity scheduling points (queue lock + dequeue)
// strictly inflate the number of scheduling decisions per schedule on the
// same program.
func TestChessLikeModeAddsSchedulingPoints(t *testing.T) {
	done := 0
	setup := pingPongSetup(3, &done)
	run := func(chess bool) int {
		s := sct.NewRandom(11)
		s.PrepareIteration(0)
		res := psharp.RunTest(setup, psharp.TestConfig{
			Strategy: s, MaxSteps: 10000, ChessLike: chess,
		})
		if res.Bug != nil {
			t.Fatalf("bug: %v", res.Bug)
		}
		return res.SchedulingPoints
	}
	plain := run(false)
	chess := run(true)
	if chess <= plain {
		t.Fatalf("CHESS-granularity points (%d) must exceed send/create-only points (%d)", chess, plain)
	}
	if chess < plain*2 {
		t.Logf("note: chess=%d plain=%d (ratio %.1f)", chess, plain, float64(chess)/float64(plain))
	}
}

// Shared-location machines for the RD-on integration test: two writers
// touch the same declared location with no ordering between them.

type rdPoke struct{ psharp.EventBase }

func racingSetup(racy bool) func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		for i, loc := range []string{"shared.cell", "shared.cell2"} {
			loc := loc
			if racy {
				loc = "shared.cell" // both writers hit the same location
			}
			name := []string{"W1", "W2"}[i]
			r.MustRegister(name, func() psharp.Machine {
				return psharp.MachineFunc(func(sc *psharp.Schema) {
					sc.Start("S").OnEventDo(&rdPoke{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Write(loc)
					})
				})
			})
			id := r.MustCreate(name, nil)
			if err := r.SendEvent(id, &rdPoke{}); err != nil {
				panic(err)
			}
		}
	}
}

// TestRaceDetectorIntegration checks RD-on end to end: unordered writes to
// the same location are reported, distinct locations are not.
func TestRaceDetectorIntegration(t *testing.T) {
	run := func(racy bool) []string {
		s := sct.NewRandom(5)
		s.PrepareIteration(0)
		res := psharp.RunTest(racingSetup(racy), psharp.TestConfig{
			Strategy: s, MaxSteps: 1000, RaceDetect: true,
		})
		return res.Races
	}
	if races := run(true); len(races) == 0 {
		t.Fatal("RD-on must report the unordered same-location writes")
	}
	if races := run(false); len(races) != 0 {
		t.Fatalf("distinct locations must not race: %v", races)
	}
}

// TestRaceAsBugStopsIteration checks that RaceAsBug converts the detector
// report into an iteration-ending bug.
func TestRaceAsBugStopsIteration(t *testing.T) {
	s := sct.NewRandom(5)
	s.PrepareIteration(0)
	res := psharp.RunTest(racingSetup(true), psharp.TestConfig{
		Strategy: s, MaxSteps: 1000, RaceDetect: true, RaceAsBug: true,
	})
	if res.Bug == nil || res.Bug.Kind != psharp.BugDataRace {
		t.Fatalf("want a data-race bug, got %v", res.Bug)
	}
}

// TestTraceEncodingRoundTripProperty fuzzes Decision sequences through the
// text encoding with testing/quick.
func TestTraceEncodingRoundTripProperty(t *testing.T) {
	prop := func(kinds []uint8, seqs []uint16, ints []int16) bool {
		tr := &psharp.Trace{}
		for i, k := range kinds {
			switch k % 3 {
			case 0:
				seq := uint64(1)
				if i < len(seqs) {
					seq = uint64(seqs[i]) + 1
				}
				tr.Decisions = append(tr.Decisions, psharp.Decision{
					Kind:    psharp.DecisionSchedule,
					Machine: psharp.MachineID{Type: "M", Seq: seq},
				})
			case 1:
				tr.Decisions = append(tr.Decisions, psharp.Decision{
					Kind: psharp.DecisionBool, Bool: k%2 == 0,
				})
			case 2:
				v := 0
				if i < len(ints) {
					v = int(ints[i])
					if v < 0 {
						v = -v
					}
				}
				tr.Decisions = append(tr.Decisions, psharp.Decision{
					Kind: psharp.DecisionInt, Int: v,
				})
			}
		}
		var sb strings.Builder
		if err := tr.Encode(&sb); err != nil {
			return false
		}
		back, err := psharp.DecodeTrace(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if len(back.Decisions) != len(tr.Decisions) {
			return false
		}
		for i := range back.Decisions {
			if back.Decisions[i] != tr.Decisions[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestLivelockDetection checks the depth-bound livelock mechanism on a
// minimal self-sending machine (the paper's German livelock pattern).
func TestLivelockDetection(t *testing.T) {
	setup := func(r *psharp.Runtime) {
		r.MustRegister("Spinner", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").OnEventDo(&rdPoke{}, func(ctx *psharp.Context, ev psharp.Event) {
					ctx.Send(ctx.ID(), &rdPoke{})
				})
			})
		})
		id := r.MustCreate("Spinner", nil)
		if err := r.SendEvent(id, &rdPoke{}); err != nil {
			panic(err)
		}
	}
	s := sct.NewRandom(1)
	s.PrepareIteration(0)
	res := psharp.RunTest(setup, psharp.TestConfig{
		Strategy: s, MaxSteps: 200, LivelockAsBug: true,
	})
	if res.Bug == nil || res.Bug.Kind != psharp.BugLivelock {
		t.Fatalf("want a livelock bug at the depth bound, got %v", res.Bug)
	}
	if !res.BoundReached {
		t.Fatal("BoundReached must be set")
	}
}

// TestProductionRuntimeStress runs many production-mode iterations of the
// ping-pong program concurrently with the Go race detector-friendly
// structure (this test is most valuable under `go test -race`).
func TestProductionRuntimeStress(t *testing.T) {
	for i := 0; i < 50; i++ {
		done := 0
		rt := psharp.NewRuntime(psharp.WithSeed(uint64(i)))
		pingPongSetup(4, &done)(rt)
		if err := rt.Wait(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		rt.Stop()
		if done != 1 {
			t.Fatalf("iteration %d: done=%d", i, done)
		}
	}
}
