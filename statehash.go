package psharp

import (
	"math"
	"reflect"
)

// Global-state hashing and step observation: the controller-side hooks
// behind the sct package's DPOR strategy and hashed state cache.
//
// At every scheduling decision the testing controller can (a) report the
// effect footprint of the step it just executed to a StepObserver — the
// strategy-side half of dynamic partial-order reduction — and (b) hash the
// global program state (machine FSM states, queue contents, machine logic
// fields, monitor states and temperatures) and ask a StateCache whether
// that state was already covered, cutting the iteration short when it was.
// Both hooks are off unless the strategy implements StepObserver or
// TestConfig.StateCache is set, and the step bookkeeping is a handful of
// word writes — the allocation-free hot path is unchanged when they are
// off (and stays allocation-free per steady-state step when on, except for
// the reflective deep hash of map-typed logic fields).

// StepOp is the effect footprint of one executed scheduling step: which
// machine ran, which machine (if any) it sent to, which machine (if any)
// it created, and whether a specification monitor observed the step. Two
// steps are dependent — reordering them can change program behavior — iff
// their footprints overlap: same machine, one touches the other's machine,
// both target the same mailbox, or both were observed by monitors (monitor
// verdicts are order-sensitive global state).
type StepOp struct {
	Machine MachineID
	Target  MachineID
	Created MachineID
	// Observed reports that at least one registered monitor observed a
	// send or raise performed during the step.
	Observed bool
}

// StepObserver is implemented by scheduling strategies that need the
// effect footprint of each executed step (sct.DPOR). The controller calls
// ObserveStep exactly once per scheduling decision, after the chosen
// machine's step has run to its next yield point.
type StepObserver interface {
	ObserveStep(op StepOp)
}

// StateCache is consulted by the controller at every scheduling decision
// when TestConfig.StateCache is set. Visit receives the hash of the
// current global state, the hash of the decision prefix that led to it,
// and the prefix depth (decisions made so far); returning true prunes the
// iteration — the controller stops scheduling and reports the iteration
// with IterationResult.Pruned set.
//
// Soundness is the caller's concern: pruning on a revisited state is only
// exhaustive-exploration-preserving under a depth-first strategy (sct.DFS,
// sct.DPOR), whose lexicographic enumeration finishes the owning prefix's
// subtree before any other prefix reaches the state. The sct engine
// refuses to attach a cache to other strategies.
type StateCache interface {
	Visit(state, prefix uint64, depth int) (prune bool)
}

// FNV-1a, the same mixing primitive the sct package uses for schedule
// fingerprints.
const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// mix64 is a SplitMix64-style finalizer used where a component hash is
// built from one word.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// maxDeepHashDepth bounds the reflective walk over machine logic and event
// payloads; it caps cost and breaks pointer cycles.
const maxDeepHashDepth = 8

// stateHasher computes the incremental global-state hash. Per-machine
// components (FSM state, controller status, queue contents, mid-handler
// position, deep-hashed logic fields) are cached and XORed into an
// aggregate; each step dirties only the machines it touched — the machine
// that ran, its send target, machines it created — so a scheduling point
// rehashes O(step footprint) machines, not O(machines). Monitors are few
// and shallow and are rehashed fresh at every point (their temperatures
// change every step under liveness checking).
type stateHasher struct {
	// comps[i] is the cached component of machine Seq i+1; agg is the XOR
	// of all components.
	comps []uint64
	agg   uint64
	// dirty lists component indexes to rehash at the next scheduling
	// point; marked dedups it.
	dirty  []int
	marked []bool
	// prefix is the rolling hash of the decision prefix (schedule, bool,
	// int choices) of the current iteration.
	prefix uint64
	// typeIDs interns event and payload types to stable per-run IDs.
	typeIDs map[reflect.Type]uint64
}

func newStateHasher() *stateHasher {
	return &stateHasher{prefix: fnvOffset64, typeIDs: make(map[reflect.Type]uint64)}
}

// reset prepares the hasher for a fresh iteration. Type interning persists
// across iterations (types are a property of the program, not the run).
func (h *stateHasher) reset() {
	h.comps = h.comps[:0]
	h.agg = 0
	h.dirty = h.dirty[:0]
	h.marked = h.marked[:0]
	h.prefix = fnvOffset64
}

// markDirtySeq records that machine Seq's component must be rehashed. New
// machines whose component slot does not exist yet are picked up by the
// growth path in stateHash.
func (h *stateHasher) markDirtySeq(seq uint64) {
	idx := int(seq) - 1
	if idx < 0 || idx >= len(h.marked) {
		return
	}
	if h.marked[idx] {
		return
	}
	h.marked[idx] = true
	h.dirty = append(h.dirty, idx)
}

// typeID interns a reflect.Type to a stable hash for this run.
func (h *stateHasher) typeID(t reflect.Type) uint64 {
	if id, ok := h.typeIDs[t]; ok {
		return id
	}
	id := fnvString(fnvOffset64, t.String())
	h.typeIDs[t] = id
	return id
}

// dispatchHash seeds a machine's mid-handler position hash at event
// dispatch: the handler's identity is the event type plus payload.
func (h *stateHasher) dispatchHash(ev Event) uint64 {
	if ev == nil {
		return mix64(0x9e3779b97f4a7c15)
	}
	return fnvUint64(h.typeID(eventKey(ev)), h.deepHash(reflect.ValueOf(ev), 0))
}

// deepHash walks a value reflectively and folds its contents into a hash.
// It reads unexported fields through kind-switched accessors (Int, Uint,
// Bool, String, Float64bits — all legal on unexported fields), XORs map
// entries so iteration order cannot leak in, and skips funcs, channels and
// unsafe pointers. The depth cap bounds cost and breaks cycles.
func (h *stateHasher) deepHash(v reflect.Value, depth int) uint64 {
	if !v.IsValid() || depth > maxDeepHashDepth {
		return 0x9e3779b9
	}
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return 0x9e3779b97f4a7c15
		}
		return 0x85ebca6b7f4a7c15
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return mix64(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return mix64(v.Uint())
	case reflect.Float32, reflect.Float64:
		return mix64(math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		return mix64(math.Float64bits(real(c)) ^ mix64(math.Float64bits(imag(c))))
	case reflect.String:
		return fnvString(fnvOffset64, v.String())
	case reflect.Pointer:
		if v.IsNil() {
			return 0xc2b2ae3d
		}
		return mix64(h.deepHash(v.Elem(), depth+1) ^ 0x27d4eb2f)
	case reflect.Interface:
		if v.IsNil() {
			return 0xc2b2ae3d
		}
		e := v.Elem()
		return fnvUint64(h.typeID(e.Type()), h.deepHash(e, depth+1))
	case reflect.Struct:
		hh := fnvOffset64
		for i := 0; i < v.NumField(); i++ {
			hh = fnvUint64(hh, h.deepHash(v.Field(i), depth+1))
		}
		return hh
	case reflect.Slice, reflect.Array:
		n := v.Len()
		hh := fnvUint64(fnvOffset64, uint64(n))
		if n > 128 {
			n = 128 // bound pathological payloads; length is already mixed
		}
		for i := 0; i < n; i++ {
			hh = fnvUint64(hh, h.deepHash(v.Index(i), depth+1))
		}
		return hh
	case reflect.Map:
		if v.IsNil() {
			return 0xc2b2ae3d
		}
		var x uint64
		iter := v.MapRange()
		for iter.Next() {
			x ^= mix64(fnvUint64(h.deepHash(iter.Key(), depth+1), h.deepHash(iter.Value(), depth+1)))
		}
		return fnvUint64(fnvUint64(fnvOffset64, uint64(v.Len())), x)
	default: // Chan, Func, UnsafePointer, Invalid
		return 0x165667b1
	}
}

// hashMachine computes one machine's component: identity, FSM state,
// scheduler status, mid-handler position, queue contents (sender, event
// type, payload — not the global send sequence, which differs across
// behaviorally equivalent interleavings), and the deep hash of the logic
// value's fields.
func (h *stateHasher) hashMachine(m *machineInstance, status machineStatus) uint64 {
	c := fnvUint64(fnvOffset64, m.id.Seq)
	c = fnvString(c, m.state)
	c = fnvByte(c, byte(status))
	c = fnvUint64(c, m.hprog)
	m.mu.Lock()
	c = fnvUint64(c, uint64(len(m.queue)))
	for i := range m.queue {
		env := &m.queue[i]
		c = fnvUint64(c, env.sender.Seq)
		c = fnvUint64(c, h.typeID(eventKey(env.event)))
		c = fnvUint64(c, h.deepHash(reflect.ValueOf(env.event), 0))
	}
	m.mu.Unlock()
	if m.logic != nil {
		c = fnvUint64(c, h.deepHash(reflect.ValueOf(m.logic), 0))
	}
	return mix64(c)
}

// hashMonitor folds one monitor's full state — name, FSM state, hot flag,
// temperature, logic fields — into a component.
func (h *stateHasher) hashMonitor(mon *monitorInstance) uint64 {
	c := fnvString(fnvOffset64, mon.name)
	c = fnvString(c, mon.state)
	if mon.hot {
		c = fnvByte(c, 1)
	} else {
		c = fnvByte(c, 0)
	}
	c = fnvUint64(c, uint64(mon.temp))
	if mon.logic != nil {
		c = fnvUint64(c, h.deepHash(reflect.ValueOf(mon.logic), 0))
	}
	return mix64(c)
}
