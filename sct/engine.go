package sct

import (
	"fmt"
	"io"
	"time"

	"github.com/psharp-go/psharp"
)

// Strategy is an iterative scheduling strategy: a psharp.Strategy plus the
// per-iteration protocol the engine drives.
type Strategy interface {
	psharp.Strategy
	// PrepareIteration is called before iteration iter (0-based); returning
	// false stops the engine because the search space is exhausted.
	PrepareIteration(iter int) bool
}

// Options configures an engine run.
type Options struct {
	// Strategy drives scheduling. Required.
	Strategy Strategy
	// Iterations caps the number of schedules to explore (the paper uses
	// 10,000). Required (must be > 0).
	Iterations int
	// Timeout caps total wall-clock time (the paper uses 5 minutes);
	// zero means no time cap.
	Timeout time.Duration
	// MaxSteps bounds scheduling decisions per iteration; 0 = unbounded.
	MaxSteps int
	// StopOnFirstBug ends the run at the first buggy schedule (as the paper
	// does for CHESS and DFS measurements). When false the engine keeps
	// exploring and counts buggy schedules (as the paper does to compute
	// the random scheduler's %Buggy column).
	StopOnFirstBug bool
	// LivelockAsBug treats hitting MaxSteps as a liveness bug.
	LivelockAsBug bool
	// ChessLike adds CHESS-granularity scheduling points (Table 2 baseline).
	ChessLike bool
	// RaceDetect enables the happens-before race detector (RD-on).
	RaceDetect bool
	// RaceAsBug ends an iteration when a race is detected.
	RaceAsBug bool
	// Progress, if non-nil, receives a line every ProgressEvery iterations.
	Progress      io.Writer
	ProgressEvery int
}

// Report aggregates an engine run; its fields correspond to the columns of
// the paper's Table 2.
type Report struct {
	// Iterations is the number of schedules actually explored.
	Iterations int
	// BuggyIterations counts schedules that exposed a bug.
	BuggyIterations int
	// FirstBug is the first failure found (nil if none).
	FirstBug *psharp.Bug
	// FirstBugIteration is the 0-based iteration of the first failure.
	FirstBugIteration int
	// FirstBugTrace deterministically replays the first failure.
	FirstBugTrace *psharp.Trace
	// MaxSchedulingPoints is the longest schedule seen (#SP).
	MaxSchedulingPoints int
	// TotalSchedulingPoints sums scheduling decisions across iterations.
	TotalSchedulingPoints int64
	// MaxMachines is the largest number of machines in one iteration (#T).
	MaxMachines int
	// BoundReached counts iterations truncated by MaxSteps.
	BoundReached int
	// Exhausted reports that the strategy completed its search space.
	Exhausted bool
	// Elapsed is total wall-clock time.
	Elapsed time.Duration
	// Races collects distinct race reports from RD-on iterations.
	Races []string
}

// BugFound reports whether any iteration failed.
func (r *Report) BugFound() bool { return r.FirstBug != nil }

// SchedulesPerSecond is the paper's #Sch/sec throughput metric.
func (r *Report) SchedulesPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Iterations) / r.Elapsed.Seconds()
}

// PercentBuggy is the paper's %Buggy metric for the random scheduler.
func (r *Report) PercentBuggy() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return 100 * float64(r.BuggyIterations) / float64(r.Iterations)
}

// String summarizes the report in one line.
func (r *Report) String() string {
	bug := "no bug"
	if r.FirstBug != nil {
		bug = fmt.Sprintf("bug at iteration %d: %v", r.FirstBugIteration, r.FirstBug)
	}
	return fmt.Sprintf("%d schedules, %d buggy (%.1f%%), maxSP=%d, %.1f sch/sec, %s",
		r.Iterations, r.BuggyIterations, r.PercentBuggy(), r.MaxSchedulingPoints,
		r.SchedulesPerSecond(), bug)
}

// Run explores schedules of the program constructed by setup until the
// iteration budget, the time budget, or the strategy's search space is
// exhausted — or a bug is found, if StopOnFirstBug is set.
func Run(setup func(*psharp.Runtime), opts Options) Report {
	if opts.Strategy == nil {
		panic("sct: Options.Strategy is required")
	}
	if opts.Iterations <= 0 {
		panic("sct: Options.Iterations must be positive")
	}
	var rep Report
	start := time.Now()
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}
	for iter := 0; iter < opts.Iterations; iter++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		if !opts.Strategy.PrepareIteration(iter) {
			rep.Exhausted = true
			break
		}
		res := psharp.RunTest(setup, psharp.TestConfig{
			Strategy:      opts.Strategy,
			MaxSteps:      opts.MaxSteps,
			LivelockAsBug: opts.LivelockAsBug,
			ChessLike:     opts.ChessLike,
			RaceDetect:    opts.RaceDetect,
			RaceAsBug:     opts.RaceAsBug,
		})
		rep.Iterations++
		rep.TotalSchedulingPoints += int64(res.SchedulingPoints)
		if res.SchedulingPoints > rep.MaxSchedulingPoints {
			rep.MaxSchedulingPoints = res.SchedulingPoints
		}
		if res.Machines > rep.MaxMachines {
			rep.MaxMachines = res.Machines
		}
		if res.BoundReached {
			rep.BoundReached++
		}
		for _, race := range res.Races {
			rep.Races = appendUnique(rep.Races, race)
		}
		if res.Bug != nil {
			rep.BuggyIterations++
			if rep.FirstBug == nil {
				rep.FirstBug = res.Bug
				rep.FirstBugIteration = iter
				rep.FirstBugTrace = res.Trace
			}
			if opts.StopOnFirstBug {
				break
			}
		}
		if opts.Progress != nil && opts.ProgressEvery > 0 && (iter+1)%opts.ProgressEvery == 0 {
			fmt.Fprintf(opts.Progress, "sct: %d/%d schedules, %d buggy\n", iter+1, opts.Iterations, rep.BuggyIterations)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// ReplayTrace re-executes a recorded trace against the program and returns
// the iteration result; used to confirm that a found bug reproduces. The
// cfg's Strategy is replaced by the replay strategy; all other knobs (depth
// bound, livelock reporting, race detection) apply as given so a livelock
// trace reproduces as a livelock.
func ReplayTrace(setup func(*psharp.Runtime), trace *psharp.Trace, cfg psharp.TestConfig) psharp.IterationResult {
	rep := NewReplay(trace)
	rep.PrepareIteration(0)
	cfg.Strategy = rep
	return psharp.RunTest(setup, cfg)
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}
