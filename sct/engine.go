package sct

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/journal"
)

// Strategy is an iterative scheduling strategy: a psharp.Strategy plus the
// per-iteration protocol the engine drives.
type Strategy interface {
	psharp.Strategy
	// PrepareIteration is called before iteration iter (0-based); returning
	// false stops the engine because the search space is exhausted.
	PrepareIteration(iter int) bool
}

// Cloneable is a Strategy that can shard itself across exploration workers.
// CloneForWorker returns an independent strategy instance for worker
// (0-based) out of workers: clones must not share mutable state, and the
// union of the clones' iteration streams should partition the search space
// deterministically (randomized strategies shard their seed streams, DFS
// shards the schedule tree by its first decision). All built-in strategies
// implement Cloneable; RunParallel requires it for homogeneous portfolios.
type Cloneable interface {
	Strategy
	CloneForWorker(worker, workers int) Strategy
}

// Options configures an engine run.
type Options struct {
	// Strategy drives scheduling. Required.
	Strategy Strategy
	// Iterations caps the number of schedules to explore (the paper uses
	// 10,000). Required (must be > 0).
	Iterations int
	// Timeout caps total wall-clock time (the paper uses 5 minutes);
	// zero means no time cap. The deadline is hard: it is polled at every
	// scheduling point, so even a single runaway iteration cannot overrun
	// the budget.
	Timeout time.Duration
	// MaxSteps bounds scheduling decisions per iteration; 0 = unbounded.
	MaxSteps int
	// StopOnFirstBug ends the run at the first buggy schedule (as the paper
	// does for CHESS and DFS measurements). When false the engine keeps
	// exploring and counts buggy schedules (as the paper does to compute
	// the random scheduler's %Buggy column).
	StopOnFirstBug bool
	// LivelockAsBug treats hitting MaxSteps as a liveness bug.
	LivelockAsBug bool
	// LivenessTemperature enables monitor-based liveness checking (see
	// psharp.TestConfig.LivenessTemperature): a registered monitor that
	// stays in a hot state for more than this many consecutive scheduling
	// decisions, or is still hot at quiescence, fails the iteration with
	// psharp.BugLiveness. Only sound under fair strategies (RandomFair).
	LivenessTemperature int
	// ChessLike adds CHESS-granularity scheduling points (Table 2 baseline).
	ChessLike bool
	// RaceDetect enables the happens-before race detector (RD-on).
	RaceDetect bool
	// RaceAsBug ends an iteration when a race is detected.
	RaceAsBug bool
	// Progress, if non-nil, receives a typed Progress snapshot every
	// ProgressEvery iterations of each worker (ProgressEvery <= 0 disables
	// emission). Calls are serialized behind a run-wide mutex, so one
	// ProgressFunc safely serves every RunParallel worker. ProgressText and
	// ProgressJSONL adapt it back to an io.Writer.
	Progress      ProgressFunc
	ProgressEvery int
	// Telemetry, if non-nil, accumulates campaign metrics — depth
	// histograms, state-transition coverage, bug census, and growth curves
	// over wall-clock time — across every iteration and worker of the run.
	// One accumulator can also be shared across runs (psharp-bench reuses
	// one per benchmark variant).
	Telemetry *Telemetry
	// Journal, if non-nil, makes the campaign durable and resumable: workers
	// append their newly-distinct schedule fingerprints and strategy cursors
	// to the crash-safe journal in batches (see JournalFlushEvery), counters
	// merge monotonically across resumed runs, and a journal opened with
	// journal.Resume preloads the prior runs' state so covered schedules are
	// never re-executed. Incompatible with ParallelOptions.Dynamic, whose
	// work assignment is not replayable. Journal IO errors are latched
	// (Journal.Err), never propagated into the exploration loop.
	Journal *journal.Campaign
	// JournalFlushEvery is the per-worker journal batching cadence in
	// iterations; 0 selects DefaultJournalFlushEvery.
	JournalFlushEvery int
	// Stop, when non-nil, requests cooperative cancellation when it is
	// closed: workers notice at the next scheduling point, the run winds
	// down normally (final journal flush, telemetry point, merged Report
	// with Interrupted set). This is how psharp-test turns SIGINT/SIGTERM
	// into a clean partial campaign instead of lost work.
	Stop <-chan struct{}
	// StateCache attaches a hashed global-state cache shared by every
	// worker of the run: iterations that revisit an already-covered global
	// state are cut short (pruned) instead of re-exploring its subtree.
	// Pruned iterations are reported separately (Report.PrunedIterations)
	// and never count toward Iterations or DistinctSchedules. Only sound
	// with depth-first strategies — the engine panics unless every worker
	// runs DFS or DPOR — and incompatible with fault injection.
	StateCache bool
	// Faults configures fault-injection nondeterminism. When Faults.Budget
	// is positive, the engine wraps Strategy in a FaultInjector (sharded
	// per worker under RunParallel) and enables fault queries on every
	// iteration, so schedules explore crashes, drops, duplicates and
	// reorders on top of interleavings. Zero Budget leaves the run
	// fault-free.
	Faults FaultOptions
}

// Report aggregates an engine run; its fields correspond to the columns of
// the paper's Table 2.
type Report struct {
	// Iterations is the number of schedules actually explored.
	Iterations int
	// DistinctSchedules counts unique decision traces among the explored
	// schedules (by fingerprint); under RunParallel the count is merged
	// across workers, so duplicated work is visible as Iterations minus
	// DistinctSchedules.
	DistinctSchedules int
	// BuggyIterations counts schedules that exposed a bug.
	BuggyIterations int
	// FirstBug is the first failure found (nil if none).
	FirstBug *psharp.Bug
	// FirstBugIteration is the 0-based iteration of the first failure. Under
	// RunParallel it is the global iteration index (see ParallelReport).
	FirstBugIteration int
	// FirstBugTrace deterministically replays the first failure.
	FirstBugTrace *psharp.Trace
	// MaxSchedulingPoints is the longest schedule seen (#SP).
	MaxSchedulingPoints int
	// TotalSchedulingPoints sums scheduling decisions across iterations.
	TotalSchedulingPoints int64
	// MaxMachines is the largest number of machines in one iteration (#T).
	MaxMachines int
	// BoundReached counts iterations truncated by MaxSteps.
	BoundReached int
	// PrunedIterations counts iterations the state cache cut short at a
	// revisited global state (Options.StateCache). Pruned iterations
	// consume schedule budget but explore nothing new, so they are kept
	// out of Iterations, DistinctSchedules and SchedulesPerSecond.
	PrunedIterations int
	// DistinctStates is the number of distinct hashed global states the
	// run visited; 0 when the state cache was off. Per-run only: state
	// hashes are not journaled, so a resumed campaign's count restarts.
	DistinctStates int
	// Exhausted reports that the strategy completed its search space.
	Exhausted bool
	// Interrupted reports that the run ended early — an external stop
	// (Options.Stop) or the hard Timeout deadline — with budget left
	// unexplored. A journaled interrupted run resumes where it stopped.
	Interrupted bool
	// Elapsed is total wall-clock time.
	Elapsed time.Duration
	// Races collects distinct race reports from RD-on iterations.
	Races []string
	// Faults totals the failure actions injected across all iterations
	// (zero when the run had no fault budget).
	Faults psharp.FaultStats
}

// BugFound reports whether any iteration failed.
func (r *Report) BugFound() bool { return r.FirstBug != nil }

// SchedulesPerSecond is the paper's #Sch/sec throughput metric.
func (r *Report) SchedulesPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Iterations) / r.Elapsed.Seconds()
}

// PercentBuggy is the paper's %Buggy metric for the random scheduler.
func (r *Report) PercentBuggy() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return 100 * float64(r.BuggyIterations) / float64(r.Iterations)
}

// String summarizes the report in one line.
func (r *Report) String() string {
	bug := "no bug"
	if r.FirstBug != nil {
		bug = fmt.Sprintf("bug at iteration %d: %v", r.FirstBugIteration, r.FirstBug)
	}
	mark := ""
	if r.Interrupted {
		mark = " [interrupted]"
	}
	return fmt.Sprintf("%d schedules (%d distinct), %d buggy (%.1f%%), maxSP=%d, %.1f sch/sec, %s%s",
		r.Iterations, r.DistinctSchedules, r.BuggyIterations, r.PercentBuggy(), r.MaxSchedulingPoints,
		r.SchedulesPerSecond(), bug, mark)
}

// raceSet deduplicates race reports in O(1) per insert while preserving
// first-seen order; races are merged from many workers, so this is on the
// parallel hot path.
type raceSet struct {
	seen map[string]struct{}
	list []string
}

func (s *raceSet) add(race string) {
	if s.seen == nil {
		s.seen = make(map[string]struct{})
	}
	if _, dup := s.seen[race]; dup {
		return
	}
	s.seen[race] = struct{}{}
	s.list = append(s.list, race)
}

func (s *raceSet) addAll(races []string) {
	for _, r := range races {
		s.add(r)
	}
}

// shared is the state one engine run's workers cooperate through. The
// sequential Run is the one-worker special case.
type shared struct {
	opts     Options
	start    time.Time
	deadline time.Time // zero when Timeout is unset
	// workers is the run's worker count (1 for sequential Run), reported in
	// progress snapshots.
	workers int

	// stop is the cooperative cancellation flag: StopOnFirstBug, the hard
	// deadline, and external aborts set it; workers poll it between
	// iterations and (via TestConfig.Interrupt) at every scheduling point.
	stop atomic.Bool
	// external records that stop was set by Options.Stop: the run counts as
	// interrupted regardless of how much budget it had consumed.
	external atomic.Bool
	// baseElapsed is the cumulative wall-clock time of the prior journaled
	// runs of this campaign (zero without a journal); telemetry and
	// checkpoints report base+current so curves span resumes.
	baseElapsed time.Duration

	// iterations, buggy and distinct count campaign-wide explored, buggy,
	// and distinct-fingerprint schedules across all workers; progress
	// snapshots and telemetry growth curves read them so they always report
	// global campaign state, not one worker's slice of it.
	iterations atomic.Int64
	buggy      atomic.Int64
	distinct   atomic.Int64
	// pruned counts state-cache-truncated iterations campaign-wide; cache
	// is the shared state cache, nil unless Options.StateCache is set.
	pruned atomic.Int64
	cache  *stateCache

	// budget and ticket implement work-stealing (ParallelOptions.Dynamic):
	// dynamic workers claim global iteration tickets from the shared counter
	// until the budget is spent, instead of working a pre-assigned shard.
	budget int
	ticket atomic.Int64

	fingerprints fingerprintSet

	// progressMu serializes Options.Progress across workers.
	progressMu sync.Mutex
}

func newShared(opts Options, start time.Time) *shared {
	sh := &shared{opts: opts, start: start, workers: 1, budget: opts.Iterations}
	if opts.Timeout > 0 {
		sh.deadline = start.Add(opts.Timeout)
	}
	if opts.StateCache {
		sh.cache = newStateCache()
	}
	if j := opts.Journal; j != nil {
		// Preload the campaign's journaled fingerprints (this shard's and
		// every peer's) so already-covered schedules count as duplicates, and
		// the prior runs' counters so progress lines report campaign totals.
		for _, fp := range j.Fingerprints() {
			sh.fingerprints.insert(fp)
		}
		sh.distinct.Store(int64(sh.fingerprints.size()))
		base := j.Counters()
		sh.baseElapsed = time.Duration(base.ElapsedMicros) * time.Microsecond
		sh.iterations.Store(base.Iterations)
		sh.buggy.Store(base.BuggyIterations)
	}
	if opts.Telemetry != nil {
		opts.Telemetry.begin(start)
		if j := opts.Journal; j != nil {
			opts.Telemetry.restore(sh.baseElapsed, j.Checkpoints())
		}
	}
	return sh
}

// watchStop wires Options.Stop into the cooperative cancellation flag; the
// returned release func must be called when the run ends so the watcher
// goroutine exits.
func (sh *shared) watchStop() (release func()) {
	if sh.opts.Stop == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-sh.opts.Stop:
			sh.external.Store(true)
			sh.stop.Store(true)
		case <-done:
		}
	}()
	return func() { close(done) }
}

// interruptedOutcome classifies a finished run: true when it ended on an
// external stop or on the hard deadline with planned iterations still
// unexplored. Complete runs, exhausted strategies and deliberate
// StopOnFirstBug stops are not interruptions. Callers evaluate this before
// merging any journaled baseline, so rep.Iterations counts this run only
// and planned is this run's residual budget.
func (sh *shared) interruptedOutcome(rep *Report, planned int) bool {
	if sh.external.Load() {
		return true
	}
	if !sh.expired() || rep.Exhausted {
		return false
	}
	if sh.opts.StopOnFirstBug && rep.FirstBug != nil {
		return false
	}
	// Pruned iterations consumed budget too: a deadline that fired after
	// the last planned iteration is not an interruption.
	return rep.Iterations+rep.PrunedIterations < planned
}

// emitProgress builds a campaign-wide progress snapshot and hands it to the
// configured ProgressFunc, serialized across workers.
func (sh *shared) emitProgress(w *worker, workerIters int) {
	p := Progress{
		Worker:           w.id,
		Workers:          sh.workers,
		Strategy:         w.label,
		WorkerIterations: workerIters,
		Iterations:       sh.iterations.Load(),
		Budget:           sh.budget,
		Buggy:            sh.buggy.Load(),
		Distinct:         sh.distinct.Load(),
		Pruned:           sh.pruned.Load(),
		Elapsed:          time.Since(sh.start),
	}
	if sh.cache != nil {
		p.DistinctStates = int64(sh.cache.size())
	}
	sh.progressMu.Lock()
	sh.opts.Progress(p)
	sh.progressMu.Unlock()
}

// expired reports whether the hard deadline has passed.
func (sh *shared) expired() bool {
	return !sh.deadline.IsZero() && !time.Now().Before(sh.deadline)
}

// worker identifies one exploration worker and its slice of the global
// iteration space: the worker runs local iterations 0..quota-1, and local
// iteration i is global iteration offset + i*stride. Sequential Run uses
// the identity mapping {0, 1, quota=Iterations}. A dynamic worker ignores
// the static shard and instead claims global iteration tickets from the
// shared counter until the budget is spent (work stealing).
type worker struct {
	id       int
	strategy Strategy
	label    string // strategy name for sub-reports; "" in sequential runs
	offset   int
	stride   int
	quota    int
	// start is the local iteration to begin at: 0 for fresh runs, the
	// journaled completed count when resuming (the worker→iteration mapping
	// is position-independent, so restarting the stream there is exact).
	start   int
	dynamic bool
}

// globalIter maps a local iteration index to its global index.
func (w *worker) globalIter(local int) int { return w.offset + local*w.stride }

// nextIteration decides whether the worker runs local iteration local and
// returns the global index it accounts against. Static workers walk their
// pre-assigned shard; dynamic workers claim the next ticket from the shared
// budget, so fast workers absorb the iterations slow workers never reach.
func (w *worker) nextIteration(sh *shared, local int) (int, bool) {
	if w.dynamic {
		t := sh.ticket.Add(1) - 1
		if t >= int64(sh.budget) {
			return 0, false
		}
		return int(t), true
	}
	if local >= w.quota {
		return 0, false
	}
	return w.globalIter(local), true
}

// runWorker is the core exploration loop shared by Run and RunParallel.
// Every worker owns a psharp.TestHarness, so runtime machinery (machine
// instances, goroutines, queues, trace buffers) is recycled across its
// iterations instead of rebuilt.
func runWorker(setup func(*psharp.Runtime), sh *shared, w worker) Report {
	opts := sh.opts
	var rep Report
	var races raceSet
	start := time.Now()
	interrupt := func() bool { return sh.stop.Load() || sh.expired() }
	h := psharp.NewTestHarness(setup)
	defer h.Close()
	cfg := psharp.TestConfig{
		Strategy:            w.strategy,
		MaxSteps:            opts.MaxSteps,
		LivelockAsBug:       opts.LivelockAsBug,
		LivenessTemperature: opts.LivenessTemperature,
		ChessLike:           opts.ChessLike,
		RaceDetect:          opts.RaceDetect,
		RaceAsBug:           opts.RaceAsBug,
		Interrupt:           interrupt,
	}
	if opts.Telemetry != nil {
		cfg.Coverage = opts.Telemetry.Coverage()
	}
	if opts.Faults.Budget > 0 {
		cfg.Faults = &psharp.FaultConfig{Immune: opts.Faults.Immune}
	}
	if sh.cache != nil {
		cfg.StateCache = sh.cache
	}
	var jw *journalWriter
	if opts.Journal != nil {
		jw = newJournalWriter(sh, &w)
	}
	completed := w.start
	for local := w.start; ; local++ {
		if interrupt() {
			break
		}
		// Dynamic workers prepare before claiming a ticket: an exhausted
		// strategy must not burn budget that another worker could execute.
		// (The final prepared-but-unclaimed iteration is discarded, which is
		// harmless — the worker stops either way.)
		if w.dynamic && !w.strategy.PrepareIteration(local) {
			rep.Exhausted = true
			break
		}
		global, ok := w.nextIteration(sh, local)
		if !ok {
			break
		}
		if !w.dynamic && !w.strategy.PrepareIteration(local) {
			rep.Exhausted = true
			break
		}
		res := h.Run(cfg)
		if res.Interrupted {
			break // partial schedule: not counted
		}
		if res.Pruned {
			// A revisited state truncated the schedule: budget was spent but
			// nothing new was explored. Keep the iteration out of every
			// throughput and distinctness counter, but advance the journal
			// position — on resume the strategy re-derives the same prune.
			rep.PrunedIterations++
			sh.pruned.Add(1)
			completed = local + 1
			if jw != nil {
				jw.note(0, false, completed)
			}
			continue
		}
		rep.Iterations++
		sh.iterations.Add(1)
		rep.TotalSchedulingPoints += int64(res.SchedulingPoints)
		if res.SchedulingPoints > rep.MaxSchedulingPoints {
			rep.MaxSchedulingPoints = res.SchedulingPoints
		}
		if res.Machines > rep.MaxMachines {
			rep.MaxMachines = res.Machines
		}
		if res.BoundReached {
			rep.BoundReached++
		}
		rep.Faults.Add(res.Faults)
		completed = local + 1
		fp := fingerprintTrace(res.Trace)
		isNew := sh.fingerprints.insert(fp)
		if isNew {
			rep.DistinctSchedules++
			sh.distinct.Add(1)
		}
		if jw != nil {
			jw.note(fp, isNew, completed)
		}
		races.addAll(res.Races)
		if res.Bug != nil {
			rep.BuggyIterations++
			sh.buggy.Add(1)
			if rep.FirstBug == nil {
				rep.FirstBug = res.Bug
				rep.FirstBugIteration = global
				// The harness reuses its trace buffer; detach the copy we keep.
				rep.FirstBugTrace = res.Trace.Clone()
			}
			if opts.StopOnFirstBug {
				if tel := opts.Telemetry; tel != nil {
					tel.record(&res)
				}
				sh.stop.Store(true)
				break
			}
		}
		if tel := opts.Telemetry; tel != nil {
			tel.record(&res)
			tel.maybeSample(sh)
		}
		if opts.Progress != nil && opts.ProgressEvery > 0 && (local+1)%opts.ProgressEvery == 0 {
			sh.emitProgress(&w, local+1)
		}
	}
	if jw != nil {
		// The final flush makes every completed iteration durable, whatever
		// ended the loop (quota, deadline, external stop, first bug).
		jw.flush(completed)
	}
	rep.Races = races.list
	rep.Elapsed = time.Since(start)
	return rep
}

// Run explores schedules of the program constructed by setup until the
// iteration budget, the time budget, or the strategy's search space is
// exhausted — or a bug is found, if StopOnFirstBug is set. Run is the
// single-worker case of the engine's core loop; RunParallel fans the same
// loop out over many workers.
func Run(setup func(*psharp.Runtime), opts Options) Report {
	if opts.Strategy == nil {
		panic("sct: Options.Strategy is required")
	}
	if opts.Iterations <= 0 {
		panic("sct: Options.Iterations must be positive")
	}
	start := time.Now()
	strategy := opts.Strategy
	if opts.Faults.Budget > 0 {
		checkFaultable(strategy)
		strategy = newFaultInjector(strategy, opts.Faults, 0, 1)
	}
	if opts.StateCache {
		checkStateCacheable(strategy, opts.Faults.Budget)
	}
	sh := newShared(opts, start)
	w := worker{id: 0, strategy: strategy, offset: 0, stride: 1, quota: opts.Iterations}
	if opts.Journal != nil {
		restoreCursor(opts.Journal, &w)
	}
	release := sh.watchStop()
	rep := runWorker(setup, sh, w)
	release()
	if opts.Telemetry != nil {
		opts.Telemetry.finish(sh)
	}
	rep.Elapsed = time.Since(start)
	rep.Interrupted = sh.interruptedOutcome(&rep, opts.Iterations-w.start)
	if sh.cache != nil {
		rep.DistinctStates = sh.cache.size()
	}
	finishJournal(sh, &rep)
	return rep
}

// checkStateCacheable panics unless strategy is one the state cache is
// sound under — a depth-first enumerator whose lexicographic order
// completes a state's owning subtree before any other prefix revisits it.
func checkStateCacheable(strategy Strategy, faultBudget int) {
	if faultBudget > 0 {
		panic("sct: Options.StateCache cannot be combined with fault injection: injected faults mutate state outside the hashed footprint")
	}
	switch strategy.(type) {
	case *DFS, *DPOR:
	default:
		panic(fmt.Sprintf("sct: Options.StateCache requires a depth-first strategy (DFS or DPOR), not %s: pruning revisited states is only exhaustive-preserving under depth-first enumeration", strategyName(strategy)))
	}
}

// checkFaultable panics for strategies that cannot sit inside a
// FaultInjector: DPOR needs the controller's StepObserver hook, which the
// injector wrapper would hide (and fault decisions carry no footprints).
func checkFaultable(strategy Strategy) {
	if _, ok := strategy.(*DPOR); ok {
		panic("sct: DPOR does not support fault injection: fault decisions are not footprint-tracked, so the reduction would be unsound")
	}
}

// ReplayTrace re-executes a recorded trace against the program and returns
// the iteration result; used to confirm that a found bug reproduces. The
// cfg's Strategy is replaced by the replay strategy; all other knobs (depth
// bound, livelock reporting, race detection) apply as given so a livelock
// trace reproduces as a livelock.
// If the trace carries fault decisions and cfg.Faults is nil, fault queries
// are enabled automatically: the recorded actions are self-contained, so
// replaying a crash schedule needs no knowledge of the original fault
// configuration.
func ReplayTrace(setup func(*psharp.Runtime), trace *psharp.Trace, cfg psharp.TestConfig) psharp.IterationResult {
	rep := NewReplay(trace)
	rep.PrepareIteration(0)
	cfg.Strategy = rep
	if cfg.Faults == nil && trace.HasFaultDecisions() {
		cfg.Faults = &psharp.FaultConfig{}
	}
	return psharp.RunTest(setup, cfg)
}
