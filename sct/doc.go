// Package sct implements systematic concurrency testing for P# programs
// (paper Section 6.2): an iteration engine that repeatedly executes a
// program from start to completion under controlled schedules, plus the
// scheduling strategies the paper evaluates — exhaustive depth-first search
// and uniform random — together with replay (for deterministic bug
// reproduction), PCT (Burckhardt et al., the paper's reference [4]) and
// delay-bounding (Emmi et al., reference [9]) as extensions.
//
// The engine has no false positives: every reported bug comes with a
// schedule trace that replays it deterministically.
//
// # Liveness checking and fair scheduling
//
// Safety bugs are findable by any strategy; liveness bugs ("eventually
// responds", specified by hot/cold monitor states — see the psharp
// package's "Specifying correctness") additionally need fairness. A
// monitor stuck in a hot state under an unfair scheduler may mean only
// that the scheduler starved the machine that would discharge the
// obligation; the paper's plain random scheduler therefore cannot soundly
// report liveness violations at all, and simply misses that bug class.
// RandomFair is the CHESS-style recipe: a uniformly random prefix explores
// the reorderings that trigger the bug, then fair round-robin over the
// enabled machines guarantees every would-be discharger runs. With
// Options.LivenessTemperature set above the prefix plus a few fair rounds,
// a hot streak that crosses the threshold is a genuine violation — and
// since the temperature is a function of the schedule alone, the resulting
// psharp.BugLiveness replays deterministically through ReplayTrace like
// every other bug. RandomFair shards its seed stream across parallel
// workers like Random, and "fair" is a valid portfolio member.
//
// # Parallel portfolio exploration
//
// Run explores schedules one at a time; RunParallel fans the same core
// loop out over a pool of workers, each running an independent strategy
// instance. Two portfolio shapes are supported:
//
//   - Homogeneous: ParallelOptions.Strategy implements Cloneable, and
//     worker w of n receives CloneForWorker(w, n). The built-in strategies
//     shard deterministically: the randomized ones (Random, PCT,
//     DelayBounding) map worker w's local iterations onto the global
//     iteration stream {w, w+n, w+2n, ...} of the same base seed, so the
//     parallel run explores exactly the same schedule population as the
//     sequential run with that seed and budget; DFS shards the schedule
//     tree by its first decision so the clones partition it.
//   - Heterogeneous: ParallelOptions.Portfolio mixes strategies (e.g.
//     NewPortfolio or ParsePortfolio("random,pct,delay,dfs", ...)), with
//     members assigned to workers round-robin and sharded within a member
//     when several workers run it.
//
// The global iteration budget is divided exactly across workers, per-worker
// statistics are merged into one Report (plus per-worker sub-reports in
// ParallelReport.Workers), and every explored schedule is fingerprinted —
// a hash of its decision trace — so Report.DistinctSchedules states how
// many distinct schedules a run covered rather than just raw iteration
// throughput. Cancellation is cooperative and prompt: StopOnFirstBug, the
// hard Timeout deadline and the budget are polled at every scheduling
// point, so even a runaway iteration cannot keep a worker alive.
//
// Determinism carries over: the same seed and worker count reproduce the
// same merged counts (for runs that are not stopped early, whose timing is
// inherently racy), and a bug trace found by any worker replays through
// ReplayTrace exactly like a sequentially-found one.
//
// # Partial-order reduction and state caching
//
// Exhaustive enumeration wastes most of its budget on schedules that differ
// only in the order of commuting operations — sends to different machines,
// steps of machines that never interact. Two reduction mechanisms prune
// that redundancy, composable and individually optional:
//
//   - DPOR (NewDPOR) is dynamic partial-order reduction in the
//     Flanagan–Godefroid style with sleep sets. The engine reports each
//     executed step's footprint (which machine ran, which mailbox it
//     targeted, which machine it created) back to the strategy, which
//     inserts backtrack points only where two steps of different machines
//     actually conflict; interleavings of independent steps collapse into
//     one representative. Sleep sets steer workers away from branches whose
//     conflicts were already explored. DPOR is exhaustive where DFS is —
//     when it exhausts its tree, every Mazurkiewicz trace of the program
//     has a representative explored — but reaches exhaustion orders of
//     magnitude sooner on programs with independent components. It shards
//     across parallel workers by residue class of the root branch (the
//     root keeps all branches, so sharding never loses soundness), and
//     implements CursorStrategy, so journaled DPOR campaigns resume
//     mid-frontier.
//
//   - The hashed global-state cache (Options.StateCache) fingerprints the
//     global state — every machine's serialized fields, control state and
//     queue contents, plus monitor states and liveness temperatures — at
//     each scheduling point, incrementally (only machines that stepped
//     rehash). When a schedule reaches a state some earlier schedule
//     already covered at the same or shallower depth with a different
//     prefix, the rest of the iteration is cut short: everything reachable
//     below it has been or will be explored from the first visit. Pruned
//     attempts are reported as Report.PrunedIterations and the state
//     population as Report.DistinctStates — never folded into Iterations,
//     DistinctSchedules or SchedulesPerSecond, so throughput numbers stay
//     comparable with cache-free runs.
//
// Both mechanisms are sound for bug finding (they skip only executions
// equivalent to an explored one) but only relative to depth-first
// exploration, and neither composes with fault injection (fault decisions
// are not footprint-tracked). The engine enforces this: StateCache demands
// a DFS or DPOR strategy and no fault budget, DPOR refuses fault injection
// and dynamic work stealing, and psharp-test turns the same rules into
// exit-2 flag errors. Note the paper's own Table 2 caveat applies — on
// protocols whose bugs hide deep in long schedules, random search finds
// what any depth-first enumeration (reduced or not) misses; DPOR+cache is
// the right tool when exhaustiveness or a reproducible sweep of a
// tractable state space is the goal, and the dpor_probe gate in
// psharp-bench holds it to at most half of random's schedules-to-bug on
// the corpus subset where both apply.
//
// # Performance model
//
// Each worker owns a psharp.TestHarness, so consecutive iterations recycle
// the serialized runtime, machine instances, parked goroutines, queue
// slices and trace buffers instead of rebuilding them (see the psharp
// package's performance model); per-iteration allocations are proportional
// to machines created, and extra scheduling points are allocation-free.
// The harness also carries the per-type compiled-schema cache across
// iterations, so programs whose machines use the static declaration form
// (psharp.StaticMachine) compile each schema once per worker, ever —
// setup re-registers the types every iteration, but registration is a
// cache hit from iteration 2 on. Closure-form machines keep paying one
// schema build per machine per iteration, which now dominates their
// allocation profile (see the schema_cache_probe below).
//
// Static sharding (the default) pre-assigns worker w the global iterations
// congruent to w modulo n, which is what makes parallel runs deterministic
// and population-equal to sequential ones — but leaves workers idle when
// iteration costs skew. ParallelOptions.Dynamic trades that determinism
// away for utilization: workers claim iteration tickets from a shared
// atomic counter, so the merged counts and FirstBugIteration vary run to
// run (each WorkerReport records the iterations its worker actually
// executed), while every found bug still replays deterministically from
// its trace.
//
// Fault injection (Options.Faults) rides the same hot path at near-zero
// cost when off: with no fault budget the controller never issues fault
// queries and the trace carries no fault records. With a budget, every
// scheduler pass and every machine send adds one strategy query and one
// trace record (an appended Decision, amortized into the recycled trace
// buffer), and each crash-with-restart pays one factory call plus machine
// re-wiring — proportional to faults injected, not schedule length. The
// injector's own randomness is a separate seed-sharded stream, so enabling
// faults does not perturb which interleavings the inner strategy explores,
// and fault-enabled parallel runs shard deterministically like Random does
// (see fault_probe below for what the budget buys on the crash-tolerant
// corpus).
//
// Specification monitors cost almost nothing on this hot path: observation
// is synchronous, allocation-free dispatch through the monitor's compiled
// schema (cached per name, instance recycled by the harness), so a
// monitored worker pays only the monitor factory's allocations per
// iteration — at most 5 on the protocol workloads, gated by the monitor
// allocation caps and recorded in BENCH_sct.json's monitor_overhead_probe.
//
// BENCH_sct.json, emitted by psharp-bench -json, records the throughput
// trajectory across changes: schedules_per_sec and total_scheduling_points
// for the probe run, alloc_probes comparing allocs/iteration through the
// pooled harness vs one-shot RunTest per workload (the relay-hotpath entry
// isolates runtime overhead; the protocol entry runs static-form machines
// against the schema cache), schema_cache_probe comparing the same
// protocol with the cache on vs off (per-instance rebuilds, the closure
// form's cost), monitor_overhead_probe comparing the protocol with its
// specification monitors attached vs plain, telemetry_overhead_probe
// comparing allocs/iteration with a Telemetry accumulator attached vs
// without (its delta is capped at 3), fault_probe comparing buggy-schedule
// yield on the crash-tolerant corpus with faults off vs on under the same
// schedule budget, dpor_probe comparing schedules-to-bug for DPOR+cache vs
// random search on the gated corpus subset (the ratio is capped at 0.5),
// state_cache_probe recording the cache's prune rate and distinct-state
// population on a keep-going run, and worker_iterations showing the
// per-worker split (uneven under Dynamic).
//
// # Observability
//
// The engine exposes campaign measurement at three granularities, all built
// on the obs package's allocation-conscious primitives so the performance
// model above survives with them enabled:
//
//   - Progress snapshots: Options.Progress receives a typed Progress value
//     every ProgressEvery iterations of each worker, serialized behind a
//     run-wide mutex. Snapshots carry global counters (iterations, buggy,
//     distinct fingerprints against the global budget) so they report true
//     campaign progress even under Dynamic work stealing. ProgressText
//     renders a human line; ProgressJSONL a machine-readable stream.
//
//   - Telemetry: Options.Telemetry accumulates, across every worker of a
//     run, the distribution of schedule depths (a fixed 64-bucket
//     power-of-two histogram over scheduling points per iteration),
//     state-transition coverage — the distinct (machine type, state, event)
//     triples the explored schedules actually dispatched, interned once and
//     then counted with an atomic add per hit — a census of buggy
//     iterations by bug kind, and a growth curve sampling iterations,
//     distinct schedule fingerprints, and covered transitions against
//     wall-clock time (bounded points; the interval doubles and the curve
//     thins when it fills). Recording happens between iterations and is
//     allocation-free in steady state; Telemetry.Snapshot is the
//     allocating, read-only view and is safe against a live run, which is
//     what psharp-test's -http debug endpoint serves.
//
//   - Campaign reports: NewCampaign assembles a versioned (CampaignVersion)
//     JSON document from a finished run — environment metadata, the merged
//     result, a per-strategy breakdown of portfolio workers, and the
//     telemetry snapshot with its coverage-growth curve. psharp-test
//     -report-out writes one; psharp-bench embeds them per benchmark.
//
// # Resumable campaigns
//
// Options.Journal attaches a journal.Campaign, making the run durable and
// resumable (see the journal package for the file format and recovery
// semantics). Each worker appends its schedule fingerprints and its
// strategy cursor in batches of JournalFlushEvery iterations from a
// preallocated buffer, off the scheduling hot path — journaling adds at
// most one allocation per steady-state iteration (measured zero; gated by
// the alloc test), and journal IO errors are latched on the Campaign
// rather than propagated into the exploration loop. Within a batch,
// fingerprints are appended before the cursor that covers them, so a torn
// tail can only re-execute up to one batch of schedules after resume —
// idempotent work — and never skip any.
//
// On a resumed run the engine restores each worker before its first
// iteration: strategies implementing CursorStrategy (DFS and DPOR, whose
// cursors are their serialized enumeration frontiers — DPOR's additionally
// carries its backtrack sets, sleep sets and step footprints) reload their
// exact position via LoadCursor, while the reseeding strategies (Random, RandomFair, PCT,
// DelayBounding, FaultInjector around any of them) need only the
// completed-iteration count, because worker w's iteration k is a pure
// function of (seed, w, k). Workers then skip their already-completed
// slots of the global iteration stream — zero journal-covered schedules
// re-execute (observable in ParallelReport.Workers, whose per-worker
// iteration counts are this-process-only) — and the merged Report carries
// campaign-cumulative counters: the journaled base counters merge in
// monotonically (sums for sums, maxes for high-water marks), and
// Report.DistinctSchedules counts the union of journaled and new
// fingerprints. Dynamic work stealing is refused with a journal: ticket
// assignment is not a function of (seed, worker), so a stolen iteration
// could not be attributed to a resumable cursor.
//
// Options.Stop is the cooperative-cancellation side of the same story:
// closing the channel (psharp-test wires SIGINT/SIGTERM to it) stops every
// worker at its next scheduling point, flushes the journal batches and a
// final checkpoint, and returns a Report with Interrupted set — partial
// results intact — rather than dying with state unwritten. The hard
// Timeout deadline reports the same way; exhausting the budget or
// StopOnFirstBug does not count as an interruption.
package sct
