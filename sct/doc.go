// Package sct implements systematic concurrency testing for P# programs
// (paper Section 6.2): an iteration engine that repeatedly executes a
// program from start to completion under controlled schedules, plus the
// scheduling strategies the paper evaluates — exhaustive depth-first search
// and uniform random — together with replay (for deterministic bug
// reproduction), PCT (Burckhardt et al., the paper's reference [4]) and
// delay-bounding (Emmi et al., reference [9]) as extensions.
//
// The engine has no false positives: every reported bug comes with a
// schedule trace that replays it deterministically.
package sct
