package sct

import (
	"path/filepath"
	"testing"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/journal"
)

// TestJournalWriterAllocBudget pins the ISSUE's hot-path bound: journaling
// adds at most one allocation per iteration in steady state. The batch
// slice, the campaign's encode buffer and the log's write buffer are all
// reused, so the amortized cost is the occasional map-growth and
// buffer-growth allocation plus a buffered write every flush.
func TestJournalWriterAllocBudget(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "alloc")
	c, err := journal.Create(dir, journal.Meta{
		Strategy: "random", Seed: 1, Workers: 1, ShardCount: 1,
	}, journal.Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	opts := Options{Strategy: NewRandom(1), Iterations: 1 << 30, Journal: c}
	sh := newShared(opts, time.Now())
	w := worker{strategy: opts.Strategy, stride: 1, quota: 1 << 30}
	jw := newJournalWriter(sh, &w)

	// Warm the reusable buffers past their growth phase.
	completed := 0
	fp := uint64(0)
	iterate := func() {
		completed++
		fp += 0x9e3779b97f4a7c15
		jw.note(fp, true, completed)
	}
	for i := 0; i < 4096; i++ {
		iterate()
	}

	allocs := testing.AllocsPerRun(20000, iterate)
	if allocs > 1.0 {
		t.Fatalf("journaling costs %.2f allocs/iteration in steady state, budget is 1", allocs)
	}
	t.Logf("journal steady-state cost: %.3f allocs/iteration", allocs)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDFSCursorBlobRoundTrip: a mid-search DFS frontier survives
// SaveCursor/LoadCursor into a freshly constructed DFS byte-for-byte.
func TestDFSCursorBlobRoundTrip(t *testing.T) {
	src := &DFS{
		shard: 1, shards: 3, jumped: true,
		stack: []dfsNode{
			{kind: psharp.DecisionSchedule, options: 3, idx: 1, machines: []psharp.MachineID{
				{Type: "Counter", Seq: 1}, {Type: "Sender", Seq: 2}, {Type: "Sender", Seq: 3},
			}},
			{kind: psharp.DecisionBool, options: 2, idx: 1},
			{kind: psharp.DecisionInt, options: 5, idx: 4},
		},
	}
	blob := src.SaveCursor()

	dst := &DFS{shard: 1, shards: 3}
	if err := dst.LoadCursor(blob); err != nil {
		t.Fatal(err)
	}
	if got := dst.SaveCursor(); string(got) != string(blob) {
		t.Fatalf("cursor did not round-trip:\n%x\n%x", blob, got)
	}
	if !dst.jumped || dst.exhausted || dst.pos != 0 {
		t.Fatalf("flags lost: jumped=%t exhausted=%t pos=%d", dst.jumped, dst.exhausted, dst.pos)
	}

	wrongShard := &DFS{shard: 2, shards: 3}
	if err := wrongShard.LoadCursor(blob); err == nil {
		t.Fatal("cursor from another shard must be rejected")
	}
	if err := NewDFS().LoadCursor([]byte{99}); err == nil {
		t.Fatal("unknown cursor version must be rejected")
	}
	for cut := 0; cut < len(blob); cut++ {
		trunc := &DFS{shard: 1, shards: 3}
		if err := trunc.LoadCursor(blob[:cut]); err == nil && cut > 0 {
			// Some prefixes decode cleanly (e.g. a shorter but complete
			// stack); what matters is no panic and no silent half-load.
			if len(trunc.stack) == len(src.stack) {
				t.Fatalf("truncated cursor (%d bytes) loaded a full stack", cut)
			}
		}
	}
}
