package sct

import (
	"fmt"

	"github.com/psharp-go/psharp"
)

// Replay re-executes a recorded schedule trace decision by decision,
// giving the deterministic bug reproduction the paper's bug-finding mode
// promises (Section 6.2). Replay runs a single iteration.
type Replay struct {
	trace *psharp.Trace
	pos   int
}

// NewReplay returns a strategy that replays trace.
func NewReplay(trace *psharp.Trace) *Replay { return &Replay{trace: trace} }

// CloneForWorker returns an independent replayer of the same trace. Replay
// has a one-schedule search space, so parallel replay only re-confirms the
// same schedule on every worker; it exists so a Replay can stand in
// anywhere a Cloneable is required.
func (s *Replay) CloneForWorker(worker, workers int) Strategy {
	return NewReplay(s.trace)
}

// PrepareIteration permits exactly one iteration.
func (s *Replay) PrepareIteration(iter int) bool {
	s.pos = 0
	return iter == 0
}

// Consumed reports how many decisions have been replayed.
func (s *Replay) Consumed() int { return s.pos }

func (s *Replay) next(kind psharp.DecisionKind) psharp.Decision {
	if s.pos >= len(s.trace.Decisions) {
		panic(fmt.Sprintf("sct: replay ran past the end of the trace (%d decisions)", len(s.trace.Decisions)))
	}
	d := s.trace.Decisions[s.pos]
	if d.Kind != kind {
		panic(fmt.Sprintf("sct: replay divergence at decision %d: trace has kind %v, program asked for %v",
			s.pos, d.Kind, kind))
	}
	s.pos++
	return d
}

// NextMachine returns the machine recorded at this position.
func (s *Replay) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	d := s.next(psharp.DecisionSchedule)
	if !contains(enabled, d.Machine) {
		panic(fmt.Sprintf("sct: replay divergence at decision %d: %s is not enabled", s.pos-1, d.Machine))
	}
	return d.Machine
}

// NextBool returns the recorded boolean choice.
func (s *Replay) NextBool() bool { return s.next(psharp.DecisionBool).Bool }

// NextInt returns the recorded integer choice.
func (s *Replay) NextInt(n int) int {
	d := s.next(psharp.DecisionInt)
	if d.Int >= n {
		panic(fmt.Sprintf("sct: replay divergence at decision %d: recorded %d out of range %d", s.pos-1, d.Int, n))
	}
	return d.Int
}

// Decide implements psharp.DecisionStrategy, which is what lets Replay
// answer fault queries: a fault-era trace replays by returning each
// recorded psharp.FaultAction — crashes, drops, duplicates and the
// FaultNone declines — at exactly the query where it was recorded. The
// controller re-validates each action against the current state, so a
// divergent program still fails loudly instead of misinjecting.
func (s *Replay) Decide(c psharp.Choice) psharp.Decision {
	switch c.Kind {
	case psharp.ChoiceMachine:
		return psharp.Decision{Kind: psharp.DecisionSchedule, Machine: s.NextMachine(c.Current, c.Enabled)}
	case psharp.ChoiceBool:
		return s.next(psharp.DecisionBool)
	case psharp.ChoiceInt:
		d := s.next(psharp.DecisionInt)
		if d.Int >= c.N {
			panic(fmt.Sprintf("sct: replay divergence at decision %d: recorded %d out of range %d", s.pos-1, d.Int, c.N))
		}
		return d
	case psharp.ChoiceFault:
		return s.next(psharp.DecisionFault)
	}
	panic(fmt.Sprintf("sct: replay asked for unknown choice kind %d", c.Kind))
}
