package sct_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/journal"
	"github.com/psharp-go/psharp/sct"
)

// chancySetup is fan-in plus a 1-in-8 assertion bug, so equivalence checks
// cover buggy-iteration counting as well as fingerprints.
func chancySetup(r *psharp.Runtime) {
	r.MustRegister("Chancy", func() psharp.Machine {
		return psharp.MachineFunc(func(sc *psharp.Schema) {
			sc.Start("S").OnEntry(func(ctx *psharp.Context, ev psharp.Event) {
				a, b, c := ctx.RandomBool(), ctx.RandomBool(), ctx.RandomBool()
				ctx.Assert(!(a && b && c), "the 1-in-8 combination")
			})
		})
	})
	r.MustCreate("Chancy", nil)
	fanInSetup(2)(r)
}

func campaignMeta(workers int) journal.Meta {
	return journal.Meta{
		Benchmark: "Chancy", Strategy: "random", Seed: 7,
		Workers: workers, ShardCount: 1, MaxSteps: 200,
	}
}

// journaledFingerprints reopens a closed campaign directory and returns its
// recovered fingerprint set.
func journaledFingerprints(t *testing.T, dir string, meta journal.Meta) map[uint64]bool {
	t.Helper()
	c, err := journal.Resume(dir, meta, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	set := make(map[uint64]bool)
	for _, fp := range c.Fingerprints() {
		set[fp] = true
	}
	return set
}

func runJournaled(t *testing.T, dir string, workers, iterations int, resume bool) sct.ParallelReport {
	t.Helper()
	open := journal.Create
	if resume {
		open = journal.Resume
	}
	c, err := open(dir, campaignMeta(workers), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := sct.RunParallel(chancySetup, sct.ParallelOptions{
		Options: sct.Options{
			Strategy:   sct.NewRandom(7),
			Iterations: iterations,
			MaxSteps:   200,
			Journal:    c,
		},
		Workers: workers,
	})
	if err := c.Err(); err != nil {
		t.Fatalf("journal degraded: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJournalResumeEquivalence is the ISSUE's acceptance scenario: a
// campaign split into two budget slices via -resume must converge on
// exactly the state of one uninterrupted run — same cumulative counters,
// same distinct-fingerprint set — and the resumed slice must re-execute
// zero journal-covered schedules.
func TestJournalResumeEquivalence(t *testing.T) {
	const workers, half, full = 2, 80, 200
	splitDir := filepath.Join(t.TempDir(), "split")
	soloDir := filepath.Join(t.TempDir(), "solo")

	first := runJournaled(t, splitDir, workers, half, false)
	if first.Report.Iterations != half {
		t.Fatalf("first slice ran %d iterations, want %d", first.Report.Iterations, half)
	}
	second := runJournaled(t, splitDir, workers, full, true)
	solo := runJournaled(t, soloDir, workers, full, false)

	if second.Report.Iterations != full {
		t.Fatalf("resumed campaign totals %d iterations, want %d", second.Report.Iterations, full)
	}
	// Zero re-executed schedules: the resumed process itself ran exactly the
	// remaining budget (per-worker sub-reports count this run only).
	ranNow := 0
	for _, w := range second.Workers {
		ranNow += w.Report.Iterations
	}
	if ranNow != full-half {
		t.Fatalf("resumed process executed %d schedules, want exactly the remaining %d", ranNow, full-half)
	}
	if a, b := second.Report.BuggyIterations, solo.Report.BuggyIterations; a != b {
		t.Fatalf("buggy iterations diverged: split %d vs solo %d", a, b)
	}
	if a, b := second.Report.DistinctSchedules, solo.Report.DistinctSchedules; a != b {
		t.Fatalf("distinct schedules diverged: split %d vs solo %d", a, b)
	}
	splitFPs := journaledFingerprints(t, splitDir, campaignMeta(workers))
	soloFPs := journaledFingerprints(t, soloDir, campaignMeta(workers))
	if len(splitFPs) != len(soloFPs) {
		t.Fatalf("fingerprint sets differ in size: %d vs %d", len(splitFPs), len(soloFPs))
	}
	for fp := range soloFPs {
		if !splitFPs[fp] {
			t.Fatalf("fingerprint %x found solo but missing from the split campaign", fp)
		}
	}
}

// TestJournalKillAtRandomRecordResume truncates the shard file at random
// byte offsets — simulating SIGKILL at arbitrary append points — and checks
// every resumed campaign still converges on the uninterrupted run's
// fingerprint set. Lost tail records may only cause re-execution (counters
// can overshoot), never lost or phantom schedules.
func TestJournalKillAtRandomRecordResume(t *testing.T) {
	const workers, half, full = 2, 80, 200
	meta := campaignMeta(workers)

	baseDir := filepath.Join(t.TempDir(), "base")
	runJournaled(t, baseDir, workers, half, false)
	shard := journal.ShardFileName(0, 1)
	img, err := os.ReadFile(filepath.Join(baseDir, shard))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(baseDir, journal.ManifestName))
	if err != nil {
		t.Fatal(err)
	}

	soloDir := filepath.Join(t.TempDir(), "solo")
	runJournaled(t, soloDir, workers, full, false)
	soloFPs := journaledFingerprints(t, soloDir, meta)

	// Keep the meta record (without it the shard restarts empty, which the
	// CLI treats as a fresh shard rather than a kill survivor).
	minCut := 16 + 16 + 300 // header + frame + generous bound on the meta JSON
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		cut := minCut + rng.Intn(len(img)-minCut)
		dir := filepath.Join(t.TempDir(), "killed")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, journal.ManifestName), manifest, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, shard), img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		out := runJournaled(t, dir, workers, full, true)
		if out.Report.DistinctSchedules != len(soloFPs) {
			t.Fatalf("cut at %d: resumed to %d distinct schedules, want %d",
				cut, out.Report.DistinctSchedules, len(soloFPs))
		}
		got := journaledFingerprints(t, dir, meta)
		for fp := range soloFPs {
			if !got[fp] {
				t.Fatalf("cut at %d: fingerprint %x lost", cut, fp)
			}
		}
		for fp := range got {
			if !soloFPs[fp] {
				t.Fatalf("cut at %d: phantom fingerprint %x", cut, fp)
			}
		}
	}
}

// TestJournalDFSCursorResume checks the one cursor-carrying strategy: a DFS
// enumeration split across a resume must visit exactly the schedules of an
// uninterrupted enumeration, ending exhausted at the same count.
func TestJournalDFSCursorResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dfs")
	meta := journal.Meta{Benchmark: "FanIn3", Strategy: "dfs", Seed: 0,
		Workers: 1, ShardCount: 1, MaxSteps: 1000}

	solo := sct.Run(fanInSetup(3), sct.Options{
		Strategy: sct.NewDFS(), Iterations: 1_000_000, MaxSteps: 1000,
	})
	if !solo.Exhausted {
		t.Fatal("baseline DFS did not exhaust")
	}

	c, err := journal.Create(dir, meta, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	firstBudget := solo.Iterations / 3
	first := sct.Run(fanInSetup(3), sct.Options{
		Strategy: sct.NewDFS(), Iterations: firstBudget, MaxSteps: 1000,
		Journal: c, JournalFlushEvery: 1,
	})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if first.Exhausted || first.Iterations != firstBudget {
		t.Fatalf("first slice: %s", first.String())
	}

	r, err := journal.Resume(dir, meta, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rest := sct.Run(fanInSetup(3), sct.Options{
		Strategy: sct.NewDFS(), Iterations: 1_000_000, MaxSteps: 1000,
		Journal: r,
	})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !rest.Exhausted {
		t.Fatalf("resumed DFS did not exhaust: %s", rest.String())
	}
	if rest.Iterations != solo.Iterations {
		t.Fatalf("resumed DFS visited %d schedules total, solo visited %d", rest.Iterations, solo.Iterations)
	}
	if rest.DistinctSchedules != solo.DistinctSchedules {
		t.Fatalf("resumed DFS found %d distinct, solo %d", rest.DistinctSchedules, solo.DistinctSchedules)
	}
}

// TestStopChannelInterruptsRun covers cooperative cancellation: closing
// Options.Stop ends the run early with Interrupted set, without a journal
// in the picture.
func TestStopChannelInterruptsRun(t *testing.T) {
	stop := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(stop)
	}()
	rep := sct.Run(fanInSetup(3), sct.Options{
		Strategy:   sct.NewRandom(1),
		Iterations: 1 << 30,
		MaxSteps:   1000,
		Stop:       stop,
	})
	if !rep.Interrupted {
		t.Fatalf("stopped run not marked interrupted: %s", rep.String())
	}
	if rep.Iterations >= 1<<30 {
		t.Fatal("stopped run consumed the whole budget")
	}
}

// TestTimeoutMarksInterrupted: a hard deadline with budget left is an
// interruption (satellite 1's marker flows from here into reports).
func TestTimeoutMarksInterrupted(t *testing.T) {
	rep := sct.Run(fanInSetup(3), sct.Options{
		Strategy:   sct.NewRandom(1),
		Iterations: 1 << 30,
		MaxSteps:   1000,
		Timeout:    20 * time.Millisecond,
	})
	if !rep.Interrupted {
		t.Fatalf("timed-out run not marked interrupted: %s", rep.String())
	}
}

// TestCompletedRunNotInterrupted guards the negative: running the budget to
// the end, or exhausting the space, is not an interruption.
func TestCompletedRunNotInterrupted(t *testing.T) {
	rep := sct.Run(fanInSetup(2), sct.Options{
		Strategy: sct.NewRandom(1), Iterations: 20, MaxSteps: 1000,
	})
	if rep.Interrupted {
		t.Fatalf("completed run marked interrupted: %s", rep.String())
	}
	rep = sct.Run(fanInSetup(2), sct.Options{
		Strategy: sct.NewDFS(), Iterations: 1_000_000, MaxSteps: 1000,
		Timeout: time.Hour,
	})
	if !rep.Exhausted || rep.Interrupted {
		t.Fatalf("exhausted run marked interrupted: %s", rep.String())
	}
}

// TestJournalRejectsDynamic pins the documented incompatibility.
func TestJournalRejectsDynamic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dyn")
	c, err := journal.Create(dir, campaignMeta(2), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Dynamic + Journal must panic")
		}
	}()
	sct.RunParallel(chancySetup, sct.ParallelOptions{
		Options: sct.Options{Strategy: sct.NewRandom(7), Iterations: 10, MaxSteps: 200, Journal: c},
		Workers: 2, Dynamic: true,
	})
}
