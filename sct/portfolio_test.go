package sct_test

// Error-path coverage for portfolio specification parsing: only the happy
// path was exercised before (satellite of the specification-layer PR).

import (
	"strings"
	"testing"

	"github.com/psharp-go/psharp/sct"
)

func TestParsePortfolioErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string // substring of the expected error
	}{
		{"unknown member", "random,quantum", `unknown portfolio member "quantum"`},
		{"empty spec", "", "empty portfolio member"},
		{"only whitespace", "   ", "empty portfolio member"},
		{"trailing comma", "random,", "empty portfolio member"},
		{"leading comma", ",random", "empty portfolio member"},
		{"double comma", "random,,pct", "empty portfolio member"},
		{"whitespace member", "random, ,pct", "empty portfolio member"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := sct.ParsePortfolio(tc.spec, 1, 1000)
			if err == nil {
				t.Fatalf("ParsePortfolio(%q) accepted an invalid spec (portfolio size %d)", tc.spec, p.Size())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParsePortfolio(%q) error = %q, want it to contain %q", tc.spec, err, tc.want)
			}
		})
	}
}

func TestParsePortfolioValidSpecs(t *testing.T) {
	cases := []struct {
		spec string
		size int
	}{
		{"default", 4},
		{"random,fair,pct,delay,dfs", 5},
		{" random , pct ", 2}, // members may be padded with spaces
		{"fair", 1},
	}
	for _, tc := range cases {
		p, err := sct.ParsePortfolio(tc.spec, 1, 1000)
		if err != nil {
			t.Errorf("ParsePortfolio(%q): %v", tc.spec, err)
			continue
		}
		if p.Size() != tc.size {
			t.Errorf("ParsePortfolio(%q) size = %d, want %d", tc.spec, p.Size(), tc.size)
		}
	}
}

func TestNewPortfolioValidation(t *testing.T) {
	if _, err := sct.NewPortfolio(); err == nil {
		t.Error("NewPortfolio() with no members succeeded")
	}
	if _, err := sct.NewPortfolio(sct.PortfolioMember{Name: "", Strategy: sct.NewRandom(1)}); err == nil {
		t.Error("NewPortfolio accepted a nameless member")
	}
	if _, err := sct.NewPortfolio(sct.PortfolioMember{Name: "random", Strategy: nil}); err == nil {
		t.Error("NewPortfolio accepted a strategy-less member")
	}
}
