package sct

// splitMix64 is a small, fast, deterministic PRNG (Steele et al.,
// "Fast splittable pseudorandom number generators"). The testing strategies
// must be reproducible from a seed alone, so they cannot use math/rand's
// global state.
type splitMix64 struct{ state uint64 }

func newRNG(seed uint64) *splitMix64 { return &splitMix64{state: seed} }

// reseed rewinds the generator to the given seed in place, so per-iteration
// reseeding (Random.PrepareIteration) allocates nothing.
func (r *splitMix64) reseed(seed uint64) { r.state = seed }

func (r *splitMix64) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n); n must be positive.
func (r *splitMix64) intn(n int) int {
	if n <= 0 {
		panic("sct: intn requires n > 0")
	}
	return int(r.next() % uint64(n))
}

func (r *splitMix64) boolean() bool { return r.next()&1 == 1 }
