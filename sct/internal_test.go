package sct

import (
	"testing"

	"github.com/psharp-go/psharp"
)

func TestRaceSetDedupsPreservingOrder(t *testing.T) {
	var s raceSet
	s.addAll([]string{"b", "a", "b", "c", "a", "b"})
	got := s.list
	want := []string{"b", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("list = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}
}

func TestShardQuotaPartitionsBudget(t *testing.T) {
	for _, tc := range []struct{ budget, workers int }{
		{10, 3}, {10, 10}, {7, 2}, {1, 1}, {100, 7},
	} {
		sum := 0
		for w := 0; w < tc.workers; w++ {
			q := shardQuota(tc.budget, w, tc.workers)
			sum += q
			// Worker w's shard is {w, w+n, ...}: quota is exact, not approximate.
			count := 0
			for g := w; g < tc.budget; g += tc.workers {
				count++
			}
			if q != count {
				t.Errorf("shardQuota(%d, %d, %d) = %d, want %d", tc.budget, w, tc.workers, q, count)
			}
		}
		if sum != tc.budget {
			t.Errorf("quotas for budget %d over %d workers sum to %d", tc.budget, tc.workers, sum)
		}
	}
}

func TestFingerprintDistinguishesTraces(t *testing.T) {
	mk := func(build func(tr *psharp.Trace)) uint64 {
		tr := &psharp.Trace{}
		build(tr)
		return fingerprintTrace(tr)
	}
	id1 := psharp.MachineID{Type: "A", Seq: 1}
	id2 := psharp.MachineID{Type: "A", Seq: 2}
	base := mk(func(tr *psharp.Trace) {
		tr.Decisions = []psharp.Decision{
			{Kind: psharp.DecisionSchedule, Machine: id1},
			{Kind: psharp.DecisionBool, Bool: true},
			{Kind: psharp.DecisionInt, Int: 3},
		}
	})
	same := mk(func(tr *psharp.Trace) {
		tr.Decisions = []psharp.Decision{
			{Kind: psharp.DecisionSchedule, Machine: id1},
			{Kind: psharp.DecisionBool, Bool: true},
			{Kind: psharp.DecisionInt, Int: 3},
		}
	})
	if base != same {
		t.Error("identical traces hash differently")
	}
	for name, other := range map[string]uint64{
		"different machine": mk(func(tr *psharp.Trace) {
			tr.Decisions = []psharp.Decision{
				{Kind: psharp.DecisionSchedule, Machine: id2},
				{Kind: psharp.DecisionBool, Bool: true},
				{Kind: psharp.DecisionInt, Int: 3},
			}
		}),
		"different bool": mk(func(tr *psharp.Trace) {
			tr.Decisions = []psharp.Decision{
				{Kind: psharp.DecisionSchedule, Machine: id1},
				{Kind: psharp.DecisionBool, Bool: false},
				{Kind: psharp.DecisionInt, Int: 3},
			}
		}),
		"truncated": mk(func(tr *psharp.Trace) {
			tr.Decisions = []psharp.Decision{
				{Kind: psharp.DecisionSchedule, Machine: id1},
				{Kind: psharp.DecisionBool, Bool: true},
			}
		}),
	} {
		if other == base {
			t.Errorf("%s trace collides with base", name)
		}
	}
}

func TestFingerprintSetConcurrentInserts(t *testing.T) {
	var s fingerprintSet
	done := make(chan int)
	for g := 0; g < 8; g++ {
		go func(g int) {
			fresh := 0
			for i := 0; i < 1000; i++ {
				// Every goroutine inserts the same 1000 values.
				if s.insert(uint64(i) * 0x9e3779b97f4a7c15) {
					fresh++
				}
			}
			done <- fresh
		}(g)
	}
	total := 0
	for g := 0; g < 8; g++ {
		total += <-done
	}
	if total != 1000 || s.size() != 1000 {
		t.Fatalf("fresh inserts = %d, size = %d, want 1000", total, s.size())
	}
}
