package sct

// Internal tests for the fair random scheduler's two-phase decision rule.

import (
	"testing"

	"github.com/psharp-go/psharp"
)

func ids(seqs ...uint64) []psharp.MachineID {
	out := make([]psharp.MachineID, len(seqs))
	for i, s := range seqs {
		out[i] = psharp.MachineID{Type: "M", Seq: s}
	}
	return out
}

// TestRandomFairRoundRobinAfterPrefix checks the fairness guarantee: past
// the prefix, every continuously enabled machine is scheduled exactly once
// per cycle, in creation order, wrapping.
func TestRandomFairRoundRobinAfterPrefix(t *testing.T) {
	s := NewRandomFair(1, 0) // fair from the first decision
	s.PrepareIteration(0)
	enabled := ids(1, 2, 3)
	var got []uint64
	for i := 0; i < 7; i++ {
		got = append(got, s.NextMachine(psharp.MachineID{}, enabled).Seq)
	}
	want := []uint64{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", got, want)
		}
	}
}

// TestRandomFairSkipsDisabled checks that the round-robin cursor keeps
// rotating over whatever is enabled: a machine that blocks is skipped, a
// machine that wakes back up rejoins at its creation-order slot.
func TestRandomFairSkipsDisabled(t *testing.T) {
	s := NewRandomFair(1, 0)
	s.PrepareIteration(0)
	if got := s.NextMachine(psharp.MachineID{}, ids(1, 2, 3)).Seq; got != 1 {
		t.Fatalf("first pick = %d, want 1", got)
	}
	// Machine 2 blocked: the cycle continues with 3.
	if got := s.NextMachine(psharp.MachineID{}, ids(1, 3)).Seq; got != 3 {
		t.Fatalf("pick after 1 with {1,3} enabled = %d, want 3", got)
	}
	// Machine 2 woke up: wrap to the smallest enabled.
	if got := s.NextMachine(psharp.MachineID{}, ids(1, 2, 3)).Seq; got != 1 {
		t.Fatalf("wrap pick = %d, want 1", got)
	}
	if got := s.NextMachine(psharp.MachineID{}, ids(1, 2, 3)).Seq; got != 2 {
		t.Fatalf("pick after wrap = %d, want 2", got)
	}
}

// TestRandomFairDeterministicPerIteration checks that the same seed and
// iteration reproduce the same decisions, and different iterations differ
// (the reseed-per-iteration discipline shared with Random).
func TestRandomFairDeterministicPerIteration(t *testing.T) {
	run := func(iter int) []uint64 {
		s := NewRandomFair(42, 8)
		s.PrepareIteration(iter)
		enabled := ids(1, 2, 3, 4)
		var out []uint64
		for i := 0; i < 8; i++ {
			out = append(out, s.NextMachine(psharp.MachineID{}, enabled).Seq)
		}
		return out
	}
	a0, b0, a1 := run(0), run(0), run(1)
	for i := range a0 {
		if a0[i] != b0[i] {
			t.Fatalf("same iteration diverged: %v vs %v", a0, b0)
		}
	}
	same := true
	for i := range a0 {
		if a0[i] != a1[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("iterations 0 and 1 drew identical prefixes %v; reseed is broken", a0)
	}
}

// TestRandomFairShardsLikeRandom checks CloneForWorker's population
// equality: worker w's local iteration i must replay global iteration
// w + i*workers of the sequential stream.
func TestRandomFairShardsLikeRandom(t *testing.T) {
	const workers = 3
	enabled := ids(1, 2, 3, 4, 5)
	draw := func(s Strategy, iter, n int) []uint64 {
		s.(*RandomFair).PrepareIteration(iter)
		var out []uint64
		for i := 0; i < n; i++ {
			out = append(out, s.NextMachine(psharp.MachineID{}, enabled).Seq)
		}
		return out
	}
	seq := NewRandomFair(7, 100)
	for w := 0; w < workers; w++ {
		clone := NewRandomFair(7, 100).CloneForWorker(w, workers)
		for local := 0; local < 4; local++ {
			global := w + local*workers
			want := draw(seq, global, 6)
			got := draw(clone, local, 6)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("worker %d local %d != global %d: %v vs %v", w, local, global, got, want)
				}
			}
		}
	}
}
