package sct

import (
	"fmt"
	"strings"
)

// PortfolioMember is one named strategy of a heterogeneous portfolio.
type PortfolioMember struct {
	// Name labels the member in per-worker sub-reports ("random", "pct", ...).
	Name string
	// Strategy is the member's base strategy. It must implement Cloneable
	// if more workers than portfolio members run (the member is then
	// sharded across its workers exactly like a homogeneous strategy).
	Strategy Strategy
}

// Portfolio assigns heterogeneous strategies to parallel workers: worker w
// out of n runs member w mod len(members), and the workers sharing a member
// shard that member's search space via CloneForWorker. Mixing memoryless
// strategies (random) with guarantee-carrying ones (PCT, delay-bounding)
// and systematic ones (DFS) hedges against any single strategy being a poor
// fit for the program under test — the standard portfolio argument.
type Portfolio struct {
	members []PortfolioMember
}

// NewPortfolio builds a portfolio; at least one member is required and
// every member needs a name and a strategy.
func NewPortfolio(members ...PortfolioMember) (*Portfolio, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("sct: portfolio needs at least one member")
	}
	for i, m := range members {
		if m.Name == "" || m.Strategy == nil {
			return nil, fmt.Errorf("sct: portfolio member %d needs a name and a strategy", i)
		}
	}
	return &Portfolio{members: append([]PortfolioMember(nil), members...)}, nil
}

// Size returns the number of members.
func (p *Portfolio) Size() int { return len(p.members) }

// assign resolves worker w (out of n) to a concrete strategy instance: the
// k-th worker running member j receives member j's CloneForWorker(k, m_j),
// where m_j is how many of the n workers share member j.
func (p *Portfolio) assign(w, n int) (Strategy, string, error) {
	j := w % len(p.members)
	m := p.members[j]
	sharing := shardQuota(n, j, len(p.members)) // workers running member j
	if sharing <= 1 {
		return m.Strategy, m.Name, nil
	}
	c, ok := m.Strategy.(Cloneable)
	if !ok {
		return nil, "", fmt.Errorf("portfolio member %q (%T) is shared by %d workers but does not implement Cloneable",
			m.Name, m.Strategy, sharing)
	}
	return c.CloneForWorker(w/len(p.members), sharing), m.Name, nil
}

// DefaultPortfolio is the standard four-way mix the psharp-test CLI exposes
// as -portfolio default: random, PCT (depth 3), delay-bounding (budget 2)
// and DFS, matching the strategy roster of the paper's evaluation.
func DefaultPortfolio(seed uint64, maxSteps int) *Portfolio {
	p, err := ParsePortfolio("random,pct,delay,dfs", seed, maxSteps)
	if err != nil {
		panic("sct: " + err.Error()) // the spec above is statically valid
	}
	return p
}

// ParsePortfolio builds a portfolio from a comma-separated member spec such
// as "random,pct,delay,dfs" or "random,random,pct". Valid member names are
// random, fair, pct, delay, dfs and dpor; "default" expands to the
// DefaultPortfolio roster. Randomized members derive distinct seeds from the
// base seed by member position, PCT/delay-bounding size their change/delay
// points to maxSteps (0 falls back to 1000 expected steps), and fair's
// random prefix defaults to half of maxSteps — when pairing a fair member
// with liveness checking, use ParsePortfolioPrefix so the temperature
// threshold can sit above the prefix (otherwise a threshold crossed inside
// the random prefix is scheduler starvation, not a sound verdict).
func ParsePortfolio(spec string, seed uint64, maxSteps int) (*Portfolio, error) {
	return ParsePortfolioPrefix(spec, seed, maxSteps, -1)
}

// ParsePortfolioPrefix is ParsePortfolio with an explicit random-prefix
// length for fair members; negative selects the maxSteps/2 default. Pass
// the prefix the liveness temperature threshold was calibrated against
// (e.g. a protocol benchmark's FairPrefix).
func ParsePortfolioPrefix(spec string, seed uint64, maxSteps, fairPrefix int) (*Portfolio, error) {
	if strings.TrimSpace(spec) == "default" {
		spec = "random,pct,delay,dfs"
	}
	steps := maxSteps
	if steps <= 0 {
		steps = 1000
	}
	if fairPrefix < 0 {
		fairPrefix = steps / 2
	}
	var members []PortfolioMember
	for i, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		// Distinct members get decorrelated seed streams even when the
		// same strategy appears twice.
		memberSeed := seed + uint64(i)*0xd1342543de82ef95
		var s Strategy
		switch name {
		case "random":
			s = NewRandom(memberSeed)
		case "fair":
			s = NewRandomFair(memberSeed, fairPrefix)
		case "pct":
			s = NewPCT(memberSeed, 3, steps)
		case "delay":
			s = NewDelayBounding(memberSeed, 2, steps)
		case "dfs":
			s = NewDFS()
		case "dpor":
			s = NewDPOR()
		case "":
			return nil, fmt.Errorf("sct: empty portfolio member in %q", spec)
		default:
			return nil, fmt.Errorf("sct: unknown portfolio member %q (want random, fair, pct, delay, dfs or dpor)", name)
		}
		members = append(members, PortfolioMember{Name: name, Strategy: s})
	}
	return NewPortfolio(members...)
}
