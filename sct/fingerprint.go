package sct

import (
	"sync"

	"github.com/psharp-go/psharp"
)

// Schedule fingerprinting: a 64-bit FNV-1a hash over the decision trace of
// one iteration. Two iterations that made the same scheduling and
// nondeterminism decisions have the same fingerprint, so the engine can
// report how many *distinct* schedules a run explored — which is the honest
// coverage metric once many workers explore concurrently (sharded seed
// streams never collide by construction, but portfolio members and the
// paper's memoryless random scheduler both revisit schedules).

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// fingerprintTrace hashes a decision trace. Machine identity hashes as
// (type, seq), which is deterministic because the serialized runtime assigns
// sequence numbers in creation order.
func fingerprintTrace(t *psharp.Trace) uint64 {
	h := uint64(fnvOffset64)
	for _, d := range t.Decisions {
		h = fnvByte(h, byte(d.Kind))
		switch d.Kind {
		case psharp.DecisionSchedule:
			h = fnvString(h, d.Machine.Type)
			h = fnvUint64(h, d.Machine.Seq)
		case psharp.DecisionBool:
			if d.Bool {
				h = fnvByte(h, 1)
			} else {
				h = fnvByte(h, 0)
			}
		case psharp.DecisionInt:
			h = fnvUint64(h, uint64(d.Int))
		case psharp.DecisionFault:
			h = fnvByte(h, byte(d.Fault.Kind))
			if d.Fault.Kind == psharp.FaultCrash {
				h = fnvString(h, d.Fault.Machine.Type)
				h = fnvUint64(h, d.Fault.Machine.Seq)
				bits := byte(0)
				if d.Fault.Restart {
					bits |= 1
				}
				if d.Fault.PreserveMailbox {
					bits |= 2
				}
				h = fnvByte(h, bits)
			}
		}
	}
	return h
}

// fingerprintShards keeps lock contention negligible relative to the cost
// of executing a schedule; it must be a power of two.
const fingerprintShards = 64

// fingerprintSet is a sharded concurrent set of schedule fingerprints. The
// zero value is ready to use. Insertion takes one short shard-local
// critical section; workers touching different shards do not contend.
type fingerprintSet struct {
	shards [fingerprintShards]struct {
		mu   sync.Mutex
		seen map[uint64]struct{}
	}
}

// insert adds fp and reports whether it was new.
func (s *fingerprintSet) insert(fp uint64) bool {
	shard := &s.shards[fp&(fingerprintShards-1)]
	shard.mu.Lock()
	if shard.seen == nil {
		shard.seen = make(map[uint64]struct{})
	}
	_, dup := shard.seen[fp]
	if !dup {
		shard.seen[fp] = struct{}{}
	}
	shard.mu.Unlock()
	return !dup
}

// size returns the number of distinct fingerprints inserted.
func (s *fingerprintSet) size() int {
	n := 0
	for i := range s.shards {
		shard := &s.shards[i]
		shard.mu.Lock()
		n += len(shard.seen)
		shard.mu.Unlock()
	}
	return n
}
