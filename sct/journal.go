package sct

import (
	"fmt"
	"time"

	"github.com/psharp-go/psharp/journal"
)

// CursorStrategy is a Strategy whose cross-iteration state can be
// journaled and restored, making it resumable mid-search. Strategies that
// reseed per global iteration (Random, RandomFair, PCT, DelayBounding, and
// FaultInjector's fault stream) need no cursor — their position is fully
// determined by the iteration index the engine journals for every worker —
// so only the systematic enumerators implement it directly: DFS and DPOR,
// whose frontiers are schedule-tree stacks (DPOR's additionally carries its
// backtrack sets and step footprints); FaultInjector delegates to its inner
// strategy.
type CursorStrategy interface {
	Strategy
	// SaveCursor serializes the strategy's cross-iteration state after the
	// most recently completed iteration. It must be cheap: the engine calls
	// it on every journal flush.
	SaveCursor() []byte
	// LoadCursor restores state saved by SaveCursor on a strategy
	// configured identically (same seeds, bounds and worker shard).
	LoadCursor(cursor []byte) error
}

// DefaultJournalFlushEvery is the journal batching cadence: each worker
// flushes its newly-distinct fingerprints and cursor once per this many
// completed iterations, keeping journal appends amortized well under one
// allocation per iteration and entirely off the scheduling hot path.
const DefaultJournalFlushEvery = 64

// journalWriter is one worker's batching front end to the shared campaign
// journal.
type journalWriter struct {
	c         *journal.Campaign
	sh        *shared
	strategy  Strategy
	workerKey int // globally unique across shards: the worker's offset
	every     int
	fps       []uint64
	since     int
}

func newJournalWriter(sh *shared, w *worker) *journalWriter {
	every := sh.opts.JournalFlushEvery
	if every <= 0 {
		every = DefaultJournalFlushEvery
	}
	return &journalWriter{
		c:         sh.opts.Journal,
		sh:        sh,
		strategy:  w.strategy,
		workerKey: w.offset,
		every:     every,
		fps:       make([]uint64, 0, every),
	}
}

// note records one completed iteration (completed is the worker's local
// iteration count so far); newly-distinct fingerprints accumulate in a
// preallocated batch that flushes every flush interval.
func (jw *journalWriter) note(fp uint64, isNew bool, completed int) {
	if isNew {
		jw.fps = append(jw.fps, fp)
	}
	jw.since++
	if jw.since >= jw.every {
		jw.flush(completed)
	}
}

// flush journals the pending fingerprint batch and the worker's cursor.
// The campaign layer appends fingerprints before the cursor, so a crash
// between the two re-executes iterations (idempotent on the fingerprint
// set) rather than skipping unjournaled ones.
func (jw *journalWriter) flush(completed int) {
	jw.since = 0
	var blob []byte
	if cs, ok := jw.strategy.(CursorStrategy); ok {
		blob = cs.SaveCursor()
	}
	jw.c.Advance(jw.workerKey, completed, blob, jw.fps)
	jw.fps = jw.fps[:0]
	sh := jw.sh
	covered := int64(0)
	if tel := sh.opts.Telemetry; tel != nil {
		covered = tel.coverage.Distinct()
	}
	jw.c.Checkpoint(journal.Checkpoint{
		ElapsedMicros:      (sh.baseElapsed + time.Since(sh.start)).Microseconds(),
		Iterations:         sh.iterations.Load(),
		DistinctSchedules:  sh.distinct.Load(),
		CoveredTransitions: covered,
	}, false)
}

// restoreCursor loads a worker's journaled position: its completed local
// iteration count (the engine restarts its stream there) and, for
// CursorStrategy strategies, the serialized search frontier.
func restoreCursor(j *journal.Campaign, w *worker) {
	completed, blob, ok := j.Cursor(w.offset)
	if !ok {
		return
	}
	w.start = completed
	if len(blob) == 0 {
		return
	}
	cs, ok := w.strategy.(CursorStrategy)
	if !ok {
		panic(fmt.Sprintf("sct: journal holds a cursor blob for worker %d but strategy %T cannot load cursors (was the campaign run with a different strategy?)", w.offset, w.strategy))
	}
	if err := cs.LoadCursor(blob); err != nil {
		panic(fmt.Sprintf("sct: journal cursor for worker %d: %v", w.offset, err))
	}
}

// finishJournal merges the journal's prior-run baseline into the report —
// counters stay campaign-cumulative and monotone across resumes — then
// journals the new cumulative counters and a forced final checkpoint so
// the next resume (and the growth curve) picks up exactly here.
func finishJournal(sh *shared, rep *Report) {
	j := sh.opts.Journal
	if j == nil {
		return
	}
	base := j.Counters()
	rep.Iterations += int(base.Iterations)
	rep.BuggyIterations += int(base.BuggyIterations)
	rep.BoundReached += int(base.BoundReached)
	rep.TotalSchedulingPoints += base.TotalSchedulingPoints
	rep.MaxSchedulingPoints = max(rep.MaxSchedulingPoints, int(base.MaxSchedulingPoints))
	rep.MaxMachines = max(rep.MaxMachines, int(base.MaxMachines))
	rep.Faults.Crashes += int(base.Crashes)
	rep.Faults.Restarts += int(base.Restarts)
	rep.Faults.Drops += int(base.Drops)
	rep.Faults.Duplicates += int(base.Duplicates)
	rep.Faults.Reorders += int(base.Reorders)
	rep.Elapsed += time.Duration(base.ElapsedMicros) * time.Microsecond
	// With a journal, distinct schedules are counted against the whole
	// campaign's fingerprint set (preloaded at open), not this run's.
	rep.DistinctSchedules = sh.fingerprints.size()
	j.SaveCounters(journal.Counters{
		Iterations:            int64(rep.Iterations),
		BuggyIterations:       int64(rep.BuggyIterations),
		BoundReached:          int64(rep.BoundReached),
		TotalSchedulingPoints: rep.TotalSchedulingPoints,
		MaxSchedulingPoints:   int64(rep.MaxSchedulingPoints),
		MaxMachines:           int64(rep.MaxMachines),
		Crashes:               int64(rep.Faults.Crashes),
		Restarts:              int64(rep.Faults.Restarts),
		Drops:                 int64(rep.Faults.Drops),
		Duplicates:            int64(rep.Faults.Duplicates),
		Reorders:              int64(rep.Faults.Reorders),
		ElapsedMicros:         rep.Elapsed.Microseconds(),
	})
	covered := int64(0)
	if tel := sh.opts.Telemetry; tel != nil {
		covered = tel.coverage.Distinct()
	}
	j.Checkpoint(journal.Checkpoint{
		ElapsedMicros:      rep.Elapsed.Microseconds(),
		Iterations:         int64(rep.Iterations),
		DistinctSchedules:  int64(rep.DistinctSchedules),
		CoveredTransitions: covered,
	}, true)
}
