package sct

import (
	"fmt"

	"github.com/psharp-go/psharp"
)

// FaultOptions configures PCT-style budgeted fault injection
// (Options.Faults, psharp-test -faults).
type FaultOptions struct {
	// Budget is the maximum number of faults injected per schedule; 0
	// disables injection entirely.
	Budget int
	// Seed seeds the injector's own decision stream (fault placement,
	// kind, crash target). The stream is sharded across parallel workers
	// exactly like Random's, so fault-enabled runs stay reproducible and
	// population-equal under RunParallel.
	Seed uint64
	// Horizon is the fault-point count the budget is spread over,
	// PCT-style: each iteration pre-places Budget injection points
	// uniformly in [0, Horizon) and fires a fault when an eligible query
	// lands on one. Fault points beyond the horizon never fault. 0 means
	// DefaultFaultHorizon. A schedule issues roughly two fault queries per
	// scheduling point (one per scheduler pass, one per machine send), so
	// a horizon near the typical schedule's query count concentrates the
	// budget where the schedule actually runs.
	Horizon int
	// Immune lists machine types faults must never touch (see
	// psharp.FaultConfig.Immune).
	Immune []string
	// Restart makes crash faults reboot the machine from its creation
	// payload with probability 1/2 (a strategy coin flip); when false
	// every crash is permanent.
	Restart bool
	// PreserveMailbox makes crash-with-restart faults keep the machine's
	// queued events across the reboot instead of clearing them.
	PreserveMailbox bool
}

// DefaultFaultHorizon is the fault-point horizon used when
// FaultOptions.Horizon is zero: wide enough to reach past the warm-up of
// the protocol workloads, narrow enough that a small budget still fires on
// typical schedules.
const DefaultFaultHorizon = 256

// FaultInjector composes fault injection with any inner exploration
// strategy: machine picks, booleans and integers are delegated to the inner
// strategy unchanged, while fault queries are answered from a per-iteration
// PCT-style plan — Budget injection points placed uniformly at random over
// the first Horizon fault queries of the schedule. When an eligible query
// lands on an injection point the injector spends one unit of budget on a
// random fault: a crash of a random crashable machine at schedule points
// (restarting with probability 1/2 if Restart is set), or a uniformly
// chosen drop/duplicate/reorder at send points.
//
// The injector's own randomness is a seed-sharded splitMix64 stream, kept
// separate from the inner strategy's so enabling faults does not perturb
// which interleavings the inner strategy would have explored. It implements
// Cloneable when the inner strategy does, sharding both streams.
type FaultInjector struct {
	inner  Strategy
	innerD psharp.DecisionStrategy // inner via Decide when it implements it

	budget   int
	horizon  int
	seed     uint64
	restart  bool
	preserve bool
	offset   int
	stride   int

	rng       *splitMix64
	points    map[int]bool // fault-query indices that inject, this iteration
	remaining int
	idx       int // fault queries answered so far this iteration
}

// NewFaultInjector wraps inner with fault injection per opts; opts.Budget
// must be positive. The engine calls this automatically when
// Options.Faults.Budget is set — constructing one directly is only needed
// to drive a psharp.TestHarness by hand.
func NewFaultInjector(inner Strategy, opts FaultOptions) *FaultInjector {
	if opts.Budget <= 0 {
		panic("sct: NewFaultInjector requires a positive FaultOptions.Budget")
	}
	return newFaultInjector(inner, opts, 0, 1)
}

func newFaultInjector(inner Strategy, opts FaultOptions, offset, stride int) *FaultInjector {
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = DefaultFaultHorizon
	}
	s := &FaultInjector{
		inner:    inner,
		budget:   opts.Budget,
		horizon:  horizon,
		seed:     opts.Seed,
		restart:  opts.Restart,
		preserve: opts.PreserveMailbox,
		offset:   offset,
		stride:   stride,
		rng:      newRNG(opts.Seed),
		points:   make(map[int]bool, opts.Budget),
	}
	s.innerD, _ = inner.(psharp.DecisionStrategy)
	return s
}

// Inner returns the wrapped exploration strategy.
func (s *FaultInjector) Inner() Strategy { return s.inner }

// CloneForWorker shards both the inner strategy and the injector's fault
// stream; it panics if the inner strategy is not Cloneable.
func (s *FaultInjector) CloneForWorker(worker, workers int) Strategy {
	cl, ok := s.inner.(Cloneable)
	if !ok {
		panic(fmt.Sprintf("sct: FaultInjector inner strategy %T is not Cloneable", s.inner))
	}
	return newFaultInjector(cl.CloneForWorker(worker, workers), FaultOptions{
		Budget: s.budget, Horizon: s.horizon, Seed: s.seed,
		Restart: s.restart, PreserveMailbox: s.preserve,
	}, worker, workers)
}

// SaveCursor delegates to the inner strategy: the injector's own fault
// stream is reseeded per global iteration (see PrepareIteration) and so
// needs no cursor of its own — only the inner search state, if any, must
// survive a resume.
func (s *FaultInjector) SaveCursor() []byte {
	if cs, ok := s.inner.(CursorStrategy); ok {
		return cs.SaveCursor()
	}
	return nil
}

// LoadCursor restores the inner strategy's journaled state.
func (s *FaultInjector) LoadCursor(cursor []byte) error {
	cs, ok := s.inner.(CursorStrategy)
	if !ok {
		return fmt.Errorf("cursor blob present but inner strategy %T cannot load cursors", s.inner)
	}
	return cs.LoadCursor(cursor)
}

// PrepareIteration prepares the inner strategy, then reseeds the fault
// stream for the global iteration and pre-places the budget's injection
// points, PCT-style.
func (s *FaultInjector) PrepareIteration(iter int) bool {
	if !s.inner.PrepareIteration(iter) {
		return false
	}
	g := uint64(s.offset) + uint64(iter)*uint64(s.stride)
	// Offset the stream constant so a FaultInjector sharing its seed with
	// the inner Random still draws an independent sequence.
	s.rng.reseed(s.seed + 0x6a09e667f3bcc909 + g*0x9e3779b97f4a7c15)
	clear(s.points)
	for i := 0; i < s.budget; i++ {
		s.points[s.rng.intn(s.horizon)] = true
	}
	s.remaining = s.budget
	s.idx = 0
	return true
}

// Decide answers fault queries from the iteration's injection plan and
// routes every other choice to the inner strategy.
func (s *FaultInjector) Decide(c psharp.Choice) psharp.Decision {
	if c.Kind != psharp.ChoiceFault {
		if s.innerD != nil {
			return s.innerD.Decide(c)
		}
		switch c.Kind {
		case psharp.ChoiceMachine:
			return psharp.Decision{Kind: psharp.DecisionSchedule, Machine: s.inner.NextMachine(c.Current, c.Enabled)}
		case psharp.ChoiceBool:
			return psharp.Decision{Kind: psharp.DecisionBool, Bool: s.inner.NextBool()}
		case psharp.ChoiceInt:
			return psharp.Decision{Kind: psharp.DecisionInt, Int: s.inner.NextInt(c.N)}
		}
		panic(fmt.Sprintf("sct: fault injector asked for unknown choice kind %d", c.Kind))
	}
	i := s.idx
	s.idx++
	if s.remaining <= 0 || !c.Eligible || !s.points[i] {
		return psharp.Decision{Kind: psharp.DecisionFault}
	}
	s.remaining--
	f := psharp.FaultAction{}
	switch c.Point {
	case psharp.FaultPointSend:
		kinds := [3]psharp.FaultKind{psharp.FaultDrop, psharp.FaultDuplicate, psharp.FaultReorder}
		f.Kind = kinds[s.rng.intn(3)]
	default: // FaultPointSchedule: crash a random crashable machine
		f.Kind = psharp.FaultCrash
		f.Machine = c.Crashable[s.rng.intn(len(c.Crashable))]
		if s.restart {
			f.Restart = s.rng.boolean()
		}
		f.PreserveMailbox = f.Restart && s.preserve
	}
	return psharp.Decision{Kind: psharp.DecisionFault, Fault: f}
}

// NextMachine delegates to the inner strategy (legacy interface; the
// controller drives the injector through Decide).
func (s *FaultInjector) NextMachine(current psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	return s.inner.NextMachine(current, enabled)
}

// NextBool delegates to the inner strategy.
func (s *FaultInjector) NextBool() bool { return s.inner.NextBool() }

// NextInt delegates to the inner strategy.
func (s *FaultInjector) NextInt(n int) int { return s.inner.NextInt(n) }
