package sct_test

import (
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// Two independent one-shot senders to a counter give a schedule tree whose
// shape is known exactly, which pins down DFS's systematic enumeration.

type tick struct{ psharp.EventBase }

type cfg struct {
	psharp.EventBase
	Target psharp.MachineID
}

func fanInSetup(senders int) func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Counter", func() psharp.Machine {
			n := 0
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Counting").
					OnEventDo(&tick{}, func(ctx *psharp.Context, ev psharp.Event) { n++ })
			})
		})
		r.MustRegister("Sender", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Send(ev.(*cfg).Target, &tick{})
						ctx.Halt()
					})
			})
		})
		counter := r.MustCreate("Counter", nil)
		for i := 0; i < senders; i++ {
			s := r.MustCreate("Sender", nil)
			if err := r.SendEvent(s, &cfg{Target: counter}); err != nil {
				panic(err)
			}
		}
	}
}

// TestDFSExhaustsAndTerminates checks that DFS visits the whole schedule
// tree and then stops, and that every iteration is bug-free.
func TestDFSExhaustsAndTerminates(t *testing.T) {
	rep := sct.Run(fanInSetup(3), sct.Options{
		Strategy:   sct.NewDFS(),
		Iterations: 1_000_000,
		MaxSteps:   1000,
	})
	if !rep.Exhausted {
		t.Fatalf("DFS did not exhaust: %s", rep.String())
	}
	if rep.BugFound() {
		t.Fatalf("unexpected bug: %v", rep.FirstBug)
	}
	if rep.Iterations < 3 {
		t.Fatalf("suspiciously few schedules: %d", rep.Iterations)
	}
	t.Logf("3-sender fan-in: %d schedules", rep.Iterations)
}

// TestDFSExploresNondetChoices checks that controlled boolean choices are
// enumerated systematically: a bug guarded by three specific coin flips is
// found within the full enumeration.
func TestDFSExploresNondetChoices(t *testing.T) {
	setup := func(r *psharp.Runtime) {
		r.MustRegister("Chooser", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").OnEntry(func(ctx *psharp.Context, ev psharp.Event) {
					a, b, c := ctx.RandomBool(), ctx.RandomBool(), ctx.RandomBool()
					ctx.Assert(!(a && b && c), "the 1-in-8 combination")
				})
			})
		})
		r.MustCreate("Chooser", nil)
	}
	rep := sct.Run(setup, sct.Options{
		Strategy:       sct.NewDFS(),
		Iterations:     100,
		MaxSteps:       100,
		StopOnFirstBug: true,
	})
	if !rep.BugFound() {
		t.Fatal("DFS must systematically reach the guarded combination")
	}
	if rep.FirstBugIteration >= 8 {
		t.Fatalf("found at iteration %d; the choice tree has only 8 leaves", rep.FirstBugIteration)
	}
}

// TestRandomSeedDeterminism checks that the same seed reproduces the same
// exploration outcome.
func TestRandomSeedDeterminism(t *testing.T) {
	setup := fanInSetup(3)
	run := func() [4]int64 {
		rep := sct.Run(setup, sct.Options{
			Strategy:   sct.NewRandom(1234),
			Iterations: 50,
			MaxSteps:   1000,
		})
		return [4]int64{
			int64(rep.Iterations), int64(rep.BuggyIterations),
			int64(rep.MaxSchedulingPoints), rep.TotalSchedulingPoints,
		}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
}

// TestStrategiesFindSeededChoiceBug cross-checks all randomized strategies
// on a bug requiring one specific machine ordering.
func TestStrategiesFindSeededChoiceBug(t *testing.T) {
	// Two senders; the counter asserts a specific arrival order chosen to
	// fail only in some interleavings.
	setup := func(r *psharp.Runtime) {
		r.MustRegister("Counter", func() psharp.Machine {
			var first psharp.MachineID
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Counting").
					OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
						sender := ev.(*cfg).Target
						if first.IsNil() {
							first = sender
							return
						}
						ctx.Assert(first.Seq < sender.Seq, "senders arrived out of creation order")
					})
			})
		})
		r.MustRegister("Sender", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Send(ev.(*cfg).Target, &cfg{Target: ctx.ID()})
						ctx.Halt()
					})
			})
		})
		counter := r.MustCreate("Counter", nil)
		for i := 0; i < 2; i++ {
			s := r.MustCreate("Sender", nil)
			if err := r.SendEvent(s, &cfg{Target: counter}); err != nil {
				panic(err)
			}
		}
	}
	strategies := map[string]sct.Strategy{
		"random": sct.NewRandom(3),
		"pct":    sct.NewPCT(3, 3, 20),
		"delay":  sct.NewDelayBounding(3, 2, 20),
		"dfs":    sct.NewDFS(),
	}
	for name, s := range strategies {
		rep := sct.Run(setup, sct.Options{
			Strategy:       s,
			Iterations:     500,
			MaxSteps:       100,
			StopOnFirstBug: true,
		})
		if !rep.BugFound() {
			t.Errorf("%s missed the ordering bug in %d schedules", name, rep.Iterations)
		}
	}
}

// TestReplayDivergenceDetected checks that replaying a trace against a
// different program panics with a divergence error rather than silently
// producing garbage.
func TestReplayDivergenceDetected(t *testing.T) {
	rep := sct.Run(fanInSetup(2), sct.Options{
		Strategy:   sct.NewRandom(9),
		Iterations: 1,
		MaxSteps:   1000,
	})
	_ = rep
	one := sct.NewRandom(9)
	one.PrepareIteration(0)
	res := psharp.RunTest(fanInSetup(2), psharp.TestConfig{Strategy: one, MaxSteps: 1000})

	defer func() {
		if recover() == nil {
			t.Fatal("want a divergence panic when replaying against a different program")
		}
	}()
	// Replaying the 2-sender trace against a 3-sender program must diverge.
	sct.ReplayTrace(fanInSetup(3), res.Trace, psharp.TestConfig{MaxSteps: 1000})
}
