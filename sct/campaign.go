package sct

import (
	"encoding/json"
	"os"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/obs"
)

// CampaignVersion is the schema version of the Campaign report format.
// Consumers should reject reports with a higher version than they know.
const CampaignVersion = 1

// Campaign is the versioned, machine-readable report of one exploration
// campaign: what was run (config and environment), what came out (the
// merged result and per-strategy breakdown), and how coverage grew over
// wall-clock time (the telemetry snapshot). psharp-test -report-out writes
// one; psharp-bench embeds them in its perf report.
type Campaign struct {
	Version int `json:"version"`
	// Env makes successive reports comparable across machines.
	Env    obs.Env        `json:"env"`
	Config CampaignConfig `json:"config"`
	Result CampaignResult `json:"result"`
	// Strategies breaks the result down per strategy label; portfolio runs
	// get one entry per member kind, homogeneous runs exactly one.
	Strategies []StrategyBreakdown `json:"strategies,omitempty"`
	// Telemetry is present when the run attached a Telemetry accumulator.
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
}

// CampaignConfig records the knobs the campaign ran under.
type CampaignConfig struct {
	Benchmark  string `json:"benchmark,omitempty"`
	Strategy   string `json:"strategy"`
	Workers    int    `json:"workers"`
	Dynamic    bool   `json:"dynamic,omitempty"`
	Iterations int    `json:"iterations"`
	MaxSteps   int    `json:"max_steps"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
	Monitors   bool   `json:"monitors,omitempty"`
	Liveness   bool   `json:"liveness,omitempty"`
	// FaultBudget is the per-schedule fault-injection budget; 0 means the
	// campaign ran fault-free.
	FaultBudget int `json:"fault_budget,omitempty"`
	// StateCache marks a campaign run with the hashed global-state cache.
	StateCache bool `json:"state_cache,omitempty"`
	// Shard is "i/n" when the run was one shard of a multi-process
	// campaign; empty otherwise.
	Shard string `json:"shard,omitempty"`
	// Resumed marks a run that continued a journaled campaign; its result
	// counters are campaign-cumulative, not this process's alone.
	Resumed bool `json:"resumed,omitempty"`
}

// CampaignResult is the JSON rendering of a merged Report.
type CampaignResult struct {
	Iterations            int     `json:"iterations"`
	DistinctSchedules     int     `json:"distinct_schedules"`
	BuggyIterations       int     `json:"buggy_iterations"`
	PercentBuggy          float64 `json:"percent_buggy"`
	SchedulesPerSecond    float64 `json:"schedules_per_sec"`
	MaxSchedulingPoints   int     `json:"max_scheduling_points"`
	TotalSchedulingPoints int64   `json:"total_scheduling_points"`
	MaxMachines           int     `json:"max_machines"`
	BoundReached          int     `json:"bound_reached"`
	// PrunedIterations and DistinctStates report the state-cache prune
	// census (Report.PrunedIterations / Report.DistinctStates); absent when
	// the campaign ran without Options.StateCache. Pruned iterations are not
	// included in Iterations or SchedulesPerSecond.
	PrunedIterations int  `json:"pruned_iterations,omitempty"`
	DistinctStates   int  `json:"distinct_states,omitempty"`
	Exhausted        bool `json:"exhausted,omitempty"`
	// Interrupted marks a partial campaign: the run was stopped early
	// (signal or hard timeout) and its counters cover only the explored
	// prefix. A journaled campaign can be resumed to completion.
	Interrupted       bool     `json:"interrupted,omitempty"`
	ElapsedMS         float64  `json:"elapsed_ms"`
	FirstBug          string   `json:"first_bug,omitempty"`
	FirstBugKind      string   `json:"first_bug_kind,omitempty"`
	FirstBugIteration int      `json:"first_bug_iteration,omitempty"`
	Races             []string `json:"races,omitempty"`
	// Faults breaks down the faults injected across the campaign; absent
	// when fault injection was off or never fired.
	Faults *FaultBreakdown `json:"faults,omitempty"`
}

// FaultBreakdown is the JSON rendering of psharp.FaultStats, shared by
// campaign results and telemetry snapshots.
type FaultBreakdown struct {
	Crashes    int `json:"crashes,omitempty"`
	Restarts   int `json:"restarts,omitempty"`
	Drops      int `json:"drops,omitempty"`
	Duplicates int `json:"duplicates,omitempty"`
	Reorders   int `json:"reorders,omitempty"`
}

func newFaultBreakdown(s psharp.FaultStats) *FaultBreakdown {
	return &FaultBreakdown{
		Crashes:    s.Crashes,
		Restarts:   s.Restarts,
		Drops:      s.Drops,
		Duplicates: s.Duplicates,
		Reorders:   s.Reorders,
	}
}

// StrategyBreakdown aggregates the workers that ran one strategy label.
type StrategyBreakdown struct {
	Strategy            string `json:"strategy"`
	Workers             int    `json:"workers"`
	Iterations          int    `json:"iterations"`
	BuggyIterations     int    `json:"buggy_iterations"`
	BoundReached        int    `json:"bound_reached"`
	MaxSchedulingPoints int    `json:"max_scheduling_points"`
	FoundFirstBug       bool   `json:"found_first_bug,omitempty"`
}

// NewCampaign assembles a campaign report from a merged Report, the
// per-worker sub-reports (nil for sequential runs), and the run's Telemetry
// accumulator (nil when telemetry was off). The environment is captured at
// call time.
func NewCampaign(cfg CampaignConfig, rep *Report, workers []WorkerReport, tel *Telemetry) *Campaign {
	c := &Campaign{
		Version: CampaignVersion,
		Env:     obs.CaptureEnv(),
		Config:  cfg,
		Result: CampaignResult{
			Iterations:            rep.Iterations,
			DistinctSchedules:     rep.DistinctSchedules,
			BuggyIterations:       rep.BuggyIterations,
			PercentBuggy:          rep.PercentBuggy(),
			SchedulesPerSecond:    rep.SchedulesPerSecond(),
			MaxSchedulingPoints:   rep.MaxSchedulingPoints,
			TotalSchedulingPoints: rep.TotalSchedulingPoints,
			MaxMachines:           rep.MaxMachines,
			BoundReached:          rep.BoundReached,
			PrunedIterations:      rep.PrunedIterations,
			DistinctStates:        rep.DistinctStates,
			Exhausted:             rep.Exhausted,
			Interrupted:           rep.Interrupted,
			ElapsedMS:             float64(rep.Elapsed) / float64(time.Millisecond),
			Races:                 rep.Races,
		},
	}
	if rep.FirstBug != nil {
		c.Result.FirstBug = rep.FirstBug.Error()
		c.Result.FirstBugKind = rep.FirstBug.Kind.String()
		c.Result.FirstBugIteration = rep.FirstBugIteration
	}
	if rep.Faults.Total() > 0 || rep.Faults.Restarts > 0 {
		c.Result.Faults = newFaultBreakdown(rep.Faults)
	}
	c.Strategies = strategyBreakdowns(rep, workers)
	if tel != nil {
		c.Telemetry = tel.Snapshot()
	}
	return c
}

// strategyBreakdowns folds per-worker sub-reports into per-label
// aggregates, preserving first-seen label order (worker order).
func strategyBreakdowns(merged *Report, workers []WorkerReport) []StrategyBreakdown {
	if len(workers) == 0 {
		return nil
	}
	index := make(map[string]int, len(workers))
	var out []StrategyBreakdown
	for i := range workers {
		w := &workers[i]
		j, ok := index[w.Strategy]
		if !ok {
			j = len(out)
			index[w.Strategy] = j
			out = append(out, StrategyBreakdown{Strategy: w.Strategy})
		}
		b := &out[j]
		b.Workers++
		b.Iterations += w.Report.Iterations
		b.BuggyIterations += w.Report.BuggyIterations
		b.BoundReached += w.Report.BoundReached
		if w.Report.MaxSchedulingPoints > b.MaxSchedulingPoints {
			b.MaxSchedulingPoints = w.Report.MaxSchedulingPoints
		}
		if merged.FirstBug != nil && w.Report.FirstBug != nil &&
			w.Report.FirstBugIteration == merged.FirstBugIteration {
			b.FoundFirstBug = true
		}
	}
	return out
}

// WriteFile marshals the campaign as indented JSON into path.
func (c *Campaign) WriteFile(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
