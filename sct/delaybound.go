package sct

import "github.com/psharp-go/psharp"

// DelayBounding implements randomized delay-bounded scheduling (Emmi,
// Qadeer, Rakamarić, POPL 2011 — the paper's reference [9]): the underlying
// scheduler is deterministic (round-robin in creation order), and the
// strategy spends at most `budget` delays per iteration; a delay skips the
// machine the deterministic scheduler would run and moves to the next one.
// Delay positions are chosen uniformly over the expected schedule length.
type DelayBounding struct {
	seed   uint64
	budget int
	steps  int
	offset int
	stride int

	rng       *splitMix64
	delayAt   map[int]bool
	remaining int
	step      int
}

// NewDelayBounding returns a delay-bounding strategy with the given delay
// budget over schedules of roughly expectedSteps scheduling points.
func NewDelayBounding(seed uint64, budget, expectedSteps int) *DelayBounding {
	if budget < 0 {
		budget = 0
	}
	if expectedSteps < 1 {
		expectedSteps = 1
	}
	return &DelayBounding{seed: seed, budget: budget, steps: expectedSteps, stride: 1}
}

// CloneForWorker shards the per-iteration delay-placement seed stream: the
// clone's local iteration i is global iteration worker + i*workers of the
// same base seed, so a sharded parallel run explores exactly the sequential
// run's schedule population.
func (s *DelayBounding) CloneForWorker(worker, workers int) Strategy {
	return &DelayBounding{seed: s.seed, budget: s.budget, steps: s.steps, offset: worker, stride: workers}
}

// PrepareIteration re-randomizes the delay positions.
func (s *DelayBounding) PrepareIteration(iter int) bool {
	g := uint64(s.offset) + uint64(iter)*uint64(s.stride)
	s.rng = newRNG(s.seed + g*0x9e3779b97f4a7c15)
	s.delayAt = make(map[int]bool)
	for i := 0; i < s.budget; i++ {
		s.delayAt[s.rng.intn(s.steps)] = true
	}
	s.remaining = s.budget
	s.step = 0
	return true
}

// NextMachine continues with the current machine (round-robin order) unless
// this step spends a delay.
func (s *DelayBounding) NextMachine(current psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	// Deterministic base order: first enabled machine at or after current.
	idx := 0
	for i, id := range enabled {
		if id.Seq >= current.Seq {
			idx = i
			break
		}
	}
	if s.delayAt[s.step] && s.remaining > 0 {
		s.remaining--
		idx = (idx + 1) % len(enabled)
	}
	s.step++
	return enabled[idx]
}

// NextBool resolves controlled booleans uniformly.
func (s *DelayBounding) NextBool() bool { return s.rng.boolean() }

// NextInt resolves controlled integers uniformly.
func (s *DelayBounding) NextInt(n int) int { return s.rng.intn(n) }
