package sct_test

import (
	"bytes"
	"testing"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

// The corpus-wide soundness harness for the reduction stack. The sound
// claim DPOR+cache makes is relative to the enumeration it prunes: within
// an equal budget it must find every bug DFS finds (the reduction only
// collapses commuting interleavings and truncates revisited states, it
// never discards a behavior). Against random search the paper's own Table 2
// applies — systematic depth-first exploration misses deep bugs random
// stumbles into (Raft, BasicPaxos, German) — so superiority over random is
// asserted only on the gated subset where depth-first search is viable;
// psharp-bench turns that subset into a hard ≤50%-of-random's-schedules
// gate.

const corpusBudget = 2000

func corpusRun(b protocols.Benchmark, s sct.Strategy, cache bool, budget int) sct.Report {
	return sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:       s,
		Iterations:     budget,
		MaxSteps:       b.MaxSteps,
		LivelockAsBug:  b.LivelockAsBug,
		StopOnFirstBug: true,
		StateCache:     cache,
		Timeout:        30 * time.Second,
	})
}

// TestDPORCorpusDFSParity: on every buggy Table 2 benchmark, DPOR+cache
// must find a bug whenever equal-budget DFS does — pruning never loses a
// bug the unreduced enumeration reaches — and every bug it finds must
// replay byte-identically.
func TestDPORCorpusDFSParity(t *testing.T) {
	for _, name := range protocols.Names() {
		b, ok := protocols.ByName(name, true)
		if !ok {
			continue
		}
		dfs := corpusRun(b, sct.NewDFS(), false, corpusBudget)
		dpor := corpusRun(b, sct.NewDPOR(), true, corpusBudget)
		if dfs.BugFound() && !dpor.BugFound() {
			t.Errorf("%s: DFS found a bug at iteration %d but DPOR+cache missed it (%d explored, %d pruned)",
				name, dfs.FirstBugIteration, dpor.Iterations, dpor.PrunedIterations)
			continue
		}
		if dpor.BugFound() {
			verifyCorpusReplay(t, name, b, dpor)
		}
		t.Logf("%-18s dfs=%v dpor+cache=%v (%d explored, %d pruned)",
			name, dfs.BugFound(), dpor.BugFound(), dpor.Iterations, dpor.PrunedIterations)
	}
}

// TestDPORCorpusBeatsRandom: the gated subset — benchmarks whose seeded
// bugs depth-first search reaches — where DPOR+cache must find every bug
// random finds, exploring no more schedules than random needed. The 2x
// margin on top of this is enforced by psharp-bench's dpor_probe gate.
func TestDPORCorpusBeatsRandom(t *testing.T) {
	cases := []struct {
		name   string
		budget int
	}{
		{"TwoPhaseCommit", 4000}, // ~3.5k attempts are pruned before the bug branch
		{"Chord", corpusBudget},
	}
	for _, tc := range cases {
		b := protocols.MustByName(tc.name, true)
		rnd := corpusRun(b, sct.NewRandom(1), false, tc.budget)
		if !rnd.BugFound() {
			t.Errorf("%s: random baseline missed the seeded bug in %d schedules", tc.name, rnd.Iterations)
			continue
		}
		dpor := corpusRun(b, sct.NewDPOR(), true, tc.budget)
		if !dpor.BugFound() {
			t.Errorf("%s: random found the bug after %d schedules but DPOR+cache missed it (%d explored, %d pruned)",
				tc.name, rnd.FirstBugIteration+1, dpor.Iterations, dpor.PrunedIterations)
			continue
		}
		if dpor.Iterations > rnd.FirstBugIteration+1 {
			t.Errorf("%s: DPOR+cache explored %d schedules to the bug, random needed %d",
				tc.name, dpor.Iterations, rnd.FirstBugIteration+1)
		}
		verifyCorpusReplay(t, tc.name, b, dpor)
		t.Logf("%-18s random=%d schedules, dpor+cache=%d explored (+%d pruned)",
			tc.name, rnd.FirstBugIteration+1, dpor.Iterations, dpor.PrunedIterations)
	}
}

// TestDPORCorpusLiveness: the FairResponder liveness bug (a monitor stuck
// hot past the temperature threshold) must be reachable under DPOR+cache —
// the monitor temperature is part of the hashed state, so the cache cannot
// prune a schedule before its temperature crossing.
func TestDPORCorpusLiveness(t *testing.T) {
	b := protocols.MustByName("FairResponder", true)
	opts := sct.Options{
		Iterations:          corpusBudget,
		MaxSteps:            b.MaxSteps,
		LivenessTemperature: b.Temperature,
		StopOnFirstBug:      true,
		Timeout:             30 * time.Second,
	}
	rnd := opts
	rnd.Strategy = sct.NewRandom(1)
	random := sct.Run(b.SetupMonitored(), rnd)
	if !random.BugFound() {
		t.Fatalf("random baseline missed the liveness bug in %d schedules", random.Iterations)
	}
	dp := opts
	dp.Strategy = sct.NewDPOR()
	dp.StateCache = true
	dpor := sct.Run(b.SetupMonitored(), dp)
	if !dpor.BugFound() {
		t.Fatalf("DPOR+cache missed the liveness bug (%d explored, %d pruned)",
			dpor.Iterations, dpor.PrunedIterations)
	}
	if dpor.FirstBug.Kind != psharp.BugLiveness {
		t.Fatalf("expected a liveness bug, got %v", dpor.FirstBug)
	}
}

// TestDPORCorpusFaultNegative: TwoPhaseCommitFT's seeded bug needs a crash
// to manifest; with fault injection off (DPOR supports nothing else),
// neither random nor DPOR+cache may report one. A phantom find here would
// mean the reduction or the hashing corrupted execution.
func TestDPORCorpusFaultNegative(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommitFT", true)
	rnd := corpusRun(b, sct.NewRandom(1), false, 500)
	if rnd.BugFound() {
		t.Fatalf("random found a fault-gated bug without faults: %v", rnd.FirstBug)
	}
	dpor := corpusRun(b, sct.NewDPOR(), true, 500)
	if dpor.BugFound() {
		t.Fatalf("DPOR+cache found a fault-gated bug without faults: %v", dpor.FirstBug)
	}
}

// verifyCorpusReplay checks a DPOR-found bug trace replays byte-identically.
func verifyCorpusReplay(t *testing.T, name string, b protocols.Benchmark, rep sct.Report) {
	t.Helper()
	res := sct.ReplayTrace(b.SetupMonitored(), rep.FirstBugTrace, psharp.TestConfig{
		MaxSteps:      b.MaxSteps,
		LivelockAsBug: b.LivelockAsBug,
	})
	if res.Bug == nil {
		t.Errorf("%s: DPOR bug trace did not replay", name)
		return
	}
	var want, got bytes.Buffer
	if err := rep.FirstBugTrace.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("%s: replayed trace is not byte-identical", name)
	}
}
