package sct

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Progress is one typed progress snapshot, emitted by the engine every
// Options.ProgressEvery iterations of a worker. All campaign-wide fields
// (Iterations, Buggy, Distinct) are global: they count across every worker,
// so the snapshot reports true campaign progress against the global budget
// even under work-stealing, where a worker's local count says nothing about
// how much of the budget is spent.
type Progress struct {
	// Worker is the 0-based id of the emitting worker; Workers is the run's
	// worker count (1 for sequential Run).
	Worker  int `json:"worker"`
	Workers int `json:"workers"`
	// Strategy names the emitting worker's strategy ("" in sequential runs).
	Strategy string `json:"strategy,omitempty"`
	// WorkerIterations is the emitting worker's own iteration count.
	WorkerIterations int `json:"worker_iterations"`
	// Iterations and Budget are the campaign-wide explored count and the
	// global iteration budget.
	Iterations int64 `json:"iterations"`
	Budget     int   `json:"budget"`
	// Buggy and Distinct are the campaign-wide buggy-schedule and
	// distinct-fingerprint counts.
	Buggy    int64 `json:"buggy"`
	Distinct int64 `json:"distinct"`
	// Pruned and DistinctStates are the campaign-wide state-cache counters:
	// iterations cut short at a revisited global state, and distinct hashed
	// states seen. Both 0 (and omitted from JSON) when the cache is off.
	Pruned         int64 `json:"pruned,omitempty"`
	DistinctStates int64 `json:"distinct_states,omitempty"`
	// Elapsed is wall-clock time since the run started, in nanoseconds when
	// marshalled.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ProgressFunc receives progress snapshots. The engine serializes calls
// behind a run-wide mutex, so implementations need no locking of their own
// even under RunParallel; they should return quickly, since emission happens
// between iterations on the exploration path.
type ProgressFunc func(Progress)

// ProgressText returns a ProgressFunc rendering one human-readable line per
// snapshot. Parallel runs tag each line with the emitting worker and its
// strategy; the campaign-wide counters make the lines comparable across
// workers either way.
func ProgressText(w io.Writer) ProgressFunc {
	return func(p Progress) {
		pruned := ""
		if p.Pruned > 0 {
			pruned = fmt.Sprintf(", %d pruned", p.Pruned)
		}
		if p.Workers > 1 {
			fmt.Fprintf(w, "sct: [w%d %s] %d/%d schedules, %d buggy, %d distinct%s, %s\n",
				p.Worker, p.Strategy, p.Iterations, p.Budget, p.Buggy, p.Distinct, pruned,
				p.Elapsed.Round(time.Millisecond))
			return
		}
		fmt.Fprintf(w, "sct: %d/%d schedules, %d buggy, %d distinct%s, %s\n",
			p.Iterations, p.Budget, p.Buggy, p.Distinct, pruned, p.Elapsed.Round(time.Millisecond))
	}
}

// ProgressJSONL returns a ProgressFunc writing one JSON object per line —
// the machine-readable stream behind psharp-test -progress-jsonl.
func ProgressJSONL(w io.Writer) ProgressFunc {
	enc := json.NewEncoder(w)
	return func(p Progress) {
		enc.Encode(p)
	}
}
