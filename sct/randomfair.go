package sct

import "github.com/psharp-go/psharp"

// RandomFair is the fair variant of the random scheduler, the companion
// CHESS-style recipe that makes liveness checking sound (Musuvathi &
// Qadeer's fair stateless model checking, applied to the paper's monitor
// specifications): each iteration starts with a uniformly random prefix —
// which explores the event reorderings that trigger a liveness bug — and
// then switches to fair round-robin over the enabled machines, so every
// machine that could discharge a pending hot-state obligation is guaranteed
// to run. Under an unfair scheduler a monitor can stay hot merely because
// the scheduler starved the machine that would cool it down; under
// RandomFair's fair suffix, a monitor that stays hot is a genuine liveness
// violation, which is what keeps the zero-false-positive replay guarantee
// intact for BugLiveness. Pair it with psharp.TestConfig.LivenessTemperature
// set above prefix plus a few round-robin cycles, so the temperature can
// only cross the threshold inside the fair region.
//
// Like Random, RandomFair is deterministic given its seed and shards its
// seed stream across parallel workers, so a sharded parallel run explores
// the same schedule population as the sequential run.
type RandomFair struct {
	seed   uint64
	offset int
	stride int
	prefix int
	rng    *splitMix64

	steps   int
	lastSeq uint64
}

// NewRandomFair returns a fair random strategy: uniformly random for the
// first prefix scheduling decisions of every iteration, fair round-robin
// afterwards. A prefix of 0 schedules round-robin from the first decision.
func NewRandomFair(seed uint64, prefix int) *RandomFair {
	if prefix < 0 {
		prefix = 0
	}
	return &RandomFair{seed: seed, stride: 1, prefix: prefix, rng: newRNG(seed)}
}

// CloneForWorker shards the seed stream exactly like Random: the clone's
// local iteration i is global iteration worker + i*workers.
func (s *RandomFair) CloneForWorker(worker, workers int) Strategy {
	return &RandomFair{seed: s.seed, offset: worker, stride: workers, prefix: s.prefix, rng: newRNG(s.seed)}
}

// PrepareIteration reseeds the stream for local iteration iter and rewinds
// the fairness bookkeeping. RandomFair never exhausts its search space.
func (s *RandomFair) PrepareIteration(iter int) bool {
	g := uint64(s.offset) + uint64(iter)*uint64(s.stride)
	s.rng.reseed(s.seed + g*0x9e3779b97f4a7c15)
	s.steps = 0
	s.lastSeq = 0
	return true
}

// NextMachine picks uniformly at random during the prefix, then fairly:
// the enabled machine with the smallest creation index greater than the
// last scheduled one, wrapping around. The enabled slice is sorted by
// creation order, so the round-robin is a single scan, and every machine
// that stays enabled is scheduled at least once per cycle — strong fairness
// over the enabled set.
func (s *RandomFair) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	s.steps++
	if s.steps <= s.prefix {
		id := enabled[s.rng.intn(len(enabled))]
		s.lastSeq = id.Seq
		return id
	}
	for _, id := range enabled {
		if id.Seq > s.lastSeq {
			s.lastSeq = id.Seq
			return id
		}
	}
	id := enabled[0] // wrap: start the next round-robin cycle
	s.lastSeq = id.Seq
	return id
}

// NextBool resolves a controlled boolean choice uniformly.
func (s *RandomFair) NextBool() bool { return s.rng.boolean() }

// NextInt resolves a controlled integer choice uniformly.
func (s *RandomFair) NextInt(n int) int { return s.rng.intn(n) }
