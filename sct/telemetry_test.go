package sct_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/psharp-go/psharp/sct"
)

// TestTelemetryAccumulatesCampaignMetrics checks the full accumulator on a
// sequential run: depth histogram, transition coverage, bug census, and a
// growth curve with a forced final point.
func TestTelemetryAccumulatesCampaignMetrics(t *testing.T) {
	tel := sct.NewTelemetry(time.Millisecond)
	rep := sct.Run(orderingBugSetup(), sct.Options{
		Strategy:   sct.NewRandom(42),
		Iterations: 300,
		MaxSteps:   100,
		Telemetry:  tel,
	})
	snap := tel.Snapshot()
	if snap.SchedulingPoints.Count != int64(rep.Iterations) {
		t.Fatalf("depth observations = %d, want %d", snap.SchedulingPoints.Count, rep.Iterations)
	}
	if snap.SchedulingPoints.Max != int64(rep.MaxSchedulingPoints) {
		t.Fatalf("depth max = %d, want %d", snap.SchedulingPoints.Max, rep.MaxSchedulingPoints)
	}
	if snap.CoveredTransitions < 2 {
		t.Fatalf("covered transitions = %d, want >= 2 (%+v)", snap.CoveredTransitions, snap.Coverage)
	}
	if int64(len(snap.Coverage)) != snap.CoveredTransitions {
		t.Fatalf("coverage list length %d != distinct %d", len(snap.Coverage), snap.CoveredTransitions)
	}
	if rep.BuggyIterations > 0 {
		var census int64
		for _, n := range snap.BugCensus {
			census += n
		}
		if census != int64(rep.BuggyIterations) {
			t.Fatalf("bug census sums to %d, want %d (%v)", census, rep.BuggyIterations, snap.BugCensus)
		}
		if snap.BugCensus["assertion failure"] == 0 {
			t.Fatalf("census missing assertion failures: %v", snap.BugCensus)
		}
	}
	if len(snap.GrowthCurve) == 0 {
		t.Fatal("no growth-curve points")
	}
	last := snap.GrowthCurve[len(snap.GrowthCurve)-1]
	if last.Iterations != int64(rep.Iterations) {
		t.Fatalf("final curve point iterations = %d, want %d", last.Iterations, rep.Iterations)
	}
	if last.DistinctSchedules != int64(rep.DistinctSchedules) {
		t.Fatalf("final curve point distinct = %d, want %d", last.DistinctSchedules, rep.DistinctSchedules)
	}
	if last.CoveredTransitions != snap.CoveredTransitions {
		t.Fatalf("final curve point coverage = %d, want %d", last.CoveredTransitions, snap.CoveredTransitions)
	}
}

// TestTelemetryParallelMergesAcrossWorkers checks that one accumulator
// shared by parallel workers records every iteration exactly once.
func TestTelemetryParallelMergesAcrossWorkers(t *testing.T) {
	tel := sct.NewTelemetry(time.Millisecond)
	par := sct.RunParallel(fanInSetup(3), sct.ParallelOptions{
		Options: sct.Options{
			Strategy:   sct.NewRandom(7),
			Iterations: 200,
			MaxSteps:   1000,
			Telemetry:  tel,
		},
		Workers: 4,
	})
	snap := tel.Snapshot()
	if snap.SchedulingPoints.Count != int64(par.Iterations) {
		t.Fatalf("depth observations = %d, want %d", snap.SchedulingPoints.Count, par.Iterations)
	}
	last := snap.GrowthCurve[len(snap.GrowthCurve)-1]
	if last.Iterations != int64(par.Iterations) || last.DistinctSchedules != int64(par.DistinctSchedules) {
		t.Fatalf("final curve point %+v disagrees with report (%d iters, %d distinct)",
			last, par.Iterations, par.DistinctSchedules)
	}
}

// TestCampaignReportRoundTrip builds a campaign report from a portfolio run,
// writes it, and checks the decoded JSON carries the versioned schema, the
// per-strategy breakdown, and a multi-bucket growth curve.
func TestCampaignReportRoundTrip(t *testing.T) {
	tel := sct.NewTelemetry(time.Millisecond)
	pf, err := sct.ParsePortfolio("random,dfs", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	par := sct.RunParallel(fanInSetup(3), sct.ParallelOptions{
		Options: sct.Options{
			Iterations: 200,
			MaxSteps:   1000,
			Telemetry:  tel,
		},
		Workers:   2,
		Portfolio: pf,
	})
	cfg := sct.CampaignConfig{
		Benchmark: "FanIn", Strategy: "portfolio[random,dfs]",
		Workers: 2, Iterations: 200, MaxSteps: 1000,
	}
	c := sct.NewCampaign(cfg, &par.Report, par.Workers, tel)
	if c.Version != sct.CampaignVersion {
		t.Fatalf("version = %d, want %d", c.Version, sct.CampaignVersion)
	}
	if len(c.Strategies) != 2 {
		t.Fatalf("strategy breakdowns = %d, want 2 (%+v)", len(c.Strategies), c.Strategies)
	}
	var total int
	for _, b := range c.Strategies {
		total += b.Iterations
	}
	if total != par.Iterations {
		t.Fatalf("breakdown iterations sum to %d, want %d", total, par.Iterations)
	}
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded sct.Campaign
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("campaign does not decode: %v", err)
	}
	if decoded.Env.GoVersion == "" || decoded.Env.NumCPU == 0 {
		t.Fatalf("missing environment metadata: %+v", decoded.Env)
	}
	if decoded.Result.Iterations != par.Iterations {
		t.Fatalf("result iterations = %d, want %d", decoded.Result.Iterations, par.Iterations)
	}
	if decoded.Telemetry == nil || len(decoded.Telemetry.GrowthCurve) == 0 {
		t.Fatal("campaign missing telemetry growth curve")
	}
}
