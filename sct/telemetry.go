package sct

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/journal"
	"github.com/psharp-go/psharp/obs"
)

// Telemetry accumulates exploration-campaign metrics across every iteration
// and worker of a run: the distribution of schedule depths, state-transition
// coverage (which machine-state × event pairs the explored schedules
// actually exercised), a census of bug kinds, and a growth curve sampling
// how iterations, distinct schedule fingerprints, and covered transitions
// grow over wall-clock time.
//
// Attach one via Options.Telemetry. All recording is allocation-free in
// steady state (atomics, an interned coverage set, and a time-bucketed
// curve whose fast path is one atomic load), so the engine's allocation
// caps hold with telemetry on; the overhead is gated by the
// telemetry-overhead probe in BENCH_sct.json. Snapshot is safe to call
// concurrently with a live run, which is what the -http debug endpoint
// serves.
type Telemetry struct {
	coverage obs.StateEventCoverage
	depth    obs.Histogram
	curve    *obs.Curve

	mu     sync.Mutex
	census map[string]int64 // bug kind -> buggy iteration count
	faults psharp.FaultStats

	// pruned and states mirror the run's state-cache counters (campaign-wide
	// pruned iterations and distinct hashed states) at the last curve sample,
	// so a live Snapshot reports them without reaching into engine internals.
	// Both stay zero when the run has no state cache.
	pruned atomic.Int64
	states atomic.Int64

	start time.Time
	// base offsets every sample's elapsed time by the prior journaled runs'
	// cumulative wall-clock, so a resumed campaign's growth curve continues
	// where the interrupted run's checkpoints left off instead of
	// restarting at zero.
	base time.Duration
}

// NewTelemetry returns a telemetry accumulator whose growth curve samples
// at most once per interval (non-positive selects 5ms, fine-grained enough
// that even sub-second corpus runs record several buckets).
func NewTelemetry(interval time.Duration) *Telemetry {
	return &Telemetry{curve: obs.NewCurve(interval, 0)}
}

// Coverage exposes the campaign's state-transition coverage set, e.g. to
// share it with a production runtime or inspect it mid-run.
func (t *Telemetry) Coverage() *obs.StateEventCoverage { return &t.coverage }

// begin stamps the run's start time; called by the engine.
func (t *Telemetry) begin(start time.Time) { t.start = start }

// restore seeds the growth curve from a resumed campaign's journaled
// checkpoints and offsets subsequent samples past them; called by the
// engine when a run carries a journal. The iteration and
// distinct-schedule series genuinely span the whole campaign (counters
// and fingerprints are recovered); the covered-transitions series
// re-accumulates per process, since the coverage set itself is not
// journaled, so it can dip at a resume boundary.
func (t *Telemetry) restore(base time.Duration, checkpoints []journal.Checkpoint) {
	t.base = base
	for _, cp := range checkpoints {
		t.curve.Restore(obs.CurvePoint{
			Elapsed: time.Duration(cp.ElapsedMicros) * time.Microsecond,
			Values:  []int64{cp.Iterations, cp.DistinctSchedules, cp.CoveredTransitions},
		})
	}
}

// record folds one finished iteration in; called by workers off the
// scheduling hot path (between iterations).
func (t *Telemetry) record(res *psharp.IterationResult) {
	t.depth.Observe(int64(res.SchedulingPoints))
	if res.Bug == nil && res.Faults.Total() == 0 && res.Faults.Restarts == 0 {
		return
	}
	t.mu.Lock()
	if res.Bug != nil {
		if t.census == nil {
			t.census = make(map[string]int64)
		}
		t.census[res.Bug.Kind.String()]++
	}
	t.faults.Add(res.Faults)
	t.mu.Unlock()
}

// maybeSample takes a growth-curve point if the current time bucket is due.
// The not-due path is one atomic load, so workers poll it every iteration.
func (t *Telemetry) maybeSample(sh *shared) {
	elapsed := t.base + time.Since(t.start)
	if !t.curve.Due(elapsed) {
		return
	}
	t.sample(elapsed, false, sh)
}

// finish forces a final curve point so even runs shorter than one bucket
// interval report their end state.
func (t *Telemetry) finish(sh *shared) {
	t.sample(t.base+time.Since(t.start), true, sh)
}

func (t *Telemetry) sample(elapsed time.Duration, force bool, sh *shared) {
	states := int64(0)
	if sh.cache != nil {
		states = int64(sh.cache.size())
	}
	t.pruned.Store(sh.pruned.Load())
	t.states.Store(states)
	t.curve.Sample(elapsed, force,
		sh.iterations.Load(), sh.distinct.Load(), t.coverage.Distinct(), states)
}

// GrowthPoint is one sample of the campaign growth curve.
type GrowthPoint struct {
	ElapsedMS          float64 `json:"elapsed_ms"`
	Iterations         int64   `json:"iterations"`
	DistinctSchedules  int64   `json:"distinct_schedules"`
	CoveredTransitions int64   `json:"covered_transitions"`
	// DistinctStates is the state cache's distinct-global-state count at the
	// sample; 0 when the run has no cache (and for curve points restored from
	// journal checkpoints, which predate or don't record the series).
	DistinctStates int64 `json:"distinct_states,omitempty"`
}

// TelemetrySnapshot is the JSON-friendly view of a Telemetry accumulator.
type TelemetrySnapshot struct {
	// SchedulingPoints is the distribution of schedule depths (decisions per
	// iteration) across the campaign.
	SchedulingPoints obs.HistogramSnapshot `json:"scheduling_points"`
	// CoveredTransitions counts distinct (machine, state, event) triples
	// exercised; Coverage lists them with hit counts.
	CoveredTransitions int64                 `json:"covered_transitions"`
	Coverage           []obs.TransitionCount `json:"coverage,omitempty"`
	// BugCensus counts buggy iterations by bug kind.
	BugCensus map[string]int64 `json:"bug_census,omitempty"`
	// Faults breaks down injected faults across the campaign; present only
	// when fault injection was on and at least one fault fired.
	Faults *FaultBreakdown `json:"faults,omitempty"`
	// PrunedIterations and DistinctStates report the state-cache prune census
	// as of the last growth-curve sample; both 0 when the cache was off.
	PrunedIterations int64 `json:"pruned_iterations,omitempty"`
	DistinctStates   int64 `json:"distinct_states,omitempty"`
	// GrowthCurve samples campaign progress over wall-clock time.
	GrowthCurve []GrowthPoint `json:"growth_curve,omitempty"`
}

// Snapshot renders the accumulator's current state. It allocates and sorts,
// and is safe to call concurrently with a live run (the debug endpoint
// does), though a mid-run snapshot may be internally torn across metrics.
func (t *Telemetry) Snapshot() *TelemetrySnapshot {
	s := &TelemetrySnapshot{
		SchedulingPoints:   t.depth.Snapshot(),
		CoveredTransitions: t.coverage.Distinct(),
		Coverage:           t.coverage.Snapshot(),
	}
	t.mu.Lock()
	if len(t.census) > 0 {
		s.BugCensus = make(map[string]int64, len(t.census))
		for k, v := range t.census {
			s.BugCensus[k] = v
		}
	}
	if t.faults.Total() > 0 || t.faults.Restarts > 0 {
		s.Faults = newFaultBreakdown(t.faults)
	}
	t.mu.Unlock()
	s.PrunedIterations = t.pruned.Load()
	s.DistinctStates = t.states.Load()
	for _, p := range t.curve.Points() {
		gp := GrowthPoint{ElapsedMS: float64(p.Elapsed) / float64(time.Millisecond)}
		// Journal-restored checkpoints carry 3 values; live samples carry 4.
		if len(p.Values) >= 3 {
			gp.Iterations, gp.DistinctSchedules, gp.CoveredTransitions = p.Values[0], p.Values[1], p.Values[2]
		}
		if len(p.Values) >= 4 {
			gp.DistinctStates = p.Values[3]
		}
		s.GrowthCurve = append(s.GrowthCurve, gp)
	}
	return s
}
