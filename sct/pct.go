package sct

import "github.com/psharp-go/psharp"

// PCT implements the probabilistic concurrency testing scheduler of
// Burckhardt et al. (ASPLOS 2010), the paper's reference [4], adapted to
// event-level scheduling: every machine gets a random priority when it is
// first seen; at each scheduling point the highest-priority enabled machine
// runs; at d-1 randomly chosen scheduling points (the "change points") the
// currently highest-priority enabled machine is demoted below every other.
// PCT gives probabilistic detection guarantees for bugs of depth <= d.
type PCT struct {
	seed   uint64
	depth  int
	steps  int // expected schedule length for change-point placement
	offset int
	stride int

	rng          *splitMix64
	priorities   map[psharp.MachineID]uint64
	low          uint64 // next demotion priority (counts down)
	changePoints map[int]bool
	step         int
}

// NewPCT returns a PCT strategy with bug depth d over schedules of roughly
// expectedSteps scheduling points.
func NewPCT(seed uint64, d, expectedSteps int) *PCT {
	if d < 1 {
		d = 1
	}
	if expectedSteps < 1 {
		expectedSteps = 1
	}
	return &PCT{seed: seed, depth: d, steps: expectedSteps, stride: 1}
}

// CloneForWorker shards the per-iteration priority/change-point seed
// stream: the clone's local iteration i is global iteration
// worker + i*workers of the same base seed, so a sharded parallel run
// explores exactly the sequential run's schedule population.
func (s *PCT) CloneForWorker(worker, workers int) Strategy {
	return &PCT{seed: s.seed, depth: s.depth, steps: s.steps, offset: worker, stride: workers}
}

// PrepareIteration re-randomizes priorities and change points.
func (s *PCT) PrepareIteration(iter int) bool {
	g := uint64(s.offset) + uint64(iter)*uint64(s.stride)
	s.rng = newRNG(s.seed + g*0x9e3779b97f4a7c15)
	s.priorities = make(map[psharp.MachineID]uint64)
	s.low = uint64(s.depth) // priorities below depth are demotion slots
	s.changePoints = make(map[int]bool)
	for i := 0; i < s.depth-1; i++ {
		s.changePoints[s.rng.intn(s.steps)] = true
	}
	s.step = 0
	return true
}

func (s *PCT) priority(id psharp.MachineID) uint64 {
	p, ok := s.priorities[id]
	if !ok {
		// Initial priorities all sit above the demotion band.
		p = uint64(s.depth) + 1 + s.rng.next()%1_000_000
		s.priorities[id] = p
	}
	return p
}

// NextMachine runs the highest-priority enabled machine, demoting it first
// if this step is a change point.
func (s *PCT) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	best := enabled[0]
	bestP := s.priority(best)
	for _, id := range enabled[1:] {
		if p := s.priority(id); p > bestP {
			best, bestP = id, p
		}
	}
	if s.changePoints[s.step] && s.low > 0 {
		s.low--
		s.priorities[best] = s.low
		// Re-pick after the demotion.
		s.step++
		next := enabled[0]
		nextP := s.priority(next)
		for _, id := range enabled[1:] {
			if p := s.priority(id); p > nextP {
				next, nextP = id, p
			}
		}
		return next
	}
	s.step++
	return best
}

// NextBool resolves controlled booleans uniformly (PCT only prioritizes
// scheduling; value nondeterminism stays random).
func (s *PCT) NextBool() bool { return s.rng.boolean() }

// NextInt resolves controlled integers uniformly.
func (s *PCT) NextInt(n int) int { return s.rng.intn(n) }
