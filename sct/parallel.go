package sct

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/psharp-go/psharp"
)

// ParallelOptions configures RunParallel.
type ParallelOptions struct {
	// Options carries the common exploration knobs. When Portfolio is nil,
	// Options.Strategy must implement Cloneable: every worker receives
	// CloneForWorker(w, Workers), so seeds and bound parameters shard
	// deterministically. Iterations is the *global* budget, divided across
	// workers (worker w explores the global iterations congruent to w modulo
	// Workers).
	Options
	// Workers is the number of concurrent exploration workers; 0 selects
	// GOMAXPROCS. RunParallel(workers=1) is equivalent to Run.
	Workers int
	// Portfolio, if non-nil, assigns heterogeneous strategies to workers
	// round-robin and overrides Options.Strategy.
	Portfolio *Portfolio
	// Dynamic opts into work stealing: instead of pre-assigning each worker
	// a static 1/n shard of the iteration budget, workers claim global
	// iteration tickets from a shared atomic counter, so fast workers absorb
	// the iterations slow workers never reach and nobody idles while budget
	// remains (useful when iteration costs are skewed, e.g. heterogeneous
	// portfolios or bound-sensitive strategies).
	//
	// The trade-off is reproducibility of the *population*: each worker
	// still walks its own deterministically sharded strategy stream, but how
	// many iterations of that stream it executes now depends on relative
	// worker speed, so the explored schedule set, the merged counts, and
	// FirstBugIteration (the claim order of the winning ticket) vary from
	// run to run and are not comparable to the sequential run. Every found
	// bug still carries a trace that replays deterministically through
	// ReplayTrace, and WorkerReport sub-reports record how many iterations
	// each worker actually executed. Dynamic runs cannot be journaled: the
	// ticket assignment is not replayable, so there is no well-defined
	// cursor to resume from.
	Dynamic bool
	// ShardIndex/ShardCount split one campaign across ShardCount processes:
	// this process runs global workers ShardIndex*Workers ..
	// (ShardIndex+1)*Workers-1 out of Workers*ShardCount, so the N processes
	// jointly explore exactly the population one process with N×Workers
	// workers would. A zero ShardCount means unsharded. Shards pair with
	// Options.Journal (each process journals its own shard file in the
	// shared campaign directory; see the journal package) but also work
	// without one as a pure budget split.
	ShardIndex int
	ShardCount int
}

// WorkerReport is one worker's sub-report of a parallel run.
type WorkerReport struct {
	// Worker is the 0-based worker id.
	Worker int
	// Strategy names the strategy instance the worker ran.
	Strategy string
	// Report holds the worker's own statistics. Its FirstBugIteration is a
	// global iteration index (see ParallelReport.Report).
	Report Report
}

// ParallelReport is the merged outcome of a parallel run.
//
// Global iteration indexing: worker w out of n explores global iterations
// {w, w+n, w+2n, ...}, so a homogeneous sharded run explores exactly the
// same schedule population as a sequential run with the same seed and
// budget, just partitioned across workers. FirstBugIteration in the merged
// Report is the smallest global index at which any worker found a bug;
// for full (non-early-stopped) runs it is therefore deterministic and equal
// to the sequential run's.
type ParallelReport struct {
	// Report is the merged, cross-worker aggregate.
	Report
	// Workers holds per-worker sub-reports, indexed by worker id.
	Workers []WorkerReport
}

// RunParallel fans schedule exploration out over opts.Workers concurrent
// workers, each running an independent strategy instance over its shard of
// the global iteration budget, and merges the per-worker statistics into
// one Report. Shards are static (and the run deterministic) by default;
// opts.Dynamic switches to work-stealing ticket assignment. Cancellation is
// cooperative and prompt: StopOnFirstBug and the hard Timeout deadline are
// polled by every worker at every scheduling point, so a single long
// iteration cannot keep the run alive.
func RunParallel(setup func(*psharp.Runtime), opts ParallelOptions) ParallelReport {
	if opts.Iterations <= 0 {
		panic("sct: Options.Iterations must be positive")
	}
	shards := opts.ShardCount
	if shards <= 0 {
		shards = 1
	}
	if opts.ShardIndex < 0 || opts.ShardIndex >= shards {
		panic(fmt.Sprintf("sct: ShardIndex %d out of range [0,%d)", opts.ShardIndex, shards))
	}
	if opts.Dynamic && opts.Journal != nil {
		panic("sct: a journaled campaign requires static sharding; Dynamic work-stealing has no resumable cursor")
	}
	if opts.Dynamic && shards > 1 {
		panic("sct: a sharded campaign requires static sharding; Dynamic only balances within one process")
	}
	n := opts.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if shards == 1 && n > opts.Iterations {
		n = opts.Iterations // never start a worker with an empty quota
	}
	// Workers are numbered globally across shards: this process runs global
	// workers shardIndex*n .. shardIndex*n+n-1 of n*shards, so seed streams,
	// portfolio assignment and fault streams shard campaign-wide and the
	// processes jointly explore the single-process population.
	globalWorkers := n * shards
	workers := make([]worker, n)
	for w := 0; w < n; w++ {
		gw := opts.ShardIndex*n + w
		strategy, label, err := workerStrategy(opts, gw, globalWorkers)
		if err != nil {
			panic("sct: " + err.Error())
		}
		if opts.Faults.Budget > 0 {
			checkFaultable(strategy)
		}
		if opts.StateCache {
			checkStateCacheable(strategy, opts.Faults.Budget)
		}
		if opts.Faults.Budget > 0 {
			// Wrap after per-worker resolution so the injector's own fault
			// stream shards alongside the inner strategy's seed stream.
			strategy = newFaultInjector(strategy, opts.Faults, gw, globalWorkers)
			label = "faults+" + label
		}
		workers[w] = worker{
			id:       w,
			strategy: strategy,
			label:    label,
			offset:   gw,
			stride:   globalWorkers,
			quota:    shardQuota(opts.Iterations, gw, globalWorkers),
			dynamic:  opts.Dynamic,
		}
		// Dynamic workers ignore quota: the shared ticket counter decides how
		// much of the budget each one executes, and progress snapshots always
		// report the global iteration counter against the global budget.
		if opts.Journal != nil {
			restoreCursor(opts.Journal, &workers[w])
		}
	}
	planned := 0
	for w := range workers {
		if workers[w].quota > workers[w].start {
			planned += workers[w].quota - workers[w].start
		}
	}

	start := time.Now()
	sh := newShared(opts.Options, start)
	sh.workers = n
	release := sh.watchStop()
	out := ParallelReport{Workers: make([]WorkerReport, n)}
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out.Workers[w] = WorkerReport{
				Worker:   w,
				Strategy: workers[w].label,
				Report:   runWorker(setup, sh, workers[w]),
			}
		}(w)
	}
	wg.Wait()
	release()

	if opts.Telemetry != nil {
		opts.Telemetry.finish(sh)
	}
	out.Report = mergeReports(out.Workers)
	out.Report.DistinctSchedules = sh.fingerprints.size()
	if sh.cache != nil {
		out.Report.DistinctStates = sh.cache.size()
	}
	out.Report.Elapsed = time.Since(start)
	out.Report.Interrupted = sh.interruptedOutcome(&out.Report, planned)
	finishJournal(sh, &out.Report)
	return out
}

// workerStrategy resolves worker w's strategy instance and display label.
func workerStrategy(opts ParallelOptions, w, n int) (Strategy, string, error) {
	if opts.Portfolio != nil {
		return opts.Portfolio.assign(w, n)
	}
	if opts.Strategy == nil {
		return nil, "", fmt.Errorf("ParallelOptions requires a Strategy or a Portfolio")
	}
	if n == 1 {
		return opts.Strategy, strategyName(opts.Strategy), nil
	}
	c, ok := opts.Strategy.(Cloneable)
	if !ok {
		return nil, "", fmt.Errorf("strategy %T does not implement Cloneable; use a Portfolio or Workers=1", opts.Strategy)
	}
	return c.CloneForWorker(w, n), strategyName(opts.Strategy), nil
}

// shardQuota is the number of global iterations in [0, budget) congruent to
// w modulo n.
func shardQuota(budget, w, n int) int {
	q := budget / n
	if w < budget%n {
		q++
	}
	return q
}

// mergeReports folds per-worker reports into the global aggregate. Merging
// in worker order keeps the result deterministic for full runs: sums and
// maxima are order-insensitive, the first bug is the one with the smallest
// global iteration index, and race reports keep worker-0-first ordering.
func mergeReports(workers []WorkerReport) Report {
	var merged Report
	var races raceSet
	exhausted := len(workers) > 0
	for i := range workers {
		rep := &workers[i].Report
		merged.Iterations += rep.Iterations
		merged.PrunedIterations += rep.PrunedIterations
		merged.BuggyIterations += rep.BuggyIterations
		merged.TotalSchedulingPoints += rep.TotalSchedulingPoints
		merged.BoundReached += rep.BoundReached
		if rep.MaxSchedulingPoints > merged.MaxSchedulingPoints {
			merged.MaxSchedulingPoints = rep.MaxSchedulingPoints
		}
		if rep.MaxMachines > merged.MaxMachines {
			merged.MaxMachines = rep.MaxMachines
		}
		merged.Faults.Add(rep.Faults)
		races.addAll(rep.Races)
		if rep.FirstBug != nil &&
			(merged.FirstBug == nil || rep.FirstBugIteration < merged.FirstBugIteration) {
			merged.FirstBug = rep.FirstBug
			merged.FirstBugIteration = rep.FirstBugIteration
			merged.FirstBugTrace = rep.FirstBugTrace
		}
		exhausted = exhausted && rep.Exhausted
	}
	merged.Exhausted = exhausted
	merged.Races = races.list
	return merged
}

// strategyName labels a strategy for sub-reports and progress lines.
func strategyName(s Strategy) string {
	switch s := s.(type) {
	case *FaultInjector:
		return "faults+" + strategyName(s.inner)
	case *Random:
		return "random"
	case *RandomFair:
		return "fair"
	case *PCT:
		return "pct"
	case *DelayBounding:
		return "delay"
	case *DFS:
		return "dfs"
	case *DPOR:
		return "dpor"
	case *Replay:
		return "replay"
	default:
		return fmt.Sprintf("%T", s)
	}
}
