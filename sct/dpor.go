package sct

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/psharp-go/psharp"
)

// DPOR is dynamic partial-order reduction with sleep sets (Flanagan &
// Godefroid) over the schedule tree DFS enumerates. Where DFS branches on
// every enabled machine at every node, DPOR executes one branch, observes
// the effect footprint of each step (psharp.StepOp, delivered through the
// psharp.StepObserver hook), and only inserts backtracking points where
// reordering could matter: when a step races with — is dependent on and
// performed by a different machine than — an earlier step, the earlier
// step's node gets the racing machine added to its backtrack set. Nodes
// explore only their backtrack sets (a persistent-set restriction of
// NextMachine), so commuting interleavings of independent steps collapse
// into one explored schedule.
//
// Two steps are dependent when their footprints overlap: same machine, one
// touches a machine the other created or targets, both send to the same
// mailbox, or both were observed by specification monitors (a monitor is
// order-sensitive shared state, so monitored steps are conservatively
// mutually dependent). The analysis has no vector clocks; when the racing
// machine was not enabled at the earlier node, all of that node's enabled
// machines are added — a sound over-approximation.
//
// Sleep sets prune the remaining commutative redundancy: a branch fully
// explored at a node puts its footprint to sleep for the node's later
// branches, descending until some executed step is dependent with it; the
// frontier choice avoids sleeping machines. Unlike classic sleep sets the
// backtrack choice never skips a sleeping branch (skipping interacts
// unsoundly with over-approximate backtrack sets), so a sleep-blocked
// execution can still run — redundantly but soundly; pairing DPOR with
// Options.StateCache truncates those quickly.
//
// Like DFS, DPOR is exhaustive up to the depth bound: PrepareIteration
// returns false once every backtrack point is explored. Every DFS
// guarantee carries over — byte-deterministic replay of found bugs, cursor
// serialization for resumable campaigns (SaveCursor/LoadCursor), and
// CloneForWorker sharding by root residue class. Because the backtrack
// sets that matter to one shard can be discovered while another shard's
// subtree is executing, sharded clones over-approximate the root to full
// branching — the reduction then applies within each shard's subtree.
//
// DPOR is a safety-exploration strategy: it is unfair in the same way DFS
// is, so pairing it with LivenessTemperature can flag starvation schedules
// a fair scheduler would not produce (exactly like DFS). Fault injection
// is not supported in this version — the fault injector wrapper would hide
// the StepObserver hook and fault decisions are not footprint-tracked; the
// engine and psharp-test refuse the combination.
type DPOR struct {
	stack     []dporNode
	pos       int
	exhausted bool

	shard  int
	shards int
	jumped bool

	// curSched is the stack index of the schedule node whose step is
	// currently executing (-1 between steps); bool/int nodes may be pushed
	// between the schedule decision and its ObserveStep.
	curSched int
	// curSleep is the sleep set at the current depth of this iteration's
	// descent: footprints of fully explored sibling branches, kept while
	// every executed step is independent of them.
	curSleep []dporOp
}

// dporOp is a step's effect footprint, the unit of the dependence
// relation and of sleep-set entries.
type dporOp struct {
	machine  psharp.MachineID
	target   psharp.MachineID
	created  psharp.MachineID
	observed bool
}

// dporDep reports whether two steps are dependent: reordering them could
// change program behavior.
func dporDep(a, b dporOp) bool {
	if a.observed && b.observed {
		return true
	}
	if a.machine.Seq == b.machine.Seq {
		return true
	}
	// One step touches a machine the other runs as, sends to, or creates.
	if overlaps(a.machine.Seq, b.target.Seq, b.created.Seq) ||
		overlaps(b.machine.Seq, a.target.Seq, a.created.Seq) {
		return true
	}
	// Same mailbox: two sends to one target do not commute.
	if a.target.Seq != 0 && a.target.Seq == b.target.Seq {
		return true
	}
	return false
}

func overlaps(m, target, created uint64) bool {
	return (target != 0 && m == target) || (created != 0 && m == created)
}

type dporNode struct {
	kind    psharp.DecisionKind
	options int
	// idx is the current branch of a bool/int node.
	idx int

	// Schedule-node fields. machines is the enabled set; chosen indexes
	// the branch being explored; backtrack marks branches that must be
	// explored (grown by race analysis); explored marks branches whose
	// subtrees are complete; done holds the footprints of explored
	// branches, feeding the sleep set of later branches.
	machines  []psharp.MachineID
	chosen    int
	backtrack []bool
	explored  []bool
	done      []dporOp
	// op is the footprint of the chosen branch's step, recorded at its
	// first execution (opKnown); re-chosen branches re-record.
	op      dporOp
	opKnown bool
}

// NewDPOR returns a fresh partial-order-reducing strategy.
func NewDPOR() *DPOR { return &DPOR{shards: 1, curSched: -1} }

// CloneForWorker returns a DPOR owning the root branches congruent to
// worker modulo workers, like DFS.CloneForWorker.
func (s *DPOR) CloneForWorker(worker, workers int) Strategy {
	return &DPOR{shard: worker, shards: workers, curSched: -1}
}

// Exhausted reports whether every backtrack point has been explored.
func (s *DPOR) Exhausted() bool { return s.exhausted }

// PrepareIteration backtracks to the deepest node with an unexplored
// backtracked branch; it returns false once none remain.
func (s *DPOR) PrepareIteration(iter int) bool {
	if s.exhausted {
		return false
	}
	s.curSleep = s.curSleep[:0]
	s.curSched = -1
	if iter == 0 {
		s.pos = 0
		return true
	}
	if s.shards > 1 && !s.jumped {
		s.jumped = true
		if s.shard != 0 {
			// Discard the probe's subtree (it belongs to worker 0) and jump
			// the root into this shard's residue class.
			if len(s.stack) == 0 || s.shard >= s.stack[0].options {
				s.exhausted = true
				return false
			}
			root := s.stack[0]
			root.chosen = s.shard
			root.opKnown = false
			root.op = dporOp{}
			root.done = nil
			root.explored = make([]bool, len(root.machines))
			s.stack = append(s.stack[:0], root)
			s.pos = 0
			return true
		}
	}
	for len(s.stack) > 0 {
		n := &s.stack[len(s.stack)-1]
		if n.kind != psharp.DecisionSchedule {
			n.idx++
			if n.idx < n.options {
				break
			}
			s.stack = s.stack[:len(s.stack)-1]
			continue
		}
		// Leaving the chosen branch: its subtree is complete. Its footprint
		// joins the node's done set, putting it to sleep for later branches.
		if !n.explored[n.chosen] {
			n.explored[n.chosen] = true
			if n.opKnown {
				n.done = append(n.done, n.op)
			}
		}
		next := -1
		for i := range n.machines {
			if len(s.stack) == 1 && s.shards > 1 && i%s.shards != s.shard {
				continue // sharded root: stay in this worker's residue class
			}
			if n.backtrack[i] && !n.explored[i] {
				next = i
				break
			}
		}
		if next >= 0 {
			n.chosen = next
			n.opKnown = false
			n.op = dporOp{}
			break
		}
		s.stack = s.stack[:len(s.stack)-1]
	}
	if len(s.stack) == 0 {
		s.exhausted = true
		return false
	}
	s.pos = 0
	return true
}

// NextMachine replays the current prefix and extends the tree at the
// frontier, preferring a machine outside the sleep set.
func (s *DPOR) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	if s.pos < len(s.stack) {
		n := &s.stack[s.pos]
		s.curSched = s.pos
		s.pos++
		if n.kind != psharp.DecisionSchedule {
			panic(fmt.Sprintf("sct: DPOR replay divergence: expected %v node, got schedule point", n.kind))
		}
		if n.chosen < len(n.machines) && contains(enabled, n.machines[n.chosen]) {
			return n.machines[n.chosen]
		}
		panic("sct: DPOR replay divergence: enabled set changed; program has uncontrolled nondeterminism")
	}
	node := dporNode{
		kind:      psharp.DecisionSchedule,
		options:   len(enabled),
		machines:  append([]psharp.MachineID(nil), enabled...),
		backtrack: make([]bool, len(enabled)),
		explored:  make([]bool, len(enabled)),
	}
	node.chosen = s.pickAwake(enabled)
	if len(s.stack) == 0 {
		// The root explores every branch: backtrack points discovered deep
		// in one subtree may name machines of another residue class, so
		// sharded clones partition a full root rather than a grown one (and
		// an unsharded run loses nothing — unreached root branches of a
		// genuinely reduced tree stay cheap, their subtrees collapse into
		// sleep-set-guided, cache-truncated stubs).
		for i := range node.backtrack {
			node.backtrack[i] = true
		}
	} else {
		node.backtrack[node.chosen] = true
	}
	s.curSched = len(s.stack)
	s.stack = append(s.stack, node)
	s.pos++
	return enabled[node.chosen]
}

// pickAwake returns the index of the first enabled machine with no sleep
// entry, or 0 when every enabled machine sleeps (a redundant but sound
// execution; the state cache truncates it).
func (s *DPOR) pickAwake(enabled []psharp.MachineID) int {
	for i, m := range enabled {
		asleep := false
		for _, e := range s.curSleep {
			if e.machine.Seq == m.Seq {
				asleep = true
				break
			}
		}
		if !asleep {
			return i
		}
	}
	return 0
}

// ObserveStep implements psharp.StepObserver: it receives the executed
// step's footprint, records it on the step's node (running race analysis
// on first execution), and advances the sleep set.
func (s *DPOR) ObserveStep(op psharp.StepOp) {
	if s.curSched < 0 || s.curSched >= len(s.stack) {
		return
	}
	n := &s.stack[s.curSched]
	o := dporOp{machine: op.Machine, target: op.Target, created: op.Created, observed: op.Observed}
	if !n.opKnown {
		n.op = o
		n.opKnown = true
		s.addBacktracks(s.curSched)
	}
	// Entering this node's subtree: sibling branches already explored here
	// go to sleep. Then every entry dependent with the executed step wakes
	// (is dropped) — reordering against it matters, so the subtree below
	// must be free to schedule it.
	s.curSleep = append(s.curSleep, n.done...)
	kept := s.curSleep[:0]
	for _, e := range s.curSleep {
		if !dporDep(e, o) {
			kept = append(kept, e)
		}
	}
	s.curSleep = kept
	s.curSched = -1
}

// addBacktracks is the DPOR race analysis: find the most recent earlier
// step that is dependent with the newly executed step and performed by a
// different machine, and make that step's node also explore the new
// step's machine (or, when it was not enabled there, all its machines).
func (s *DPOR) addBacktracks(at int) {
	n := &s.stack[at]
	for i := at - 1; i >= 0; i-- {
		a := &s.stack[i]
		if a.kind != psharp.DecisionSchedule || !a.opKnown {
			continue
		}
		if a.op.machine.Seq == n.op.machine.Seq {
			continue // program order, not a race
		}
		if a.op.created.Seq != 0 && a.op.created.Seq == n.op.machine.Seq {
			continue // creation happens-before every step of the machine
		}
		if !dporDep(a.op, n.op) {
			continue
		}
		if j := indexOfMachine(a.machines, n.op.machine); j >= 0 {
			a.backtrack[j] = true
		} else {
			for k := range a.backtrack {
				a.backtrack[k] = true
			}
		}
		return
	}
}

func indexOfMachine(ids []psharp.MachineID, id psharp.MachineID) int {
	for i, x := range ids {
		if x.Seq == id.Seq {
			return i
		}
	}
	return -1
}

// NextBool explores both boolean values systematically, like DFS.
func (s *DPOR) NextBool() bool {
	return s.choice(psharp.DecisionBool, 2) == 1
}

// NextInt explores all n values systematically, like DFS.
func (s *DPOR) NextInt(n int) int {
	return s.choice(psharp.DecisionInt, n)
}

func (s *DPOR) choice(kind psharp.DecisionKind, n int) int {
	if s.pos < len(s.stack) {
		node := &s.stack[s.pos]
		s.pos++
		if node.kind != kind || node.options != n {
			panic("sct: DPOR replay divergence on nondeterministic choice")
		}
		return node.idx
	}
	s.stack = append(s.stack, dporNode{kind: kind, options: n})
	s.pos++
	return 0
}

// dporCursorVersion versions the DPOR cursor blob layout inside journal
// cursor records.
const dporCursorVersion = 1

// SaveCursor serializes the DPOR frontier — the stack with its backtrack
// sets, explored bitmaps, done footprints and recorded ops — implementing
// CursorStrategy so journaled DPOR campaigns resume exactly where they
// stopped.
func (s *DPOR) SaveCursor() []byte {
	buf := []byte{dporCursorVersion}
	var flags byte
	if s.jumped {
		flags |= 1
	}
	if s.exhausted {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(s.shard))
	buf = binary.AppendUvarint(buf, uint64(s.shards))
	buf = binary.AppendUvarint(buf, uint64(len(s.stack)))
	for i := range s.stack {
		n := &s.stack[i]
		buf = append(buf, byte(n.kind))
		buf = binary.AppendUvarint(buf, uint64(n.options))
		buf = binary.AppendUvarint(buf, uint64(n.idx))
		if n.kind != psharp.DecisionSchedule {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(n.chosen))
		buf = binary.AppendUvarint(buf, uint64(len(n.machines)))
		for _, m := range n.machines {
			buf = appendCursorID(buf, m)
		}
		for j := range n.machines {
			var b byte
			if n.backtrack[j] {
				b |= 1
			}
			if n.explored[j] {
				b |= 2
			}
			buf = append(buf, b)
		}
		if n.opKnown {
			buf = append(buf, 1)
			buf = appendCursorOp(buf, n.op)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(len(n.done)))
		for _, d := range n.done {
			buf = appendCursorOp(buf, d)
		}
	}
	return buf
}

func appendCursorID(buf []byte, m psharp.MachineID) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m.Type)))
	buf = append(buf, m.Type...)
	return binary.AppendUvarint(buf, m.Seq)
}

func appendCursorOp(buf []byte, o dporOp) []byte {
	buf = appendCursorID(buf, o.machine)
	buf = appendCursorID(buf, o.target)
	buf = appendCursorID(buf, o.created)
	if o.observed {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// LoadCursor restores a frontier saved by SaveCursor; the receiver must be
// configured for the same worker shard.
func (s *DPOR) LoadCursor(cursor []byte) error {
	r := cursorReader{buf: cursor}
	if v := r.byte(); v != dporCursorVersion {
		return fmt.Errorf("unknown DPOR cursor version %d", v)
	}
	flags := r.byte()
	shard, shards := int(r.uvarint()), int(r.uvarint())
	if r.err == nil && (shard != s.shard || shards != s.shards) {
		return fmt.Errorf("DPOR cursor was saved for shard %d/%d, this worker is shard %d/%d", shard, shards, s.shard, s.shards)
	}
	nodes := int(r.uvarint())
	if r.err == nil && nodes > len(cursor) {
		return errors.New("DPOR cursor stack length exceeds blob size")
	}
	stack := make([]dporNode, 0, nodes)
	for i := 0; i < nodes && r.err == nil; i++ {
		n := dporNode{
			kind:    psharp.DecisionKind(r.byte()),
			options: int(r.uvarint()),
			idx:     int(r.uvarint()),
		}
		if n.kind == psharp.DecisionSchedule {
			n.chosen = int(r.uvarint())
			machines := int(r.uvarint())
			if r.err == nil && machines > len(cursor) {
				return errors.New("DPOR cursor machine count exceeds blob size")
			}
			for j := 0; j < machines && r.err == nil; j++ {
				n.machines = append(n.machines, r.id())
			}
			n.backtrack = make([]bool, len(n.machines))
			n.explored = make([]bool, len(n.machines))
			for j := range n.machines {
				b := r.byte()
				n.backtrack[j] = b&1 != 0
				n.explored[j] = b&2 != 0
			}
			if r.byte() != 0 {
				n.op = r.op()
				n.opKnown = true
			}
			done := int(r.uvarint())
			if r.err == nil && done > len(cursor) {
				return errors.New("DPOR cursor done count exceeds blob size")
			}
			for j := 0; j < done && r.err == nil; j++ {
				n.done = append(n.done, r.op())
			}
		}
		stack = append(stack, n)
	}
	if r.err != nil {
		return r.err
	}
	s.stack = stack
	s.pos = 0
	s.curSched = -1
	s.curSleep = nil
	s.jumped = flags&1 != 0
	s.exhausted = flags&2 != 0
	return nil
}

func (r *cursorReader) id() psharp.MachineID {
	return psharp.MachineID{Type: r.string(), Seq: r.uvarint()}
}

func (r *cursorReader) op() dporOp {
	return dporOp{machine: r.id(), target: r.id(), created: r.id(), observed: r.byte() != 0}
}
