package sct_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// orderingBugSetup builds a program with an interleaving-dependent assertion
// failure: the counter requires its two senders to arrive in creation order.
func orderingBugSetup() func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Counter", func() psharp.Machine {
			var first psharp.MachineID
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Counting").
					OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
						sender := ev.(*cfg).Target
						if first.IsNil() {
							first = sender
							return
						}
						ctx.Assert(first.Seq < sender.Seq, "senders arrived out of creation order")
					})
			})
		})
		r.MustRegister("Sender", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Send(ev.(*cfg).Target, &cfg{Target: ctx.ID()})
						ctx.Halt()
					})
			})
		})
		counter := r.MustCreate("Counter", nil)
		for i := 0; i < 2; i++ {
			s := r.MustCreate("Sender", nil)
			if err := r.SendEvent(s, &cfg{Target: counter}); err != nil {
				panic(err)
			}
		}
	}
}

// runawaySetup builds a program that never quiesces: a machine endlessly
// re-sends itself an event, so with MaxSteps=0 a single iteration runs
// forever unless the engine's hard deadline interrupts it.
func runawaySetup() func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Spinner", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Spin").
					OnEventDo(&tick{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Send(ctx.ID(), &tick{})
					})
			})
		})
		id := r.MustCreate("Spinner", nil)
		if err := r.SendEvent(id, &tick{}); err != nil {
			panic(err)
		}
	}
}

func reportCounts(r sct.Report) [7]int64 {
	return [7]int64{
		int64(r.Iterations), int64(r.DistinctSchedules), int64(r.BuggyIterations),
		int64(r.MaxSchedulingPoints), r.TotalSchedulingPoints,
		int64(r.MaxMachines), int64(r.FirstBugIteration),
	}
}

// TestParallelMatchesSequentialRandom checks the sharding invariant: a
// homogeneous sharded run explores exactly the same schedule population as
// the sequential run with the same seed and budget, so every merged count
// matches the sequential report.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	const iterations = 400
	seq := sct.Run(orderingBugSetup(), sct.Options{
		Strategy:   sct.NewRandom(42),
		Iterations: iterations,
		MaxSteps:   100,
	})
	if !seq.BugFound() {
		t.Fatal("sequential run found no bug; the setup is supposed to be bug-rich")
	}
	for _, workers := range []int{2, 4, 7} {
		par := sct.RunParallel(orderingBugSetup(), sct.ParallelOptions{
			Options: sct.Options{
				Strategy:   sct.NewRandom(42),
				Iterations: iterations,
				MaxSteps:   100,
			},
			Workers: workers,
		})
		if got, want := reportCounts(par.Report), reportCounts(seq); got != want {
			t.Errorf("workers=%d: merged counts %v, want sequential %v", workers, got, want)
		}
		if len(par.Workers) != workers {
			t.Errorf("workers=%d: %d sub-reports", workers, len(par.Workers))
		}
		sum := 0
		for _, w := range par.Workers {
			sum += w.Report.Iterations
		}
		if sum != par.Iterations {
			t.Errorf("workers=%d: sub-report iterations sum %d != merged %d", workers, sum, par.Iterations)
		}
	}
}

// TestParallelDeterminism checks the reproducibility contract: same seed +
// same worker count => identical merged counts, for both a homogeneous
// strategy and a heterogeneous portfolio.
func TestParallelDeterminism(t *testing.T) {
	run := func() (sct.ParallelReport, sct.ParallelReport) {
		homog := sct.RunParallel(orderingBugSetup(), sct.ParallelOptions{
			Options: sct.Options{Strategy: sct.NewPCT(7, 3, 50), Iterations: 200, MaxSteps: 100},
			Workers: 4,
		})
		pf, err := sct.ParsePortfolio("default", 7, 100)
		if err != nil {
			t.Fatal(err)
		}
		mixed := sct.RunParallel(orderingBugSetup(), sct.ParallelOptions{
			Options:   sct.Options{Iterations: 200, MaxSteps: 100},
			Workers:   4,
			Portfolio: pf,
		})
		return homog, mixed
	}
	h1, m1 := run()
	g1, x1 := run()
	if a, b := reportCounts(h1.Report), reportCounts(g1.Report); a != b {
		t.Errorf("homogeneous parallel run not deterministic:\n%v\n%v", a, b)
	}
	if a, b := reportCounts(m1.Report), reportCounts(x1.Report); a != b {
		t.Errorf("portfolio parallel run not deterministic:\n%v\n%v", a, b)
	}
	wantNames := []string{"random", "pct", "delay", "dfs"}
	for i, w := range m1.Workers {
		if w.Strategy != wantNames[i%len(wantNames)] {
			t.Errorf("worker %d runs %q, want %q", i, w.Strategy, wantNames[i%len(wantNames)])
		}
	}
}

// TestParallelDFSShardsCoverTree checks that sharded DFS clones jointly
// cover exactly the sequential DFS's schedule tree: the merged distinct
// count equals the sequential iteration count, every worker exhausts, and
// duplicated work is bounded by the n-1 probe schedules.
func TestParallelDFSShardsCoverTree(t *testing.T) {
	seq := sct.Run(fanInSetup(3), sct.Options{
		Strategy:   sct.NewDFS(),
		Iterations: 1_000_000,
		MaxSteps:   1000,
	})
	if !seq.Exhausted {
		t.Fatalf("sequential DFS did not exhaust: %s", seq.String())
	}
	for _, workers := range []int{2, 3, 5} {
		par := sct.RunParallel(fanInSetup(3), sct.ParallelOptions{
			Options: sct.Options{
				Strategy:   sct.NewDFS(),
				Iterations: 1_000_000,
				MaxSteps:   1000,
			},
			Workers: workers,
		})
		if par.DistinctSchedules != seq.Iterations {
			t.Errorf("workers=%d: %d distinct schedules, want the full tree of %d",
				workers, par.DistinctSchedules, seq.Iterations)
		}
		if !par.Exhausted {
			t.Errorf("workers=%d: merged report not exhausted", workers)
		}
		if par.Iterations > seq.Iterations+workers-1 {
			t.Errorf("workers=%d: %d iterations exceeds tree size %d plus %d probes",
				workers, par.Iterations, seq.Iterations, workers-1)
		}
	}
}

// TestParallelFirstBugReplays checks the no-false-positives contract under
// parallelism: whichever worker finds the first bug, its trace replays
// deterministically through sct.ReplayTrace and reproduces the same bug.
func TestParallelFirstBugReplays(t *testing.T) {
	par := sct.RunParallel(orderingBugSetup(), sct.ParallelOptions{
		Options: sct.Options{
			Strategy:       sct.NewRandom(5),
			Iterations:     100_000,
			MaxSteps:       100,
			StopOnFirstBug: true,
		},
		Workers: 4,
	})
	if !par.BugFound() {
		t.Fatal("no bug found")
	}
	if par.Iterations >= 100_000 {
		t.Fatalf("StopOnFirstBug did not halt the workers: %d iterations", par.Iterations)
	}
	res := sct.ReplayTrace(orderingBugSetup(), par.FirstBugTrace, psharp.TestConfig{MaxSteps: 100})
	if res.Bug == nil {
		t.Fatal("replay of the parallel first-bug trace found no bug")
	}
	if res.Bug.Kind != par.FirstBug.Kind || res.Bug.Message != par.FirstBug.Message {
		t.Fatalf("replay reproduced %v, want %v", res.Bug, par.FirstBug)
	}
}

// TestTimeoutIsAHardDeadline checks that the Timeout budget interrupts even
// a single never-terminating iteration, sequentially and in parallel.
func TestTimeoutIsAHardDeadline(t *testing.T) {
	const timeout = 150 * time.Millisecond
	start := time.Now()
	rep := sct.Run(runawaySetup(), sct.Options{
		Strategy:   sct.NewRandom(1),
		Iterations: 10,
		Timeout:    timeout,
	})
	if elapsed := time.Since(start); elapsed > 20*timeout {
		t.Fatalf("sequential Run overran the hard deadline: %v", elapsed)
	}
	if rep.Iterations != 0 {
		t.Errorf("the runaway iteration should not be counted, got %d", rep.Iterations)
	}

	start = time.Now()
	par := sct.RunParallel(runawaySetup(), sct.ParallelOptions{
		Options: sct.Options{
			Strategy:   sct.NewRandom(1),
			Iterations: 10,
			Timeout:    timeout,
		},
		Workers: 4,
	})
	if elapsed := time.Since(start); elapsed > 20*timeout {
		t.Fatalf("RunParallel overran the hard deadline: %v", elapsed)
	}
	if par.Iterations != 0 {
		t.Errorf("no runaway iteration should complete, got %d", par.Iterations)
	}
}

// TestParallelProgressIsCoherent checks that concurrent workers write whole
// progress lines tagged with their worker id.
func TestParallelProgressIsCoherent(t *testing.T) {
	var buf bytes.Buffer
	sct.RunParallel(fanInSetup(3), sct.ParallelOptions{
		Options: sct.Options{
			Strategy:      sct.NewRandom(3),
			Iterations:    200,
			MaxSteps:      1000,
			Progress:      sct.ProgressText(&buf),
			ProgressEvery: 10,
		},
		Workers: 4,
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no progress output")
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "sct: [w") {
			t.Fatalf("progress line without worker id: %q", line)
		}
	}
}

// TestParsePortfolio covers the CLI-facing portfolio spec parser.
func TestParsePortfolio(t *testing.T) {
	p, err := sct.ParsePortfolio("default", 1, 100)
	if err != nil || p.Size() != 4 {
		t.Fatalf("default portfolio: %v (size %d)", err, p.Size())
	}
	p, err = sct.ParsePortfolio("random, random ,dfs", 1, 0)
	if err != nil || p.Size() != 3 {
		t.Fatalf("explicit portfolio: %v", err)
	}
	if _, err := sct.ParsePortfolio("random,,dfs", 1, 100); err == nil {
		t.Error("empty member not rejected")
	}
	if _, err := sct.ParsePortfolio("quantum", 1, 100); err == nil {
		t.Error("unknown member not rejected")
	}
}

// TestDynamicShardingExecutesFullBudget checks the work-stealing accounting:
// a dynamic run with no early stop executes exactly the global budget, the
// per-worker sub-reports record the actual (uneven) iteration counts, and
// the bug-rich program still exposes its bug.
func TestDynamicShardingExecutesFullBudget(t *testing.T) {
	const iterations = 400
	for _, workers := range []int{2, 4, 7} {
		par := sct.RunParallel(orderingBugSetup(), sct.ParallelOptions{
			Options: sct.Options{
				Strategy:   sct.NewRandom(42),
				Iterations: iterations,
				MaxSteps:   100,
			},
			Workers: workers,
			Dynamic: true,
		})
		if par.Iterations != iterations {
			t.Errorf("workers=%d: dynamic run executed %d iterations, want the full budget %d",
				workers, par.Iterations, iterations)
		}
		if !par.BugFound() {
			t.Errorf("workers=%d: dynamic run found no bug in a bug-rich program", workers)
		}
		sum := 0
		for _, w := range par.Workers {
			sum += w.Report.Iterations
		}
		if sum != par.Iterations {
			t.Errorf("workers=%d: sub-report iterations sum %d != merged %d", workers, sum, par.Iterations)
		}
		if par.FirstBugIteration < 0 || par.FirstBugIteration >= iterations {
			t.Errorf("workers=%d: FirstBugIteration %d outside ticket range [0,%d)",
				workers, par.FirstBugIteration, iterations)
		}
	}
}

// TestDynamicFirstBugReplays checks the determinism trade-off boundary:
// dynamic sharding gives up population-level reproducibility, but any bug it
// finds still carries a trace that replays deterministically and reproduces
// the same failure — including with StopOnFirstBug cancellation racing the
// workers.
func TestDynamicFirstBugReplays(t *testing.T) {
	par := sct.RunParallel(orderingBugSetup(), sct.ParallelOptions{
		Options: sct.Options{
			Strategy:       sct.NewRandom(5),
			Iterations:     100_000,
			MaxSteps:       100,
			StopOnFirstBug: true,
		},
		Workers: 4,
		Dynamic: true,
	})
	if !par.BugFound() {
		t.Fatal("no bug found")
	}
	if par.Iterations >= 100_000 {
		t.Fatalf("StopOnFirstBug did not halt the dynamic workers: %d iterations", par.Iterations)
	}
	res := sct.ReplayTrace(orderingBugSetup(), par.FirstBugTrace, psharp.TestConfig{MaxSteps: 100})
	if res.Bug == nil {
		t.Fatal("replay of the dynamically-found bug trace found no bug")
	}
	if res.Bug.Kind != par.FirstBug.Kind || res.Bug.Message != par.FirstBug.Message {
		t.Fatalf("replay reproduced %v, want %v", res.Bug, par.FirstBug)
	}
}

// TestDynamicExhaustedMemberDoesNotBurnBudget pins the ticket protocol: a
// dynamic worker whose strategy exhausts (DFS on a tiny tree) must stop
// without claiming budget, leaving its remaining iterations to the other
// workers, so the run still executes the full global budget.
func TestDynamicExhaustedMemberDoesNotBurnBudget(t *testing.T) {
	const iterations = 300
	pf, err := sct.ParsePortfolio("dfs,random", 7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// fanInSetup(2) has a 72-schedule DFS tree, so the DFS worker exhausts
	// well within the 300-ticket budget and random must absorb the rest.
	par := sct.RunParallel(fanInSetup(2), sct.ParallelOptions{
		Options:   sct.Options{Iterations: iterations, MaxSteps: 1000},
		Workers:   2,
		Portfolio: pf,
		Dynamic:   true,
	})
	var dfsRep, randRep *sct.WorkerReport
	for i := range par.Workers {
		switch par.Workers[i].Strategy {
		case "dfs":
			dfsRep = &par.Workers[i]
		case "random":
			randRep = &par.Workers[i]
		}
	}
	if dfsRep == nil || randRep == nil {
		t.Fatalf("portfolio workers missing: %+v", par.Workers)
	}
	if !dfsRep.Report.Exhausted {
		t.Fatalf("DFS worker did not exhaust its tree (%d iterations); shrink the program", dfsRep.Report.Iterations)
	}
	if par.Iterations != iterations {
		t.Errorf("dynamic run executed %d iterations, want the full budget %d (exhausted worker must not burn tickets)",
			par.Iterations, iterations)
	}
}

// TestDynamicFindsSameBugAsStatic checks that on the existing parallel test
// program both sharding modes expose the same (kind, message) bug: dynamic
// mode changes who explores what, not what is explorable.
func TestDynamicFindsSameBugAsStatic(t *testing.T) {
	run := func(dynamic bool) sct.ParallelReport {
		return sct.RunParallel(orderingBugSetup(), sct.ParallelOptions{
			Options: sct.Options{
				Strategy:   sct.NewRandom(42),
				Iterations: 400,
				MaxSteps:   100,
			},
			Workers: 4,
			Dynamic: dynamic,
		})
	}
	static, dynamic := run(false), run(true)
	if !static.BugFound() || !dynamic.BugFound() {
		t.Fatalf("bug found: static=%v dynamic=%v", static.BugFound(), dynamic.BugFound())
	}
	if static.FirstBug.Kind != dynamic.FirstBug.Kind || static.FirstBug.Message != dynamic.FirstBug.Message {
		t.Errorf("dynamic found %v, static found %v", dynamic.FirstBug, static.FirstBug)
	}
}

// TestRunParallelSingleWorkerMatchesRun pins the refactoring invariant that
// sequential Run is the one-worker case of the parallel engine.
func TestRunParallelSingleWorkerMatchesRun(t *testing.T) {
	opts := sct.Options{Strategy: sct.NewRandom(11), Iterations: 60, MaxSteps: 1000}
	seq := sct.Run(fanInSetup(3), opts)
	par := sct.RunParallel(fanInSetup(3), sct.ParallelOptions{
		Options: sct.Options{Strategy: sct.NewRandom(11), Iterations: 60, MaxSteps: 1000},
		Workers: 1,
	})
	if a, b := reportCounts(par.Report), reportCounts(seq); a != b {
		t.Fatalf("one-worker parallel run diverged from sequential:\n%v\n%v", a, b)
	}
}
