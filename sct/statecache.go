package sct

import (
	"sync"
	"sync/atomic"
)

// stateCache is the hashed global-state cache behind Options.StateCache: a
// sharded map from global-state hash to the decision prefix that owns it.
// The controller consults it at every scheduling point; a revisit through
// a different prefix prunes the iteration (IterationResult.Pruned), so the
// engine stops spending schedule budget re-exploring a subtree another
// prefix already covers.
//
// Ownership semantics make this sound for depth-first strategies (DFS,
// DPOR) without recording full states:
//
//   - First visit: the (prefix, depth) pair that reached the state becomes
//     its owner; never pruned.
//   - Revisit through the owning prefix (the strategy replaying its way
//     back down to its frontier): never pruned — replay must reach the
//     frontier.
//   - Revisit through a different prefix at depth >= the owner's: pruned.
//     Depth-first enumeration finishes the owner's subtree before any
//     lexicographically later prefix reaches the state, and a deeper
//     revisit can only reach a depth-bounded subset of what the owner
//     explored, so nothing is lost.
//   - Revisit through a different prefix at a *shallower* depth: the new
//     prefix steals ownership and the iteration continues — under a depth
//     bound (Options.MaxSteps) the shallower occurrence reaches strictly
//     more of the state's subtree than the owner could.
//
// Under non-systematic strategies (Random, PCT, ...) no such completion
// order exists and pruning would silently drop coverage; the engine
// refuses the combination.
type stateCache struct {
	shards   [stateCacheShards]stateCacheShard
	distinct atomic.Int64
	pruned   atomic.Int64
}

const stateCacheShards = 64

type stateCacheShard struct {
	mu   sync.Mutex
	seen map[uint64]stateOwner
}

type stateOwner struct {
	prefix uint64
	depth  int32
}

func newStateCache() *stateCache {
	c := &stateCache{}
	for i := range c.shards {
		c.shards[i].seen = make(map[uint64]stateOwner)
	}
	return c
}

// Visit implements psharp.StateCache.
func (c *stateCache) Visit(state, prefix uint64, depth int) bool {
	s := &c.shards[state&(stateCacheShards-1)]
	s.mu.Lock()
	o, ok := s.seen[state]
	if !ok {
		s.seen[state] = stateOwner{prefix: prefix, depth: int32(depth)}
		s.mu.Unlock()
		c.distinct.Add(1)
		return false
	}
	if o.prefix == prefix {
		s.mu.Unlock()
		return false
	}
	if int(o.depth) <= depth {
		s.mu.Unlock()
		c.pruned.Add(1)
		return true
	}
	s.seen[state] = stateOwner{prefix: prefix, depth: int32(depth)}
	s.mu.Unlock()
	return false
}

// size returns the number of distinct global states recorded.
func (c *stateCache) size() int {
	return int(c.distinct.Load())
}
