package sct

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/psharp-go/psharp"
)

// DFS is the paper's systematic depth-first scheduler: the schedule space is
// a tree whose nodes are schedule prefixes and whose branches are the
// enabled machines (and, unlike the paper's P# DFS but as it prescribes for
// systematic exploration, the values of controlled nondeterministic
// choices). DFS explores a different schedule on every iteration and, given
// enough iterations and an acyclic state space, explores all of them; when
// the tree is exhausted PrepareIteration returns false.
//
// A worker clone (CloneForWorker) shards the tree by its first decision:
// worker k of n owns the root branches congruent to k modulo n, so the
// clones partition the schedule tree and their union covers it exactly.
// Every clone's first iteration is a probe down the leftmost path (the root
// branching factor is unknown before the first execution); after the probe,
// clones other than worker 0 jump their root into their own residue class,
// so at most n-1 duplicate schedules are explored per parallel run.
type DFS struct {
	stack     []dfsNode
	pos       int
	exhausted bool

	shard  int
	shards int
	jumped bool // the post-probe root jump has happened
}

type dfsNode struct {
	kind     psharp.DecisionKind
	options  int
	idx      int
	machines []psharp.MachineID // schedule nodes only
}

// NewDFS returns a fresh depth-first strategy.
func NewDFS() *DFS { return &DFS{shards: 1} }

// CloneForWorker returns a DFS owning the root branches congruent to worker
// modulo workers; the clones jointly cover the whole schedule tree.
func (s *DFS) CloneForWorker(worker, workers int) Strategy {
	return &DFS{shard: worker, shards: workers}
}

// Exhausted reports whether the entire (depth-bounded) schedule tree has
// been explored.
func (s *DFS) Exhausted() bool { return s.exhausted }

// PrepareIteration advances to the next unexplored branch; it returns false
// once the whole tree has been visited.
func (s *DFS) PrepareIteration(iter int) bool {
	if s.exhausted {
		return false
	}
	if iter == 0 {
		s.pos = 0
		return true
	}
	if s.shards > 1 && !s.jumped {
		s.jumped = true
		if s.shard != 0 {
			// Discard the probe's subtree (it belongs to worker 0) and jump
			// the root decision into this shard's residue class.
			if len(s.stack) == 0 || s.shard >= s.stack[0].options {
				s.exhausted = true
				return false
			}
			root := s.stack[0]
			root.idx = s.shard
			s.stack = append(s.stack[:0], root)
			s.pos = 0
			return true
		}
	}
	// Backtrack: drop exhausted trailing nodes, then advance the deepest
	// node that still has unexplored branches. The root node advances by
	// the shard stride so a sharded clone stays in its residue class.
	for len(s.stack) > 0 {
		n := &s.stack[len(s.stack)-1]
		if len(s.stack) == 1 {
			n.idx += s.shards
		} else {
			n.idx++
		}
		if n.idx < n.options {
			break
		}
		s.stack = s.stack[:len(s.stack)-1]
	}
	if len(s.stack) == 0 {
		s.exhausted = true
		return false
	}
	s.pos = 0
	return true
}

// NextMachine replays the current prefix and extends the tree with a new
// node at the frontier.
func (s *DFS) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	if s.pos < len(s.stack) {
		n := &s.stack[s.pos]
		s.pos++
		if n.kind != psharp.DecisionSchedule {
			panic(fmt.Sprintf("sct: DFS replay divergence: expected %v node, got schedule point", n.kind))
		}
		if n.idx < len(n.machines) && contains(enabled, n.machines[n.idx]) {
			return n.machines[n.idx]
		}
		// The enabled set changed across replays: the program under test is
		// nondeterministic beyond its controlled choices.
		panic("sct: DFS replay divergence: enabled set changed; program has uncontrolled nondeterminism")
	}
	node := dfsNode{
		kind:     psharp.DecisionSchedule,
		options:  len(enabled),
		machines: append([]psharp.MachineID(nil), enabled...),
	}
	s.stack = append(s.stack, node)
	s.pos++
	return enabled[0]
}

// NextBool explores both boolean values systematically.
func (s *DFS) NextBool() bool {
	return s.choice(psharp.DecisionBool, 2) == 1
}

// NextInt explores all n values systematically.
func (s *DFS) NextInt(n int) int {
	return s.choice(psharp.DecisionInt, n)
}

func (s *DFS) choice(kind psharp.DecisionKind, n int) int {
	if s.pos < len(s.stack) {
		node := &s.stack[s.pos]
		s.pos++
		if node.kind != kind || node.options != n {
			panic("sct: DFS replay divergence on nondeterministic choice")
		}
		return node.idx
	}
	s.stack = append(s.stack, dfsNode{kind: kind, options: n})
	s.pos++
	return 0
}

// dfsCursorVersion versions the DFS cursor blob layout inside journal
// cursor records.
const dfsCursorVersion = 1

// SaveCursor serializes the DFS frontier — the backtracking stack after
// the most recently completed iteration, plus the shard layout and the
// jumped/exhausted flags — implementing CursorStrategy. Unlike the
// reseeded strategies, DFS's position cannot be recomputed from an
// iteration index, so resumable campaigns journal the stack itself.
func (s *DFS) SaveCursor() []byte {
	buf := []byte{dfsCursorVersion}
	var flags byte
	if s.jumped {
		flags |= 1
	}
	if s.exhausted {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(s.shard))
	buf = binary.AppendUvarint(buf, uint64(s.shards))
	buf = binary.AppendUvarint(buf, uint64(len(s.stack)))
	for i := range s.stack {
		n := &s.stack[i]
		buf = append(buf, byte(n.kind))
		buf = binary.AppendUvarint(buf, uint64(n.options))
		buf = binary.AppendUvarint(buf, uint64(n.idx))
		buf = binary.AppendUvarint(buf, uint64(len(n.machines)))
		for _, m := range n.machines {
			buf = binary.AppendUvarint(buf, uint64(len(m.Type)))
			buf = append(buf, m.Type...)
			buf = binary.AppendUvarint(buf, m.Seq)
		}
	}
	return buf
}

// LoadCursor restores a frontier saved by SaveCursor. The receiver must be
// configured for the same worker shard the cursor was saved under;
// PrepareIteration then backtracks from the restored stack exactly as the
// uninterrupted run would have.
func (s *DFS) LoadCursor(cursor []byte) error {
	r := cursorReader{buf: cursor}
	if v := r.byte(); v != dfsCursorVersion {
		return fmt.Errorf("unknown DFS cursor version %d", v)
	}
	flags := r.byte()
	shard, shards := int(r.uvarint()), int(r.uvarint())
	if r.err == nil && (shard != s.shard || shards != s.shards) {
		return fmt.Errorf("DFS cursor was saved for shard %d/%d, this worker is shard %d/%d", shard, shards, s.shard, s.shards)
	}
	nodes := int(r.uvarint())
	if r.err == nil && nodes > len(cursor) {
		return errors.New("DFS cursor stack length exceeds blob size")
	}
	stack := make([]dfsNode, 0, nodes)
	for i := 0; i < nodes && r.err == nil; i++ {
		n := dfsNode{
			kind:    psharp.DecisionKind(r.byte()),
			options: int(r.uvarint()),
			idx:     int(r.uvarint()),
		}
		machines := int(r.uvarint())
		if r.err == nil && machines > len(cursor) {
			return errors.New("DFS cursor machine count exceeds blob size")
		}
		for j := 0; j < machines && r.err == nil; j++ {
			n.machines = append(n.machines, psharp.MachineID{Type: r.string(), Seq: r.uvarint()})
		}
		stack = append(stack, n)
	}
	if r.err != nil {
		return r.err
	}
	s.stack = stack
	s.pos = 0
	s.jumped = flags&1 != 0
	s.exhausted = flags&2 != 0
	return nil
}

// cursorReader is a tiny error-latching decoder for cursor blobs.
type cursorReader struct {
	buf []byte
	err error
}

func (r *cursorReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.err = errors.New("truncated cursor")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *cursorReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = errors.New("truncated cursor")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *cursorReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)) {
		r.err = errors.New("truncated cursor")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func contains(ids []psharp.MachineID, id psharp.MachineID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
