package sct

import (
	"fmt"

	"github.com/psharp-go/psharp"
)

// DFS is the paper's systematic depth-first scheduler: the schedule space is
// a tree whose nodes are schedule prefixes and whose branches are the
// enabled machines (and, unlike the paper's P# DFS but as it prescribes for
// systematic exploration, the values of controlled nondeterministic
// choices). DFS explores a different schedule on every iteration and, given
// enough iterations and an acyclic state space, explores all of them; when
// the tree is exhausted PrepareIteration returns false.
//
// A worker clone (CloneForWorker) shards the tree by its first decision:
// worker k of n owns the root branches congruent to k modulo n, so the
// clones partition the schedule tree and their union covers it exactly.
// Every clone's first iteration is a probe down the leftmost path (the root
// branching factor is unknown before the first execution); after the probe,
// clones other than worker 0 jump their root into their own residue class,
// so at most n-1 duplicate schedules are explored per parallel run.
type DFS struct {
	stack     []dfsNode
	pos       int
	exhausted bool

	shard  int
	shards int
	jumped bool // the post-probe root jump has happened
}

type dfsNode struct {
	kind     psharp.DecisionKind
	options  int
	idx      int
	machines []psharp.MachineID // schedule nodes only
}

// NewDFS returns a fresh depth-first strategy.
func NewDFS() *DFS { return &DFS{shards: 1} }

// CloneForWorker returns a DFS owning the root branches congruent to worker
// modulo workers; the clones jointly cover the whole schedule tree.
func (s *DFS) CloneForWorker(worker, workers int) Strategy {
	return &DFS{shard: worker, shards: workers}
}

// Exhausted reports whether the entire (depth-bounded) schedule tree has
// been explored.
func (s *DFS) Exhausted() bool { return s.exhausted }

// PrepareIteration advances to the next unexplored branch; it returns false
// once the whole tree has been visited.
func (s *DFS) PrepareIteration(iter int) bool {
	if s.exhausted {
		return false
	}
	if iter == 0 {
		s.pos = 0
		return true
	}
	if s.shards > 1 && !s.jumped {
		s.jumped = true
		if s.shard != 0 {
			// Discard the probe's subtree (it belongs to worker 0) and jump
			// the root decision into this shard's residue class.
			if len(s.stack) == 0 || s.shard >= s.stack[0].options {
				s.exhausted = true
				return false
			}
			root := s.stack[0]
			root.idx = s.shard
			s.stack = append(s.stack[:0], root)
			s.pos = 0
			return true
		}
	}
	// Backtrack: drop exhausted trailing nodes, then advance the deepest
	// node that still has unexplored branches. The root node advances by
	// the shard stride so a sharded clone stays in its residue class.
	for len(s.stack) > 0 {
		n := &s.stack[len(s.stack)-1]
		if len(s.stack) == 1 {
			n.idx += s.shards
		} else {
			n.idx++
		}
		if n.idx < n.options {
			break
		}
		s.stack = s.stack[:len(s.stack)-1]
	}
	if len(s.stack) == 0 {
		s.exhausted = true
		return false
	}
	s.pos = 0
	return true
}

// NextMachine replays the current prefix and extends the tree with a new
// node at the frontier.
func (s *DFS) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	if s.pos < len(s.stack) {
		n := &s.stack[s.pos]
		s.pos++
		if n.kind != psharp.DecisionSchedule {
			panic(fmt.Sprintf("sct: DFS replay divergence: expected %v node, got schedule point", n.kind))
		}
		if n.idx < len(n.machines) && contains(enabled, n.machines[n.idx]) {
			return n.machines[n.idx]
		}
		// The enabled set changed across replays: the program under test is
		// nondeterministic beyond its controlled choices.
		panic("sct: DFS replay divergence: enabled set changed; program has uncontrolled nondeterminism")
	}
	node := dfsNode{
		kind:     psharp.DecisionSchedule,
		options:  len(enabled),
		machines: append([]psharp.MachineID(nil), enabled...),
	}
	s.stack = append(s.stack, node)
	s.pos++
	return enabled[0]
}

// NextBool explores both boolean values systematically.
func (s *DFS) NextBool() bool {
	return s.choice(psharp.DecisionBool, 2) == 1
}

// NextInt explores all n values systematically.
func (s *DFS) NextInt(n int) int {
	return s.choice(psharp.DecisionInt, n)
}

func (s *DFS) choice(kind psharp.DecisionKind, n int) int {
	if s.pos < len(s.stack) {
		node := &s.stack[s.pos]
		s.pos++
		if node.kind != kind || node.options != n {
			panic("sct: DFS replay divergence on nondeterministic choice")
		}
		return node.idx
	}
	s.stack = append(s.stack, dfsNode{kind: kind, options: n})
	s.pos++
	return 0
}

func contains(ids []psharp.MachineID, id psharp.MachineID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
