package sct_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/journal"
	"github.com/psharp-go/psharp/sct"
)

// independentSetup builds pairs of (sender, counter) machines with disjoint
// mailboxes: every step of one pair is independent of every step of the
// others, so a partial-order reducer should collapse the n!-ish interleaving
// space to a small fraction of what DFS enumerates.
func independentSetup(pairs int) func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Counter", func() psharp.Machine {
			n := 0
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Counting").
					OnEventDo(&tick{}, func(ctx *psharp.Context, ev psharp.Event) { n++ })
			})
		})
		r.MustRegister("Sender", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Send(ev.(*cfg).Target, &tick{})
						ctx.Halt()
					})
			})
		})
		for i := 0; i < pairs; i++ {
			c := r.MustCreate("Counter", nil)
			s := r.MustCreate("Sender", nil)
			if err := r.SendEvent(s, &cfg{Target: c}); err != nil {
				panic(err)
			}
		}
	}
}

// orderBugSetup hides a bug behind one specific arrival order at a shared
// mailbox; sends to a common target are dependent, so DPOR must enumerate
// both orders and find it.
func orderBugSetup(r *psharp.Runtime) {
	r.MustRegister("Counter", func() psharp.Machine {
		var first psharp.MachineID
		return psharp.MachineFunc(func(sc *psharp.Schema) {
			sc.Start("Counting").
				OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
					sender := ev.(*cfg).Target
					if first.IsNil() {
						first = sender
						return
					}
					ctx.Assert(first.Seq < sender.Seq, "senders arrived out of creation order")
				})
		})
	})
	r.MustRegister("Sender", func() psharp.Machine {
		return psharp.MachineFunc(func(sc *psharp.Schema) {
			sc.Start("S").
				OnEventDo(&cfg{}, func(ctx *psharp.Context, ev psharp.Event) {
					ctx.Send(ev.(*cfg).Target, &cfg{Target: ctx.ID()})
					ctx.Halt()
				})
		})
	})
	counter := r.MustCreate("Counter", nil)
	for i := 0; i < 2; i++ {
		s := r.MustCreate("Sender", nil)
		if err := r.SendEvent(s, &cfg{Target: counter}); err != nil {
			panic(err)
		}
	}
}

// TestDPORReducesIndependentInterleavings is the point of the strategy: on
// a program of mutually independent machine pairs (full DFS enumeration:
// 668,640 schedules), DPOR must exhaust the behaviors within a budget DFS
// barely dents.
func TestDPORReducesIndependentInterleavings(t *testing.T) {
	const budget = 2000
	dfs := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDFS(), Iterations: budget, MaxSteps: 1000,
	})
	dpor := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: budget, MaxSteps: 1000,
	})
	if dfs.Exhausted {
		t.Fatalf("baseline too small: DFS exhausted within %d schedules", budget)
	}
	if !dpor.Exhausted {
		t.Fatalf("DPOR did not exhaust within %d schedules: %s", budget, dpor.String())
	}
	if dpor.BugFound() {
		t.Fatalf("phantom bug: %v", dpor.FirstBug)
	}
	t.Logf("independent pairs: dpor exhausted at %d schedules; dfs not exhausted at %d",
		dpor.Iterations, dfs.Iterations)
}

// TestDPORExhaustsDependentProgram: when every send targets one mailbox,
// nothing commutes and DPOR degenerates gracefully — it still exhausts, finds
// no phantom bugs, and never explores more than DFS.
func TestDPORExhaustsDependentProgram(t *testing.T) {
	dfs := sct.Run(fanInSetup(3), sct.Options{
		Strategy: sct.NewDFS(), Iterations: 1_000_000, MaxSteps: 1000,
	})
	dpor := sct.Run(fanInSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
	})
	if !dpor.Exhausted {
		t.Fatalf("DPOR did not exhaust: %s", dpor.String())
	}
	if dpor.BugFound() {
		t.Fatalf("phantom bug: %v", dpor.FirstBug)
	}
	if dpor.Iterations > dfs.Iterations {
		t.Fatalf("DPOR explored %d schedules, more than DFS's %d", dpor.Iterations, dfs.Iterations)
	}
	t.Logf("fan-in: dfs=%d dpor=%d schedules", dfs.Iterations, dpor.Iterations)
}

// TestDPORFindsOrderingBug: a bug behind one arrival order at a shared
// mailbox involves dependent sends, which DPOR must not reduce away.
func TestDPORFindsOrderingBug(t *testing.T) {
	rep := sct.Run(orderBugSetup, sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 10_000, MaxSteps: 100,
		StopOnFirstBug: true,
	})
	if !rep.BugFound() {
		t.Fatalf("DPOR reduced away the ordering bug: %s", rep.String())
	}
}

// TestDPORExploresNondetChoices: controlled bool choices are enumerated
// systematically, exactly like DFS.
func TestDPORExploresNondetChoices(t *testing.T) {
	setup := func(r *psharp.Runtime) {
		r.MustRegister("Chooser", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").OnEntry(func(ctx *psharp.Context, ev psharp.Event) {
					a, b, c := ctx.RandomBool(), ctx.RandomBool(), ctx.RandomBool()
					ctx.Assert(!(a && b && c), "the 1-in-8 combination")
				})
			})
		})
		r.MustCreate("Chooser", nil)
	}
	rep := sct.Run(setup, sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 100, MaxSteps: 100,
		StopOnFirstBug: true,
	})
	if !rep.BugFound() {
		t.Fatal("DPOR must systematically reach the guarded combination")
	}
	if rep.FirstBugIteration >= 8 {
		t.Fatalf("found at iteration %d; the choice tree has only 8 leaves", rep.FirstBugIteration)
	}
}

// TestDPORDeterminism: the same configuration enumerates the same schedule
// population, run after run.
func TestDPORDeterminism(t *testing.T) {
	run := func() [4]int64 {
		rep := sct.Run(independentSetup(3), sct.Options{
			Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
		})
		return [4]int64{
			int64(rep.Iterations), int64(rep.DistinctSchedules),
			int64(rep.MaxSchedulingPoints), rep.TotalSchedulingPoints,
		}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("DPOR runs diverged:\n%v\n%v", a, b)
	}
}

// TestDPORReplayByteIdentical: a bug trace found under DPOR must replay to a
// byte-identical decision trace (ISSUE acceptance: reduction never breaks
// deterministic reproduction).
func TestDPORReplayByteIdentical(t *testing.T) {
	rep := sct.Run(orderBugSetup, sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 10_000, MaxSteps: 100,
		StopOnFirstBug: true,
	})
	if !rep.BugFound() {
		t.Fatal("no bug to replay")
	}
	res := sct.ReplayTrace(orderBugSetup, rep.FirstBugTrace, psharp.TestConfig{MaxSteps: 100})
	if res.Bug == nil {
		t.Fatal("replay did not reproduce the bug")
	}
	var want, got bytes.Buffer
	if err := rep.FirstBugTrace.Encode(&want); err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("replayed trace is not byte-identical: %d vs %d bytes", want.Len(), got.Len())
	}
}

// TestDPORParallelShards: sharded DPOR workers jointly exhaust the space
// with no phantom or missed bugs; the root over-approximates to full
// branching, so the union covers at least the solo population.
func TestDPORParallelShards(t *testing.T) {
	solo := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
	})
	out := sct.RunParallel(independentSetup(3), sct.ParallelOptions{
		Options: sct.Options{
			Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
		},
		Workers: 2,
	})
	if !out.Report.Exhausted {
		t.Fatalf("sharded DPOR did not exhaust: %s", out.Report.String())
	}
	if out.Report.BugFound() {
		t.Fatalf("phantom bug: %v", out.Report.FirstBug)
	}
	if out.Report.DistinctSchedules < solo.DistinctSchedules {
		t.Fatalf("sharded run covered %d distinct schedules, solo covered %d",
			out.Report.DistinctSchedules, solo.DistinctSchedules)
	}
	bug := sct.RunParallel(orderBugSetup, sct.ParallelOptions{
		Options: sct.Options{
			Strategy: sct.NewDPOR(), Iterations: 10_000, MaxSteps: 100,
			StopOnFirstBug: true,
		},
		Workers: 2,
	})
	if !bug.Report.BugFound() {
		t.Fatal("sharded DPOR missed the ordering bug")
	}
}

// TestStateCachePrunes: pairing a depth-first strategy with the state cache
// must report pruned iterations and distinct states, stay exhaustive, and
// keep pruned work out of the throughput counters.
func TestStateCachePrunes(t *testing.T) {
	plain := sct.Run(fanInSetup(3), sct.Options{
		Strategy: sct.NewDFS(), Iterations: 1_000_000, MaxSteps: 1000,
	})
	cached := sct.Run(fanInSetup(3), sct.Options{
		Strategy: sct.NewDFS(), Iterations: 1_000_000, MaxSteps: 1000,
		StateCache: true,
	})
	if !cached.Exhausted {
		t.Fatalf("cached DFS did not exhaust: %s", cached.String())
	}
	if cached.BugFound() {
		t.Fatalf("phantom bug: %v", cached.FirstBug)
	}
	if cached.PrunedIterations == 0 {
		t.Fatalf("state cache pruned nothing on a convergent fan-in: %s", cached.String())
	}
	if cached.DistinctStates == 0 {
		t.Fatal("DistinctStates not reported")
	}
	if cached.Iterations+cached.PrunedIterations > plain.Iterations {
		t.Fatalf("cached run consumed %d+%d attempts, plain DFS needed %d",
			cached.Iterations, cached.PrunedIterations, plain.Iterations)
	}
	if cached.Iterations >= plain.Iterations {
		t.Fatalf("cache pruned %d iterations yet explored %d >= plain %d",
			cached.PrunedIterations, cached.Iterations, plain.Iterations)
	}
	t.Logf("fan-in cached: %d explored + %d pruned (plain %d), %d distinct states",
		cached.Iterations, cached.PrunedIterations, plain.Iterations, cached.DistinctStates)
}

// TestStateCacheKeepsBugs: pruning must never cut the path to a bug that the
// uncached enumeration finds — neither a scheduling bug nor one guarded by
// nondeterministic choices (choices feed the state hash).
func TestStateCacheKeepsBugs(t *testing.T) {
	for _, strategy := range []string{"dfs", "dpor"} {
		s := map[string]sct.Strategy{"dfs": sct.NewDFS(), "dpor": sct.NewDPOR()}[strategy]
		rep := sct.Run(orderBugSetup, sct.Options{
			Strategy: s, Iterations: 10_000, MaxSteps: 100,
			StopOnFirstBug: true, StateCache: true,
		})
		if !rep.BugFound() {
			t.Errorf("%s+cache pruned away the ordering bug: %s", strategy, rep.String())
		}
	}
	rep := sct.Run(chancySetup, sct.Options{
		Strategy: sct.NewDFS(), Iterations: 10_000, MaxSteps: 200,
		StopOnFirstBug: true, StateCache: true,
	})
	if !rep.BugFound() {
		t.Fatalf("dfs+cache pruned away the 1-in-8 choice bug: %s", rep.String())
	}
}

// TestDPORWithStateCache: the flagship pairing — DPOR plus the cache — must
// still exhaust, with even fewer explored schedules than DPOR alone (the
// cache truncates the sleep-blocked redundant executions DPOR tolerates).
func TestDPORWithStateCache(t *testing.T) {
	plain := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
	})
	rep := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
		StateCache: true,
	})
	if !rep.Exhausted {
		t.Fatalf("DPOR+cache did not exhaust: %s", rep.String())
	}
	if rep.BugFound() {
		t.Fatalf("phantom bug: %v", rep.FirstBug)
	}
	if rep.Iterations >= plain.Iterations {
		t.Fatalf("DPOR+cache explored %d schedules, plain DPOR %d", rep.Iterations, plain.Iterations)
	}
	t.Logf("independent pairs: dpor=%d dpor+cache=%d explored, %d pruned, %d distinct states",
		plain.Iterations, rep.Iterations, rep.PrunedIterations, rep.DistinctStates)
}

// TestDPORCursorResume: a DPOR enumeration split across a journal resume
// must visit exactly the schedules of an uninterrupted enumeration
// (satellite: the DPOR cursor survives kill/resume like the DFS cursor).
func TestDPORCursorResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dpor")
	meta := journal.Meta{Benchmark: "Independent3", Strategy: "dpor", Seed: 0,
		Workers: 1, ShardCount: 1, MaxSteps: 1000}

	solo := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
	})
	if !solo.Exhausted {
		t.Fatal("baseline DPOR did not exhaust")
	}
	if solo.Iterations < 3 {
		t.Fatalf("baseline too small to split: %d iterations", solo.Iterations)
	}

	c, err := journal.Create(dir, meta, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	firstBudget := solo.Iterations / 2
	first := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: firstBudget, MaxSteps: 1000,
		Journal: c, JournalFlushEvery: 1,
	})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if first.Exhausted || first.Iterations != firstBudget {
		t.Fatalf("first slice: %s", first.String())
	}

	r, err := journal.Resume(dir, meta, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rest := sct.Run(independentSetup(3), sct.Options{
		Strategy: sct.NewDPOR(), Iterations: 1_000_000, MaxSteps: 1000,
		Journal: r,
	})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !rest.Exhausted {
		t.Fatalf("resumed DPOR did not exhaust: %s", rest.String())
	}
	if rest.Iterations != solo.Iterations {
		t.Fatalf("resumed DPOR visited %d schedules total, solo visited %d", rest.Iterations, solo.Iterations)
	}
	if rest.DistinctSchedules != solo.DistinctSchedules {
		t.Fatalf("resumed DPOR found %d distinct, solo %d", rest.DistinctSchedules, solo.DistinctSchedules)
	}
}

func wantPanic(t *testing.T, why string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected a panic", why)
		}
	}()
	f()
}

// TestStateCacheAndDPORRefusals pins the documented incompatibilities as
// loud refusals rather than silent unsound runs.
func TestStateCacheAndDPORRefusals(t *testing.T) {
	wantPanic(t, "state cache under a non-systematic strategy", func() {
		sct.Run(fanInSetup(2), sct.Options{
			Strategy: sct.NewRandom(1), Iterations: 10, MaxSteps: 100,
			StateCache: true,
		})
	})
	wantPanic(t, "state cache with fault injection", func() {
		sct.Run(fanInSetup(2), sct.Options{
			Strategy: sct.NewDFS(), Iterations: 10, MaxSteps: 100,
			StateCache: true, Faults: sct.FaultOptions{Budget: 1},
		})
	})
	wantPanic(t, "DPOR with fault injection", func() {
		sct.Run(fanInSetup(2), sct.Options{
			Strategy: sct.NewDPOR(), Iterations: 10, MaxSteps: 100,
			Faults: sct.FaultOptions{Budget: 1},
		})
	})
	wantPanic(t, "parallel state cache under a portfolio with random members", func() {
		p, err := sct.ParsePortfolio("random,dfs", 1, 100)
		if err != nil {
			t.Fatal(err)
		}
		sct.RunParallel(fanInSetup(2), sct.ParallelOptions{
			Options:   sct.Options{Iterations: 10, MaxSteps: 100, StateCache: true},
			Workers:   2,
			Portfolio: p,
		})
	})
}
