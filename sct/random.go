package sct

import "github.com/psharp-go/psharp"

// Random is the paper's random scheduler: after each scheduling point it
// picks a machine uniformly at random from the enabled set, and resolves
// controlled nondeterministic choices uniformly. It keeps no memory of
// explored schedules, which is exactly what lets nondeterministic
// environment machines stay random (Section 6.2).
//
// Random is deterministic given its seed: iteration i always draws from the
// stream seeded with seed+i, so a bug found at iteration i can be re-found
// without a trace.
type Random struct {
	seed uint64
	rng  *splitMix64
}

// NewRandom returns a random strategy with the given base seed.
func NewRandom(seed uint64) *Random {
	return &Random{seed: seed, rng: newRNG(seed)}
}

// PrepareIteration reseeds the stream for iteration iter. Random never
// exhausts its search space.
func (s *Random) PrepareIteration(iter int) bool {
	s.rng = newRNG(s.seed + uint64(iter)*0x9e3779b97f4a7c15)
	return true
}

// NextMachine picks uniformly from the enabled machines.
func (s *Random) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	return enabled[s.rng.intn(len(enabled))]
}

// NextBool resolves a controlled boolean choice uniformly.
func (s *Random) NextBool() bool { return s.rng.boolean() }

// NextInt resolves a controlled integer choice uniformly.
func (s *Random) NextInt(n int) int { return s.rng.intn(n) }
