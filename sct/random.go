package sct

import "github.com/psharp-go/psharp"

// Random is the paper's random scheduler: after each scheduling point it
// picks a machine uniformly at random from the enabled set, and resolves
// controlled nondeterministic choices uniformly. It keeps no memory of
// explored schedules, which is exactly what lets nondeterministic
// environment machines stay random (Section 6.2).
//
// Random is deterministic given its seed: global iteration g always draws
// from the stream seeded with seed+g, so a bug found at iteration g can be
// re-found without a trace. A worker clone with offset w and stride n maps
// its local iterations onto global iterations {w, w+n, w+2n, ...}, so a
// sharded parallel run explores exactly the same schedule population as the
// sequential run with the same seed and budget.
type Random struct {
	seed   uint64
	offset int
	stride int
	rng    *splitMix64
}

// NewRandom returns a random strategy with the given base seed.
func NewRandom(seed uint64) *Random {
	return &Random{seed: seed, stride: 1, rng: newRNG(seed)}
}

// CloneForWorker shards the seed stream: the clone's local iteration i is
// global iteration worker + i*workers of the same base seed.
func (s *Random) CloneForWorker(worker, workers int) Strategy {
	return &Random{seed: s.seed, offset: worker, stride: workers, rng: newRNG(s.seed)}
}

// PrepareIteration reseeds the stream for local iteration iter. Random
// never exhausts its search space.
func (s *Random) PrepareIteration(iter int) bool {
	g := uint64(s.offset) + uint64(iter)*uint64(s.stride)
	s.rng.reseed(s.seed + g*0x9e3779b97f4a7c15)
	return true
}

// NextMachine picks uniformly from the enabled machines.
func (s *Random) NextMachine(_ psharp.MachineID, enabled []psharp.MachineID) psharp.MachineID {
	return enabled[s.rng.intn(len(enabled))]
}

// NextBool resolves a controlled boolean choice uniformly.
func (s *Random) NextBool() bool { return s.rng.boolean() }

// NextInt resolves a controlled integer choice uniformly.
func (s *Random) NextInt(n int) int { return s.rng.intn(n) }
