package sct_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/psharp-go/psharp/sct"
)

// TestProgressSequentialSnapshots checks that a single-worker run emits
// snapshots in order, every ProgressEvery iterations, with monotone global
// counters.
func TestProgressSequentialSnapshots(t *testing.T) {
	var got []sct.Progress
	rep := sct.Run(fanInSetup(3), sct.Options{
		Strategy:      sct.NewRandom(1),
		Iterations:    100,
		MaxSteps:      1000,
		Progress:      func(p sct.Progress) { got = append(got, p) },
		ProgressEvery: 10,
	})
	if rep.Iterations != 100 {
		t.Fatalf("iterations = %d, want 100", rep.Iterations)
	}
	if len(got) != 10 {
		t.Fatalf("snapshots = %d, want 10", len(got))
	}
	for i, p := range got {
		if p.Worker != 0 || p.Workers != 1 {
			t.Fatalf("snapshot %d: worker %d/%d, want 0/1", i, p.Worker, p.Workers)
		}
		if want := (i + 1) * 10; p.WorkerIterations != want || p.Iterations != int64(want) {
			t.Fatalf("snapshot %d: iterations %d/%d, want %d", i, p.WorkerIterations, p.Iterations, want)
		}
		if p.Budget != 100 {
			t.Fatalf("snapshot %d: budget = %d, want 100", i, p.Budget)
		}
		if i > 0 && p.Distinct < got[i-1].Distinct {
			t.Fatalf("distinct count regressed: %d -> %d", got[i-1].Distinct, p.Distinct)
		}
	}
}

// TestProgressDisabled checks the ProgressEvery <= 0 path: a configured
// ProgressFunc must never fire.
func TestProgressDisabled(t *testing.T) {
	calls := 0
	sct.Run(fanInSetup(2), sct.Options{
		Strategy:   sct.NewRandom(1),
		Iterations: 50,
		MaxSteps:   1000,
		Progress:   func(sct.Progress) { calls++ },
	})
	if calls != 0 {
		t.Fatalf("ProgressEvery=0 still emitted %d snapshots", calls)
	}
}

// TestProgressParallelEmission checks — under -race — that parallel workers
// emit through one shared ProgressFunc without data races (emission is
// mutex-serialized by the engine) and that global counters never exceed the
// budget.
func TestProgressParallelEmission(t *testing.T) {
	var got []sct.Progress // appended without locking: the engine serializes
	sct.RunParallel(fanInSetup(3), sct.ParallelOptions{
		Options: sct.Options{
			Strategy:      sct.NewRandom(7),
			Iterations:    200,
			MaxSteps:      1000,
			Progress:      func(p sct.Progress) { got = append(got, p) },
			ProgressEvery: 5,
		},
		Workers: 4,
		Dynamic: true,
	})
	if len(got) == 0 {
		t.Fatal("no snapshots emitted")
	}
	seen := map[int]bool{}
	for _, p := range got {
		if p.Workers != 4 {
			t.Fatalf("workers = %d, want 4", p.Workers)
		}
		if p.Iterations > int64(p.Budget) {
			t.Fatalf("global iterations %d exceed budget %d", p.Iterations, p.Budget)
		}
		if p.Strategy == "" {
			t.Fatalf("parallel snapshot without strategy label: %+v", p)
		}
		seen[p.Worker] = true
	}
	if len(seen) < 2 {
		t.Fatalf("only %d workers emitted; want several", len(seen))
	}
}

// TestProgressJSONLRoundTrip checks that the JSONL stream decodes back into
// the emitted snapshots.
func TestProgressJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sct.Run(fanInSetup(2), sct.Options{
		Strategy:      sct.NewRandom(1),
		Iterations:    40,
		MaxSteps:      1000,
		Progress:      sct.ProgressJSONL(&buf),
		ProgressEvery: 10,
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl lines = %d, want 4", len(lines))
	}
	for i, line := range lines {
		var p sct.Progress
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %d does not decode: %v (%s)", i, err, line)
		}
		if want := int64((i + 1) * 10); p.Iterations != want {
			t.Fatalf("line %d: iterations = %d, want %d", i, p.Iterations, want)
		}
		if p.Elapsed < 0 {
			t.Fatalf("line %d: negative elapsed %d", i, p.Elapsed)
		}
	}
}

// TestProgressTextGolden locks the human renderer's format against drift:
// both the sequential form and the worker-tagged parallel form render fixed
// snapshots and compare against the golden file.
func TestProgressTextGolden(t *testing.T) {
	var buf bytes.Buffer
	render := sct.ProgressText(&buf)
	render(sct.Progress{
		Worker: 0, Workers: 1, WorkerIterations: 100,
		Iterations: 100, Budget: 1000, Buggy: 2, Distinct: 87,
		Elapsed: 1234 * time.Millisecond,
	})
	render(sct.Progress{
		Worker: 3, Workers: 4, Strategy: "pct", WorkerIterations: 25,
		Iterations: 180, Budget: 1000, Buggy: 0, Distinct: 44,
		Elapsed: 2500600 * time.Microsecond,
	})
	golden := filepath.Join("testdata", "progress.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Fatalf("progress format drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
