package psharp

// Test-only accessors for the compiled-schema cache, used by the
// compile-once assertions in the external test package.

// SchemaCompiles reports how many machine schemas this runtime has compiled
// (both declaration forms) since construction.
func (r *Runtime) SchemaCompiles() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.schemaCompiles
}

// SchemaCompiles reports how many machine schemas the harness's recycled
// runtime has compiled across all Run calls so far.
func (h *TestHarness) SchemaCompiles() int { return h.rt.SchemaCompiles() }

// CachedSchemas reports how many machine types currently have a compiled
// schema cached (static types only; closure-form registrations record a
// negative entry that this does not count).
func (h *TestHarness) CachedSchemas() int {
	h.rt.mu.Lock()
	defer h.rt.mu.Unlock()
	n := 0
	for _, cs := range h.rt.schemas {
		if cs != nil {
			n++
		}
	}
	return n
}
