module github.com/psharp-go/psharp

go 1.24.0
