package main

// The -psl mode: explore a Table 1 .psl benchmark through the interp
// package instead of a Go-native protocol, selecting the evaluator with
// -interp (bytecode VM by default, tree-walker with -interp walk) and
// dumping the compiled bytecode with -disasm. See the interp package docs,
// "Bytecode execution".

import (
	"fmt"
	"io"

	"github.com/psharp-go/psharp/internal/benchsrc"
	"github.com/psharp-go/psharp/interp"
	"github.com/psharp-go/psharp/obs"
)

// runPSL explores iterations seeded schedules of the named .psl benchmark
// with the race detector on, and summarizes outcomes: quiescence, bound
// exhaustion, distinct races, transition coverage, and the first fault.
// Exit codes mirror the Go-native mode: 1 when a fault was found, 0 clean.
func runPSL(name string, racy bool, engineName string, disasm bool, iterations int, seed uint64, stdout, stderr io.Writer) int {
	engine, err := interp.ParseEngine(engineName)
	if err != nil {
		fmt.Fprintln(stderr, "psharp-test:", err)
		return 2
	}
	prog, err := benchsrc.Source(name, racy)
	if err != nil {
		fmt.Fprintf(stderr, "psharp-test: %v (try -list; .psl benchmarks are marked [psl])\n", err)
		return 2
	}
	if disasm {
		fmt.Fprint(stdout, interp.Disassemble(prog))
		return 0
	}
	main := prog.Machines[0].Name
	var cov obs.StateEventCoverage
	races := map[string]bool{}
	quiescent, bounded := 0, 0
	var firstErr error
	var firstSeed uint64
	for i := 0; i < iterations; i++ {
		s := seed + uint64(i)
		out := interp.Run(prog, main, interp.Options{
			Engine:     engine,
			Seed:       s,
			RaceDetect: true,
			Coverage:   &cov,
		})
		if out.Quiescent {
			quiescent++
		}
		if out.BoundReached {
			bounded++
		}
		for _, r := range out.Races {
			races[r] = true
		}
		if out.Err != nil && firstErr == nil {
			firstErr, firstSeed = out.Err, s
		}
	}
	variant := "non-racy"
	if racy {
		variant = "racy"
	}
	fmt.Fprintf(stdout, "%s (%s, %s): %d schedules: %d quiescent, %d bound-limited, %d distinct races, %d/%d transitions covered\n",
		name, variant, engine, iterations, quiescent, bounded, len(races),
		cov.Distinct(), interp.DeclaredTransitions(prog))
	if firstErr != nil {
		fmt.Fprintf(stdout, "first fault (seed %d): %v\n", firstSeed, firstErr)
		return 1
	}
	return 0
}
