package main

// In-process smoke tests for the CLI: the -trace-out / -replay round trip
// (replay usable from the command line, not just the API), and the liveness
// flags.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestTraceOutReplayRoundTrip finds a bug, writes its trace with
// -trace-out, and replays it with -replay: the recorded bug must reproduce
// from the file.
func TestTraceOutReplayRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "bug.trace")
	code, stdout, stderr := runCLI(t,
		"-bench", "ChainReplication", "-buggy",
		"-iterations", "500", "-seed", "20150628",
		"-trace-out", trace)
	if code != 1 {
		t.Fatalf("exploration exit code = %d, want 1 (bug found)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "trace written to") {
		t.Fatalf("stdout does not confirm the trace write:\n%s", stdout)
	}
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}

	code, stdout, stderr = runCLI(t,
		"-bench", "ChainReplication", "-buggy",
		"-replay", trace)
	if code != 0 {
		t.Fatalf("replay exit code = %d, want 0 (bug reproduced)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "replayed") || strings.Contains(stdout, "no bug reproduced") {
		t.Fatalf("replay output does not report the bug:\n%s", stdout)
	}
}

// TestLivenessFlagRoundTrip drives the liveness pipeline end to end from
// the CLI: -liveness finds the FairResponder bug with the fair strategy,
// writes the trace, and -replay reproduces the liveness violation.
func TestLivenessFlagRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "liveness.trace")
	code, stdout, stderr := runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-iterations", "200", "-seed", "20150628",
		"-trace-out", trace)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (liveness bug found)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "liveness violation") || !strings.Contains(stdout, "ResponseMonitor") {
		t.Fatalf("stdout does not report the monitor violation:\n%s", stdout)
	}

	code, stdout, _ = runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-replay", trace)
	if code != 0 {
		t.Fatalf("replay exit code = %d, want 0\nstdout: %s", code, stdout)
	}
	if !strings.Contains(stdout, "liveness violation") {
		t.Fatalf("replay did not reproduce the liveness violation:\n%s", stdout)
	}
}

// TestReplayCleanTraceExitCode checks the distinct exit code for a trace
// that replays without reproducing a bug.
func TestReplayCleanTraceExitCode(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "clean.trace")
	// A trivially short hand-written trace: schedule the first machine once.
	if err := os.WriteFile(trace, []byte("s ChainServer 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-bench", "TwoPhaseCommit", "-replay", trace)
	// Replay divergence (wrong machine name) or clean replay are both
	// acceptable shapes for a bogus trace, but a reproduced bug is not.
	if code == 0 {
		t.Fatalf("bogus trace claimed to reproduce a bug\nstdout: %s\nstderr: %s", stdout, stderr)
	}
}

// TestHelpExitsZero checks that -h stays a success exit, as with the
// default flag handling the command had before run() was extracted.
func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit code = %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "-liveness") {
		t.Fatalf("usage output missing the liveness flag:\n%s", stderr)
	}
}

// TestLivenessPortfolioWarning checks that -liveness with unfair portfolio
// members warns about spurious violations.
func TestLivenessPortfolioWarning(t *testing.T) {
	_, _, stderr := runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-iterations", "20", "-portfolio", "random,fair")
	if !strings.Contains(stderr, "unfair portfolio member") {
		t.Fatalf("no unfair-member warning:\n%s", stderr)
	}
	_, _, stderr = runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-iterations", "20", "-portfolio", "fair,fair")
	if strings.Contains(stderr, "warning") {
		t.Fatalf("all-fair portfolio still warned:\n%s", stderr)
	}
}

// TestListIncludesLivenessSuite checks that -list names the liveness
// benchmarks alongside the Table 2 roster.
func TestListIncludesLivenessSuite(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, want := range []string{"Raft(buggy)", "FairResponder [liveness]", "FairResponder(buggy) [liveness]"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("-list output missing %q:\n%s", want, stdout)
		}
	}
}
