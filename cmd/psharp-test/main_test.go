package main

// In-process smoke tests for the CLI: the -trace-out / -replay round trip
// (replay usable from the command line, not just the API), and the liveness
// flags.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/psharp-go/psharp/journal"
	"github.com/psharp-go/psharp/sct"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestTraceOutReplayRoundTrip finds a bug, writes its trace with
// -trace-out, and replays it with -replay: the recorded bug must reproduce
// from the file.
func TestTraceOutReplayRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "bug.trace")
	code, stdout, stderr := runCLI(t,
		"-bench", "ChainReplication", "-buggy",
		"-iterations", "500", "-seed", "20150628",
		"-trace-out", trace)
	if code != 1 {
		t.Fatalf("exploration exit code = %d, want 1 (bug found)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "trace written to") {
		t.Fatalf("stdout does not confirm the trace write:\n%s", stdout)
	}
	if fi, err := os.Stat(trace); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}

	code, stdout, stderr = runCLI(t,
		"-bench", "ChainReplication", "-buggy",
		"-replay", trace)
	if code != 0 {
		t.Fatalf("replay exit code = %d, want 0 (bug reproduced)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "replayed") || strings.Contains(stdout, "no bug reproduced") {
		t.Fatalf("replay output does not report the bug:\n%s", stdout)
	}
}

// TestLivenessFlagRoundTrip drives the liveness pipeline end to end from
// the CLI: -liveness finds the FairResponder bug with the fair strategy,
// writes the trace, and -replay reproduces the liveness violation.
func TestLivenessFlagRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "liveness.trace")
	code, stdout, stderr := runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-iterations", "200", "-seed", "20150628",
		"-trace-out", trace)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (liveness bug found)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "liveness violation") || !strings.Contains(stdout, "ResponseMonitor") {
		t.Fatalf("stdout does not report the monitor violation:\n%s", stdout)
	}

	code, stdout, _ = runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-replay", trace)
	if code != 0 {
		t.Fatalf("replay exit code = %d, want 0\nstdout: %s", code, stdout)
	}
	if !strings.Contains(stdout, "liveness violation") {
		t.Fatalf("replay did not reproduce the liveness violation:\n%s", stdout)
	}
}

// TestReplayCleanTraceExitCode checks the distinct exit code for a trace
// that replays without reproducing a bug.
func TestReplayCleanTraceExitCode(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "clean.trace")
	// A trivially short hand-written trace: schedule the first machine once.
	if err := os.WriteFile(trace, []byte("s ChainServer 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-bench", "TwoPhaseCommit", "-replay", trace)
	// Replay divergence (wrong machine name) or clean replay are both
	// acceptable shapes for a bogus trace, but a reproduced bug is not.
	if code == 0 {
		t.Fatalf("bogus trace claimed to reproduce a bug\nstdout: %s\nstderr: %s", stdout, stderr)
	}
}

// TestFaultsFlagRoundTrip drives fault injection end to end from the CLI:
// -faults finds the crash-only TwoPhaseCommitFT bug that fault-free
// exploration cannot reach, writes the fault-bearing trace, and -replay
// reproduces the crash schedule from the file.
func TestFaultsFlagRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "crash.trace")
	code, stdout, stderr := runCLI(t,
		"-bench", "TwoPhaseCommitFT", "-buggy", "-monitors",
		"-faults", "2", "-fault-horizon", "64",
		"-iterations", "3000", "-seed", "1",
		"-trace-out", trace)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (bug found)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "FTAtomicity") {
		t.Fatalf("stdout does not report the atomicity monitor violation:\n%s", stdout)
	}
	if !strings.Contains(stdout, "faults injected:") || strings.Contains(stdout, "0 crashes") {
		t.Fatalf("stdout does not report injected crashes:\n%s", stdout)
	}

	code, stdout, stderr = runCLI(t,
		"-bench", "TwoPhaseCommitFT", "-buggy", "-monitors",
		"-replay", trace)
	if code != 0 {
		t.Fatalf("replay exit code = %d, want 0 (bug reproduced)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "atomicity violated") {
		t.Fatalf("replay did not reproduce the atomicity violation:\n%s", stdout)
	}
}

// TestHelpExitsZero checks that -h stays a success exit, as with the
// default flag handling the command had before run() was extracted.
func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Fatalf("-h exit code = %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "-liveness") {
		t.Fatalf("usage output missing the liveness flag:\n%s", stderr)
	}
}

// TestLivenessPortfolioWarning checks that -liveness with unfair portfolio
// members warns about spurious violations.
func TestLivenessPortfolioWarning(t *testing.T) {
	_, _, stderr := runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-iterations", "20", "-portfolio", "random,fair")
	if !strings.Contains(stderr, "unfair portfolio member") {
		t.Fatalf("no unfair-member warning:\n%s", stderr)
	}
	_, _, stderr = runCLI(t,
		"-bench", "FairResponder", "-buggy", "-liveness",
		"-iterations", "20", "-portfolio", "fair,fair")
	if strings.Contains(stderr, "warning") {
		t.Fatalf("all-fair portfolio still warned:\n%s", stderr)
	}
}

// TestReportOutWritesCampaign checks the -report-out pipeline: a parallel
// exploration leaves a versioned campaign report whose telemetry carries a
// multi-bucket coverage growth curve.
func TestReportOutWritesCampaign(t *testing.T) {
	report := filepath.Join(t.TempDir(), "campaign.json")
	code, stdout, stderr := runCLI(t,
		"-bench", "TwoPhaseCommit", "-buggy", "-keep-going",
		"-iterations", "2000", "-seed", "20150628", "-parallel", "2",
		"-report-out", report)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (buggy benchmark)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "campaign report written to") {
		t.Fatalf("stdout does not confirm the report write:\n%s", stdout)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var c sct.Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatalf("campaign does not decode: %v", err)
	}
	if c.Version != sct.CampaignVersion {
		t.Fatalf("version = %d, want %d", c.Version, sct.CampaignVersion)
	}
	if c.Result.Iterations != 2000 || c.Result.BuggyIterations == 0 {
		t.Fatalf("implausible result: %+v", c.Result)
	}
	if c.Env.GoVersion == "" {
		t.Fatalf("missing environment metadata: %+v", c.Env)
	}
	if c.Telemetry == nil {
		t.Fatal("report has no telemetry")
	}
	if len(c.Telemetry.GrowthCurve) < 3 {
		t.Fatalf("growth curve has %d points, want >= 3", len(c.Telemetry.GrowthCurve))
	}
	last := c.Telemetry.GrowthCurve[len(c.Telemetry.GrowthCurve)-1]
	if last.DistinctSchedules == 0 || last.CoveredTransitions == 0 {
		t.Fatalf("degenerate final growth point: %+v", last)
	}
	if len(c.Telemetry.BugCensus) == 0 {
		t.Fatal("report has no bug census despite buggy iterations")
	}
}

// TestProgressJSONLFlag checks the machine-readable progress stream: every
// line decodes as a Progress snapshot and iteration counts ascend.
func TestProgressJSONLFlag(t *testing.T) {
	stream := filepath.Join(t.TempDir(), "progress.jsonl")
	code, stdout, stderr := runCLI(t,
		"-bench", "TwoPhaseCommit", "-buggy", "-keep-going",
		"-iterations", "200", "-seed", "1",
		"-progress-every", "50", "-progress-jsonl", stream)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	f, err := os.Open(stream)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	var prev int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var p sct.Progress
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("line %d does not decode: %v", lines+1, err)
		}
		if p.Iterations <= prev || p.Budget != 200 {
			t.Fatalf("non-ascending or mislabeled snapshot: %+v after %d", p, prev)
		}
		prev = p.Iterations
		lines++
	}
	if lines != 4 {
		t.Fatalf("got %d progress lines, want 4 (200 iterations / every 50)", lines)
	}
}

// notifyingWriter is a thread-safe stderr sink that announces the debug
// endpoint address the moment psharp-test prints it, so the test can query
// the endpoint while the run is still exploring.
type notifyingWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addr  chan string
	found bool
}

func (w *notifyingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.found {
		if m := debugAddrRE.FindStringSubmatch(w.buf.String()); m != nil {
			w.found = true
			w.addr <- m[1]
		}
	}
	return len(p), nil
}

var debugAddrRE = regexp.MustCompile(`http://([^/\s]+)/debug/vars`)

// TestHTTPDebugEndpoint starts a run with -http on an ephemeral port and
// fetches /debug/vars while it explores: the response must be the live
// telemetry snapshot as JSON.
func TestHTTPDebugEndpoint(t *testing.T) {
	stderr := &notifyingWriter{addr: make(chan string, 1)}
	var stdout bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-bench", "TwoPhaseCommit", "-buggy", "-keep-going",
			"-iterations", "20000", "-seed", "1",
			"-http", "127.0.0.1:0",
		}, &stdout, stderr)
	}()
	addr := <-stderr.addr
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("debug endpoint unreachable: %v", err)
	}
	var snap sct.TelemetrySnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars is not a telemetry snapshot: %v", err)
	}
	if code := <-done; code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s", code, stdout.String())
	}
	// After the run the listener must be closed (deferred shutdown).
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("debug endpoint still serving after run returned")
	}
}

// readCampaign decodes a -report-out file.
func readCampaign(t *testing.T, path string) sct.Campaign {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var c sct.Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatalf("campaign does not decode: %v", err)
	}
	return c
}

// TestJournalResumeCLIRoundTrip drives the resumable-campaign workflow end
// to end through the flags: a budget-split campaign (two invocations, the
// second with -resume) must land on exactly the distinct-schedule count of
// one uninterrupted run, and the resumed report must say so.
func TestJournalResumeCLIRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "journal")
	common := []string{"-bench", "TwoPhaseCommit", "-buggy", "-keep-going", "-seed", "3"}

	code, stdout, stderr := runCLI(t, append(common,
		"-iterations", "120", "-journal", jdir)...)
	if code != 1 {
		t.Fatalf("first slice exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "journal: "+jdir+" holds") {
		t.Fatalf("no journal summary line:\n%s", stdout)
	}

	// Re-running without -resume must refuse rather than clobber the campaign.
	code, _, stderr = runCLI(t, append(common, "-iterations", "120", "-journal", jdir)...)
	if code != 1 || !strings.Contains(stderr, "resume") {
		t.Fatalf("journal overwrite not refused: code=%d stderr=%s", code, stderr)
	}

	resumedReport := filepath.Join(tmp, "resumed.json")
	code, stdout, stderr = runCLI(t, append(common,
		"-iterations", "400", "-journal", jdir, "-resume", "-report-out", resumedReport)...)
	if code != 1 {
		t.Fatalf("resume exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "resuming campaign") {
		t.Fatalf("no resume note on stderr:\n%s", stderr)
	}

	soloReport := filepath.Join(tmp, "solo.json")
	code, _, stderr = runCLI(t, append(common, "-iterations", "400", "-report-out", soloReport)...)
	if code != 1 {
		t.Fatalf("solo exit = %d\nstderr: %s", code, stderr)
	}

	resumed, solo := readCampaign(t, resumedReport), readCampaign(t, soloReport)
	if !resumed.Config.Resumed {
		t.Fatal("resumed report not marked resumed")
	}
	if resumed.Result.Iterations != 400 {
		t.Fatalf("resumed campaign totals %d iterations, want 400", resumed.Result.Iterations)
	}
	if resumed.Result.DistinctSchedules != solo.Result.DistinctSchedules {
		t.Fatalf("distinct schedules diverged: resumed %d vs solo %d",
			resumed.Result.DistinctSchedules, solo.Result.DistinctSchedules)
	}
	if resumed.Result.BuggyIterations != solo.Result.BuggyIterations {
		t.Fatalf("buggy iterations diverged: resumed %d vs solo %d",
			resumed.Result.BuggyIterations, solo.Result.BuggyIterations)
	}
}

// TestShardedJournalCLI splits one campaign across two -shard processes
// sharing a journal directory and checks they jointly cover the population
// of an equivalent single-process run.
func TestShardedJournalCLI(t *testing.T) {
	tmp := t.TempDir()
	jdir := filepath.Join(tmp, "journal")
	common := []string{"-bench", "TwoPhaseCommit", "-buggy", "-keep-going",
		"-seed", "3", "-iterations", "300", "-parallel", "2"}

	for shard := 1; shard <= 2; shard++ {
		spec := []string{"-journal", jdir, "-shard"}
		spec = append(spec, []string{"1/2", "2/2"}[shard-1])
		code, stdout, stderr := runCLI(t, append(common, spec...)...)
		if code != 1 {
			t.Fatalf("shard %d exit = %d\nstdout: %s\nstderr: %s", shard, code, stdout, stderr)
		}
		if !strings.Contains(stdout, "shard "+[]string{"1/2", "2/2"}[shard-1]) {
			t.Fatalf("shard %d summary does not name its shard:\n%s", shard, stdout)
		}
	}

	soloReport := filepath.Join(tmp, "solo.json")
	if code, _, stderr := runCLI(t, append(common, "-parallel", "4", "-report-out", soloReport)...); code != 1 {
		t.Fatalf("solo exit = %d\nstderr: %s", code, stderr)
	}
	solo := readCampaign(t, soloReport)

	// The second shard's journal summary merges both shard files; re-read it
	// via a third, fully-resumed invocation with zero new work... simpler:
	// the summary line was already printed by shard 2. Assert the merged
	// count by reading the directory with the journal API.
	st, err := journal.ReadState(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsPresent != 2 {
		t.Fatalf("shards present = %d, want 2", st.ShardsPresent)
	}
	if int(st.Counters.Iterations) != 300 {
		t.Fatalf("sharded campaign totals %d iterations, want 300", st.Counters.Iterations)
	}
	if st.DistinctSchedules != solo.Result.DistinctSchedules {
		t.Fatalf("sharded population %d distinct vs solo %d", st.DistinctSchedules, solo.Result.DistinctSchedules)
	}
}

// TestJournalFlagValidation pins the usage errors around the new flags.
func TestJournalFlagValidation(t *testing.T) {
	if code, _, stderr := runCLI(t, "-bench", "Raft", "-resume"); code != 2 || !strings.Contains(stderr, "-journal") {
		t.Fatalf("-resume without -journal: code=%d stderr=%s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-bench", "Raft", "-journal", t.TempDir(), "-dynamic", "-parallel", "2"); code != 2 || !strings.Contains(stderr, "dynamic") {
		t.Fatalf("-journal with -dynamic: code=%d stderr=%s", code, stderr)
	}
	for _, bad := range []string{"0/2", "3/2", "x/y", "2"} {
		if code, _, stderr := runCLI(t, "-bench", "Raft", "-journal", t.TempDir(), "-shard", bad); code != 2 {
			t.Fatalf("-shard %s accepted: code=%d stderr=%s", bad, code, stderr)
		}
	}
}

// TestTimeoutWritesInterruptedReport is satellite 1: a run cut off by the
// hard time budget still writes its campaign report, marked interrupted.
func TestTimeoutWritesInterruptedReport(t *testing.T) {
	report := filepath.Join(t.TempDir(), "partial.json")
	code, stdout, stderr := runCLI(t,
		"-bench", "TwoPhaseCommit", "-buggy", "-keep-going",
		"-iterations", "100000000", "-seed", "1", "-timeout", "100ms",
		"-report-out", report)
	// Exit 1 if a buggy schedule landed before the deadline, 0 if not —
	// how many iterations fit in 100ms is timing-dependent (the race
	// detector cuts throughput an order of magnitude). Either way the
	// interrupted report below must be written.
	if code != 0 && code != 1 {
		t.Fatalf("exit = %d, want 0 or 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[interrupted]") {
		t.Fatalf("summary missing the interrupted marker:\n%s", stdout)
	}
	if !strings.Contains(stdout, "campaign interrupted: partial results") {
		t.Fatalf("no partial-results note:\n%s", stdout)
	}
	c := readCampaign(t, report)
	if !c.Result.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	if c.Result.Iterations == 0 || c.Result.Iterations >= 100000000 {
		t.Fatalf("implausible interrupted iteration count %d", c.Result.Iterations)
	}
}

// TestListIncludesLivenessSuite checks that -list names the liveness
// benchmarks alongside the Table 2 roster.
func TestListIncludesLivenessSuite(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, want := range []string{
		"Raft(buggy)", "FairResponder [liveness]", "FairResponder(buggy) [liveness]",
		"TwoPhaseCommitFT [faults]", "TwoPhaseCommitFT(buggy) [faults]",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("-list output missing %q:\n%s", want, stdout)
		}
	}
}

// TestPSLModeEngineAgreement runs the same seeded .psl exploration under
// both evaluators through the CLI: the summary lines must be identical
// apart from the engine name (same quiescence, race, and coverage counts).
func TestPSLModeEngineAgreement(t *testing.T) {
	code, vmOut, stderr := runCLI(t, "-psl", "German", "-racy", "-iterations", "30", "-seed", "7")
	if code != 0 {
		t.Fatalf("bytecode run exit code = %d\nstdout: %s\nstderr: %s", code, vmOut, stderr)
	}
	code, walkOut, stderr := runCLI(t, "-psl", "German", "-racy", "-iterations", "30", "-seed", "7", "-interp", "walk")
	if code != 0 {
		t.Fatalf("walk run exit code = %d\nstdout: %s\nstderr: %s", code, walkOut, stderr)
	}
	norm := func(s string) string {
		s = strings.ReplaceAll(s, "bytecode", "ENGINE")
		return strings.ReplaceAll(s, "walk", "ENGINE")
	}
	if norm(vmOut) != norm(walkOut) {
		t.Fatalf("engines disagree:\nbytecode: %s\nwalk:     %s", vmOut, walkOut)
	}
	if !strings.Contains(vmOut, "distinct races") {
		t.Fatalf("summary missing race count: %s", vmOut)
	}
}

// TestPSLDisasmFlag prints the bytecode listing without running.
func TestPSLDisasmFlag(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-psl", "Pi", "-disasm")
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"machine ", "func ", "params="} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, stdout)
		}
	}
}

// TestPSLModeBadInputs: unknown benchmark and unknown engine are usage
// errors (exit 2), and -list marks the .psl corpus.
func TestPSLModeBadInputs(t *testing.T) {
	if code, _, stderr := runCLI(t, "-psl", "Nope"); code != 2 || !strings.Contains(stderr, "Nope") {
		t.Fatalf("unknown -psl: code=%d stderr=%s", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-psl", "Pi", "-interp", "turbo"); code != 2 || !strings.Contains(stderr, "turbo") {
		t.Fatalf("unknown -interp: code=%d stderr=%s", code, stderr)
	}
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 || !strings.Contains(stdout, "Swordfish [psl]") {
		t.Fatalf("-list should mark the .psl corpus: code=%d\n%s", code, stdout)
	}
}
