package main

// CLI coverage for the reduction stack: -strategy dpor, -state-cache, their
// refusal combinations, and the pruned/distinct-state fields of the
// campaign report.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/psharp-go/psharp/sct"
)

// TestDPORStateCacheCLIRoundTrip explores with -strategy dpor -state-cache,
// checks the bug trace replays from the file, and checks the campaign
// report carries the prune census.
func TestDPORStateCacheCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "bug.trace")
	report := filepath.Join(dir, "campaign.json")
	code, stdout, stderr := runCLI(t,
		"-bench", "TwoPhaseCommit", "-buggy", "-monitors",
		"-strategy", "dpor", "-state-cache",
		"-iterations", "5000",
		"-trace-out", trace, "-report-out", report)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (bug found)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "trace written to") {
		t.Fatalf("stdout does not confirm the trace write:\n%s", stdout)
	}

	code, stdout, _ = runCLI(t,
		"-bench", "TwoPhaseCommit", "-buggy", "-monitors",
		"-replay", trace)
	if code != 0 {
		t.Fatalf("replay exit code = %d, want 0 (bug reproduced)\nstdout: %s", code, stdout)
	}

	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var c sct.Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	if c.Config.Strategy != "dpor" || !c.Config.StateCache {
		t.Fatalf("report config does not record dpor+state-cache: %+v", c.Config)
	}
	if c.Result.PrunedIterations == 0 || c.Result.DistinctStates == 0 {
		t.Fatalf("report lacks the prune census: pruned=%d distinct_states=%d",
			c.Result.PrunedIterations, c.Result.DistinctStates)
	}
	// Pruned iterations must stay out of the throughput accounting: the
	// explored count plus the pruned count is the attempt total, so the
	// explored count alone must be strictly smaller.
	if attempts := c.Result.Iterations + c.Result.PrunedIterations; c.Result.Iterations >= attempts {
		t.Fatalf("explored iterations (%d) not separated from pruned (%d)",
			c.Result.Iterations, c.Result.PrunedIterations)
	}
}

// TestDPORStateCacheRefusals: every unsound combination exits 2 with a
// message naming the conflict, before any exploration starts.
func TestDPORStateCacheRefusals(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"dpor with faults",
			[]string{"-bench", "TwoPhaseCommitFT", "-buggy", "-strategy", "dpor", "-faults", "2"},
			"-strategy dpor is incompatible with -faults",
		},
		{
			"dpor with dynamic",
			[]string{"-bench", "TwoPhaseCommit", "-buggy", "-strategy", "dpor", "-parallel", "2", "-dynamic"},
			"-strategy dpor is incompatible with -dynamic",
		},
		{
			"state cache with a random strategy",
			[]string{"-bench", "TwoPhaseCommit", "-buggy", "-strategy", "random", "-state-cache"},
			"-state-cache requires -strategy dfs or dpor",
		},
		{
			"state cache with a portfolio",
			[]string{"-bench", "TwoPhaseCommit", "-buggy", "-state-cache", "-portfolio", "default"},
			"-state-cache is incompatible with -portfolio",
		},
		{
			"state cache with faults",
			[]string{"-bench", "TwoPhaseCommitFT", "-buggy", "-strategy", "dfs", "-state-cache", "-faults", "2"},
			"-state-cache is incompatible with -faults",
		},
	}
	for _, tc := range cases {
		code, _, stderr := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit code = %d, want 2\nstderr: %s", tc.name, code, stderr)
			continue
		}
		if !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr lacks %q:\n%s", tc.name, tc.want, stderr)
		}
	}
}
