// Command psharp-test runs systematic concurrency testing on the built-in
// protocol benchmarks.
//
// Usage:
//
//	psharp-test -bench Raft -buggy -strategy random -iterations 10000
//	psharp-test -bench Raft -buggy -parallel 8
//	psharp-test -bench Raft -buggy -parallel 8 -dynamic
//	psharp-test -bench Raft -buggy -parallel 8 -portfolio default
//	psharp-test -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

func main() {
	list := flag.Bool("list", false, "list available benchmarks")
	bench := flag.String("bench", "", "benchmark name (see -list)")
	buggy := flag.Bool("buggy", false, "use the buggy variant")
	strategy := flag.String("strategy", "random", "random | dfs | pct | delay")
	iterations := flag.Int("iterations", 10000, "schedule budget")
	timeout := flag.Duration("timeout", 5*time.Minute, "time budget (hard deadline)")
	seed := flag.Uint64("seed", 1, "seed for randomized strategies")
	keepGoing := flag.Bool("keep-going", false, "keep exploring after the first bug (reports %buggy)")
	trace := flag.String("trace", "", "write the first buggy schedule trace to this file")
	parallel := flag.Int("parallel", 1, "number of exploration workers (0 = GOMAXPROCS)")
	dynamic := flag.Bool("dynamic", false, "work-stealing iteration assignment across workers (keeps all workers busy under skewed iteration costs; trades run-to-run population reproducibility, bug traces still replay)")
	portfolio := flag.String("portfolio", "", "comma-separated worker portfolio, e.g. 'random,pct,delay,dfs' or 'default' (implies -parallel)")
	verbose := flag.Bool("v", false, "print per-worker sub-reports for parallel runs")
	flag.Parse()

	if *list {
		for _, b := range protocols.All() {
			fmt.Println(b.ID())
		}
		return
	}
	b, ok := protocols.ByName(*bench, *buggy)
	if !ok {
		fmt.Fprintf(os.Stderr, "psharp-test: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	opts := sct.Options{
		Iterations:     *iterations,
		Timeout:        *timeout,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: !*keepGoing,
		LivelockAsBug:  b.LivelockAsBug,
	}
	switch *strategy {
	case "random":
		opts.Strategy = sct.NewRandom(*seed)
	case "dfs":
		opts.Strategy = sct.NewDFS()
	case "pct":
		opts.Strategy = sct.NewPCT(*seed, 3, b.MaxSteps)
	case "delay":
		opts.Strategy = sct.NewDelayBounding(*seed, 2, b.MaxSteps)
	default:
		fmt.Fprintf(os.Stderr, "psharp-test: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	parallelSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})

	var rep sct.Report
	label := *strategy
	if *dynamic && *portfolio == "" && *parallel == 1 {
		fmt.Fprintln(os.Stderr, "psharp-test: -dynamic requires -parallel or -portfolio")
		os.Exit(2)
	}
	if *portfolio != "" || *parallel != 1 {
		popts := sct.ParallelOptions{Options: opts, Workers: *parallel, Dynamic: *dynamic}
		if *portfolio != "" {
			pf, err := sct.ParsePortfolio(*portfolio, *seed, b.MaxSteps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "psharp-test:", err)
				os.Exit(2)
			}
			popts.Portfolio = pf
			label = "portfolio[" + *portfolio + "]"
			// -portfolio implies one worker per member unless -parallel was
			// given explicitly; fewer workers than members drops members.
			if !parallelSet {
				popts.Workers = pf.Size()
			} else if *parallel > 0 && *parallel < pf.Size() {
				fmt.Fprintf(os.Stderr, "psharp-test: warning: -parallel %d runs only the first %d of %d portfolio members\n",
					*parallel, *parallel, pf.Size())
			}
		}
		prep := sct.RunParallel(b.Setup, popts)
		if *verbose {
			for _, w := range prep.Workers {
				fmt.Printf("  worker %d (%s): %s\n", w.Worker, w.Strategy, w.Report.String())
			}
		}
		rep = prep.Report
		sharding := ""
		if *dynamic {
			sharding = ", dynamic"
		}
		label = fmt.Sprintf("%s x%d workers%s", label, len(prep.Workers), sharding)
	} else {
		rep = sct.Run(b.Setup, opts)
	}
	fmt.Printf("%s under %s: %s\n", b.ID(), label, rep.String())
	if rep.BugFound() && *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-test:", err)
			os.Exit(1)
		}
		if err := rep.FirstBugTrace.Encode(f); err != nil {
			fmt.Fprintln(os.Stderr, "psharp-test:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "psharp-test:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d decisions)\n", *trace, rep.FirstBugTrace.Len())
	}
	if rep.BugFound() {
		os.Exit(1)
	}
}
