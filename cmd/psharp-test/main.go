// Command psharp-test runs systematic concurrency testing on the built-in
// protocol benchmarks.
//
// Usage:
//
//	psharp-test -bench Raft -buggy -strategy random -iterations 10000
//	psharp-test -bench Raft -buggy -monitors -trace-out raft.trace
//	psharp-test -bench Raft -buggy -monitors -replay raft.trace
//	psharp-test -bench FairResponder -buggy -liveness
//	psharp-test -bench TwoPhaseCommitFT -buggy -monitors -faults 2
//	psharp-test -bench TwoPhaseCommit -buggy -strategy dpor -state-cache
//	psharp-test -bench Raft -buggy -parallel 8 [-dynamic]
//	psharp-test -bench Raft -buggy -parallel 8 -portfolio default
//	psharp-test -bench Raft -buggy -report-out campaign.json [-http :6060]
//	psharp-test -bench Raft -buggy -journal camp/ [-resume] [-shard 2/4]
//	psharp-test -psl Raft -racy -iterations 200 [-interp walk]
//	psharp-test -psl Raft -disasm
//	psharp-test -list
//
// -psl switches to the .psl front end: the named Table 1 benchmark is
// loaded from the embedded corpus and explored through the interp package
// with the race detector on. -interp selects the evaluator (the bytecode
// VM by default; walk is the reference tree-walker — see the interp
// package docs, "Bytecode execution") and -disasm prints the compiled
// bytecode listing instead of running.
//
// -monitors attaches the benchmark's specification monitors (global safety
// invariants such as TwoPhaseCommit atomicity or Raft election safety);
// -liveness additionally enables hot-state temperature tracking and
// defaults the strategy to the fair random scheduler, which is what makes
// liveness verdicts sound — see the sct package docs.
//
// -faults N gives every schedule a budget of N injected faults — machine
// crashes (with restart through the creation payload), message drops,
// duplications and reorderings — chosen by a PCT-style injection plan
// layered over the selected strategy (see psharp's "Injecting faults"
// docs). The [faults] benchmarks in -list are crash-tolerant protocols
// whose buggy variants hide bugs only a fault can expose; their stable-
// storage machines are automatically immune. Fault decisions are recorded
// in the trace, so -trace-out and -replay reproduce crash schedules
// exactly.
//
// -strategy dpor selects dynamic partial-order reduction with sleep sets: a
// systematic enumerator like dfs that skips schedules differing only in the
// order of independent steps. -state-cache (with dfs or dpor) adds a hashed
// global-state cache that cuts schedules short when they revisit an
// already-covered global state; pruned schedules are reported separately
// from explored ones and never inflate throughput numbers. Both refuse the
// combinations they would be unsound under (-faults, -dynamic, mixed
// portfolios) — see the sct package docs, "Partial-order reduction and
// state caching".
//
// # Observability
//
// -progress-every N prints a progress line to stderr every N iterations of
// each worker, with campaign-global counters; -progress-jsonl FILE streams
// the same snapshots as JSON lines instead ("-" for stdout). -http ADDR
// serves /debug/vars (the live telemetry snapshot) and /debug/pprof/ for
// the duration of the run.
//
// # Resumable campaigns
//
// -journal DIR makes the campaign durable: workers append their schedule
// fingerprints, strategy cursors and counters to a crash-safe append-only
// journal (see the journal package), so a run killed at any point — SIGKILL
// included — can continue with -resume instead of starting over. A resumed
// run skips every journaled schedule, restarts each worker's seed stream at
// its cursor, and reports campaign-cumulative counters; growing -iterations
// across resumes splits one budget over several invocations. -shard i/n
// (1-based) lets n processes share one journal directory and jointly
// explore the exact population a single n×-parallel process would.
// -journal-sync trades durability against fsync traffic.
//
// SIGINT/SIGTERM stop the run cooperatively: in-flight schedules finish,
// the journal gets a final checkpoint, and -report-out/-trace-out are still
// written (the report carries an "interrupted" marker, as it does when the
// hard -timeout expires). A second signal exits immediately.
//
// -report-out FILE writes a versioned campaign report after the run. For
// example,
//
//	psharp-test -bench TwoPhaseCommit -buggy -monitors -keep-going \
//	    -iterations 5000 -parallel 4 -report-out campaign.json
//
// explores 5000 schedules across 4 workers and leaves campaign.json
// holding the merged result, a per-strategy breakdown, the schedule-depth
// histogram, the (machine, state, event) transitions covered, a bug census
// by kind, and the coverage growth curve over wall-clock time — the
// artifact CI archives per corpus run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/benchsrc"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/journal"
	"github.com/psharp-go/psharp/obs"
	"github.com/psharp-go/psharp/sct"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the command body, separated from main so the trace round-trip and
// flag-handling tests can drive it in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("psharp-test", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available benchmarks (the liveness suite is marked)")
	bench := fs.String("bench", "", "benchmark name (see -list)")
	buggy := fs.Bool("buggy", false, "use the buggy variant")
	strategy := fs.String("strategy", "", "random | fair | dfs | dpor | pct | delay (default random; fair under -liveness)")
	iterations := fs.Int("iterations", 10000, "schedule budget")
	timeout := fs.Duration("timeout", 5*time.Minute, "time budget (hard deadline)")
	seed := fs.Uint64("seed", 1, "seed for randomized strategies")
	keepGoing := fs.Bool("keep-going", false, "keep exploring after the first bug (reports %buggy)")
	monitors := fs.Bool("monitors", false, "attach the benchmark's specification monitors")
	liveness := fs.Bool("liveness", false, "enable hot-state liveness checking (implies -monitors; defaults -strategy to fair)")
	temperature := fs.Int("temperature", 0, "liveness temperature threshold in scheduling decisions (default: the benchmark's recommendation)")
	fairPrefix := fs.Int("fair-prefix", -1, "random-prefix length of the fair strategy and of portfolio fair members (default: the benchmark's recommendation, else maxsteps/2)")
	traceOut := fs.String("trace-out", "", "write the first buggy schedule trace to this file (psharp.Trace.Encode format)")
	faults := fs.Int("faults", 0, "per-schedule fault-injection budget: crashes (with restart), drops, duplicates, reorders as scheduler decisions (0 = off; see -list's [faults] benchmarks)")
	stateCache := fs.Bool("state-cache", false, "hashed global-state cache: cut short schedules that revisit an already-covered global state (requires -strategy dfs or dpor; pruned schedules are reported separately)")
	faultHorizon := fs.Int("fault-horizon", 0, "fault-point horizon the budget is spread over (0 = sct.DefaultFaultHorizon)")
	replay := fs.String("replay", "", "replay a trace file against the benchmark instead of exploring; exits 0 if the bug reproduces")
	parallel := fs.Int("parallel", 1, "number of exploration workers (0 = GOMAXPROCS)")
	dynamic := fs.Bool("dynamic", false, "work-stealing iteration assignment across workers (keeps all workers busy under skewed iteration costs; trades run-to-run population reproducibility, bug traces still replay)")
	portfolio := fs.String("portfolio", "", "comma-separated worker portfolio, e.g. 'random,fair,pct,delay,dfs' or 'default' (implies -parallel)")
	verbose := fs.Bool("v", false, "print per-worker sub-reports for parallel runs")
	progressEvery := fs.Int("progress-every", 0, "emit a progress snapshot every N iterations of each worker (0 = off)")
	progressJSONL := fs.String("progress-jsonl", "", "stream progress snapshots as JSON lines to this file instead of human text ('-' for stdout; defaults -progress-every to 1000)")
	reportOut := fs.String("report-out", "", "write a versioned campaign report (coverage, growth curves, bug census) to this file; see the worked example in the command docs")
	journalDir := fs.String("journal", "", "crash-safe campaign journal directory: schedule fingerprints, strategy cursors and counters are appended durably so a killed run can continue with -resume")
	resumeRun := fs.Bool("resume", false, "resume the journaled campaign in -journal: skip already-covered schedules, continue each worker's stream at its cursor, report campaign-cumulative counters")
	shardSpec := fs.String("shard", "", "run one shard i/n (1-based, e.g. 2/4) of a multi-process campaign; all n processes share the -journal directory and jointly explore one population")
	journalSync := fs.Int("journal-sync", 0, "journal fsync cadence in records (0 = default 64; 1 = fsync every record, maximally durable; -1 = fsync only at checkpoints and exit)")
	httpAddr := fs.String("http", "", "serve /debug/vars (live telemetry) and /debug/pprof/ on this address for the duration of the run, e.g. :6060 or 127.0.0.1:0")
	psl := fs.String("psl", "", "explore a Table 1 .psl benchmark through the interp package instead of a Go-native protocol (uses -racy, -interp, -disasm, -iterations, -seed)")
	racy := fs.Bool("racy", false, "with -psl: use the racy source variant")
	interpEngine := fs.String("interp", "bytecode", "with -psl: evaluator engine, bytecode or walk")
	disasm := fs.Bool("disasm", false, "with -psl: print the compiled bytecode listing (interp.Disassemble) and exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		for _, b := range protocols.All() {
			fmt.Fprintln(stdout, b.ID())
		}
		for _, b := range protocols.Liveness() {
			fmt.Fprintf(stdout, "%s [liveness]\n", b.ID())
		}
		for _, b := range protocols.FaultTolerant() {
			fmt.Fprintf(stdout, "%s [faults]\n", b.ID())
		}
		for _, n := range benchsrc.SortedNames() {
			fmt.Fprintf(stdout, "%s [psl]\n", n)
		}
		return 0
	}
	if *psl != "" {
		return runPSL(*psl, *racy, *interpEngine, *disasm, *iterations, *seed, stdout, stderr)
	}
	b, ok := protocols.ByName(*bench, *buggy)
	if !ok {
		fmt.Fprintf(stderr, "psharp-test: unknown benchmark %q (try -list)\n", *bench)
		return 2
	}
	if *liveness {
		*monitors = true
		if b.Temperature == 0 && *temperature == 0 {
			fmt.Fprintf(stderr, "psharp-test: %s declares no liveness specification; pass -temperature explicitly\n", b.ID())
			return 2
		}
	}
	if *temperature == 0 {
		*temperature = b.Temperature
	}
	if *liveness && *temperature <= 0 {
		// A non-positive threshold would silently disable temperature
		// tracking in the controller and report the run clean.
		fmt.Fprintf(stderr, "psharp-test: -liveness needs a positive -temperature, got %d\n", *temperature)
		return 2
	}
	if *fairPrefix < 0 {
		*fairPrefix = b.FairPrefix
		if *fairPrefix <= 0 {
			*fairPrefix = b.MaxSteps / 2
		}
	}
	if *liveness && *temperature <= *fairPrefix {
		fmt.Fprintf(stderr, "psharp-test: warning: -temperature %d <= -fair-prefix %d: the threshold can be crossed inside the random (unfair) prefix, which reports scheduler starvation as a violation; raise -temperature or shrink -fair-prefix\n",
			*temperature, *fairPrefix)
	}
	setup := b.Setup
	if *monitors {
		setup = b.SetupMonitored()
	}
	if *strategy == "" {
		*strategy = "random"
		if *liveness {
			*strategy = "fair"
		}
	}

	if *replay != "" {
		return replayTrace(b, setup, *replay, *liveness, *temperature, stdout, stderr)
	}

	opts := sct.Options{
		Iterations:     *iterations,
		Timeout:        *timeout,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: !*keepGoing,
		LivelockAsBug:  b.LivelockAsBug,
	}
	if *liveness {
		opts.LivenessTemperature = *temperature
	}
	if *faults > 0 {
		opts.Faults = sct.FaultOptions{
			Budget:  *faults,
			Seed:    *seed,
			Horizon: *faultHorizon,
			Immune:  b.FaultImmune,
			Restart: true,
		}
	}
	switch *strategy {
	case "random":
		opts.Strategy = sct.NewRandom(*seed)
	case "fair":
		opts.Strategy = sct.NewRandomFair(*seed, *fairPrefix)
	case "dfs":
		opts.Strategy = sct.NewDFS()
	case "dpor":
		opts.Strategy = sct.NewDPOR()
	case "pct":
		opts.Strategy = sct.NewPCT(*seed, 3, b.MaxSteps)
	case "delay":
		opts.Strategy = sct.NewDelayBounding(*seed, 2, b.MaxSteps)
	default:
		fmt.Fprintf(stderr, "psharp-test: unknown strategy %q\n", *strategy)
		return 2
	}
	// The reduction stack has documented incompatibilities; refuse the
	// combinations here with a clear message instead of panicking deep in
	// the engine (same pattern as -journal + -dynamic below).
	if *strategy == "dpor" {
		if *faults > 0 {
			fmt.Fprintln(stderr, "psharp-test: -strategy dpor is incompatible with -faults: fault decisions are not footprint-tracked, so the partial-order reduction would be unsound")
			return 2
		}
		if *dynamic {
			fmt.Fprintln(stderr, "psharp-test: -strategy dpor is incompatible with -dynamic: work-stealing reassigns iterations across workers, breaking the depth-first backtracking order the reduction depends on")
			return 2
		}
	}
	if *stateCache {
		if *portfolio != "" {
			fmt.Fprintln(stderr, "psharp-test: -state-cache is incompatible with -portfolio: pruning is only sound when every worker runs a depth-first strategy (dfs or dpor)")
			return 2
		}
		if *strategy != "dfs" && *strategy != "dpor" {
			fmt.Fprintf(stderr, "psharp-test: -state-cache requires -strategy dfs or dpor (got %q): pruning revisited states only preserves coverage under depth-first enumeration\n", *strategy)
			return 2
		}
		if *faults > 0 {
			fmt.Fprintln(stderr, "psharp-test: -state-cache is incompatible with -faults: injected faults mutate state outside the hashed footprint")
			return 2
		}
		opts.StateCache = true
	}
	if *liveness {
		if *portfolio != "" {
			// A portfolio overrides -strategy per worker; warn if any member
			// is unfair, since temperature tracking applies to all of them.
			for _, m := range strings.Split(*portfolio, ",") {
				if name := strings.TrimSpace(m); name != "fair" && name != "" {
					fmt.Fprintf(stderr, "psharp-test: warning: -liveness with unfair portfolio member %q can report spurious violations (scheduler starvation); use fair members\n", name)
					break
				}
			}
		} else if *strategy != "fair" {
			fmt.Fprintf(stderr, "psharp-test: warning: -liveness under the unfair %q strategy can report spurious violations (scheduler starvation); use -strategy fair\n", *strategy)
		}
	}

	// Observability wiring: a Telemetry accumulator backs both the campaign
	// report and the live /debug/vars view; progress snapshots go to stderr
	// as text or to a JSONL stream.
	var tel *sct.Telemetry
	if *reportOut != "" || *httpAddr != "" {
		tel = sct.NewTelemetry(0)
		opts.Telemetry = tel
	}
	if *progressJSONL != "" {
		w := io.Writer(stdout)
		if *progressJSONL != "-" {
			f, err := os.Create(*progressJSONL)
			if err != nil {
				fmt.Fprintln(stderr, "psharp-test:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if *progressEvery <= 0 {
			*progressEvery = 1000
		}
		opts.Progress = sct.ProgressJSONL(w)
	} else if *progressEvery > 0 {
		opts.Progress = sct.ProgressText(stderr)
	}
	opts.ProgressEvery = *progressEvery
	if *httpAddr != "" {
		addr, shutdown, err := obs.ServeDebug(*httpAddr, func() any { return tel.Snapshot() })
		if err != nil {
			fmt.Fprintln(stderr, "psharp-test:", err)
			return 1
		}
		fmt.Fprintf(stderr, "psharp-test: debug endpoint at http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
		defer shutdown()
	}

	parallelSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})

	label := *strategy
	campaignStrategy := *strategy
	if *dynamic && *portfolio == "" && *parallel == 1 {
		fmt.Fprintln(stderr, "psharp-test: -dynamic requires -parallel or -portfolio")
		return 2
	}
	var pf *sct.Portfolio
	if *portfolio != "" {
		// Fair members take the same prefix as -strategy fair, so a
		// -liveness temperature calibrated above the prefix stays sound.
		var err error
		pf, err = sct.ParsePortfolioPrefix(*portfolio, *seed, b.MaxSteps, *fairPrefix)
		if err != nil {
			fmt.Fprintln(stderr, "psharp-test:", err)
			return 2
		}
		label = "portfolio[" + *portfolio + "]"
		campaignStrategy = label
		if parallelSet && *parallel > 0 && *parallel < pf.Size() {
			fmt.Fprintf(stderr, "psharp-test: warning: -parallel %d runs only the first %d of %d portfolio members\n",
				*parallel, *parallel, pf.Size())
		}
	}

	shardIndex, shardCount := 0, 1
	if *shardSpec != "" {
		var err error
		shardIndex, shardCount, err = parseShard(*shardSpec)
		if err != nil {
			fmt.Fprintln(stderr, "psharp-test:", err)
			return 2
		}
	}
	useParallel := *portfolio != "" || *parallel != 1 || shardCount > 1
	// Resolve the per-process worker count exactly as RunParallel will, so
	// the journal meta pins the campaign's true worker layout.
	workerCount := 1
	if useParallel {
		n := *parallel
		if pf != nil && !parallelSet {
			// -portfolio implies one worker per member unless -parallel was
			// given explicitly; fewer workers than members drops members.
			n = pf.Size()
		}
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if shardCount == 1 && n > *iterations {
			n = *iterations
		}
		workerCount = n
	}

	// Journal wiring: open (or resume) this process's shard of the campaign
	// journal before exploring, and preload its recovered state through
	// Options.Journal.
	if *resumeRun && *journalDir == "" {
		fmt.Fprintln(stderr, "psharp-test: -resume requires -journal")
		return 2
	}
	if *shardSpec != "" && *journalDir == "" {
		fmt.Fprintf(stderr, "psharp-test: note: -shard without -journal splits the budget but records nothing; shard results merge only through a shared journal\n")
	}
	var jc *journal.Campaign
	resumed := false
	if *journalDir != "" {
		if *dynamic {
			fmt.Fprintln(stderr, "psharp-test: -journal is incompatible with -dynamic (work-stealing has no resumable cursor)")
			return 2
		}
		meta := journal.Meta{
			Benchmark:    b.ID(),
			Strategy:     campaignStrategy,
			Seed:         *seed,
			Workers:      workerCount,
			ShardIndex:   shardIndex,
			ShardCount:   shardCount,
			MaxSteps:     b.MaxSteps,
			FaultBudget:  *faults,
			FaultHorizon: *faultHorizon,
			Extra: fmt.Sprintf("monitors=%t liveness=%t temperature=%d fair-prefix=%d state-cache=%t",
				*monitors, *liveness, *temperature, *fairPrefix, *stateCache),
		}
		jopts := journal.Options{SyncEvery: *journalSync}
		var err error
		if *resumeRun {
			jc, err = journal.Resume(*journalDir, meta, jopts)
		} else {
			jc, err = journal.Create(*journalDir, meta, jopts)
		}
		if err != nil {
			fmt.Fprintln(stderr, "psharp-test:", err)
			return 1
		}
		opts.Journal = jc
		resumed = jc.Resumed()
		if resumed {
			base := jc.Counters()
			fmt.Fprintf(stderr, "psharp-test: resuming campaign in %s: %d iterations and %d distinct schedules journaled\n",
				*journalDir, base.Iterations, len(jc.Fingerprints()))
		}
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the run
	// cooperatively — workers finish their in-flight schedule, the journal
	// flushes a final checkpoint, and the report/trace outputs below still
	// run. A second signal exits immediately.
	stop := make(chan struct{})
	opts.Stop = stop
	var signalled atomic.Bool
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		signalled.Store(true)
		fmt.Fprintf(stderr, "psharp-test: %v: stopping after in-flight schedules (journal and reports will be written; repeat to exit immediately)\n", sig)
		close(stop)
		if _, ok := <-sigc; ok {
			os.Exit(130)
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigc) // releases the watcher; safe after Stop
	}()

	var rep sct.Report
	var workerReports []sct.WorkerReport
	if useParallel {
		popts := sct.ParallelOptions{
			Options:    opts,
			Workers:    workerCount,
			Portfolio:  pf,
			Dynamic:    *dynamic,
			ShardIndex: shardIndex,
			ShardCount: shardCount,
		}
		prep := sct.RunParallel(setup, popts)
		if *verbose {
			for _, w := range prep.Workers {
				fmt.Fprintf(stdout, "  worker %d (%s): %s\n", w.Worker, w.Strategy, w.Report.String())
			}
		}
		rep = prep.Report
		workerReports = prep.Workers
		workerCount = len(prep.Workers)
		sharding := ""
		if *dynamic {
			sharding = ", dynamic"
		}
		if shardCount > 1 {
			sharding = fmt.Sprintf(", shard %d/%d", shardIndex+1, shardCount)
		}
		label = fmt.Sprintf("%s x%d workers%s", label, len(prep.Workers), sharding)
	} else {
		rep = sct.Run(setup, opts)
	}
	suffix := ""
	if *monitors {
		suffix = " (monitored)"
	}
	fmt.Fprintf(stdout, "%s under %s%s: %s\n", b.ID(), label, suffix, rep.String())
	if rep.Interrupted {
		resumeHint := ""
		if jc != nil {
			resumeHint = fmt.Sprintf("; resume with -journal %s -resume", *journalDir)
		}
		fmt.Fprintf(stdout, "campaign interrupted: partial results%s\n", resumeHint)
	}
	if *faults > 0 {
		fmt.Fprintf(stdout, "faults injected: %d crashes (%d restarted), %d drops, %d duplicates, %d reorders\n",
			rep.Faults.Crashes, rep.Faults.Restarts, rep.Faults.Drops, rep.Faults.Duplicates, rep.Faults.Reorders)
	}
	if rep.BugFound() {
		if bug := rep.FirstBug; bug.Monitor != "" {
			fmt.Fprintf(stdout, "specification violated: monitor %q (%s)\n", bug.Monitor, bug.Kind)
		}
	}
	if rep.BugFound() && *traceOut != "" {
		if err := writeTrace(*traceOut, rep.FirstBugTrace); err != nil {
			fmt.Fprintln(stderr, "psharp-test:", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written to %s (%d decisions)\n", *traceOut, rep.FirstBugTrace.Len())
	}
	if *reportOut != "" {
		cfg := sct.CampaignConfig{
			Benchmark:   b.ID(),
			Strategy:    campaignStrategy,
			Workers:     workerCount,
			Dynamic:     *dynamic,
			Iterations:  *iterations,
			MaxSteps:    b.MaxSteps,
			TimeoutMS:   timeout.Milliseconds(),
			Seed:        *seed,
			Monitors:    *monitors,
			Liveness:    *liveness,
			FaultBudget: *faults,
			StateCache:  *stateCache,
			Resumed:     resumed,
		}
		if shardCount > 1 {
			cfg.Shard = fmt.Sprintf("%d/%d", shardIndex+1, shardCount)
		}
		c := sct.NewCampaign(cfg, &rep, workerReports, tel)
		if err := c.WriteFile(*reportOut); err != nil {
			fmt.Fprintln(stderr, "psharp-test:", err)
			return 1
		}
		fmt.Fprintf(stdout, "campaign report written to %s (version %d, %d transitions covered, %d growth points)\n",
			*reportOut, c.Version, c.Telemetry.CoveredTransitions, len(c.Telemetry.GrowthCurve))
	}
	if jc != nil {
		// A sick journal never fails the exploration, but it must not fail
		// silently either: the campaign ran unjournaled from the first error
		// on, so resuming from this directory would lose that work.
		if err := jc.Err(); err != nil {
			fmt.Fprintf(stderr, "psharp-test: warning: journal degraded, campaign not fully recorded: %v\n", err)
		}
		if err := jc.Close(); err != nil {
			fmt.Fprintf(stderr, "psharp-test: warning: closing journal: %v\n", err)
		} else if st, err := journal.ReadState(*journalDir); err == nil {
			fmt.Fprintf(stdout, "journal: %s holds %d distinct schedules and %d iterations across %d/%d shard(s)\n",
				*journalDir, st.DistinctSchedules, st.Counters.Iterations, st.ShardsPresent, st.Shards)
		}
	}
	if signalled.Load() {
		return 130
	}
	if rep.BugFound() {
		return 1
	}
	return 0
}

// parseShard parses a 1-based "i/n" shard spec into a 0-based index and a
// count.
func parseShard(spec string) (index, count int, err error) {
	i := strings.IndexByte(spec, '/')
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("psharp-test: -shard wants i/n with 1 <= i <= n (e.g. 2/4), got %q", spec)
	}
	if i <= 0 {
		return bad()
	}
	var idx, cnt int
	if _, err := fmt.Sscanf(spec[:i], "%d", &idx); err != nil {
		return bad()
	}
	if _, err := fmt.Sscanf(spec[i+1:], "%d", &cnt); err != nil {
		return bad()
	}
	if cnt < 1 || idx < 1 || idx > cnt {
		return bad()
	}
	return idx - 1, cnt, nil
}

// writeTrace encodes tr into path.
func writeTrace(path string, tr *psharp.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replayTrace decodes a trace file and re-executes it against the
// benchmark, reporting whether the recorded bug reproduces. Exit codes: 0
// when a bug reproduces, 3 when the schedule replays clean, 1/2 on errors.
func replayTrace(b protocols.Benchmark, setup func(*psharp.Runtime), path string, liveness bool, temperature int, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "psharp-test:", err)
		return 2
	}
	tr, err := psharp.DecodeTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "psharp-test:", err)
		return 2
	}
	cfg := psharp.TestConfig{
		MaxSteps:      b.MaxSteps,
		LivelockAsBug: b.LivelockAsBug,
	}
	if liveness {
		cfg.LivenessTemperature = temperature
	}
	if tr.HasFaultDecisions() {
		// A fault-era trace needs the fault-query path live so the recorded
		// crash/drop/duplicate decisions land on the queries that produced
		// them. (ReplayTrace would enable this itself; setting the immune
		// list keeps the replayed run's validation identical to recording.)
		cfg.Faults = &psharp.FaultConfig{Immune: b.FaultImmune}
	}
	// A trace recorded against a different program (or stale binary) makes
	// the replay strategy panic with a divergence report; surface it as a
	// command error instead of a crash.
	res, err := func() (res psharp.IterationResult, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		return sct.ReplayTrace(setup, tr, cfg), nil
	}()
	if err != nil {
		fmt.Fprintln(stderr, "psharp-test:", err)
		return 2
	}
	if res.Bug != nil {
		fmt.Fprintf(stdout, "%s: replayed %d decisions: %v\n", b.ID(), tr.Len(), res.Bug)
		return 0
	}
	fmt.Fprintf(stdout, "%s: replayed %d decisions: no bug reproduced\n", b.ID(), tr.Len())
	return 3
}
