// Command psharp-bench regenerates the paper's evaluation tables and tracks
// exploration-performance trends.
//
// Usage:
//
//	psharp-bench -table 1 [-check]
//	psharp-bench -table 2 [-iterations 10000] [-timeout 5m] [-parallel 8 [-dynamic]]
//	psharp-bench -table all
//	psharp-bench -table none -json BENCH_sct.json
//
// With -check, the Table 1 results are compared against the expected
// false-positive counts encoded in internal/benchsrc (the paper's published
// numbers) and the command exits non-zero on any drift; CI uses this as the
// Table 1 gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/psharp-go/psharp/internal/tables"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, all or none")
	iterations := flag.Int("iterations", 10000, "schedule budget per Table 2 cell (paper: 10,000)")
	timeout := flag.Duration("timeout", 5*time.Minute, "time budget per Table 2 cell (paper: 5m)")
	seed := flag.Uint64("seed", 20150628, "random scheduler seed")
	parallel := flag.Int("parallel", 1, "exploration workers per Table 2 cell (0 = GOMAXPROCS)")
	dynamic := flag.Bool("dynamic", false, "work-stealing iteration assignment for parallel cells (trades population reproducibility for utilization)")
	jsonPath := flag.String("json", "", "write a machine-readable perf report (BENCH_sct.json) to this path: schedules/sec, allocs/iteration, per-worker iteration counts")
	check := flag.Bool("check", false, "compare Table 1 results against the expected counts in internal/benchsrc and exit non-zero on drift")
	flag.Parse()
	if *parallel <= 0 {
		// tables treats Workers 0/1 as the paper's sequential setup, so
		// resolve the "all cores" spelling here.
		*parallel = runtime.GOMAXPROCS(0)
	}

	switch *table {
	case "1", "2", "all", "none":
	default:
		fmt.Fprintf(os.Stderr, "psharp-bench: unknown -table %q (want 1, 2, all or none)\n", *table)
		os.Exit(2)
	}

	if *check && *table != "1" && *table != "all" {
		fmt.Fprintln(os.Stderr, "psharp-bench: -check requires -table 1 or -table all")
		os.Exit(2)
	}

	if *table == "1" || *table == "all" {
		fmt.Println("== Table 1: static data race analysis ==")
		rows, err := tables.RunTable1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		tables.PrintTable1(os.Stdout, rows)
		fmt.Println()
		if *check {
			if drift := tables.CheckTable1(rows); len(drift) > 0 {
				for _, d := range drift {
					fmt.Fprintln(os.Stderr, "psharp-bench: Table 1 drift:", d)
				}
				os.Exit(1)
			}
			fmt.Printf("Table 1 check: all %d benchmarks match the paper's false-positive counts\n", len(rows))
		}
	}
	if *table == "2" || *table == "all" {
		fmt.Printf("== Table 2: scheduler comparison (budget: %d schedules / %v per cell) ==\n",
			*iterations, *timeout)
		rows, err := tables.RunTable2(tables.Table2Options{
			Iterations: *iterations, Timeout: *timeout, Seed: *seed,
			Workers: *parallel, Dynamic: *dynamic,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		tables.PrintTable2(os.Stdout, rows)
	}
	if *jsonPath != "" {
		rep, err := tables.RunPerfProbe(tables.PerfProbeOptions{
			Iterations: min(*iterations, 2000),
			Workers:    *parallel,
			Dynamic:    *dynamic,
			Seed:       *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		if err := tables.WritePerfReport(*jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("perf report written to %s (%.1f schedules/s, allocs/iteration pooled %.1f vs one-shot %.1f on %s)\n",
			*jsonPath, rep.SchedulesPerSec,
			rep.AllocProbes[0].Pooled, rep.AllocProbes[0].OneShot, rep.AllocProbes[0].Workload)
		fmt.Printf("schema cache on %s: %.1f allocs/iteration cached vs %.1f per-instance (%.1f%% saved)\n",
			rep.SchemaProbe.Workload, rep.SchemaProbe.Cached, rep.SchemaProbe.PerInstance,
			rep.SchemaProbe.SavedPercent)
		fmt.Printf("monitor overhead on %s: %.1f allocs/iteration monitored vs %.1f plain (+%.1f)\n",
			rep.MonitorProbe.Workload, rep.MonitorProbe.Monitored, rep.MonitorProbe.Unmonitored,
			rep.MonitorProbe.DeltaAllocs)
		fmt.Printf("telemetry overhead on %s: %.1f allocs/iteration with telemetry vs %.1f plain (+%.2f)\n",
			rep.TelemetryProbe.Workload, rep.TelemetryProbe.Telemetry, rep.TelemetryProbe.Plain,
			rep.TelemetryProbe.DeltaAllocs)
		fmt.Printf("interp coverage over the Table 1 corpus: %d/%d declared transitions dispatched (%.1f%%) across %d benchmarks x %d seeds\n",
			rep.InterpCoverage.CoveredTransitions, rep.InterpCoverage.DeclaredTransitions,
			rep.InterpCoverage.CoveredPercent, rep.InterpCoverage.Benchmarks, rep.InterpCoverage.Seeds)
		fmt.Printf("interp throughput over the Table 1 corpus: %.0f schedules/s bytecode vs %.0f walker (%.1fx) across %d benchmarks x %d seeds\n",
			rep.InterpPerf.BytecodeSchedulesPerSec, rep.InterpPerf.WalkSchedulesPerSec,
			rep.InterpPerf.Speedup, rep.InterpPerf.Benchmarks, rep.InterpPerf.Seeds)
		fmt.Printf("fault injection on %s: %d buggy schedules in %d with a %d-fault budget vs %d fault-free (%d crashes, %d restarts, %d drops, %d dups, %d reorders)\n",
			rep.FaultProbe.Workload, rep.FaultProbe.BuggyWithFaults, rep.FaultProbe.ScheduleBudget,
			rep.FaultProbe.FaultBudget, rep.FaultProbe.BuggyFaultFree,
			rep.FaultProbe.Crashes, rep.FaultProbe.Restarts, rep.FaultProbe.Drops,
			rep.FaultProbe.Duplicates, rep.FaultProbe.Reorders)
		fmt.Printf("resume round trip on %s: split at %d/%d, resumed to %d distinct (%d buggy) vs solo %d distinct (%d buggy), resumed slice ran %d\n",
			rep.ResumeProbe.Workload, rep.ResumeProbe.SplitAt, rep.ResumeProbe.ScheduleBudget,
			rep.ResumeProbe.DistinctResumed, rep.ResumeProbe.BuggyResumed,
			rep.ResumeProbe.DistinctSolo, rep.ResumeProbe.BuggySolo,
			rep.ResumeProbe.ResumedSliceIterations)
		for _, g := range rep.DPORProbe.Benchmarks {
			fmt.Printf("dpor probe on %s: %d schedules to the bug vs random's %d (ratio %.2f, +%d pruned, %d distinct states, found dpor=%v random=%v)\n",
				g.Workload, g.DPORSchedules, g.RandomSchedules, g.Ratio,
				g.PrunedIterations, g.DistinctStates, g.FoundDPOR, g.FoundRandom)
		}
		fmt.Printf("state cache on %s: %d of %d attempts pruned (%.1f%%), %d explored, %d distinct states (%.0f states/s)\n",
			rep.StateCacheProbe.Workload, rep.StateCacheProbe.Pruned,
			rep.StateCacheProbe.Explored+rep.StateCacheProbe.Pruned,
			rep.StateCacheProbe.PrunedPercent, rep.StateCacheProbe.Explored,
			rep.StateCacheProbe.DistinctStates, rep.StateCacheProbe.StatesPerSec)
		// The telemetry-overhead gate: CI runs this command, so a regression
		// that makes observability allocate on the hot path fails the build.
		if rep.TelemetryProbe.DeltaAllocs > tables.MaxTelemetryDeltaAllocs {
			fmt.Fprintf(os.Stderr, "psharp-bench: telemetry overhead gate: +%.2f allocs/iteration exceeds the %.0f-alloc budget\n",
				rep.TelemetryProbe.DeltaAllocs, tables.MaxTelemetryDeltaAllocs)
			os.Exit(1)
		}
		// The interpreter-throughput gate: the bytecode engine must stay well
		// ahead of the tree-walker on the corpus.
		if rep.InterpPerf.Speedup < tables.MinInterpSpeedup {
			fmt.Fprintf(os.Stderr, "psharp-bench: interp perf gate: bytecode speedup %.2fx is below the %.0fx floor\n",
				rep.InterpPerf.Speedup, tables.MinInterpSpeedup)
			os.Exit(1)
		}
		// The DPOR gate: on the gated corpus subset, DPOR with the state cache
		// must reach every seeded bug in at most half the schedules random
		// search needs — the reduction's reason to exist.
		if !rep.DPORProbe.AllFound || rep.DPORProbe.WorstRatio > tables.MaxDPORScheduleRatio {
			fmt.Fprintf(os.Stderr, "psharp-bench: dpor gate: all bugs found=%v, worst schedule ratio %.2f (budget %.2f)\n",
				rep.DPORProbe.AllFound, rep.DPORProbe.WorstRatio, tables.MaxDPORScheduleRatio)
			os.Exit(1)
		}
		// The resume gate: a budget-split journaled campaign must converge on
		// the uninterrupted run's population exactly.
		if !rep.ResumeProbe.PopulationsMatch {
			fmt.Fprintf(os.Stderr, "psharp-bench: resume gate: split campaign diverged from the uninterrupted run (distinct %d vs %d, buggy %d vs %d, resumed slice %d of %d)\n",
				rep.ResumeProbe.DistinctResumed, rep.ResumeProbe.DistinctSolo,
				rep.ResumeProbe.BuggyResumed, rep.ResumeProbe.BuggySolo,
				rep.ResumeProbe.ResumedSliceIterations,
				rep.ResumeProbe.ScheduleBudget-rep.ResumeProbe.SplitAt)
			os.Exit(1)
		}
	}
}
