// Command psharp-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	psharp-bench -table 1
//	psharp-bench -table 2 [-iterations 10000] [-timeout 5m]
//	psharp-bench -table all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/psharp-go/psharp/internal/tables"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2 or all")
	iterations := flag.Int("iterations", 10000, "schedule budget per Table 2 cell (paper: 10,000)")
	timeout := flag.Duration("timeout", 5*time.Minute, "time budget per Table 2 cell (paper: 5m)")
	seed := flag.Uint64("seed", 20150628, "random scheduler seed")
	parallel := flag.Int("parallel", 1, "exploration workers per Table 2 cell (0 = GOMAXPROCS)")
	flag.Parse()
	if *parallel <= 0 {
		// tables treats Workers 0/1 as the paper's sequential setup, so
		// resolve the "all cores" spelling here.
		*parallel = runtime.GOMAXPROCS(0)
	}

	if *table == "1" || *table == "all" {
		fmt.Println("== Table 1: static data race analysis ==")
		rows, err := tables.RunTable1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		tables.PrintTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *table == "2" || *table == "all" {
		fmt.Printf("== Table 2: scheduler comparison (budget: %d schedules / %v per cell) ==\n",
			*iterations, *timeout)
		rows, err := tables.RunTable2(tables.Table2Options{
			Iterations: *iterations, Timeout: *timeout, Seed: *seed, Workers: *parallel,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		tables.PrintTable2(os.Stdout, rows)
	}
}
