// Command psharp-bench regenerates the paper's evaluation tables.
//
// Usage:
//
//	psharp-bench -table 1
//	psharp-bench -table 2 [-iterations 10000] [-timeout 5m]
//	psharp-bench -table all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/psharp-go/psharp/internal/tables"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2 or all")
	iterations := flag.Int("iterations", 10000, "schedule budget per Table 2 cell (paper: 10,000)")
	timeout := flag.Duration("timeout", 5*time.Minute, "time budget per Table 2 cell (paper: 5m)")
	seed := flag.Uint64("seed", 20150628, "random scheduler seed")
	flag.Parse()

	if *table == "1" || *table == "all" {
		fmt.Println("== Table 1: static data race analysis ==")
		rows, err := tables.RunTable1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		tables.PrintTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *table == "2" || *table == "all" {
		fmt.Printf("== Table 2: scheduler comparison (budget: %d schedules / %v per cell) ==\n",
			*iterations, *timeout)
		rows, err := tables.RunTable2(tables.Table2Options{
			Iterations: *iterations, Timeout: *timeout, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-bench:", err)
			os.Exit(1)
		}
		tables.PrintTable2(os.Stdout, rows)
	}
}
