// Command psharp-analyze runs the static data-race analysis on core-language
// source files.
//
// Usage:
//
//	psharp-analyze [-no-xsa] [-readonly] [-gives-up] file.psl...
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/psharp-go/psharp/analysis"
	"github.com/psharp-go/psharp/lang"
)

func main() {
	noXSA := flag.Bool("no-xsa", false, "disable the cross-state analysis")
	readOnly := flag.Bool("readonly", false, "enable the read-only extension")
	givesUp := flag.Bool("gives-up", false, "print the per-method give-up sets")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: psharp-analyze [-no-xsa] [-readonly] [-gives-up] file.psl...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psharp-analyze:", err)
			os.Exit(1)
		}
		prog, err := lang.Parse(string(data))
		if err == nil {
			err = lang.Check(prog)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "psharp-analyze: %s: %v\n", path, err)
			exit = 1
			continue
		}
		if *givesUp {
			gu := analysis.GivesUp(prog)
			keys := make([]string, 0, len(gu))
			for k := range gu {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("%s: gives up %v\n", k, gu[k])
			}
		}
		res := analysis.Analyze(prog, analysis.Options{XSA: !*noXSA, ReadOnly: *readOnly})
		if res.Verified() {
			fmt.Printf("%s: verified race-free (%d warnings discharged)\n",
				path, len(res.BaseViolations)+res.ReadOnlySuppressed)
			continue
		}
		exit = 1
		fmt.Printf("%s: %d potential data race(s):\n", path, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("  %v\n", v)
		}
	}
	os.Exit(exit)
}
