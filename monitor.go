package psharp

import "fmt"

// Specification monitors (paper Section 3: "safety and liveness properties
// are specified with monitors"). A monitor is a synchronous observer
// machine: it has states, event handlers and transitions declared on the
// same Schema builder as a machine, but it owns no event queue and is never
// scheduled. Instead, the runtime dispatches every sent and raised program
// event to each registered monitor synchronously, at the point of the send
// or raise, before the operation's scheduling point. A monitor handles the
// observed events its current state binds and skips all others, so a
// specification only names the events it cares about.
//
// Monitors express two specification classes the machine-local Assert
// cannot:
//
//   - Global safety invariants: a monitor accumulates observations across
//     machines and Asserts over them (e.g. two-phase-commit atomicity over
//     every participant's outcome). A failed monitor assertion ends the
//     iteration with BugMonitor, attributed to the monitor.
//   - Liveness ("something eventually happens"): monitor states carry
//     hot/cold annotations (StateBuilder.Hot, StateBuilder.Cold). A hot
//     state is a pending obligation. Under liveness checking
//     (TestConfig.LivenessTemperature) the testing controller tracks how
//     many consecutive scheduling decisions each monitor has spent hot —
//     its temperature — and reports BugLiveness when the threshold is
//     exceeded or a monitor is still hot at quiescence.
//
// Monitor actions are passive: they may Assert, Goto, Raise (to the monitor
// itself) and Logf, but must not Send, CreateMachine, Halt, or draw
// controlled nondeterminism — observing a program must not change it.
// Violations are reported as BugMonitor. Because monitors make no
// scheduling or nondeterminism decisions, they add no trace entries: a
// program explores byte-identical schedules with and without its monitors
// attached, and every monitor-found bug replays deterministically from its
// trace like any other bug.
//
// Monitors follow the machine declaration forms: a static monitor
// (StaticMachine) has its schema compiled once per registered name and
// reused across instances and recycled TestHarness iterations; a
// closure-form monitor (Machine) is recompiled per registration.

// monitorInstance is the runtime representation of one registered monitor.
type monitorInstance struct {
	rt     *Runtime
	name   string
	logic  Machine
	schema *compiledSchema
	ctx    *Context

	state string
	// hot caches whether the current state carries the hot annotation.
	hot bool
	// temp is the monitor's temperature: consecutive scheduling decisions
	// spent in a hot state. Maintained by the testing controller when
	// liveness checking is on.
	temp int
}

// RegisterMonitor registers a specification monitor under name and attaches
// a fresh instance to the runtime: from this point on, every sent or raised
// event is dispatched to it synchronously. Like machine registration, the
// factory must be a pure constructor. The initial state's entry action (if
// any) runs here, with a nil event.
//
// Monitor names share the machine-type rules: non-empty, no whitespace, no
// duplicate registration. A static monitor's schema is compiled and
// validated once per name and cached — a TestHarness keeps the cache and
// the monitor instance itself across recycled iterations, so re-registering
// the same monitor every iteration costs one logic allocation, not a
// schema rebuild.
func (r *Runtime) RegisterMonitor(name string, factory func() Machine) error {
	if name == "" || factory == nil {
		return fmt.Errorf("psharp: RegisterMonitor(%q): name and factory must be non-empty", name)
	}
	if err := validateTypeName("RegisterMonitor", name); err != nil {
		return err
	}
	logic := factory()

	// Schema resolution shares r.mu with machine registration (the schema
	// caches and the compile counter live there).
	r.mu.Lock()
	schema, known := r.monitorSchemas[name]
	if !known {
		var err error
		schema, err = r.compileMonitorLocked(name, logic)
		if err != nil {
			r.mu.Unlock()
			return err
		}
		if isStatic(logic) {
			r.monitorSchemas[name] = schema // static: compile once per name
		} else {
			r.monitorSchemas[name] = nil // remember the name uses the closure form
		}
	} else if schema == nil || !isStatic(logic) {
		// Rebuild path: the name is cached as closure form (nil entry, whose
		// actions close over the instance), or this registration's logic is
		// a closure form shadowing a cached static schema.
		var err error
		schema, err = r.compileMonitorLocked(name, logic)
		if err != nil {
			r.mu.Unlock()
			return err
		}
	}
	r.mu.Unlock()

	// The monitors list is guarded by monMu: in production mode, machines
	// created before this registration are already running and sending (the
	// SetupMonitored pattern registers monitors after setup), so appending
	// and initializing the instance must be mutually exclusive with
	// observeMonitors. In test mode the lock is uncontended.
	r.monMu.Lock()
	for _, m := range r.monitors {
		if m.name == name {
			r.monMu.Unlock()
			return fmt.Errorf("psharp: monitor %q registered twice", name)
		}
	}
	var mon *monitorInstance
	if c := r.test; c != nil {
		mon = c.acquireMonitor(name)
	}
	if mon == nil {
		mon = &monitorInstance{rt: r, name: name}
		mon.ctx = &Context{rt: r, mon: mon}
	}
	mon.logic, mon.schema = logic, schema
	mon.temp = 0
	r.monitors = append(r.monitors, mon)
	bug := mon.enterInitial()
	r.monCount.Store(int32(len(r.monitors)))
	r.monMu.Unlock()

	if bug != nil {
		r.monitorFailure(bug)
	}
	return nil
}

// isStatic reports whether logic uses the static declaration form.
func isStatic(logic Machine) bool {
	_, ok := logic.(StaticMachine)
	return ok
}

// compileMonitorLocked builds and validates a monitor schema, configuring
// through whichever declaration form the logic implements — a static
// monitor registered under a closure-cached name must not hit
// StaticBase.Configure's panic. Caller holds r.mu (schemaCompiles).
func (r *Runtime) compileMonitorLocked(name string, logic Machine) (*compiledSchema, error) {
	s := newSchema()
	if sm, ok := logic.(StaticMachine); ok {
		sm.ConfigureType(s)
	} else {
		logic.Configure(s)
	}
	cs, err := s.compileMonitor(name)
	if err != nil {
		return nil, err
	}
	r.schemaCompiles++
	return cs, nil
}

// MustRegisterMonitor is RegisterMonitor that panics on error.
func (r *Runtime) MustRegisterMonitor(name string, factory func() Machine) {
	if err := r.RegisterMonitor(name, factory); err != nil {
		panic(err)
	}
}

// enterInitial places the monitor in its initial state and runs the entry
// action, converting any panic into a monitor bug.
func (mon *monitorInstance) enterInitial() (bug *Bug) {
	mon.state = mon.schema.initial
	st := mon.schema.states[mon.state]
	mon.hot = st.isHot()
	if !st.hasEntry() {
		return nil
	}
	defer mon.convertPanic(&bug)
	return mon.execute(st.onEntry, st.onEntryM, nil)
}

// observe dispatches one observed program event to the monitor. Panics
// escaping monitor actions (failed Asserts, forbidden operations) are
// converted into a BugMonitor attributed to the monitor. This is the
// per-send hot path: the method-value defer keeps it allocation-free, so
// observation costs nothing beyond the dispatch itself.
func (mon *monitorInstance) observe(ev Event) (bug *Bug) {
	disp, ok := mon.schema.lookup(mon.state, eventKey(ev))
	if !ok {
		return nil // monitors handle only the events their current state binds
	}
	defer mon.convertPanic(&bug)
	return mon.dispatch(disp, ev)
}

// convertPanic is the deferred panic-to-bug conversion shared by the
// monitor dispatch entry points.
func (mon *monitorInstance) convertPanic(bug **Bug) {
	if r := recover(); r != nil {
		msg := fmt.Sprint(r)
		if v, ok := r.(assertFailed); ok {
			msg = v.msg
		}
		*bug = &Bug{Kind: BugMonitor, Monitor: mon.name, State: mon.state, Message: msg}
	}
}

func (mon *monitorInstance) dispatch(disp dispatchEntry, ev Event) *Bug {
	switch disp.kind {
	case dispatchIgnore:
		return nil
	case dispatchGoto:
		return mon.gotoState(disp.target, ev)
	case dispatchAction:
		return mon.execute(disp.action, disp.maction, ev)
	default:
		return &Bug{Kind: BugMonitor, Monitor: mon.name, State: mon.state, Message: "corrupt monitor dispatch table"}
	}
}

// execute runs a bound monitor action and applies its pending effect.
// Raised events chain synchronously through the monitor's own dispatch
// (monitors have no queue to round-trip through).
func (mon *monitorInstance) execute(fn Action, mfn MachineAction, ev Event) *Bug {
	mon.ctx.resetPending()
	mon.ctx.currentEvent = ev
	if mfn != nil {
		mfn(mon.logic, mon.ctx, ev)
	} else {
		fn(mon.ctx, ev)
	}
	return mon.applyPending(ev)
}

func (mon *monitorInstance) applyPending(trigger Event) *Bug {
	halt, gotoState, raised := mon.ctx.takePending()
	if halt {
		// Context.Halt already rejects monitors; this guards the invariant.
		return &Bug{Kind: BugMonitor, Monitor: mon.name, State: mon.state, Message: "monitors cannot Halt"}
	}
	if gotoState != "" {
		return mon.gotoState(gotoState, trigger)
	}
	if raised != nil {
		disp, ok := mon.schema.lookup(mon.state, eventKey(raised))
		if !ok {
			return &Bug{Kind: BugMonitor, Monitor: mon.name, State: mon.state,
				Message: fmt.Sprintf("raised event %s cannot be handled in state %q", eventName(raised), mon.state)}
		}
		return mon.dispatch(disp, raised)
	}
	return nil
}

// gotoState exits the current monitor state, enters target, updates the hot
// flag, and runs target's entry action with the observed event as payload.
// Entering a non-hot state discharges the liveness obligation: the
// temperature resets so a later hot period is measured from zero.
func (mon *monitorInstance) gotoState(target string, payload Event) *Bug {
	cur := mon.schema.states[mon.state]
	if cur != nil && cur.hasExit() {
		mon.ctx.resetPending()
		if cur.onExitM != nil {
			cur.onExitM(mon.logic, mon.ctx)
		} else {
			cur.onExit(mon.ctx)
		}
		if halt, g, r := mon.ctx.takePending(); halt || g != "" || r != nil {
			return &Bug{Kind: BugMonitor, Monitor: mon.name, State: mon.state,
				Message: "monitor exit actions must not call Goto, Raise or Halt"}
		}
	}
	if mon.rt.logging() {
		mon.rt.logf("monitor %s: %q -> %q", mon.name, mon.state, target)
	}
	mon.state = target
	st := mon.schema.states[target]
	if !st.isHot() {
		mon.temp = 0
	}
	mon.hot = st.isHot()
	if st.hasEntry() {
		return mon.execute(st.onEntry, st.onEntryM, payload)
	}
	return nil
}

// observeMonitors dispatches one program event to every registered monitor;
// called synchronously at Send and Raise operations, before their scheduling
// points. In production mode dispatch is serialized behind monMu (machines
// run concurrently, and registration may still be appending); the atomic
// counter keeps the no-monitor fast path lock-free. The testing runtime is
// already serialized and skips the lock.
func (r *Runtime) observeMonitors(ev Event) {
	if r.test == nil {
		if r.monCount.Load() == 0 {
			return
		}
		r.monMu.Lock()
		defer r.monMu.Unlock()
	} else if len(r.monitors) == 0 {
		return
	} else if r.test.observing {
		// Monitor verdicts are order-sensitive global state: mark the
		// executing step monitor-observed so DPOR treats any two observed
		// steps as dependent, and note that the monitors' hash components
		// may have moved.
		r.test.stepObserved = true
	}
	r.metrics.MonitorDispatches.Add(int64(len(r.monitors)))
	for _, mon := range r.monitors {
		if bug := mon.observe(ev); bug != nil {
			r.monitorFailure(bug)
			return
		}
	}
}

// monitorFailure routes a monitor-detected bug: the testing controller
// records it as the iteration's bug (the scheduling loop stops at the next
// decision), the production runtime fails as with any machine bug. Monitor
// dispatch happens on the observing sender's goroutine, but in test mode
// execution is serialized by the yield handshakes, so the write is ordered.
func (r *Runtime) monitorFailure(bug *Bug) {
	if c := r.test; c != nil {
		if c.bug == nil {
			c.bug = bug
		}
		return
	}
	r.fail(bug)
}
