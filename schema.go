package psharp

import (
	"fmt"
	"reflect"
)

// Machine is implemented by user machine types. Configure is the legacy
// closure declaration form: it is called once per instance, before the
// initial state's entry action runs, and declares the machine's states,
// transitions and action bindings on the Schema, with actions closing over
// the instance. Because each instance's actions are distinct closures, a
// closure-form schema must be rebuilt and revalidated for every create.
//
// Machine types whose schema does not depend on the instance should
// implement StaticMachine instead: the runtime then compiles the schema
// once per registered type and shares the frozen form across instances.
//
// Machines correspond to the paper's Machine subclasses; states to its State
// nested classes; OnEventGoto entries to the "State Transitions" table and
// OnEventDo entries to the "Action Bindings" table of Figure 1.
type Machine interface {
	Configure(s *Schema)
}

// StaticMachine is the type-level declaration form, matching the paper's
// design where a machine's transition and action-binding tables are
// properties of the machine class, compiled once. ConfigureType declares
// the schema for the type: it is called a single time, at registration, on
// one probe instance produced by the registered factory. Bound actions use
// the static signatures (MachineAction, MachineExitAction), which receive
// the machine instance as a parameter instead of closing over it.
//
// ConfigureType must be instance-independent: it may read fields the
// factory sets identically on every instance (registration parameters such
// as a buggy-variant flag), but must not capture the receiver in action
// bodies — the receiver it runs on is a discarded probe, not the machine
// the actions will later run against.
//
// Static machines embed StaticBase to satisfy the Machine interface.
type StaticMachine interface {
	Machine
	ConfigureType(s *Schema)
}

// StaticBase is embedded by static-form machine types to satisfy the legacy
// Machine interface. Its Configure panics: a static machine's schema is
// declared once per type via ConfigureType, never per instance.
type StaticBase struct{}

// Configure implements Machine by rejecting per-instance configuration.
func (StaticBase) Configure(*Schema) {
	panic("psharp: static machine configured per instance; its schema is declared by ConfigureType")
}

// MachineFunc adapts a plain configuration function to the Machine
// interface, for machines whose state lives in closed-over variables.
type MachineFunc func(*Schema)

// Configure implements Machine.
func (f MachineFunc) Configure(s *Schema) { f(s) }

// StaticMachineFunc adapts a standalone declaration function to the
// StaticMachine interface, for machines that keep no per-instance state in
// their actions (or keep it in the events they exchange). The function must
// be instance-independent: it runs once per registered type and the
// resulting schema is shared by every instance.
type StaticMachineFunc func(*Schema)

// Configure implements Machine; the declaration is instance-independent by
// construction, so delegating is safe even on legacy paths.
func (f StaticMachineFunc) Configure(s *Schema) { f(s) }

// ConfigureType implements StaticMachine.
func (f StaticMachineFunc) ConfigureType(s *Schema) { f(s) }

// Action is the signature of entry actions and event handlers in the
// closure declaration form. Actions must be sequential: they must not spawn
// goroutines or block on anything other than the Context operations.
type Action func(ctx *Context, ev Event)

// ExitAction runs when a state is exited via a transition.
type ExitAction func(ctx *Context)

// MachineAction is the static-form action signature: the machine instance
// arrives as an explicit parameter (assert it to the concrete type) instead
// of being closed over, so the schema the action is bound in can be
// compiled once per type and shared across instances and goroutines. The
// sequentiality rules of Action apply.
type MachineAction func(m Machine, ctx *Context, ev Event)

// MachineExitAction is the static-form exit action signature; see
// MachineAction.
type MachineExitAction func(m Machine, ctx *Context)

// dispatchKind says how a state reacts to an event type.
type dispatchKind int

const (
	dispatchNone dispatchKind = iota
	dispatchAction
	dispatchGoto
	dispatchDefer
	dispatchIgnore
)

type dispatchEntry struct {
	kind    dispatchKind
	target  string        // goto target state
	action  Action        // closure-form bound action (dispatchAction)
	maction MachineAction // static-form bound action (dispatchAction)
	// event is the bound event type's display name, resolved once at bind
	// time so coverage recording never pays per-dispatch reflection.
	event string
}

// handlerBinding is one (event type -> dispatch) binding of a state. States
// hold a small slice of bindings rather than a map: machines bind a handful
// of event types per state, so a linear scan over inline pairs beats a map
// on lookup and costs a fraction of the allocations to build — which
// matters because schemas are rebuilt for every machine of every
// exploration iteration.
type handlerBinding struct {
	key   reflect.Type
	entry dispatchEntry
}

// stateTemp is a state's liveness temperature annotation. Only monitor
// states carry one: hot marks a pending liveness obligation ("something must
// eventually happen"), cold (or no annotation) marks it discharged.
type stateTemp int

const (
	tempNone stateTemp = iota
	tempHot
	tempCold
)

// stateSpec is the compiled form of one declared state. A state holds at
// most one entry and one exit action, in either declaration form.
type stateSpec struct {
	name     string
	temp     stateTemp
	onEntry  Action
	onEntryM MachineAction
	onExit   ExitAction
	onExitM  MachineExitAction
	handlers []handlerBinding
}

// isHot reports whether the state carries the hot liveness annotation.
func (st *stateSpec) isHot() bool { return st.temp == tempHot }

// hasEntry reports whether the state declares an entry action in any form.
func (st *stateSpec) hasEntry() bool { return st.onEntry != nil || st.onEntryM != nil }

// hasExit reports whether the state declares an exit action in any form.
func (st *stateSpec) hasExit() bool { return st.onExit != nil || st.onExitM != nil }

// lookup returns the dispatch entry bound to event type t, if any.
func (st *stateSpec) lookup(t reflect.Type) (dispatchEntry, bool) {
	for i := range st.handlers {
		if st.handlers[i].key == t {
			return st.handlers[i].entry, true
		}
	}
	return dispatchEntry{}, false
}

// Schema collects a machine's state-machine structure. It is passed to
// Machine.Configure and then validated and frozen.
type Schema struct {
	initial string
	states  map[string]*stateSpec
	order   []string
	errs    []error
}

func newSchema() *Schema {
	return &Schema{states: make(map[string]*stateSpec)}
}

// Start declares the initial state of the machine and returns its builder.
// Exactly one state must be declared with Start.
func (s *Schema) Start(name string) *StateBuilder {
	if s.initial != "" {
		s.errs = append(s.errs, fmt.Errorf("duplicate start state: %q and %q", s.initial, name))
	}
	s.initial = name
	return s.State(name)
}

// State declares (or returns the builder for) a state with the given name.
func (s *Schema) State(name string) *StateBuilder {
	if name == "" {
		s.errs = append(s.errs, fmt.Errorf("state name must be non-empty"))
	}
	st, ok := s.states[name]
	if !ok {
		st = &stateSpec{name: name}
		s.states[name] = st
		s.order = append(s.order, name)
	}
	return &StateBuilder{schema: s, state: st}
}

// StateBuilder declares the behaviour of a single state.
type StateBuilder struct {
	schema *Schema
	state  *stateSpec
}

// Name returns the state's name.
func (b *StateBuilder) Name() string { return b.state.name }

// Hot marks the state as a liveness obligation: while a monitor sits in a
// hot state, something is still required to eventually happen (the paper's
// "eventually responds" class of specifications). Under liveness checking
// (TestConfig.LivenessTemperature) a monitor that stays hot for too many
// consecutive scheduling decisions, or is still hot when the program
// quiesces, fails the iteration with BugLiveness. Hot and cold annotations
// are only meaningful on monitor states; Register rejects machine schemas
// that carry them.
func (b *StateBuilder) Hot() *StateBuilder {
	if b.state.temp != tempNone {
		b.schema.err("state %q: duplicate hot/cold annotation", b.state.name)
	}
	b.state.temp = tempHot
	return b
}

// Cold marks the state as a discharged liveness obligation. It is the
// default for unannotated states; declaring it explicitly documents the
// specification's intent (see Hot).
func (b *StateBuilder) Cold() *StateBuilder {
	if b.state.temp != tempNone {
		b.schema.err("state %q: duplicate hot/cold annotation", b.state.name)
	}
	b.state.temp = tempCold
	return b
}

// OnEntry registers the state's entry action. The action receives the event
// whose transition entered the state (the payload in the paper's terms); for
// the initial state it receives the creation payload event, which may be nil.
func (b *StateBuilder) OnEntry(fn Action) *StateBuilder {
	if b.state.hasEntry() {
		b.schema.err("state %q: duplicate OnEntry", b.state.name)
	}
	b.state.onEntry = fn
	return b
}

// OnEntryM registers a static-form entry action; see OnEntry and
// MachineAction.
func (b *StateBuilder) OnEntryM(fn MachineAction) *StateBuilder {
	if b.state.hasEntry() {
		b.schema.err("state %q: duplicate OnEntry", b.state.name)
	}
	b.state.onEntryM = fn
	return b
}

// OnExit registers the state's exit action, run when leaving via a goto.
func (b *StateBuilder) OnExit(fn ExitAction) *StateBuilder {
	if b.state.hasExit() {
		b.schema.err("state %q: duplicate OnExit", b.state.name)
	}
	b.state.onExit = fn
	return b
}

// OnExitM registers a static-form exit action; see OnExit and
// MachineExitAction.
func (b *StateBuilder) OnExitM(fn MachineExitAction) *StateBuilder {
	if b.state.hasExit() {
		b.schema.err("state %q: duplicate OnExit", b.state.name)
	}
	b.state.onExitM = fn
	return b
}

// OnEventGoto registers a transition: when an event with proto's dynamic
// type is dequeued in this state, the machine exits the state and enters
// target, passing the event to target's entry action.
func (b *StateBuilder) OnEventGoto(proto Event, target string) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchGoto, target: target})
	return b
}

// OnEventDo registers an action binding: the event is handled by fn and the
// machine stays in the current state.
func (b *StateBuilder) OnEventDo(proto Event, fn Action) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchAction, action: fn})
	return b
}

// OnEventDoM registers a static-form action binding; see OnEventDo and
// MachineAction.
func (b *StateBuilder) OnEventDoM(proto Event, fn MachineAction) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchAction, maction: fn})
	return b
}

// Defer keeps events of proto's type in the queue while in this state; they
// become available again after a transition to a state that handles them.
func (b *StateBuilder) Defer(proto Event) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchDefer})
	return b
}

// Ignore silently drops events of proto's type while in this state.
func (b *StateBuilder) Ignore(proto Event) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchIgnore})
	return b
}

func (b *StateBuilder) bind(proto Event, e dispatchEntry) {
	if proto == nil {
		b.schema.err("state %q: nil event prototype", b.state.name)
		return
	}
	key := eventKey(proto)
	// The paper (Section 6.1) requires the runtime to report an error if an
	// event can be handled in more than one way in the same state; we reject
	// the ambiguity statically when the machine is configured.
	if _, dup := b.state.lookup(key); dup {
		b.schema.err("state %q: event %s bound more than once", b.state.name, eventName(proto))
		return
	}
	e.event = eventName(proto)
	b.state.handlers = append(b.state.handlers, handlerBinding{key: key, entry: e})
}

func (s *Schema) err(format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf(format, args...))
}

// validate checks the frozen schema and returns a descriptive error listing
// every problem found.
func (s *Schema) validate(machineType string) error {
	return s.validateAs("machine", machineType)
}

func (s *Schema) validateAs(kind, machineType string) error {
	errs := append([]error(nil), s.errs...)
	if s.initial == "" {
		errs = append(errs, fmt.Errorf("no start state declared"))
	}
	for _, name := range s.order { // declaration order: deterministic, no copy
		st := s.states[name]
		for i := range st.handlers {
			if e := st.handlers[i].entry; e.kind == dispatchGoto {
				if _, ok := s.states[e.target]; !ok {
					errs = append(errs, fmt.Errorf("state %q: goto target %q is not a declared state", name, e.target))
				}
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("%s %q: invalid schema:", kind, machineType)
	for _, e := range errs {
		msg += "\n\t" + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// compiledSchema is the frozen, validated form of a machine Schema: the
// paper's per-class transition and action-binding tables. It is immutable
// after compile, and therefore safe to share across machine instances and
// goroutines — the runtime caches one per registered static machine type,
// and a TestHarness keeps the cache across recycled iterations.
type compiledSchema struct {
	machineType string
	initial     string
	states      map[string]*stateSpec
}

// compile validates the schema and freezes it. The builder hands its state
// table to the compiled form and must not be used afterwards. Machine
// schemas must not carry hot/cold liveness annotations — those belong to
// monitors (compileMonitor).
func (s *Schema) compile(machineType string) (*compiledSchema, error) {
	for _, name := range s.order {
		if s.states[name].temp != tempNone {
			s.err("state %q: hot/cold annotations are only allowed on monitor states", name)
		}
	}
	if err := s.validate(machineType); err != nil {
		return nil, err
	}
	return &compiledSchema{machineType: machineType, initial: s.initial, states: s.states}, nil
}

// compileMonitor validates the schema under the monitor rules and freezes
// it. Monitors are synchronous observers without event queues, so Defer
// bindings are meaningless and rejected.
func (s *Schema) compileMonitor(name string) (*compiledSchema, error) {
	for _, sn := range s.order {
		st := s.states[sn]
		for i := range st.handlers {
			if st.handlers[i].entry.kind == dispatchDefer {
				s.err("state %q: monitors cannot Defer events (they have no queue)", sn)
			}
		}
	}
	if err := s.validateAs("monitor", name); err != nil {
		return nil, err
	}
	return &compiledSchema{machineType: name, initial: s.initial, states: s.states}, nil
}

// lookup returns the dispatch entry for event type t in state name.
func (cs *compiledSchema) lookup(state string, t reflect.Type) (dispatchEntry, bool) {
	st, ok := cs.states[state]
	if !ok {
		return dispatchEntry{}, false
	}
	return st.lookup(t)
}

// NumStates returns the number of declared states (program statistics for
// Table 1 reporting).
func (s *Schema) NumStates() int { return len(s.states) }

// NumTransitions returns the number of goto bindings across all states.
func (s *Schema) NumTransitions() int { return s.countKind(dispatchGoto) }

// NumActionBindings returns the number of do bindings across all states.
func (s *Schema) NumActionBindings() int { return s.countKind(dispatchAction) }

func (s *Schema) countKind(k dispatchKind) int {
	n := 0
	for _, st := range s.states {
		for i := range st.handlers {
			if st.handlers[i].entry.kind == k {
				n++
			}
		}
	}
	return n
}
