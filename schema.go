package psharp

import (
	"fmt"
	"reflect"
)

// Machine is implemented by user machine types. Configure is called once per
// instance, before the initial state's entry action runs; it declares the
// machine's states, transitions and action bindings on the Schema.
//
// Machines correspond to the paper's Machine subclasses; states to its State
// nested classes; OnEventGoto entries to the "State Transitions" table and
// OnEventDo entries to the "Action Bindings" table of Figure 1.
type Machine interface {
	Configure(s *Schema)
}

// MachineFunc adapts a plain configuration function to the Machine
// interface, for machines whose state lives in closed-over variables.
type MachineFunc func(*Schema)

// Configure implements Machine.
func (f MachineFunc) Configure(s *Schema) { f(s) }

// Action is the signature of entry actions and event handlers. Actions must
// be sequential: they must not spawn goroutines or block on anything other
// than the Context operations.
type Action func(ctx *Context, ev Event)

// ExitAction runs when a state is exited via a transition.
type ExitAction func(ctx *Context)

// dispatchKind says how a state reacts to an event type.
type dispatchKind int

const (
	dispatchNone dispatchKind = iota
	dispatchAction
	dispatchGoto
	dispatchDefer
	dispatchIgnore
)

type dispatchEntry struct {
	kind   dispatchKind
	target string // goto target state
	action Action // bound action (dispatchAction, or entry action of goto)
}

// handlerBinding is one (event type -> dispatch) binding of a state. States
// hold a small slice of bindings rather than a map: machines bind a handful
// of event types per state, so a linear scan over inline pairs beats a map
// on lookup and costs a fraction of the allocations to build — which
// matters because schemas are rebuilt for every machine of every
// exploration iteration.
type handlerBinding struct {
	key   reflect.Type
	entry dispatchEntry
}

// stateSpec is the compiled form of one declared state.
type stateSpec struct {
	name     string
	onEntry  Action
	onExit   ExitAction
	handlers []handlerBinding
}

// lookup returns the dispatch entry bound to event type t, if any.
func (st *stateSpec) lookup(t reflect.Type) (dispatchEntry, bool) {
	for i := range st.handlers {
		if st.handlers[i].key == t {
			return st.handlers[i].entry, true
		}
	}
	return dispatchEntry{}, false
}

// Schema collects a machine's state-machine structure. It is passed to
// Machine.Configure and then validated and frozen.
type Schema struct {
	initial string
	states  map[string]*stateSpec
	order   []string
	errs    []error
}

func newSchema() *Schema {
	return &Schema{states: make(map[string]*stateSpec)}
}

// Start declares the initial state of the machine and returns its builder.
// Exactly one state must be declared with Start.
func (s *Schema) Start(name string) *StateBuilder {
	if s.initial != "" {
		s.errs = append(s.errs, fmt.Errorf("duplicate start state: %q and %q", s.initial, name))
	}
	s.initial = name
	return s.State(name)
}

// State declares (or returns the builder for) a state with the given name.
func (s *Schema) State(name string) *StateBuilder {
	if name == "" {
		s.errs = append(s.errs, fmt.Errorf("state name must be non-empty"))
	}
	st, ok := s.states[name]
	if !ok {
		st = &stateSpec{name: name}
		s.states[name] = st
		s.order = append(s.order, name)
	}
	return &StateBuilder{schema: s, state: st}
}

// StateBuilder declares the behaviour of a single state.
type StateBuilder struct {
	schema *Schema
	state  *stateSpec
}

// Name returns the state's name.
func (b *StateBuilder) Name() string { return b.state.name }

// OnEntry registers the state's entry action. The action receives the event
// whose transition entered the state (the payload in the paper's terms); for
// the initial state it receives the creation payload event, which may be nil.
func (b *StateBuilder) OnEntry(fn Action) *StateBuilder {
	if b.state.onEntry != nil {
		b.schema.err("state %q: duplicate OnEntry", b.state.name)
	}
	b.state.onEntry = fn
	return b
}

// OnExit registers the state's exit action, run when leaving via a goto.
func (b *StateBuilder) OnExit(fn ExitAction) *StateBuilder {
	if b.state.onExit != nil {
		b.schema.err("state %q: duplicate OnExit", b.state.name)
	}
	b.state.onExit = fn
	return b
}

// OnEventGoto registers a transition: when an event with proto's dynamic
// type is dequeued in this state, the machine exits the state and enters
// target, passing the event to target's entry action.
func (b *StateBuilder) OnEventGoto(proto Event, target string) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchGoto, target: target})
	return b
}

// OnEventDo registers an action binding: the event is handled by fn and the
// machine stays in the current state.
func (b *StateBuilder) OnEventDo(proto Event, fn Action) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchAction, action: fn})
	return b
}

// Defer keeps events of proto's type in the queue while in this state; they
// become available again after a transition to a state that handles them.
func (b *StateBuilder) Defer(proto Event) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchDefer})
	return b
}

// Ignore silently drops events of proto's type while in this state.
func (b *StateBuilder) Ignore(proto Event) *StateBuilder {
	b.bind(proto, dispatchEntry{kind: dispatchIgnore})
	return b
}

func (b *StateBuilder) bind(proto Event, e dispatchEntry) {
	if proto == nil {
		b.schema.err("state %q: nil event prototype", b.state.name)
		return
	}
	key := eventKey(proto)
	// The paper (Section 6.1) requires the runtime to report an error if an
	// event can be handled in more than one way in the same state; we reject
	// the ambiguity statically when the machine is configured.
	if _, dup := b.state.lookup(key); dup {
		b.schema.err("state %q: event %s bound more than once", b.state.name, eventName(proto))
		return
	}
	b.state.handlers = append(b.state.handlers, handlerBinding{key: key, entry: e})
}

func (s *Schema) err(format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf(format, args...))
}

// validate checks the frozen schema and returns a descriptive error listing
// every problem found.
func (s *Schema) validate(machineType string) error {
	errs := append([]error(nil), s.errs...)
	if s.initial == "" {
		errs = append(errs, fmt.Errorf("no start state declared"))
	}
	for _, name := range s.order { // declaration order: deterministic, no copy
		st := s.states[name]
		for i := range st.handlers {
			if e := st.handlers[i].entry; e.kind == dispatchGoto {
				if _, ok := s.states[e.target]; !ok {
					errs = append(errs, fmt.Errorf("state %q: goto target %q is not a declared state", name, e.target))
				}
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("machine %q: invalid schema:", machineType)
	for _, e := range errs {
		msg += "\n\t" + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// lookup returns the dispatch entry for event type t in state name.
func (s *Schema) lookup(state string, t reflect.Type) (dispatchEntry, bool) {
	st, ok := s.states[state]
	if !ok {
		return dispatchEntry{}, false
	}
	return st.lookup(t)
}

// NumStates returns the number of declared states (program statistics for
// Table 1 reporting).
func (s *Schema) NumStates() int { return len(s.states) }

// NumTransitions returns the number of goto bindings across all states.
func (s *Schema) NumTransitions() int { return s.countKind(dispatchGoto) }

// NumActionBindings returns the number of do bindings across all states.
func (s *Schema) NumActionBindings() int { return s.countKind(dispatchAction) }

func (s *Schema) countKind(k dispatchKind) int {
	n := 0
	for _, st := range s.states {
		for i := range st.handlers {
			if st.handlers[i].entry.kind == k {
				n++
			}
		}
	}
	return n
}
