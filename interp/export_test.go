package interp

// Test-only accessors for the compile-once counters, mirroring how the
// schema cache is observed: tests read the counter around a batch of Run
// calls and assert exactly one compilation per Program.

// SchemaCompiles returns the cumulative number of machine-schema
// compilations.
func SchemaCompiles() int64 { return schemaCompiles.Load() }

// BytecodeCompiles returns the cumulative number of program bytecode
// compilations.
func BytecodeCompiles() int64 { return bytecodeCompiles.Load() }
