package interp

// The differential harness: the tree-walker is the semantic reference, the
// bytecode VM must be observationally identical. Every Table 1 corpus
// program (racy and non-racy variants) runs under both engines across many
// seeds, and every observable of the Outcome — step counts, quiescence,
// bound exhaustion, fault messages, race reports, hot monitors, and the
// exact coverage multiset — must match. Fault paths that the corpus never
// exercises get their own miniature programs below.

import (
	"reflect"
	"testing"

	"github.com/psharp-go/psharp/internal/benchsrc"
	"github.com/psharp-go/psharp/lang"
	"github.com/psharp-go/psharp/obs"
)

// runBoth executes one seed under both engines with race detection and
// coverage attached and fails on any observable divergence.
func runBoth(t *testing.T, prog *lang.Program, main string, seed uint64) {
	t.Helper()
	var covW, covB obs.StateEventCoverage
	w := Run(prog, main, Options{Engine: EngineWalk, Seed: seed, RaceDetect: true, Coverage: &covW})
	b := Run(prog, main, Options{Engine: EngineBytecode, Seed: seed, RaceDetect: true, Coverage: &covB})
	if w.Steps != b.Steps {
		t.Fatalf("seed %d: steps walk=%d bytecode=%d", seed, w.Steps, b.Steps)
	}
	if w.Quiescent != b.Quiescent || w.BoundReached != b.BoundReached {
		t.Fatalf("seed %d: termination walk=(q=%v bound=%v) bytecode=(q=%v bound=%v)",
			seed, w.Quiescent, w.BoundReached, b.Quiescent, b.BoundReached)
	}
	if errString(w.Err) != errString(b.Err) {
		t.Fatalf("seed %d: error walk=%q bytecode=%q", seed, errString(w.Err), errString(b.Err))
	}
	if !reflect.DeepEqual(w.Races, b.Races) {
		t.Fatalf("seed %d: races walk=%v bytecode=%v", seed, w.Races, b.Races)
	}
	if !reflect.DeepEqual(w.HotMonitors, b.HotMonitors) {
		t.Fatalf("seed %d: hot monitors walk=%v bytecode=%v", seed, w.HotMonitors, b.HotMonitors)
	}
	if sw, sb := covW.Snapshot(), covB.Snapshot(); !reflect.DeepEqual(sw, sb) {
		t.Fatalf("seed %d: coverage walk=%v bytecode=%v", seed, sw, sb)
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestDifferentialCorpus locks the two engines together over the full
// Table 1 corpus: all 21 program variants, 12 seeds each.
func TestDifferentialCorpus(t *testing.T) {
	for _, bm := range benchsrc.All() {
		variants := []bool{false}
		if bm.HasRacy {
			variants = append(variants, true)
		}
		for _, racy := range variants {
			bm, racy := bm, racy
			label := bm.Name
			if racy {
				label += "_racy"
			}
			t.Run(label, func(t *testing.T) {
				t.Parallel()
				prog, err := benchsrc.Source(bm.Name, racy)
				if err != nil {
					t.Fatalf("source: %v", err)
				}
				main := prog.Machines[0].Name
				for seed := uint64(1); seed <= 12; seed++ {
					runBoth(t, prog, main, seed)
				}
			})
		}
	}
}

// faultSrcs are miniature programs driving every fault path the corpus
// avoids, so the engines' error messages (and the step counts at failure)
// stay byte-identical.
var faultSrcs = map[string]string{
	"division_by_zero": `
machine main_m {
	start state Boot {
		entry {
			var a: int;
			var b: int;
			b := 0;
			a := 1 / b;
			assert a == 0;
		}
	}
}`,
	"modulo_by_zero": `
machine main_m {
	start state Boot {
		entry {
			var a: int;
			var b: int;
			b := 0;
			a := 1 % b;
			assert a == 0;
		}
	}
}`,
	"assertion": `
machine main_m {
	start state Boot {
		entry {
			assert 1 == 2;
		}
	}
}`,
	"unhandled_event": `
event eBoom;
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create sink();
			send w, eBoom;
		}
	}
}
machine sink {
	start state Idle {
	}
}`,
	"loop_bound": `
machine main_m {
	start state Boot {
		entry {
			var i: int;
			i := 0;
			while (true) {
				i := i + 1;
			}
		}
	}
}`,
	"undefined_variable": `
machine main_m {
	start state Boot {
		entry {
			var c: int;
			c := 1;
			if (c == 2) {
				var u: int;
				u := 3;
			}
			c := u;
		}
	}
}`,
	"raise_in_nested_call": `
event eX;
machine main_m {
	start state Boot {
		entry {
			var r: int;
			r := this.boom();
			assert r == 1;
		}
	}
	method boom(): int {
		raise eX;
		return 1;
	}
}`,
	"send_to_invalid_machine": `
event eX;
machine main_m {
	start state Boot {
		entry {
			var m: machine;
			send m, eX;
		}
	}
}`,
	"monitor_entry_assert": `
monitor bad_m {
	start state S {
		entry {
			assert false;
		}
	}
}
machine main_m {
	start state Boot {
		entry {
			var x: int;
			x := 0;
		}
	}
}`,
	"monitor_handler_assert": `
event eGo;
monitor watch_m {
	var hits: int;
	start state S {
		on eGo do note;
	}
	method note() {
		this.hits := this.hits + 1;
		assert this.hits == 0;
	}
}
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create main_m2();
			send w, eGo;
		}
	}
}
machine main_m2 {
	start state Idle {
		ignore eGo;
	}
}`,
}

// TestDifferentialFaults runs each fault program under both engines and
// requires identical error text and step accounting.
func TestDifferentialFaults(t *testing.T) {
	for name, src := range faultSrcs {
		t.Run(name, func(t *testing.T) {
			prog := load(t, src)
			w := Run(prog, "main_m", Options{Engine: EngineWalk, Seed: 1})
			b := Run(prog, "main_m", Options{Engine: EngineBytecode, Seed: 1})
			if w.Err == nil {
				t.Fatal("fault program did not fault under the walker")
			}
			if errString(w.Err) != errString(b.Err) {
				t.Fatalf("error walk=%q bytecode=%q", errString(w.Err), errString(b.Err))
			}
			if w.Steps != b.Steps {
				t.Fatalf("steps walk=%d bytecode=%d", w.Steps, b.Steps)
			}
			if IsAssertion(w.Err) != IsAssertion(b.Err) {
				t.Fatal("assertion classification diverged")
			}
		})
	}
}
