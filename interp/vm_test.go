package interp

import (
	"strings"
	"sync"
	"testing"

	"github.com/psharp-go/psharp/obs"
)

// TestBytecodeCompiledOncePerProgram asserts the compile-once discipline
// under concurrency: parallel Run calls over one Program share a single
// bytecode compilation through the AuxLoad/AuxStore cache.
func TestBytecodeCompiledOncePerProgram(t *testing.T) {
	prog := load(t, `
event ePing;
machine main_m {
	start state Boot {
		entry {
			var a: machine;
			a := create echo();
			send a, ePing;
		}
	}
}
machine echo {
	var hits: int;
	start state Waiting {
		on ePing do count;
	}
	method count() { this.hits := this.hits + 1; }
}
`)
	before := BytecodeCompiles()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seed := uint64(1); seed <= 25; seed++ {
				out := Run(prog, "main_m", Options{Seed: seed ^ uint64(w)<<32})
				if out.Err != nil || !out.Quiescent {
					t.Errorf("worker %d seed %d: err=%v quiescent=%v", w, seed, out.Err, out.Quiescent)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := BytecodeCompiles() - before; got != 1 {
		t.Fatalf("bytecode compiles across 200 concurrent runs = %d, want 1 per Program", got)
	}
	if compiledFor(prog) != compiledFor(prog) {
		t.Fatal("compiledFor returned distinct compilations for the same Program")
	}
}

// TestVMRaisedEventGoto drives the raised-event goto path through the
// bytecode engine explicitly and checks its coverage hit (the path that
// bypasses handle and records its own transition).
func TestVMRaisedEventGoto(t *testing.T) {
	prog := load(t, coverageSrc)
	var cov obs.StateEventCoverage
	out := Run(prog, "main_m", Options{Engine: EngineBytecode, Seed: 1, Coverage: &cov})
	if out.Err != nil || !out.Quiescent {
		t.Fatalf("err=%v quiescent=%v", out.Err, out.Quiescent)
	}
	snap := cov.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("coverage = %+v, want the eReq do and the raised eAck goto", snap)
	}
	if snap[0].Event != "eAck" || snap[0].State != "Waiting" {
		t.Fatalf("raised-goto transition not recorded: %+v", snap)
	}
}

// TestVMRaisedEventDeferred checks a raised event deferred by the current
// state: it must join the machine's own queue and be delivered after the
// state change, identically under both engines.
func TestVMRaisedEventDeferred(t *testing.T) {
	prog := load(t, `
event eWork;
event eOpen;
machine driver {
	start state Boot {
		entry {
			var w: machine;
			w := create worker();
			send w, eOpen;
		}
	}
}
machine worker {
	var got: int;
	start state Closed {
		entry {
			raise eWork;
		}
		defer eWork;
		on eOpen goto Open;
	}
	state Open {
		on eWork do take;
	}
	method take() {
		this.got := this.got + 1;
		assert this.got == 1;
	}
}
`)
	for _, eng := range []Engine{EngineWalk, EngineBytecode} {
		var cov obs.StateEventCoverage
		out := Run(prog, "driver", Options{Engine: eng, Seed: 1, Coverage: &cov})
		if out.Err != nil || !out.Quiescent {
			t.Fatalf("%v: err=%v quiescent=%v", eng, out.Err, out.Quiescent)
		}
		if got := cov.Distinct(); got != 2 {
			t.Fatalf("%v: coverage = %+v, want eOpen goto + deferred eWork do", eng, cov.Snapshot())
		}
	}
}

// TestVMRaisedEventIgnored checks a raised event ignored by the current
// state: dropped silently, no transition, no coverage.
func TestVMRaisedEventIgnored(t *testing.T) {
	prog := load(t, `
event eNoise;
machine main_m {
	start state S {
		entry {
			raise eNoise;
		}
		ignore eNoise;
	}
}
`)
	for _, eng := range []Engine{EngineWalk, EngineBytecode} {
		var cov obs.StateEventCoverage
		out := Run(prog, "main_m", Options{Engine: eng, Seed: 1, Coverage: &cov})
		if out.Err != nil || !out.Quiescent {
			t.Fatalf("%v: err=%v quiescent=%v", eng, out.Err, out.Quiescent)
		}
		if cov.Distinct() != 0 {
			t.Fatalf("%v: ignored raise recorded coverage: %+v", eng, cov.Snapshot())
		}
		if out.Steps != 1 {
			t.Fatalf("%v: steps = %d, want 1 (create only)", eng, out.Steps)
		}
	}
}

// TestVMScanPrecedence checks queue-scan precedence in the VM: an ignored
// event is dequeued during the enabled scan without blocking the
// dispatchable event behind it, and a deferred event is skipped, not
// dropped.
func TestVMScanPrecedence(t *testing.T) {
	prog := load(t, `
event eJunk;
event eLater;
event ePing;
event eOpen;
machine driver {
	start state Boot {
		entry {
			var w: machine;
			w := create worker();
			send w, eJunk;
			send w, eLater;
			send w, ePing;
			send w, eOpen;
		}
	}
}
machine worker {
	var pings: int;
	var lates: int;
	start state S {
		ignore eJunk;
		defer eLater;
		on ePing do pong;
		on eOpen goto Open;
	}
	state Open {
		on eLater do late;
	}
	method pong() { this.pings := this.pings + 1; }
	method late() {
		this.lates := this.lates + 1;
		assert this.pings == 1;
	}
}
`)
	for _, eng := range []Engine{EngineWalk, EngineBytecode} {
		var cov obs.StateEventCoverage
		out := Run(prog, "driver", Options{Engine: eng, Seed: 1, Coverage: &cov})
		if out.Err != nil || !out.Quiescent {
			t.Fatalf("%v: err=%v quiescent=%v", eng, out.Err, out.Quiescent)
		}
		// eJunk ignored (no hit); ePing do, eOpen goto, deferred eLater do.
		if got := cov.Distinct(); got != 3 {
			t.Fatalf("%v: coverage = %+v, want 3 transitions", eng, cov.Snapshot())
		}
	}
}

// TestDisassemble checks the listing is deterministic and names the
// interned operands symbolically.
func TestDisassemble(t *testing.T) {
	prog := load(t, coverageSrc)
	lst := Disassemble(prog)
	if lst != Disassemble(prog) {
		t.Fatal("Disassemble is not deterministic")
	}
	for _, want := range []string{
		"machine worker:",
		"monitor resp_m:",
		"on eReq do worker.ack",
		"func worker.ack (params=0 locals=0):",
		"raise",
		"(eAck)",
		"create",
		"send",
		"state Pending (hot):",
	} {
		if !strings.Contains(lst, want) {
			t.Fatalf("listing missing %q:\n%s", want, lst)
		}
	}
}

// TestParseEngine checks the CLI engine names round-trip.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
	}{{"walk", EngineWalk}, {"bytecode", EngineBytecode}} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("Engine(%q).String() = %q", tc.in, got.String())
		}
	}
	if _, err := ParseEngine("jit"); err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}
}
