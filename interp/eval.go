package interp

import (
	"fmt"

	"github.com/psharp-go/psharp/internal/vclock"
	"github.com/psharp-go/psharp/lang"
)

// execStmts runs statements; it returns (returned, raisedEvent, err).
func (in *Interp) execStmts(env *frame, stmts []lang.Stmt) (bool, *raised, error) {
	for _, s := range stmts {
		done, r, err := in.execStmt(env, s)
		if err != nil || done || r != nil {
			return done, r, err
		}
	}
	return false, nil, nil
}

func (in *Interp) execStmt(env *frame, s lang.Stmt) (bool, *raised, error) {
	switch st := s.(type) {
	case *lang.LocalDecl:
		env.locals[st.Decl.Name] = zeroValue(st.Decl.Type)
		return false, nil, nil
	case *lang.AssignStmt:
		v, err := in.eval(env, st.Value)
		if err != nil {
			return false, nil, err
		}
		if st.ToField != "" {
			in.writeField(env, st.ToField, v)
			return false, nil, nil
		}
		env.locals[st.Target] = v
		return false, nil, nil
	case *lang.ExprStmt:
		_, err := in.eval(env, st.X)
		return false, nil, err
	case *lang.SendStmt:
		dst, err := in.eval(env, st.Dst)
		if err != nil {
			return false, nil, err
		}
		var payload Value
		if st.Payload != nil {
			payload, err = in.eval(env, st.Payload)
			if err != nil {
				return false, nil, err
			}
		}
		id, ok := dst.(MachineID)
		if !ok || int(id) < 0 || int(id) >= len(in.machines) {
			return false, nil, fmt.Errorf("interp: %s: send to invalid machine %v", st.Pos, dst)
		}
		return false, nil, in.send(env.machine, in.machines[id], st.Event, payload)
	case *lang.RaiseStmt:
		var payload Value
		if st.Payload != nil {
			v, err := in.eval(env, st.Payload)
			if err != nil {
				return false, nil, err
			}
			payload = v
		}
		return false, &raised{event: st.Event, payload: payload}, nil
	case *lang.ReturnStmt:
		if st.Value != nil {
			v, err := in.eval(env, st.Value)
			if err != nil {
				return false, nil, err
			}
			env.retVal = v
		}
		return true, nil, nil
	case *lang.IfStmt:
		cond, err := in.eval(env, st.Cond)
		if err != nil {
			return false, nil, err
		}
		if cond.(Bool) {
			return in.execStmts(env, st.Then)
		}
		return in.execStmts(env, st.Else)
	case *lang.WhileStmt:
		for iter := 0; ; iter++ {
			if iter > 1_000_000 {
				return false, nil, fmt.Errorf("interp: %s: while loop exceeded 1e6 iterations", st.Pos)
			}
			cond, err := in.eval(env, st.Cond)
			if err != nil {
				return false, nil, err
			}
			if !bool(cond.(Bool)) {
				return false, nil, nil
			}
			done, r, err := in.execStmts(env, st.Body)
			if err != nil || done || r != nil {
				return done, r, err
			}
		}
	case *lang.AssertStmt:
		cond, err := in.eval(env, st.Cond)
		if err != nil {
			return false, nil, err
		}
		if !bool(cond.(Bool)) {
			return false, nil, assertionError{msg: fmt.Sprintf("at %s", st.Pos)}
		}
		return false, nil, nil
	}
	return false, nil, fmt.Errorf("interp: unknown statement %T", s)
}

// send appends the event to the destination's queue (rule SEND); sends to
// halted machines are dropped. The attached monitors observe the send
// itself — before delivery, and whether or not the target can still
// receive — mirroring the runtime's observation point.
func (in *Interp) send(from, to *machineInst, event string, payload Value) error {
	if err := in.observe(event, payload); err != nil {
		return err
	}
	if to.halted {
		return nil
	}
	var clock vclock.VC
	if in.det != nil {
		clock = in.det.Send(int(from.id))
	}
	to.queue = append(to.queue, message{event: event, payload: payload, clock: clock})
	return nil
}

// readField implements MBR-ASSIGN-FROM on either the machine's own fields
// or, in a class-method frame, the heap object's fields; the race detector
// observes every heap access.
func (in *Interp) readField(env *frame, field string) Value {
	if env.thisObj != nil {
		in.access(env, env.thisObj, field, vclock.Read)
		return env.thisObj.fields[field]
	}
	return env.machine.fields[field]
}

// writeField implements MBR-ASSIGN-TO.
func (in *Interp) writeField(env *frame, field string, v Value) {
	if env.thisObj != nil {
		in.access(env, env.thisObj, field, vclock.Write)
		env.thisObj.fields[field] = v
		return
	}
	env.machine.fields[field] = v
}

func (in *Interp) access(env *frame, o *object, field string, kind vclock.AccessKind) {
	if in.det == nil || env.machine.id < 0 {
		return // monitor reads are specification-level, not program accesses
	}
	// Identify the object by heap position for a stable location name.
	loc := fmt.Sprintf("%s#%d.%s", o.class, o.ref, field)
	in.det.Access(int(env.machine.id), loc, kind)
}

func (in *Interp) eval(env *frame, e lang.Expr) (Value, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return Int(x.Value), nil
	case *lang.BoolLit:
		return Bool(x.Value), nil
	case *lang.NullLit:
		return Null{}, nil
	case *lang.VarRef:
		v, ok := env.locals[x.Name]
		if !ok {
			return nil, fmt.Errorf("interp: %s: undefined variable %q", x.Pos, x.Name)
		}
		return v, nil
	case *lang.ThisRef:
		return nil, fmt.Errorf("interp: %s: bare this is not a value", x.Pos)
	case *lang.FieldRef:
		return in.readField(env, x.Field), nil
	case *lang.NewExpr:
		cd := in.prog.ClassByName[x.Class]
		o := &object{class: x.Class, ref: len(in.heap), fields: make(map[string]Value, len(cd.Fields))}
		for _, f := range cd.Fields {
			o.fields[f.Name] = zeroValue(f.Type)
		}
		in.heap = append(in.heap, o)
		return Ref(len(in.heap) - 1), nil
	case *lang.CreateExpr:
		md := in.prog.MachineByName[x.Machine]
		id, err := in.create(md, env.machine.id)
		if err != nil {
			return nil, err
		}
		return id, nil
	case *lang.CallExpr:
		return in.call(env, x)
	case *lang.UnaryExpr:
		v, err := in.eval(env, x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "!":
			return Bool(!v.(Bool)), nil
		case "-":
			return Int(-v.(Int)), nil
		}
		return nil, fmt.Errorf("interp: unknown unary %q", x.Op)
	case *lang.BinaryExpr:
		return in.binary(env, x)
	}
	return nil, fmt.Errorf("interp: unknown expression %T", e)
}

func (in *Interp) binary(env *frame, x *lang.BinaryExpr) (Value, error) {
	l, err := in.eval(env, x.L)
	if err != nil {
		return nil, err
	}
	// Short-circuit booleans.
	switch x.Op {
	case "&&":
		if !bool(l.(Bool)) {
			return Bool(false), nil
		}
		r, err := in.eval(env, x.R)
		if err != nil {
			return nil, err
		}
		return r.(Bool), nil
	case "||":
		if bool(l.(Bool)) {
			return Bool(true), nil
		}
		r, err := in.eval(env, x.R)
		if err != nil {
			return nil, err
		}
		return r.(Bool), nil
	}
	r, err := in.eval(env, x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "==", "!=":
		eq := l == r
		if x.Op == "!=" {
			eq = !eq
		}
		return Bool(eq), nil
	}
	li, lok := l.(Int)
	ri, rok := r.(Int)
	if !lok || !rok {
		return nil, fmt.Errorf("interp: %s: %q requires integers", x.Pos, x.Op)
	}
	switch x.Op {
	case "+":
		return li + ri, nil
	case "-":
		return li - ri, nil
	case "*":
		return li * ri, nil
	case "/":
		if ri == 0 {
			return nil, fmt.Errorf("interp: %s: division by zero", x.Pos)
		}
		return li / ri, nil
	case "%":
		if ri == 0 {
			return nil, fmt.Errorf("interp: %s: modulo by zero", x.Pos)
		}
		return li % ri, nil
	case "<":
		return Bool(li < ri), nil
	case "<=":
		return Bool(li <= ri), nil
	case ">":
		return Bool(li > ri), nil
	case ">=":
		return Bool(li >= ri), nil
	}
	return nil, fmt.Errorf("interp: unknown operator %q", x.Op)
}

// call implements METHOD-CALL: a new local store with this bound to the
// receiver and formals bound to the evaluated arguments.
func (in *Interp) call(env *frame, x *lang.CallExpr) (Value, error) {
	var callee *lang.MethodDecl
	newFrame := &frame{machine: env.machine, locals: make(map[string]Value)}
	switch recv := x.Recv.(type) {
	case *lang.ThisRef:
		// A machine method called on this, or a class method when already
		// inside a class-method frame.
		if env.thisObj != nil {
			cd := in.prog.ClassByName[env.thisObj.class]
			callee = cd.MethodByName[x.Method]
			newFrame.thisObj = env.thisObj
		} else {
			callee = env.machine.decl.MethodByName[x.Method]
		}
	default:
		rv, err := in.eval(env, x.Recv)
		if err != nil {
			return nil, err
		}
		ref, ok := rv.(Ref)
		if !ok {
			return nil, fmt.Errorf("interp: %s: method call on null or non-object", x.Pos)
		}
		o := in.heap[ref]
		cd := in.prog.ClassByName[o.class]
		callee = cd.MethodByName[x.Method]
		newFrame.thisObj = o
		_ = recv
	}
	if callee == nil {
		return nil, fmt.Errorf("interp: %s: no method %q", x.Pos, x.Method)
	}
	for i, p := range callee.Params {
		v, err := in.eval(env, x.Args[i])
		if err != nil {
			return nil, err
		}
		newFrame.locals[p.Name] = v
	}
	done, r, err := in.execStmts(newFrame, callee.Body)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return nil, fmt.Errorf("interp: %s: raise inside a nested method call is not supported", x.Pos)
	}
	_ = done
	if newFrame.retVal == nil {
		return Null{}, nil
	}
	return newFrame.retVal, nil
}
