package interp

import (
	"testing"

	"github.com/psharp-go/psharp/obs"
)

const coverageSrc = `
event eReq;
event eAck;
event eNever;

machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create worker();
			send w, eReq;
		}
	}
}

machine worker {
	start state Waiting {
		on eReq do ack;
		on eNever do ack;
		on eAck goto Done;
	}
	method ack() { raise eAck; }
	state Done {
	}
}

monitor resp_m {
	start cold state Idle {
		on eReq goto Pending;
	}
	hot state Pending {
		on eAck goto Idle;
	}
}
`

// TestInterpCoverage checks .psl state-transition coverage: dispatched
// transitions are recorded — including the raised-event goto that bypasses
// the normal dispatch path — never-exercised bindings and monitor
// observations are not, and DeclaredTransitions counts the machine-side
// denominator.
func TestInterpCoverage(t *testing.T) {
	prog := load(t, coverageSrc)
	if got := DeclaredTransitions(prog); got != 3 {
		t.Fatalf("DeclaredTransitions = %d, want 3 (monitor bindings excluded)", got)
	}
	var cov obs.StateEventCoverage
	out := Run(prog, "main_m", Options{Seed: 1, Coverage: &cov})
	if out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	if !out.Quiescent {
		t.Fatal("did not quiesce")
	}
	if got := cov.Distinct(); got != 2 {
		t.Fatalf("distinct = %d, want 2 (%+v)", got, cov.Snapshot())
	}
	want := []obs.Transition{
		{Machine: "worker", State: "Waiting", Event: "eAck"},
		{Machine: "worker", State: "Waiting", Event: "eReq"},
	}
	snap := cov.Snapshot()
	for i, w := range want {
		if snap[i].Transition != w {
			t.Fatalf("transition[%d] = %+v, want %+v", i, snap[i].Transition, w)
		}
	}
}

// TestInterpCoverageDisabled checks the nil-coverage fast path still runs.
func TestInterpCoverageDisabled(t *testing.T) {
	prog := load(t, coverageSrc)
	out := Run(prog, "main_m", Options{Seed: 1})
	if out.Err != nil || !out.Quiescent {
		t.Fatalf("run without coverage: err=%v quiescent=%v", out.Err, out.Quiescent)
	}
}
