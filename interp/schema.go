package interp

// Compiled dispatch schemas: the paper's per-class transition and
// action-binding tables for interpreted machines. A machine declaration's
// schema is a property of the declaration, not of the instance, so it is
// compiled exactly once per loaded Program — across every Run call and
// every machine instance — and shared read-only (the same compile-once
// discipline the runtime applies to static Go machines).

import (
	"sync"
	"sync/atomic"

	"github.com/psharp-go/psharp/lang"
)

// dispatchKind says how a state reacts to an event.
type dispatchKind int

const (
	dispatchNone dispatchKind = iota
	dispatchDo
	dispatchGoto
	dispatchDefer
	dispatchIgnore
)

// dispatchEntry is one resolved (event -> reaction) binding. Method and
// target-state pointers are resolved at compile time, so dispatching an
// event costs a single map lookup instead of one per binding table plus
// the name resolutions.
type dispatchEntry struct {
	kind   dispatchKind
	method *lang.MethodDecl // dispatchDo
	target *stateSchema     // dispatchGoto
}

// stateSchema is the compiled form of one state declaration.
type stateSchema struct {
	decl     *lang.StateDecl
	dispatch map[string]dispatchEntry
	// hot is the liveness temperature annotation (monitor states only).
	hot bool
}

// machineSchema is the compiled form of one machine or monitor declaration.
type machineSchema struct {
	start  *stateSchema
	states map[string]*stateSchema
}

// programSchemas holds the compiled schemas of one loaded Program: machine
// and monitor declarations alike are compiled exactly once per Program.
type programSchemas struct {
	machines map[*lang.MachineDecl]*machineSchema
	monitors map[*lang.MachineDecl]*machineSchema
}

// schemaKey keys this package's compiled schemas in a Program's auxiliary
// store, so the cache lives and dies with the Program.
type schemaKey struct{}

var (
	// schemaCacheMu serializes first-use compilation so each Program is
	// compiled exactly once even under concurrent Run calls.
	schemaCacheMu sync.Mutex
	// schemaCompiles counts machine-schema compilations; the compile-once
	// test observes it.
	schemaCompiles atomic.Int64
)

// schemasFor returns prog's compiled schemas, compiling each machine
// declaration exactly once per loaded Program. Safe for concurrent Run
// calls over the same Program.
func schemasFor(prog *lang.Program) *programSchemas {
	if v, ok := prog.AuxLoad(schemaKey{}); ok {
		return v.(*programSchemas)
	}
	schemaCacheMu.Lock()
	defer schemaCacheMu.Unlock()
	if v, ok := prog.AuxLoad(schemaKey{}); ok {
		return v.(*programSchemas)
	}
	ps := &programSchemas{
		machines: make(map[*lang.MachineDecl]*machineSchema, len(prog.Machines)),
		monitors: make(map[*lang.MachineDecl]*machineSchema, len(prog.Monitors)),
	}
	for _, md := range prog.Machines {
		ps.machines[md] = compileMachine(md)
	}
	for _, md := range prog.Monitors {
		ps.monitors[md] = compileMachine(md)
	}
	prog.AuxStore(schemaKey{}, ps)
	return ps
}

// compileMachine freezes one machine declaration's dispatch tables. Entries
// are merged in do < goto < defer < ignore precedence order, matching the
// interpreter's historical lookup order for an event bound in more than
// one table of the same state.
func compileMachine(md *lang.MachineDecl) *machineSchema {
	ms := &machineSchema{states: make(map[string]*stateSchema, len(md.States))}
	for _, sd := range md.States {
		ms.states[sd.Name] = &stateSchema{decl: sd, hot: sd.Hot}
	}
	for _, sd := range md.States {
		ss := ms.states[sd.Name]
		ss.dispatch = make(map[string]dispatchEntry,
			len(sd.OnDo)+len(sd.OnGoto)+len(sd.Defers)+len(sd.Ignores))
		for evt, meth := range sd.OnDo {
			ss.dispatch[evt] = dispatchEntry{kind: dispatchDo, method: md.MethodByName[meth]}
		}
		for evt, target := range sd.OnGoto {
			ss.dispatch[evt] = dispatchEntry{kind: dispatchGoto, target: ms.states[target]}
		}
		for evt := range sd.Defers {
			ss.dispatch[evt] = dispatchEntry{kind: dispatchDefer}
		}
		for evt := range sd.Ignores {
			ss.dispatch[evt] = dispatchEntry{kind: dispatchIgnore}
		}
	}
	ms.start = ms.states[md.StartState.Name]
	schemaCompiles.Add(1)
	return ms
}
