package interp

// The bytecode VM: an operand-stack machine over the compiled program.
// Every rule here mirrors the tree-walker (interp.go / eval.go) observable
// for observable — dispatch precedence, raised-event handling, monitor
// observation points, race-detector access order, coverage hits, step
// accounting, and fault messages — and the differential corpus harness
// holds the two engines together. What differs is the machinery: dense
// slots instead of name maps, a recycled vmState (machines, heap objects,
// operand stack, locals slab) instead of per-run and per-dispatch
// allocation.

import (
	"fmt"

	"github.com/psharp-go/psharp/internal/vclock"
	"github.com/psharp-go/psharp/lang"
	"github.com/psharp-go/psharp/obs"
)

// vval is an unboxed runtime value: a 64-bit payload plus a kind tag.
// Keeping the VM's operand stack, frames, fields, and queues free of
// interface values avoids boxing allocations and interface copies on every
// instruction, and means recycled state holds no value pointers to scrub.
type vval struct {
	n    int64
	kind uint8
}

// vval kinds. vUndef is the zero value: a declared-but-unexecuted local
// slot (the walker's missing map entry) or an absent event payload (the
// walker's nil Value).
const (
	vUndef uint8 = iota
	vInt
	vBool
	vMachine
	vRef
	vNull
)

func vint(n Int) vval         { return vval{n: int64(n), kind: vInt} }
func vmach(id MachineID) vval { return vval{n: int64(id), kind: vMachine} }
func vref(r Ref) vval         { return vval{n: int64(r), kind: vRef} }

func vbool(b bool) vval {
	if b {
		return vval{n: 1, kind: vBool}
	}
	return vval{kind: vBool}
}

// value boxes v as the walker's interface Value — fault messages only.
func (v vval) value() Value {
	switch v.kind {
	case vInt:
		return Int(v.n)
	case vBool:
		return Bool(v.n != 0)
	case vMachine:
		return MachineID(v.n)
	case vRef:
		return Ref(v.n)
	case vNull:
		return Null{}
	}
	return nil
}

// asBool mirrors the walker's hard .(Bool) assertion: the checker rules a
// mismatch out, so like the walker this panics rather than faulting.
func (v vval) asBool() bool {
	if v.kind != vBool {
		panic(fmt.Sprintf("interp: Bool expected, got %#v", v.value()))
	}
	return v.n != 0
}

func (v vval) asInt() Int {
	if v.kind != vInt {
		panic(fmt.Sprintf("interp: Int expected, got %#v", v.value()))
	}
	return Int(v.n)
}

// vmsg is one queued event with interned event id. It is deliberately
// pointer-free (no write barriers on enqueue, nothing to scrub on recycle);
// vector clocks live in the instance's parallel clocks slice, populated only
// when the race detector is armed.
type vmsg struct {
	event   int32
	payload vval
}

// vmInst is one machine (or monitor, id -1) instance: dense field slots,
// event queue, current compiled state.
type vmInst struct {
	id     MachineID
	cm     *compiledMachine
	state  *compiledState
	fields []vval
	// queue[head:] is the live mailbox; consumed cells before head are
	// zeroed, and the slice resets to [:0] whenever it drains so capacity
	// is reused.
	queue []vmsg
	// clocks mirrors queue index for index while the race detector is
	// armed (send stamps, removeQueued compacts); empty otherwise.
	clocks []vclock.VC
	head   int
	// Scan cache: dirty marks the mailbox or state changed since the last
	// scanEnabled pass; for clean machines the cached canDispatch/pending
	// pair is still valid (the walker's rescan of a clean machine finds the
	// same head message and drops nothing new, so skipping it is
	// unobservable).
	dirty       bool
	canDispatch bool
	// pending is the queue index of the dispatchable message found by the
	// most recent scan; dispatch consumes it without rescanning.
	pending int
	// scanFrom is where the next rescan may resume: every message in
	// [head, scanFrom) is deferred under the current state and the queue has
	// only been appended to since the last scan, so a walker rescan of that
	// prefix would drop nothing and find nothing. -1 forces a full rescan
	// (after a state change, which re-types deferred messages, or a
	// consumption, which shifts indices).
	scanFrom int
	halted   bool
}

// vobject is a heap object with dense field slots; ref is its heap index,
// which also names it to the race detector.
type vobject struct {
	class  *compiledClass
	ref    int
	fields []vval
}

// vmState is one run's mutable state, recycled through the compiled
// program's pool so steady-state runs allocate almost nothing.
type vmState struct {
	cp       *compiledProgram
	machines []*vmInst
	monitors []*vmInst
	heap     []*vobject
	stack    []vval
	sp       int
	locals   []vval // frame slab; lp is the next free slot
	lp       int
	enabled  []MachineID
	dirtyq   []*vmInst // machines whose scan cache needs refreshing
	sched    Scheduler
	rsched   randomScheduler
	det      *vclock.Detector
	cover    *obs.StateEventCoverage
	steps    int
	rEvent   int32 // raised event carried out of a running block (-1: none)
	rPayload vval
}

func newVMState(cp *compiledProgram) *vmState {
	return &vmState{cp: cp, rEvent: -1}
}

// getVM checks a recycled run state out of the pool and arms it for one run.
func (cp *compiledProgram) getVM(opts Options) *vmState {
	vm := cp.pool.Get().(*vmState)
	vm.steps = 0
	vm.rEvent = -1
	vm.rPayload = vval{}
	vm.sp = 0
	vm.lp = 0
	// Armed runs start from an empty enabled list and dirty worklist.
	vm.enabled = vm.enabled[:0]
	vm.dirtyq = vm.dirtyq[:0]
	if opts.Scheduler != nil {
		vm.sched = opts.Scheduler
	} else {
		vm.rsched.state = opts.Seed
		vm.sched = &vm.rsched
	}
	if opts.RaceDetect {
		vm.det = vclock.NewDetector()
	} else {
		vm.det = nil
	}
	vm.cover = opts.Coverage
	return vm
}

// putVM scrubs references out of the run state and returns it to the pool.
// Instance and object shells (and their slot slices) stay allocated for the
// next run. Value slots are unboxed vvals and hold no pointers, so only the
// queues (whose messages carry vector-clock maps) need clearing.
func (cp *compiledProgram) putVM(vm *vmState) {
	// Message cells are pointer-free; only the clock mirror (populated when
	// the race detector was armed) holds references to release.
	scrub := func(list []*vmInst) []*vmInst {
		for _, m := range list {
			for i := range m.clocks {
				m.clocks[i] = nil
			}
			m.clocks = m.clocks[:0]
			m.queue = m.queue[:0]
			m.head = 0
		}
		return list[:0]
	}
	vm.machines = scrub(vm.machines)
	vm.monitors = scrub(vm.monitors)
	vm.heap = vm.heap[:0]
	vm.sched = nil
	vm.det = nil
	vm.cover = nil
	cp.pool.Put(vm)
}

// runVM is Run for Options.Engine == EngineBytecode: same protocol as the
// walker's run loop, executing compiled code.
func runVM(prog *lang.Program, main string, opts Options) Outcome {
	cp := compiledFor(prog)
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	var md *compiledMachine
	if e := cp.mainCache.Load(); e != nil && e.name == main {
		md = e.cm
	} else {
		var ok bool
		md, ok = cp.machineByName[main]
		if !ok {
			return Outcome{Err: fmt.Errorf("interp: no machine %q", main)}
		}
		cp.mainCache.Store(&mainEntry{name: main, cm: md})
	}
	vm := cp.getVM(opts)
	defer cp.putVM(vm)

	var out Outcome
	// Monitors attach before the first machine runs, so they observe every
	// event of the execution, including the main machine's setup sends.
	for _, mon := range cp.monitors {
		if err := vm.attachMonitor(mon); err != nil {
			out.Err = err
			return out
		}
	}
	if _, err := vm.create(md, 0); err != nil {
		out.Err = err
		return out
	}

	// The seeded scheduler is the overwhelmingly common case; calling it
	// directly instead of through the interface saves a dynamic dispatch
	// per step. The scan-refresh and message-consumption phases are inlined
	// into the loop body (each would otherwise be a call per step).
	rs, seeded := vm.sched.(*randomScheduler)
	for vm.steps < maxSteps {
		// Refresh the scan cache of every machine whose queue or state
		// changed, keeping the enabled list in machine-id order (the
		// scheduler picks by position, so list order is part of the
		// schedule and must match the walker's). The worklist is sorted by
		// id so that when several machines hold unhandled events, the
		// fault reported is the lowest-id one, as in the walker's full
		// in-order scan.
		if dq := vm.dirtyq; len(dq) > 0 {
			for i := 1; i < len(dq); i++ {
				for j := i; j > 0 && dq[j-1].id > dq[j].id; j-- {
					dq[j-1], dq[j] = dq[j], dq[j-1]
				}
			}
			var err error
			for _, m := range dq {
				// Fast path (inlined head of nextDispatch): the first
				// unscanned message dispatches directly — FIFO consumption
				// with nothing deferred or ignored.
				i := m.head
				if m.scanFrom > i {
					i = m.scanFrom
				}
				if i < len(m.queue) {
					switch m.state.dispatch[m.queue[i].event].kind {
					case dispatchDo, dispatchGoto:
						m.scanFrom = i
						if !m.canDispatch {
							vm.enabledInsert(m.id)
						}
						m.pending, m.canDispatch, m.dirty = i, true, false
						continue
					}
				}
				var idx int
				var ok bool
				idx, ok, err = vm.nextDispatch(m)
				if err != nil {
					break
				}
				// The enabled list only changes when this machine's
				// dispatchability flipped (a created machine starts
				// canDispatch=false, so it flips on its first enabling
				// scan); flips edit the sorted list in place.
				if ok != m.canDispatch {
					if ok {
						vm.enabledInsert(m.id)
					} else {
						vm.enabledRemove(m.id)
					}
				}
				m.pending, m.canDispatch, m.dirty = idx, ok, false
			}
			if err != nil {
				out.Err = err
				break
			}
			vm.dirtyq = dq[:0]
		}
		if len(vm.enabled) == 0 {
			out.Quiescent = true
			break
		}
		var id MachineID
		if seeded {
			id = rs.Next(vm.enabled)
		} else {
			id = vm.sched.Next(vm.enabled)
		}
		// Consume the pending message the scan found for the chosen
		// machine. Nothing has mutated since that scan (the scheduler
		// merely picked among the enabled ids), so m.pending is valid.
		m := vm.machines[id]
		q := &m.queue[m.pending]
		event, payload := q.event, q.payload
		if vm.det != nil {
			vm.det.Receive(int(m.id), m.clocks[m.pending])
		}
		m.removeQueued(m.pending)
		m.scanFrom = -1
		if !m.dirty {
			m.dirty = true
			vm.dirtyq = append(vm.dirtyq, m)
		}
		vm.steps++
		// nextDispatch only marks dispatchDo/dispatchGoto cells pending,
		// so the handle switch resolves with a single branch.
		d := m.state.dispatch[event]
		if vm.cover != nil {
			vm.coverHit(m, event)
		}
		var err error
		if d.kind == dispatchGoto {
			err = vm.gotoState(m, d.target)
		} else {
			if d.method.nparams == 1 && payload.kind == vUndef {
				payload = d.method.payloadZero
			}
			err = vm.runBlock(m, d.method, payload)
		}
		if err != nil {
			out.Err = err
			break
		}
	}
	out.Steps = vm.steps
	if !out.Quiescent && out.Err == nil {
		out.BoundReached = true
	}
	for _, m := range vm.monitors {
		if m.state.hot {
			out.HotMonitors = append(out.HotMonitors, m.cm.decl.Name)
		}
	}
	if vm.det != nil {
		for _, r := range vm.det.Races() {
			out.Races = append(out.Races, r.String())
		}
	}
	return out
}

// recycleInst extends list by one slot, reviving a shell left behind a
// previous run's truncation when one exists.
func recycleInst(list []*vmInst) ([]*vmInst, *vmInst) {
	n := len(list)
	if n < cap(list) {
		list = list[:n+1]
		if list[n] == nil {
			list[n] = new(vmInst)
		}
		return list, list[n]
	}
	m := new(vmInst)
	return append(list, m), m
}

func initInst(m *vmInst, cm *compiledMachine, id MachineID) {
	m.id = id
	m.cm = cm
	m.state = cm.start
	m.halted = false
	m.queue = m.queue[:0]
	m.clocks = m.clocks[:0]
	m.head = 0
	m.dirty = false
	m.canDispatch = false
	m.scanFrom = -1
	nf := len(cm.fieldZero)
	if cap(m.fields) < nf {
		m.fields = make([]vval, nf)
	}
	m.fields = m.fields[:nf]
	copy(m.fields, cm.fieldZero)
}

// create mirrors Interp.create: allocate, fork the clock, count the step,
// run the start state's entry.
func (vm *vmState) create(cm *compiledMachine, creator MachineID) (MachineID, error) {
	var m *vmInst
	vm.machines, m = recycleInst(vm.machines)
	initInst(m, cm, MachineID(len(vm.machines)-1))
	vm.markDirty(m)
	if vm.det != nil {
		vm.det.Fork(int(creator), int(m.id))
	}
	vm.steps++
	if m.state.entry != nil {
		if err := vm.runBlock(m, m.state.entry, vval{}); err != nil {
			return m.id, err
		}
	}
	return m.id, nil
}

// attachMonitor mirrors Interp.attachMonitor: id -1, never scheduled, entry
// block run on attach.
func (vm *vmState) attachMonitor(cm *compiledMachine) error {
	var m *vmInst
	vm.monitors, m = recycleInst(vm.monitors)
	initInst(m, cm, -1)
	if m.state.entry != nil {
		return vm.runBlock(m, m.state.entry, vval{})
	}
	return nil
}

func (vm *vmState) newObject(cc *compiledClass) Ref {
	n := len(vm.heap)
	var o *vobject
	if n < cap(vm.heap) {
		vm.heap = vm.heap[:n+1]
		if vm.heap[n] == nil {
			vm.heap[n] = new(vobject)
		}
		o = vm.heap[n]
	} else {
		o = new(vobject)
		vm.heap = append(vm.heap, o)
	}
	o.class = cc
	o.ref = n
	nf := len(cc.fieldZero)
	if cap(o.fields) < nf {
		o.fields = make([]vval, nf)
	}
	o.fields = o.fields[:nf]
	copy(o.fields, cc.fieldZero)
	return Ref(n)
}

// markDirty queues machine m for rescanning; monitors are never scheduled
// so they never enter the worklist.
func (vm *vmState) markDirty(m *vmInst) {
	if !m.dirty && m.id >= 0 {
		m.dirty = true
		vm.dirtyq = append(vm.dirtyq, m)
	}
}

// enabledInsert splices id into the enabled list, keeping machine-id order.
func (vm *vmState) enabledInsert(id MachineID) {
	e := append(vm.enabled, id)
	i := len(e) - 1
	for i > 0 && e[i-1] > id {
		e[i] = e[i-1]
		i--
	}
	e[i] = id
	vm.enabled = e
}

func (vm *vmState) enabledRemove(id MachineID) {
	e := vm.enabled
	for i, v := range e {
		if v == id {
			vm.enabled = append(e[:i], e[i+1:]...)
			return
		}
	}
}

func (vm *vmState) nextDispatch(m *vmInst) (idx int, ok bool, err error) {
	i := m.head
	if m.scanFrom > i {
		i = m.scanFrom
	}
	// Fast path: the first unscanned message dispatches directly (FIFO
	// consumption with nothing deferred or ignored — the common case).
	if i < len(m.queue) {
		switch m.state.dispatch[m.queue[i].event].kind {
		case dispatchDo, dispatchGoto:
			m.scanFrom = i
			return i, true, nil
		}
	}
	for i < len(m.queue) {
		event := m.queue[i].event
		switch m.state.dispatch[event].kind {
		case dispatchIgnore:
			m.removeQueued(i)
			if i < m.head {
				i = m.head // head-path removal advanced past i
			}
		case dispatchDefer:
			i++
		case dispatchDo, dispatchGoto:
			m.scanFrom = i
			return i, true, nil
		default:
			return 0, false, fmt.Errorf(
				"interp: machine %s(%d): event %q cannot be handled in state %q",
				m.cm.decl.Name, m.id, vm.cp.events[event], m.state.decl.Name)
		}
	}
	m.scanFrom = i
	return 0, false, nil
}

// removeQueued drops message i. Removing the mailbox head — the common
// case: FIFO consumption with no deferred prefix — just advances head with
// no copying; the queue compacts to its origin whenever it drains.
func (m *vmInst) removeQueued(i int) {
	if i == m.head {
		if len(m.clocks) != 0 {
			m.clocks[i] = nil
		}
		m.head++
		if m.head == len(m.queue) {
			m.queue = m.queue[:0]
			m.clocks = m.clocks[:0]
			m.head = 0
		}
		return
	}
	last := len(m.queue) - 1
	copy(m.queue[i:], m.queue[i+1:])
	m.queue = m.queue[:last]
	if len(m.clocks) != 0 {
		copy(m.clocks[i:], m.clocks[i+1:])
		m.clocks[last] = nil
		m.clocks = m.clocks[:last]
	}
}

// handle runs a transition or bound action for an event.
func (vm *vmState) handle(m *vmInst, event int32, payload vval) error {
	switch d := m.state.dispatch[event]; d.kind {
	case dispatchGoto:
		vm.coverHit(m, event)
		return vm.gotoState(m, d.target)
	case dispatchDo:
		vm.coverHit(m, event)
		if d.method.nparams == 1 && payload.kind == vUndef {
			payload = d.method.payloadZero
		}
		return vm.runBlock(m, d.method, payload)
	default:
		return fmt.Errorf("interp: machine %s(%d): event %q cannot be handled in state %q",
			m.cm.decl.Name, m.id, vm.cp.events[event], m.state.decl.Name)
	}
}

func (vm *vmState) gotoState(m *vmInst, target *compiledState) error {
	m.state = target
	m.scanFrom = -1
	vm.markDirty(m)
	if m.id >= 0 {
		vm.steps++ // monitor transitions are observations, not program steps
	}
	if target.entry != nil {
		return vm.runBlock(m, target.entry, vval{})
	}
	return nil
}

// runBlock executes a handler or entry block on machine m, then processes
// any raised event immediately (bypassing the queue), exactly as the
// walker's runBlock does.
func (vm *vmState) runBlock(m *vmInst, code *compiledCode, payload vval) error {
	// Frame setup (formerly execBody): fresh zeroed locals, optional payload
	// in parameter slot 0. A raised event is left in vm.rEvent and processed
	// below.
	vm.reserveStack(code)
	lb := vm.lp
	vm.lp = lb + code.nlocals
	if vm.lp > len(vm.locals) {
		vm.locals = append(vm.locals, make([]vval, vm.lp-len(vm.locals))...)
	}
	frame := vm.locals[lb:vm.lp]
	if code.needsClear {
		for i := range frame {
			frame[i] = vval{}
		}
	}
	if code.nparams == 1 {
		frame[0] = payload
	}
	_, err := vm.run(code, m, nil, lb)
	vm.lp = lb
	if err != nil {
		return err
	}
	if vm.rEvent >= 0 {
		event, pl := vm.rEvent, vm.rPayload
		vm.rEvent, vm.rPayload = -1, vval{}
		if m.id >= 0 && len(vm.monitors) != 0 {
			// Monitors observe raised program events like sends; a monitor's
			// own raises stay internal to its dispatch.
			if err := vm.observe(event, pl); err != nil {
				return err
			}
		}
		switch d := m.state.dispatch[event]; d.kind {
		case dispatchIgnore:
			return nil
		case dispatchDefer:
			if vm.det != nil {
				m.clocks = append(m.clocks, nil) // raised internally: no send stamp
			}
			m.queue = append(m.queue, vmsg{event: event, payload: pl})
			vm.markDirty(m)
			return nil
		case dispatchGoto:
			// This goto bypasses handle, so it records its own coverage hit.
			vm.coverHit(m, event)
			return vm.gotoState(m, d.target)
		default:
			return vm.handle(m, event, pl)
		}
	}
	return nil
}

func (vm *vmState) observe(event int32, payload vval) error {
	for _, m := range vm.monitors {
		switch m.state.dispatch[event].kind {
		case dispatchNone, dispatchIgnore:
			continue
		default:
			if err := vm.handle(m, event, payload); err != nil {
				return fmt.Errorf("monitor %s: %w", m.cm.decl.Name, err)
			}
		}
	}
	return nil
}

// send mirrors Interp.send plus the walker's SendStmt destination check:
// validate the destination, observe, drop if halted, stamp the clock,
// enqueue.
func (vm *vmState) send(from *vmInst, dst vval, event int32, payload vval, pos int32) error {
	if dst.kind != vMachine || dst.n < 0 || dst.n >= int64(len(vm.machines)) {
		return fmt.Errorf("interp: %s: send to invalid machine %v", vm.cp.poss[pos], dst.value())
	}
	if len(vm.monitors) != 0 {
		if err := vm.observe(event, payload); err != nil {
			return err
		}
	}
	to := vm.machines[dst.n]
	if to.halted {
		return nil
	}
	if vm.det != nil {
		to.clocks = append(to.clocks, vm.det.Send(int(from.id)))
	}
	to.queue = append(to.queue, vmsg{event: event, payload: payload})
	// An append to a machine whose cached scan already found a dispatchable
	// message changes nothing the scan observes: the new message sits after
	// pending, and the ignorable prefix was already consumed. Only machines
	// without a dispatchable message need rescanning.
	if !to.canDispatch {
		vm.markDirty(to)
	}
	return nil
}

func (vm *vmState) coverHit(m *vmInst, event int32) {
	if vm.cover == nil || m.id < 0 {
		return
	}
	vm.cover.Hit(m.cm.decl.Name, m.state.decl.Name, vm.cp.events[event])
}

func (vm *vmState) raceAccess(self *vmInst, o *vobject, slot int32, kind vclock.AccessKind) {
	if vm.det == nil || self.id < 0 {
		return // monitor reads are specification-level, not program accesses
	}
	loc := fmt.Sprintf("%s#%d.%s", o.class.decl.Name, o.ref, o.class.fieldNames[slot])
	vm.det.Access(int(self.id), loc, kind)
}

// reserveStack grows the operand stack (kept at full length; sp is the
// watermark) so the next code.maxstack pushes stay in bounds and the
// instruction loop never needs a growth check.
func (vm *vmState) reserveStack(code *compiledCode) {
	if n := vm.sp + code.maxstack; n > len(vm.stack) {
		vm.stack = append(vm.stack, make([]vval, n-len(vm.stack))...)
	}
}

// invoke runs a method call: args are read from the operand stack at
// argBase (the caller has already logically popped them — copy first,
// before any push can overwrite). A raise inside a nested call is the
// walker's unsupported-raise fault.
func (vm *vmState) invoke(callee *compiledCode, self *vmInst, obj *vobject, argBase, argc int, pos int32) (vval, error) {
	vm.reserveStack(callee)
	lb := vm.lp
	vm.lp = lb + callee.nlocals
	if vm.lp > len(vm.locals) {
		vm.locals = append(vm.locals, make([]vval, vm.lp-len(vm.locals))...)
	}
	frame := vm.locals[lb:vm.lp]
	np := callee.nparams
	if np > argc {
		np = argc // class-confused call with too few args: params stay undefined
	}
	for i := 0; i < np; i++ {
		frame[i] = vm.stack[argBase+i]
	}
	for i := np; i < callee.nparams; i++ {
		frame[i] = vval{} // class-confused short call: missing params read as undefined
	}
	if callee.needsClear {
		for i := callee.nparams; i < callee.nlocals; i++ {
			frame[i] = vval{}
		}
	}
	ret, err := vm.run(callee, self, obj, lb)
	vm.lp = lb
	if err != nil {
		return vval{}, err
	}
	if vm.rEvent >= 0 {
		vm.rEvent, vm.rPayload = -1, vval{}
		return vval{}, fmt.Errorf("interp: %s: raise inside a nested method call is not supported", vm.cp.poss[pos])
	}
	if ret.kind == vUndef {
		ret = vval{kind: vNull} // a void method call evaluates to null
	}
	return ret, nil
}

// run is the instruction loop for one frame. self is the machine (or
// monitor) whose fields opLoadMField addresses; obj is non-nil inside class
// methods. The returned Value is the frame's return value (nil for void).
//
// The operand stack is worked through function-local stack/sp so the hot
// path stays in registers; vm.sp is synced before the four ops that can
// re-enter the interpreter (send, create, and the two calls — any of which
// may run nested frames or grow vm.stack) and at every return. Nested
// frames leave vm.sp balanced, so only the stack slice needs reloading.
func (vm *vmState) run(code *compiledCode, self *vmInst, obj *vobject, lb int) (vval, error) {
	frame := vm.locals[lb : lb+code.nlocals]
	ins := code.ins
	stack := vm.stack
	sp := vm.sp
	for pc := 0; pc < len(ins); pc++ {
		in := &ins[pc]
		switch in.Op {
		case opPushInt:
			stack[sp] = vval{n: int64(in.A), kind: vInt}
			sp++
		case opPushConst:
			stack[sp] = vm.cp.consts[in.A]
			sp++
		case opPushTrue:
			stack[sp] = vval{n: 1, kind: vBool}
			sp++
		case opPushFalse:
			stack[sp] = vval{kind: vBool}
			sp++
		case opPushNull:
			stack[sp] = vval{kind: vNull}
			sp++
		case opPop:
			sp--
		case opLoadLocal:
			v := frame[in.A]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.A)
			}
			stack[sp] = v
			sp++
		case opStoreLocal:
			sp--
			frame[in.A] = stack[sp]
		case opDeclLocal:
			frame[in.A] = zeroByKind[in.B]
		case opLoadMField:
			stack[sp] = self.fields[in.A]
			sp++
		case opStoreMField:
			sp--
			self.fields[in.A] = stack[sp]
		case opLoadOField:
			if vm.det != nil {
				vm.raceAccess(self, obj, in.A, vclock.Read)
			}
			stack[sp] = obj.fields[in.A]
			sp++
		case opStoreOField:
			if vm.det != nil {
				vm.raceAccess(self, obj, in.A, vclock.Write)
			}
			sp--
			obj.fields[in.A] = stack[sp]
		case opJump:
			pc = int(in.A) - 1
		case opJumpFalse:
			sp--
			if !stack[sp].asBool() {
				pc = int(in.A) - 1
			}
		case opJumpTrue:
			sp--
			if stack[sp].asBool() {
				pc = int(in.A) - 1
			}
		case opNot:
			stack[sp-1] = vbool(!stack[sp-1].asBool())
		case opNeg:
			stack[sp-1] = vint(-stack[sp-1].asInt())
		case opAdd:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			sp--
			stack[sp-1] = vval{n: l + r, kind: vInt}
		case opSub:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			sp--
			stack[sp-1] = vval{n: l - r, kind: vInt}
		case opMul:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			sp--
			stack[sp-1] = vval{n: l * r, kind: vInt}
		case opDiv:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			if r == 0 {
				vm.sp = sp
				return vval{}, vm.divZeroErr(in.Pos, "division")
			}
			sp--
			stack[sp-1] = vval{n: l / r, kind: vInt}
		case opMod:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			if r == 0 {
				vm.sp = sp
				return vval{}, vm.divZeroErr(in.Pos, "modulo")
			}
			sp--
			stack[sp-1] = vval{n: l % r, kind: vInt}
		case opLt:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			sp--
			stack[sp-1] = vbool(l < r)
		case opLe:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			sp--
			stack[sp-1] = vbool(l <= r)
		case opGt:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			sp--
			stack[sp-1] = vbool(l > r)
		case opGe:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErr(in)
			}
			sp--
			stack[sp-1] = vbool(l >= r)
		case opEq:
			sp--
			stack[sp-1] = vbool(stack[sp-1] == stack[sp])
		case opNe:
			sp--
			stack[sp-1] = vbool(stack[sp-1] != stack[sp])
		case opLoopCheck:
			n := frame[in.A].n
			if n > 1_000_000 {
				vm.sp = sp
				return vval{}, vm.loopErr(in.Pos)
			}
			frame[in.A].n = n + 1
		case opAssert:
			sp--
			if !stack[sp].asBool() {
				vm.sp = sp
				return vval{}, vm.assertErr(in.Pos)
			}
		case opSend:
			var payload vval
			if in.B == 1 {
				sp--
				payload = stack[sp]
			}
			sp--
			dst := stack[sp]
			vm.sp = sp
			if err := vm.send(self, dst, in.A, payload, in.Pos); err != nil {
				return vval{}, err
			}
			stack = vm.stack
		case opRaise:
			if in.B == 1 {
				sp--
				vm.rPayload = stack[sp]
			} else {
				vm.rPayload = vval{}
			}
			vm.rEvent = in.A
			vm.sp = sp
			return vval{}, nil
		case opReturn:
			if in.A == 1 {
				sp--
				vm.sp = sp
				return stack[sp], nil
			}
			vm.sp = sp
			return vval{}, nil
		case opCallSelf:
			var callee *compiledCode
			var cobj *vobject
			if code.class != nil {
				callee = code.class.methods[in.A]
				cobj = obj
			} else {
				callee = code.machine.methods[in.A]
			}
			sp -= callee.nparams
			if f := callee.accessor; f >= 0 && cobj != nil {
				if vm.det != nil {
					vm.raceAccess(self, cobj, f, vclock.Read)
				}
				stack[sp] = cobj.fields[f]
				sp++
				break
			}
			vm.sp = sp
			v, err := vm.invoke(callee, self, cobj, sp, callee.nparams, in.Pos)
			if err != nil {
				return vval{}, err
			}
			stack = vm.stack
			stack[sp] = v
			sp++
		case opCheckRecv:
			if stack[sp-1].kind != vRef {
				vm.sp = sp
				return vval{}, vm.nullCallErr(in.Pos)
			}
			if vm.heap[stack[sp-1].n].class.byName[in.A] == nil {
				vm.sp = sp
				return vval{}, vm.noMethodErr(in.Pos, in.A)
			}
		case opCallObj:
			argc := int(in.B)
			sp -= argc + 1
			o := vm.heap[stack[sp].n] // opCheckRecv validated the Ref
			callee := o.class.byName[in.A]
			if f := callee.accessor; f >= 0 && argc == 0 {
				// The body is a lone getter (opRetOField): read the field in
				// place instead of pushing a frame. The race-detector read is
				// the callee's only observable.
				if vm.det != nil {
					vm.raceAccess(self, o, f, vclock.Read)
				}
				stack[sp] = o.fields[f]
				sp++
				break
			}
			vm.sp = sp
			v, err := vm.invoke(callee, self, o, sp+1, argc, in.Pos)
			if err != nil {
				return vval{}, err
			}
			stack = vm.stack
			stack[sp] = v
			sp++
		case opCreate:
			vm.sp = sp
			id, err := vm.create(vm.cp.machines[in.A], self.id)
			if err != nil {
				return vval{}, err
			}
			stack = vm.stack
			stack[sp] = vmach(id)
			sp++
		case opNew:
			stack[sp] = vref(vm.newObject(vm.cp.classes[in.A]))
			sp++
		case opBadThis:
			vm.sp = sp
			return vval{}, fmt.Errorf("interp: %s: bare this is not a value", vm.cp.poss[in.Pos])
		case opStoreLoad:
			frame[in.A] = stack[sp-1]
			v := frame[in.B]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.B)
			}
			stack[sp-1] = v
		case opMFieldToLocal:
			frame[in.B] = self.fields[in.A]
		case opLocalToMField:
			v := frame[in.A]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.A)
			}
			self.fields[in.B] = v
		case opLoadPushInt:
			v := frame[in.A]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.A)
			}
			stack[sp] = v
			stack[sp+1] = vval{n: int64(in.B), kind: vInt}
			sp += 2
		case opEqInt:
			stack[sp-1] = vbool(stack[sp-1] == vval{n: int64(in.A), kind: vInt})
		case opDecl2:
			frame[in.A&declMask] = zeroByKind[in.A>>declShift]
			frame[in.B&declMask] = zeroByKind[in.B>>declShift]
		case opLoad2:
			v := frame[in.A&loadMask]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.B, in.A&loadMask)
			}
			w := frame[in.A>>loadShift]
			if w.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.A>>loadShift)
			}
			stack[sp] = v
			stack[sp+1] = w
			sp += 2
		case opCallMethod:
			if stack[sp-1].kind != vRef {
				vm.sp = sp
				return vval{}, vm.nullCallErr(in.Pos)
			}
			o := vm.heap[stack[sp-1].n]
			callee := o.class.byName[in.A]
			if callee == nil {
				vm.sp = sp
				return vval{}, vm.noMethodErr(in.Pos, in.A)
			}
			sp--
			if f := callee.accessor; f >= 0 {
				if vm.det != nil {
					vm.raceAccess(self, o, f, vclock.Read)
				}
				stack[sp] = o.fields[f]
				sp++
				break
			}
			vm.sp = sp
			v, err := vm.invoke(callee, self, o, sp+1, 0, in.Pos)
			if err != nil {
				return vval{}, err
			}
			stack = vm.stack
			stack[sp] = v
			sp++
		case opIntToMField:
			self.fields[in.B] = vval{n: int64(in.A), kind: vInt}
		case opMFieldPushInt:
			stack[sp] = self.fields[in.A]
			stack[sp+1] = vval{n: int64(in.B), kind: vInt}
			sp += 2
		case opCmpJF:
			cond, ok := cmpEval(Opcode(in.B), stack[sp-2], stack[sp-1])
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(in.Pos, Opcode(in.B))
			}
			sp -= 2
			if !cond {
				pc = int(in.A) - 1
			}
		case opAssertCmp:
			cond, ok := cmpEval(Opcode(in.B), stack[sp-2], stack[sp-1])
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(in.A, Opcode(in.B))
			}
			sp -= 2
			if !cond {
				vm.sp = sp
				return vval{}, vm.assertErr(in.Pos)
			}
		case opSendLL:
			ax := code.aux[in.B : in.B+3]
			v := frame[in.A&loadMask]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[0], in.A&loadMask)
			}
			w := frame[in.A>>loadShift]
			if w.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[1], in.A>>loadShift)
			}
			vm.sp = sp
			if err := vm.send(self, v, ax[2], w, in.Pos); err != nil {
				return vval{}, err
			}
			stack = vm.stack
		case opAddToMField:
			l, r, ok := int2(stack, sp)
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(in.Pos, opAdd)
			}
			sp -= 2
			self.fields[in.A] = vval{n: l + r, kind: vInt}
		case opLocalCallMethod:
			v := frame[in.A&loadMask]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.B, in.A&loadMask)
			}
			if v.kind != vRef {
				vm.sp = sp
				return vval{}, vm.nullCallErr(in.Pos)
			}
			o := vm.heap[v.n]
			callee := o.class.byName[in.A>>loadShift]
			if callee == nil {
				vm.sp = sp
				return vval{}, vm.noMethodErr(in.Pos, in.A>>loadShift)
			}
			if f := callee.accessor; f >= 0 {
				if vm.det != nil {
					vm.raceAccess(self, o, f, vclock.Read)
				}
				stack[sp] = o.fields[f]
				sp++
				break
			}
			vm.sp = sp
			r, err := vm.invoke(callee, self, o, sp+1, 0, in.Pos)
			if err != nil {
				return vval{}, err
			}
			stack = vm.stack
			stack[sp] = r
			sp++
		case opLocalToOField:
			v := frame[in.A]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.A)
			}
			if vm.det != nil {
				vm.raceAccess(self, obj, in.B, vclock.Write)
			}
			obj.fields[in.B] = v
		case opMFieldAddInt:
			v := self.fields[in.A]
			if v.kind != vInt {
				vm.sp = sp
				return vval{}, vm.intsErrAt(in.Pos, opAdd)
			}
			stack[sp] = vval{n: v.n + int64(in.B), kind: vInt}
			sp++
		case opLIntCmpJF:
			ax := code.aux[in.B : in.B+4]
			v := frame[ax[0]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, ax[0])
			}
			cond, ok := cmpEval(Opcode(ax[2]), v, vval{n: int64(ax[1]), kind: vInt})
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[3], Opcode(ax[2]))
			}
			if !cond {
				pc = int(in.A) - 1
			}
		case opStoreRetLocal:
			frame[in.A] = stack[sp-1]
			v := frame[in.B]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.B)
			}
			sp--
			vm.sp = sp
			return v, nil
		case opDeclLoadOField:
			frame[in.A&declMask] = zeroByKind[in.A>>declShift]
			if vm.det != nil {
				vm.raceAccess(self, obj, in.B, vclock.Read)
			}
			stack[sp] = obj.fields[in.B]
			sp++
		case opRetOField:
			if vm.det != nil {
				vm.raceAccess(self, obj, in.A, vclock.Read)
			}
			vm.sp = sp
			return obj.fields[in.A], nil
		case opMFSendLL:
			ax := code.aux[in.B : in.B+5]
			frame[ax[4]] = self.fields[ax[3]]
			v := frame[in.A&loadMask]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[0], in.A&loadMask)
			}
			w := frame[in.A>>loadShift]
			if w.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[1], in.A>>loadShift)
			}
			vm.sp = sp
			if err := vm.send(self, v, ax[2], w, in.Pos); err != nil {
				return vval{}, err
			}
			stack = vm.stack
		case opMFAddIntToMF:
			v := self.fields[in.A&loadMask]
			if v.kind != vInt {
				vm.sp = sp
				return vval{}, vm.intsErrAt(in.Pos, opAdd)
			}
			self.fields[in.A>>loadShift] = vval{n: v.n + int64(in.B), kind: vInt}
		case opCallObjVoid:
			argc := int(in.B)
			sp -= argc + 1
			o := vm.heap[stack[sp].n] // opCheckRecv validated the Ref
			callee := o.class.byName[in.A]
			if f := callee.accessor; f >= 0 && argc == 0 {
				if vm.det != nil {
					vm.raceAccess(self, o, f, vclock.Read)
				}
				break
			}
			vm.sp = sp
			if _, err := vm.invoke(callee, self, o, sp+1, argc, in.Pos); err != nil {
				return vval{}, err
			}
			stack = vm.stack
		case opMF2L2:
			frame[in.A>>loadShift] = self.fields[in.A&loadMask]
			frame[in.B>>loadShift] = self.fields[in.B&loadMask]
		case opDecl2MF2L:
			ax := code.aux[in.B : in.B+3]
			frame[in.A&declMask] = zeroByKind[in.A>>declShift]
			frame[ax[0]&declMask] = zeroByKind[ax[0]>>declShift]
			frame[ax[2]] = self.fields[ax[1]]
		case opNewStoreLoad:
			r := vref(vm.newObject(vm.cp.classes[in.A&loadMask]))
			frame[in.A>>loadShift] = r
			v := frame[in.B]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, in.B)
			}
			stack[sp] = v
			sp++
		case opCreateStore:
			vm.sp = sp
			id, err := vm.create(vm.cp.machines[in.A], self.id)
			if err != nil {
				return vval{}, err
			}
			stack = vm.stack
			frame[in.B] = vmach(id)
		case opSendLL2:
			for k := int32(0); k < 2; k++ {
				ax := code.aux[in.B+5*k : in.B+5*k+5]
				pa := ax[0]
				v := frame[pa&loadMask]
				if v.kind == vUndef {
					vm.sp = sp
					return vval{}, vm.undefErr(code, ax[1], pa&loadMask)
				}
				w := frame[pa>>loadShift]
				if w.kind == vUndef {
					vm.sp = sp
					return vval{}, vm.undefErr(code, ax[2], pa>>loadShift)
				}
				vm.sp = sp
				if err := vm.send(self, v, ax[3], w, ax[4]); err != nil {
					return vval{}, err
				}
			}
			stack = vm.stack
		case opLIntCmpJFL2MF:
			ax := code.aux[in.B : in.B+7]
			v := frame[ax[0]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, ax[0])
			}
			cond, ok := cmpEval(Opcode(ax[2]), v, vval{n: int64(ax[1]), kind: vInt})
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[3], Opcode(ax[2]))
			}
			if !cond {
				pc = int(in.A) - 1
				break
			}
			w := frame[ax[4]]
			if w.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[6], ax[4])
			}
			self.fields[ax[5]] = w
		case opMFIntAssert:
			ax := code.aux[in.B : in.B+4]
			cond, ok := cmpEval(Opcode(ax[2]), self.fields[ax[0]], vval{n: int64(ax[1]), kind: vInt})
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[3], Opcode(ax[2]))
			}
			if !cond {
				vm.sp = sp
				return vval{}, vm.assertErr(in.Pos)
			}
		case opL2OF2:
			ax := code.aux[in.B : in.B+6]
			v := frame[ax[0]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[2], ax[0])
			}
			if vm.det != nil {
				vm.raceAccess(self, obj, ax[1], vclock.Write)
			}
			obj.fields[ax[1]] = v
			w := frame[ax[3]]
			if w.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[5], ax[3])
			}
			if vm.det != nil {
				vm.raceAccess(self, obj, ax[4], vclock.Write)
			}
			obj.fields[ax[4]] = w
		case opDecl3:
			frame[in.A&declMask] = zeroByKind[in.A>>declShift]
			frame[in.B&declMask] = zeroByKind[in.B>>declShift]
			frame[in.Pos&declMask] = zeroByKind[in.Pos>>declShift]
		case opLAddIntToMF:
			ax := code.aux[in.B : in.B+5]
			v := frame[ax[0]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[2], ax[0])
			}
			if v.kind != vInt {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[4], opAdd)
			}
			self.fields[ax[3]] = vval{n: v.n + int64(ax[1]), kind: vInt}
		case opLocalCallMethodSL:
			ax := code.aux[in.B : in.B+4]
			v := frame[in.A&loadMask]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[0], in.A&loadMask)
			}
			if v.kind != vRef {
				vm.sp = sp
				return vval{}, vm.nullCallErr(in.Pos)
			}
			o := vm.heap[v.n]
			callee := o.class.byName[in.A>>loadShift]
			if callee == nil {
				vm.sp = sp
				return vval{}, vm.noMethodErr(in.Pos, in.A>>loadShift)
			}
			var r vval
			if f := callee.accessor; f >= 0 {
				if vm.det != nil {
					vm.raceAccess(self, o, f, vclock.Read)
				}
				r = o.fields[f]
			} else {
				vm.sp = sp
				var err error
				r, err = vm.invoke(callee, self, o, sp+1, 0, in.Pos)
				if err != nil {
					return vval{}, err
				}
				stack = vm.stack
			}
			frame[ax[1]] = r
			w := frame[ax[2]]
			if w.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[3], ax[2])
			}
			stack[sp] = w
			sp++
		case opCallMethodSL:
			ax := code.aux[in.B : in.B+3]
			if stack[sp-1].kind != vRef {
				vm.sp = sp
				return vval{}, vm.nullCallErr(in.Pos)
			}
			o := vm.heap[stack[sp-1].n]
			callee := o.class.byName[in.A]
			if callee == nil {
				vm.sp = sp
				return vval{}, vm.noMethodErr(in.Pos, in.A)
			}
			sp--
			var r vval
			if f := callee.accessor; f >= 0 {
				if vm.det != nil {
					vm.raceAccess(self, o, f, vclock.Read)
				}
				r = o.fields[f]
			} else {
				vm.sp = sp
				var err error
				r, err = vm.invoke(callee, self, o, sp+1, 0, in.Pos)
				if err != nil {
					return vval{}, err
				}
				stack = vm.stack
			}
			frame[ax[0]] = r
			w := frame[ax[1]]
			if w.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[2], ax[1])
			}
			stack[sp] = w
			sp++
		case opLoopLIntCmpJF:
			ax := code.aux[in.B : in.B+6]
			n := frame[ax[0]].n
			if n > 1_000_000 {
				vm.sp = sp
				return vval{}, fmt.Errorf("interp: %s: while loop exceeded 1e6 iterations", vm.cp.poss[ax[1]])
			}
			frame[ax[0]].n = n + 1
			v := frame[ax[2]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, ax[2])
			}
			cond, ok := cmpEval(Opcode(ax[4]), v, vval{n: int64(ax[3]), kind: vInt})
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[5], Opcode(ax[4]))
			}
			if !cond {
				pc = int(in.A) - 1
			}
		case opStoreJump:
			sp--
			frame[in.B] = stack[sp]
			pc = int(in.A) - 1
		case opSendLI:
			ax := code.aux[in.B : in.B+4]
			v := frame[ax[0]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[3], ax[0])
			}
			vm.sp = sp
			if err := vm.send(self, v, ax[2], vval{n: int64(ax[1]), kind: vInt}, in.Pos); err != nil {
				return vval{}, err
			}
			stack = vm.stack
		case opLIntAssert:
			ax := code.aux[in.B : in.B+5]
			v := frame[ax[0]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, ax[4], ax[0])
			}
			cond, ok := cmpEval(Opcode(ax[2]), v, vval{n: int64(ax[1]), kind: vInt})
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[3], Opcode(ax[2]))
			}
			if !cond {
				vm.sp = sp
				return vval{}, vm.assertErr(in.Pos)
			}
		case opCheckRecvPushInt:
			if stack[sp-1].kind != vRef {
				vm.sp = sp
				return vval{}, vm.nullCallErr(in.Pos)
			}
			if vm.heap[stack[sp-1].n].class.byName[in.A] == nil {
				vm.sp = sp
				return vval{}, vm.noMethodErr(in.Pos, in.A)
			}
			stack[sp] = vval{n: int64(in.B), kind: vInt}
			sp++
		case opMFIntCmpJF:
			ax := code.aux[in.B : in.B+4]
			cond, ok := cmpEval(Opcode(ax[2]), self.fields[ax[0]], vval{n: int64(ax[1]), kind: vInt})
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[3], Opcode(ax[2]))
			}
			if !cond {
				pc = int(in.A) - 1
			}
		case opLIntCmpJFMF2L:
			ax := code.aux[in.B : in.B+6]
			v := frame[ax[0]]
			if v.kind == vUndef {
				vm.sp = sp
				return vval{}, vm.undefErr(code, in.Pos, ax[0])
			}
			cond, ok := cmpEval(Opcode(ax[2]), v, vval{n: int64(ax[1]), kind: vInt})
			if !ok {
				vm.sp = sp
				return vval{}, vm.intsErrAt(ax[3], Opcode(ax[2]))
			}
			if !cond {
				pc = int(in.A) - 1
				break
			}
			frame[ax[5]] = self.fields[ax[4]]
		case opPushIntCallObjVoid:
			stack[sp] = vval{n: int64(in.B), kind: vInt}
			sp++
			sp -= 2
			o := vm.heap[stack[sp].n] // opCheckRecv validated the Ref
			callee := o.class.byName[in.A]
			vm.sp = sp
			if _, err := vm.invoke(callee, self, o, sp+1, 1, in.Pos); err != nil {
				return vval{}, err
			}
			stack = vm.stack
		}
	}
	vm.sp = sp
	return vval{}, nil
}

// int2 reads the two operands of an integer op from the stack top; the
// caller adjusts sp. Small enough to inline into the instruction loop.
func int2(stack []vval, sp int) (int64, int64, bool) {
	l := stack[sp-2]
	r := stack[sp-1]
	return l.n, r.n, l.kind == vInt && r.kind == vInt
}

// Fault constructors stay out of line: a fmt.Errorf call site expands to
// ~100 bytes of argument-boxing code, and with dozens of fault paths inside
// the instruction switch the inline form dilutes the loop's
// instruction-cache locality.

//go:noinline
func (vm *vmState) undefErr(code *compiledCode, pos, slot int32) error {
	return fmt.Errorf("interp: %s: undefined variable %q", vm.cp.poss[pos], code.localNames[slot])
}

//go:noinline
func (vm *vmState) nullCallErr(pos int32) error {
	return fmt.Errorf("interp: %s: method call on null or non-object", vm.cp.poss[pos])
}

//go:noinline
func (vm *vmState) noMethodErr(pos, name int32) error {
	return fmt.Errorf("interp: %s: no method %q", vm.cp.poss[pos], vm.cp.methodNames[name])
}

//go:noinline
func (vm *vmState) assertErr(pos int32) error {
	return assertionError{msg: "at " + vm.cp.poss[pos]}
}

//go:noinline
func (vm *vmState) divZeroErr(pos int32, what string) error {
	return fmt.Errorf("interp: %s: %s by zero", vm.cp.poss[pos], what)
}

//go:noinline
func (vm *vmState) loopErr(pos int32) error {
	return fmt.Errorf("interp: %s: while loop exceeded 1e6 iterations", vm.cp.poss[pos])
}

//go:noinline
func (vm *vmState) intsErr(in *Instr) error {
	return vm.intsErrAt(in.Pos, in.Op)
}

//go:noinline
func (vm *vmState) intsErrAt(pos int32, op Opcode) error {
	return fmt.Errorf("interp: %s: %q requires integers", vm.cp.poss[pos], opSymbol(op))
}

// cmpEval evaluates a fused comparison on its two operands; ok is false
// when an ordered comparison sees a non-integer (the walker's fault).
func cmpEval(op Opcode, l, r vval) (cond, ok bool) {
	switch op {
	case opEq:
		return l == r, true
	case opNe:
		return l != r, true
	}
	if l.kind != vInt || r.kind != vInt {
		return false, false
	}
	switch op {
	case opLt:
		cond = l.n < r.n
	case opLe:
		cond = l.n <= r.n
	case opGt:
		cond = l.n > r.n
	case opGe:
		cond = l.n >= r.n
	}
	return cond, true
}
