package interp

// Bytecode compilation: each checked Program's machine, monitor and class
// bodies are lowered once into compact stack-machine code (a flat []Instr
// with an operand stack and a constant pool), cached on the Program via
// AuxLoad/AuxStore alongside the compiled dispatch schemas, and shared
// read-only by every Run call and seed. Every name the tree-walker resolves
// through a map at dispatch time — locals, fields, events, states, methods
// — is resolved here, at compile time, to a dense index.
//
// The compiler builds on schemasFor: per-state dispatch precedence
// (do < goto < defer < ignore) is inherited from the compiled schemas by
// construction, then flattened into event-indexed arrays.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/psharp-go/psharp/lang"
)

// Opcode is one VM operation.
type Opcode uint8

// The instruction set. Operands live in Instr.A/B; Instr.Pos indexes the
// program's interned source-position strings for ops that can fault.
const (
	opPushInt   Opcode = iota // push Int(A)
	opPushConst               // push consts[A] (int literals outside int32)
	opPushTrue
	opPushFalse
	opPushNull
	opPop
	opLoadLocal   // push frame[A]; error if undefined (Pos)
	opStoreLocal  // frame[A] = pop
	opDeclLocal   // frame[A] = zero value of kind B
	opLoadMField  // push machine field A
	opStoreMField // machine field A = pop
	opLoadOField  // push this-object field A (race-detector read)
	opStoreOField // this-object field A = pop (race-detector write)
	opJump        // pc = A
	opJumpFalse   // pc = A if !pop
	opJumpTrue    // pc = A if pop
	opNot
	opNeg
	opAdd
	opSub
	opMul
	opDiv // Pos: division by zero
	opMod // Pos: modulo by zero
	opLt
	opLe
	opGt
	opGe
	opEq
	opNe
	opLoopCheck // hidden counter frame[A]: fail after 1e6 iterations (Pos)
	opAssert    // fail unless pop is true (Pos)
	opSend      // send event A to machine pop (payload pre-popped if B); Pos
	opRaise     // raise event A (payload popped if B); ends the block
	opReturn    // return (value popped if A); ends the block
	opCallSelf  // call own machine/class method A; args on stack
	opCheckRecv // verify stack top is a Ref whose class has method name A (Pos)
	opCallObj   // call method name A on object below the B args on stack
	opCreate    // push id of a new machine A instance (runs its entry)
	opNew       // push Ref to a new class A instance
	opBadThis   // fault: bare this used as a value (Pos)

	// Fused superinstructions, produced by the peephole pass (fuseCode).
	// Each is exactly the two-instruction sequence it replaces; in every
	// fusion only the load-local half can fault, so the fused Pos is that
	// half's position and messages stay walker-identical.
	opStoreLoad     // frame[A] = pop, then push frame[B] (undefined: Pos)
	opMFieldToLocal // frame[B] = machine field A
	opLocalToMField // machine field B = frame[A] (undefined: Pos)
	opLoadPushInt   // push frame[A] (undefined: Pos), then push Int(B)
	opEqInt         // replace top with top == Int(A)
	opDecl2         // declare locals A&mask/A>>declShift and B&mask/B>>declShift
	opLoad2         // push frame[A&mask] (undefined: B) and frame[A>>loadShift] (undefined: Pos)
	opCallMethod    // fused zero-arg opCheckRecv + opCallObj on method name A (Pos)
	opIntToMField   // machine field B = Int(A)
	opMFieldPushInt // push machine field A, then Int(B)
	opCmpJF         // comparison B (an Opcode; faults at Pos) + jump to A if false
	opAssertCmp     // comparison B (an Opcode; faults at A) + assert (fails at Pos)

	// Second-pass fusions: one half is itself a fused op, so these only
	// form once the first pass has run (fuseCode iterates to a fixpoint).
	// Operands that no longer fit the three instruction fields live in the
	// code's aux table, indexed by B.
	opSendLL             // send: dst frame[A&mask], payload frame[A>>loadShift]; aux[B] = loadPos1, loadPos2, event; Pos = send
	opAddToMField        // machine field A = pop + pop (non-int: Pos)
	opLocalCallMethod    // call method name A>>loadShift on object frame[A&mask] (undefined: B; call faults: Pos)
	opLocalToOField      // object field B = frame[A] (undefined: Pos); race-checked write
	opMFieldAddInt       // push machine field A + Int(B) (non-int field: Pos)
	opLIntCmpJF          // aux[B] = slot, k, cmp Opcode, cmpPos: jump to A unless frame[slot] cmp Int(k) (undefined: Pos)
	opStoreRetLocal      // frame[A] = pop, then return frame[B] (undefined: Pos)
	opDeclLoadOField     // declare local A&mask/A>>declShift, then push object field B (race-detector read)
	opRetOField          // return object field A (race-detector read) -- a collapsed getter body
	opMFSendLL           // frame[aux[B+4]] = machine field aux[B+3], then the opSendLL body
	opMFAddIntToMF       // machine field A>>loadShift = machine field A&mask + Int(B) (non-int: Pos)
	opCallObjVoid        // opCallObj with the null result discarded (fused trailing pop)
	opMF2L2              // frame[A>>loadShift] = machine field A&mask; frame[B>>loadShift] = machine field B&mask
	opDecl2MF2L          // opDecl2 for A and aux[B], then frame[aux[B+2]] = machine field aux[B+1]
	opNewStoreLoad       // frame[A>>loadShift] = new object of class A&mask, then push frame[B] (undefined: Pos)
	opCreateStore        // frame[B] = create machine A (create faults: Pos)
	opSendLL2            // two opSendLL bodies back to back; operands in aux[B:B+10]
	opLIntCmpJFL2MF      // opLIntCmpJF (aux[B:B+4], undefined: Pos) falling through into local-to-machine-field aux[B+4:B+7]
	opMFIntAssert        // assert machine field aux[B] cmp aux[B+2] Int(aux[B+1]) (non-int: aux[B+3]; failure: Pos)
	opL2OF2              // two race-checked object-field stores from locals; operands in aux[B:B+6]
	opDecl3              // declare three locals: packed pairs in A, B, and Pos (Pos holds an operand, not a position)
	opLAddIntToMF        // machine field aux[B+3] = frame[aux[B]] + Int(aux[B+1]) (undefined: aux[B+2]; non-int: aux[B+4])
	opLocalCallMethodSL  // opLocalCallMethod, then store the result and load aux[B+2] (storeload aux[B+1:B+4])
	opCallMethodSL       // opCallMethod, then store the result and load aux[B+1] (storeload aux[B:B+3])
	opLoopLIntCmpJF      // loop head: bound-check counter aux[B]/aux[B+1], then opLIntCmpJF over aux[B+2:B+6]
	opStoreJump          // frame[B] = pop, then jump to A (a loop body's closing store)
	opSendLI             // send event aux[B+2] to machine frame[aux[B]] with Int(aux[B+1]) payload (undefined: aux[B+3])
	opLIntAssert         // assert frame[aux[B]] cmp aux[B+2] Int(aux[B+1]) (undefined: aux[B+4]; non-int: aux[B+3]; failure: Pos)
	opCheckRecvPushInt   // opCheckRecv for method A, then push Int(B)
	opMFIntCmpJF         // jump to A unless machine field aux[B] cmp aux[B+2] Int(aux[B+1]) (non-int: aux[B+3])
	opLIntCmpJFMF2L      // opLIntCmpJF (aux[B:B+4], undefined: Pos) falling through into machine-field-to-local aux[B+4:B+6]
	opPushIntCallObjVoid // push Int(B) as the sole argument, then opCallObjVoid for method A
)

// isCmp reports whether op is a binary comparison eligible for fusing with
// a following opJumpFalse or opAssert.
func isCmp(op Opcode) bool {
	switch op {
	case opLt, opLe, opGt, opGe, opEq, opNe:
		return true
	}
	return false
}

// Operand packing for the fused declaration and load pairs: opDecl2 packs
// slot and zero kind per operand, opLoad2 packs both slots into A so B and
// Pos can carry each load's fault position.
const (
	declShift = 24
	declMask  = 1<<declShift - 1
	loadShift = 16
	loadMask  = 1<<loadShift - 1
)

var opNames = [...]string{
	opPushInt: "pushint", opPushConst: "pushconst", opPushTrue: "pushtrue",
	opPushFalse: "pushfalse", opPushNull: "pushnull", opPop: "pop",
	opLoadLocal: "loadlocal", opStoreLocal: "storelocal", opDeclLocal: "decllocal",
	opLoadMField: "loadmfield", opStoreMField: "storemfield",
	opLoadOField: "loadofield", opStoreOField: "storeofield",
	opJump: "jump", opJumpFalse: "jumpfalse", opJumpTrue: "jumptrue",
	opNot: "not", opNeg: "neg", opAdd: "add", opSub: "sub", opMul: "mul",
	opDiv: "div", opMod: "mod", opLt: "lt", opLe: "le", opGt: "gt", opGe: "ge",
	opEq: "eq", opNe: "ne", opLoopCheck: "loopcheck", opAssert: "assert",
	opSend: "send", opRaise: "raise", opReturn: "return",
	opCallSelf: "callself", opCheckRecv: "checkrecv", opCallObj: "callobj",
	opCreate: "create", opNew: "new", opBadThis: "badthis",
	opStoreLoad: "storeload", opMFieldToLocal: "mfield2local",
	opLocalToMField: "local2mfield", opLoadPushInt: "loadpushint",
	opEqInt: "eqint", opDecl2: "decl2", opLoad2: "load2",
	opCallMethod: "callmethod", opIntToMField: "int2mfield",
	opMFieldPushInt: "mfieldpushint", opCmpJF: "cmpjumpfalse",
	opAssertCmp: "assertcmp", opSendLL: "sendll", opAddToMField: "add2mfield",
	opLocalCallMethod: "localcallmethod", opLocalToOField: "local2ofield",
	opMFieldAddInt: "mfieldaddint", opLIntCmpJF: "lintcmpjumpfalse",
	opStoreRetLocal: "storeretlocal", opDeclLoadOField: "declloadofield",
	opRetOField: "retofield", opMFSendLL: "mfsendll",
	opMFAddIntToMF: "mfaddint2mf", opCallObjVoid: "callobjvoid",
	opMF2L2: "mfield2local2", opDecl2MF2L: "decl2mfield2local",
	opNewStoreLoad: "newstoreload", opCreateStore: "createstore",
	opSendLL2: "sendll2", opLIntCmpJFL2MF: "lintcmpjf2mfield",
	opMFIntAssert: "mfintassert", opL2OF2: "local2ofield2",
	opDecl3: "decl3", opLAddIntToMF: "laddint2mf",
	opLocalCallMethodSL: "localcallmethodsl", opCallMethodSL: "callmethodsl",
	opLoopLIntCmpJF: "looplintcmpjf", opStoreJump: "storejump",
	opSendLI: "sendli", opLIntAssert: "lintassert",
	opCheckRecvPushInt: "checkrecvpushint", opMFIntCmpJF: "mfintcmpjf",
	opLIntCmpJFMF2L: "lintcmpjf2local", opPushIntCallObjVoid: "pushintcallobjvoid",
}

func (op Opcode) String() string { return opNames[op] }

// opSymbol maps an arithmetic/comparison opcode back to its source operator
// for the walker-identical "requires integers" fault message.
func opSymbol(op Opcode) string {
	switch op {
	case opAdd:
		return "+"
	case opSub:
		return "-"
	case opMul:
		return "*"
	case opDiv:
		return "/"
	case opMod:
		return "%"
	case opLt:
		return "<"
	case opLe:
		return "<="
	case opGt:
		return ">"
	case opGe:
		return ">="
	}
	return op.String()
}

// Instr is one fixed-width instruction.
type Instr struct {
	Op   Opcode
	A, B int32
	// Pos indexes compiledProgram.poss (-1 when the op cannot fault).
	Pos int32
}

// compiledCode is one executable unit: a method body or a state entry block.
// Locals (parameters first) live in dense frame slots.
type compiledCode struct {
	name    string
	machine *compiledMachine // declaring machine/monitor; nil for class code
	class   *compiledClass   // declaring class; nil for machine code
	ins     []Instr
	nparams int
	nlocals int
	// localNames names each slot for faults and disassembly; hidden loop
	// counters are "".
	localNames []string
	// payloadZero substitutes for a missing event payload when this code is
	// a one-parameter handler.
	payloadZero vval
	// maxstack bounds the operand-stack depth this frame can reach (each
	// instruction pushes at most one value); frame prologues reserve it so
	// the push fast path never grows the stack.
	maxstack int
	// aux holds overflow operands for second-pass superinstructions whose
	// combined operands no longer fit one Instr (indexed by the Instr's B).
	aux []int32
	// accessor is the object-field index when the whole body collapsed to a
	// single opRetOField (a getter); call sites then read the field directly
	// instead of pushing a frame. -1 otherwise.
	accessor int32
	// needsClear marks a body where some local slot's first reference in
	// code order is a read: only then must the frame be zeroed on entry so
	// the slot reads as undefined. Structured lowering means a declaration
	// always executes before any in-scope use, so for nearly every body the
	// per-call memclr can be skipped (parameter slots are always written by
	// the caller, or explicitly cleared on a class-confused short call).
	needsClear bool
}

// vdispatch is one event-indexed dispatch cell (compare dispatchEntry: the
// method and target are compiled, and the event is the array index).
type vdispatch struct {
	kind   dispatchKind
	method *compiledCode
	target *compiledState
}

// compiledState mirrors stateSchema with the dispatch map flattened to an
// event-indexed array.
type compiledState struct {
	decl     *lang.StateDecl
	hot      bool
	entry    *compiledCode // nil when the state has no entry block
	dispatch []vdispatch   // indexed by interned event id
}

// compiledMachine is the bytecode form of one machine or monitor
// declaration.
type compiledMachine struct {
	decl      *lang.MachineDecl
	fieldZero []vval // initial field values, copied per instance
	states    []*compiledState
	start     *compiledState
	methods   []*compiledCode
}

// compiledClass is the bytecode form of one class declaration.
type compiledClass struct {
	decl       *lang.ClassDecl
	fieldZero  []vval
	fieldNames []string // race-detector location names
	methods    []*compiledCode
	// byName resolves an interned method name to this class's method, or
	// nil. Receiver classes are dynamic (event payloads are untyped, so a
	// handler parameter's runtime class may differ from its declared one),
	// and the walker resolves methods on the runtime class — this table
	// keeps that lookup a single array index.
	byName []*compiledCode
}

// compiledProgram is one Program's complete bytecode: shared, immutable
// after construction, plus a pool of recycled VM run states.
type compiledProgram struct {
	prog          *lang.Program
	events        []string
	machines      []*compiledMachine
	monitors      []*compiledMachine
	classes       []*compiledClass
	consts        []vval
	poss          []string
	methodNames   []string
	machineByName map[string]*compiledMachine
	pool          sync.Pool
	// mainCache remembers the last entry-machine lookup: nearly every Run
	// of a Program starts the same machine, and at ~1us-per-schedule the
	// per-run string-map probe is measurable.
	mainCache atomic.Pointer[mainEntry]
}

// mainEntry is one cached machineByName resolution.
type mainEntry struct {
	name string
	cm   *compiledMachine
}

// bytecodeKey keys the cached bytecode in a Program's auxiliary store.
type bytecodeKey struct{}

var (
	// bytecodeMu serializes first-use compilation so each Program's
	// bytecode is built exactly once even under concurrent Run calls.
	bytecodeMu sync.Mutex
	// bytecodeCompiles counts program bytecode compilations; the
	// compile-once test observes it.
	bytecodeCompiles atomic.Int64
)

// compiledFor returns prog's bytecode, compiling it exactly once per loaded
// Program. Safe for concurrent Run calls over the same Program.
func compiledFor(prog *lang.Program) *compiledProgram {
	if v, ok := prog.AuxLoad(bytecodeKey{}); ok {
		return v.(*compiledProgram)
	}
	bytecodeMu.Lock()
	defer bytecodeMu.Unlock()
	if v, ok := prog.AuxLoad(bytecodeKey{}); ok {
		return v.(*compiledProgram)
	}
	cp := compileProgram(prog)
	prog.AuxStore(bytecodeKey{}, cp)
	return cp
}

// Unboxed zero values per declared type, indexed by zkind.
var zeroByKind = [...]vval{
	{kind: vInt},
	{kind: vBool},
	{n: -1, kind: vMachine}, // the walker's MachineID(-1) zero
	{kind: vNull},
}

const (
	zkindInt int32 = iota
	zkindBool
	zkindMachine
	zkindNull
)

func zkindOf(t lang.Type) int32 {
	switch t.Name {
	case "int":
		return zkindInt
	case "bool":
		return zkindBool
	case "machine":
		return zkindMachine
	default:
		return zkindNull
	}
}

func zeroFields(fields []*lang.VarDecl) []vval {
	out := make([]vval, len(fields))
	for i, f := range fields {
		out[i] = zeroByKind[zkindOf(f.Type)]
	}
	return out
}

// compiler lowers one checked Program. Compilation cannot fail on checker
// output; an unknown AST node is an internal inconsistency and panics.
type compiler struct {
	prog          *lang.Program
	st            *lang.SymbolTable
	cp            *compiledProgram
	posIdx        map[string]int32
	constIdx      map[int64]int32
	methodNameIdx map[string]int32
}

func compileProgram(prog *lang.Program) *compiledProgram {
	st := lang.Intern(prog)
	ps := schemasFor(prog)
	cp := &compiledProgram{
		prog:          prog,
		events:        st.Events,
		machineByName: make(map[string]*compiledMachine, len(prog.Machines)),
	}
	c := &compiler{
		prog:          prog,
		st:            st,
		cp:            cp,
		posIdx:        make(map[string]int32),
		constIdx:      make(map[int64]int32),
		methodNameIdx: make(map[string]int32),
	}
	for _, cd := range prog.Classes {
		cc := &compiledClass{decl: cd, fieldZero: zeroFields(cd.Fields)}
		for _, f := range cd.Fields {
			cc.fieldNames = append(cc.fieldNames, f.Name)
		}
		cp.classes = append(cp.classes, cc)
	}
	for _, md := range prog.Machines {
		cm := &compiledMachine{decl: md, fieldZero: zeroFields(md.Fields)}
		cp.machines = append(cp.machines, cm)
		cp.machineByName[md.Name] = cm
	}
	for _, md := range prog.Monitors {
		cp.monitors = append(cp.monitors, &compiledMachine{decl: md, fieldZero: zeroFields(md.Fields)})
	}
	for i, cd := range prog.Classes {
		cc := cp.classes[i]
		for _, meth := range cd.Methods {
			cc.methods = append(cc.methods,
				c.compileCode(cd.Name+"."+meth.Name, meth, nil, cc))
		}
	}
	for i, md := range prog.Machines {
		c.compileMachine(cp.machines[i], ps.machines[md])
	}
	for i, md := range prog.Monitors {
		c.compileMachine(cp.monitors[i], ps.monitors[md])
	}
	// Dynamic-dispatch tables: every method name interned at any call site,
	// resolvable per class with one index.
	for i, cd := range prog.Classes {
		cc := cp.classes[i]
		cc.byName = make([]*compiledCode, len(cp.methodNames))
		for ni, name := range cp.methodNames {
			if md, ok := cd.MethodByName[name]; ok {
				cc.byName[ni] = cc.methods[c.st.MethodIndex[md]]
			}
		}
	}
	cp.pool.New = func() any { return newVMState(cp) }
	bytecodeCompiles.Add(1)
	return cp
}

// compileMachine lowers one machine/monitor's methods, entry blocks and
// dispatch tables. The dispatch cells come from the already-merged schema
// maps, so the walker's precedence is inherited, not re-derived.
func (c *compiler) compileMachine(cm *compiledMachine, ms *machineSchema) {
	md := cm.decl
	for _, meth := range md.Methods {
		cm.methods = append(cm.methods,
			c.compileCode(md.Name+"."+meth.Name, meth, cm, nil))
	}
	cm.states = make([]*compiledState, len(md.States))
	for i, sd := range md.States {
		cs := &compiledState{decl: sd, hot: sd.Hot}
		if sd.Entry != nil {
			cs.entry = c.compileBlock(md.Name+"."+sd.Name+".entry", sd.Entry, cm)
		}
		cm.states[i] = cs
	}
	nev := len(c.st.Events)
	for i, sd := range md.States {
		ss := ms.states[sd.Name]
		d := make([]vdispatch, nev)
		for evt, e := range ss.dispatch {
			vd := vdispatch{kind: e.kind}
			if e.method != nil {
				vd.method = cm.methods[c.st.MethodIndex[e.method]]
			}
			if e.target != nil {
				vd.target = cm.states[c.st.StateIndex[e.target.decl]]
			}
			d[c.st.EventIndex[evt]] = vd
		}
		cm.states[i].dispatch = d
	}
	cm.start = cm.states[c.st.StateIndex[md.StartState]]
}

func (c *compiler) compileCode(name string, meth *lang.MethodDecl, cm *compiledMachine, cc *compiledClass) *compiledCode {
	return c.lower(name, meth.Params, meth.Body, cm, cc)
}

func (c *compiler) compileBlock(name string, body []lang.Stmt, cm *compiledMachine) *compiledCode {
	return c.lower(name, nil, body, cm, nil)
}

func (c *compiler) lower(name string, params []*lang.VarDecl, body []lang.Stmt, cm *compiledMachine, cc *compiledClass) *compiledCode {
	code := &compiledCode{name: name, machine: cm, class: cc, nparams: len(params)}
	decls := lang.CollectLocals(params, body)
	g := &gen{c: c, code: code, slots: make(map[string]int32, len(decls))}
	for _, d := range decls {
		g.slots[d.Name] = int32(len(code.localNames))
		code.localNames = append(code.localNames, d.Name)
	}
	if len(params) == 1 {
		code.payloadZero = zeroByKind[zkindOf(params[0].Type)]
	}
	g.stmts(body)
	code.nlocals = len(code.localNames)
	written := make([]bool, code.nlocals)
	for i := 0; i < code.nparams; i++ {
		written[i] = true
	}
	for _, in := range code.ins {
		switch in.Op {
		case opLoadLocal, opLoopCheck:
			if !written[in.A] {
				code.needsClear = true
			}
		case opStoreLocal, opDeclLocal:
			written[in.A] = true
		}
	}
	// The depth bound is computed before fusion: fusion only ever merges two
	// instructions that pushed at most one value each, so the pre-fusion
	// bound stays conservative for the shorter stream.
	code.maxstack = len(code.ins) + 1
	fuseCode(code)
	code.accessor = -1
	if len(code.ins) == 1 && code.ins[0].Op == opRetOField && code.nparams == 0 {
		code.accessor = code.ins[0].A
	}
	return code
}

// fuseCode is the peephole pass: it rewrites frequent two-instruction
// sequences into single superinstructions, halving dispatch overhead on the
// hottest local/field traffic. A pair is only fused when its second
// instruction is not a jump target (a jump into the middle of a pair would
// skip half its effect); jump operands are remapped onto the shorter
// stream afterwards. The pass repeats to a fixpoint so pairs whose halves
// are themselves fusions (load2+send, loadpushint+cmpjumpfalse, ...) fold
// too.
func fuseCode(code *compiledCode) {
	for fusePass(code) {
	}
}

func fusePass(code *compiledCode) bool {
	ins := code.ins
	isTarget := make([]bool, len(ins)+1)
	for _, in := range ins {
		switch in.Op {
		case opJump, opJumpFalse, opJumpTrue, opCmpJF, opLIntCmpJF, opLIntCmpJFL2MF,
			opLoopLIntCmpJF, opStoreJump, opMFIntCmpJF, opLIntCmpJFMF2L:
			isTarget[in.A] = true
		}
	}
	fused := false
	newpc := make([]int32, len(ins)+1)
	j := 0
	for i := 0; i < len(ins); {
		newpc[i] = int32(j)
		if i+1 < len(ins) && !isTarget[i+1] {
			a, b := ins[i], ins[i+1]
			var f Instr
			switch {
			case a.Op == opStoreLocal && b.Op == opLoadLocal:
				f = Instr{Op: opStoreLoad, A: a.A, B: b.A, Pos: b.Pos}
			case a.Op == opLoadMField && b.Op == opStoreLocal:
				f = Instr{Op: opMFieldToLocal, A: a.A, B: b.A, Pos: -1}
			case a.Op == opLoadLocal && b.Op == opStoreMField:
				f = Instr{Op: opLocalToMField, A: a.A, B: b.A, Pos: a.Pos}
			case a.Op == opLoadLocal && b.Op == opPushInt:
				f = Instr{Op: opLoadPushInt, A: a.A, B: b.A, Pos: a.Pos}
			case a.Op == opPushInt && b.Op == opEq:
				f = Instr{Op: opEqInt, A: a.A, Pos: -1}
			case a.Op == opDeclLocal && b.Op == opDeclLocal &&
				a.A <= declMask && b.A <= declMask:
				f = Instr{Op: opDecl2, A: a.A | a.B<<declShift, B: b.A | b.B<<declShift, Pos: -1}
			case a.Op == opLoadLocal && b.Op == opLoadLocal &&
				a.A <= loadMask && b.A <= loadMask:
				f = Instr{Op: opLoad2, A: a.A | b.A<<loadShift, B: a.Pos, Pos: b.Pos}
			case a.Op == opCheckRecv && b.Op == opCallObj && a.A == b.A && b.B == 0:
				// Adjacency implies a zero-argument call: the compiler pushes
				// arguments between the receiver check and the call.
				f = Instr{Op: opCallMethod, A: b.A, B: 0, Pos: b.Pos}
			case a.Op == opPushInt && b.Op == opStoreMField:
				f = Instr{Op: opIntToMField, A: a.A, B: b.A, Pos: -1}
			case a.Op == opLoadMField && b.Op == opPushInt:
				f = Instr{Op: opMFieldPushInt, A: a.A, B: b.A, Pos: -1}
			case isCmp(a.Op) && b.Op == opJumpFalse:
				f = Instr{Op: opCmpJF, A: b.A, B: int32(a.Op), Pos: a.Pos}
			case isCmp(a.Op) && b.Op == opAssert:
				f = Instr{Op: opAssertCmp, A: a.Pos, B: int32(a.Op), Pos: b.Pos}
			case a.Op == opAdd && b.Op == opStoreMField:
				f = Instr{Op: opAddToMField, A: b.A, Pos: a.Pos}
			case a.Op == opLoadLocal && b.Op == opStoreOField:
				f = Instr{Op: opLocalToOField, A: a.A, B: b.A, Pos: a.Pos}
			case a.Op == opLoad2 && b.Op == opSend && b.B == 1:
				f = Instr{Op: opSendLL, A: a.A, B: int32(len(code.aux)), Pos: b.Pos}
				code.aux = append(code.aux, a.B, a.Pos, b.A)
			case a.Op == opLoadLocal && b.Op == opCallMethod &&
				a.A <= loadMask && b.A <= loadMask:
				f = Instr{Op: opLocalCallMethod, A: a.A | b.A<<loadShift, B: a.Pos, Pos: b.Pos}
			case a.Op == opMFieldPushInt && b.Op == opAdd:
				f = Instr{Op: opMFieldAddInt, A: a.A, B: a.B, Pos: b.Pos}
			case a.Op == opLoadPushInt && b.Op == opCmpJF:
				f = Instr{Op: opLIntCmpJF, A: b.A, B: int32(len(code.aux)), Pos: a.Pos}
				code.aux = append(code.aux, a.A, a.B, b.B, b.Pos)
			case a.Op == opStoreLoad && b.Op == opReturn && b.A == 1:
				f = Instr{Op: opStoreRetLocal, A: a.A, B: a.B, Pos: a.Pos}
			case a.Op == opDeclLocal && b.Op == opLoadOField && a.A <= declMask:
				f = Instr{Op: opDeclLoadOField, A: a.A | a.B<<declShift, B: b.A, Pos: -1}
			case a.Op == opDeclLoadOField && b.Op == opStoreRetLocal &&
				a.A&declMask == b.A && b.A == b.B:
				// The canonical getter body: declare a local, copy an object
				// field into it, return it. The local is written immediately
				// before being returned, so it can never be undefined and the
				// frame traffic is unobservable; only the race-detector read
				// and the returned value remain.
				f = Instr{Op: opRetOField, A: a.B, Pos: -1}
			case a.Op == opMFieldToLocal && b.Op == opSendLL:
				f = Instr{Op: opMFSendLL, A: b.A, B: int32(len(code.aux)), Pos: b.Pos}
				code.aux = append(code.aux,
					code.aux[b.B], code.aux[b.B+1], code.aux[b.B+2], a.A, a.B)
			case a.Op == opMFieldPushInt && b.Op == opAddToMField &&
				a.A <= loadMask && b.A <= loadMask:
				f = Instr{Op: opMFAddIntToMF, A: a.A | b.A<<loadShift, B: a.B, Pos: b.Pos}
			case a.Op == opCallObj && b.Op == opPop:
				f = Instr{Op: opCallObjVoid, A: a.A, B: a.B, Pos: a.Pos}
			case a.Op == opMFieldToLocal && b.Op == opMFieldToLocal &&
				a.A <= loadMask && a.B <= loadMask && b.A <= loadMask && b.B <= loadMask:
				f = Instr{Op: opMF2L2, A: a.A | a.B<<loadShift, B: b.A | b.B<<loadShift, Pos: -1}
			case a.Op == opDecl2 && b.Op == opMFieldToLocal:
				f = Instr{Op: opDecl2MF2L, A: a.A, B: int32(len(code.aux)), Pos: -1}
				code.aux = append(code.aux, a.B, b.A, b.B)
			case a.Op == opNew && b.Op == opStoreLoad && a.A <= loadMask && b.A <= loadMask:
				f = Instr{Op: opNewStoreLoad, A: a.A | b.A<<loadShift, B: b.B, Pos: b.Pos}
			case a.Op == opCreate && b.Op == opStoreLocal:
				f = Instr{Op: opCreateStore, A: a.A, B: b.A, Pos: a.Pos}
			case a.Op == opSendLL && b.Op == opSendLL:
				f = Instr{Op: opSendLL2, B: int32(len(code.aux)), Pos: b.Pos}
				code.aux = append(code.aux,
					a.A, code.aux[a.B], code.aux[a.B+1], code.aux[a.B+2], a.Pos,
					b.A, code.aux[b.B], code.aux[b.B+1], code.aux[b.B+2], b.Pos)
			case a.Op == opLIntCmpJF && b.Op == opLocalToMField:
				f = Instr{Op: opLIntCmpJFL2MF, A: a.A, B: int32(len(code.aux)), Pos: a.Pos}
				code.aux = append(code.aux,
					code.aux[a.B], code.aux[a.B+1], code.aux[a.B+2], code.aux[a.B+3],
					b.A, b.B, b.Pos)
			case a.Op == opMFieldPushInt && b.Op == opAssertCmp:
				f = Instr{Op: opMFIntAssert, B: int32(len(code.aux)), Pos: b.Pos}
				code.aux = append(code.aux, a.A, a.B, b.B, b.A)
			case a.Op == opLocalToOField && b.Op == opLocalToOField:
				f = Instr{Op: opL2OF2, B: int32(len(code.aux)), Pos: -1}
				code.aux = append(code.aux, a.A, a.B, a.Pos, b.A, b.B, b.Pos)
			case a.Op == opDecl2 && b.Op == opDeclLocal && b.A <= declMask:
				// Pos carries the third packed slot/kind pair, not a source
				// position: declarations cannot fault.
				f = Instr{Op: opDecl3, A: a.A, B: a.B, Pos: b.A | b.B<<declShift}
			case a.Op == opLoadPushInt && b.Op == opAddToMField && b.A <= loadMask:
				f = Instr{Op: opLAddIntToMF, B: int32(len(code.aux)), Pos: -1}
				code.aux = append(code.aux, a.A, a.B, a.Pos, b.A, b.Pos)
			case a.Op == opLocalCallMethod && b.Op == opStoreLoad:
				f = Instr{Op: opLocalCallMethodSL, A: a.A, B: int32(len(code.aux)), Pos: a.Pos}
				code.aux = append(code.aux, a.B, b.A, b.B, b.Pos)
			case a.Op == opCallMethod && b.Op == opStoreLoad:
				f = Instr{Op: opCallMethodSL, A: a.A, B: int32(len(code.aux)), Pos: a.Pos}
				code.aux = append(code.aux, b.A, b.B, b.Pos)
			case a.Op == opLoopCheck && b.Op == opLIntCmpJF:
				f = Instr{Op: opLoopLIntCmpJF, A: b.A, B: int32(len(code.aux)), Pos: b.Pos}
				code.aux = append(code.aux, a.A, a.Pos,
					code.aux[b.B], code.aux[b.B+1], code.aux[b.B+2], code.aux[b.B+3])
			case a.Op == opStoreLocal && b.Op == opJump:
				f = Instr{Op: opStoreJump, A: b.A, B: a.A, Pos: -1}
			case a.Op == opLoadPushInt && b.Op == opSend && b.B == 1:
				f = Instr{Op: opSendLI, B: int32(len(code.aux)), Pos: b.Pos}
				code.aux = append(code.aux, a.A, a.B, b.A, a.Pos)
			case a.Op == opLoadPushInt && b.Op == opAssertCmp:
				f = Instr{Op: opLIntAssert, B: int32(len(code.aux)), Pos: b.Pos}
				code.aux = append(code.aux, a.A, a.B, b.B, b.A, a.Pos)
			case a.Op == opCheckRecv && b.Op == opPushInt:
				f = Instr{Op: opCheckRecvPushInt, A: a.A, B: b.A, Pos: a.Pos}
			case a.Op == opMFieldPushInt && b.Op == opCmpJF:
				f = Instr{Op: opMFIntCmpJF, A: b.A, B: int32(len(code.aux)), Pos: -1}
				code.aux = append(code.aux, a.A, a.B, b.B, b.Pos)
			case a.Op == opLIntCmpJF && b.Op == opMFieldToLocal:
				f = Instr{Op: opLIntCmpJFMF2L, A: a.A, B: int32(len(code.aux)), Pos: a.Pos}
				code.aux = append(code.aux,
					code.aux[a.B], code.aux[a.B+1], code.aux[a.B+2], code.aux[a.B+3], b.A, b.B)
			case a.Op == opPushInt && b.Op == opCallObjVoid && b.B == 1:
				f = Instr{Op: opPushIntCallObjVoid, A: b.A, B: a.A, Pos: b.Pos}
			default:
				goto nofuse
			}
			ins[j] = f // j <= i: both pair members were read before this write
			fused = true
			i += 2
			j++
			continue
		}
	nofuse:
		ins[j] = ins[i]
		i++
		j++
	}
	newpc[len(ins)] = int32(j)
	code.ins = ins[:j]
	for k := range code.ins {
		switch code.ins[k].Op {
		case opJump, opJumpFalse, opJumpTrue, opCmpJF, opLIntCmpJF, opLIntCmpJFL2MF,
			opLoopLIntCmpJF, opStoreJump, opMFIntCmpJF, opLIntCmpJFMF2L:
			code.ins[k].A = newpc[code.ins[k].A]
		}
	}
	return fused
}

func (c *compiler) pos(p lang.Pos) int32 {
	s := p.String()
	if i, ok := c.posIdx[s]; ok {
		return i
	}
	i := int32(len(c.cp.poss))
	c.cp.poss = append(c.cp.poss, s)
	c.posIdx[s] = i
	return i
}

func (c *compiler) constant(v int64) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.cp.consts))
	c.cp.consts = append(c.cp.consts, vval{n: v, kind: vInt})
	c.constIdx[v] = i
	return i
}

func (c *compiler) methodName(name string) int32 {
	if i, ok := c.methodNameIdx[name]; ok {
		return i
	}
	i := int32(len(c.cp.methodNames))
	c.cp.methodNames = append(c.cp.methodNames, name)
	c.methodNameIdx[name] = i
	return i
}

// gen emits instructions for one code unit.
type gen struct {
	c     *compiler
	code  *compiledCode
	slots map[string]int32
}

func (g *gen) emit(op Opcode, a, b, pos int32) int {
	g.code.ins = append(g.code.ins, Instr{Op: op, A: a, B: b, Pos: pos})
	return len(g.code.ins) - 1
}

// patch points a previously emitted jump at the next instruction.
func (g *gen) patch(at int) { g.code.ins[at].A = int32(len(g.code.ins)) }

// hidden allocates an unnamed frame slot (while-loop iteration counters).
func (g *gen) hidden() int32 {
	s := int32(len(g.code.localNames))
	g.code.localNames = append(g.code.localNames, "")
	return s
}

// fieldSlot resolves a this-field name in the current holder; the second
// result is true for class (heap object) context.
func (g *gen) fieldSlot(name string) (int32, bool) {
	if g.code.class != nil {
		return int32(g.c.st.FieldSlot[g.code.class.decl.FieldByName[name]]), true
	}
	return int32(g.c.st.FieldSlot[g.code.machine.decl.FieldByName[name]]), false
}

func (g *gen) event(name string) int32 { return int32(g.c.st.EventIndex[name]) }

func (g *gen) stmts(body []lang.Stmt) {
	for _, s := range body {
		g.stmt(s)
	}
}

func (g *gen) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.LocalDecl:
		// The walker defines a local when its declaration executes, not at
		// frame entry — a use before that faults "undefined variable".
		g.emit(opDeclLocal, g.slots[st.Decl.Name], zkindOf(st.Decl.Type), -1)
	case *lang.AssignStmt:
		g.expr(st.Value)
		if st.ToField != "" {
			slot, onObj := g.fieldSlot(st.ToField)
			if onObj {
				g.emit(opStoreOField, slot, 0, -1)
			} else {
				g.emit(opStoreMField, slot, 0, -1)
			}
		} else {
			g.emit(opStoreLocal, g.slots[st.Target], 0, -1)
		}
	case *lang.ExprStmt:
		g.expr(st.X)
		g.emit(opPop, 0, 0, -1)
	case *lang.SendStmt:
		g.expr(st.Dst)
		hasP := int32(0)
		if st.Payload != nil {
			g.expr(st.Payload)
			hasP = 1
		}
		g.emit(opSend, g.event(st.Event), hasP, g.c.pos(st.Pos))
	case *lang.RaiseStmt:
		hasP := int32(0)
		if st.Payload != nil {
			g.expr(st.Payload)
			hasP = 1
		}
		g.emit(opRaise, g.event(st.Event), hasP, -1)
	case *lang.ReturnStmt:
		if st.Value != nil {
			g.expr(st.Value)
			g.emit(opReturn, 1, 0, -1)
		} else {
			g.emit(opReturn, 0, 0, -1)
		}
	case *lang.IfStmt:
		g.expr(st.Cond)
		jf := g.emit(opJumpFalse, 0, 0, -1)
		g.stmts(st.Then)
		if len(st.Else) > 0 {
			j := g.emit(opJump, 0, 0, -1)
			g.patch(jf)
			g.stmts(st.Else)
			g.patch(j)
		} else {
			g.patch(jf)
		}
	case *lang.WhileStmt:
		ctr := g.hidden()
		g.emit(opDeclLocal, ctr, zkindInt, -1)
		top := int32(len(g.code.ins))
		g.emit(opLoopCheck, ctr, 0, g.c.pos(st.Pos))
		g.expr(st.Cond)
		jf := g.emit(opJumpFalse, 0, 0, -1)
		g.stmts(st.Body)
		g.emit(opJump, top, 0, -1)
		g.patch(jf)
	case *lang.AssertStmt:
		g.expr(st.Cond)
		g.emit(opAssert, 0, 0, g.c.pos(st.Pos))
	default:
		panic(fmt.Sprintf("interp: cannot compile statement %T", s))
	}
}

func (g *gen) expr(e lang.Expr) {
	switch x := e.(type) {
	case *lang.IntLit:
		if x.Value >= math.MinInt32 && x.Value <= math.MaxInt32 {
			g.emit(opPushInt, int32(x.Value), 0, -1)
		} else {
			g.emit(opPushConst, g.c.constant(x.Value), 0, -1)
		}
	case *lang.BoolLit:
		if x.Value {
			g.emit(opPushTrue, 0, 0, -1)
		} else {
			g.emit(opPushFalse, 0, 0, -1)
		}
	case *lang.NullLit:
		g.emit(opPushNull, 0, 0, -1)
	case *lang.VarRef:
		g.emit(opLoadLocal, g.slots[x.Name], 0, g.c.pos(x.Pos))
	case *lang.ThisRef:
		g.emit(opBadThis, 0, 0, g.c.pos(x.Pos))
	case *lang.FieldRef:
		slot, onObj := g.fieldSlot(x.Field)
		if onObj {
			g.emit(opLoadOField, slot, 0, -1)
		} else {
			g.emit(opLoadMField, slot, 0, -1)
		}
	case *lang.NewExpr:
		g.emit(opNew, int32(g.c.st.ClassIndex[g.c.prog.ClassByName[x.Class]]), 0, -1)
	case *lang.CreateExpr:
		// The walker never evaluates a create payload; neither do we.
		g.emit(opCreate, int32(g.c.st.MachineIndex[g.c.prog.MachineByName[x.Machine]]), 0, -1)
	case *lang.CallExpr:
		g.call(x)
	case *lang.UnaryExpr:
		g.expr(x.X)
		if x.Op == "!" {
			g.emit(opNot, 0, 0, -1)
		} else {
			g.emit(opNeg, 0, 0, -1)
		}
	case *lang.BinaryExpr:
		g.binary(x)
	default:
		panic(fmt.Sprintf("interp: cannot compile expression %T", e))
	}
}

func (g *gen) call(x *lang.CallExpr) {
	if _, ok := x.Recv.(*lang.ThisRef); ok {
		// this.m(...): resolved statically — the executing code's own
		// holder is the runtime receiver by definition.
		var mi int
		if g.code.class != nil {
			mi = g.c.st.MethodIndex[g.code.class.decl.MethodByName[x.Method]]
		} else {
			mi = g.c.st.MethodIndex[g.code.machine.decl.MethodByName[x.Method]]
		}
		for _, a := range x.Args {
			g.expr(a)
		}
		g.emit(opCallSelf, int32(mi), 0, g.c.pos(x.Pos))
		return
	}
	// obj.m(...): the receiver's runtime class is dynamic, so the call
	// resolves through the interned method-name table. The walker checks
	// the receiver and resolves the method before evaluating arguments;
	// opCheckRecv keeps that fault order.
	ni := g.c.methodName(x.Method)
	g.expr(x.Recv)
	g.emit(opCheckRecv, ni, 0, g.c.pos(x.Pos))
	for _, a := range x.Args {
		g.expr(a)
	}
	g.emit(opCallObj, ni, int32(len(x.Args)), g.c.pos(x.Pos))
}

func (g *gen) binary(x *lang.BinaryExpr) {
	switch x.Op {
	case "&&":
		g.expr(x.L)
		jf := g.emit(opJumpFalse, 0, 0, -1)
		g.expr(x.R)
		j := g.emit(opJump, 0, 0, -1)
		g.patch(jf)
		g.emit(opPushFalse, 0, 0, -1)
		g.patch(j)
		return
	case "||":
		g.expr(x.L)
		jt := g.emit(opJumpTrue, 0, 0, -1)
		g.expr(x.R)
		j := g.emit(opJump, 0, 0, -1)
		g.patch(jt)
		g.emit(opPushTrue, 0, 0, -1)
		g.patch(j)
		return
	}
	g.expr(x.L)
	g.expr(x.R)
	var op Opcode
	switch x.Op {
	case "==":
		op = opEq
	case "!=":
		op = opNe
	case "+":
		op = opAdd
	case "-":
		op = opSub
	case "*":
		op = opMul
	case "/":
		op = opDiv
	case "%":
		op = opMod
	case "<":
		op = opLt
	case "<=":
		op = opLe
	case ">":
		op = opGt
	case ">=":
		op = opGe
	default:
		panic(fmt.Sprintf("interp: cannot compile operator %q", x.Op))
	}
	pos := int32(-1)
	if op != opEq && op != opNe {
		pos = g.c.pos(x.Pos) // integer-op and divide-by-zero faults
	}
	g.emit(op, 0, 0, pos)
}
