package interp

import (
	"strings"
	"testing"

	"github.com/psharp-go/psharp/lang"
)

func load(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// sharedWorkSrc is the dynamic-race scenario: a coordinator hands the same
// task object to two workers (racy) or fresh copies (clean); workers write
// the task's field when processing it.
const sharedWorkSrc = `
event eTask;

class task {
	var progress: int;
	method bump() { this.progress := this.progress + 1; }
}

machine coordinator {
	start state Boot {
		entry {
			var w1: machine;
			var w2: machine;
			var t1: task;
			var t2: task;
			w1 := create worker();
			w2 := create worker();
			t1 := new task;
			%s
			send w1, eTask, t1;
			send w2, eTask, t2;
		}
	}
}

machine worker {
	start state Working {
		on eTask do run;
	}
	method run(payload: task) {
		payload.bump();
		payload.bump();
	}
}
`

// TestDynamicRaceDetected runs the racy variant under many schedules: two
// workers write the same heap object with no happens-before edge between
// them, so the detector must report a race.
func TestDynamicRaceDetected(t *testing.T) {
	src := strings.Replace(sharedWorkSrc, "%s", "t2 := t1;", 1)
	prog := load(t, src)
	raceSeen := false
	for seed := uint64(1); seed <= 20; seed++ {
		out := Run(prog, "coordinator", Options{Seed: seed, RaceDetect: true})
		if out.Err != nil {
			t.Fatalf("seed %d: %v", seed, out.Err)
		}
		if !out.Quiescent {
			t.Fatalf("seed %d: did not quiesce", seed)
		}
		if len(out.Races) > 0 {
			raceSeen = true
		}
	}
	if !raceSeen {
		t.Fatal("no race detected on the aliased-payload program")
	}
}

// TestDynamicRaceFreeClean checks the clean variant never reports a race.
func TestDynamicRaceFreeClean(t *testing.T) {
	src := strings.Replace(sharedWorkSrc, "%s", "t2 := new task;", 1)
	prog := load(t, src)
	for seed := uint64(1); seed <= 20; seed++ {
		out := Run(prog, "coordinator", Options{Seed: seed, RaceDetect: true})
		if out.Err != nil {
			t.Fatalf("seed %d: %v", seed, out.Err)
		}
		if len(out.Races) != 0 {
			t.Fatalf("seed %d: unexpected races: %v", seed, out.Races)
		}
	}
}

// TestUnhandledEventIsError mirrors the runtime-error semantics of
// Section 6.1.
func TestUnhandledEventIsError(t *testing.T) {
	prog := load(t, `
event eBoom;
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create sink();
			send w, eBoom;
		}
	}
}
machine sink {
	start state Idle {
	}
}
`)
	out := Run(prog, "main_m", Options{Seed: 1})
	if out.Err == nil || !strings.Contains(out.Err.Error(), "cannot be handled") {
		t.Fatalf("want unhandled-event error, got %v", out.Err)
	}
}

// TestAssertionFailure checks assert propagation.
func TestAssertionFailure(t *testing.T) {
	prog := load(t, `
machine main_m {
	var x: int;
	start state Boot {
		entry {
			this.x := 1;
			assert this.x == 2;
		}
	}
}
`)
	out := Run(prog, "main_m", Options{Seed: 1})
	if !IsAssertion(out.Err) {
		t.Fatalf("want assertion failure, got %v", out.Err)
	}
}

// TestDeferredEventDelivery checks defer semantics: a deferred event stays
// queued until a state that handles it.
func TestDeferredEventDelivery(t *testing.T) {
	prog := load(t, `
event eData;
event eOpen;
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create gate();
			send w, eData, 7;
			send w, eOpen;
		}
	}
}
machine gate {
	var got: int;
	start state Closed {
		defer eData;
		on eOpen goto Open;
	}
	state Open {
		on eData do take;
	}
	method take(v: int) {
		this.got := v;
		assert this.got == 7;
	}
}
`)
	out := Run(prog, "main_m", Options{Seed: 3})
	if out.Err != nil {
		t.Fatalf("defer semantics broke: %v", out.Err)
	}
	if !out.Quiescent {
		t.Fatal("expected quiescence")
	}
}

// TestWhileAndArithmetic checks loops and operators.
func TestWhileAndArithmetic(t *testing.T) {
	prog := load(t, `
machine main_m {
	var sum: int;
	start state Boot {
		entry {
			var i: int;
			i := 0;
			while (i < 10) {
				this.sum := this.sum + i;
				i := i + 1;
			}
			assert this.sum == 45;
			assert (3 * 4) % 5 == 2;
			assert true && !false;
		}
	}
}
`)
	out := Run(prog, "main_m", Options{Seed: 1})
	if out.Err != nil {
		t.Fatalf("arithmetic: %v", out.Err)
	}
}

// TestSchemaCompiledOncePerProgram asserts the compile-once discipline:
// every machine declaration of a loaded Program has its dispatch schema
// compiled exactly once, no matter how many runs and instances follow.
func TestSchemaCompiledOncePerProgram(t *testing.T) {
	prog := load(t, `
event ePing;
machine main_m {
	start state Boot {
		entry {
			var a: machine;
			var b: machine;
			a := create echo();
			b := create echo();
			send a, ePing;
			send b, ePing;
		}
	}
}
machine echo {
	var hits: int;
	start state Waiting {
		on ePing do count;
	}
	method count() { this.hits := this.hits + 1; }
}
`)
	before := schemaCompiles.Load()
	for seed := uint64(1); seed <= 5; seed++ {
		out := Run(prog, "main_m", Options{Seed: seed})
		if out.Err != nil {
			t.Fatalf("seed %d: %v", seed, out.Err)
		}
		if !out.Quiescent {
			t.Fatalf("seed %d: did not quiesce", seed)
		}
	}
	got := schemaCompiles.Load() - before
	if want := int64(len(prog.Machines)); got != want {
		t.Fatalf("schema compiles across 5 runs = %d, want %d (once per machine declaration)", got, want)
	}
	// A second lookup must hit the cache, not recompile.
	if schemasFor(prog) != schemasFor(prog) {
		t.Fatal("schemasFor returned distinct compilations for the same Program")
	}
}

// TestListManagerRuns executes the paper's running example end to end: a
// driver adds two elements and the machine maintains the linked list.
func TestListManagerRuns(t *testing.T) {
	prog := load(t, `
event eAdd;

class elem {
	var val: int;
	var next: elem;
	method set_val(v: int) { this.val := v; }
	method get_val(): int { var r: int; r := this.val; return r; }
	method set_next(n: elem) { this.next := n; }
}

machine driver {
	start state Boot {
		entry {
			var lm: machine;
			var e: elem;
			lm := create list_manager();
			e := new elem;
			e.set_val(1);
			send lm, eAdd, e;
			e := new elem;
			e.set_val(2);
			send lm, eAdd, e;
		}
	}
}

machine list_manager {
	var list: elem;
	var count: int;
	start state Managing {
		on eAdd do add;
	}
	method add(payload: elem) {
		var tmp: elem;
		var v: int;
		tmp := this.list;
		payload.set_next(tmp);
		this.list := payload;
		this.count := this.count + 1;
		v := payload.get_val();
		assert v >= 1;
		assert this.count <= 2;
	}
}
`)
	out := Run(prog, "driver", Options{Seed: 5, RaceDetect: true})
	if out.Err != nil {
		t.Fatalf("list manager: %v", out.Err)
	}
	if len(out.Races) != 0 {
		t.Fatalf("unexpected races: %v", out.Races)
	}
}
