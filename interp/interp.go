// Package interp executes core-language programs under the paper's
// operational semantics (Section 4, Figures 3 and 4): a shared heap,
// per-machine configurations with event queues, and machine transitions
// driven by the transition function. Scheduling between machines is
// controlled (seeded random or a custom scheduler), and an optional
// happens-before race detector observes every field access performed by
// the MBR-ASSIGN rules — which is how the racy Table 1 benchmark variants
// are confirmed to race dynamically, cross-validating the static analysis.
//
// # Bytecode execution
//
// Two evaluators implement the semantics, selected by Options.Engine. The
// reference tree-walker (eval.go) re-traverses the AST on every handler
// dispatch; the default bytecode engine compiles each machine, monitor,
// and class method body once per loaded Program into compact stack-machine
// bytecode (compile.go) and runs it on an operand-stack VM (vm.go). The
// compiler interns every event, field, state, and method name to a dense
// index, so the VM's hot path does no string hashing and no per-dispatch
// allocation; a fusion pass then collapses common instruction pairs into
// superinstructions (assign-from-field, compare-and-branch, send-locals,
// and similar shapes) until a fixpoint, roughly halving dynamic
// instruction count on the Table 1 corpus. Compiled programs are cached on
// the Program via lang's AuxLoad/AuxStore hook — concurrent Runs of the
// same Program share one compilation (a sync.Once per Program), and VM
// instance state is pooled per Program, so a steady-state schedule
// allocates nothing.
//
// Both engines are observationally identical, not just bug-for-bug: the
// differential corpus harness (differential_test.go) runs every Table 1
// benchmark, racy and non-racy, under both engines across many seeds and
// requires identical step counts, quiescence, fault strings, race
// reports, hot monitors, and coverage sets. That works because the VM
// preserves the walker's dispatch precedence (ignore > defer > goto > do),
// its raised-event goto path, its race-detector access order, and its
// monitor observation points instruction for instruction. The walker
// stays selectable (Options.Engine = EngineWalk, -interp=walk in the
// CLIs) as the semantic baseline; Disassemble prints the compiled
// listing. On the corpus the VM runs roughly an order of magnitude more
// schedules per second than the walker — the ratio is recorded as
// interp_perf_probe in BENCH_sct.json and gated in CI.
package interp

import (
	"errors"
	"fmt"

	"github.com/psharp-go/psharp/internal/vclock"
	"github.com/psharp-go/psharp/lang"
	"github.com/psharp-go/psharp/obs"
)

// Value is a runtime value: int64, bool, Ref, MachineID, or Null.
type Value interface{ isValue() }

// Int is a scalar integer.
type Int int64

// Bool is a scalar boolean.
type Bool bool

// Ref is a heap reference.
type Ref int

// MachineID identifies a machine instance.
type MachineID int

// Null is the null reference.
type Null struct{}

func (Int) isValue()       {}
func (Bool) isValue()      {}
func (Ref) isValue()       {}
func (MachineID) isValue() {}
func (Null) isValue()      {}

// object is a heap object: rule NEW-ASSIGN allocates one slot per member
// variable, initialized to an undefined value (we use Null). ref is the
// heap index, which names the object to the race detector — a stable
// identity both engines derive the same way, so race reports compare
// byte for byte across them.
type object struct {
	class  string
	ref    int
	fields map[string]Value
}

type message struct {
	event   string
	payload Value // nil when the event carries no payload
	clock   vclock.VC
}

// machineInst is one machine configuration (m, q, E, ...). Its dispatch
// behavior lives in the shared, per-declaration compiled schema (reached
// through the current state); only the fields and queue are per-instance.
type machineInst struct {
	id     MachineID
	decl   *lang.MachineDecl
	state  *stateSchema
	fields map[string]Value
	queue  []message
	halted bool
}

// Scheduler picks the next machine to dispatch an event; enabled is sorted
// by machine id and never empty.
type Scheduler interface {
	Next(enabled []MachineID) MachineID
	// Choose resolves a controlled scalar choice in [0, n).
	Choose(n int) int
}

// randomScheduler is a seeded SplitMix64 scheduler.
type randomScheduler struct{ state uint64 }

func (r *randomScheduler) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *randomScheduler) Next(enabled []MachineID) MachineID {
	// The stream always advances, but a single-element pick needs no modulo
	// (a hardware division): the choice and the PRNG state are identical.
	x := r.next()
	if len(enabled) == 1 {
		return enabled[0]
	}
	return enabled[int(x%uint64(len(enabled)))]
}

func (r *randomScheduler) Choose(n int) int { return int(r.next() % uint64(n)) }

// Options configures a run.
type Options struct {
	// Engine selects the evaluator: the bytecode VM (default) or the
	// reference tree-walker. Outcomes are identical; see the "Bytecode
	// execution" section of the package docs.
	Engine Engine
	// Seed seeds the default random scheduler.
	Seed uint64
	// Scheduler overrides the default random scheduler.
	Scheduler Scheduler
	// MaxSteps bounds dispatched events (0 = 100000).
	MaxSteps int
	// RaceDetect runs the happens-before detector over all field accesses.
	RaceDetect bool
	// Coverage, if non-nil, accumulates .psl state-transition coverage:
	// every (machine, state, event) transition or action binding the run
	// dispatches is recorded into it. Monitor dispatches are observations,
	// not program transitions, and are not recorded. The set is safe for
	// concurrent use, so many seeds can share one — DeclaredTransitions
	// gives the denominator for a coverage ratio.
	Coverage *obs.StateEventCoverage
}

// Outcome reports a run.
type Outcome struct {
	// Steps is the number of dispatched events (including entry actions).
	Steps int
	// Quiescent is true when every machine blocked on an empty queue.
	Quiescent bool
	// BoundReached is true when MaxSteps was exhausted first.
	BoundReached bool
	// Races lists happens-before violations found (RaceDetect mode).
	Races []string
	// HotMonitors names the specification monitors that ended the run in a
	// hot state: for a quiescent run this is a liveness violation (the
	// pending obligation can never be discharged); for a bound-limited run
	// it is advisory, since an unfair random schedule may simply have
	// starved the discharging machine.
	HotMonitors []string
	// Err holds an assertion failure, unhandled event, monitor violation,
	// or runtime fault.
	Err error
}

// Interp is the interpreter state: the system configuration (h, M), plus
// one instance of every declared specification monitor. Monitors are
// machine-shaped but live outside the machine list: they are never
// scheduled or addressed; every sent or raised event is dispatched to them
// synchronously through their compiled (per-Program) schemas.
type Interp struct {
	prog     *lang.Program
	schemas  *programSchemas
	heap     []*object
	machines []*machineInst
	monitors []*machineInst // id -1: observers, not schedulable machines
	sched    Scheduler
	det      *vclock.Detector
	cover    *obs.StateEventCoverage
	steps    int
}

// assertionError marks failed asserts.
type assertionError struct{ msg string }

func (e assertionError) Error() string { return "assertion failed: " + e.msg }

// IsAssertion reports whether err is an assertion failure.
func IsAssertion(err error) bool {
	var ae assertionError
	return errors.As(err, &ae)
}

// Run instantiates one instance of the named main machine and executes the
// system until quiescence, an error, or the step bound, under the engine
// opts.Engine selects (the bytecode VM by default).
func Run(prog *lang.Program, main string, opts Options) Outcome {
	if opts.Engine == EngineWalk {
		return runWalk(prog, main, opts)
	}
	return runVM(prog, main, opts)
}

// runWalk is Run on the reference tree-walking evaluator.
func runWalk(prog *lang.Program, main string, opts Options) Outcome {
	in := &Interp{prog: prog, schemas: schemasFor(prog), cover: opts.Coverage}
	if opts.Scheduler != nil {
		in.sched = opts.Scheduler
	} else {
		in.sched = &randomScheduler{state: opts.Seed}
	}
	if opts.RaceDetect {
		in.det = vclock.NewDetector()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 100000
	}

	md, ok := prog.MachineByName[main]
	if !ok {
		return Outcome{Err: fmt.Errorf("interp: no machine %q", main)}
	}
	var out Outcome
	// Monitors attach before the first machine runs, so they observe every
	// event of the execution, including the main machine's setup sends.
	for _, mon := range prog.Monitors {
		if err := in.attachMonitor(mon); err != nil {
			out.Err = err
			return out
		}
	}
	if _, err := in.create(md, 0); err != nil {
		out.Err = err
		return out
	}

	for in.steps < maxSteps {
		enabled, err := in.enabled()
		if err != nil {
			out.Err = err
			break
		}
		if len(enabled) == 0 {
			out.Quiescent = true
			break
		}
		id := in.sched.Next(enabled)
		if err := in.dispatch(in.machines[id]); err != nil {
			out.Err = err
			break
		}
	}
	out.Steps = in.steps
	if !out.Quiescent && out.Err == nil {
		out.BoundReached = true
	}
	for _, m := range in.monitors {
		if m.state.hot {
			out.HotMonitors = append(out.HotMonitors, m.decl.Name)
		}
	}
	if in.det != nil {
		for _, r := range in.det.Races() {
			out.Races = append(out.Races, r.String())
		}
	}
	return out
}

// create implements machine instantiation: allocate fields (set to Null /
// zero values) and run the start state's entry action. The declaration's
// compiled schema is shared, never rebuilt per instance.
func (in *Interp) create(md *lang.MachineDecl, creator MachineID) (MachineID, error) {
	ms := in.schemas.machines[md]
	m := &machineInst{
		id:     MachineID(len(in.machines)),
		decl:   md,
		state:  ms.start,
		fields: make(map[string]Value, len(md.Fields)),
	}
	for _, f := range md.Fields {
		m.fields[f.Name] = zeroValue(f.Type)
	}
	in.machines = append(in.machines, m)
	if in.det != nil {
		in.det.Fork(int(creator), int(m.id))
	}
	in.steps++
	if m.state.decl.Entry != nil {
		if err := in.runBlock(m, m.state.decl.Entry, nil, nil); err != nil {
			return m.id, err
		}
	}
	return m.id, nil
}

// attachMonitor instantiates one declared monitor: fields zeroed, start
// state entered (running its entry block, which may Goto/raise within the
// monitor). Monitors carry id -1, marking them as observers: they are never
// scheduled, never addressed, and their field accesses are invisible to the
// race detector.
func (in *Interp) attachMonitor(md *lang.MachineDecl) error {
	ms := in.schemas.monitors[md]
	m := &machineInst{
		id:     MachineID(-1),
		decl:   md,
		state:  ms.start,
		fields: make(map[string]Value, len(md.Fields)),
	}
	for _, f := range md.Fields {
		m.fields[f.Name] = zeroValue(f.Type)
	}
	in.monitors = append(in.monitors, m)
	if m.state.decl.Entry != nil {
		return in.runBlock(m, m.state.decl.Entry, nil, nil)
	}
	return nil
}

// observe dispatches one sent or raised program event to every attached
// monitor, synchronously. A monitor handles the event if its current state
// binds it (ignore drops it) and skips it otherwise; assertion failures and
// faults inside monitor actions abort the run like machine failures.
func (in *Interp) observe(event string, payload Value) error {
	for _, m := range in.monitors {
		switch m.state.dispatch[event].kind {
		case dispatchNone, dispatchIgnore:
			continue
		default:
			if err := in.handle(m, event, payload); err != nil {
				return fmt.Errorf("monitor %s: %w", m.decl.Name, err)
			}
		}
	}
	return nil
}

func zeroValue(t lang.Type) Value {
	switch t.Name {
	case "int":
		return Int(0)
	case "bool":
		return Bool(false)
	case "machine":
		return MachineID(-1)
	default:
		return Null{}
	}
}

// enabled lists machines with a dispatchable event (per the transition
// function: the first queued event the machine is willing to handle, with
// ignored events not blocking and deferred events skipped).
func (in *Interp) enabled() ([]MachineID, error) {
	var out []MachineID
	for _, m := range in.machines {
		if m.halted {
			continue
		}
		_, _, ok, err := m.nextDispatch()
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, m.id)
		}
	}
	return out, nil
}

// nextDispatch finds the queue index of the first handleable event via the
// compiled dispatch table (one lookup per queued event); err is non-nil for
// an unhandled event (a runtime error per Section 6.1).
func (m *machineInst) nextDispatch() (idx int, msg message, ok bool, err error) {
	i := 0
	for i < len(m.queue) {
		msg := m.queue[i]
		switch m.state.dispatch[msg.event].kind {
		case dispatchIgnore:
			m.removeQueued(i)
		case dispatchDefer:
			i++
		case dispatchDo, dispatchGoto:
			return i, msg, true, nil
		default:
			return 0, message{}, false, fmt.Errorf(
				"interp: machine %s(%d): event %q cannot be handled in state %q",
				m.decl.Name, m.id, msg.event, m.state.decl.Name)
		}
	}
	return 0, message{}, false, nil
}

// removeQueued deletes the i-th queued message, zeroing the vacated tail
// slot so its payload is not retained beyond len.
func (m *machineInst) removeQueued(i int) {
	last := len(m.queue) - 1
	copy(m.queue[i:], m.queue[i+1:])
	m.queue[last] = message{}
	m.queue = m.queue[:last]
}

// dispatch handles one event on machine m (rule RECEIVE).
func (in *Interp) dispatch(m *machineInst) error {
	idx, msg, ok, err := m.nextDispatch()
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	m.removeQueued(idx)
	if in.det != nil {
		in.det.Receive(int(m.id), msg.clock)
	}
	in.steps++
	return in.handle(m, msg.event, msg.payload)
}

// handle runs a transition or bound action for an event.
func (in *Interp) handle(m *machineInst, event string, payload Value) error {
	switch e := m.state.dispatch[event]; e.kind {
	case dispatchGoto:
		in.coverHit(m, event)
		return in.gotoState(m, e.target, payload)
	case dispatchDo:
		in.coverHit(m, event)
		meth := e.method
		locals := make(map[string]Value)
		if len(meth.Params) == 1 {
			if payload == nil {
				payload = zeroValue(meth.Params[0].Type)
			}
			locals[meth.Params[0].Name] = payload
		}
		return in.runBlock(m, meth.Body, locals, nil)
	default:
		return fmt.Errorf("interp: machine %s(%d): event %q cannot be handled in state %q",
			m.decl.Name, m.id, event, m.state.decl.Name)
	}
}

func (in *Interp) gotoState(m *machineInst, target *stateSchema, payload Value) error {
	m.state = target
	if m.id >= 0 {
		in.steps++ // monitor transitions are observations, not program steps
	}
	if m.state.decl.Entry != nil {
		return in.runBlock(m, m.state.decl.Entry, nil, nil)
	}
	return nil
}

// raised carries a raised event out of a statement block.
type raised struct {
	event   string
	payload Value
}

// runBlock executes a method body or entry block on machine m, then
// processes any raised event immediately (bypassing the queue).
func (in *Interp) runBlock(m *machineInst, body []lang.Stmt, locals map[string]Value, _ interface{}) error {
	if locals == nil {
		locals = make(map[string]Value)
	}
	env := &frame{machine: m, locals: locals}
	_, r, err := in.execStmts(env, body)
	if err != nil {
		return err
	}
	if r != nil {
		if m.id >= 0 {
			// Monitors observe raised program events like sends; a monitor's
			// own raises stay internal to its dispatch.
			if err := in.observe(r.event, r.payload); err != nil {
				return err
			}
		}
		switch e := m.state.dispatch[r.event]; e.kind {
		case dispatchIgnore:
			return nil
		case dispatchDefer:
			m.queue = append(m.queue, message{event: r.event, payload: r.payload})
			return nil
		case dispatchGoto:
			// This goto bypasses handle, so it records its own coverage hit.
			in.coverHit(m, r.event)
			return in.gotoState(m, e.target, r.payload)
		default:
			return in.handle(m, r.event, r.payload)
		}
	}
	return nil
}

// coverHit records one dispatched transition into the attached coverage
// set. Monitors (id -1) are observers, not program machines, and are
// skipped.
func (in *Interp) coverHit(m *machineInst, event string) {
	if in.cover == nil || m.id < 0 {
		return
	}
	in.cover.Hit(m.decl.Name, m.state.decl.Name, event)
}

// DeclaredTransitions counts the (state, event) transition and action
// bindings declared across prog's machines — the denominator for a
// state-transition coverage ratio over Options.Coverage. Monitor
// declarations are excluded, matching what coverage records.
func DeclaredTransitions(prog *lang.Program) int {
	n := 0
	for _, md := range prog.Machines {
		for _, sd := range md.States {
			n += len(sd.OnDo) + len(sd.OnGoto)
		}
	}
	return n
}

// frame is one activation record: the machine (for this/fields) plus local
// variables including parameters.
type frame struct {
	machine *machineInst
	// thisRef is non-nil when executing a class method on a heap object.
	thisObj *object
	locals  map[string]Value
	retVal  Value
}
