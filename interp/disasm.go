package interp

// Disassembly of compiled programs, for debugging the bytecode engine and
// for documentation. The listing is stable for a given source text: all
// indices are interned in declaration order.

import (
	"fmt"
	"strings"

	"github.com/psharp-go/psharp/lang"
)

// Disassemble compiles prog (or reuses its cached bytecode) and returns a
// human-readable listing of every code unit: class methods, then machine
// and monitor methods, state entry blocks, and per-state dispatch tables.
func Disassemble(prog *lang.Program) string {
	cp := compiledFor(prog)
	var b strings.Builder
	for _, cc := range cp.classes {
		fmt.Fprintf(&b, "class %s:\n", cc.decl.Name)
		for _, code := range cc.methods {
			disasmCode(&b, cp, code)
		}
	}
	for _, cm := range cp.machines {
		disasmMachine(&b, cp, "machine", cm)
	}
	for _, cm := range cp.monitors {
		disasmMachine(&b, cp, "monitor", cm)
	}
	return b.String()
}

func disasmMachine(b *strings.Builder, cp *compiledProgram, kind string, cm *compiledMachine) {
	fmt.Fprintf(b, "%s %s:\n", kind, cm.decl.Name)
	for _, cs := range cm.states {
		marker := ""
		if cs == cm.start {
			marker = " (start)"
		}
		if cs.hot {
			marker += " (hot)"
		}
		fmt.Fprintf(b, "  state %s%s:\n", cs.decl.Name, marker)
		// Dispatch cells in event order; dispatchNone cells are omitted.
		for evt, vd := range cs.dispatch {
			switch vd.kind {
			case dispatchDo:
				fmt.Fprintf(b, "    on %s do %s\n", cp.events[evt], vd.method.name)
			case dispatchGoto:
				fmt.Fprintf(b, "    on %s goto %s\n", cp.events[evt], vd.target.decl.Name)
			case dispatchDefer:
				fmt.Fprintf(b, "    on %s defer\n", cp.events[evt])
			case dispatchIgnore:
				fmt.Fprintf(b, "    on %s ignore\n", cp.events[evt])
			}
		}
		if cs.entry != nil {
			disasmCode(b, cp, cs.entry)
		}
	}
	for _, code := range cm.methods {
		disasmCode(b, cp, code)
	}
}

func disasmCode(b *strings.Builder, cp *compiledProgram, code *compiledCode) {
	fmt.Fprintf(b, "  func %s (params=%d locals=%d):\n", code.name, code.nparams, code.nlocals)
	for pc, in := range code.ins {
		fmt.Fprintf(b, "    %3d  %-11s%s\n", pc, in.Op, disasmOperands(cp, code, in))
	}
}

// disasmOperands renders one instruction's operands symbolically.
func disasmOperands(cp *compiledProgram, code *compiledCode, in Instr) string {
	local := func(slot int32) string {
		if n := code.localNames[slot]; n != "" {
			return fmt.Sprintf("%d (%s)", slot, n)
		}
		return fmt.Sprintf("%d (hidden)", slot)
	}
	field := func(slot int32) string {
		if code.class != nil {
			return fmt.Sprintf("%d (%s)", slot, code.class.decl.Fields[slot].Name)
		}
		return fmt.Sprintf("%d (%s)", slot, code.machine.decl.Fields[slot].Name)
	}
	switch in.Op {
	case opPushInt:
		return fmt.Sprintf(" %d", in.A)
	case opPushConst:
		return fmt.Sprintf(" %d (%v)", in.A, cp.consts[in.A].value())
	case opLoadLocal, opStoreLocal:
		return " " + local(in.A)
	case opDeclLocal:
		kinds := [...]string{"int", "bool", "machine", "null"}
		return fmt.Sprintf(" %s zero=%s", local(in.A), kinds[in.B])
	case opLoopCheck:
		return " " + local(in.A)
	case opLoadMField, opStoreMField, opLoadOField, opStoreOField:
		return " " + field(in.A)
	case opJump, opJumpFalse, opJumpTrue:
		return fmt.Sprintf(" -> %d", in.A)
	case opSend, opRaise:
		s := fmt.Sprintf(" %d (%s)", in.A, cp.events[in.A])
		if in.B == 1 {
			s += " payload"
		}
		return s
	case opReturn:
		if in.A == 1 {
			return " value"
		}
		return ""
	case opCallSelf:
		if code.class != nil {
			return fmt.Sprintf(" %d (%s)", in.A, code.class.methods[in.A].name)
		}
		return fmt.Sprintf(" %d (%s)", in.A, code.machine.methods[in.A].name)
	case opCheckRecv:
		return fmt.Sprintf(" %d (%s)", in.A, cp.methodNames[in.A])
	case opCallObj:
		return fmt.Sprintf(" %d (%s) argc=%d", in.A, cp.methodNames[in.A], in.B)
	case opCreate:
		return fmt.Sprintf(" %d (%s)", in.A, cp.machines[in.A].decl.Name)
	case opNew:
		return fmt.Sprintf(" %d (%s)", in.A, cp.classes[in.A].decl.Name)
	case opStoreLoad:
		return fmt.Sprintf(" %s, %s", local(in.A), local(in.B))
	case opMFieldToLocal:
		return fmt.Sprintf(" %s -> %s", field(in.A), local(in.B))
	case opLocalToMField:
		return fmt.Sprintf(" %s -> %s", local(in.A), field(in.B))
	case opLoadPushInt:
		return fmt.Sprintf(" %s, %d", local(in.A), in.B)
	case opEqInt:
		return fmt.Sprintf(" %d", in.A)
	case opDecl2:
		kinds := [...]string{"int", "bool", "machine", "null"}
		return fmt.Sprintf(" %s zero=%s, %s zero=%s",
			local(in.A&declMask), kinds[in.A>>declShift],
			local(in.B&declMask), kinds[in.B>>declShift])
	case opLoad2:
		return fmt.Sprintf(" %s, %s", local(in.A&loadMask), local(in.A>>loadShift))
	case opCallMethod:
		return fmt.Sprintf(" %d (%s)", in.A, cp.methodNames[in.A])
	case opIntToMField:
		return fmt.Sprintf(" %d -> %s", in.A, field(in.B))
	case opMFieldPushInt:
		return fmt.Sprintf(" %s, %d", field(in.A), in.B)
	case opCmpJF:
		return fmt.Sprintf(" %q -> %d", opSymbol(Opcode(in.B)), in.A)
	case opAssertCmp:
		return fmt.Sprintf(" %q", opSymbol(Opcode(in.B)))
	case opSendLL:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %d (%s) dst=%s payload=%s",
			ax[2], cp.events[ax[2]], local(in.A&loadMask), local(in.A>>loadShift))
	case opAddToMField:
		return " " + field(in.A)
	case opLocalCallMethod:
		return fmt.Sprintf(" %d (%s) this=%s",
			in.A>>loadShift, cp.methodNames[in.A>>loadShift], local(in.A&loadMask))
	case opLocalToOField:
		return fmt.Sprintf(" %s -> %s", local(in.A), field(in.B))
	case opMFieldAddInt:
		return fmt.Sprintf(" %s + %d", field(in.A), in.B)
	case opLIntCmpJF:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s %s %d -> %d",
			local(ax[0]), opSymbol(Opcode(ax[2])), ax[1], in.A)
	case opStoreRetLocal:
		return fmt.Sprintf(" %s, %s", local(in.A), local(in.B))
	case opDeclLoadOField:
		kinds := [...]string{"int", "bool", "machine", "null"}
		return fmt.Sprintf(" %s zero=%s, %s",
			local(in.A&declMask), kinds[in.A>>declShift], field(in.B))
	case opRetOField:
		return " " + field(in.A)
	case opMFSendLL:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s -> %s, then %d (%s) dst=%s payload=%s",
			field(ax[3]), local(ax[4]),
			ax[2], cp.events[ax[2]], local(in.A&loadMask), local(in.A>>loadShift))
	case opMFAddIntToMF:
		return fmt.Sprintf(" %s + %d -> %s",
			field(in.A&loadMask), in.B, field(in.A>>loadShift))
	case opCallObjVoid:
		return fmt.Sprintf(" %d (%s) argc=%d", in.A, cp.methodNames[in.A], in.B)
	case opMF2L2:
		return fmt.Sprintf(" %s -> %s, %s -> %s",
			field(in.A&loadMask), local(in.A>>loadShift),
			field(in.B&loadMask), local(in.B>>loadShift))
	case opDecl2MF2L:
		ax := code.aux[in.B:]
		kinds := [...]string{"int", "bool", "machine", "null"}
		return fmt.Sprintf(" %s zero=%s, %s zero=%s, %s -> %s",
			local(in.A&declMask), kinds[in.A>>declShift],
			local(ax[0]&declMask), kinds[ax[0]>>declShift],
			field(ax[1]), local(ax[2]))
	case opNewStoreLoad:
		return fmt.Sprintf(" %d (%s) -> %s, %s",
			in.A&loadMask, cp.classes[in.A&loadMask].decl.Name,
			local(in.A>>loadShift), local(in.B))
	case opCreateStore:
		return fmt.Sprintf(" %d (%s) -> %s",
			in.A, cp.machines[in.A].decl.Name, local(in.B))
	case opSendLL2:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %d (%s) dst=%s payload=%s; %d (%s) dst=%s payload=%s",
			ax[3], cp.events[ax[3]], local(ax[0]&loadMask), local(ax[0]>>loadShift),
			ax[8], cp.events[ax[8]], local(ax[5]&loadMask), local(ax[5]>>loadShift))
	case opLIntCmpJFL2MF:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s %s %d -> %d; %s -> %s",
			local(ax[0]), opSymbol(Opcode(ax[2])), ax[1], in.A,
			local(ax[4]), field(ax[5]))
	case opMFIntAssert:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s %s %d", field(ax[0]), opSymbol(Opcode(ax[2])), ax[1])
	case opL2OF2:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s -> %s, %s -> %s",
			local(ax[0]), field(ax[1]), local(ax[3]), field(ax[4]))
	case opDecl3:
		kinds := [...]string{"int", "bool", "machine", "null"}
		return fmt.Sprintf(" %s zero=%s, %s zero=%s, %s zero=%s",
			local(in.A&declMask), kinds[in.A>>declShift],
			local(in.B&declMask), kinds[in.B>>declShift],
			local(in.Pos&declMask), kinds[in.Pos>>declShift])
	case opLAddIntToMF:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s + %d -> %s", local(ax[0]), ax[1], field(ax[3]))
	case opLocalCallMethodSL:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %d (%s) this=%s -> %s, %s",
			in.A>>loadShift, cp.methodNames[in.A>>loadShift],
			local(in.A&loadMask), local(ax[1]), local(ax[2]))
	case opCallMethodSL:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %d (%s) -> %s, %s",
			in.A, cp.methodNames[in.A], local(ax[0]), local(ax[1]))
	case opLoopLIntCmpJF:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" ctr=%s; %s %s %d -> %d",
			local(ax[0]), local(ax[2]), opSymbol(Opcode(ax[4])), ax[3], in.A)
	case opStoreJump:
		return fmt.Sprintf(" %s -> %d", local(in.B), in.A)
	case opSendLI:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %d (%s) dst=%s payload=%d",
			ax[2], cp.events[ax[2]], local(ax[0]), ax[1])
	case opLIntAssert:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s %s %d", local(ax[0]), opSymbol(Opcode(ax[2])), ax[1])
	case opCheckRecvPushInt:
		return fmt.Sprintf(" %d (%s), %d", in.A, cp.methodNames[in.A], in.B)
	case opMFIntCmpJF:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s %s %d -> %d",
			field(ax[0]), opSymbol(Opcode(ax[2])), ax[1], in.A)
	case opLIntCmpJFMF2L:
		ax := code.aux[in.B:]
		return fmt.Sprintf(" %s %s %d -> %d; %s -> %s",
			local(ax[0]), opSymbol(Opcode(ax[2])), ax[1], in.A,
			field(ax[4]), local(ax[5]))
	case opPushIntCallObjVoid:
		return fmt.Sprintf(" %d (%s) arg=%d", in.A, cp.methodNames[in.A], in.B)
	}
	return ""
}
