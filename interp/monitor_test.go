package interp

// Tests for interpreted specification monitors: synchronous observation of
// sends and raises, monitor-detected safety violations, hot-state
// reporting, and the compile-once discipline extended to monitor schemas.

import (
	"strings"
	"testing"
)

// observerSrc: a requester sends eReq to a worker that never acknowledges;
// the hot/cold monitor records the undischarged obligation.
const observerSrc = `
event eReq;
event eAck;
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create worker();
			send w, eReq;
		}
	}
}
machine worker {
	start state Waiting {
		on eReq do ack;
	}
	method ack() { }
}
monitor resp_m {
	start cold state Idle {
		on eReq goto Pending;
	}
	hot state Pending {
		on eAck goto Idle;
	}
}
`

// TestMonitorObservesAndGoesHot checks that a monitor follows observed
// events through its hot/cold states; with no eAck ever sent, the run ends
// with the monitor hot.
func TestMonitorObservesAndGoesHot(t *testing.T) {
	prog := load(t, observerSrc)
	out := Run(prog, "main_m", Options{Seed: 1})
	if out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	if !out.Quiescent {
		t.Fatal("program did not quiesce")
	}
	if len(out.HotMonitors) != 1 || out.HotMonitors[0] != "resp_m" {
		t.Fatalf("HotMonitors = %v, want [resp_m]: the request was never acknowledged", out.HotMonitors)
	}
}

// TestMonitorObservesRaise checks that raised events are observed too: the
// worker acknowledges by raising eAck to itself, which cools the monitor.
func TestMonitorObservesRaise(t *testing.T) {
	src := `
event eReq;
event eAck;
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create worker();
			send w, eReq;
		}
	}
}
machine worker {
	start state Waiting {
		on eReq do ack;
		on eAck goto Done;
	}
	method ack() { raise eAck; }
	state Done {
	}
}
monitor resp_m {
	start cold state Idle {
		on eReq goto Pending;
	}
	hot state Pending {
		on eAck goto Idle;
	}
}
`
	prog := load(t, src)
	out := Run(prog, "main_m", Options{Seed: 1})
	if out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	if len(out.HotMonitors) != 0 {
		t.Fatalf("HotMonitors = %v, want none: the raise discharged the obligation", out.HotMonitors)
	}
}

// TestMonitorAssertionFailsRun checks that a monitor-detected safety
// violation aborts the run with the monitor named in the error: the worker
// is poked three times, and the monitor's global counter allows only two.
func TestMonitorAssertionFailsRun(t *testing.T) {
	src := `
event eInc;
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			var i: int;
			w := create worker();
			i := 0;
			while (i < 3) {
				send w, eInc;
				i := i + 1;
			}
		}
	}
}
machine worker {
	start state Waiting {
		on eInc do bump;
	}
	method bump() { }
}
monitor counter_m {
	var n: int;
	start state Counting {
		on eInc do count;
	}
	method count() {
		this.n := this.n + 1;
		assert this.n < 3;
	}
}
`
	prog := load(t, src)
	out := Run(prog, "main_m", Options{Seed: 1})
	if out.Err == nil {
		t.Fatal("run succeeded; the monitor's assertion must fire on the third eInc")
	}
	if !IsAssertion(out.Err) {
		t.Fatalf("err = %v, want an assertion failure", out.Err)
	}
	if !strings.Contains(out.Err.Error(), "counter_m") {
		t.Fatalf("err %q does not name the monitor", out.Err)
	}
}

// TestMonitorEntryAndIgnore covers the remaining dispatch shapes: a monitor
// entry block initializes state, and an ignore binding drops observations
// without failing them.
func TestMonitorEntryAndIgnore(t *testing.T) {
	src := `
event eGo;
event eNoise;
machine main_m {
	start state Boot {
		entry {
			var w: machine;
			w := create worker();
			send w, eNoise;
			send w, eGo;
		}
	}
}
machine worker {
	start state S {
		on eGo do run;
		ignore eNoise;
	}
	method run() { }
}
monitor quiet_m {
	var armed: bool;
	start state Watching {
		entry {
			this.armed := true;
		}
		ignore eNoise;
		on eGo do check;
	}
	method check() {
		assert this.armed;
	}
}
`
	prog := load(t, src)
	out := Run(prog, "main_m", Options{Seed: 1})
	if out.Err != nil {
		t.Fatalf("run: %v", out.Err)
	}
	if !out.Quiescent {
		t.Fatal("program did not quiesce")
	}
}

// TestMonitorSchemasCompileOncePerProgram extends the compile-once
// discipline to monitors: one schema per monitor declaration per Program,
// across runs.
func TestMonitorSchemasCompileOncePerProgram(t *testing.T) {
	prog := load(t, observerSrc)
	before := schemaCompiles.Load()
	for seed := uint64(1); seed <= 5; seed++ {
		if out := Run(prog, "main_m", Options{Seed: seed}); out.Err != nil {
			t.Fatalf("seed %d: %v", seed, out.Err)
		}
	}
	// 2 machines + 1 monitor, compiled on the first run only.
	if got := schemaCompiles.Load() - before; got != 3 {
		t.Fatalf("schema compiles across 5 runs = %d, want 3", got)
	}
}
