package interp

import "fmt"

// Engine selects how machine bodies are executed. Both engines implement
// the same operational semantics (the differential corpus harness locks
// them together, outcome for outcome); they differ only in speed and
// machinery.
type Engine uint8

const (
	// EngineBytecode (the default) compiles each machine and monitor body
	// once per loaded Program into compact stack-machine bytecode and runs
	// it on an operand-stack VM with interned event, field, state and
	// method indices — no string hashing and no per-dispatch allocation on
	// the hot path. See the package docs, "Bytecode execution".
	EngineBytecode Engine = iota
	// EngineWalk is the reference tree-walking evaluator (eval.go): it
	// re-traverses the AST on every handler dispatch. Roughly an order of
	// magnitude slower; kept as the semantic baseline and debugging
	// fallback (-interp=walk in the CLIs).
	EngineWalk
)

// String names the engine as the CLIs spell it.
func (e Engine) String() string {
	switch e {
	case EngineWalk:
		return "walk"
	default:
		return "bytecode"
	}
}

// ParseEngine parses a CLI engine name: "bytecode" or "walk".
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "bytecode":
		return EngineBytecode, nil
	case "walk":
		return EngineWalk, nil
	}
	return EngineBytecode, fmt.Errorf("interp: unknown engine %q (want bytecode or walk)", s)
}
