// Package psharp is a Go implementation of the P# programming model from
// "Asynchronous Programming, Analysis and Testing with State Machines"
// (Deligiannis et al., PLDI 2015).
//
// A P# program is a collection of state machines that communicate solely by
// sending and receiving events. Each machine owns private data and a set of
// states; a state registers transitions (event -> next state) and action
// bindings (event -> handler). Actions are ordinary sequential Go functions:
// they must not spawn goroutines or use synchronization; the only way to
// exploit concurrency is to create more machines.
//
// Two execution modes share the same machine code:
//
//   - The production runtime (NewRuntime) runs every machine on its own
//     goroutine with a blocking event queue.
//   - The bug-finding runtime (RunTest) serializes execution under a
//     pluggable scheduling Strategy, with scheduling points before send and
//     create-machine operations only (the paper's partial-order reduction),
//     records a schedule trace, and supports deterministic replay. The sct
//     package provides DFS, random, PCT, delay-bounding and replay
//     strategies plus an iteration engine; sct.RunParallel fans exploration
//     out over a worker pool running a sharded strategy or a heterogeneous
//     portfolio, with deterministically sharded seeds, merged reports and
//     distinct-schedule accounting (see the sct package docs and
//     examples/parallel).
//
// # Reproducing the paper's Table 1
//
// The static-analysis half of the evaluation lives in the lang, analysis,
// interp and internal/benchsrc packages: internal/benchsrc embeds the
// core-language sources of the 13 Table 1 benchmarks (plus the 8 racy
// PSharpBench variants), calibrated so the ownership analysis reproduces
// the paper's false-positive counts exactly — the staged-send pattern that
// only xSA discharges, and the shared read-only payloads that survive xSA
// and need the Section 8 read-only extension. Render the table with
//
//	go run ./cmd/psharp-bench -table 1
//
// and gate on it with -check, which exits non-zero on any drift from the
// counts encoded in internal/benchsrc (CI runs this as the "Table 1
// gate"). The same corpus round-trips through the interp package, whose
// happens-before detector confirms dynamically that the non-racy variants
// are race-free and the racy ones race. See internal/benchsrc/README.md.
//
// # Performance model
//
// Bug-finding throughput is dominated by how much each iteration rebuilds.
// RunTest is a one-shot convenience: every call constructs a serialized
// runtime, machine instances, goroutines and a trace, runs one schedule,
// and throws it all away. TestHarness is the steady-state entry point: it
// recycles the Runtime (registry map cleared in place), machine instances
// with their Contexts, resume channels and event-queue slices, a pool of
// parked machine goroutines (one handshake, no goroutine churn per
// machine), the controller's incrementally maintained ready list and the
// scratch slice handed to Strategy.NextMachine, and the trace buffer
// (reset with retained capacity — clone a Trace you keep past the next
// Run). What is NOT recycled, by design, is the per-machine user state:
// setup runs every iteration and machine factories rebuild their logic and
// Schema, because action closures capture per-instance state. Steady-state
// allocations per iteration are therefore proportional to the number of
// machines created, not to schedule length: the marginal cost of an extra
// scheduling point is zero allocations (enforced by the allocation
// regression tests). The sct engine holds one harness per exploration
// worker; BENCH_sct.json (psharp-bench -json) tracks the resulting
// schedules/sec and allocs/iteration across changes.
//
// Machines are declared by implementing the Machine interface: Configure
// receives a Schema builder on which states, transitions and bindings are
// registered. Example:
//
//	type Ping struct{ psharp.EventBase }
//
//	type Server struct{ count int }
//
//	func (s *Server) Configure(sc *psharp.Schema) {
//		sc.Start("Init").
//			OnEntry(func(ctx *psharp.Context, ev psharp.Event) { s.count = 0 }).
//			OnEventDo(&Ping{}, func(ctx *psharp.Context, ev psharp.Event) {
//				s.count++
//			})
//	}
package psharp
