// Package psharp is a Go implementation of the P# programming model from
// "Asynchronous Programming, Analysis and Testing with State Machines"
// (Deligiannis et al., PLDI 2015).
//
// A P# program is a collection of state machines that communicate solely by
// sending and receiving events. Each machine owns private data and a set of
// states; a state registers transitions (event -> next state) and action
// bindings (event -> handler). Actions are ordinary sequential Go functions:
// they must not spawn goroutines or use synchronization; the only way to
// exploit concurrency is to create more machines.
//
// Two execution modes share the same machine code:
//
//   - The production runtime (NewRuntime) runs every machine on its own
//     goroutine with a blocking event queue.
//   - The bug-finding runtime (RunTest) serializes execution under a
//     pluggable scheduling Strategy, with scheduling points before send and
//     create-machine operations only (the paper's partial-order reduction),
//     records a schedule trace, and supports deterministic replay. The sct
//     package provides DFS, random, PCT, delay-bounding and replay
//     strategies plus an iteration engine; sct.RunParallel fans exploration
//     out over a worker pool running a sharded strategy or a heterogeneous
//     portfolio, with deterministically sharded seeds, merged reports and
//     distinct-schedule accounting (see the sct package docs and
//     examples/parallel).
//
// # Performance model
//
// Bug-finding throughput is dominated by how much each iteration rebuilds.
// RunTest is a one-shot convenience: every call constructs a serialized
// runtime, machine instances, goroutines and a trace, runs one schedule,
// and throws it all away. TestHarness is the steady-state entry point: it
// recycles the Runtime (registry map cleared in place), machine instances
// with their Contexts, resume channels and event-queue slices, a pool of
// parked machine goroutines (one handshake, no goroutine churn per
// machine), the controller's incrementally maintained ready list and the
// scratch slice handed to Strategy.NextMachine, and the trace buffer
// (reset with retained capacity — clone a Trace you keep past the next
// Run). What is NOT recycled, by design, is the per-machine user state:
// setup runs every iteration and machine factories rebuild their logic and
// Schema, because action closures capture per-instance state. Steady-state
// allocations per iteration are therefore proportional to the number of
// machines created, not to schedule length: the marginal cost of an extra
// scheduling point is zero allocations (enforced by the allocation
// regression tests). The sct engine holds one harness per exploration
// worker; BENCH_sct.json (psharp-bench -json) tracks the resulting
// schedules/sec and allocs/iteration across changes.
//
// Machines are declared by implementing the Machine interface: Configure
// receives a Schema builder on which states, transitions and bindings are
// registered. Example:
//
//	type Ping struct{ psharp.EventBase }
//
//	type Server struct{ count int }
//
//	func (s *Server) Configure(sc *psharp.Schema) {
//		sc.Start("Init").
//			OnEntry(func(ctx *psharp.Context, ev psharp.Event) { s.count = 0 }).
//			OnEventDo(&Ping{}, func(ctx *psharp.Context, ev psharp.Event) {
//				s.count++
//			})
//	}
package psharp
