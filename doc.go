// Package psharp is a Go implementation of the P# programming model from
// "Asynchronous Programming, Analysis and Testing with State Machines"
// (Deligiannis et al., PLDI 2015).
//
// A P# program is a collection of state machines that communicate solely by
// sending and receiving events. Each machine owns private data and a set of
// states; a state registers transitions (event -> next state) and action
// bindings (event -> handler). Actions are ordinary sequential Go functions:
// they must not spawn goroutines or use synchronization; the only way to
// exploit concurrency is to create more machines.
//
// Two execution modes share the same machine code:
//
//   - The production runtime (NewRuntime) runs every machine on its own
//     goroutine with a blocking event queue.
//   - The bug-finding runtime (RunTest) serializes execution under a
//     pluggable scheduling Strategy, with scheduling points before send and
//     create-machine operations only (the paper's partial-order reduction),
//     records a schedule trace, and supports deterministic replay. The sct
//     package provides DFS, random, PCT, delay-bounding and replay
//     strategies plus an iteration engine; sct.RunParallel fans exploration
//     out over a worker pool running a sharded strategy or a heterogeneous
//     portfolio, with deterministically sharded seeds, merged reports and
//     distinct-schedule accounting (see the sct package docs and
//     examples/parallel).
//
// # Reproducing the paper's Table 1
//
// The static-analysis half of the evaluation lives in the lang, analysis,
// interp and internal/benchsrc packages: internal/benchsrc embeds the
// core-language sources of the 13 Table 1 benchmarks (plus the 8 racy
// PSharpBench variants), calibrated so the ownership analysis reproduces
// the paper's false-positive counts exactly — the staged-send pattern that
// only xSA discharges, and the shared read-only payloads that survive xSA
// and need the Section 8 read-only extension. Render the table with
//
//	go run ./cmd/psharp-bench -table 1
//
// and gate on it with -check, which exits non-zero on any drift from the
// counts encoded in internal/benchsrc (CI runs this as the "Table 1
// gate"). The same corpus round-trips through the interp package, whose
// happens-before detector confirms dynamically that the non-racy variants
// are race-free and the racy ones race. See internal/benchsrc/README.md.
//
// Exploration over the .psl corpus is interp-bound, so the interp package
// ships two evaluators with identical observable semantics: a reference
// tree-walker and the default bytecode engine, which compiles every
// machine, monitor, and method body once per loaded Program into
// stack-machine bytecode with interned event/field/state/method indices,
// fuses common instruction pairs into superinstructions, caches the
// compiled form on the Program, and pools VM state — a steady-state
// schedule does zero allocations and runs roughly an order of magnitude
// more schedules per second than the walker (interp_perf_probe in
// BENCH_sct.json records the measured ratio; CI fails below 5x; the
// differential harness holds the two engines outcome-identical on every
// corpus benchmark). Select the engine with interp.Options.Engine, or
// from the CLI:
//
//	psharp-test -psl Raft -racy -iterations 200              # bytecode VM
//	psharp-test -psl Raft -racy -iterations 200 -interp walk # tree-walker
//
// and inspect the compiled form with interp.Disassemble (or -disasm):
//
//	prog := lang.MustParse(src)
//	if err := lang.Check(prog); err != nil {
//		log.Fatal(err)
//	}
//	fmt.Print(interp.Disassemble(prog))
//	// machine driver:
//	//   state Boot (start):
//	//   func driver.Boot.entry (params=0 locals=4):
//	//       0  decl2       0 (m) zero=machine, 1 (w1) zero=machine
//	//       1  decl2       2 (w2) zero=machine, 3 (o) zero=machine
//	//       2  createstore 1 (master) -> 0 (m)
//	//       ...
//
// (the listing above is the head of the SOTER Pi benchmark's driver; the
// fused forms — decl2, createstore, and friends — are the superinstruction
// pass at work).
//
// # Specifying correctness
//
// Beyond machine-local assertions (Context.Assert), correctness is
// specified with monitors — the paper's observer machines. A monitor is
// declared like a machine (states, event handlers, transitions, either
// declaration form) and registered with Runtime.RegisterMonitor; from then
// on every sent and raised event is dispatched to it synchronously, at the
// send or raise itself, and the monitor handles the events its current
// state binds, skipping the rest. Monitors are passive: actions may
// Assert, Goto, Raise and Logf but must not Send, CreateMachine, Halt, or
// draw nondeterminism — so attaching a monitor never changes the program's
// schedules, and a monitored run explores byte-identical traces.
//
// Two specification classes follow:
//
//   - Global safety invariants: the monitor accumulates observations across
//     machines and asserts over them (e.g. two-phase-commit atomicity over
//     every participant's outcome, Raft election safety over every leader
//     announcement). A failed monitor assertion ends the iteration with
//     BugMonitor, attributed to the monitor, with the usual replayable
//     trace.
//
//   - Liveness ("something eventually happens"): monitor states carry
//     hot/cold annotations (StateBuilder.Hot, StateBuilder.Cold). A hot
//     state is a pending obligation. With TestConfig.LivenessTemperature
//     set, the testing controller tracks each monitor's temperature — the
//     number of consecutive scheduling decisions spent hot — and reports
//     BugLiveness when it crosses the threshold, or when the program
//     quiesces with a monitor still hot. The temperature is a function of
//     the schedule alone, so a liveness violation replays exactly like any
//     other bug.
//
// Liveness caveats: a hot monitor under an unfair scheduler may mean only
// that the scheduler starved the machine that would discharge the
// obligation, so liveness checking is sound only under fair schedules —
// use sct.RandomFair (random prefix, then fair round-robin) and set the
// temperature threshold above the prefix plus a few fair rounds, so the
// threshold can only be crossed inside the fair region. The production
// runtime dispatches monitors too (safety assertions fire as in testing,
// serialized behind an internal mutex), but does not track temperature:
// liveness checking is a bug-finding-mode feature.
//
// # Injecting faults
//
// Crashes and message faults are scheduler decisions, not environment
// noise. With TestConfig.Faults set, the controller asks the strategy a
// fault question at every nondeterminism point that can fault: once per
// scheduler pass ("crash a machine now?" — ChoiceFault at
// FaultPointSchedule, listing the crashable machines) and once per machine
// send ("fault this delivery?" — FaultPointSend, naming the target). The
// strategy answers with a FaultAction: FaultNone (decline), FaultCrash
// with an optional restart, or FaultDrop, FaultDuplicate, FaultReorder for
// the message in flight. Strategies that implement only the legacy
// three-method interface decline every fault automatically; sct's
// FaultInjector wraps any inner strategy with a PCT-style budgeted
// injection plan (sct.FaultOptions).
//
// A crash halts the machine at its next scheduling point: its queue is
// cleared (unless the action sets PreserveMailbox), monitors observe a
// MachineCrashed event, and — if the action requests a restart — the same
// machine identity reboots through a fresh logic value from its registered
// factory, re-entering its initial state with its original creation
// payload, after which monitors observe MachineRestarted. Volatile state
// dies with the crash; anything that must survive belongs in another
// machine (model stable storage as a machine and list its type in
// FaultConfig.Immune, which exempts it from crashes and its inbound sends
// from message faults).
//
// Every fault query is answered and recorded in the trace — including the
// declines — so the query sequence is a function of the schedule alone and
// a fault-era trace replays byte-deterministically: sct.ReplayTrace (and
// psharp-test -replay) re-applies each recorded FaultAction at exactly the
// query that produced it, no fault configuration required. The trace text
// format is versioned (TraceFormatVersion); traces recorded before fault
// injection existed lack the header and are rejected loudly rather than
// replayed wrong.
//
// # Partial-order reduction and state caching
//
// Beyond placing scheduling points only before sends and creates (the
// paper's static reduction, above), the testing stack prunes equivalent
// schedules dynamically. sct.NewDPOR is dynamic partial-order reduction
// with sleep sets: the controller reports every executed step's footprint —
// the machine that ran, the mailbox it targeted, the machine it created —
// through the StepObserver hook, and the strategy backtracks only where two
// steps of different machines actually conflict, collapsing interleavings
// of independent operations into one representative while remaining as
// exhaustive as DFS. TestConfig.StateCache (sct Options.StateCache, or
// psharp-test -state-cache) adds a hashed global-state cache: the
// controller maintains an incremental FNV-1a fingerprint of the global
// state — machine fields, control states, queue contents, monitor states
// and liveness temperatures — at every scheduling point, and cuts an
// iteration short when it reaches a state an earlier schedule already
// covered no deeper. Both hooks are off by default and cost nothing when
// off — the controller skips the footprint and hashing work entirely, and
// the allocation caps above hold either way. Pruned attempts are reported
// separately (PrunedIterations, DistinctStates) and never inflate
// schedule-throughput or distinct-schedule counts. See the sct package's
// "Partial-order reduction and state caching" section for soundness scope
// (depth-first strategies only, no fault injection) and the measured
// reductions.
//
// # Declaring machines
//
// A machine type declares its states, transitions and action bindings on a
// Schema builder, in one of two forms.
//
// The static form (preferred) matches the paper's design, where the
// transition and action-binding tables of Figure 1 are properties of the
// machine class, compiled once. The type embeds StaticBase and implements
// StaticMachine: ConfigureType runs a single time, at Register, and the
// compiled schema is frozen and shared by every instance. Actions use the
// M-suffixed builders (OnEntryM, OnExitM, OnEventDoM) and receive the
// machine instance as their first parameter — assert it to the concrete
// type — instead of closing over it:
//
//	type Ping struct{ psharp.EventBase }
//
//	type Server struct {
//		psharp.StaticBase
//		count int
//	}
//
//	func (*Server) ConfigureType(sc *psharp.Schema) {
//		sc.Start("Init").
//			OnEventDoM(&Ping{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
//				m.(*Server).count++
//			})
//	}
//
// ConfigureType must be instance-independent. It may read fields the
// factory sets identically on every instance — registration parameters,
// like a buggy-variant flag that adds or removes bindings — but its action
// closures must not capture the receiver, which is a discarded probe.
// Per-instance initialization that the closure form did inside Configure
// (seeding a map, say) moves into the registered factory. Handlers that
// touch no per-instance state can keep the plain closure signatures
// (OnEntry, OnEventDo) inside a static schema. Machines with no instance
// fields at all can use StaticMachineFunc.
//
// The closure form remains fully supported: implement Machine, whose
// Configure runs once per instance with actions closing over it. It is the
// right tool when the declaration itself must vary per instance — but
// because each instance's actions are fresh closures, its schema is
// rebuilt and revalidated on every create, which on the exploration hot
// path is the dominant allocation cost (see below). Migrating a machine is
// mechanical: embed StaticBase, rename Configure to ConfigureType, switch
// the builders to the M variants, and open each handler with
// `s := m.(*YourType)`. The two forms are behaviorally indistinguishable —
// the equivalence tests replay identical traces through both.
//
// # Performance model
//
// Bug-finding throughput is dominated by how much each iteration rebuilds.
// RunTest is a one-shot convenience: every call constructs a serialized
// runtime, machine instances, goroutines and a trace, runs one schedule,
// and throws it all away. TestHarness is the steady-state entry point: it
// recycles the Runtime (registry map cleared in place), machine instances
// with their Contexts, resume channels and event-queue slices, a pool of
// parked machine goroutines (one handshake, no goroutine churn per
// machine), the controller's incrementally maintained ready list and the
// scratch slice handed to Strategy.NextMachine, and the trace buffer
// (reset with retained capacity — clone a Trace you keep past the next
// Run).
//
// Machine schemas follow the compile-once discipline: Register compiles a
// static type's schema one time and every create reuses the frozen form,
// and the harness keeps that per-type cache across recycled iterations, so
// a static-form program pays zero schema allocations from iteration 2 on.
// Monitors ride the same machinery: a static monitor's schema is compiled
// once per registered name, the harness recycles the monitor instance and
// its Context across iterations, and observation itself is allocation-free
// — attaching a monitor adds only its factory's allocations per iteration
// (at most 5 on the protocol workloads, enforced by the monitor allocation
// caps).
// (The interp package applies the same discipline to .psl programs: one
// schema per machine declaration per loaded Program.) What still rebuilds
// each iteration is per-machine user state — setup runs every time and
// factories produce fresh logic values — plus, for closure-form machines
// only, the per-instance schema. Steady-state allocations per iteration
// are therefore proportional to the number of machines created, not to
// schedule length: the marginal cost of an extra scheduling point is zero
// allocations (enforced by the allocation regression tests, including a
// protocol-class cap that a returning schema rebuild cannot pass). The sct
// engine holds one harness per exploration worker; BENCH_sct.json
// (psharp-bench -json) tracks schedules/sec, allocs/iteration, and the
// schema-cache saving across changes.
//
// # Observability
//
// The runtime records operational metrics through the obs package's
// fixed-size atomic primitives, cheap enough to stay always-on: sends,
// dropped sends (to halted machines), machine creates, monitor dispatches,
// and the high-water mailbox depth, snapshotted by Runtime.Metrics. State-
// transition coverage — which (machine type, state, event) triples actually
// dispatched — is opt-in: attach an obs.StateEventCoverage via WithCoverage
// in production mode or TestConfig.Coverage per bug-finding iteration. The
// event name each dispatch records is resolved once at schema bind time, so
// a coverage hit is a read-lock, one map lookup on a comparable struct key,
// and an atomic add — no per-dispatch reflection, no steady-state
// allocation; the allocation caps above hold with coverage attached
// (gated by BENCH_sct.json's telemetry_overhead_probe). The sct package
// layers campaign-level telemetry — depth histograms, coverage growth
// curves over wall-clock time, typed progress snapshots, and versioned
// campaign reports — on the same primitives; see its Observability section.
//
// # Resumable campaigns
//
// Exploration state no longer dies with the process. psharp-test -journal
// <dir> makes a campaign durable: every explored schedule's fingerprint,
// each worker's strategy cursor (the position in its seed stream, or the
// DFS frontier), the campaign counters and periodic telemetry checkpoints
// are appended to a crash-safe binary journal (the journal package — a
// versioned header and length+FNV-1a-checksummed record framing). After a
// crash — SIGKILL, OOM, CI timeout — rerunning with -resume recovers the
// journal, truncates any torn final record, skips the already-covered
// schedules, and continues each strategy exactly where its cursor left
// off, so an interrupted-and-resumed campaign converges on the same
// distinct-schedule population as an uninterrupted run of the same seed
// and budget. Recovery is strict about what it forgives: a torn tail (the
// one failure appending can produce) is truncated silently, while a
// checksum mismatch mid-file or an unknown format version is rejected
// loudly rather than silently resurrecting wrong state.
//
// Durability has one knob, -journal-sync, the fsync cadence in records:
// 1 fsyncs every record (an OS crash costs nothing, but every append pays
// a disk round trip), the default 64 bounds a power-loss window to one
// batch, and -1 fsyncs only at checkpoints and exit (a process kill still
// loses nothing — the OS flushes the page cache — only a machine crash
// can cost the tail). Because fingerprints are flushed before the cursor
// that covers them, any tear re-executes at most one batch of schedules
// (idempotent) and never skips one.
//
// A journal directory is also a shard manifest: psharp-test -shard i/n
// gives each of n processes its own journal file in the shared directory,
// with the manifest pinning the campaign identity (benchmark, strategy,
// seed, worker count) so mismatched processes are refused. Each shard
// preloads its peers' fingerprints, and journal.ReadState merges the
// directory into one campaign-wide view — the foundation for a continuous
// fuzzing service where N machines soak one corpus protocol and any of
// them can die and resume. Interruption is first-class either way: SIGINT
// or SIGTERM (and the hard -timeout) flush a final checkpoint and still
// write -report-out and -trace-out, with the campaign report marked
// interrupted. See the sct package docs for how the journal stays off the
// exploration hot path.
package psharp
