package psharp_test

// Tests for the specification layer: safety monitors (global invariants
// asserted over observed events), hot/cold liveness tracking, monitor
// recycling across pooled harness iterations, and the trace-format name
// validation that keeps monitor- and machine-found bugs replayable.

import (
	"strings"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

type mtOutcome struct {
	psharp.EventBase
	Commit bool
}

type mtReq struct{ psharp.EventBase }

type mtResp struct{ psharp.EventBase }

// mtAgreement is a static-form safety monitor: all observed outcomes must
// agree, the essence of an atomicity specification.
type mtAgreement struct {
	psharp.StaticBase
	seen  bool
	first bool
}

func (*mtAgreement) ConfigureType(sc *psharp.Schema) {
	sc.Start("Observing").
		OnEventDoM(&mtOutcome{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			a := m.(*mtAgreement)
			o := ev.(*mtOutcome)
			if !a.seen {
				a.seen, a.first = true, o.Commit
				return
			}
			ctx.Assert(a.first == o.Commit, "observed outcomes disagree: %v then %v", a.first, o.Commit)
		})
}

// mtResponds is a liveness monitor: hot between a request and its response.
func mtResponds() psharp.Machine {
	return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
		sc.Start("Idle").Cold().
			OnEventGoto(&mtReq{}, "Waiting")
		sc.State("Waiting").Hot().
			OnEventGoto(&mtResp{}, "Idle")
	})
}

// decidersSetup builds two deciders that each flip a controlled coin and
// send their outcome to a sink; monitors=true attaches the agreement
// monitor. Roughly half of all schedules violate agreement.
func decidersSetup(monitors bool) func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Sink", func() psharp.Machine {
			return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").Ignore(&mtOutcome{})
			})
		})
		r.MustRegister("Decider", func() psharp.Machine {
			return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
				sc.Start("D").
					OnEventDo(&mtReq{}, func(ctx *psharp.Context, ev psharp.Event) {
						// The sink's ID is always 1: it is created first.
						sink := psharp.MachineID{Type: "Sink", Seq: 1}
						ctx.Send(sink, &mtOutcome{Commit: ctx.RandomBool()})
						ctx.Halt()
					})
			})
		})
		if monitors {
			r.MustRegisterMonitor("Agreement", func() psharp.Machine { return &mtAgreement{} })
		}
		r.MustCreate("Sink", nil)
		for i := 0; i < 2; i++ {
			d := r.MustCreate("Decider", nil)
			if err := r.SendEvent(d, &mtReq{}); err != nil {
				panic(err)
			}
		}
	}
}

// TestMonitorFindsSafetyViolation checks that a monitor-expressed global
// invariant is found by exploration, attributed to the monitor, and that
// the trace replays the violation deterministically.
func TestMonitorFindsSafetyViolation(t *testing.T) {
	setup := decidersSetup(true)
	rep := sct.Run(setup, sct.Options{
		Strategy:       sct.NewRandom(1),
		Iterations:     200,
		MaxSteps:       200,
		StopOnFirstBug: true,
	})
	if !rep.BugFound() {
		t.Fatal("exploration missed the monitor-expressed agreement violation")
	}
	bug := rep.FirstBug
	if bug.Kind != psharp.BugMonitor || bug.Monitor != "Agreement" {
		t.Fatalf("bug = %v, want a BugMonitor from Agreement", bug)
	}
	res := sct.ReplayTrace(setup, rep.FirstBugTrace, psharp.TestConfig{MaxSteps: 200})
	if res.Bug == nil || res.Bug.Kind != psharp.BugMonitor || res.Bug.Message != bug.Message {
		t.Fatalf("replay did not reproduce the monitor bug: got %v, want %v", res.Bug, bug)
	}
}

// TestMonitorAddsNoTraceDecisions checks the zero-interference guarantee:
// monitors make no scheduling or nondeterminism decisions, so the same seed
// explores byte-identical schedules with and without monitors attached.
func TestMonitorAddsNoTraceDecisions(t *testing.T) {
	hPlain := psharp.NewTestHarness(decidersSetup(false))
	defer hPlain.Close()
	hMon := psharp.NewTestHarness(decidersSetup(true))
	defer hMon.Close()
	for i := 0; i < 25; i++ {
		seed := uint64(i) + 1
		plain := hPlain.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 200})
		mon := hMon.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 200})
		if a, b := encodeTrace(t, plain.Trace), encodeTrace(t, mon.Trace); a != b {
			// The monitored run may stop earlier (the monitor fires at the
			// send, before the sink's assertion would): the monitored trace
			// must then be a prefix of the unmonitored one.
			if !strings.HasPrefix(a, b) {
				t.Fatalf("seed %d: monitored trace is not a prefix of the plain trace:\nplain:\n%s\nmonitored:\n%s", seed, a, b)
			}
		}
	}
}

// TestMonitorRecyclesCleanly checks that a pooled harness with monitors
// behaves exactly like fresh one-shot runs across 25 recycled iterations:
// same bugs, byte-identical traces — i.e. monitor state (instance, schema,
// temperature) leaks nothing between iterations.
func TestMonitorRecyclesCleanly(t *testing.T) {
	setup := decidersSetup(true)
	h := psharp.NewTestHarness(setup)
	defer h.Close()
	sawBug, sawClean := false, false
	for i := 0; i < 25; i++ {
		seed := uint64(i) + 1
		pooled := h.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 200})
		oneshot := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 200})
		if (pooled.Bug == nil) != (oneshot.Bug == nil) {
			t.Fatalf("seed %d: pooled bug %v, one-shot bug %v", seed, pooled.Bug, oneshot.Bug)
		}
		if pooled.Bug != nil {
			sawBug = true
			if pooled.Bug.Kind != oneshot.Bug.Kind || pooled.Bug.Message != oneshot.Bug.Message ||
				pooled.Bug.Monitor != oneshot.Bug.Monitor {
				t.Fatalf("seed %d: pooled bug %v, one-shot bug %v", seed, pooled.Bug, oneshot.Bug)
			}
		} else {
			sawClean = true
		}
		if a, b := encodeTrace(t, pooled.Trace), encodeTrace(t, oneshot.Trace); a != b {
			t.Fatalf("seed %d: traces diverge:\npooled:\n%s\none-shot:\n%s", seed, a, b)
		}
	}
	if !sawBug || !sawClean {
		t.Fatalf("test program not exercising both outcomes (bug=%v clean=%v); strengthen the setup", sawBug, sawClean)
	}
	// The static monitor's schema was compiled once, ever, alongside the two
	// machine schemas — re-registration across 25 iterations is cache hits.
	if got := h.SchemaCompiles(); got != 3 {
		t.Errorf("schema compiles across 25 monitored iterations = %d, want 3 (2 machines + 1 monitor)", got)
	}
}

// livenessSpinSetup builds a program whose monitor goes hot on a request
// observed during setup and can never cool down: nothing sends mtResp. A
// pacer machine keeps the execution alive (self-sends until MaxSteps), so
// the obligation is never discharged and never reaches quiescence.
func livenessSpinSetup() func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Pacer", func() psharp.Machine {
			return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
				sc.Start("Spin").
					Ignore(&mtReq{}).
					OnEventDo(&mtOutcome{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Send(ctx.ID(), ev)
					})
			})
		})
		r.MustRegisterMonitor("Responds", mtResponds)
		p := r.MustCreate("Pacer", nil)
		if err := r.SendEvent(p, &mtReq{}); err != nil {
			panic(err)
		}
		if err := r.SendEvent(p, &mtOutcome{}); err != nil {
			panic(err)
		}
	}
}

// TestLivenessTemperatureThreshold checks the hot-state temperature bug: a
// monitor stuck hot past the threshold fails the iteration with BugLiveness,
// the violation replays deterministically from its trace, and disabling
// liveness checking reports nothing.
func TestLivenessTemperatureThreshold(t *testing.T) {
	setup := livenessSpinSetup()
	cfg := psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(1)), MaxSteps: 500, LivenessTemperature: 50}
	res := psharp.RunTest(setup, cfg)
	if res.Bug == nil || res.Bug.Kind != psharp.BugLiveness || res.Bug.Monitor != "Responds" {
		t.Fatalf("bug = %v, want BugLiveness from Responds", res.Bug)
	}
	if res.Bug.State != "Waiting" {
		t.Errorf("liveness bug in state %q, want the hot state %q", res.Bug.State, "Waiting")
	}

	replay := sct.ReplayTrace(setup, res.Trace.Clone(), psharp.TestConfig{MaxSteps: 500, LivenessTemperature: 50})
	if replay.Bug == nil || replay.Bug.Kind != psharp.BugLiveness || replay.Bug.Message != res.Bug.Message {
		t.Fatalf("replay did not reproduce the liveness bug: got %v, want %v", replay.Bug, res.Bug)
	}

	off := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(1)), MaxSteps: 500})
	if off.Bug != nil {
		t.Fatalf("liveness checking disabled still reported %v", off.Bug)
	}
}

// TestLivenessHotAtQuiescence checks the finite-execution rule: a program
// that terminates while a monitor is still hot has violated the liveness
// specification (nothing can discharge the obligation anymore).
func TestLivenessHotAtQuiescence(t *testing.T) {
	setup := func(r *psharp.Runtime) {
		r.MustRegister("Quiet", func() psharp.Machine {
			return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").Ignore(&mtReq{})
			})
		})
		r.MustRegisterMonitor("Responds", mtResponds)
		q := r.MustCreate("Quiet", nil)
		if err := r.SendEvent(q, &mtReq{}); err != nil {
			panic(err)
		}
	}
	res := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(1)), MaxSteps: 100, LivenessTemperature: 1000})
	if res.Bug == nil || res.Bug.Kind != psharp.BugLiveness {
		t.Fatalf("bug = %v, want BugLiveness at quiescence", res.Bug)
	}
	if !strings.Contains(res.Bug.Message, "quiesced") {
		t.Errorf("message %q does not mention quiescence", res.Bug.Message)
	}
}

// TestMonitorForbiddenOperations checks that a monitor action calling a
// machine-only operation fails the iteration as a monitor violation rather
// than corrupting the program.
func TestMonitorForbiddenOperations(t *testing.T) {
	setup := func(r *psharp.Runtime) {
		r.MustRegister("Quiet", func() psharp.Machine {
			return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").Ignore(&mtReq{})
			})
		})
		r.MustRegisterMonitor("Rogue", func() psharp.Machine {
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("S").
					OnEventDo(&mtReq{}, func(ctx *psharp.Context, ev psharp.Event) {
						ctx.Send(psharp.MachineID{Type: "Quiet", Seq: 1}, &mtResp{})
					})
			})
		})
		q := r.MustCreate("Quiet", nil)
		if err := r.SendEvent(q, &mtReq{}); err != nil {
			panic(err)
		}
	}
	res := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(1)), MaxSteps: 100})
	if res.Bug == nil || res.Bug.Kind != psharp.BugMonitor || res.Bug.Monitor != "Rogue" {
		t.Fatalf("bug = %v, want BugMonitor from Rogue", res.Bug)
	}
	if !strings.Contains(res.Bug.Message, "passive observers") {
		t.Errorf("message %q does not explain the restriction", res.Bug.Message)
	}
}

// TestMonitorInProductionRuntime checks that monitors observe and fail the
// concurrent production runtime too, not just the serialized testing one.
func TestMonitorInProductionRuntime(t *testing.T) {
	r := psharp.NewRuntime()
	r.MustRegister("Sink", func() psharp.Machine {
		return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
			sc.Start("S").Ignore(&mtOutcome{})
		})
	})
	r.MustRegisterMonitor("Agreement", func() psharp.Machine { return &mtAgreement{} })
	sink := r.MustCreate("Sink", nil)
	if err := r.SendEvent(sink, &mtOutcome{Commit: true}); err != nil {
		t.Fatal(err)
	}
	if err := r.SendEvent(sink, &mtOutcome{Commit: false}); err != nil {
		t.Fatal(err)
	}
	err := r.Wait()
	r.Stop()
	if err == nil {
		t.Fatal("production runtime did not report the monitor violation")
	}
	bug, ok := err.(*psharp.Bug)
	if !ok || bug.Kind != psharp.BugMonitor || bug.Monitor != "Agreement" {
		t.Fatalf("err = %v, want BugMonitor from Agreement", err)
	}
}

// TestMonitorRegisterDuringProductionSends covers the SetupMonitored
// pattern on the concurrent production runtime: machines created by setup
// are already running and sending when the monitors register afterwards, so
// registration and observation must be mutually exclusive (run under -race
// in CI's liveness suite).
func TestMonitorRegisterDuringProductionSends(t *testing.T) {
	r := psharp.NewRuntime()
	r.MustRegister("Echo", func() psharp.Machine {
		return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
			sc.Start("Echoing").
				OnEventDo(&evSpin{}, func(ctx *psharp.Context, ev psharp.Event) {
					e := ev.(*evSpin)
					if e.Left == 0 {
						ctx.Halt()
						return
					}
					e.Left--
					ctx.Send(ctx.ID(), &mtOutcome{Commit: true})
					ctx.Send(ctx.ID(), e)
				}).
				Ignore(&mtOutcome{})
		})
	})
	e := r.MustCreate("Echo", nil)
	if err := r.SendEvent(e, &evSpin{Left: 500}); err != nil {
		t.Fatal(err)
	}
	// The echo machine is already streaming sends; register mid-flight.
	r.MustRegisterMonitor("Agreement", func() psharp.Machine { return &mtAgreement{} })
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	r.Stop()
}

// TestHotStatesRejectedOnMachines checks that hot/cold liveness annotations
// are monitor-only: a machine schema carrying one is rejected at Register.
func TestHotStatesRejectedOnMachines(t *testing.T) {
	r := psharp.NewRuntime()
	err := r.Register("Hotty", func() psharp.Machine {
		return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
			sc.Start("S").Hot().Ignore(&mtReq{})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "monitor states") {
		t.Fatalf("Register accepted a hot machine state: err = %v", err)
	}
}

// TestMonitorDuplicateAcrossFormsErrors checks that re-registering a name
// with a different declaration form still reports the duplicate cleanly —
// in particular, a static monitor under a closure-cached name must not hit
// StaticBase.Configure's panic on the schema-rebuild path.
func TestMonitorDuplicateAcrossFormsErrors(t *testing.T) {
	r := psharp.NewRuntime()
	closure := psharp.MachineFunc(func(sc *psharp.Schema) {
		sc.Start("S").OnEventDo(&mtReq{}, func(ctx *psharp.Context, ev psharp.Event) {})
	})
	if err := r.RegisterMonitor("Spec", func() psharp.Machine { return closure }); err != nil {
		t.Fatal(err)
	}
	err := r.RegisterMonitor("Spec", mtResponds)
	if err == nil || !strings.Contains(err.Error(), "registered twice") {
		t.Fatalf("duplicate static-over-closure registration: err = %v, want 'registered twice'", err)
	}
}

// TestMonitorFormMayVaryAcrossIterations covers a harness whose setup
// switches a monitor's declaration form between iterations: the closure
// form's nil cache entry must not break a later static registration of the
// same name.
func TestMonitorFormMayVaryAcrossIterations(t *testing.T) {
	useStatic := false
	spin := spinSetup(8)
	setup := func(r *psharp.Runtime) {
		spin(r)
		if useStatic {
			r.MustRegisterMonitor("Responds", mtResponds)
		} else {
			r.MustRegisterMonitor("Responds", func() psharp.Machine {
				return psharp.MachineFunc(func(sc *psharp.Schema) {
					sc.Start("Idle").Cold().OnEventGoto(&mtReq{}, "Waiting")
					sc.State("Waiting").Hot().OnEventGoto(&mtResp{}, "Idle")
				})
			})
		}
	}
	h := psharp.NewTestHarness(setup)
	defer h.Close()
	for i := 0; i < 4; i++ {
		useStatic = i%2 == 1
		res := h.Run(psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(uint64(i) + 1))})
		if res.Bug != nil {
			t.Fatalf("iteration %d (static=%v): unexpected bug %v", i, useStatic, res.Bug)
		}
	}
}

// TestMonitorDeferRejected checks that Defer bindings are rejected in
// monitor schemas: monitors have no queue to defer into.
func TestMonitorDeferRejected(t *testing.T) {
	r := psharp.NewRuntime()
	err := r.RegisterMonitor("Deferred", func() psharp.Machine {
		return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
			sc.Start("S").Defer(&mtReq{})
		})
	})
	if err == nil || !strings.Contains(err.Error(), "no queue") {
		t.Fatalf("RegisterMonitor accepted a Defer binding: err = %v", err)
	}
}

// TestMonitorAllocationCap extends the steady-state allocation regression to
// the specification layer: attaching a static monitor to the pooled spin
// harness must add at most 5 allocations per iteration (one logic value from
// the factory plus pool bookkeeping).
func TestMonitorAllocationCap(t *testing.T) {
	base, _ := harnessAllocs(t, 32)

	spin := spinSetup(32)
	setup := func(r *psharp.Runtime) {
		spin(r)
		r.MustRegisterMonitor("Responds", mtResponds)
	}
	h := psharp.NewTestHarness(setup)
	defer h.Close()
	strategy := sct.NewRandom(1)
	cfg := psharp.TestConfig{Strategy: strategy}
	for i := 0; i < 5; i++ {
		strategy.PrepareIteration(i)
		h.Run(cfg)
	}
	iter := 5
	monitored := testing.AllocsPerRun(100, func() {
		strategy.PrepareIteration(iter)
		iter++
		h.Run(cfg)
	})
	if monitored > base+5 {
		t.Errorf("monitored steady state = %.1f allocs/iteration vs %.1f unmonitored: monitor adds %.1f, want <= 5",
			monitored, base, monitored-base)
	}
	t.Logf("allocs/iteration: unmonitored %.1f, monitored %.1f", base, monitored)
}

// protocolAllocs measures steady-state allocations per iteration for a
// protocol setup through a warmed pooled harness.
func protocolAllocs(setup func(*psharp.Runtime), maxSteps int) float64 {
	h := psharp.NewTestHarness(setup)
	defer h.Close()
	strategy := sct.NewRandom(1)
	cfg := psharp.TestConfig{Strategy: strategy, MaxSteps: maxSteps}
	iter := 0
	for ; iter < 5; iter++ {
		strategy.PrepareIteration(iter)
		h.Run(cfg)
	}
	return testing.AllocsPerRun(100, func() {
		strategy.PrepareIteration(iter)
		iter++
		h.Run(cfg)
	})
}

// TestProtocolMonitorAllocationCap gates the specification layer's cost on
// a real protocol: attaching the TwoPhaseCommit atomicity monitor must add
// at most 5 allocs/iteration in the pooled-harness steady state (measured
// ~3: the monitor's logic struct, its outcome map, and one map bucket; the
// schema is compiled once per name and the instance recycled).
func TestProtocolMonitorAllocationCap(t *testing.T) {
	b := protocols.MustByName("TwoPhaseCommit", true)
	plain := protocolAllocs(b.Setup, b.MaxSteps)
	monitored := protocolAllocs(b.SetupMonitored(), b.MaxSteps)
	if monitored > plain+5 {
		t.Errorf("TwoPhaseCommit monitored = %.1f allocs/iteration vs %.1f plain: monitor adds %.1f, want <= 5",
			monitored, plain, monitored-plain)
	}
	t.Logf("TwoPhaseCommit allocs/iteration: plain %.1f, monitored %.1f", plain, monitored)
}
