package psharp_test

// Benchmarks regenerating the paper's evaluation (one bench per table row
// group, plus the ablations called out in DESIGN.md). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers depend on the host; the claims under test are the
// relative shapes (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/analysis"
	"github.com/psharp-go/psharp/internal/benchsrc"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/internal/tables"
	"github.com/psharp-go/psharp/interp"
	"github.com/psharp-go/psharp/lang"
	"github.com/psharp-go/psharp/sct"
)

// BenchmarkTable1Analyzer measures the static analyzer on every Table 1
// benchmark (the paper's per-benchmark analysis-time column).
func BenchmarkTable1Analyzer(b *testing.B) {
	for _, bench := range benchsrc.All() {
		prog, err := benchsrc.Source(bench.Name, false)
		if err != nil {
			b.Fatalf("load: %v", err)
		}
		b.Run(bench.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analysis.Analyze(prog, analysis.Options{XSA: true})
			}
		})
	}
}

// benchSCT runs a fixed number of schedules per iteration and reports
// schedules/second — the paper's #Sch/sec metric.
func benchSCT(b *testing.B, name string, mode tables.SchedulerMode, schedules int) {
	bench := protocols.MustByName(name, true)
	b.ReportAllocs()
	totalSchedules := 0
	for i := 0; i < b.N; i++ {
		opts := sct.Options{
			Iterations:    schedules,
			MaxSteps:      bench.MaxSteps,
			LivelockAsBug: bench.LivelockAsBug,
		}
		switch mode {
		case tables.ModeChessRDOn:
			opts.Strategy = sct.NewDFS()
			opts.ChessLike = true
			opts.RaceDetect = true
		case tables.ModeChessRDOff:
			opts.Strategy = sct.NewDFS()
			opts.ChessLike = true
		case tables.ModePSharpDFS:
			opts.Strategy = sct.NewDFS()
		case tables.ModePSharpRandom:
			opts.Strategy = sct.NewRandom(uint64(i) + 1)
		}
		rep := sct.Run(bench.Setup, opts)
		totalSchedules += rep.Iterations
	}
	b.ReportMetric(float64(totalSchedules)/b.Elapsed().Seconds(), "schedules/s")
}

// BenchmarkTable2 measures every buggy protocol under the four Table 2
// configurations (CHESS-like with and without race detection, P# DFS, P#
// random). 50 schedules per iteration keeps individual benches short; the
// schedules/s metric is budget-independent.
func BenchmarkTable2(b *testing.B) {
	modes := []tables.SchedulerMode{
		tables.ModeChessRDOn, tables.ModeChessRDOff,
		tables.ModePSharpDFS, tables.ModePSharpRandom,
	}
	for _, name := range protocols.Names() {
		if _, ok := protocols.ByName(name, true); !ok {
			continue
		}
		for _, mode := range modes {
			mode := mode
			name := name
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				benchSCT(b, name, mode, 50)
			})
		}
	}
}

// BenchmarkIterationAllocs compares the seed's per-iteration entry point
// (one-shot RunTest, which rebuilds the runtime, machines, goroutines, and
// trace every call) against the pooled TestHarness on the same workload:
// once on the spin hot-path program (where the runtime's own overhead
// dominates and pooling saves most of it — the ≥50% claim, gated hard by
// TestHarnessHalvesAllocations and recorded in BENCH_sct.json) and once on
// a protocol benchmark. Both workloads declare their machines in the
// static form, so the pooled numbers reflect per-type schema caching: the
// steady state pays only machine logic and wiring, never schema rebuilds
// (locked in by TestProtocolAllocationCap and the schema_cache_probe entry
// of BENCH_sct.json).
func BenchmarkIterationAllocs(b *testing.B) {
	tpc := protocols.MustByName("TwoPhaseCommit", true)
	workloads := []struct {
		name  string
		setup func(*psharp.Runtime)
		cfg   psharp.TestConfig
	}{
		{"spin", spinSetup(64), psharp.TestConfig{}},
		{"TwoPhaseCommit", tpc.Setup, psharp.TestConfig{MaxSteps: tpc.MaxSteps}},
	}
	for _, w := range workloads {
		b.Run(w.name+"/oneshot", func(b *testing.B) {
			strategy := sct.NewRandom(1)
			cfg := w.cfg
			cfg.Strategy = strategy
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				strategy.PrepareIteration(i)
				psharp.RunTest(w.setup, cfg)
			}
		})
		b.Run(w.name+"/pooled", func(b *testing.B) {
			h := psharp.NewTestHarness(w.setup)
			defer h.Close()
			strategy := sct.NewRandom(1)
			cfg := w.cfg
			cfg.Strategy = strategy
			for i := 0; i < 3; i++ { // warm the instance pool and buffers
				strategy.PrepareIteration(i)
				h.Run(cfg)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				strategy.PrepareIteration(i + 3)
				h.Run(cfg)
			}
		})
	}
}

// BenchmarkParallelExploration compares sequential Run against RunParallel
// on protocol-corpus benchmarks: same seed, same budget, same schedule
// population (sharded seed streams), different worker counts — plus, for
// multi-worker runs, static pre-assigned shards vs dynamic work-stealing
// ticket assignment. The claims under test are that schedules/s scales with
// workers and that dynamic mode is not slower when iteration costs skew.
func BenchmarkParallelExploration(b *testing.B) {
	for _, name := range []string{"Raft", "TwoPhaseCommit"} {
		bench := protocols.MustByName(name, true)
		for _, workers := range []int{1, 2, 4, 8} {
			sharding := []bool{false}
			if workers > 1 {
				sharding = []bool{false, true}
			}
			for _, dynamic := range sharding {
				label := fmt.Sprintf("%s/workers=%d", name, workers)
				if workers > 1 {
					mode := "static"
					if dynamic {
						mode = "dynamic"
					}
					label += "/" + mode
				}
				workers := workers
				dynamic := dynamic
				bench := bench
				b.Run(label, func(b *testing.B) {
					b.ReportAllocs()
					totalSchedules := 0
					for i := 0; i < b.N; i++ {
						opts := sct.Options{
							Strategy:   sct.NewRandom(uint64(i) + 1),
							Iterations: 64,
							MaxSteps:   bench.MaxSteps,
						}
						var rep sct.Report
						if workers == 1 {
							rep = sct.Run(bench.Setup, opts)
						} else {
							rep = sct.RunParallel(bench.Setup, sct.ParallelOptions{
								Options: opts, Workers: workers, Dynamic: dynamic,
							}).Report
						}
						totalSchedules += rep.Iterations
					}
					b.ReportMetric(float64(totalSchedules)/b.Elapsed().Seconds(), "schedules/s")
				})
			}
		}
	}
}

// BenchmarkInterpCorpus runs seeded .psl schedules over the full Table 1
// corpus (racy and non-racy variants) under each interp engine. The claim
// under test is the bytecode VM's schedules/s advantage over the reference
// tree-walker (the interp_perf_probe entry of BENCH_sct.json gates the
// ratio at ≥5x); -benchmem additionally shows the VM's zero steady-state
// allocations per schedule.
func BenchmarkInterpCorpus(b *testing.B) {
	type corpusProg struct {
		name string
		prog *lang.Program
	}
	var corpus []corpusProg
	for _, bench := range benchsrc.All() {
		prog, err := benchsrc.Source(bench.Name, false)
		if err != nil {
			b.Fatalf("load %s: %v", bench.Name, err)
		}
		corpus = append(corpus, corpusProg{bench.Name, prog})
		if bench.HasRacy {
			prog, err = benchsrc.Source(bench.Name, true)
			if err != nil {
				b.Fatalf("load %s racy: %v", bench.Name, err)
			}
			corpus = append(corpus, corpusProg{bench.Name + "Racy", prog})
		}
	}
	for _, engine := range []interp.Engine{interp.EngineWalk, interp.EngineBytecode} {
		engine := engine
		b.Run(engine.String(), func(b *testing.B) {
			// Warm the per-Program caches (schemas, bytecode) so the
			// measured loop is the steady state every exploration campaign
			// runs in.
			for _, cp := range corpus {
				interp.Run(cp.prog, cp.prog.Machines[0].Name, interp.Options{Engine: engine, Seed: 1})
			}
			b.ReportAllocs()
			b.ResetTimer()
			schedules := 0
			for i := 0; i < b.N; i++ {
				for _, cp := range corpus {
					interp.Run(cp.prog, cp.prog.Machines[0].Name,
						interp.Options{Engine: engine, Seed: uint64(i) + 1})
					schedules++
				}
			}
			b.ReportMetric(float64(schedules)/b.Elapsed().Seconds(), "schedules/s")
		})
	}
}

// BenchmarkAblationSchedulingGranularity isolates the paper's key runtime
// claim: scheduling only at send/create (P#) vs also at queue operations
// (CHESS granularity) on the same program and strategy.
func BenchmarkAblationSchedulingGranularity(b *testing.B) {
	bench := protocols.MustByName("German", false)
	for _, chess := range []bool{false, true} {
		name := "send-create-only"
		if chess {
			name = "chess-granularity"
		}
		chess := chess
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sct.Run(bench.Setup, sct.Options{
					Strategy:   sct.NewRandom(uint64(i) + 1),
					Iterations: 20,
					MaxSteps:   bench.MaxSteps,
					ChessLike:  chess,
				})
			}
		})
	}
}

// BenchmarkAblationRaceDetector isolates the RD-on/RD-off overhead on the
// same scheduler (the paper: CHESS runs 4-7.5x faster with its race
// detector off).
func BenchmarkAblationRaceDetector(b *testing.B) {
	bench := protocols.MustByName("ChainReplication", false)
	for _, rd := range []bool{true, false} {
		name := "RD-off"
		if rd {
			name = "RD-on"
		}
		rd := rd
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sct.Run(bench.Setup, sct.Options{
					Strategy:   sct.NewRandom(uint64(i) + 1),
					Iterations: 20,
					MaxSteps:   bench.MaxSteps,
					ChessLike:  true,
					RaceDetect: rd,
				})
			}
		})
	}
}

// BenchmarkAblationXSA measures the analysis cost of the cross-state
// analysis and the read-only extension on the heaviest Table 1 entries.
func BenchmarkAblationXSA(b *testing.B) {
	for _, name := range []string{"AsyncSystem", "MultiPaxos"} {
		prog, err := benchsrc.Source(name, false)
		if err != nil {
			b.Fatalf("load: %v", err)
		}
		for _, cfg := range []struct {
			label string
			opts  analysis.Options
		}{
			{"base", analysis.Options{}},
			{"xsa", analysis.Options{XSA: true}},
			{"xsa+readonly", analysis.Options{XSA: true, ReadOnly: true}},
		} {
			cfg := cfg
			b.Run(name+"/"+cfg.label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					analysis.Analyze(prog, cfg.opts)
				}
			})
		}
	}
}

// BenchmarkProductionRuntime measures the concurrent (non-serialized)
// runtime on the ping-pong workload: end-to-end event throughput.
func BenchmarkProductionRuntime(b *testing.B) {
	bench := protocols.MustByName("AsyncSystemSim", false)
	for i := 0; i < b.N; i++ {
		rep := sct.Run(bench.Setup, sct.Options{
			Strategy:   sct.NewRandom(uint64(i) + 1),
			Iterations: 10,
			MaxSteps:   bench.MaxSteps,
		})
		if rep.BugFound() {
			b.Fatalf("unexpected bug: %v", rep.FirstBug)
		}
	}
}
