package analysis

import (
	"fmt"
	"sort"

	"github.com/psharp-go/psharp/lang"
)

// installMachineCFG builds the cross-state analysis form of a machine
// (Section 5.4): one overarching CFG in which every state's entry block and
// every bound handler is inlined, the end of each handler leads to the hub
// of the (possibly new) state — "at the end of each method representing a
// state we non-deterministically call one of the methods representing an
// immediate successor state" — and machine fields are lifted to
// machine-level variables ("$f") with strong updates, which is what lets a
// reset like `this.f := null;` after a send discharge the staged-payload
// false positives (paper Example 5.5).
//
// Handler payloads are modeled as fresh unknown regions, one abstract
// object per inlined handler copy. Helper methods (not bound to any event)
// stay method-modular and are analyzed through their summaries.
func (a *analyzer) installMachineCFG(md *lang.MachineDecl) {
	handlerNames := make(map[string]bool)
	for _, s := range md.States {
		for _, meth := range s.OnDo {
			handlerNames[meth] = true
		}
	}
	for _, m := range md.Methods {
		if !handlerNames[m.Name] {
			mm := BuildMethod(a.prog, md.Name, m)
			a.methods[mm.QName()] = mm
		}
	}

	m := &Method{Holder: md.Name, Name: "$machine", RefVar: make(map[string]bool)}
	lo := &lowerer{prog: a.prog, lifted: true, method: m}
	entry := lo.newNode(Instr{Op: OpNop, Pos: md.Pos})
	exit := lo.newNode(Instr{Op: OpNop, Pos: md.Pos})

	// One hub node per state; control returns to a hub after each handler.
	hubs := make(map[string]*Node, len(md.States))
	for _, s := range md.States {
		hubs[s.Name] = lo.newNode(Instr{Op: OpNop, Pos: s.Pos})
	}

	copies := 0
	// inlineBody lowers stmts with a fresh prefix and links any contained
	// returns to the continuation node.
	inlineBody := func(stmts []lang.Stmt, payload *lang.VarDecl, pos lang.Pos) (head *Node, cont func(*Node)) {
		copies++
		lo.prefix = fmt.Sprintf("h%d$", copies)
		firstNew := len(lo.nodes)
		var c chain
		if payload != nil {
			name := lo.local(payload.Name)
			if payload.Type.IsRef() {
				m.RefVar[name] = true
			}
			// The payload is an unknown region owned by this machine from
			// the moment the handler starts (paper: "an action assumes
			// ownership of any payload it receives").
			lo.seq(&c, lo.newNode(Instr{Op: OpNew, Dst: name, Class: "$payload", Pos: pos}))
		}
		decl := &lang.MethodDecl{Name: "$inline", Body: stmts, Pos: pos}
		if payload != nil {
			decl.Params = []*lang.VarDecl{payload}
		}
		body := lowerBodyLifted(lo, decl)
		lo.append(&c, body)
		if c.head == nil {
			n := lo.newNode(Instr{Op: OpNop, Pos: pos})
			c = chain{head: n, tails: []*Node{n}}
		}
		created := lo.nodes[firstNew:]
		tails := c.tails
		lo.prefix = ""
		return c.head, func(next *Node) {
			for _, t := range tails {
				link(t, next)
			}
			for _, n := range created {
				if n.Instr.Op == OpReturn && len(n.Succs) == 0 {
					link(n, next)
				}
			}
		}
	}

	// Entry chains, one per state with an entry block.
	entryHead := make(map[string]*Node)
	entryCont := make(map[string]func(*Node))
	for _, s := range md.States {
		if s.Entry != nil {
			h, cont := inlineBody(s.Entry, nil, s.Pos)
			entryHead[s.Name] = h
			entryCont[s.Name] = cont
		}
	}
	// enter returns the node that represents entering a state.
	enter := func(state string) *Node {
		if h, ok := entryHead[state]; ok {
			return h
		}
		return hubs[state]
	}
	for _, s := range md.States {
		if cont, ok := entryCont[s.Name]; ok {
			cont(hubs[s.Name])
		}
	}

	link(entry, enter(md.StartState.Name))

	for _, s := range md.States {
		hub := hubs[s.Name]
		events := make([]string, 0, len(s.OnDo)+len(s.OnGoto))
		for e := range s.OnDo {
			events = append(events, e)
		}
		for e := range s.OnGoto {
			events = append(events, e)
		}
		sort.Strings(events)
		for _, e := range events {
			if meth, ok := s.OnDo[e]; ok {
				decl := md.MethodByName[meth]
				var payload *lang.VarDecl
				if len(decl.Params) == 1 {
					payload = decl.Params[0]
				}
				h, cont := inlineBody(decl.Body, payload, decl.Pos)
				link(hub, h)
				cont(hub)
				continue
			}
			target := s.OnGoto[e]
			link(hub, enter(target))
		}
		// A machine can stop receiving in any state.
		link(hub, exit)
	}

	m.CFG = &CFG{Entry: entry, Exit: exit, Nodes: lo.nodes}
	a.methods[m.QName()] = m
}

// lowerBodyLifted lowers a body using the lowerer's current prefix and
// lifted mode.
func lowerBodyLifted(lo *lowerer, decl *lang.MethodDecl) chain {
	for _, p := range decl.Params {
		if p.Type.IsRef() {
			lo.method.RefVar[lo.local(p.Name)] = true
		}
	}
	declareLocals(decl.Body, lo)
	return lo.lowerStmts(decl.Body)
}
