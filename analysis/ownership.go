package analysis

import (
	"fmt"
	"sort"

	"github.com/psharp-go/psharp/lang"
)

// Violation is one ownership violation: a give-up site (send, create, or a
// call passing an argument the callee gives up) that fails one of the
// respects-ownership conditions of Section 5.3. On race-free programs every
// violation is a false positive; on racy programs at least one is real.
type Violation struct {
	Machine    string
	Method     string
	Pos        lang.Pos
	Give       string // the variable given up
	Event      string // the sent event, if the site is a send
	Conditions []int  // which of conditions 1-3 failed
	Detail     string
	// WritesAfter reports that some use after the give-up may write the
	// payload's region (a field store through a tainted receiver or a call
	// to a writing method on a tainted argument). The read-only extension
	// may only suppress violations where this is false.
	WritesAfter bool
}

func (v Violation) String() string {
	return fmt.Sprintf("%s.%s: %s: ownership of %q violated (conditions %v): %s",
		v.Machine, v.Method, v.Pos, v.Give, v.Conditions, v.Detail)
}

// Options configures Analyze.
type Options struct {
	// XSA enables the cross-state analysis (Section 5.4): machines with
	// violations are re-analyzed on an overarching machine-level CFG with
	// fields lifted to strongly-updated variables.
	XSA bool
	// ReadOnly enables the read-only extension (Section 8): a violating
	// send is suppressed when every handler of the event, across all
	// machines, only reads the payload.
	ReadOnly bool
}

// Result is the outcome of analyzing a program.
type Result struct {
	// Violations are the surviving ownership violations (after xSA and the
	// read-only filter, when enabled).
	Violations []Violation
	// BaseViolations are the violations of the plain per-method analysis,
	// before xSA or read-only filtering (the paper's "No xSA" column).
	BaseViolations []Violation
	// ReadOnlySuppressed counts violations dropped by the read-only filter.
	ReadOnlySuppressed int
}

// Verified reports that the program was proven race-free.
func (r *Result) Verified() bool { return len(r.Violations) == 0 }

// Analyze runs the static data-race analysis on a checked program.
func Analyze(prog *lang.Program, opts Options) *Result {
	a := newAnalyzer(prog, false)
	a.runFixpoint()

	res := &Result{}
	perMachine := make(map[string][]Violation)
	for _, md := range sortedMachines(prog) {
		vs := a.checkMachine(md.Name)
		perMachine[md.Name] = vs
		res.BaseViolations = append(res.BaseViolations, vs...)
	}

	final := res.BaseViolations
	if opts.XSA {
		final = nil
		for _, md := range sortedMachines(prog) {
			if len(perMachine[md.Name]) == 0 {
				continue
			}
			// Re-analyze the machine on its cross-state CFG; only the
			// violations that persist there are reported (xSA is sound, so
			// discarding the others is safe).
			x := newAnalyzer(prog, true)
			x.installMachineCFG(md)
			x.runFixpoint()
			final = append(final, x.checkMachine(md.Name)...)
		}
	}

	if opts.ReadOnly {
		kept := final[:0:0]
		for _, v := range final {
			if v.Event != "" && !v.WritesAfter && a.eventReadOnly(v.Event) {
				res.ReadOnlySuppressed++
				continue
			}
			kept = append(kept, v)
		}
		final = kept
	}
	res.Violations = final
	return res
}

// GivesUp computes the give-up sets of every method (Figure 5), keyed by
// "Holder.Method", with formal parameter names as values; exported for
// tests and the psharp-analyze tool.
func GivesUp(prog *lang.Program) map[string][]string {
	a := newAnalyzer(prog, false)
	a.runFixpoint()
	out := make(map[string][]string)
	for name, m := range a.methods {
		sum := a.summaryOf(m.Holder, m.Name)
		var params []string
		for pos := range sum.GivesUp {
			if pos >= 0 && pos < len(m.Params) {
				params = append(params, m.Params[pos])
			}
		}
		sort.Strings(params)
		if len(params) > 0 {
			out[name] = params
		}
	}
	return out
}

func sortedMachines(prog *lang.Program) []*lang.MachineDecl {
	out := append([]*lang.MachineDecl(nil), prog.Machines...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// newAnalyzer builds the method universe: all class methods, all machine
// methods, and a synthetic method per state entry block. In lifted mode the
// machine methods are replaced later by installMachineCFG.
func newAnalyzer(prog *lang.Program, lifted bool) *analyzer {
	a := &analyzer{
		prog:    prog,
		methods: make(map[string]*Method),
		summary: make(map[string]*Summary),
		results: make(map[string]*methodAnalysis),
	}
	for _, cd := range prog.Classes {
		for _, m := range cd.Methods {
			mm := BuildMethod(prog, cd.Name, m)
			a.methods[mm.QName()] = mm
		}
	}
	if !lifted {
		for _, md := range prog.Machines {
			for _, m := range md.Methods {
				mm := BuildMethod(prog, md.Name, m)
				a.methods[mm.QName()] = mm
			}
			for _, s := range md.States {
				if s.Entry != nil {
					decl := &lang.MethodDecl{Name: "$entry_" + s.Name, Body: s.Entry, Pos: s.Pos}
					mm := BuildMethod(prog, md.Name, decl)
					a.methods[mm.QName()] = mm
				}
			}
		}
	}
	return a
}

// checkMachine runs the respects-ownership conditions over every analyzed
// method belonging to the machine.
func (a *analyzer) checkMachine(machine string) []Violation {
	var out []Violation
	names := make([]string, 0, len(a.methods))
	for name, m := range a.methods {
		if m.Holder == machine {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, a.checkMethod(a.methods[name])...)
	}
	return out
}

// checkMethod applies conditions 1-3 at every give-up site of the method.
func (a *analyzer) checkMethod(m *Method) []Violation {
	ma := a.results[m.QName()]
	if ma == nil {
		return nil
	}
	var out []Violation
	reachable := cfgReachability(m.CFG)
	for _, n := range m.CFG.Nodes {
		for _, w := range a.giveUpVarsAt(n) {
			if w == "" || !m.IsRef(w) {
				continue
			}
			if v, bad := a.checkGiveUp(m, ma, n, w, reachable); bad {
				out = append(out, v)
			}
		}
	}
	return out
}

// checkGiveUp evaluates the three respects-ownership conditions for giving
// up variable w at node n.
func (a *analyzer) checkGiveUp(m *Method, ma *methodAnalysis, n *Node, w string, reachable map[int]map[int]bool) (Violation, bool) {
	give := ma.reachVarIn(n.ID, w)
	if len(give) == 0 {
		return Violation{}, false // provably null payload
	}
	v := Violation{
		Machine: m.Holder,
		Method:  m.Name,
		Pos:     n.Instr.Pos,
		Give:    w,
		Event:   n.Instr.Event,
	}

	// Condition 2 first: w must not be this, and no other variable at the
	// site may alias the given-up region.
	if w == "this" {
		v.Conditions = append(v.Conditions, 2)
		v.Detail = "the receiver itself is given up"
	} else {
		for _, other := range n.Instr.usedRefVars(m.IsRef) {
			if other == w {
				continue
			}
			if ma.reachVarIn(n.ID, other).intersects(give) {
				v.Conditions = append(v.Conditions, 2)
				v.Detail = fmt.Sprintf("%q aliases the given-up payload at the give-up site", other)
				break
			}
		}
	}

	// Condition 1: the receiver must not reach the given-up region (a later
	// state could access it through a field).
	if w != "this" && ma.reachVarIn(n.ID, "this").intersects(give) {
		v.Conditions = append(v.Conditions, 1)
		if v.Detail == "" {
			v.Detail = "the machine can still reach the payload through its fields"
		}
	}

	// Condition 3: no variable used on any path after the give-up may still
	// hold the payload. Evaluated with a forward taint pass so that strong
	// updates (and xSA's lifted fields) properly kill stale aliases. The
	// pass also records whether any tainted use is a write, which gates the
	// read-only extension.
	taint := a.taintForward(m, ma, n, give)
	cond3 := false
	for _, n2 := range m.CFG.Nodes {
		if !reachable[n.ID][n2.ID] {
			continue
		}
		tset := taint[n2.ID]
		if len(tset) == 0 {
			continue
		}
		for _, used := range n2.Instr.usedRefVars(m.IsRef) {
			if tset[used] {
				if !cond3 {
					cond3 = true
					v.Conditions = append(v.Conditions, 3)
					if v.Detail == "" {
						v.Detail = fmt.Sprintf("%q is used at %s after the payload was given up", used, n2.Instr.Pos)
					}
				}
				break
			}
		}
		if a.isWritingUse(m, n2, tset) {
			v.WritesAfter = true
		}
	}

	if len(v.Conditions) == 0 {
		return Violation{}, false
	}
	sort.Ints(v.Conditions)
	return v, true
}

// taintForward propagates "holds given-up data" forward from node n, where
// the seed is every variable whose reachable region overlaps give. Strong
// assignments kill taint; stores taint this (member-insensitively); calls
// propagate through summaries. Returns taint-at-entry per node.
func (a *analyzer) taintForward(m *Method, ma *methodAnalysis, n *Node, give objSet) map[int]map[string]bool {
	seed := make(map[string]bool)
	for v := range ma.in[n.ID] {
		if !m.IsRef(v) {
			continue
		}
		if ma.reachVarIn(n.ID, v).intersects(give) {
			seed[v] = true
		}
	}
	taintIn := make(map[int]map[string]bool)
	// The seed applies at the exit of n, i.e. at the entry of its succs.
	work := make([]*Node, 0, len(n.Succs))
	for _, s := range n.Succs {
		taintIn[s.ID] = cloneSet(seed)
		work = append(work, s)
	}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		out := a.taintTransfer(m, ma, cur, taintIn[cur.ID])
		for _, s := range cur.Succs {
			dst, ok := taintIn[s.ID]
			if !ok {
				taintIn[s.ID] = cloneSet(out)
				work = append(work, s)
				continue
			}
			changed := false
			for v := range out {
				if !dst[v] {
					dst[v] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	return taintIn
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// taintTransfer applies one instruction to a taint set.
func (a *analyzer) taintTransfer(m *Method, ma *methodAnalysis, n *Node, in map[string]bool) map[string]bool {
	out := cloneSet(in)
	ins := n.Instr
	switch ins.Op {
	case OpAssign:
		if m.IsRef(ins.Dst) {
			if in[ins.Src] {
				out[ins.Dst] = true
			} else {
				delete(out, ins.Dst)
			}
		}
	case OpConst, OpNew:
		delete(out, ins.Dst)
	case OpLoad:
		if in["this"] {
			out[ins.Dst] = true
		} else {
			delete(out, ins.Dst)
		}
	case OpStore:
		if in[ins.Src] {
			out["this"] = true
		}
	case OpCreate:
		delete(out, ins.Dst)
	case OpCall:
		callee := a.methodOf(ins.Class, ins.Method)
		argOf := func(pos int) string {
			if pos == posThis {
				return ins.Recv
			}
			if pos >= 0 && pos < len(ins.Args) {
				return ins.Args[pos]
			}
			return ""
		}
		if callee == nil {
			// Unknown callee: taint spreads to everything involved.
			any := in[ins.Recv]
			for _, arg := range ins.Args {
				if in[arg] {
					any = true
				}
			}
			if any {
				out[ins.Recv] = true
				for _, arg := range ins.Args {
					if m.IsRef(arg) {
						out[arg] = true
					}
				}
				if ins.Dst != "" && m.IsRef(ins.Dst) {
					out[ins.Dst] = true
				}
			} else if ins.Dst != "" {
				delete(out, ins.Dst)
			}
			break
		}
		sum := a.summaryOf(ins.Class, ins.Method)
		for from, tos := range sum.Links {
			for to := range tos {
				if in[argOf(to)] && argOf(from) != "" && m.IsRef(argOf(from)) {
					out[argOf(from)] = true
				}
			}
		}
		if ins.Dst != "" && m.IsRef(ins.Dst) {
			tainted := false
			for pos := range sum.RetSources {
				if in[argOf(pos)] {
					tainted = true
				}
			}
			if tainted {
				out[ins.Dst] = true
			} else {
				delete(out, ins.Dst)
			}
		}
	}
	return out
}

// isWritingUse reports whether node n may write the region held by a
// tainted variable: a field store through a tainted receiver, or a call
// whose writing position is bound to a tainted variable.
func (a *analyzer) isWritingUse(m *Method, n *Node, tainted map[string]bool) bool {
	ins := n.Instr
	switch ins.Op {
	case OpStore:
		return tainted["this"]
	case OpCall:
		callee := a.methodOf(ins.Class, ins.Method)
		if callee == nil {
			// Unknown callee: assume it writes whatever it can reach.
			if tainted[ins.Recv] {
				return true
			}
			for _, arg := range ins.Args {
				if tainted[arg] {
					return true
				}
			}
			return false
		}
		sum := a.summaryOf(ins.Class, ins.Method)
		for pos := range sum.Writes {
			v := ins.Recv
			if pos >= 0 && pos < len(ins.Args) {
				v = ins.Args[pos]
			}
			if tainted[v] {
				return true
			}
		}
	}
	return false
}

// cfgReachability computes can-reach-via-at-least-one-edge per node pair.
func cfgReachability(cfg *CFG) map[int]map[int]bool {
	out := make(map[int]map[int]bool, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		seen := make(map[int]bool)
		stack := append([]*Node(nil), n.Succs...)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur.ID] {
				continue
			}
			seen[cur.ID] = true
			stack = append(stack, cur.Succs...)
		}
		out[n.ID] = seen
	}
	return out
}

// eventReadOnly reports whether every handler of the event, across every
// machine, only reads its payload: the payload parameter is neither written
// (directly or through callees) nor stored into the receiving machine's
// fields (which would allow writes in later states).
func (a *analyzer) eventReadOnly(event string) bool {
	for _, md := range a.prog.Machines {
		for _, s := range md.States {
			meth, ok := s.OnDo[event]
			if !ok {
				continue
			}
			decl := md.MethodByName[meth]
			if decl == nil || len(decl.Params) == 0 || decl.Params[0].Type.IsScalar() {
				continue // no payload access at all
			}
			sum := a.summaryOf(md.Name, meth)
			if sum.Writes[0] {
				return false
			}
			// Stored into machine state?
			if tos, ok := sum.Links[posThis]; ok && tos[0] {
				return false
			}
		}
		// Transitions deliver the payload to entry blocks, which cannot
		// access payloads in this language; they are read-only by
		// construction.
	}
	return true
}
