package analysis

import (
	"strings"
	"testing"

	"github.com/psharp-go/psharp/lang"
)

// listManagerSrc is the paper's running example (Examples 4.1 and 4.2): a
// machine managing a linked list. The %s hole optionally holds the repair
// of Example 5.5 (resetting the field after the send).
const listManagerSrc = `
event eAdd;
event eGet;
event eReply;

class elem {
	var val: int;
	var next: elem;
	method get_val(): int { var ret: int; ret := this.val; return ret; }
	method set_val(v: int) { this.val := v; }
	method get_next(): elem { var ret: elem; ret := this.next; return ret; }
	method set_next(n: elem) { this.next := n; }
}

machine list_manager {
	var list: elem;
	start state Init {
		entry { this.list := null; }
		on eAdd do add;
		on eGet do get;
	}
	method add(payload: elem) {
		var tmp: elem;
		tmp := this.list;
		payload.set_next(tmp);
		this.list := payload;
	}
	method get(client: machine) {
		var tmp: elem;
		tmp := this.list;
		send client, eReply, tmp;
		%s
	}
}
`

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := lang.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// TestListManagerRacy reproduces Example 5.4: the machine keeps a reference
// to the list after sending it, so the analyzer must flag the send — with
// and without xSA, since the race is real.
func TestListManagerRacy(t *testing.T) {
	src := strings.Replace(listManagerSrc, "%s", "", 1)
	prog := parse(t, src)
	res := Analyze(prog, Options{})
	if len(res.Violations) == 0 {
		t.Fatal("expected a violation on the racy list_manager (Example 5.4)")
	}
	resX := Analyze(prog, Options{XSA: true})
	if len(resX.Violations) == 0 {
		t.Fatal("xSA must keep the real race (the list field is never reset)")
	}
}

// TestListManagerRepaired reproduces Example 5.5: after resetting the field
// the program is race-free, but only xSA can prove it (the per-method
// analysis cannot see across states).
func TestListManagerRepaired(t *testing.T) {
	src := strings.Replace(listManagerSrc, "%s", "this.list := null;", 1)
	prog := parse(t, src)
	res := Analyze(prog, Options{})
	if len(res.BaseViolations) == 0 {
		t.Fatal("the per-method analysis must flag the staged-field send (the paper's main FP class)")
	}
	resX := Analyze(prog, Options{XSA: true})
	if len(resX.Violations) != 0 {
		for _, v := range resX.Violations {
			t.Logf("violation: %v", v)
		}
		t.Fatal("xSA must verify the repaired list_manager (Example 5.5)")
	}
}

// TestGivesUp reproduces Example 5.3: add gives up nothing, but the variant
// that forwards its payload gives it up; the give-up set propagates through
// helper calls (Figure 5's interprocedural fixpoint).
func TestGivesUp(t *testing.T) {
	src := `
event eFwd;
class elem { var next: elem; method set_next(n: elem) { this.next := n; } }
machine m {
	var peer: machine;
	start state S { entry {} on eFwd do fwd; on eKeep do keep; }
	method fwd(payload: elem) {
		this.relay(payload);
	}
	method relay(x: elem) {
		var p: machine;
		p := this.peer;
		send p, eFwd, x;
	}
	method keep(payload: elem) {
		var tmp: elem;
		tmp := payload;
		tmp.set_next(payload);
	}
}
event eKeep;
`
	prog := parse(t, src)
	gu := GivesUp(prog)
	if got := gu["m.relay"]; len(got) != 1 || got[0] != "x" {
		t.Errorf("gives_up(relay) = %v, want [x]", got)
	}
	if got := gu["m.fwd"]; len(got) != 1 || got[0] != "payload" {
		t.Errorf("gives_up(fwd) = %v, want [payload] (must propagate through the call)", got)
	}
	if got := gu["m.keep"]; len(got) != 0 {
		t.Errorf("gives_up(keep) = %v, want empty", got)
	}
}

// TestCleanProgramVerifies checks that sending freshly built objects is
// accepted without any violations.
func TestCleanProgramVerifies(t *testing.T) {
	src := `
event eMsg;
class box { var v: int; method set(v: int) { this.v := v; } }
machine producer {
	var peer: machine;
	start state Run {
		entry {
			var b: box;
			var p: machine;
			b := new box;
			b.set(42);
			p := this.peer;
			send p, eMsg, b;
			b := new box;
			b.set(43);
			send p, eMsg, b;
		}
	}
}
machine consumer {
	start state Run { on eMsg do handle; }
	method handle(payload: box) {
		payload.set(0);
	}
}
`
	prog := parse(t, src)
	res := Analyze(prog, Options{XSA: true})
	if len(res.BaseViolations) != 0 {
		for _, v := range res.BaseViolations {
			t.Logf("violation: %v", v)
		}
		t.Fatal("fresh-object sends must verify without xSA")
	}
	if !res.Verified() {
		t.Fatal("fresh-object sends must verify")
	}
}

// TestUseAfterGiveUp checks condition 3: using a payload after sending it.
func TestUseAfterGiveUp(t *testing.T) {
	src := `
event eMsg;
class box { var v: int; method set(v: int) { this.v := v; } }
machine sender {
	var peer: machine;
	start state Run { on eMsg do handle; }
	method handle(payload: box) {
		var p: machine;
		p := this.peer;
		send p, eMsg, payload;
		payload.set(1);
	}
}
`
	prog := parse(t, src)
	res := Analyze(prog, Options{XSA: true})
	if len(res.Violations) == 0 {
		t.Fatal("expected a condition-3 violation (use after give-up)")
	}
	found := false
	for _, v := range res.Violations {
		for _, c := range v.Conditions {
			if c == 3 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expected condition 3 among %v", res.Violations)
	}
}

// TestAliasAtGiveUp checks condition 2: a second variable aliasing the
// payload at the send.
func TestAliasAtGiveUp(t *testing.T) {
	src := `
event ePair;
class box { var v: int; method get(): int { var r: int; r := this.v; return r; } }
class pair {
	var a: box;
	method set_a(x: box) { this.a := x; }
}
machine sender {
	var peer: machine;
	start state Run { on ePair do handle; }
	method handle(payload: box) {
		var p: machine;
		var holder: pair;
		holder := new pair;
		holder.set_a(payload);
		p := this.peer;
		send p, ePair, holder;
		payload.get();
	}
}
`
	prog := parse(t, src)
	res := Analyze(prog, Options{XSA: true})
	if len(res.Violations) == 0 {
		t.Fatal("expected a violation: payload is reachable from the sent holder")
	}
}

// TestReadOnlySuppression checks the Section 8 extension: a violating send
// whose receivers only read the payload is suppressed when the read-only
// filter is on — the paper's remaining MultiPaxos/AsyncSystem FPs.
func TestReadOnlySuppression(t *testing.T) {
	src := `
event eShare;
class box { var v: int; method get(): int { var r: int; r := this.v; return r; } method set(v: int) { this.v := v; } }
machine sender {
	var data: box;
	var p1: machine;
	var p2: machine;
	start state S1 {
		entry {
			var d: box;
			var p: machine;
			d := new box;
			this.data := d;
			p := this.p1;
			send p, eShare, d;
		}
		on eNext goto S2;
	}
	state S2 {
		entry {
			var d: box;
			var p: machine;
			d := this.data;
			p := this.p2;
			send p, eShare, d;
		}
	}
}
machine reader {
	start state R { on eShare do handle; }
	method handle(payload: box) {
		payload.get();
	}
}
event eNext;
`
	prog := parse(t, src)
	plain := Analyze(prog, Options{XSA: true})
	if len(plain.Violations) == 0 {
		t.Fatal("the double-send-without-reset pattern must survive xSA (the paper's residual FP class)")
	}
	ro := Analyze(prog, Options{XSA: true, ReadOnly: true})
	if len(ro.Violations) != 0 {
		for _, v := range ro.Violations {
			t.Logf("violation: %v", v)
		}
		t.Fatal("read-only analysis must suppress the residual FPs")
	}
	if ro.ReadOnlySuppressed == 0 {
		t.Fatal("expected suppressed violations to be counted")
	}
}

// TestReadOnlyKeepsWriters checks that the read-only filter does not
// suppress violations when some receiver writes the payload.
func TestReadOnlyKeepsWriters(t *testing.T) {
	src := `
event eShare;
class box { var v: int; method set(v: int) { this.v := v; } }
machine sender {
	var data: box;
	var p1: machine;
	start state S1 {
		entry {
			var d: box;
			var p: machine;
			d := new box;
			this.data := d;
			p := this.p1;
			send p, eShare, d;
			d := this.data;
			send p, eShare, d;
		}
	}
}
machine writer {
	start state R { on eShare do handle; }
	method handle(payload: box) {
		payload.set(7);
	}
}
`
	prog := parse(t, src)
	ro := Analyze(prog, Options{XSA: true, ReadOnly: true})
	if len(ro.Violations) == 0 {
		t.Fatal("a writing receiver must keep the violation alive")
	}
}
