// Package analysis implements the paper's sound static data-race analysis
// (Section 5): an ownership-based check built on a heap-overlap analysis.
//
// Methods are lowered to a 3-address intermediate form and a single-entry
// single-exit control-flow graph (the paper's Assumptions). Heap overlap
// (may_overlap, Section 5.1) is implemented as a flow-sensitive symbolic
// reachability analysis over abstract objects — allocation sites, parameter
// entry objects and the receiver — with member-insensitive containment
// edges, made method-modular by summaries (the paper's taint summaries).
// On top of it sit the gives-up interprocedural fixpoint (Figure 5), the
// respects-ownership conditions 1-3 (Section 5.3), the cross-state analysis
// xSA (Section 5.4), and the read-only extension (Section 8 future work).
package analysis

import (
	"fmt"

	"github.com/psharp-go/psharp/lang"
)

// Op enumerates IR instruction kinds. Scalar computation is collapsed into
// OpConst (the analysis only tracks reference flow, as the paper's does),
// but reference variables consumed by scalar expressions are retained in
// Uses so the ownership conditions still see them as occurrences.
type Op int

// IR operations.
const (
	OpNop    Op = iota
	OpAssign    // Dst := Src
	OpConst     // Dst := <scalar or null>
	OpLoad      // Dst := this.Field
	OpStore     // this.Field := Src
	OpNew       // Dst := new Class
	OpCall      // Dst := Recv.Method(Args...)
	OpSend      // send Target, Event, Payload?
	OpCreate    // Dst := create MachineType(Payload?)
	OpReturn    // return Src?
	OpBranch    // branch on Src (scalar)
)

// Instr is one lowered instruction.
type Instr struct {
	Op     Op
	Dst    string
	Src    string
	Field  string
	Class  string
	Event  string
	Method string
	Recv   string
	Target string // send destination variable (machine-typed, scalar)
	Args   []string
	// Uses lists reference variables consumed by collapsed scalar
	// computation (e.g. comparisons against references).
	Uses []string
	Pos  lang.Pos
}

// String renders the instruction for diagnostics.
func (in Instr) String() string {
	switch in.Op {
	case OpAssign:
		return fmt.Sprintf("%s := %s", in.Dst, in.Src)
	case OpConst:
		return fmt.Sprintf("%s := <const>", in.Dst)
	case OpLoad:
		return fmt.Sprintf("%s := this.%s", in.Dst, in.Field)
	case OpStore:
		return fmt.Sprintf("this.%s := %s", in.Field, in.Src)
	case OpNew:
		return fmt.Sprintf("%s := new %s", in.Dst, in.Class)
	case OpCall:
		return fmt.Sprintf("%s := %s.%s(%v)", in.Dst, in.Recv, in.Method, in.Args)
	case OpSend:
		return fmt.Sprintf("send %s, %s, %s", in.Target, in.Event, in.Src)
	case OpCreate:
		return fmt.Sprintf("%s := create %s(%s)", in.Dst, in.Class, in.Src)
	case OpReturn:
		return fmt.Sprintf("return %s", in.Src)
	case OpBranch:
		return fmt.Sprintf("branch %s", in.Src)
	default:
		return "nop"
	}
}

// usedRefVars returns the reference-typed variables the instruction reads
// (the paper's vars(N) restricted to reference variables, minus the pure
// assignment target: overwriting a variable is a kill, not a use). The
// receiver participates in loads and stores.
func (in Instr) usedRefVars(isRef func(string) bool) []string {
	var out []string
	add := func(v string) {
		if v != "" && isRef(v) {
			out = append(out, v)
		}
	}
	add(in.Src)
	add(in.Recv)
	for _, a := range in.Args {
		add(a)
	}
	for _, u := range in.Uses {
		add(u)
	}
	switch in.Op {
	case OpLoad, OpStore:
		add("this")
	}
	return out
}

// Node is a CFG node holding exactly one instruction.
type Node struct {
	ID    int
	Instr Instr
	Succs []*Node
	Preds []*Node
}

// CFG is a single-entry single-exit control-flow graph.
type CFG struct {
	Entry, Exit *Node
	Nodes       []*Node
}

// Method is the analyzable form of one method: its CFG plus variable
// classification.
type Method struct {
	Holder string // enclosing class or machine name
	Name   string
	Params []string
	// RefVar reports which variables (params, locals, temps) are
	// reference-typed; "this" is always a reference.
	RefVar map[string]bool
	CFG    *CFG
	Decl   *lang.MethodDecl
}

// QName returns Holder.Name.
func (m *Method) QName() string { return m.Holder + "." + m.Name }

// IsRef classifies a variable of the method.
func (m *Method) IsRef(v string) bool {
	if v == "this" {
		return true
	}
	return m.RefVar[v]
}

// lowerer builds a Method from an AST method body.
type lowerer struct {
	prog   *lang.Program
	method *Method
	nodes  []*Node
	nextID int
	temps  int
	// lifted enables xSA mode: field accesses become assignments to
	// machine-level variables named "$<field>", with strong updates.
	lifted bool
	// prefix renames locals when inlining handler bodies into the
	// machine-level CFG.
	prefix string
}

func (lo *lowerer) newNode(in Instr) *Node {
	n := &Node{ID: lo.nextID, Instr: in}
	lo.nextID++
	lo.nodes = append(lo.nodes, n)
	return n
}

func link(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (lo *lowerer) temp(ref bool) string {
	lo.temps++
	name := fmt.Sprintf("%%t%d", lo.temps)
	if lo.prefix != "" {
		name = lo.prefix + name
	}
	if ref {
		lo.method.RefVar[name] = true
	}
	return name
}

func (lo *lowerer) local(name string) string {
	if lo.prefix != "" {
		return lo.prefix + name
	}
	return name
}

// fieldVar names the machine-level variable standing for a field in xSA
// mode.
func fieldVar(field string) string { return "$" + field }

// chain is a partial CFG: a head node and the set of dangling exits.
type chain struct {
	head  *Node
	tails []*Node
}

func (lo *lowerer) seq(c *chain, n *Node) {
	if c.head == nil {
		c.head = n
		c.tails = []*Node{n}
		return
	}
	for _, t := range c.tails {
		link(t, n)
	}
	c.tails = []*Node{n}
}

func (lo *lowerer) append(c *chain, sub chain) {
	if sub.head == nil {
		return
	}
	if c.head == nil {
		*c = sub
		return
	}
	for _, t := range c.tails {
		link(t, sub.head)
	}
	c.tails = sub.tails
}

func declareLocals(stmts []lang.Stmt, lo *lowerer) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *lang.LocalDecl:
			if st.Decl.Type.IsRef() {
				lo.method.RefVar[lo.local(st.Decl.Name)] = true
			}
		case *lang.IfStmt:
			declareLocals(st.Then, lo)
			declareLocals(st.Else, lo)
		case *lang.WhileStmt:
			declareLocals(st.Body, lo)
		}
	}
}

func (lo *lowerer) lowerStmts(stmts []lang.Stmt) chain {
	var c chain
	for _, s := range stmts {
		lo.append(&c, lo.lowerStmt(s))
	}
	return c
}

func (lo *lowerer) lowerStmt(s lang.Stmt) chain {
	var c chain
	switch st := s.(type) {
	case *lang.LocalDecl:
		// declaration only; no instruction
	case *lang.AssignStmt:
		v, sub := lo.lowerExpr(st.Value)
		c = sub
		if st.ToField != "" {
			if lo.lifted {
				lo.method.RefVar[fieldVar(st.ToField)] = refType(lo.prog, lo.fieldType(st.ToField))
				lo.seq(&c, lo.newNode(Instr{Op: OpAssign, Dst: fieldVar(st.ToField), Src: v, Pos: st.Pos}))
			} else {
				lo.seq(&c, lo.newNode(Instr{Op: OpStore, Field: st.ToField, Src: v, Pos: st.Pos}))
			}
		} else {
			lo.seq(&c, lo.newNode(Instr{Op: OpAssign, Dst: lo.local(st.Target), Src: v, Pos: st.Pos}))
		}
	case *lang.ExprStmt:
		_, c = lo.lowerExpr(st.X)
	case *lang.SendStmt:
		dst, sub := lo.lowerExpr(st.Dst)
		c = sub
		payload := ""
		if st.Payload != nil {
			var psub chain
			payload, psub = lo.lowerExpr(st.Payload)
			lo.append(&c, psub)
		}
		lo.seq(&c, lo.newNode(Instr{Op: OpSend, Target: dst, Event: st.Event, Src: payload, Pos: st.Pos}))
	case *lang.RaiseStmt:
		// A raise delivers the payload to this machine itself; ownership is
		// retained, so the analysis treats it as a no-op over references.
		lo.seq(&c, lo.newNode(Instr{Op: OpNop, Pos: st.Pos}))
	case *lang.ReturnStmt:
		src := ""
		if st.Value != nil {
			var sub chain
			src, sub = lo.lowerExpr(st.Value)
			c = sub
		}
		lo.seq(&c, lo.newNode(Instr{Op: OpReturn, Src: src, Pos: st.Pos}))
		// Statements after a return are unreachable; cut the chain.
		c.tails = nil
	case *lang.IfStmt:
		cond, sub := lo.lowerExpr(st.Cond)
		c = sub
		branch := lo.newNode(Instr{Op: OpBranch, Src: cond, Uses: refUses(st.Cond, lo), Pos: st.Pos})
		lo.seq(&c, branch)
		then := lo.lowerStmts(st.Then)
		els := lo.lowerStmts(st.Else)
		join := lo.newNode(Instr{Op: OpNop, Pos: st.Pos})
		if then.head != nil {
			link(branch, then.head)
			for _, t := range then.tails {
				link(t, join)
			}
		} else {
			link(branch, join)
		}
		if els.head != nil {
			link(branch, els.head)
			for _, t := range els.tails {
				link(t, join)
			}
		} else {
			link(branch, join)
		}
		c.tails = []*Node{join}
	case *lang.WhileStmt:
		cond, sub := lo.lowerExpr(st.Cond)
		head := sub.head
		branch := lo.newNode(Instr{Op: OpBranch, Src: cond, Uses: refUses(st.Cond, lo), Pos: st.Pos})
		if head == nil {
			head = branch
			sub = chain{head: branch, tails: []*Node{branch}}
		} else {
			for _, t := range sub.tails {
				link(t, branch)
			}
		}
		body := lo.lowerStmts(st.Body)
		exit := lo.newNode(Instr{Op: OpNop, Pos: st.Pos})
		link(branch, exit)
		if body.head != nil {
			link(branch, body.head)
			for _, t := range body.tails {
				link(t, head)
			}
		} else {
			link(branch, head)
		}
		c = chain{head: head, tails: []*Node{exit}}
	case *lang.AssertStmt:
		cond, sub := lo.lowerExpr(st.Cond)
		c = sub
		lo.seq(&c, lo.newNode(Instr{Op: OpBranch, Src: cond, Uses: refUses(st.Cond, lo), Pos: st.Pos}))
	}
	return c
}

// refUses collects reference-typed variable/field reads inside a collapsed
// scalar expression, so ownership condition 3 still sees them as uses.
func refUses(e lang.Expr, lo *lowerer) []string {
	var out []string
	var walk func(lang.Expr)
	walk = func(e lang.Expr) {
		switch x := e.(type) {
		case *lang.VarRef:
			if x.TypeOf().IsRef() {
				out = append(out, lo.local(x.Name))
			}
		case *lang.UnaryExpr:
			walk(x.X)
		case *lang.BinaryExpr:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(e)
	return out
}

func refType(prog *lang.Program, t lang.Type) bool { return t.IsRef() }

func (lo *lowerer) fieldType(name string) lang.Type {
	if md, ok := lo.prog.MachineByName[lo.method.Holder]; ok {
		if f, ok := md.FieldByName[name]; ok {
			return f.Type
		}
	}
	if cd, ok := lo.prog.ClassByName[lo.method.Holder]; ok {
		if f, ok := cd.FieldByName[name]; ok {
			return f.Type
		}
	}
	return lang.Type{Name: "int"}
}

// lowerExpr lowers an expression, returning the variable holding its value
// ("" for void calls) and the evaluation chain.
func (lo *lowerer) lowerExpr(e lang.Expr) (string, chain) {
	var c chain
	switch x := e.(type) {
	case *lang.IntLit, *lang.BoolLit:
		t := lo.temp(false)
		lo.seq(&c, lo.newNode(Instr{Op: OpConst, Dst: t}))
		return t, c
	case *lang.NullLit:
		t := lo.temp(true)
		lo.seq(&c, lo.newNode(Instr{Op: OpConst, Dst: t, Pos: x.Pos}))
		return t, c
	case *lang.VarRef:
		return lo.local(x.Name), c
	case *lang.ThisRef:
		return "this", c
	case *lang.FieldRef:
		t := lo.temp(x.TypeOf().IsRef())
		if lo.lifted {
			lo.method.RefVar[fieldVar(x.Field)] = x.TypeOf().IsRef()
			lo.seq(&c, lo.newNode(Instr{Op: OpAssign, Dst: t, Src: fieldVar(x.Field), Pos: x.Pos}))
		} else {
			lo.seq(&c, lo.newNode(Instr{Op: OpLoad, Dst: t, Field: x.Field, Pos: x.Pos}))
		}
		return t, c
	case *lang.NewExpr:
		t := lo.temp(true)
		lo.seq(&c, lo.newNode(Instr{Op: OpNew, Dst: t, Class: x.Class, Pos: x.Pos}))
		return t, c
	case *lang.CreateExpr:
		payload := ""
		if x.Payload != nil {
			var sub chain
			payload, sub = lo.lowerExpr(x.Payload)
			lo.append(&c, sub)
		}
		t := lo.temp(false) // machine handles are scalar
		lo.seq(&c, lo.newNode(Instr{Op: OpCreate, Dst: t, Class: x.Machine, Src: payload, Pos: x.Pos}))
		return t, c
	case *lang.CallExpr:
		recv, sub := lo.lowerExpr(x.Recv)
		c = sub
		args := make([]string, 0, len(x.Args))
		for _, a := range x.Args {
			av, asub := lo.lowerExpr(a)
			lo.append(&c, asub)
			args = append(args, av)
		}
		dst := ""
		if x.TypeOf().Name != "void" {
			dst = lo.temp(x.TypeOf().IsRef())
		}
		recvType := x.Recv.TypeOf().Name
		lo.seq(&c, lo.newNode(Instr{
			Op: OpCall, Dst: dst, Recv: recv, Class: recvType, Method: x.Method,
			Args: args, Pos: x.Pos,
		}))
		return dst, c
	case *lang.UnaryExpr, *lang.BinaryExpr:
		// Scalar computation collapses; keep reference uses visible.
		t := lo.temp(false)
		lo.seq(&c, lo.newNode(Instr{Op: OpConst, Dst: t, Uses: refUses(e, lo)}))
		return t, c
	}
	t := lo.temp(false)
	lo.seq(&c, lo.newNode(Instr{Op: OpConst, Dst: t}))
	return t, c
}

// BuildMethod lowers one method to its CFG form.
func BuildMethod(prog *lang.Program, holderName string, decl *lang.MethodDecl) *Method {
	m := &Method{Holder: holderName, Name: decl.Name, RefVar: make(map[string]bool)}
	for _, p := range decl.Params {
		m.Params = append(m.Params, p.Name)
	}
	m.Decl = decl
	lo := &lowerer{prog: prog, method: m}
	entry := lo.newNode(Instr{Op: OpNop, Pos: decl.Pos})
	body := lowerMethodInto(lo, decl)
	exit := lo.newNode(Instr{Op: OpNop, Pos: decl.Pos})
	link(entry, body.head)
	for _, t := range body.tails {
		link(t, exit)
	}
	// Returns jump straight to exit.
	for _, n := range lo.nodes {
		if n.Instr.Op == OpReturn && len(n.Succs) == 0 && n != exit {
			link(n, exit)
		}
	}
	m.CFG = &CFG{Entry: entry, Exit: exit, Nodes: lo.nodes}
	return m
}

func lowerMethodInto(lo *lowerer, decl *lang.MethodDecl) chain {
	for _, p := range decl.Params {
		if p.Type.IsRef() {
			lo.method.RefVar[lo.local(p.Name)] = true
		}
	}
	declareLocals(decl.Body, lo)
	body := lo.lowerStmts(decl.Body)
	if body.head == nil {
		n := lo.newNode(Instr{Op: OpNop, Pos: decl.Pos})
		body = chain{head: n, tails: []*Node{n}}
	}
	return body
}
