package analysis

import (
	"sort"

	"github.com/psharp-go/psharp/lang"
)

// objKind classifies abstract heap objects. Member insensitivity (paper
// Section 5.1: "we taint the whole object instead") means one abstract node
// stands for the entire region reachable from its source.
type objKind int

const (
	objParam objKind = iota // the region reachable from a formal parameter at entry
	objThis                 // the region reachable from the receiver
	objAlloc                // an allocation site
)

// obj is an abstract heap object.
type obj struct {
	kind objKind
	idx  int // parameter index, or allocating node ID
}

// objSet is a small set of abstract objects.
type objSet map[obj]bool

func (s objSet) clone() objSet {
	out := make(objSet, len(s))
	for o := range s {
		out[o] = true
	}
	return out
}

func (s objSet) addAll(other objSet) bool {
	changed := false
	for o := range other {
		if !s[o] {
			s[o] = true
			changed = true
		}
	}
	return changed
}

func (s objSet) intersects(other objSet) bool {
	for o := range s {
		if other[o] {
			return true
		}
	}
	return false
}

// Positions in method summaries: parameters are 0..n-1.
const (
	posThis = -1
)

// Summary is a method's modular abstraction (the paper's taint summary
// plus the gives-up and writes sets).
type Summary struct {
	// Links[i] lists positions whose objects may become reachable from
	// position i's object after the call (containment i -> j).
	Links map[int]map[int]bool
	// RetSources lists positions the return value may reach; RetFresh says
	// the return value may be a fresh allocation.
	RetSources map[int]bool
	RetFresh   bool
	// GivesUp marks parameter positions whose ownership the method
	// transfers away (Figure 5); posThis is possible too.
	GivesUp map[int]bool
	// Writes marks positions whose object may have a field written
	// (transitively); used by the read-only extension.
	Writes map[int]bool
}

func newSummary() *Summary {
	return &Summary{
		Links:      make(map[int]map[int]bool),
		RetSources: make(map[int]bool),
		GivesUp:    make(map[int]bool),
		Writes:     make(map[int]bool),
	}
}

func (s *Summary) link(from, to int) bool {
	m, ok := s.Links[from]
	if !ok {
		m = make(map[int]bool)
		s.Links[from] = m
	}
	if m[to] {
		return false
	}
	m[to] = true
	return true
}

// varPts maps variables to their points-to sets at a program point.
type varPts map[string]objSet

func (p varPts) clone() varPts {
	out := make(varPts, len(p))
	for v, s := range p {
		out[v] = s.clone()
	}
	return out
}

func (p varPts) get(v string) objSet {
	if s, ok := p[v]; ok {
		return s
	}
	return nil
}

// joinInto merges other into p; reports change.
func (p varPts) joinInto(other varPts) bool {
	changed := false
	for v, s := range other {
		cur, ok := p[v]
		if !ok {
			p[v] = s.clone()
			changed = true
			continue
		}
		if cur.addAll(s) {
			changed = true
		}
	}
	return changed
}

// methodAnalysis is the per-method dataflow result.
type methodAnalysis struct {
	method *Method
	// in/out points-to states per node ID.
	in, out map[int]varPts
	// contains is the monotone containment relation over abstract objects
	// accumulated for this method (member-insensitive heap edges).
	contains map[obj]objSet
	// containsEdges counts edges in contains, for fixpoint detection.
	containsEdges int
}

// reach closes a points-to set under containment.
func (ma *methodAnalysis) reach(s objSet) objSet {
	out := make(objSet)
	var stack []obj
	for o := range s {
		out[o] = true
		stack = append(stack, o)
	}
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range ma.contains[o] {
			if !out[c] {
				out[c] = true
				stack = append(stack, c)
			}
		}
	}
	return out
}

// reachVarIn returns the closure of v's points-to set on entry to node id.
func (ma *methodAnalysis) reachVarIn(id int, v string) objSet {
	return ma.reach(ma.in[id].get(v))
}

// reachVarOut returns the closure of v's points-to set on exit from node id.
func (ma *methodAnalysis) reachVarOut(id int, v string) objSet {
	return ma.reach(ma.out[id].get(v))
}

// analyzer drives the whole-program summary fixpoint.
type analyzer struct {
	prog    *lang.Program
	methods map[string]*Method // key: Holder.Name
	summary map[string]*Summary
	results map[string]*methodAnalysis
}

func (a *analyzer) methodOf(holder, name string) *Method {
	return a.methods[holder+"."+name]
}

func (a *analyzer) summaryOf(holder, name string) *Summary {
	s, ok := a.summary[holder+"."+name]
	if !ok {
		s = newSummary()
		a.summary[holder+"."+name] = s
	}
	return s
}

// paramIndex maps a method's formal names to positions.
func paramIndex(m *Method) map[string]int {
	idx := make(map[string]int, len(m.Params))
	for i, p := range m.Params {
		idx[p] = i
	}
	return idx
}

// analyzeMethod runs the flow-sensitive points-to pass for one method and
// returns whether its summary changed (for the global fixpoint).
func (a *analyzer) analyzeMethod(m *Method) bool {
	ma := &methodAnalysis{
		method:   m,
		in:       make(map[int]varPts),
		out:      make(map[int]varPts),
		contains: make(map[obj]objSet),
	}
	a.results[m.QName()] = ma

	init := make(varPts)
	init["this"] = objSet{obj{kind: objThis}: true}
	for i, p := range m.Params {
		if m.IsRef(p) {
			init[p] = objSet{obj{kind: objParam, idx: i}: true}
		}
	}
	// In xSA mode, machine-level field variables start as fresh unknown
	// regions (distinct abstract objects), modeling arbitrary prior state.
	for v, isRef := range m.RefVar {
		if isRef && len(v) > 0 && v[0] == '$' {
			init[v] = objSet{obj{kind: objParam, idx: fieldParamIndex(m, v)}: true}
		}
	}

	// Chaotic iteration to a fixpoint. Everything is monotone: points-to
	// sets and the containment relation only grow, so termination follows
	// from the finite abstract-object universe. Containment growth must
	// re-trigger transfer (OpLoad reads reach(this)), which plain worklist
	// scheduling on state change alone would miss.
	ma.in[m.CFG.Entry.ID] = init
	for changed := true; changed; {
		changed = false
		for _, n := range m.CFG.Nodes {
			inState, ok := ma.in[n.ID]
			if !ok {
				if n != m.CFG.Entry && len(n.Preds) == 0 {
					continue // unreachable
				}
				inState = make(varPts)
				ma.in[n.ID] = inState
			}
			for _, p := range n.Preds {
				if po, ok := ma.out[p.ID]; ok {
					if inState.joinInto(po) {
						changed = true
					}
				}
			}
			before := ma.containsEdges
			newOut := a.transfer(ma, n, inState)
			if ma.containsEdges != before {
				changed = true
			}
			oldOut, had := ma.out[n.ID]
			if !had {
				ma.out[n.ID] = newOut
				changed = true
			} else if oldOut.joinInto(newOut) {
				changed = true
			}
		}
	}
	return a.updateSummary(m, ma)
}

// fieldParamIndex gives each machine-level field variable a stable
// parameter-like abstract object index (negative, below posThis).
func fieldParamIndex(m *Method, v string) int {
	names := make([]string, 0, len(m.RefVar))
	for name := range m.RefVar {
		if len(name) > 0 && name[0] == '$' {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for i, name := range names {
		if name == v {
			return -10 - i
		}
	}
	return -10
}

// transfer applies one instruction.
func (a *analyzer) transfer(ma *methodAnalysis, n *Node, in varPts) varPts {
	out := in.clone()
	ins := n.Instr
	setStrong := func(dst string, s objSet) {
		if dst == "" {
			return
		}
		out[dst] = s
	}
	switch ins.Op {
	case OpAssign:
		if ma.method.IsRef(ins.Dst) {
			setStrong(ins.Dst, out.get(ins.Src).clone())
		}
	case OpConst:
		if ma.method.IsRef(ins.Dst) {
			setStrong(ins.Dst, make(objSet))
		}
	case OpLoad:
		if ma.method.IsRef(ins.Dst) {
			// Member-insensitive: a field load yields the whole region
			// reachable from the receiver.
			setStrong(ins.Dst, ma.reach(out.get("this")))
		}
	case OpStore:
		src := out.get(ins.Src)
		for o := range out.get("this") {
			a.contain(ma, o, src)
		}
	case OpNew:
		setStrong(ins.Dst, objSet{obj{kind: objAlloc, idx: n.ID}: true})
	case OpCall:
		a.transferCall(ma, n, out)
	case OpSend, OpCreate:
		// Ownership transfer is checked separately; no points-to effect.
		if ins.Op == OpCreate && ins.Dst != "" && ma.method.IsRef(ins.Dst) {
			setStrong(ins.Dst, make(objSet))
		}
	}
	return out
}

func (a *analyzer) contain(ma *methodAnalysis, container obj, contents objSet) {
	cur, ok := ma.contains[container]
	if !ok {
		cur = make(objSet)
		ma.contains[container] = cur
	}
	for o := range contents {
		if o != container && !cur[o] {
			cur[o] = true
			ma.containsEdges++
		}
	}
}

// transferCall applies a callee summary at a call site.
func (a *analyzer) transferCall(ma *methodAnalysis, n *Node, out varPts) {
	ins := n.Instr
	callee := a.methodOf(ins.Class, ins.Method)
	argOf := func(pos int) string {
		if pos == posThis {
			return ins.Recv
		}
		if pos >= 0 && pos < len(ins.Args) {
			return ins.Args[pos]
		}
		return ""
	}
	if callee == nil {
		// Unknown callee (paper Section 5.4: library calls are handled
		// conservatively — everything reachable becomes mutually reachable).
		all := make(objSet)
		vars := append([]string{ins.Recv}, ins.Args...)
		for _, v := range vars {
			all.addAll(ma.reach(out.get(v)))
		}
		for o := range all {
			a.contain(ma, o, all)
		}
		if ins.Dst != "" && ma.method.IsRef(ins.Dst) {
			s := all.clone()
			s[obj{kind: objAlloc, idx: n.ID}] = true
			out[ins.Dst] = s
		}
		return
	}
	sum := a.summaryOf(ins.Class, ins.Method)
	for from, tos := range sum.Links {
		fromSet := out.get(argOf(from))
		for to := range tos {
			toReach := ma.reach(out.get(argOf(to)))
			for o := range fromSet {
				a.contain(ma, o, toReach)
			}
		}
	}
	if ins.Dst != "" && ma.method.IsRef(ins.Dst) {
		s := make(objSet)
		for pos := range sum.RetSources {
			s.addAll(ma.reach(out.get(argOf(pos))))
		}
		if sum.RetFresh {
			s[obj{kind: objAlloc, idx: n.ID}] = true
		}
		out[ins.Dst] = s
	}
}

// updateSummary recomputes m's summary from the analysis result; returns
// whether it grew.
func (a *analyzer) updateSummary(m *Method, ma *methodAnalysis) bool {
	sum := a.summaryOf(m.Holder, m.Name)
	changed := false
	exitID := m.CFG.Exit.ID

	posOf := func(o obj) (int, bool) {
		switch o.kind {
		case objThis:
			return posThis, true
		case objParam:
			if o.idx >= 0 {
				return o.idx, true
			}
		}
		return 0, false
	}

	// Links: position i reaches position j's object at exit.
	exitState := ma.out[exitID]
	if exitState == nil {
		exitState = ma.in[exitID]
	}
	srcSets := map[int]objSet{posThis: ma.reach(objSet{obj{kind: objThis}: true})}
	for i := range m.Params {
		srcSets[i] = ma.reach(objSet{obj{kind: objParam, idx: i}: true})
	}
	for i, reachSet := range srcSets {
		for o := range reachSet {
			if j, ok := posOf(o); ok && j != i {
				if sum.link(i, j) {
					changed = true
				}
			}
		}
	}

	// Return sources.
	for _, n := range m.CFG.Nodes {
		if n.Instr.Op != OpReturn || n.Instr.Src == "" || !m.IsRef(n.Instr.Src) {
			continue
		}
		for o := range ma.reachVarIn(n.ID, n.Instr.Src) {
			if pos, ok := posOf(o); ok {
				if !sum.RetSources[pos] {
					sum.RetSources[pos] = true
					changed = true
				}
			} else if !sum.RetFresh {
				sum.RetFresh = true
				changed = true
			}
		}
	}

	// Writes: a field store writes this's region; calls propagate callee
	// writes onto whatever the written argument can reach.
	markWrite := func(s objSet) {
		for o := range s {
			if pos, ok := posOf(o); ok {
				if !sum.Writes[pos] {
					sum.Writes[pos] = true
					changed = true
				}
			}
		}
	}
	for _, n := range m.CFG.Nodes {
		switch n.Instr.Op {
		case OpStore:
			markWrite(ma.reachVarIn(n.ID, "this"))
		case OpCall:
			callee := a.summaryOf(n.Instr.Class, n.Instr.Method)
			if a.methodOf(n.Instr.Class, n.Instr.Method) == nil {
				// Unknown callee: assume it writes everything it can reach.
				markWrite(ma.reachVarIn(n.ID, n.Instr.Recv))
				for _, arg := range n.Instr.Args {
					markWrite(ma.reachVarIn(n.ID, arg))
				}
				continue
			}
			for pos := range callee.Writes {
				v := n.Instr.Recv
				if pos >= 0 && pos < len(n.Instr.Args) {
					v = n.Instr.Args[pos]
				}
				markWrite(ma.reachVarIn(n.ID, v))
			}
		}
	}

	// GivesUp (Figure 5): a send (or create, or call to a method that gives
	// up the corresponding formal) gives up every position whose entry
	// object is in the payload's reachable region.
	markGiveUp := func(s objSet) {
		for o := range s {
			if pos, ok := posOf(o); ok {
				if !sum.GivesUp[pos] {
					sum.GivesUp[pos] = true
					changed = true
				}
			}
		}
	}
	for _, n := range m.CFG.Nodes {
		for _, gv := range a.giveUpVarsAt(n) {
			if gv == "" || !m.IsRef(gv) {
				continue
			}
			markGiveUp(ma.reachVarIn(n.ID, gv))
		}
	}
	return changed
}

// giveUpVarsAt returns the variables whose ownership node n transfers away:
// the payload of a send/create, and every argument passed for a formal in
// the callee's give-up set.
func (a *analyzer) giveUpVarsAt(n *Node) []string {
	ins := n.Instr
	switch ins.Op {
	case OpSend, OpCreate:
		if ins.Src != "" {
			return []string{ins.Src}
		}
	case OpCall:
		if a.methodOf(ins.Class, ins.Method) == nil {
			return nil // unknown callees handled conservatively elsewhere
		}
		sum := a.summaryOf(ins.Class, ins.Method)
		var out []string
		for pos := range sum.GivesUp {
			if pos == posThis {
				out = append(out, ins.Recv)
			} else if pos >= 0 && pos < len(ins.Args) {
				out = append(out, ins.Args[pos])
			}
		}
		sort.Strings(out)
		return out
	}
	return nil
}

// runFixpoint computes all summaries to a global fixpoint (methods may be
// mutually recursive; Figure 5's outer repeat loop).
func (a *analyzer) runFixpoint() {
	names := make([]string, 0, len(a.methods))
	for name := range a.methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for {
		changed := false
		for _, name := range names {
			if a.analyzeMethod(a.methods[name]) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
