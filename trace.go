package psharp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// TraceFormatVersion is the version of the trace text encoding this build
// reads and writes. Version 2 added the header line and fault-decision
// records; version-1 traces (headerless, pre-fault) are rejected by
// DecodeTrace because a fault-era controller would misreplay them.
const TraceFormatVersion = 2

// DecisionKind labels entries of a schedule trace.
type DecisionKind int

// Decision kinds.
const (
	// DecisionSchedule records which machine the scheduler picked.
	DecisionSchedule DecisionKind = iota
	// DecisionBool records a controlled boolean choice.
	DecisionBool
	// DecisionInt records a controlled integer choice.
	DecisionInt
	// DecisionFault records the answer to a fault query: which failure
	// action (possibly none) the strategy injected at this point.
	DecisionFault
)

// FaultKind enumerates the failure actions a strategy can inject when
// TestConfig.Faults is set.
type FaultKind int

// Fault kinds.
const (
	// FaultNone records that the strategy declined to inject a fault at
	// this query. Recording the declines keeps the trace a complete
	// transcript of every decision, so replay never has to guess where the
	// queries happened.
	FaultNone FaultKind = iota
	// FaultCrash halts a machine mid-schedule (at a schedule-level fault
	// point), optionally restarting it from its creation payload.
	FaultCrash
	// FaultDrop silently discards the message being sent.
	FaultDrop
	// FaultDuplicate delivers the message being sent twice.
	FaultDuplicate
	// FaultReorder enqueues the message being sent at the front of the
	// target's queue instead of the back, breaking FIFO delivery.
	FaultReorder
)

// String returns the record mnemonic used in the trace encoding.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "dup"
	case FaultReorder:
		return "reorder"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultAction is a strategy's answer to a fault query: the failure to
// inject, if any. Machine, Restart and PreserveMailbox apply to FaultCrash
// only; the drop/duplicate/reorder kinds act on the message whose send
// triggered the query.
type FaultAction struct {
	Kind            FaultKind
	Machine         MachineID // FaultCrash: the machine to crash
	Restart         bool      // FaultCrash: reboot it from its creation payload
	PreserveMailbox bool      // FaultCrash+Restart: keep queued events across the reboot
}

// Decision is one scheduling or nondeterminism decision.
type Decision struct {
	Kind    DecisionKind
	Machine MachineID   // DecisionSchedule
	Bool    bool        // DecisionBool
	Int     int         // DecisionInt
	Fault   FaultAction // DecisionFault
}

// Trace records every decision of one test iteration. Because machine IDs
// are assigned deterministically in creation order, replaying a trace with
// sct.NewReplay reproduces the iteration exactly — this is the paper's
// deterministic bug replay (Section 6.2).
type Trace struct {
	Decisions []Decision
}

func (t *Trace) addSchedule(id MachineID) {
	t.Decisions = append(t.Decisions, Decision{Kind: DecisionSchedule, Machine: id})
}

func (t *Trace) addBool(v bool) {
	t.Decisions = append(t.Decisions, Decision{Kind: DecisionBool, Bool: v})
}

func (t *Trace) addInt(v int) {
	t.Decisions = append(t.Decisions, Decision{Kind: DecisionInt, Int: v})
}

func (t *Trace) addFault(f FaultAction) {
	t.Decisions = append(t.Decisions, Decision{Kind: DecisionFault, Fault: f})
}

// Len returns the number of recorded decisions.
func (t *Trace) Len() int { return len(t.Decisions) }

// HasFaultDecisions reports whether the trace contains any fault-query
// records, i.e. whether it was recorded with TestConfig.Faults enabled.
// Replaying such a trace requires fault queries to be enabled again;
// sct.ReplayTrace and psharp-test -replay use this to turn them on
// automatically.
func (t *Trace) HasFaultDecisions() bool {
	for _, d := range t.Decisions {
		if d.Kind == DecisionFault {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the trace. A TestHarness reuses its trace
// buffer across iterations, so callers that retain an IterationResult.Trace
// past the next Run must clone it first.
func (t *Trace) Clone() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{Decisions: append([]Decision(nil), t.Decisions...)}
}

// Encode writes the trace in a line-oriented text format. The first line is
// a required header naming the format version; the records are
//
//	s <machine-type> <machine-seq>              scheduling pick
//	b 0|1                                       controlled boolean
//	i <value>                                   controlled integer
//	f none|drop|dup|reorder                     fault query answer (send point)
//	f crash <machine-type> <machine-seq> <restart 0|1> <keepq 0|1>
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "psharp-trace %d\n", TraceFormatVersion); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "# records: s <type> <seq> | b 0|1 | i <value> | f none|drop|dup|reorder | f crash <type> <seq> <restart> <keepq>"); err != nil {
		return err
	}
	for _, d := range t.Decisions {
		var err error
		switch d.Kind {
		case DecisionSchedule:
			_, err = fmt.Fprintf(bw, "s %s %d\n", d.Machine.Type, d.Machine.Seq)
		case DecisionBool:
			v := 0
			if d.Bool {
				v = 1
			}
			_, err = fmt.Fprintf(bw, "b %d\n", v)
		case DecisionInt:
			_, err = fmt.Fprintf(bw, "i %d\n", d.Int)
		case DecisionFault:
			if d.Fault.Kind == FaultCrash {
				restart, keepq := 0, 0
				if d.Fault.Restart {
					restart = 1
				}
				if d.Fault.PreserveMailbox {
					keepq = 1
				}
				_, err = fmt.Fprintf(bw, "f crash %s %d %d %d\n",
					d.Fault.Machine.Type, d.Fault.Machine.Seq, restart, keepq)
			} else {
				_, err = fmt.Fprintf(bw, "f %s\n", d.Fault.Kind)
			}
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeTrace parses the format produced by Encode. Traces without the
// "psharp-trace <version>" header — including every trace recorded before
// format version 2 introduced fault decisions — are rejected with a clear
// error rather than silently misreplayed; re-record them with this build.
func DecodeTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if !sawHeader {
			fields := strings.Fields(text)
			if fields[0] != "psharp-trace" || len(fields) != 2 {
				return nil, fmt.Errorf("trace line %d: missing 'psharp-trace %d' header — this looks like a pre-fault (version 1) trace or not a trace at all; re-record it with this build", line, TraceFormatVersion)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad format version %q", line, fields[1])
			}
			if v != TraceFormatVersion {
				return nil, fmt.Errorf("trace line %d: unsupported trace format version %d (this build reads version %d)", line, v, TraceFormatVersion)
			}
			sawHeader = true
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "s":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace line %d: want 's <type> <seq>', got %q", line, text)
			}
			seq, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad seq: %v", line, err)
			}
			t.addSchedule(MachineID{Type: fields[1], Seq: seq})
		case "b":
			if len(fields) != 2 || (fields[1] != "0" && fields[1] != "1") {
				return nil, fmt.Errorf("trace line %d: want 'b 0|1', got %q", line, text)
			}
			t.addBool(fields[1] == "1")
		case "i":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace line %d: want 'i <value>', got %q", line, text)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad value: %v", line, err)
			}
			t.addInt(v)
		case "f":
			if len(fields) < 2 {
				return nil, fmt.Errorf("trace line %d: want 'f <kind>', got %q", line, text)
			}
			switch fields[1] {
			case "none", "drop", "dup", "reorder":
				if len(fields) != 2 {
					return nil, fmt.Errorf("trace line %d: want 'f %s', got %q", line, fields[1], text)
				}
				kind := map[string]FaultKind{
					"none": FaultNone, "drop": FaultDrop, "dup": FaultDuplicate, "reorder": FaultReorder,
				}[fields[1]]
				t.addFault(FaultAction{Kind: kind})
			case "crash":
				if len(fields) != 6 {
					return nil, fmt.Errorf("trace line %d: want 'f crash <type> <seq> <restart> <keepq>', got %q", line, text)
				}
				seq, err := strconv.ParseUint(fields[3], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace line %d: bad seq: %v", line, err)
				}
				restart, err := parseTraceBit(fields[4])
				if err != nil {
					return nil, fmt.Errorf("trace line %d: bad restart flag: %v", line, err)
				}
				keepq, err := parseTraceBit(fields[5])
				if err != nil {
					return nil, fmt.Errorf("trace line %d: bad keepq flag: %v", line, err)
				}
				t.addFault(FaultAction{
					Kind:            FaultCrash,
					Machine:         MachineID{Type: fields[2], Seq: seq},
					Restart:         restart,
					PreserveMailbox: keepq,
				})
			default:
				return nil, fmt.Errorf("trace line %d: unknown fault kind %q", line, fields[1])
			}
		default:
			return nil, fmt.Errorf("trace line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: empty input, missing 'psharp-trace %d' header", TraceFormatVersion)
	}
	return t, nil
}

func parseTraceBit(s string) (bool, error) {
	switch s {
	case "0":
		return false, nil
	case "1":
		return true, nil
	}
	return false, fmt.Errorf("want 0 or 1, got %q", s)
}
