package psharp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DecisionKind labels entries of a schedule trace.
type DecisionKind int

// Decision kinds.
const (
	// DecisionSchedule records which machine the scheduler picked.
	DecisionSchedule DecisionKind = iota
	// DecisionBool records a controlled boolean choice.
	DecisionBool
	// DecisionInt records a controlled integer choice.
	DecisionInt
)

// Decision is one scheduling or nondeterminism decision.
type Decision struct {
	Kind    DecisionKind
	Machine MachineID // DecisionSchedule
	Bool    bool      // DecisionBool
	Int     int       // DecisionInt
}

// Trace records every decision of one test iteration. Because machine IDs
// are assigned deterministically in creation order, replaying a trace with
// sct.NewReplay reproduces the iteration exactly — this is the paper's
// deterministic bug replay (Section 6.2).
type Trace struct {
	Decisions []Decision
}

func (t *Trace) addSchedule(id MachineID) {
	t.Decisions = append(t.Decisions, Decision{Kind: DecisionSchedule, Machine: id})
}

func (t *Trace) addBool(v bool) {
	t.Decisions = append(t.Decisions, Decision{Kind: DecisionBool, Bool: v})
}

func (t *Trace) addInt(v int) {
	t.Decisions = append(t.Decisions, Decision{Kind: DecisionInt, Int: v})
}

// Len returns the number of recorded decisions.
func (t *Trace) Len() int { return len(t.Decisions) }

// Clone returns a deep copy of the trace. A TestHarness reuses its trace
// buffer across iterations, so callers that retain an IterationResult.Trace
// past the next Run must clone it first.
func (t *Trace) Clone() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{Decisions: append([]Decision(nil), t.Decisions...)}
}

// Encode writes the trace in a line-oriented text format:
//
//	s <machine-type> <machine-seq>
//	b 0|1
//	i <value>
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, d := range t.Decisions {
		var err error
		switch d.Kind {
		case DecisionSchedule:
			_, err = fmt.Fprintf(bw, "s %s %d\n", d.Machine.Type, d.Machine.Seq)
		case DecisionBool:
			v := 0
			if d.Bool {
				v = 1
			}
			_, err = fmt.Fprintf(bw, "b %d\n", v)
		case DecisionInt:
			_, err = fmt.Fprintf(bw, "i %d\n", d.Int)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeTrace parses the format produced by Encode.
func DecodeTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "s":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace line %d: want 's <type> <seq>', got %q", line, text)
			}
			seq, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad seq: %v", line, err)
			}
			t.addSchedule(MachineID{Type: fields[1], Seq: seq})
		case "b":
			if len(fields) != 2 || (fields[1] != "0" && fields[1] != "1") {
				return nil, fmt.Errorf("trace line %d: want 'b 0|1', got %q", line, text)
			}
			t.addBool(fields[1] == "1")
		case "i":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace line %d: want 'i <value>', got %q", line, text)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace line %d: bad value: %v", line, err)
			}
			t.addInt(v)
		default:
			return nil, fmt.Errorf("trace line %d: unknown record %q", line, fields[0])
		}
	}
	return t, sc.Err()
}
