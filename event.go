package psharp

import (
	"reflect"
	"strings"

	"github.com/psharp-go/psharp/internal/vclock"
)

// Event is the interface implemented by all P# events. Events are plain Go
// values (usually pointers to structs, so that payloads are passed by
// reference like in the paper); embed EventBase to satisfy the interface:
//
//	type Req struct {
//		psharp.EventBase
//		Sender psharp.MachineID
//		Data   []int
//	}
type Event interface{ isPSharpEvent() }

// EventBase is embedded in user event types to mark them as events.
type EventBase struct{}

func (EventBase) isPSharpEvent() {}

// HaltEvent is the built-in halt event. Sending it to a machine (or raising
// it) terminates the machine: its queue is dropped and subsequent events to
// it are silently discarded, mirroring the P# halt semantics.
type HaltEvent struct{ EventBase }

// MachineCrashed is the lifecycle event dispatched to specification monitors
// when fault injection crashes a machine, immediately before the crash takes
// effect. Restart reports whether the same fault will reboot the machine.
// Monitors whose current state has no binding for it skip it, so existing
// monitors are unaffected by enabling faults.
type MachineCrashed struct {
	EventBase
	Machine MachineID
	Restart bool
}

// MachineRestarted is the lifecycle event dispatched to specification
// monitors when a crashed machine has been rebooted from its creation
// payload (same MachineID, fresh logic).
type MachineRestarted struct {
	EventBase
	Machine MachineID
}

// defaultEventName strips the package path from an event's dynamic type.
func eventName(ev Event) string {
	t := reflect.TypeOf(ev)
	for t.Kind() == reflect.Ptr {
		t = t.Elem()
	}
	name := t.String()
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// eventKey returns the dispatch key for an event value or prototype. Pointer
// and value forms of the same struct type are distinct keys on purpose: use
// one form consistently.
func eventKey(ev Event) reflect.Type { return reflect.TypeOf(ev) }

// envelope wraps an event in a machine's queue together with the metadata
// the testing runtime needs (happens-before clock for the race detector).
type envelope struct {
	event  Event
	sender MachineID
	clock  vclock.VC // nil when race detection is off
	seq    uint64    // global send sequence number, for logging/traces
}
