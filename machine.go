package psharp

import (
	"fmt"
	"sync"
)

// machineInstance is the runtime representation of one machine: its logic,
// compiled schema, current state, and event queue. The same instance code
// runs under the production runtime (goroutine with a blocking queue) and
// the serialized testing runtime (goroutine parked on a handshake channel).
type machineInstance struct {
	id     MachineID
	rt     *Runtime
	logic  Machine
	schema *compiledSchema
	ctx    *Context

	state  string
	halted bool

	mu    sync.Mutex
	cond  *sync.Cond
	queue []envelope

	// initReleased tracks the production-mode "initialization" work unit:
	// it is released once the initial entry action has completed (or the
	// machine dies), so Wait does not report quiescence while entry actions
	// are still running.
	initReleased bool

	// test mode fields
	resume  chan struct{}
	bug     *Bug
	aborted bool
	// crashed is set by the controller (while the goroutine is parked) to
	// make the next park unwind with a crashSignal: the fault-injection
	// crash. birth is the creation payload, kept so a crash-with-restart
	// can reboot the machine by re-delivering it.
	crashed bool
	birth   Event
	// hprog is the machine's mid-handler position hash, maintained only
	// when the controller's state hasher is active: seeded at event
	// dispatch from the event type and payload, advanced at every visible
	// operation the handler performs (sends, creates, nondeterministic
	// choices), and zeroed when the handler completes. Two global states
	// with equal visible state but different pending continuations must
	// hash differently, or the state cache would conflate them.
	hprog uint64

	// job feeds a pooled machine goroutine its next iteration's creation
	// payload; nil under the production runtime, where goroutines are
	// one-shot. Closing it retires the goroutine (TestHarness.Close).
	job chan Event
}

func newMachineInstance(rt *Runtime, id MachineID, logic Machine, schema *compiledSchema) *machineInstance {
	m := &machineInstance{id: id, rt: rt, logic: logic, schema: schema}
	m.cond = sync.NewCond(&m.mu)
	m.ctx = &Context{m: m, rt: rt}
	m.resume = make(chan struct{})
	return m
}

// progDispatch seeds the mid-handler position hash at event dispatch;
// progIdle clears it once the handler has run to completion, so a machine
// waiting for its next event contributes a stable "idle" position to the
// global-state hash. Both are no-ops unless state hashing is active.
func (m *machineInstance) progDispatch(ev Event) {
	if c := m.rt.test; c != nil && c.hasher != nil {
		m.hprog = c.hasher.dispatchHash(ev)
	}
}

func (m *machineInstance) progIdle() {
	if c := m.rt.test; c != nil && c.hasher != nil {
		m.hprog = 0
	}
}

// park blocks the machine goroutine until the testing controller schedules
// it. If the controller is tearing the iteration down, the goroutine unwinds
// with an abortSignal panic, which run's recover turns into a clean exit.
func (m *machineInstance) park() {
	<-m.resume
	if m.rt.test.isAborting() {
		panic(abortSignal{})
	}
	if m.crashed {
		panic(crashSignal{})
	}
}

// yieldPoint is a scheduling point: it hands control back to the testing
// controller and parks until rescheduled. No-op under the production
// runtime.
func (m *machineInstance) yieldPoint() {
	c := m.rt.test
	if c == nil {
		return
	}
	c.yield <- yieldMsg{m: m, kind: ykYield}
	m.park()
}

// poolLoop is the body of a pooled machine goroutine: it runs one iteration
// per job received and parks in between, so a TestHarness reuses goroutines
// instead of spawning one per machine per iteration. The loop exits when
// the harness closes the job channel.
func (m *machineInstance) poolLoop() {
	for payload := range m.job {
		m.run(payload)
	}
}

// recycle clears all per-iteration state so the instance (and its parked
// goroutine) can serve the next TestHarness iteration. Slices keep their
// capacity; event references are dropped so finished programs can be
// collected. Only called after teardown has joined the machine's goroutine.
func (m *machineInstance) recycle() {
	m.id = MachineID{}
	m.logic = nil
	m.schema = nil
	m.state = ""
	m.halted = false
	for i := range m.queue {
		m.queue[i] = envelope{}
	}
	m.queue = m.queue[:0]
	m.initReleased = false
	m.bug = nil
	m.aborted = false
	m.crashed = false
	m.birth = nil
	m.hprog = 0
	m.ctx.currentEvent = nil
	m.ctx.resetPending()
}

// run is the machine's goroutine body.
func (m *machineInstance) run(payload Event) {
	defer m.finish()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch v := r.(type) {
		case abortSignal:
			m.aborted = true
		case crashSignal:
			// Fault-injection crash: not a bug. m.crashed is already set;
			// finish reports ykCrashed to the waiting controller.
		case assertFailed:
			m.bug = &Bug{Kind: BugAssertion, Machine: m.id, State: m.state, Message: v.msg}
		default:
			m.bug = &Bug{Kind: BugPanic, Machine: m.id, State: m.state, Message: fmt.Sprint(v)}
		}
	}()
	if m.rt.test != nil {
		// Wait for the controller to schedule the machine for the first
		// time before running the initial state's entry action.
		m.park()
	}
	m.state = m.schema.initial
	if m.rt.logging() {
		m.rt.logf("%s: entering initial state %q", m.id, m.state)
	}
	st := m.schema.states[m.state]
	if st.hasEntry() {
		m.progDispatch(payload)
		if bug := m.execute(st.onEntry, st.onEntryM, payload); bug != nil {
			m.bug = bug
			return
		}
		m.progIdle()
	}
	m.releaseInit()
	for !m.halted {
		env, bug, ok := m.nextEvent()
		if bug != nil {
			m.bug = bug
			return
		}
		if !ok {
			return // runtime stopped
		}
		if m.rt.logging() {
			m.rt.logf("%s: dequeued %s in state %q", m.id, eventName(env.event), m.state)
		}
		m.progDispatch(env.event)
		bug = m.handleEvent(env.event)
		m.progIdle()
		// The work unit for this event is released only after its handler
		// has completed, so production-mode Wait cannot observe quiescence
		// while an action is still running.
		m.rt.eventConsumed()
		if bug != nil {
			m.bug = bug
			return
		}
	}
}

// finish reports the machine's fate exactly once: to the controller in test
// mode, or to the runtime's failure/accounting machinery in production.
func (m *machineInstance) finish() {
	if c := m.rt.test; c != nil {
		defer c.wg.Done()
		if m.aborted {
			return
		}
		if m.crashed {
			c.yield <- yieldMsg{m: m, kind: ykCrashed}
			return
		}
		if m.bug != nil {
			c.yield <- yieldMsg{m: m, kind: ykBug, bug: m.bug}
			return
		}
		c.yield <- yieldMsg{m: m, kind: ykHalted}
		return
	}
	if m.bug != nil {
		m.rt.fail(m.bug)
	}
	m.releaseInit()
}

// releaseInit releases the production-mode initialization work unit exactly
// once; only ever called from the machine's own goroutine.
func (m *machineInstance) releaseInit() {
	if m.initReleased || m.rt.test != nil {
		return
	}
	m.initReleased = true
	m.rt.initDone()
}

// nextEvent returns the next dispatchable event. Under the production
// runtime it blocks on the queue condition variable; under the testing
// runtime it reports "blocked" to the controller and parks. ok is false
// when the runtime is stopping.
func (m *machineInstance) nextEvent() (envelope, *Bug, bool) {
	c := m.rt.test
	for {
		if c != nil && c.cfg.ChessLike {
			// CHESS-granularity scheduling: the dequeue of the thread-safe
			// blocking queue is itself a visible synchronizing operation.
			m.yieldPoint()
		}
		m.mu.Lock()
		env, found, bug := m.scanQueueLocked()
		if bug != nil {
			m.mu.Unlock()
			return envelope{}, bug, false
		}
		if found {
			m.mu.Unlock()
			if c != nil {
				c.onDequeue(m, env)
			}
			return env, nil, true
		}
		if c != nil {
			m.mu.Unlock()
			c.yield <- yieldMsg{m: m, kind: ykBlocked}
			m.park()
			continue
		}
		if m.rt.isStopped() {
			m.mu.Unlock()
			return envelope{}, nil, false
		}
		m.cond.Wait()
		m.mu.Unlock()
	}
}

// scanQueueLocked implements the paper's transition-function semantics: it
// returns the first queued event the machine is willing to handle in its
// current state, dropping ignored events along the way and skipping deferred
// ones. Encountering an event with no binding at all is a runtime error
// (Section 6.1), except for the built-in halt event.
func (m *machineInstance) scanQueueLocked() (envelope, bool, *Bug) {
	i := 0
	for i < len(m.queue) {
		env := m.queue[i]
		disp, ok := m.schema.lookup(m.state, eventKey(env.event))
		if !ok {
			if isHaltEvent(env.event) {
				m.removeLocked(i) // released in run, like any dispatch
				return env, true, nil
			}
			return envelope{}, false, &Bug{
				Kind:    BugUnhandledEvent,
				Machine: m.id,
				State:   m.state,
				Message: fmt.Sprintf("event %s cannot be handled in state %q", eventName(env.event), m.state),
			}
		}
		switch disp.kind {
		case dispatchIgnore:
			m.removeLocked(i)
			m.rt.eventConsumed()
		case dispatchDefer:
			i++
		default:
			// The dequeued event's work unit stays outstanding until its
			// handler completes (released in run).
			m.removeLocked(i)
			return env, true, nil
		}
	}
	return envelope{}, false, nil
}

func (m *machineInstance) removeLocked(i int) {
	last := len(m.queue) - 1
	copy(m.queue[i:], m.queue[i+1:])
	// Zero the vacated tail slot: the shift leaves a duplicate envelope
	// beyond len that would otherwise retain its Event until the next
	// recycle or halt.
	m.queue[last] = envelope{}
	m.queue = m.queue[:last]
}

func isHaltEvent(ev Event) bool {
	switch ev.(type) {
	case *HaltEvent, HaltEvent:
		return true
	}
	return false
}

// handleEvent processes one dequeued or raised event to completion,
// including any chained raises and transitions requested by the actions.
func (m *machineInstance) handleEvent(ev Event) *Bug {
	disp, ok := m.schema.lookup(m.state, eventKey(ev))
	if !ok {
		if isHaltEvent(ev) {
			m.doHalt()
			return nil
		}
		return &Bug{
			Kind:    BugUnhandledEvent,
			Machine: m.id,
			State:   m.state,
			Message: fmt.Sprintf("event %s cannot be handled in state %q", eventName(ev), m.state),
		}
	}
	switch disp.kind {
	case dispatchIgnore:
		return nil
	case dispatchDefer:
		// Only reachable for raised events; re-queue at the back.
		m.rt.enqueue(m.id, ev, m.id, false)
		return nil
	case dispatchAction:
		if cov := m.rt.cover; cov != nil {
			cov.Hit(m.id.Type, m.state, disp.event)
		}
		return m.execute(disp.action, disp.maction, ev)
	case dispatchGoto:
		if cov := m.rt.cover; cov != nil {
			cov.Hit(m.id.Type, m.state, disp.event)
		}
		return m.gotoState(disp.target, ev)
	default:
		return &Bug{Kind: BugPanic, Machine: m.id, State: m.state, Message: "corrupt dispatch table"}
	}
}

// execute runs a bound action — whichever declaration form is set — and
// then applies whatever pending effect (halt, goto, raise) the action
// requested via its Context. Static-form actions receive the machine's
// logic instance explicitly, which is what lets their schema be shared.
func (m *machineInstance) execute(fn Action, mfn MachineAction, ev Event) *Bug {
	m.ctx.resetPending()
	m.ctx.currentEvent = ev
	if mfn != nil {
		mfn(m.logic, m.ctx, ev)
	} else {
		fn(m.ctx, ev)
	}
	return m.applyPending(ev)
}

func (m *machineInstance) applyPending(trigger Event) *Bug {
	halt, gotoState, raised := m.ctx.takePending()
	if halt {
		m.doHalt()
		return nil
	}
	if gotoState != "" {
		return m.gotoState(gotoState, trigger)
	}
	if raised != nil {
		if m.rt.logging() {
			m.rt.logf("%s: raised %s", m.id, eventName(raised))
		}
		m.rt.observeMonitors(raised) // monitors observe raises like sends
		return m.handleEvent(raised)
	}
	return nil
}

// gotoState exits the current state, enters target, and runs its entry
// action with the triggering event as payload.
func (m *machineInstance) gotoState(target string, payload Event) *Bug {
	cur := m.schema.states[m.state]
	if cur != nil && cur.hasExit() {
		m.ctx.resetPending()
		if cur.onExitM != nil {
			cur.onExitM(m.logic, m.ctx)
		} else {
			cur.onExit(m.ctx)
		}
		if halt, g, r := m.ctx.takePending(); halt || g != "" || r != nil {
			return &Bug{Kind: BugPanic, Machine: m.id, State: m.state,
				Message: "exit actions must not call Goto, Raise or Halt"}
		}
	}
	if m.rt.logging() {
		m.rt.logf("%s: %q -> %q", m.id, m.state, target)
	}
	m.state = target
	st := m.schema.states[target]
	if st.hasEntry() {
		return m.execute(st.onEntry, st.onEntryM, payload)
	}
	return nil
}

// doHalt marks the machine halted and drops its queue; further events sent
// to it are discarded by the runtime. The queue's capacity is retained (with
// event references cleared) so a recycled instance does not regrow it.
func (m *machineInstance) doHalt() {
	m.mu.Lock()
	dropped := len(m.queue)
	for i := range m.queue {
		m.queue[i] = envelope{}
	}
	m.queue = m.queue[:0]
	m.halted = true
	m.mu.Unlock()
	for i := 0; i < dropped; i++ {
		m.rt.eventConsumed()
	}
	if m.rt.logging() {
		m.rt.logf("%s: halted", m.id)
	}
}

// isHalted reports the halted flag under the queue lock (used by senders).
func (m *machineInstance) isHalted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.halted
}
