// Masterworker reproduces the paper's Section 3 example (Figure 1): a
// Dispatcher machine coordinates BaseService-style machines that can be
// promoted to master or demoted to worker at any time, while state updates
// and client requests keep flowing. The example runs the system under
// systematic testing and then replays one schedule deterministically.
package main

import (
	"fmt"
	"os"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

type eChangeToMaster struct {
	psharp.EventBase
	Workers []psharp.MachineID
}

type eChangeToWorker struct{ psharp.EventBase }

type eAck struct{ psharp.EventBase }

type eUpdateState struct{ psharp.EventBase }

type eCopyState struct {
	psharp.EventBase
	Data []int
}

type eClientRequest struct {
	psharp.EventBase
	Payload int
}

type eServiceInit struct {
	psharp.EventBase
	ID         int
	Dispatcher psharp.MachineID
}

type eDispatchCfg struct {
	psharp.EventBase
	Services []psharp.MachineID
	Rounds   int
}

// service is Figure 1's BaseService/UserService: Init, Worker and Master
// states with the four abstract actions implemented as methods. Machines
// use the static declaration form (ConfigureType + StaticBase), matching
// the paper's design where the state-machine tables are class properties
// compiled once.
type service struct {
	psharp.StaticBase
	id         int
	dispatcher psharp.MachineID
	data       []int
}

func (s *service) initializeState()    { s.data = []int{0} }
func (s *service) updateState()        { s.data = append(s.data, s.id) }
func (s *service) copyState(src []int) { s.data = append([]int(nil), src...) }

func (*service) ConfigureType(sc *psharp.Schema) {
	toMaster := func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		s := m.(*service)
		ctx.Send(s.dispatcher, &eAck{})
		for _, w := range ev.(*eChangeToMaster).Workers {
			if w != ctx.ID() {
				// Each worker receives a fresh copy: ownership of the
				// payload transfers with the event, the discipline the
				// paper's static analysis enforces.
				ctx.Send(w, &eCopyState{Data: append([]int(nil), s.data...)})
			}
		}
		ctx.Goto("Master")
	}
	toWorker := func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		ctx.Send(m.(*service).dispatcher, &eAck{})
		ctx.Goto("Worker")
	}
	sc.Start("Init").
		Defer(&eChangeToMaster{}).
		Defer(&eChangeToWorker{}).
		Defer(&eUpdateState{}).
		Defer(&eCopyState{}).
		OnEventDoM(&eServiceInit{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*service)
			cfg := ev.(*eServiceInit)
			s.id = cfg.ID
			s.dispatcher = cfg.Dispatcher
			s.initializeState()
			ctx.Goto("Worker")
		})
	sc.State("Worker").
		OnEventDoM(&eUpdateState{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*service).updateState()
		}).
		OnEventDoM(&eCopyState{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*service).copyState(ev.(*eCopyState).Data)
		}).
		OnEventDoM(&eChangeToMaster{}, toMaster).
		OnEventDoM(&eChangeToWorker{}, toWorker).
		Ignore(&eClientRequest{})
	sc.State("Master").
		OnEventDoM(&eClientRequest{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ctx.Assert(len(m.(*service).data) > 0, "master serving with empty state")
		}).
		OnEventDoM(&eChangeToWorker{}, toWorker).
		OnEventDoM(&eChangeToMaster{}, toMaster).
		Defer(&eUpdateState{}).
		Defer(&eCopyState{})
}

// dispatcher is Figure 1's Dispatcher: in Querying it loops, picking a
// service and one of four request kinds nondeterministically.
type dispatcher struct {
	psharp.StaticBase
	services []psharp.MachineID
	rounds   int
}

func (*dispatcher) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDoM(&eDispatchCfg{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*dispatcher)
			cfg := ev.(*eDispatchCfg)
			d.services = cfg.Services
			d.rounds = cfg.Rounds
			ctx.Raise(&eAck{})
		}).
		OnEventGoto(&eAck{}, "Querying")
	sc.State("Querying").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*dispatcher)
			if d.rounds == 0 {
				for _, s := range d.services {
					ctx.Send(s, &psharp.HaltEvent{})
				}
				ctx.Halt()
				return
			}
			d.rounds--
			target := d.services[ctx.RandomInt(len(d.services))]
			switch ctx.RandomInt(4) {
			case 0:
				ctx.Send(target, &eUpdateState{})
				ctx.Raise(&eAck{})
			case 1:
				ctx.Send(target, &eClientRequest{Payload: d.rounds})
				ctx.Raise(&eAck{})
			case 2:
				ctx.Send(target, &eChangeToMaster{Workers: d.services})
			case 3:
				ctx.Send(target, &eChangeToWorker{})
			}
		}).
		OnEventGoto(&eAck{}, "Querying")
}

func setup(r *psharp.Runtime) {
	r.MustRegister("Dispatcher", func() psharp.Machine { return &dispatcher{} })
	r.MustRegister("Service", func() psharp.Machine { return &service{} })
	disp := r.MustCreate("Dispatcher", nil)
	services := make([]psharp.MachineID, 3)
	for i := range services {
		services[i] = r.MustCreate("Service", nil)
		if err := r.SendEvent(services[i], &eServiceInit{ID: i + 1, Dispatcher: disp}); err != nil {
			panic(err)
		}
	}
	if err := r.SendEvent(disp, &eDispatchCfg{Services: services, Rounds: 8}); err != nil {
		panic(err)
	}
}

func main() {
	rep := sct.Run(setup, sct.Options{
		Strategy:   sct.NewRandom(7),
		Iterations: 2000,
		MaxSteps:   5000,
	})
	fmt.Printf("master/worker under 2000 random schedules: %s\n", rep.String())
	if rep.BugFound() {
		fmt.Println("unexpected bug — trace follows:")
		if err := rep.FirstBugTrace.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}

	// Deterministic replay of one specific schedule: record, then re-run.
	one := sct.Run(setup, sct.Options{Strategy: sct.NewRandom(99), Iterations: 1, MaxSteps: 5000})
	fmt.Printf("single recorded schedule: %d scheduling points\n", one.MaxSchedulingPoints)
}
