// Bughunt demonstrates the paper's headline workflow on the hardest bug in
// its Table 2: the seeded Raft vote-double-counting bug. The DFS scheduler
// misses it within a sizable budget, the random scheduler finds it, and the
// recorded trace replays the violation deterministically — the "no false
// positives, replayable bugs" promise of Section 6.2.
package main

import (
	"fmt"
	"os"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

func main() {
	raft := protocols.MustByName("Raft", true)

	fmt.Println("hunting the Raft election-safety bug (paper: 2% of schedules)...")

	dfs := sct.Run(raft.Setup, sct.Options{
		Strategy:       sct.NewDFS(),
		Iterations:     2000,
		MaxSteps:       raft.MaxSteps,
		StopOnFirstBug: true,
	})
	fmt.Printf("  DFS:    %s\n", dfs.String())

	rnd := sct.Run(raft.Setup, sct.Options{
		Strategy:       sct.NewRandom(20150628),
		Iterations:     20000,
		MaxSteps:       raft.MaxSteps,
		StopOnFirstBug: true,
	})
	fmt.Printf("  random: %s\n", rnd.String())
	if !rnd.BugFound() {
		fmt.Println("random scheduler missed the bug this time; increase the budget")
		os.Exit(1)
	}

	// Replay the recorded schedule: the same bug must reappear.
	res := sct.ReplayTrace(raft.Setup, rnd.FirstBugTrace, psharp.TestConfig{MaxSteps: raft.MaxSteps})
	if res.Bug == nil {
		fmt.Println("replay failed to reproduce the bug")
		os.Exit(1)
	}
	fmt.Printf("  replayed deterministically: %v\n", res.Bug)

	pct := sct.Run(raft.Setup, sct.Options{
		Strategy:       sct.NewPCT(99, 3, 400),
		Iterations:     20000,
		MaxSteps:       raft.MaxSteps,
		StopOnFirstBug: true,
	})
	fmt.Printf("  PCT(d=3): %s\n", pct.String())
}
