// Quickstart: a ping-pong pair of P# machines run first on the production
// runtime and then under systematic concurrency testing.
package main

import (
	"fmt"
	"log"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// Events. Payloads travel by reference, so use pointer types.

type evConfig struct {
	psharp.EventBase
	Server psharp.MachineID
	Rounds int
}

type evPing struct {
	psharp.EventBase
	From  psharp.MachineID
	Round int
}

type evPong struct {
	psharp.EventBase
	Round int
}

// server answers every ping with a pong. It uses the static declaration
// form (ConfigureType + StaticBase): the schema is a property of the type,
// compiled once per registration, and handlers receive the instance as a
// parameter instead of closing over it.
type server struct {
	psharp.StaticBase
	served int
}

func (*server) ConfigureType(sc *psharp.Schema) {
	sc.Start("Serving").
		OnEventDoM(&evPing{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ping := ev.(*evPing)
			m.(*server).served++
			ctx.Send(ping.From, &evPong{Round: ping.Round})
		})
}

// client plays a fixed number of rounds, then halts.
type client struct {
	psharp.StaticBase
	server psharp.MachineID
	rounds int
	round  int
}

func (*client) ConfigureType(sc *psharp.Schema) {
	sc.Start("Init").
		OnEventDoM(&evConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*client)
			cfg := ev.(*evConfig)
			c.server = cfg.Server
			c.rounds = cfg.Rounds
			ctx.Send(c.server, &evPing{From: ctx.ID(), Round: 1})
			ctx.Goto("Playing")
		})
	sc.State("Playing").
		OnEventDoM(&evPong{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*client)
			pong := ev.(*evPong)
			ctx.Assert(pong.Round == c.round+1, "out-of-order pong: %d after %d", pong.Round, c.round)
			c.round = pong.Round
			if c.round == c.rounds {
				ctx.Logf("done after %d rounds", c.round)
				ctx.Halt()
				return
			}
			ctx.Send(c.server, &evPing{From: ctx.ID(), Round: c.round + 1})
		})
}

func setup(r *psharp.Runtime) {
	r.MustRegister("Server", func() psharp.Machine { return &server{} })
	r.MustRegister("Client", func() psharp.Machine { return &client{} })
	srv := r.MustCreate("Server", nil)
	cli := r.MustCreate("Client", nil)
	if err := r.SendEvent(cli, &evConfig{Server: srv, Rounds: 5}); err != nil {
		log.Fatal(err)
	}
}

func main() {
	// 1. Production runtime: machines run concurrently, one goroutine each.
	rt := psharp.NewRuntime()
	setup(rt)
	if err := rt.Wait(); err != nil {
		log.Fatalf("production run failed: %v", err)
	}
	rt.Stop()
	fmt.Println("production run: quiescent, no failures")

	// 2. Bug-finding mode: explore 1000 random schedules.
	rep := sct.Run(setup, sct.Options{
		Strategy:   sct.NewRandom(42),
		Iterations: 1000,
		MaxSteps:   10000,
	})
	fmt.Printf("systematic testing: %s\n", rep.String())

	// 3. Exhaustive DFS: the ping-pong schedule space is tiny.
	dfs := sct.Run(setup, sct.Options{
		Strategy:   sct.NewDFS(),
		Iterations: 1_000_000,
		MaxSteps:   10000,
	})
	fmt.Printf("exhaustive DFS: explored %d schedules (exhausted=%v, bug=%v)\n",
		dfs.Iterations, dfs.Exhausted, dfs.BugFound())
}
