// Parallel demonstrates the portfolio exploration engine on the seeded Raft
// election-safety bug: a homogeneous sharded-random run that explores
// exactly the same schedule population as the sequential run (just across
// workers), then a heterogeneous random/PCT/delay/DFS portfolio, and a
// deterministic replay of whatever trace the winning worker recorded.
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

func main() {
	raft := protocols.MustByName("Raft", true)

	fmt.Println("hunting the Raft election-safety bug with a worker pool...")

	// Homogeneous: the same random search, sharded over 4 workers. Worker w
	// explores global iterations {w, w+4, w+8, ...} of the seed stream, so
	// the schedule population is identical to a sequential Run with this
	// seed — only the wall-clock changes.
	sharded := sct.RunParallel(raft.Setup, sct.ParallelOptions{
		Options: sct.Options{
			Strategy:       sct.NewRandom(20150628),
			Iterations:     20000,
			Timeout:        time.Minute,
			MaxSteps:       raft.MaxSteps,
			StopOnFirstBug: true,
		},
		Workers: 4,
	})
	fmt.Printf("  sharded random x4: %s\n", sharded.String())

	// Heterogeneous: one worker each of random, PCT(d=3), delay-bounding
	// and DFS. The portfolio hedges: whichever strategy fits the bug wins,
	// and StopOnFirstBug cancels the rest promptly.
	portfolio, err := sct.ParsePortfolio("default", 20150628, raft.MaxSteps)
	if err != nil {
		panic(err)
	}
	mixed := sct.RunParallel(raft.Setup, sct.ParallelOptions{
		Options: sct.Options{
			Iterations:     20000,
			Timeout:        time.Minute,
			MaxSteps:       raft.MaxSteps,
			StopOnFirstBug: true,
		},
		Workers:   4,
		Portfolio: portfolio,
	})
	for _, w := range mixed.Workers {
		fmt.Printf("    worker %d (%s): %s\n", w.Worker, w.Strategy, w.Report.String())
	}
	fmt.Printf("  portfolio x4: %s\n", mixed.String())

	winner := mixed.Report
	if !winner.BugFound() {
		winner = sharded.Report
	}
	if !winner.BugFound() {
		fmt.Println("no worker found the bug this time; increase the budget")
		os.Exit(1)
	}

	// A parallel find is as replayable as a sequential one: the winning
	// worker's trace reproduces the bug deterministically.
	res := sct.ReplayTrace(raft.Setup, winner.FirstBugTrace, psharp.TestConfig{MaxSteps: raft.MaxSteps})
	if res.Bug == nil {
		fmt.Println("replay failed to reproduce the bug")
		os.Exit(1)
	}
	fmt.Printf("  replayed deterministically: %v\n", res.Bug)
}
