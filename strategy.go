package psharp

import "fmt"

// Strategy decides scheduling and nondeterministic choices in bug-finding
// mode (paper Section 6.2). The serialized runtime calls NextMachine at each
// scheduling point (before send and create-machine operations, and when the
// current machine blocks), and NextBool/NextInt for each controlled
// nondeterministic choice. The enabled slice is sorted by creation order and
// is never empty; the returned machine must be one of its elements. The
// slice is a scratch buffer the runtime reuses across scheduling points:
// it is only valid for the duration of the call, so strategies that keep
// the enabled set must copy it.
//
// All calls within one iteration are serialized by the runtime, so Strategy
// implementations need no internal locking. Concrete strategies (random,
// DFS, PCT, delay-bounding, replay) live in the sct package.
//
// Strategy is the compatibility surface of the decision model below: the
// controller drives every strategy through DecisionStrategy, wrapping a
// plain Strategy in an adapter that maps the three methods onto the
// corresponding Choice kinds and answers fault queries with FaultNone. A
// strategy that wants to inject faults (or to see every nondeterminism
// point through one entry point) implements DecisionStrategy as well; the
// controller then calls Decide directly and the three methods are unused.
type Strategy interface {
	NextMachine(current MachineID, enabled []MachineID) MachineID
	NextBool() bool
	NextInt(n int) int
}

// ChoiceKind labels the nondeterminism points the controller can put to a
// strategy.
type ChoiceKind int

// Choice kinds.
const (
	// ChoiceMachine asks which enabled machine steps next.
	ChoiceMachine ChoiceKind = iota
	// ChoiceBool asks for a controlled boolean (Context.RandomBool).
	ChoiceBool
	// ChoiceInt asks for a controlled integer in [0, N) (Context.RandomInt).
	ChoiceInt
	// ChoiceFault asks whether to inject a failure action here. Fault
	// queries happen only when TestConfig.Faults is set: once per
	// scheduler pass (may a machine crash?) and once per machine send
	// (should this message be dropped, duplicated or reordered?).
	ChoiceFault
)

// FaultPoint says where in the schedule a ChoiceFault query arises.
type FaultPoint int

// Fault query points.
const (
	// FaultPointSchedule is the per-pass query issued by the scheduler
	// loop before it picks the next machine; the only fault expressible
	// here is FaultCrash against one of Choice.Crashable.
	FaultPointSchedule FaultPoint = iota
	// FaultPointSend is the per-send query issued while a machine-to-
	// machine message is in flight; the faults expressible here are
	// FaultDrop, FaultDuplicate and FaultReorder.
	FaultPointSend
)

// Choice describes one nondeterminism point. Only the fields of the active
// Kind are meaningful. The Enabled and Crashable slices are scratch buffers
// the runtime reuses; copy them to keep them.
//
// Fault queries are issued unconditionally whenever faults are enabled —
// even when no fault is permitted at this point — so that the query
// sequence is a function of the schedule alone and recorded traces replay
// without knowing the original fault configuration. Ineligible queries
// (Eligible false: the send targets an immune machine, or no machine is
// crashable) must be answered FaultNone.
type Choice struct {
	Kind ChoiceKind

	// ChoiceMachine.
	Current MachineID
	Enabled []MachineID

	// ChoiceInt: the exclusive upper bound.
	N int

	// ChoiceFault.
	Point     FaultPoint
	Crashable []MachineID // FaultPointSchedule: machines a crash may target
	Target    MachineID   // FaultPointSend: the message's destination
	Eligible  bool        // false: the only valid answer is FaultNone
}

// DecisionStrategy is the generalized strategy interface: one entry point
// the controller calls at every nondeterminism point. Decide must return a
// Decision whose Kind matches the query (ChoiceMachine → DecisionSchedule,
// ChoiceBool → DecisionBool, ChoiceInt → DecisionInt, ChoiceFault →
// DecisionFault); a mismatched or invalid decision ends the iteration with
// a bug attributed to the strategy. Like Strategy, all calls within one
// iteration are serialized.
type DecisionStrategy interface {
	Decide(c Choice) Decision
}

// legacyDecider adapts a plain Strategy to the decision API. It answers
// every fault query with FaultNone, so pre-fault strategies compose with
// fault-enabled configs (they just never inject anything). The controller
// embeds one by value to avoid a per-iteration allocation.
type legacyDecider struct {
	s Strategy
}

func (a *legacyDecider) Decide(c Choice) Decision {
	switch c.Kind {
	case ChoiceMachine:
		return Decision{Kind: DecisionSchedule, Machine: a.s.NextMachine(c.Current, c.Enabled)}
	case ChoiceBool:
		return Decision{Kind: DecisionBool, Bool: a.s.NextBool()}
	case ChoiceInt:
		return Decision{Kind: DecisionInt, Int: a.s.NextInt(c.N)}
	case ChoiceFault:
		return Decision{Kind: DecisionFault}
	}
	panic(fmt.Sprintf("psharp: unknown choice kind %d", c.Kind))
}

// AsStrategy wraps a pure DecisionStrategy as a Strategy so it can be used
// as TestConfig.Strategy. The controller detects the underlying
// DecisionStrategy and routes every query — including fault queries —
// through Decide; the three legacy methods exist only to satisfy the
// config's type. Strategies that already implement both interfaces (like
// sct.FaultInjector and sct.Replay) do not need the wrapper.
func AsStrategy(d DecisionStrategy) Strategy {
	return &deciderStrategy{d: d}
}

type deciderStrategy struct {
	d DecisionStrategy
}

func (w *deciderStrategy) Decide(c Choice) Decision { return w.d.Decide(c) }

func (w *deciderStrategy) NextMachine(current MachineID, enabled []MachineID) MachineID {
	return w.d.Decide(Choice{Kind: ChoiceMachine, Current: current, Enabled: enabled}).Machine
}

func (w *deciderStrategy) NextBool() bool {
	return w.d.Decide(Choice{Kind: ChoiceBool}).Bool
}

func (w *deciderStrategy) NextInt(n int) int {
	return w.d.Decide(Choice{Kind: ChoiceInt, N: n}).Int
}
