package psharp

// Strategy decides scheduling and nondeterministic choices in bug-finding
// mode (paper Section 6.2). The serialized runtime calls NextMachine at each
// scheduling point (before send and create-machine operations, and when the
// current machine blocks), and NextBool/NextInt for each controlled
// nondeterministic choice. The enabled slice is sorted by creation order and
// is never empty; the returned machine must be one of its elements. The
// slice is a scratch buffer the runtime reuses across scheduling points:
// it is only valid for the duration of the call, so strategies that keep
// the enabled set must copy it.
//
// All calls within one iteration are serialized by the runtime, so Strategy
// implementations need no internal locking. Concrete strategies (random,
// DFS, PCT, delay-bounding, replay) live in the sct package.
type Strategy interface {
	NextMachine(current MachineID, enabled []MachineID) MachineID
	NextBool() bool
	NextInt(n int) int
}
