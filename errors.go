package psharp

import "fmt"

// BugKind classifies the failures the runtime can detect (paper Section 6.1:
// unhandled events, ambiguous handlers, uncaught exceptions; Section 6.2:
// assertion violations found in bug-finding mode; Section 7.2.2: livelocks
// detected by imposing a depth bound).
type BugKind int

// Bug kinds.
const (
	// BugAssertion is a violated Context.Assert.
	BugAssertion BugKind = iota
	// BugUnhandledEvent is an event dequeued in a state with no binding,
	// transition, defer or ignore for it.
	BugUnhandledEvent
	// BugPanic is an uncaught panic escaping a user action.
	BugPanic
	// BugDeadlock means some machine still has queued events but no machine
	// is enabled (cannot happen with pure machine programs; kept for the
	// environment-modeling extensions).
	BugDeadlock
	// BugLivelock is reported when the configured depth bound is exceeded
	// and the engine is asked to treat that as a liveness bug.
	BugLivelock
	// BugDataRace is reported by the happens-before detector (RD-on mode).
	BugDataRace
	// BugMonitor is a safety violation detected by a specification monitor:
	// an assertion failed (or a forbidden operation was attempted) inside a
	// monitor action while it processed an observed event.
	BugMonitor
	// BugLiveness is a liveness violation: a monitor stayed in a hot state
	// past the configured temperature threshold, or was still hot when the
	// program quiesced. Only reported when TestConfig.LivenessTemperature is
	// set; meaningful under fair schedules (see sct.RandomFair).
	BugLiveness
)

func (k BugKind) String() string {
	switch k {
	case BugAssertion:
		return "assertion failure"
	case BugUnhandledEvent:
		return "unhandled event"
	case BugPanic:
		return "uncaught panic"
	case BugDeadlock:
		return "deadlock"
	case BugLivelock:
		return "livelock (depth bound exceeded)"
	case BugDataRace:
		return "data race"
	case BugMonitor:
		return "monitor violation"
	case BugLiveness:
		return "liveness violation"
	default:
		return fmt.Sprintf("bug(%d)", int(k))
	}
}

// Bug describes a failure detected during execution or testing.
type Bug struct {
	Kind    BugKind
	Machine MachineID
	// Monitor names the specification monitor that detected the failure
	// (BugMonitor and BugLiveness); empty for machine-detected bugs.
	Monitor string
	State   string
	Message string
}

// Error implements the error interface.
func (b *Bug) Error() string {
	if b.Monitor != "" {
		return fmt.Sprintf("psharp: %s by monitor %q in state %q: %s", b.Kind, b.Monitor, b.State, b.Message)
	}
	if b.Machine.IsNil() {
		return fmt.Sprintf("psharp: %s: %s", b.Kind, b.Message)
	}
	return fmt.Sprintf("psharp: %s in %s state %q: %s", b.Kind, b.Machine, b.State, b.Message)
}

// assertFailed is the panic payload used by Context.Assert; the machine
// dispatch loop recovers it and converts it into a *Bug.
type assertFailed struct{ msg string }

// abortSignal is the panic payload used to unwind parked machine goroutines
// when the testing controller tears an iteration down.
type abortSignal struct{}

// crashSignal is the panic payload used to unwind a parked machine goroutine
// when the controller executes a FaultCrash against it. Unlike abortSignal
// it affects one machine, not the iteration: the goroutine reports ykCrashed
// and (if the fault carries Restart) immediately reboots from its creation
// payload.
type crashSignal struct{}
