package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Curve is a time-bucketed growth tracker: it records how a handful of
// cumulative metrics (iterations, distinct schedules, transitions covered,
// ...) grow over wall-clock time, in bounded memory. Samples are taken at
// most once per bucket interval; when the point store fills up, every other
// point is dropped and the interval doubles, so an arbitrarily long
// campaign keeps a bounded, evenly thinned curve.
//
// The intended hot-path use is: call Due (one atomic load and a compare)
// every iteration, and only call Sample — which takes the lock and may
// allocate — when Due reports a bucket boundary has been crossed.
type Curve struct {
	mu       sync.Mutex
	interval time.Duration
	max      int
	points   []CurvePoint
	nextAt   atomic.Int64 // elapsed nanoseconds of the next due sample
}

// CurvePoint is one sample: the cumulative metric values at Elapsed since
// the run started.
type CurvePoint struct {
	Elapsed time.Duration
	Values  []int64
}

// NewCurve returns a curve sampling at most once per interval, retaining at
// most maxPoints points before it starts thinning. Non-positive arguments
// select 5ms and 512.
func NewCurve(interval time.Duration, maxPoints int) *Curve {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	if maxPoints <= 0 {
		maxPoints = 512
	}
	c := &Curve{interval: interval, max: maxPoints}
	c.nextAt.Store(int64(interval))
	return c
}

// Due reports whether the next bucket boundary has been crossed; it is the
// allocation-free fast path meant to be polled every iteration.
func (c *Curve) Due(elapsed time.Duration) bool {
	return int64(elapsed) >= c.nextAt.Load()
}

// Sample records the cumulative values at elapsed if the current bucket is
// still unsampled (concurrent workers race to a boundary; the first one in
// wins and the rest return without recording). Pass force to append
// unconditionally — used for the final point of a run.
func (c *Curve) Sample(elapsed time.Duration, force bool, values ...int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !force && int64(elapsed) < c.nextAt.Load() {
		return
	}
	c.points = append(c.points, CurvePoint{Elapsed: elapsed, Values: values})
	if len(c.points) >= c.max {
		c.thin()
	}
	next := c.nextAt.Load()
	for next <= int64(elapsed) {
		next += int64(c.interval)
	}
	c.nextAt.Store(next)
}

// Restore appends a point recovered from durable storage — prior runs of a
// resumed campaign replay their checkpoints in time order before live
// sampling begins — and arms the next due boundary past it, so the curve
// continues from the restored point instead of restarting at zero.
func (c *Curve) Restore(p CurvePoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.points = append(c.points, p)
	if len(c.points) >= c.max {
		c.thin()
	}
	// Jump (not step) past the restored elapsed: checkpoints can sit hours
	// into a long campaign.
	if next := c.nextAt.Load(); next <= int64(p.Elapsed) {
		iv := int64(c.interval)
		c.nextAt.Store((int64(p.Elapsed)/iv + 1) * iv)
	}
}

// thin halves the stored points (keeping the later of each pair, since the
// metrics are cumulative) and doubles the interval.
func (c *Curve) thin() {
	kept := c.points[:0]
	for i := 1; i < len(c.points); i += 2 {
		kept = append(kept, c.points[i])
	}
	c.points = kept
	c.interval *= 2
}

// Points returns a copy of the recorded curve in time order.
func (c *Curve) Points() []CurvePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CurvePoint, len(c.points))
	copy(out, c.points)
	return out
}
