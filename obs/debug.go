package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP debug endpoint on addr serving:
//
//	/debug/vars      expvar-style JSON produced by vars()
//	/debug/pprof/    the standard runtime profiles
//
// It uses its own ServeMux (nothing leaks onto http.DefaultServeMux) and
// returns the bound listener address — useful when addr requests port 0 —
// plus a shutdown func. The vars func is called per request, so it should
// return a fresh snapshot each time; long campaigns can be inspected live
// without perturbing the measured run.
func ServeDebug(addr string, vars func() any) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(vars())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
