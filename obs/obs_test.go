package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g MaxGauge
	g.Observe(3)
	g.Observe(1)
	g.Observe(7)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Max != 100 {
		t.Fatalf("max = %d, want 100", s.Max)
	}
	wantMean := float64(0+1+1+2+3+4+100+0) / 8
	if math.Abs(s.Mean-wantMean) > 1e-9 {
		t.Fatalf("mean = %g, want %g", s.Mean, wantMean)
	}
	var total int64
	prev := int64(-1)
	for _, b := range s.Buckets {
		if b.Le <= prev {
			t.Fatalf("bucket bounds not increasing: %v", s.Buckets)
		}
		prev = b.Le
		total += b.Count
	}
	if total != 8 {
		t.Fatalf("bucket counts sum to %d, want 8", total)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Le != math.MaxInt64 {
		t.Fatalf("extreme bucket = %+v", s.Buckets)
	}
}

func TestStateEventCoverage(t *testing.T) {
	var c StateEventCoverage
	c.Hit("Node", "Init", "Ping")
	c.Hit("Node", "Init", "Ping")
	c.Hit("Node", "Done", "Pong")
	if got := c.Distinct(); got != 2 {
		t.Fatalf("distinct = %d, want 2", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	if snap[0].State != "Done" || snap[1].State != "Init" {
		t.Fatalf("snapshot not sorted: %+v", snap)
	}
	if snap[1].Count != 2 {
		t.Fatalf("Init/Ping count = %d, want 2", snap[1].Count)
	}
}

func TestStateEventCoverageConcurrent(t *testing.T) {
	var c StateEventCoverage
	var wg sync.WaitGroup
	names := []string{"A", "B", "C", "D"}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Hit("M", names[j%len(names)], "E")
			}
		}(i)
	}
	wg.Wait()
	if got := c.Distinct(); got != int64(len(names)) {
		t.Fatalf("distinct = %d, want %d", got, len(names))
	}
	var total int64
	for _, tc := range c.Snapshot() {
		total += tc.Count
	}
	if total != 8*1000 {
		t.Fatalf("total hits = %d, want 8000", total)
	}
}

func TestCurveSamplingAndThinning(t *testing.T) {
	c := NewCurve(time.Millisecond, 8)
	if c.Due(0) {
		t.Fatal("curve due at t=0")
	}
	for i := 1; i <= 20; i++ {
		el := time.Duration(i) * time.Millisecond
		if c.Due(el) {
			c.Sample(el, false, int64(i))
		}
	}
	pts := c.Points()
	if len(pts) == 0 || len(pts) >= 8 {
		t.Fatalf("points = %d, want thinned below 8 and non-empty", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Elapsed <= pts[i-1].Elapsed {
			t.Fatalf("points not time-ordered: %+v", pts)
		}
	}
	// A forced sample always lands even if the bucket is not due.
	n := len(pts)
	c.Sample(21*time.Millisecond, true, 21)
	if got := len(c.Points()); got != n+1 {
		t.Fatalf("forced sample not recorded: %d -> %d", n, got)
	}
}

func TestCurveSkipsUnduesSamples(t *testing.T) {
	c := NewCurve(10*time.Millisecond, 100)
	c.Sample(time.Millisecond, false, 1)
	if got := len(c.Points()); got != 0 {
		t.Fatalf("undue sample recorded: %d points", got)
	}
}

func TestServeDebug(t *testing.T) {
	addr, shutdown, err := ServeDebug("127.0.0.1:0", func() any {
		return map[string]int{"iterations": 42}
	})
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var got map[string]int
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode: %v (%s)", err, body)
	}
	if got["iterations"] != 42 {
		t.Fatalf("vars = %v", got)
	}
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}
