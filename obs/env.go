package obs

import (
	"runtime"
	"time"
)

// Env captures the execution environment of a measurement run so that
// successive report snapshots are comparable across machines and toolchain
// upgrades.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Timestamp  string `json:"timestamp"`
}

// CaptureEnv snapshots the current environment. The timestamp is UTC
// RFC 3339.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
}
