package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Transition identifies one (machine type, machine state, event) triple —
// the unit of state-transition coverage: a triple is covered once some
// execution actually dispatched that event in that state of that machine
// type.
type Transition struct {
	Machine string `json:"machine"`
	State   string `json:"state"`
	Event   string `json:"event"`
}

// StateEventCoverage is a concurrent set of exercised transitions with a
// hit count per transition. The hot path (Hit) is allocation-free in steady
// state: each new triple is interned exactly once under the write lock, and
// every later hit takes the read lock, one map lookup with a comparable
// struct key (no boxing, no string building), and one atomic add. The zero
// value is ready to use.
type StateEventCoverage struct {
	mu       sync.RWMutex
	index    map[Transition]int
	counts   []*atomic.Int64
	distinct atomic.Int64
}

// Hit records one dispatch of event in (machine, state).
func (c *StateEventCoverage) Hit(machine, state, event string) {
	k := Transition{Machine: machine, State: state, Event: event}
	c.mu.RLock()
	if i, ok := c.index[k]; ok {
		// The add happens under the read lock so the counts slice cannot be
		// swapped out from under it by a concurrent intern.
		c.counts[i].Add(1)
		c.mu.RUnlock()
		return
	}
	c.mu.RUnlock()
	c.intern(k)
}

// intern registers a first-seen transition (the only allocating path).
func (c *StateEventCoverage) intern(k Transition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[k]; ok {
		c.counts[i].Add(1) // another goroutine interned it first
		return
	}
	if c.index == nil {
		c.index = make(map[Transition]int)
	}
	n := new(atomic.Int64)
	n.Store(1)
	c.index[k] = len(c.counts)
	c.counts = append(c.counts, n)
	c.distinct.Add(1)
}

// Distinct returns the number of distinct transitions covered so far. It is
// a single atomic load, cheap enough for per-sample curve points.
func (c *StateEventCoverage) Distinct() int64 { return c.distinct.Load() }

// TransitionCount is one covered transition with its hit count.
type TransitionCount struct {
	Transition
	Count int64 `json:"count"`
}

// Snapshot returns all covered transitions sorted by (machine, state,
// event). It allocates and sorts, so call it off the measured path.
func (c *StateEventCoverage) Snapshot() []TransitionCount {
	c.mu.RLock()
	out := make([]TransitionCount, 0, len(c.index))
	for k, i := range c.index {
		out = append(out, TransitionCount{Transition: k, Count: c.counts[i].Load()})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Machine != y.Machine {
			return x.Machine < y.Machine
		}
		if x.State != y.State {
			return x.State < y.State
		}
		return x.Event < y.Event
	})
	return out
}
