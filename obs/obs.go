// Package obs provides the allocation-conscious observability primitives
// the exploration engine, the production runtime, and the .psl interpreter
// record into: atomic counters and high-water gauges, a bounded power-of-two
// histogram, an interned (machine state × event) coverage set, and a
// time-bucketed growth curve for coverage-over-wall-clock reporting.
//
// Everything in this package is designed for hot paths that must not
// allocate in steady state: counters, gauges and histograms are fixed-size
// atomics; the coverage set interns each new triple once (the only
// allocating operation) and then serves hits with a read-lock, a map lookup
// and one atomic add; curves allocate only when a sample is actually taken,
// which happens at most once per bucket interval. Snapshotting — the
// allocating, sorting, JSON-friendly view — is always a separate call meant
// to run off the measured path (between iterations, at progress ticks, or
// from a debug endpoint).
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// MaxGauge tracks the high-water mark of an observed quantity (e.g. mailbox
// depth). The zero value is ready to use.
type MaxGauge struct{ v atomic.Int64 }

// Observe raises the gauge to x if x exceeds the current maximum.
func (g *MaxGauge) Observe(x int64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Load returns the high-water mark.
func (g *MaxGauge) Load() int64 { return g.v.Load() }

// histogramBuckets is the fixed bucket count of Histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. exponentially growing ranges
// [2^(i-1), 2^i). 64 buckets cover the whole int64 range, so recording
// never needs bounds checks beyond the bit length.
const histogramBuckets = 64

// Histogram is a bounded, fixed-size histogram with power-of-two buckets,
// safe for concurrent recording. The zero value is ready to use; Observe
// never allocates.
type Histogram struct {
	buckets [histogramBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     MaxGauge
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.Observe(v)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramBucket is one non-empty bucket of a histogram snapshot: Count
// observations were at most Le (and above the previous bucket's Le).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON-friendly view of a Histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Mean    float64           `json:"mean"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns the histogram's current state with empty buckets elided.
// Concurrent Observe calls may be partially reflected; snapshots are meant
// for reporting, not exact accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Max: h.max.Load()}
	if s.Count > 0 {
		s.Mean = float64(h.sum.Load()) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(math.MaxInt64) // bits.Len64(v) == i means v <= 2^i - 1
		if i < 63 {
			le = int64(1)<<i - 1
		}
		s.Buckets = append(s.Buckets, HistogramBucket{Le: le, Count: n})
	}
	return s
}
