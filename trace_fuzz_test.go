package psharp

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeTrace hammers the "psharp-trace 2" text decoder with arbitrary
// input. The decoder is fed files from disk (psharp-test -replay), so it
// must reject malformed headers, truncated decision lines and corrupted
// fault records with an error — never a panic or an out-of-range index —
// and anything it does accept must survive an encode/decode round trip.
func FuzzDecodeTrace(f *testing.F) {
	// A well-formed trace covering every record shape.
	var good bytes.Buffer
	(&Trace{Decisions: []Decision{
		{Kind: DecisionSchedule, Machine: MachineID{Type: "Node", Seq: 3}},
		{Kind: DecisionBool, Bool: true},
		{Kind: DecisionBool, Bool: false},
		{Kind: DecisionInt, Int: 41},
		{Kind: DecisionFault, Fault: FaultAction{Kind: FaultNone}},
		{Kind: DecisionFault, Fault: FaultAction{Kind: FaultDrop}},
		{Kind: DecisionFault, Fault: FaultAction{Kind: FaultReorder}},
		{Kind: DecisionFault, Fault: FaultAction{
			Kind: FaultCrash, Machine: MachineID{Type: "Node", Seq: 2},
			Restart: true, PreserveMailbox: true,
		}},
	}}).Encode(&good)
	f.Add(good.String())

	// Malformed seeds steering the fuzzer at each rejection path.
	f.Add("")                                          // empty: missing header
	f.Add("s Node 3\n")                                // headerless version-1 trace
	f.Add("psharp-trace\n")                            // header missing its version
	f.Add("psharp-trace one\n")                        // non-numeric version
	f.Add("psharp-trace 1\ns Node 3\n")                // pre-fault version
	f.Add("psharp-trace 99\n")                         // future version
	f.Add("psharp-trace 2\ns Node\n")                  // truncated schedule record
	f.Add("psharp-trace 2\ns Node -1\n")               // negative seq
	f.Add("psharp-trace 2\nb 2\n")                     // boolean out of range
	f.Add("psharp-trace 2\ni\n")                       // integer missing value
	f.Add("psharp-trace 2\ni 999999999999999999999\n") // integer overflow
	f.Add("psharp-trace 2\nf\n")                       // fault missing kind
	f.Add("psharp-trace 2\nf crash Node 2\n")          // truncated crash record
	f.Add("psharp-trace 2\nf crash Node 2 5 0\n")      // non-bit restart flag
	f.Add("psharp-trace 2\nf crash Node x 1 0\n")      // non-numeric seq
	f.Add("psharp-trace 2\nf boom\n")                  // unknown fault kind
	f.Add("psharp-trace 2\nq what\n")                  // unknown record
	f.Add("psharp-trace 2\ndrop none\n")               // kind in the wrong column
	f.Add("psharp-trace 2\n# comment only\n")          // valid: empty trace

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := DecodeTrace(strings.NewReader(input))
		if err != nil {
			if tr != nil {
				t.Fatal("error with non-nil trace")
			}
			return
		}
		// Accepted input must round-trip: encode what we decoded, decode it
		// again, and land on identical decisions.
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := DecodeTrace(&buf)
		if err != nil {
			t.Fatalf("decode(encode(decode(x))) failed: %v\ninput: %q", err, input)
		}
		if len(tr.Decisions) != len(tr2.Decisions) {
			t.Fatalf("round trip changed decision count: %d vs %d", len(tr.Decisions), len(tr2.Decisions))
		}
		for i := range tr.Decisions {
			if tr.Decisions[i] != tr2.Decisions[i] {
				t.Fatalf("decision %d changed in round trip: %+v vs %+v", i, tr.Decisions[i], tr2.Decisions[i])
			}
		}
	})
}
