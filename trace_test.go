package psharp_test

// Satellite regression tests for the trace text format: machine-type and
// monitor names containing whitespace would corrupt the whitespace-separated
// "s <type> <seq>" schedule records, so they are rejected at registration,
// and well-formed traces round-trip exactly.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// TestRegisterRejectsWhitespaceNames locks the trace-format guard: names
// with any whitespace are rejected by Register and RegisterMonitor before
// they can reach a trace.
func TestRegisterRejectsWhitespaceNames(t *testing.T) {
	factory := func() psharp.Machine {
		return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
			sc.Start("S")
		})
	}
	for _, name := range []string{"two words", "tab\tsep", "new\nline", "cr\rname", " leading", "trailing "} {
		r := psharp.NewRuntime()
		if err := r.Register(name, factory); err == nil {
			t.Errorf("Register(%q) accepted a whitespace name", name)
		} else if !strings.Contains(err.Error(), "whitespace") {
			t.Errorf("Register(%q) error %q does not explain the whitespace rule", name, err)
		}
		if err := r.RegisterMonitor(name, factory); err == nil {
			t.Errorf("RegisterMonitor(%q) accepted a whitespace name", name)
		}
	}
}

// TestTraceEncodeDecodeRoundTrip checks that a real exploration trace
// encodes and decodes back to the identical decision sequence, and that the
// decoded trace still replays the same schedule.
func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	setup := ballotSetup()
	var trace *psharp.Trace
	var bug *psharp.Bug
	for seed := uint64(1); seed < 64; seed++ {
		res := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 500})
		if res.Bug != nil {
			trace, bug = res.Trace.Clone(), res.Bug
			break
		}
	}
	if trace == nil {
		t.Fatal("no buggy schedule found to round-trip")
	}

	var buf bytes.Buffer
	if err := trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := psharp.DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Decisions, decoded.Decisions) {
		t.Fatalf("decisions diverged after round-trip:\nbefore: %v\nafter:  %v", trace.Decisions, decoded.Decisions)
	}

	res := sct.ReplayTrace(setup, decoded, psharp.TestConfig{MaxSteps: 500})
	if res.Bug == nil || res.Bug.Message != bug.Message {
		t.Fatalf("decoded trace did not replay the bug: got %v, want %v", res.Bug, bug)
	}
}

// TestTraceRejectsHeaderless locks the version gate: a version-1 trace
// (or any non-trace input) has no "psharp-trace" header and must fail
// loudly instead of silently replaying the wrong decisions.
func TestTraceRejectsHeaderless(t *testing.T) {
	v1 := "s Worker 1\nb 1\ns Worker 2\n"
	if _, err := psharp.DecodeTrace(strings.NewReader(v1)); err == nil {
		t.Fatal("DecodeTrace accepted a headerless (pre-fault, version 1) trace")
	} else if !strings.Contains(err.Error(), "header") {
		t.Fatalf("error %q does not mention the missing header", err)
	}
	if _, err := psharp.DecodeTrace(strings.NewReader("")); err == nil {
		t.Fatal("DecodeTrace accepted empty input")
	}
}

// TestTraceRejectsUnknownVersion checks that traces from a future format
// version are refused rather than misparsed.
func TestTraceRejectsUnknownVersion(t *testing.T) {
	future := "psharp-trace 3\ns Worker 1\n"
	if _, err := psharp.DecodeTrace(strings.NewReader(future)); err == nil {
		t.Fatal("DecodeTrace accepted an unsupported future version")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("error %q does not mention the version", err)
	}
}

// TestTraceFaultRecordsRoundTrip round-trips every fault record shape —
// declines, message faults, and crashes with each restart/mailbox
// combination — through the version-2 text encoding.
func TestTraceFaultRecordsRoundTrip(t *testing.T) {
	trace := &psharp.Trace{Decisions: []psharp.Decision{
		{Kind: psharp.DecisionSchedule, Machine: psharp.MachineID{Type: "Coord", Seq: 1}},
		{Kind: psharp.DecisionFault}, // a recorded decline (FaultNone)
		{Kind: psharp.DecisionFault, Fault: psharp.FaultAction{Kind: psharp.FaultDrop}},
		{Kind: psharp.DecisionFault, Fault: psharp.FaultAction{Kind: psharp.FaultDuplicate}},
		{Kind: psharp.DecisionFault, Fault: psharp.FaultAction{Kind: psharp.FaultReorder}},
		{Kind: psharp.DecisionBool, Bool: true},
		{Kind: psharp.DecisionFault, Fault: psharp.FaultAction{
			Kind: psharp.FaultCrash, Machine: psharp.MachineID{Type: "Coord", Seq: 1}}},
		{Kind: psharp.DecisionFault, Fault: psharp.FaultAction{
			Kind: psharp.FaultCrash, Machine: psharp.MachineID{Type: "Worker", Seq: 2}, Restart: true}},
		{Kind: psharp.DecisionFault, Fault: psharp.FaultAction{
			Kind: psharp.FaultCrash, Machine: psharp.MachineID{Type: "Worker", Seq: 3}, Restart: true, PreserveMailbox: true}},
		{Kind: psharp.DecisionInt, Int: 4},
	}}
	if !trace.HasFaultDecisions() {
		t.Fatal("HasFaultDecisions is false on a trace full of fault records")
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "psharp-trace 2\n") {
		t.Fatalf("encoded trace does not begin with the version header:\n%s", buf.String())
	}
	decoded, err := psharp.DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Decisions, decoded.Decisions) {
		t.Fatalf("fault records diverged after round-trip:\nbefore: %v\nafter:  %v", trace.Decisions, decoded.Decisions)
	}
}
