package psharp_test

// Satellite regression tests for the trace text format: machine-type and
// monitor names containing whitespace would corrupt the whitespace-separated
// "s <type> <seq>" schedule records, so they are rejected at registration,
// and well-formed traces round-trip exactly.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// TestRegisterRejectsWhitespaceNames locks the trace-format guard: names
// with any whitespace are rejected by Register and RegisterMonitor before
// they can reach a trace.
func TestRegisterRejectsWhitespaceNames(t *testing.T) {
	factory := func() psharp.Machine {
		return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
			sc.Start("S")
		})
	}
	for _, name := range []string{"two words", "tab\tsep", "new\nline", "cr\rname", " leading", "trailing "} {
		r := psharp.NewRuntime()
		if err := r.Register(name, factory); err == nil {
			t.Errorf("Register(%q) accepted a whitespace name", name)
		} else if !strings.Contains(err.Error(), "whitespace") {
			t.Errorf("Register(%q) error %q does not explain the whitespace rule", name, err)
		}
		if err := r.RegisterMonitor(name, factory); err == nil {
			t.Errorf("RegisterMonitor(%q) accepted a whitespace name", name)
		}
	}
}

// TestTraceEncodeDecodeRoundTrip checks that a real exploration trace
// encodes and decodes back to the identical decision sequence, and that the
// decoded trace still replays the same schedule.
func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	setup := ballotSetup()
	var trace *psharp.Trace
	var bug *psharp.Bug
	for seed := uint64(1); seed < 64; seed++ {
		res := psharp.RunTest(setup, psharp.TestConfig{Strategy: mustPrepared(sct.NewRandom(seed)), MaxSteps: 500})
		if res.Bug != nil {
			trace, bug = res.Trace.Clone(), res.Bug
			break
		}
	}
	if trace == nil {
		t.Fatal("no buggy schedule found to round-trip")
	}

	var buf bytes.Buffer
	if err := trace.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := psharp.DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace.Decisions, decoded.Decisions) {
		t.Fatalf("decisions diverged after round-trip:\nbefore: %v\nafter:  %v", trace.Decisions, decoded.Decisions)
	}

	res := sct.ReplayTrace(setup, decoded, psharp.TestConfig{MaxSteps: 500})
	if res.Bug == nil || res.Bug.Message != bug.Message {
		t.Fatalf("decoded trace did not replay the bug: got %v, want %v", res.Bug, bug)
	}
}
