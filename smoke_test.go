package psharp_test

import (
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// Ping-pong smoke machines: client sends N pings, server pongs back.

type evPing struct {
	psharp.EventBase
	From psharp.MachineID
}

type evPong struct{ psharp.EventBase }

type evConfig struct {
	psharp.EventBase
	Server psharp.MachineID
	Rounds int
}

// The smoke machines use the static declaration form, exercising the
// per-type schema cache on both execution modes.

type pongServer struct{ psharp.StaticBase }

func (*pongServer) ConfigureType(sc *psharp.Schema) {
	sc.Start("Serving").
		OnEventDo(&evPing{}, func(ctx *psharp.Context, ev psharp.Event) {
			ctx.Send(ev.(*evPing).From, &evPong{})
		})
}

type pingClient struct {
	psharp.StaticBase
	server psharp.MachineID
	left   int
	done   *int
}

func newPingClient(done *int) *pingClient { return &pingClient{done: done} }

func (*pingClient) ConfigureType(sc *psharp.Schema) {
	sc.Start("Init").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*pingClient)
			cfg := ev.(*evConfig)
			c.server = cfg.Server
			c.left = cfg.Rounds
			ctx.Send(c.server, &evPing{From: ctx.ID()})
		}).
		OnEventDoM(&evPong{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*pingClient)
			c.left--
			if c.left > 0 {
				ctx.Send(c.server, &evPing{From: ctx.ID()})
				return
			}
			*c.done++
			ctx.Halt()
		})
}

func pingPongSetup(rounds int, done *int) func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Server", func() psharp.Machine { return &pongServer{} })
		r.MustRegister("Client", func() psharp.Machine { return newPingClient(done) })
		server := r.MustCreate("Server", nil)
		r.MustCreate("Client", &evConfig{Server: server, Rounds: rounds})
	}
}

func TestSmokeProductionPingPong(t *testing.T) {
	done := 0
	r := psharp.NewRuntime()
	pingPongSetup(3, &done)(r)
	if err := r.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if done != 1 {
		t.Fatalf("client did not finish: done=%d", done)
	}
	r.Stop()
}

func TestSmokeSerializedPingPong(t *testing.T) {
	done := 0
	res := psharp.RunTest(pingPongSetup(3, &done), psharp.TestConfig{
		Strategy: sct.NewRandom(1),
		MaxSteps: 1000,
	})
	if res.Bug != nil {
		t.Fatalf("unexpected bug: %v", res.Bug)
	}
	if res.BoundReached {
		t.Fatal("bound reached unexpectedly")
	}
	if done != 1 {
		t.Fatalf("client did not finish: done=%d", done)
	}
	if res.SchedulingPoints == 0 {
		t.Fatal("expected scheduling points")
	}
}

func TestSmokeDFSExhaustsPingPong(t *testing.T) {
	done := 0
	rep := sct.Run(pingPongSetup(2, &done), sct.Options{
		Strategy:   sct.NewDFS(),
		Iterations: 100000,
		MaxSteps:   1000,
	})
	if !rep.Exhausted {
		t.Fatalf("DFS did not exhaust: %s", rep.String())
	}
	if rep.BugFound() {
		t.Fatalf("unexpected bug: %v", rep.FirstBug)
	}
	t.Logf("ping-pong schedule tree: %d schedules", rep.Iterations)
}
