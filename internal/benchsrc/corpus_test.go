package benchsrc

import (
	"errors"
	"io/fs"
	"strings"
	"testing"

	"github.com/psharp-go/psharp/interp"
)

// TestCorpusIntegrity checks the structural invariants of the embedded
// corpus: every roster entry parses and checks, a racy variant exists
// exactly when the roster says so, and the Table 1 statistics columns are
// all non-zero.
func TestCorpusIntegrity(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if _, err := Source(b.Name, false); err != nil {
				t.Fatalf("non-racy variant: %v", err)
			}
			_, err := Source(b.Name, true)
			if b.HasRacy && err != nil {
				t.Errorf("racy variant must exist: %v", err)
			}
			if !b.HasRacy {
				if err == nil {
					t.Error("unexpected racy variant for a benchmark with HasRacy=false")
				} else if !errors.Is(err, fs.ErrNotExist) {
					t.Errorf("missing racy variant should surface fs.ErrNotExist, got %v", err)
				}
			}
			s, err := StatsOf(b.Name)
			if err != nil {
				t.Fatalf("stats: %v", err)
			}
			if s.LoC == 0 || s.Machines == 0 || s.StateTransitions+s.ActionBindings == 0 {
				t.Errorf("degenerate stats %+v", s)
			}
		})
	}
}

// TestCorpusRoundTripsThroughInterp executes every benchmark under the
// operational semantics: the first machine of each program is its scenario
// driver. Non-racy variants must quiesce with no runtime error and no
// dynamic race on every schedule tried; racy variants must also quiesce
// cleanly but exhibit the data race the static analysis flags, which
// cross-validates the ownership analysis against the happens-before
// detector.
func TestCorpusRoundTripsThroughInterp(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, racy := range []bool{false, true} {
				if racy && !b.HasRacy {
					continue
				}
				prog, err := Source(b.Name, racy)
				if err != nil {
					t.Fatalf("racy=%v: %v", racy, err)
				}
				main := prog.Machines[0].Name
				raceSeen := false
				for seed := uint64(1); seed <= 10; seed++ {
					out := interp.Run(prog, main, interp.Options{Seed: seed, RaceDetect: true})
					if out.Err != nil {
						t.Fatalf("racy=%v seed=%d: %v", racy, seed, out.Err)
					}
					if !out.Quiescent {
						t.Fatalf("racy=%v seed=%d: did not quiesce after %d steps", racy, seed, out.Steps)
					}
					if len(out.Races) > 0 {
						raceSeen = true
					}
				}
				if racy && !raceSeen {
					t.Error("racy variant: the ownership violation never raced dynamically")
				}
				if !racy && raceSeen {
					t.Error("non-racy variant: unexpected dynamic race")
				}
			}
		})
	}
}

// TestSourceErrorsNameBenchmark checks that corpus load failures are
// attributable: the error must name the benchmark (and variant), not just
// the lowercased file path, so a -check failure in CI reads at a glance.
func TestSourceErrorsNameBenchmark(t *testing.T) {
	_, err := Source("AsyncSystem", true) // no racy variant exists
	if err == nil {
		t.Fatal("want an error for the missing racy variant")
	}
	if !strings.Contains(err.Error(), "AsyncSystem") {
		t.Errorf("error %q does not name the benchmark", err)
	}
	if !strings.Contains(err.Error(), "racy") {
		t.Errorf("error %q does not name the variant", err)
	}
	if _, err := Source("NoSuchBenchmark", false); err == nil || !strings.Contains(err.Error(), "NoSuchBenchmark") {
		t.Errorf("error %v does not name the unknown benchmark", err)
	}
}
