package benchsrc

import (
	"testing"

	"github.com/psharp-go/psharp/analysis"
)

// TestTable1FalsePositiveCounts checks every non-racy benchmark against the
// paper's Table 1: the number of reported violations (all false positives,
// since the programs are race-free by construction) without xSA and with
// xSA, and the resulting Verified? column.
func TestTable1FalsePositiveCounts(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Source(b.Name, false)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res := analysis.Analyze(prog, analysis.Options{XSA: true})
			if got := len(res.BaseViolations); got != b.FPsNoXSA {
				for _, v := range res.BaseViolations {
					t.Logf("base violation: %v", v)
				}
				t.Errorf("FPs without xSA = %d, want %d", got, b.FPsNoXSA)
			}
			if got := len(res.Violations); got != b.FPsXSA {
				for _, v := range res.Violations {
					t.Logf("xSA violation: %v", v)
				}
				t.Errorf("FPs with xSA = %d, want %d", got, b.FPsXSA)
			}
			if res.Verified() != b.Verified {
				t.Errorf("Verified = %v, want %v", res.Verified(), b.Verified)
			}
		})
	}
}

// TestTable1RacyVariantsFlagged checks the paper's "Found all data races?"
// column: the analyzer, being sound, must report violations on every racy
// variant — with and without xSA — and the real race must survive the
// read-only filter too (the racy writers disqualify read-only suppression).
func TestTable1RacyVariantsFlagged(t *testing.T) {
	for _, b := range All() {
		if !b.HasRacy {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Source(b.Name, true)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res := analysis.Analyze(prog, analysis.Options{XSA: true})
			if len(res.BaseViolations) == 0 {
				t.Error("racy variant not flagged without xSA")
			}
			if len(res.Violations) == 0 {
				t.Error("racy variant not flagged with xSA")
			}
			ro := analysis.Analyze(prog, analysis.Options{XSA: true, ReadOnly: true})
			if len(ro.Violations) == 0 {
				t.Error("the real race must survive the read-only extension")
			}
		})
	}
}

// TestTable1ReadOnlyExtension checks the Section 8 prediction: the residual
// MultiPaxos and AsyncSystem false positives disappear under the read-only
// analysis, turning every non-racy benchmark verifiable.
func TestTable1ReadOnlyExtension(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, err := Source(b.Name, false)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res := analysis.Analyze(prog, analysis.Options{XSA: true, ReadOnly: true})
			if !res.Verified() {
				for _, v := range res.Violations {
					t.Logf("violation: %v", v)
				}
				t.Errorf("want verified with xSA + read-only, got %d violations", len(res.Violations))
			}
		})
	}
}

// TestStats sanity-checks the Table 1 program statistics.
func TestStats(t *testing.T) {
	for _, b := range All() {
		s, err := StatsOf(b.Name)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if s.Machines < 2 {
			t.Errorf("%s: %d machines, want >= 2", b.Name, s.Machines)
		}
		if s.LoC < 40 {
			t.Errorf("%s: %d LoC, suspiciously small", b.Name, s.LoC)
		}
		if s.StateTransitions+s.ActionBindings == 0 {
			t.Errorf("%s: no transitions or bindings", b.Name)
		}
	}
}
