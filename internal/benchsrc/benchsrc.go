// Package benchsrc holds the core-language sources of the Table 1 static
// analysis benchmarks: the AsyncSystemSim case study, the eight PSharpBench
// protocols (each in a non-racy and a racy variant), and the four SOTER
// ports. The non-racy variants carry exactly the false-positive patterns
// the paper reports (Section 7.2.1):
//
//   - pattern (a), "staged send": an event payload is constructed in one
//     state, stored in a machine field, sent from a later state, and the
//     field is reset afterwards. The per-method analysis flags the send
//     (one FP each); xSA discharges it.
//   - pattern (b), "shared read-only": a field is sent to one machine in
//     one state and again to another machine in a later state without a
//     reset, and every receiver only reads it. The per-method analysis
//     flags both sends (two FPs each); xSA keeps one; the read-only
//     extension (Section 8) discharges the rest.
//
// The racy variants break ownership for real: the sender keeps writing the
// payload after sending it.
//
// Layout: src/<name>.psl holds the non-racy variant of every benchmark and
// src/<name>_racy.psl the racy variant of the eight PSharpBench protocols
// (names lowercased). Each program's first declared machine is its scenario
// driver: interp.Run(prog, prog.Machines[0].Name, ...) executes the
// benchmark to quiescence, so the corpus doubles as runnable scenarios.
// Reproduce the paper's table with `psharp-bench -table 1`, or gate on it
// with `psharp-bench -table 1 -check` (non-zero exit on any drift from
// All()'s counts). See README.md in this directory for the full corpus
// guide.
package benchsrc

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"github.com/psharp-go/psharp/lang"
)

//go:embed src/*.psl
var sources embed.FS

// Benchmark describes one Table 1 entry.
type Benchmark struct {
	// Name as in the paper's Table 1.
	Name string
	// Suite is "AsyncSystem", "PSharpBench" or "SOTER".
	Suite string
	// HasRacy reports whether a racy variant exists (PSharpBench only).
	HasRacy bool
	// FPsNoXSA and FPsXSA are the expected false-positive counts of the
	// non-racy variant, mirroring the paper's columns.
	FPsNoXSA, FPsXSA int
	// Verified mirrors the paper's "Verified?" column (with xSA).
	Verified bool
}

// All returns the Table 1 roster in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		{Name: "AsyncSystem", Suite: "AsyncSystem", FPsNoXSA: 6, FPsXSA: 2, Verified: false},
		{Name: "BoundedAsync", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 1, FPsXSA: 0, Verified: true},
		{Name: "German", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 0, FPsXSA: 0, Verified: true},
		{Name: "BasicPaxos", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 2, FPsXSA: 0, Verified: true},
		{Name: "TwoPhaseCommit", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 1, FPsXSA: 0, Verified: true},
		{Name: "Chord", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 0, FPsXSA: 0, Verified: true},
		{Name: "MultiPaxos", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 10, FPsXSA: 5, Verified: false},
		{Name: "Raft", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 0, FPsXSA: 0, Verified: true},
		{Name: "ChainReplication", Suite: "PSharpBench", HasRacy: true, FPsNoXSA: 4, FPsXSA: 0, Verified: true},
		{Name: "Leader", Suite: "SOTER", FPsNoXSA: 0, FPsXSA: 0, Verified: true},
		{Name: "Pi", Suite: "SOTER", FPsNoXSA: 0, FPsXSA: 0, Verified: true},
		{Name: "Chameneos", Suite: "SOTER", FPsNoXSA: 0, FPsXSA: 0, Verified: true},
		{Name: "Swordfish", Suite: "SOTER", FPsNoXSA: 0, FPsXSA: 0, Verified: true},
	}
}

// fileOf maps a benchmark variant to its embedded path.
func fileOf(name string, racy bool) string {
	file := "src/" + strings.ToLower(name)
	if racy {
		file += "_racy"
	}
	return file + ".psl"
}

// describe names a benchmark variant for error messages, so corpus failures
// (and psharp-bench -check output) are attributable at a glance.
func describe(name string, racy bool) string {
	if racy {
		return name + " (racy variant)"
	}
	return name
}

// Source returns the parsed, checked program for a benchmark variant.
func Source(name string, racy bool) (*lang.Program, error) {
	file := fileOf(name, racy)
	data, err := sources.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("benchsrc: benchmark %s: %w", describe(name, racy), err)
	}
	prog, err := lang.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("benchsrc: benchmark %s: %s: %w", describe(name, racy), file, err)
	}
	if err := lang.Check(prog); err != nil {
		return nil, fmt.Errorf("benchsrc: benchmark %s: %s: %w", describe(name, racy), file, err)
	}
	return prog, nil
}

// RawSource returns the source text (for LoC statistics and tooling).
func RawSource(name string, racy bool) (string, error) {
	data, err := sources.ReadFile(fileOf(name, racy))
	if err != nil {
		return "", fmt.Errorf("benchsrc: benchmark %s: %w", describe(name, racy), err)
	}
	return string(data), nil
}

// Stats summarizes a program for the Table 1 statistics columns.
type Stats struct {
	LoC, Machines, StateTransitions, ActionBindings int
}

// StatsOf computes program statistics.
func StatsOf(name string) (Stats, error) {
	raw, err := RawSource(name, false)
	if err != nil {
		return Stats{}, err
	}
	prog, err := Source(name, false)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	for _, line := range strings.Split(raw, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed != "" && !strings.HasPrefix(trimmed, "//") {
			s.LoC++
		}
	}
	s.Machines = len(prog.Machines)
	for _, md := range prog.Machines {
		for _, st := range md.States {
			s.StateTransitions += len(st.OnGoto)
			s.ActionBindings += len(st.OnDo)
		}
	}
	return s, nil
}

// Names returns all benchmark names sorted as in Table 1.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}

// ByName finds a benchmark entry.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// SortedNames returns names alphabetically (tooling helper).
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}
