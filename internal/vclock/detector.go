package vclock

import "fmt"

// AccessKind distinguishes reads from writes.
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Race describes one detected data race: two causally unordered accesses to
// the same location with at least one write.
type Race struct {
	Location string
	First    AccessKind
	FirstBy  int
	Second   AccessKind
	SecondBy int
}

func (r Race) String() string {
	return fmt.Sprintf("race on %s: %s by actor %d unordered with %s by actor %d",
		r.Location, r.First, r.FirstBy, r.Second, r.SecondBy)
}

// access remembers one prior access for the epoch-style shadow state.
type access struct {
	clock VC
	actor int
}

type shadow struct {
	lastWrite *access
	// reads since the last write; one entry per actor suffices because a
	// newer read by the same actor dominates its older reads.
	reads map[int]*access
}

// Detector is a happens-before data-race detector. It keeps one vector clock
// per actor and shadow state per location. All methods must be called from a
// serialized context (the paper's testing runtime runs one machine at a
// time, so this holds by construction).
type Detector struct {
	clocks map[int]VC
	memory map[string]*shadow
	races  []Race
	// MaxRaces bounds reporting; 0 means unbounded.
	MaxRaces int
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{
		clocks: make(map[int]VC),
		memory: make(map[string]*shadow),
	}
}

func (d *Detector) clock(actor int) VC {
	c, ok := d.clocks[actor]
	if !ok {
		c = New()
		c.Tick(actor)
		d.clocks[actor] = c
	}
	return c
}

// Fork initializes child's clock to inherit parent's history (machine
// creation establishes happens-before from creator to created machine).
func (d *Detector) Fork(parent, child int) {
	pc := d.clock(parent)
	cc := d.clock(child)
	cc.Join(pc)
	cc.Tick(child)
	pc.Tick(parent)
}

// Send returns a snapshot of the sender's clock to attach to a message, and
// advances the sender. The snapshot must later be passed to Receive.
func (d *Detector) Send(sender int) VC {
	c := d.clock(sender)
	snap := c.Copy()
	c.Tick(sender)
	return snap
}

// Receive joins the message clock into the receiver (the happens-before edge
// from send to dequeue) and advances the receiver.
func (d *Detector) Receive(receiver int, msg VC) {
	c := d.clock(receiver)
	if msg != nil {
		c.Join(msg)
	}
	c.Tick(receiver)
}

// Access records a read or write of location by actor and reports any race
// with prior unordered conflicting accesses.
func (d *Detector) Access(actor int, location string, kind AccessKind) {
	c := d.clock(actor)
	s, ok := d.memory[location]
	if !ok {
		s = &shadow{reads: make(map[int]*access)}
		d.memory[location] = s
	}
	if s.lastWrite != nil && s.lastWrite.actor != actor && s.lastWrite.clock.Concurrent(c) {
		d.report(Race{Location: location, First: Write, FirstBy: s.lastWrite.actor, Second: kind, SecondBy: actor})
	}
	if kind == Write {
		for _, r := range s.reads {
			if r.actor != actor && r.clock.Concurrent(c) {
				d.report(Race{Location: location, First: Read, FirstBy: r.actor, Second: Write, SecondBy: actor})
			}
		}
		s.lastWrite = &access{clock: c.Copy(), actor: actor}
		s.reads = make(map[int]*access)
	} else {
		s.reads[actor] = &access{clock: c.Copy(), actor: actor}
	}
}

func (d *Detector) report(r Race) {
	if d.MaxRaces > 0 && len(d.races) >= d.MaxRaces {
		return
	}
	d.races = append(d.races, r)
}

// Races returns all races reported so far.
func (d *Detector) Races() []Race { return d.races }

// Reset clears all state for a new test iteration.
func (d *Detector) Reset() {
	d.clocks = make(map[int]VC)
	d.memory = make(map[string]*shadow)
	d.races = nil
}
