// Package vclock implements vector clocks and a happens-before data-race
// detector over instrumented accesses.
//
// The detector reproduces the role of the CHESS race detector in the paper's
// Table 2 (RD-on vs RD-off): sends establish happens-before edges from the
// sender's clock to the receiver at dequeue time, and two accesses to the
// same location race when they are causally unordered and at least one is a
// write. It is also used by the interp package to dynamically confirm the
// races that the static analysis reports on the racy benchmark variants.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// VC is a vector clock: a map from actor index to logical time. The zero
// value is an empty clock ready to use.
type VC map[int]uint64

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Copy returns an independent copy of the clock.
func (c VC) Copy() VC {
	out := make(VC, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Tick increments the component of actor i and returns the clock.
func (c VC) Tick(i int) VC {
	c[i]++
	return c
}

// Get returns actor i's component (zero if absent).
func (c VC) Get(i int) uint64 { return c[i] }

// Join merges other into c component-wise (least upper bound).
func (c VC) Join(other VC) VC {
	for k, v := range other {
		if v > c[k] {
			c[k] = v
		}
	}
	return c
}

// LessEq reports whether c happens-before-or-equals other, i.e. every
// component of c is <= the corresponding component of other.
func (c VC) LessEq(other VC) bool {
	for k, v := range c {
		if v > other[k] {
			return false
		}
	}
	return true
}

// Concurrent reports whether the two clocks are causally unordered.
func (c VC) Concurrent(other VC) bool {
	return !c.LessEq(other) && !other.LessEq(c)
}

// String renders the clock deterministically, e.g. "[0:3 2:1]".
func (c VC) String() string {
	keys := make([]int, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	b.WriteByte('[')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, c[k])
	}
	b.WriteByte(']')
	return b.String()
}
