package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genVC builds a small random clock from raw values.
func genVC(vals []uint8) VC {
	c := New()
	for i, v := range vals {
		if v > 0 {
			c[i%5] = uint64(v)
		}
	}
	return c
}

// TestJoinIsLUB checks the lattice property a <= a⊔b and b <= a⊔b, via
// property-based testing.
func TestJoinIsLUB(t *testing.T) {
	prop := func(a, b []uint8) bool {
		x, y := genVC(a), genVC(b)
		j := x.Copy().Join(y)
		return x.LessEq(j) && y.LessEq(j)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestJoinIdempotentCommutative checks ⊔ algebra.
func TestJoinIdempotentCommutative(t *testing.T) {
	prop := func(a, b []uint8) bool {
		x, y := genVC(a), genVC(b)
		ab := x.Copy().Join(y)
		ba := y.Copy().Join(x)
		if ab.String() != ba.String() {
			return false
		}
		return ab.Copy().Join(ab).String() == ab.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIsSymmetricAndIrreflexive checks ordering relations.
func TestConcurrentIsSymmetricAndIrreflexive(t *testing.T) {
	prop := func(a, b []uint8) bool {
		x, y := genVC(a), genVC(b)
		if x.Concurrent(x) {
			return false
		}
		return x.Concurrent(y) == y.Concurrent(x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestTickAdvances checks that a tick strictly advances the clock.
func TestTickAdvances(t *testing.T) {
	c := New()
	before := c.Copy()
	c.Tick(3)
	if !before.LessEq(c) || c.LessEq(before) {
		t.Fatalf("tick must strictly advance: %v -> %v", before, c)
	}
}

// TestDetectorFindsUnorderedConflict: two actors write the same location
// with no message between them.
func TestDetectorFindsUnorderedConflict(t *testing.T) {
	d := NewDetector()
	d.Fork(0, 1)
	d.Fork(0, 2)
	d.Access(1, "obj.f", Write)
	d.Access(2, "obj.f", Write)
	if len(d.Races()) == 0 {
		t.Fatal("unordered write-write must race")
	}
}

// TestDetectorRespectsHappensBefore: the same conflict with a message in
// between is ordered.
func TestDetectorRespectsHappensBefore(t *testing.T) {
	d := NewDetector()
	d.Fork(0, 1)
	d.Fork(0, 2)
	d.Access(1, "obj.f", Write)
	msg := d.Send(1)
	d.Receive(2, msg)
	d.Access(2, "obj.f", Write)
	if races := d.Races(); len(races) != 0 {
		t.Fatalf("ordered accesses must not race: %v", races)
	}
}

// TestDetectorReadsDoNotRace: concurrent reads are fine; a later unordered
// write against one of them races.
func TestDetectorReadsDoNotRace(t *testing.T) {
	d := NewDetector()
	d.Fork(0, 1)
	d.Fork(0, 2)
	d.Fork(0, 3)
	d.Access(1, "obj.f", Read)
	d.Access(2, "obj.f", Read)
	if len(d.Races()) != 0 {
		t.Fatalf("read-read raced: %v", d.Races())
	}
	d.Access(3, "obj.f", Write)
	if len(d.Races()) == 0 {
		t.Fatal("read-write unordered must race")
	}
}

// TestDetectorRandomizedSoundness: randomly interleave two actors that
// synchronize on every k-th access; races must appear exactly when the
// actors touch the location without synchronizing between conflicting
// accesses. We check the weaker but crucial direction: with full
// synchronization (message after every access), no race is ever reported.
func TestDetectorRandomizedSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		d := NewDetector()
		d.Fork(0, 1)
		d.Fork(0, 2)
		cur := 1
		other := 2
		for i := 0; i < 10; i++ {
			kind := Read
			if rng.Intn(2) == 0 {
				kind = Write
			}
			d.Access(cur, "loc", kind)
			// Fully synchronize before handing over.
			msg := d.Send(cur)
			d.Receive(other, msg)
			cur, other = other, cur
		}
		if races := d.Races(); len(races) != 0 {
			t.Fatalf("trial %d: fully synchronized accesses raced: %v", trial, races)
		}
	}
}
