//go:build !race

package tables

const raceEnabled = false
