package tables

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/internal/benchsrc"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/interp"
	"github.com/psharp-go/psharp/journal"
	"github.com/psharp-go/psharp/lang"
	"github.com/psharp-go/psharp/obs"
	"github.com/psharp-go/psharp/sct"
)

// AllocProbe records allocations per iteration for one workload, through
// the pooled TestHarness vs one-shot RunTest (the pre-harness hot path).
type AllocProbe struct {
	// Workload names the probed program: "relay-hotpath" is the synthetic
	// message-relay ring whose per-step work isolates the runtime's own
	// overhead (the ≥50%-saving gate runs against it); the other entry is
	// the protocol benchmark, whose machines use the static declaration
	// form, so their schemas are compiled once per type and the pooled
	// steady state pays only per-machine logic and wiring allocations.
	Workload string `json:"workload"`
	// Pooled is the steady-state heap allocations per iteration through a
	// warmed psharp.TestHarness.
	Pooled float64 `json:"allocs_per_iteration_pooled"`
	// OneShot is the same workload through per-iteration psharp.RunTest.
	OneShot float64 `json:"allocs_per_iteration_oneshot"`
	// SavedPercent is the pooled-vs-one-shot saving (higher is better).
	SavedPercent float64 `json:"allocs_saved_percent"`
}

// PerfReport is the machine-readable exploration-performance record emitted
// as BENCH_sct.json (psharp-bench -json), so the hot-path trajectory —
// schedule throughput and allocations per iteration — is tracked across
// changes instead of living only in transient benchmark output.
type PerfReport struct {
	// Env records where the numbers were measured (go version, GOMAXPROCS,
	// CPU count, timestamp) — throughput and allocation figures are not
	// comparable across machines without it.
	Env obs.Env `json:"env"`
	// Benchmark is the protocol the probe ran (buggy variant).
	Benchmark string `json:"benchmark"`
	// Strategy names the scheduling strategy used for the throughput run.
	Strategy string `json:"strategy"`
	// Iterations is the schedule budget of the throughput run.
	Iterations int `json:"iterations"`
	// Workers is the number of exploration workers (1 = sequential Run).
	Workers int `json:"workers"`
	// Dynamic reports whether work-stealing sharding was used.
	Dynamic bool `json:"dynamic"`
	// SchedulesPerSec is the paper's #Sch/sec throughput metric.
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	// TotalSchedulingPoints sums scheduling decisions across the run.
	TotalSchedulingPoints int64 `json:"total_scheduling_points"`
	// AllocProbes holds the per-workload allocation measurements.
	AllocProbes []AllocProbe `json:"alloc_probes"`
	// SchemaProbe quantifies the per-type compiled-schema cache.
	SchemaProbe SchemaCacheProbe `json:"schema_cache_probe"`
	// MonitorProbe quantifies the specification layer's steady-state cost:
	// allocs/iteration with the benchmark's monitors attached vs without.
	MonitorProbe MonitorOverheadProbe `json:"monitor_overhead_probe"`
	// TelemetryProbe quantifies the observability layer's steady-state cost:
	// allocs/iteration through the engine with a Telemetry accumulator
	// attached vs without. CI gates its delta at <= 3.
	TelemetryProbe TelemetryOverheadProbe `json:"telemetry_overhead_probe"`
	// InterpCoverage summarizes .psl state-transition coverage over the
	// Table 1 corpus under the operational semantics.
	InterpCoverage InterpCoverageProbe `json:"interp_coverage_probe"`
	// InterpPerf compares the .psl tree-walker against the bytecode VM on
	// the same corpus. CI gates the speedup at >= MinInterpSpeedup.
	InterpPerf InterpPerfProbe `json:"interp_perf_probe"`
	// FaultProbe measures what fault injection buys on the crash-tolerant
	// corpus: buggy schedules found with the same budget, faults off vs on.
	FaultProbe FaultProbe `json:"fault_probe"`
	// ResumeProbe validates the resumable-campaign invariant: a budget-split
	// journaled run must converge on the uninterrupted run's population.
	// CI fails the perf-report step when the populations diverge.
	ResumeProbe ResumeProbe `json:"resume_probe"`
	// DPORProbe measures schedules-to-bug on the gated corpus subset, random
	// vs DPOR with the state cache. CI fails the perf-report step when any
	// bug is missed or any ratio exceeds MaxDPORScheduleRatio.
	DPORProbe DPORProbe `json:"dpor_probe"`
	// StateCacheProbe quantifies the hashed global-state cache's hit rate on
	// a real protocol: how much of a fixed attempt budget is pruned as
	// revisits of already-covered global states.
	StateCacheProbe StateCacheProbe `json:"state_cache_probe"`
	// WorkerIterations records how many iterations each worker actually
	// executed (uneven under Dynamic; the static shard sizes otherwise).
	WorkerIterations []int `json:"worker_iterations"`
	// Campaign is the structured campaign report of the throughput run —
	// the same document psharp-test -report-out writes, embedded so the
	// perf artifact carries coverage-growth curves alongside throughput.
	Campaign *sct.Campaign `json:"campaign"`
}

// SchemaCacheProbe records steady-state allocations per iteration through
// the pooled harness on the same protocol under both schema regimes: the
// per-type compiled-schema cache on (static declarations, compiled once at
// registration) vs off (schemas rebuilt and revalidated for every machine
// instance — the cost the closure declaration form pays by design, and
// what every create paid before the cache existed).
type SchemaCacheProbe struct {
	// Workload names the probed protocol (buggy variant).
	Workload string `json:"workload"`
	// Cached is allocs/iteration with schemas compiled once per type.
	Cached float64 `json:"allocs_per_iteration_schema_cached"`
	// PerInstance is the same workload with the cache disabled
	// (psharp.WithoutSchemaCache), i.e. closure-form schema costs.
	PerInstance float64 `json:"allocs_per_iteration_schema_per_instance"`
	// SavedPercent is what the cache saves (higher is better).
	SavedPercent float64 `json:"schema_cache_saved_percent"`
}

// MonitorOverheadProbe records steady-state allocations per iteration
// through the pooled harness with the protocol's specification monitors
// attached (Benchmark.SetupMonitored) vs plain. A static monitor's schema
// is compiled once per name and its instance is recycled by the harness, so
// the expected delta is the per-iteration logic allocation of each monitor
// (the pooled-harness cap test pins it at <= 5).
type MonitorOverheadProbe struct {
	// Workload names the probed protocol (buggy variant).
	Workload string `json:"workload"`
	// Unmonitored is allocs/iteration without monitors.
	Unmonitored float64 `json:"allocs_per_iteration_unmonitored"`
	// Monitored is the same workload with the monitors attached.
	Monitored float64 `json:"allocs_per_iteration_monitored"`
	// DeltaAllocs is what the specification layer adds per iteration.
	DeltaAllocs float64 `json:"monitor_delta_allocs"`
}

// TelemetryOverheadProbe records allocations per iteration through the sct
// engine (pooled worker harness) with an sct.Telemetry accumulator attached
// vs without. Coverage hits are read-lock + atomic add, depth observations
// index a fixed histogram, and curve samples amortize to fractions of an
// allocation per iteration, so the expected delta is near zero; the gate
// caps it at MaxTelemetryDeltaAllocs.
type TelemetryOverheadProbe struct {
	// Workload names the probed protocol (buggy variant).
	Workload string `json:"workload"`
	// Plain is allocs/iteration through sct.Run without telemetry.
	Plain float64 `json:"allocs_per_iteration_plain"`
	// Telemetry is the same run with an accumulator attached.
	Telemetry float64 `json:"allocs_per_iteration_telemetry"`
	// DeltaAllocs is what the observability layer adds per iteration.
	DeltaAllocs float64 `json:"telemetry_delta_allocs"`
}

// MaxTelemetryDeltaAllocs is the regression budget for the telemetry
// overhead probe: attaching a Telemetry accumulator may add at most this
// many allocations per iteration. CI fails the perf-report step beyond it.
const MaxTelemetryDeltaAllocs = 3.0

// InterpCoverageProbe aggregates .psl state-transition coverage across the
// Table 1 corpus: every non-racy benchmark runs under the interpreter for a
// handful of seeds with an obs.StateEventCoverage attached, and the probe
// reports how many of the statically declared machine transitions
// (interp.DeclaredTransitions) the schedules actually dispatched.
type InterpCoverageProbe struct {
	// Benchmarks is how many corpus programs were executed.
	Benchmarks int `json:"benchmarks"`
	// Seeds is the number of random schedules tried per benchmark.
	Seeds int `json:"seeds_per_benchmark"`
	// DeclaredTransitions sums the machine-side on-do/on-goto bindings
	// across the corpus (the coverage denominator; monitors excluded).
	DeclaredTransitions int `json:"declared_transitions"`
	// CoveredTransitions counts the distinct triples actually dispatched.
	CoveredTransitions int64 `json:"covered_transitions"`
	// CoveredPercent is the corpus-wide coverage ratio.
	CoveredPercent float64 `json:"covered_percent"`
}

// InterpPerfProbe records .psl interpreter throughput over the Table 1
// corpus under both execution engines: every non-racy benchmark runs the
// same seeded schedules through the tree-walking evaluator and through the
// compiled bytecode VM, and the probe reports whole-schedule throughput for
// each. Both engines are warmed first (schema, intern-table, and bytecode
// caches compile per Program, outside the timed region), so the ratio
// isolates steady-state execution cost.
type InterpPerfProbe struct {
	// Benchmarks is how many corpus programs were timed.
	Benchmarks int `json:"benchmarks"`
	// Seeds is the number of schedules timed per benchmark per engine.
	Seeds int `json:"seeds_per_benchmark"`
	// Steps sums the scheduler steps one engine executed across the corpus
	// (identical for both engines — the differential harness locks them).
	Steps int64 `json:"steps_per_engine"`
	// WalkSchedulesPerSec is full schedules per second under the walker.
	WalkSchedulesPerSec float64 `json:"walk_schedules_per_sec"`
	// BytecodeSchedulesPerSec is the same schedules under the bytecode VM.
	BytecodeSchedulesPerSec float64 `json:"bytecode_schedules_per_sec"`
	// Speedup is bytecode over walker throughput (higher is better).
	Speedup float64 `json:"speedup"`
}

// FaultProbe compares exploration of the crash-tolerant corpus with and
// without fault injection under an identical schedule budget: the seeded
// TwoPhaseCommitFT bug is only reachable through a coordinator crash, so
// the fault-free side is expected to find nothing while the fault-enabled
// side finds buggy schedules — the bugs-per-budget value the fault
// subsystem exists to buy. The fault columns record how hard the injector
// actually drove the program.
type FaultProbe struct {
	// Workload names the probed protocol (buggy variant, monitors attached).
	Workload string `json:"workload"`
	// ScheduleBudget is the iteration budget given to each side.
	ScheduleBudget int `json:"schedule_budget"`
	// FaultBudget is the per-schedule fault budget of the enabled side.
	FaultBudget int `json:"fault_budget"`
	// BuggyFaultFree counts buggy schedules found with faults off.
	BuggyFaultFree int `json:"buggy_schedules_fault_free"`
	// BuggyWithFaults counts buggy schedules found with faults on.
	BuggyWithFaults int `json:"buggy_schedules_with_faults"`
	// Crashes..Reorders break down the faults injected by the enabled side.
	Crashes    int `json:"crashes"`
	Restarts   int `json:"restarts"`
	Drops      int `json:"drops"`
	Duplicates int `json:"duplicates"`
	Reorders   int `json:"reorders"`
}

// ResumeProbe records a journaled budget-split campaign against an
// uninterrupted control run of the same seed and budget: the first slice
// explores part of the budget and closes its journal, the second resumes it
// to the full budget, and the populations must match exactly — same
// distinct-schedule count, same buggy-schedule count, and the resumed slice
// executing only the remaining budget (zero re-executed schedules).
type ResumeProbe struct {
	// Workload names the probed protocol (buggy variant).
	Workload string `json:"workload"`
	// ScheduleBudget is the full campaign budget; SplitAt is where the first
	// slice stopped and the journal took over.
	ScheduleBudget int `json:"schedule_budget"`
	SplitAt        int `json:"split_at"`
	// DistinctSolo/DistinctResumed are the distinct-schedule populations of
	// the control run and of the split campaign after its resume.
	DistinctSolo    int `json:"distinct_schedules_solo"`
	DistinctResumed int `json:"distinct_schedules_resumed"`
	// BuggySolo/BuggyResumed are the buggy-schedule counts of both sides.
	BuggySolo    int `json:"buggy_schedules_solo"`
	BuggyResumed int `json:"buggy_schedules_resumed"`
	// ResumedSliceIterations is how many schedules the resuming process
	// itself executed; equality with budget−split proves no journal-covered
	// schedule was re-run.
	ResumedSliceIterations int `json:"resumed_slice_iterations"`
	// PopulationsMatch summarizes the gate: distinct and buggy counts equal
	// and the resumed slice ran exactly the remaining budget.
	PopulationsMatch bool `json:"populations_match"`
}

// MinInterpSpeedup is the regression budget for the interpreter perf probe:
// the bytecode VM must run corpus schedules at least this many times faster
// than the tree-walker. CI fails the perf-report step below it.
const MinInterpSpeedup = 5.0

// MaxDPORScheduleRatio is the regression budget for the DPOR probe: on every
// gated benchmark, DPOR with the state cache must reach the seeded bug in at
// most this fraction of the schedules the random strategy needs. CI fails
// the perf-report step beyond it, and whenever either side misses a bug.
const MaxDPORScheduleRatio = 0.5

// DPORBenchProbe records one gated benchmark's schedules-to-bug comparison.
// Both sides run StopOnFirstBug under the same budget; the DPOR side counts
// only explored schedules — pruned attempts are reported separately, never
// folded into the ratio's numerator (they cost hash lookups, not replays).
type DPORBenchProbe struct {
	// Workload names the probed protocol (buggy variant, monitors attached).
	Workload string `json:"workload"`
	// ScheduleBudget is the iteration budget given to each side.
	ScheduleBudget int `json:"schedule_budget"`
	// RandomSchedules is how many schedules random search needed to reach
	// the seeded bug (first-bug iteration + 1).
	RandomSchedules int `json:"random_schedules_to_bug"`
	// DPORSchedules is how many schedules DPOR+cache explored to the bug.
	DPORSchedules int `json:"dpor_schedules_to_bug"`
	// PrunedIterations and DistinctStates are the DPOR side's cache census.
	PrunedIterations int `json:"pruned_iterations"`
	DistinctStates   int `json:"distinct_states"`
	// FoundRandom/FoundDPOR report whether each side reached the bug.
	FoundRandom bool `json:"found_random"`
	FoundDPOR   bool `json:"found_dpor"`
	// Ratio is DPORSchedules over RandomSchedules (lower is better).
	Ratio float64 `json:"schedule_ratio"`
}

// DPORProbe aggregates the gated corpus subset — the benchmarks whose
// seeded bugs systematic depth-first exploration can reach (the full Table 2
// corpus is covered by the DFS-parity soundness test instead, since
// depth-first search inherently misses the deep bugs random stumbles into).
type DPORProbe struct {
	Benchmarks []DPORBenchProbe `json:"benchmarks"`
	// WorstRatio is the largest schedule ratio across the gated subset.
	WorstRatio float64 `json:"worst_ratio"`
	// AllFound reports whether both sides reached every seeded bug.
	AllFound bool `json:"all_found"`
}

// StateCacheProbe records one keep-going DPOR run with the hashed
// global-state cache attached: of a fixed attempt budget, how many schedules
// were cut short because their prefix reached an already-covered global
// state, and how large the distinct-state population grew.
type StateCacheProbe struct {
	// Workload names the probed protocol (buggy variant, monitors attached).
	Workload string `json:"workload"`
	// AttemptBudget is the iteration budget; explored + pruned sums to it
	// (modulo early exhaustion).
	AttemptBudget int `json:"attempt_budget"`
	// Explored is the schedules run to completion (Report.Iterations —
	// pruned attempts are excluded from it and from SchedulesPerSecond).
	Explored int `json:"explored_schedules"`
	// Pruned is the attempts cut short by a cache hit.
	Pruned int `json:"pruned_schedules"`
	// DistinctStates is the hashed global-state population.
	DistinctStates int `json:"distinct_states"`
	// PrunedPercent is pruned over total attempts (the cache hit rate).
	PrunedPercent float64 `json:"pruned_percent"`
	// StatesPerSec is distinct states discovered per second of exploration.
	StatesPerSec float64 `json:"distinct_states_per_sec"`
}

// PerfProbeOptions configures RunPerfProbe. Zero values select defaults.
type PerfProbeOptions struct {
	Benchmark  string // default "TwoPhaseCommit" (buggy variant)
	Iterations int    // throughput budget; default 1000
	Workers    int    // default 1
	Dynamic    bool
	Seed       uint64 // default 1
	// AllocRuns is the sample count per allocation measurement; default 50.
	AllocRuns int
}

// RunPerfProbe measures the exploration hot path: allocations per iteration
// through the pooled harness vs one-shot RunTest, and schedule throughput
// under the requested worker configuration.
func RunPerfProbe(o PerfProbeOptions) (PerfReport, error) {
	if o.Benchmark == "" {
		o.Benchmark = "TwoPhaseCommit"
	}
	if o.Iterations <= 0 {
		o.Iterations = 1000
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.AllocRuns <= 0 {
		o.AllocRuns = 50
	}
	b, ok := protocols.ByName(o.Benchmark, true)
	if !ok {
		return PerfReport{}, fmt.Errorf("tables: no buggy benchmark %q", o.Benchmark)
	}
	rep := PerfReport{
		Env:        obs.CaptureEnv(),
		Benchmark:  o.Benchmark,
		Strategy:   "random",
		Iterations: o.Iterations,
		Workers:    o.Workers,
		Dynamic:    o.Dynamic,
	}

	// Allocation probes: same workloads, one-shot vs pooled.
	protocolCfg := psharp.TestConfig{MaxSteps: b.MaxSteps, LivelockAsBug: b.LivelockAsBug}
	protocolProbe := probeAllocs(o.Benchmark, b.Setup, protocolCfg, o)
	rep.AllocProbes = []AllocProbe{
		probeAllocs("relay-hotpath", relaySetup(2, 256), psharp.TestConfig{}, o),
		protocolProbe,
	}
	// The cached side of the schema probe is the protocol's pooled number
	// measured above; only the cache-disabled side needs its own run.
	rep.SchemaProbe = SchemaCacheProbe{
		Workload:    o.Benchmark,
		Cached:      protocolProbe.Pooled,
		PerInstance: pooledAllocs(b.Setup, protocolCfg, o, psharp.WithoutSchemaCache()),
	}
	if rep.SchemaProbe.PerInstance > 0 {
		rep.SchemaProbe.SavedPercent = 100 * (1 - rep.SchemaProbe.Cached/rep.SchemaProbe.PerInstance)
	}
	// Monitor overhead: the unmonitored side is the protocol's pooled number
	// measured above; only the monitored side needs its own run.
	rep.MonitorProbe = MonitorOverheadProbe{
		Workload:    o.Benchmark,
		Unmonitored: protocolProbe.Pooled,
		Monitored:   pooledAllocs(b.SetupMonitored(), protocolCfg, o),
	}
	rep.MonitorProbe.DeltaAllocs = rep.MonitorProbe.Monitored - rep.MonitorProbe.Unmonitored
	rep.TelemetryProbe = probeTelemetryOverhead(o, b.Setup, b.MaxSteps)
	var err error
	if rep.InterpCoverage, err = probeInterpCoverage(5); err != nil {
		return PerfReport{}, err
	}
	if rep.InterpPerf, err = probeInterpPerf(200); err != nil {
		return PerfReport{}, err
	}
	rep.FaultProbe = probeFaults(o.Seed)
	if rep.ResumeProbe, err = probeResume(o.Benchmark, o.Seed); err != nil {
		return PerfReport{}, err
	}
	rep.DPORProbe = probeDPOR(o.Seed)
	rep.StateCacheProbe = probeStateCache()

	// Throughput probe, with telemetry attached so the perf artifact embeds
	// the same campaign document psharp-test -report-out writes.
	tel := sct.NewTelemetry(0)
	so := sct.Options{
		Strategy:   sct.NewRandom(o.Seed),
		Iterations: o.Iterations,
		MaxSteps:   b.MaxSteps,
		Telemetry:  tel,
	}
	ccfg := sct.CampaignConfig{
		Benchmark:  o.Benchmark,
		Strategy:   "random",
		Workers:    o.Workers,
		Dynamic:    o.Dynamic,
		Iterations: o.Iterations,
		MaxSteps:   b.MaxSteps,
		Seed:       o.Seed,
	}
	if o.Workers > 1 {
		prep := sct.RunParallel(b.Setup, sct.ParallelOptions{
			Options: so, Workers: o.Workers, Dynamic: o.Dynamic,
		})
		rep.SchedulesPerSec = prep.SchedulesPerSecond()
		rep.TotalSchedulingPoints = prep.TotalSchedulingPoints
		for _, w := range prep.Workers {
			rep.WorkerIterations = append(rep.WorkerIterations, w.Report.Iterations)
		}
		rep.Campaign = sct.NewCampaign(ccfg, &prep.Report, prep.Workers, tel)
	} else {
		r := sct.Run(b.Setup, so)
		rep.SchedulesPerSec = r.SchedulesPerSecond()
		rep.TotalSchedulingPoints = r.TotalSchedulingPoints
		rep.WorkerIterations = []int{r.Iterations}
		rep.Campaign = sct.NewCampaign(ccfg, &r, nil, tel)
	}
	return rep, nil
}

// probeFaults runs the crash-tolerant corpus benchmark through the engine
// twice with an identical schedule budget — faults off, then a budget of 2
// faults per schedule — and reports buggy-schedule counts for both sides
// plus the injected-fault breakdown. Keep-going mode (no StopOnFirstBug)
// makes the counts comparable across runs.
func probeFaults(seed uint64) FaultProbe {
	b := protocols.MustByName("TwoPhaseCommitFT", true)
	const budget = 400
	p := FaultProbe{Workload: b.ID(), ScheduleBudget: budget, FaultBudget: 2}
	base := sct.Options{
		Strategy:   sct.NewRandom(seed),
		Iterations: budget,
		MaxSteps:   b.MaxSteps,
	}
	p.BuggyFaultFree = sct.Run(b.SetupMonitored(), base).BuggyIterations
	withFaults := base
	withFaults.Strategy = sct.NewRandom(seed)
	withFaults.Faults = sct.FaultOptions{
		Budget: p.FaultBudget, Seed: seed, Horizon: 64,
		Immune: b.FaultImmune, Restart: true,
	}
	r := sct.Run(b.SetupMonitored(), withFaults)
	p.BuggyWithFaults = r.BuggyIterations
	p.Crashes, p.Restarts = r.Faults.Crashes, r.Faults.Restarts
	p.Drops, p.Duplicates, p.Reorders = r.Faults.Drops, r.Faults.Duplicates, r.Faults.Reorders
	return p
}

// probeDPOR runs the gated corpus subset through random search and through
// DPOR with the state cache, StopOnFirstBug on both sides, and reports how
// many schedules each needed to reach the seeded bug. The budgets mirror the
// corpus soundness tests: TwoPhaseCommit needs headroom for the ~3.5k
// attempts the cache prunes before the bug branch.
func probeDPOR(seed uint64) DPORProbe {
	gated := []struct {
		name   string
		budget int
	}{
		{"TwoPhaseCommit", 4000},
		{"Chord", 2000},
	}
	p := DPORProbe{AllFound: true}
	for _, g := range gated {
		b := protocols.MustByName(g.name, true)
		r := DPORBenchProbe{Workload: b.ID(), ScheduleBudget: g.budget}
		base := sct.Options{
			Iterations:     g.budget,
			MaxSteps:       b.MaxSteps,
			LivelockAsBug:  b.LivelockAsBug,
			StopOnFirstBug: true,
		}
		rndOpts := base
		rndOpts.Strategy = sct.NewRandom(seed)
		rnd := sct.Run(b.SetupMonitored(), rndOpts)
		if r.FoundRandom = rnd.BugFound(); r.FoundRandom {
			r.RandomSchedules = rnd.FirstBugIteration + 1
		}
		dpOpts := base
		dpOpts.Strategy = sct.NewDPOR()
		dpOpts.StateCache = true
		dp := sct.Run(b.SetupMonitored(), dpOpts)
		r.FoundDPOR = dp.BugFound()
		r.DPORSchedules = dp.Iterations
		r.PrunedIterations = dp.PrunedIterations
		r.DistinctStates = dp.DistinctStates
		if r.FoundRandom && r.FoundDPOR && r.RandomSchedules > 0 {
			r.Ratio = float64(r.DPORSchedules) / float64(r.RandomSchedules)
		}
		if !r.FoundRandom || !r.FoundDPOR {
			p.AllFound = false
		}
		if r.Ratio > p.WorstRatio {
			p.WorstRatio = r.Ratio
		}
		p.Benchmarks = append(p.Benchmarks, r)
	}
	return p
}

// probeStateCache runs DPOR+cache keep-going over a fixed attempt budget on
// the default protocol and reports the cache hit rate and distinct-state
// discovery throughput.
func probeStateCache() StateCacheProbe {
	b := protocols.MustByName("TwoPhaseCommit", true)
	const budget = 2000
	rep := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:   sct.NewDPOR(),
		Iterations: budget,
		MaxSteps:   b.MaxSteps,
		StateCache: true,
	})
	p := StateCacheProbe{
		Workload:       b.ID(),
		AttemptBudget:  budget,
		Explored:       rep.Iterations,
		Pruned:         rep.PrunedIterations,
		DistinctStates: rep.DistinctStates,
	}
	if attempts := p.Explored + p.Pruned; attempts > 0 {
		p.PrunedPercent = 100 * float64(p.Pruned) / float64(attempts)
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		p.StatesPerSec = float64(p.DistinctStates) / secs
	}
	return p
}

// probeResume runs the journal subsystem's acceptance scenario under the
// perf artifact: a campaign split into two slices around a durable journal
// vs one uninterrupted run, all sequential with the same seed.
func probeResume(benchmark string, seed uint64) (ResumeProbe, error) {
	b := protocols.MustByName(benchmark, true)
	const budget, split = 400, 150
	p := ResumeProbe{Workload: b.ID(), ScheduleBudget: budget, SplitAt: split}

	solo := sct.Run(b.Setup, sct.Options{
		Strategy: sct.NewRandom(seed), Iterations: budget, MaxSteps: b.MaxSteps,
	})
	p.DistinctSolo, p.BuggySolo = solo.DistinctSchedules, solo.BuggyIterations

	dir, err := os.MkdirTemp("", "psharp-resume-probe-*")
	if err != nil {
		return p, err
	}
	defer os.RemoveAll(dir)
	meta := journal.Meta{
		Benchmark: b.ID(), Strategy: "random", Seed: seed,
		Workers: 1, ShardCount: 1, MaxSteps: b.MaxSteps,
	}
	first, err := journal.Create(dir, meta, journal.Options{})
	if err != nil {
		return p, err
	}
	sct.Run(b.Setup, sct.Options{
		Strategy: sct.NewRandom(seed), Iterations: split, MaxSteps: b.MaxSteps,
		Journal: first,
	})
	if err := first.Close(); err != nil {
		return p, err
	}
	second, err := journal.Resume(dir, meta, journal.Options{})
	if err != nil {
		return p, err
	}
	resumed := sct.Run(b.Setup, sct.Options{
		Strategy: sct.NewRandom(seed), Iterations: budget, MaxSteps: b.MaxSteps,
		Journal: second,
	})
	if err := second.Close(); err != nil {
		return p, err
	}
	p.DistinctResumed, p.BuggyResumed = resumed.DistinctSchedules, resumed.BuggyIterations
	p.ResumedSliceIterations = resumed.Iterations - split // merged counter minus the journaled baseline
	p.PopulationsMatch = p.DistinctResumed == p.DistinctSolo &&
		p.BuggyResumed == p.BuggySolo &&
		p.ResumedSliceIterations == budget-split
	return p, nil
}

// probeTelemetryOverhead runs the same budget through sct.Run twice — with
// and without a Telemetry accumulator — and reports allocations per
// iteration for each. The per-run fixed cost (harness construction, first
// iterations) is identical on both sides, so the delta isolates what the
// observability layer spends.
func probeTelemetryOverhead(o PerfProbeOptions, setup func(*psharp.Runtime), maxSteps int) TelemetryOverheadProbe {
	iters := 8 * o.AllocRuns
	measure := func(tel *sct.Telemetry) float64 {
		run := func() {
			sct.Run(setup, sct.Options{
				Strategy:   sct.NewRandom(o.Seed),
				Iterations: iters,
				MaxSteps:   maxSteps,
				Telemetry:  tel,
			})
		}
		run() // warm global pools before measuring
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		run()
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / float64(iters)
	}
	p := TelemetryOverheadProbe{Workload: o.Benchmark}
	p.Plain = measure(nil)
	p.Telemetry = measure(sct.NewTelemetry(0))
	p.DeltaAllocs = p.Telemetry - p.Plain
	return p
}

// probeInterpCoverage executes every non-racy Table 1 benchmark under the
// interpreter for seeds random schedules each, with coverage attached, and
// aggregates covered vs declared machine transitions across the corpus.
// Coverage is accumulated per program, not globally, because machine and
// state names repeat across benchmarks.
func probeInterpCoverage(seeds int) (InterpCoverageProbe, error) {
	p := InterpCoverageProbe{Seeds: seeds}
	for _, b := range benchsrc.All() {
		prog, err := benchsrc.Source(b.Name, false)
		if err != nil {
			return p, err
		}
		var cov obs.StateEventCoverage
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			out := interp.Run(prog, prog.Machines[0].Name, interp.Options{Seed: seed, Coverage: &cov})
			if out.Err != nil {
				return p, fmt.Errorf("tables: interp coverage: %s seed %d: %w", b.Name, seed, out.Err)
			}
		}
		p.Benchmarks++
		p.DeclaredTransitions += interp.DeclaredTransitions(prog)
		p.CoveredTransitions += cov.Distinct()
	}
	if p.DeclaredTransitions > 0 {
		p.CoveredPercent = 100 * float64(p.CoveredTransitions) / float64(p.DeclaredTransitions)
	}
	return p, nil
}

// probeInterpPerf times the same seeded .psl schedules under both engines
// and reports corpus-wide throughput. Each program is run once per engine
// before timing so per-Program compilation (schemas, intern tables,
// bytecode) happens outside the measured region, matching how repeated
// exploration amortizes it.
func probeInterpPerf(seeds int) (InterpPerfProbe, error) {
	p := InterpPerfProbe{Seeds: seeds}
	run := func(prog *lang.Program, main string, engine interp.Engine) (int64, time.Duration, error) {
		// Each engine's region is timed three times and the minimum kept:
		// the probe shares a core with the surrounding harness, and min-of-N
		// rejects scheduler noise bursts symmetrically for both engines.
		var steps int64
		best := time.Duration(0)
		for rep := 0; rep < 5; rep++ {
			// Start each timed region with a clean heap so one engine's
			// garbage (the walker allocates heavily by design) is not
			// billed to the other.
			runtime.GC()
			start := time.Now()
			steps = 0
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				out := interp.Run(prog, main, interp.Options{Engine: engine, Seed: seed})
				if out.Err != nil {
					return 0, 0, fmt.Errorf("tables: interp perf: %s seed %d: %w", main, seed, out.Err)
				}
				steps += int64(out.Steps)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return steps, best, nil
	}
	var walkTime, bcTime time.Duration
	for _, b := range benchsrc.All() {
		prog, err := benchsrc.Source(b.Name, false)
		if err != nil {
			return p, err
		}
		main := prog.Machines[0].Name
		// Warm both engines' per-Program caches before timing.
		interp.Run(prog, main, interp.Options{Engine: interp.EngineWalk, Seed: 1})
		interp.Run(prog, main, interp.Options{Engine: interp.EngineBytecode, Seed: 1})
		_, wd, err := run(prog, main, interp.EngineWalk)
		if err != nil {
			return p, err
		}
		walkTime += wd
		steps, bd, err := run(prog, main, interp.EngineBytecode)
		if err != nil {
			return p, err
		}
		bcTime += bd
		p.Benchmarks++
		p.Steps += steps
	}
	schedules := float64(p.Benchmarks * seeds)
	if walkTime > 0 {
		p.WalkSchedulesPerSec = schedules / walkTime.Seconds()
	}
	if bcTime > 0 {
		p.BytecodeSchedulesPerSec = schedules / bcTime.Seconds()
	}
	if p.WalkSchedulesPerSec > 0 {
		p.Speedup = p.BytecodeSchedulesPerSec / p.WalkSchedulesPerSec
	}
	return p, nil
}

// WritePerfReport writes rep as indented JSON to path (the BENCH_sct.json
// artifact).
func WritePerfReport(path string, rep PerfReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// probeAllocs measures one workload through both iteration entry points.
func probeAllocs(name string, setup func(*psharp.Runtime), cfg psharp.TestConfig, o PerfProbeOptions) AllocProbe {
	p := AllocProbe{Workload: name}
	oneshotStrategy := sct.NewRandom(o.Seed)
	iter := 0
	p.OneShot = allocsPerRun(o.AllocRuns, func() {
		oneshotStrategy.PrepareIteration(iter)
		iter++
		c := cfg
		c.Strategy = oneshotStrategy
		psharp.RunTest(setup, c)
	})
	p.Pooled = pooledAllocs(setup, cfg, o)
	if p.OneShot > 0 {
		p.SavedPercent = 100 * (1 - p.Pooled/p.OneShot)
	}
	return p
}

// pooledAllocs measures steady-state allocations per iteration through a
// warmed pooled harness built with opts.
func pooledAllocs(setup func(*psharp.Runtime), cfg psharp.TestConfig, o PerfProbeOptions, opts ...psharp.Option) float64 {
	h := psharp.NewTestHarness(setup, opts...)
	defer h.Close()
	strategy := sct.NewRandom(o.Seed)
	iter := 0
	return allocsPerRun(o.AllocRuns, func() {
		strategy.PrepareIteration(iter)
		iter++
		c := cfg
		c.Strategy = strategy
		h.Run(c)
	})
}

// relaySetup builds the synthetic hot-path workload: a ring of machines
// passing one preallocated token until its TTL runs out. The program itself
// allocates almost nothing per step, so the probe isolates what the runtime
// spends per iteration and per scheduling point.
func relaySetup(machines, ttl int) func(*psharp.Runtime) {
	return func(r *psharp.Runtime) {
		r.MustRegister("Relay", func() psharp.Machine {
			var next psharp.MachineID
			return psharp.MachineFunc(func(sc *psharp.Schema) {
				sc.Start("Run").
					OnEventDo(&relayWire{}, func(ctx *psharp.Context, ev psharp.Event) {
						next = ev.(*relayWire).Next
					}).
					OnEventDo(&relayToken{}, func(ctx *psharp.Context, ev psharp.Event) {
						t := ev.(*relayToken)
						if t.TTL == 0 {
							ctx.Halt()
							return
						}
						t.TTL--
						ctx.Send(next, t)
					})
			})
		})
		ids := make([]psharp.MachineID, machines)
		for i := range ids {
			ids[i] = r.MustCreate("Relay", nil)
		}
		for i, id := range ids {
			if err := r.SendEvent(id, &relayWire{Next: ids[(i+1)%machines]}); err != nil {
				panic(err)
			}
		}
		if err := r.SendEvent(ids[0], &relayToken{TTL: ttl}); err != nil {
			panic(err)
		}
	}
}

type relayWire struct {
	psharp.EventBase
	Next psharp.MachineID
}

type relayToken struct {
	psharp.EventBase
	TTL int
}

// allocsPerRun measures the mean heap allocations of f over runs calls
// after three untimed warm-up calls (so pools and reusable buffers reach
// steady state), like testing.AllocsPerRun but without importing the
// testing package into a non-test build.
func allocsPerRun(runs int, f func()) float64 {
	for i := 0; i < 3; i++ {
		f() // warm pools and grow reusable buffers before measuring
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
