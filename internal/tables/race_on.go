//go:build race

package tables

// raceEnabled reports whether this build is race-detector instrumented.
const raceEnabled = true
