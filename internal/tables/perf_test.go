package tables

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunPerfProbe checks the BENCH_sct.json pipeline end to end: the probe
// runs, the pooled harness beats one-shot RunTest by the required >= 50%
// allocation margin, and the written artifact round-trips as JSON.
func TestRunPerfProbe(t *testing.T) {
	rep, err := RunPerfProbe(PerfProbeOptions{
		Iterations: 50,
		Workers:    2,
		Dynamic:    true,
		AllocRuns:  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchedulesPerSec <= 0 {
		t.Errorf("SchedulesPerSec = %v, want > 0", rep.SchedulesPerSec)
	}
	total := 0
	for _, n := range rep.WorkerIterations {
		total += n
	}
	if total != rep.Iterations {
		t.Errorf("worker iterations sum to %d, want the budget %d", total, rep.Iterations)
	}
	if len(rep.AllocProbes) != 2 {
		t.Fatalf("want 2 alloc probes, got %+v", rep.AllocProbes)
	}
	hot := rep.AllocProbes[0]
	if hot.Workload != "relay-hotpath" {
		t.Fatalf("first probe should be the hot-path workload, got %q", hot.Workload)
	}
	// The ≥50% gate runs against the hot-path workload, where the runtime's
	// own per-iteration cost dominates; protocol workloads also spend on
	// user Configure closures that are rebuilt by design.
	if hot.Pooled > hot.OneShot/2 {
		t.Errorf("pooled harness allocates %.1f/iteration vs one-shot %.1f on %s: want <= 50%%",
			hot.Pooled, hot.OneShot, hot.Workload)
	}
	proto := rep.AllocProbes[1]
	if proto.Pooled >= proto.OneShot {
		t.Errorf("pooled harness should still beat one-shot on %s: pooled %.1f vs one-shot %.1f",
			proto.Workload, proto.Pooled, proto.OneShot)
	}

	if rep.Env.GoVersion == "" || rep.Env.NumCPU == 0 || rep.Env.Timestamp == "" {
		t.Errorf("missing environment metadata: %+v", rep.Env)
	}
	// The telemetry-overhead gate: attaching an accumulator may cost at most
	// MaxTelemetryDeltaAllocs allocations per iteration.
	if rep.TelemetryProbe.DeltaAllocs > MaxTelemetryDeltaAllocs {
		t.Errorf("telemetry adds %.2f allocs/iteration (plain %.1f vs telemetry %.1f), budget %.0f",
			rep.TelemetryProbe.DeltaAllocs, rep.TelemetryProbe.Plain,
			rep.TelemetryProbe.Telemetry, MaxTelemetryDeltaAllocs)
	}
	ic := rep.InterpCoverage
	if ic.Benchmarks != 13 {
		t.Errorf("interp coverage ran %d benchmarks, want the 13 Table 1 programs", ic.Benchmarks)
	}
	if ic.CoveredTransitions == 0 || ic.DeclaredTransitions == 0 ||
		ic.CoveredTransitions > int64(ic.DeclaredTransitions) {
		t.Errorf("degenerate interp coverage: %+v", ic)
	}
	ip := rep.InterpPerf
	if ip.Benchmarks != 13 {
		t.Errorf("interp perf ran %d benchmarks, want the 13 Table 1 programs", ip.Benchmarks)
	}
	if ip.WalkSchedulesPerSec <= 0 || ip.BytecodeSchedulesPerSec <= 0 || ip.Steps == 0 {
		t.Errorf("degenerate interp perf probe: %+v", ip)
	}
	// The interpreter-throughput gate: the bytecode VM must beat the
	// tree-walker by at least MinInterpSpeedup on the corpus. Race-detector
	// instrumentation taxes the VM's tight dispatch loop far harder than
	// the walker's allocation-bound traversal, so the ratio only carries
	// meaning uninstrumented — CI runs this gate without -race (the
	// "Perf report" step).
	if !raceEnabled && ip.Speedup < MinInterpSpeedup {
		t.Errorf("bytecode speedup %.2fx (walk %.0f vs bytecode %.0f schedules/s), floor %.0fx",
			ip.Speedup, ip.WalkSchedulesPerSec, ip.BytecodeSchedulesPerSec, MinInterpSpeedup)
	}
	if rep.Campaign == nil {
		t.Fatal("perf report missing embedded campaign")
	}
	if rep.Campaign.Telemetry == nil || len(rep.Campaign.Telemetry.GrowthCurve) == 0 {
		t.Error("embedded campaign missing telemetry growth curve")
	}
	if rep.Campaign.Result.Iterations != rep.Iterations {
		t.Errorf("campaign iterations = %d, want %d", rep.Campaign.Result.Iterations, rep.Iterations)
	}

	path := filepath.Join(t.TempDir(), "BENCH_sct.json")
	if err := WritePerfReport(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded PerfReport
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("BENCH_sct.json does not round-trip: %v", err)
	}
	if decoded.Benchmark != rep.Benchmark || decoded.SchedulesPerSec != rep.SchedulesPerSec {
		t.Errorf("decoded report diverges: %+v vs %+v", decoded, rep)
	}
}
