package tables

import (
	"strings"
	"testing"
	"time"

	"github.com/psharp-go/psharp/internal/benchsrc"
)

// TestTable1MatchesExpectations cross-checks the harness against the
// benchsrc roster (which itself mirrors the paper's Table 1).
func TestTable1MatchesExpectations(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(benchsrc.All()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(benchsrc.All()))
	}
	for i, want := range benchsrc.All() {
		got := rows[i]
		if got.Name != want.Name {
			t.Fatalf("row %d: %s, want %s", i, got.Name, want.Name)
		}
		if got.FPsNoXSA != want.FPsNoXSA || got.FPsXSA != want.FPsXSA || got.Verified != want.Verified {
			t.Errorf("%s: FPs (%d,%d,verified=%v), want (%d,%d,%v)",
				got.Name, got.FPsNoXSA, got.FPsXSA, got.Verified,
				want.FPsNoXSA, want.FPsXSA, want.Verified)
		}
		if want.HasRacy && !got.RacesFound {
			t.Errorf("%s: racy variant not flagged", got.Name)
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "MultiPaxos") {
		t.Error("printed table missing rows")
	}
}

// goldenTable1Rows builds the full 13-row Table 1 deterministically: the
// roster's published counts, the corpus statistics, and fixed timings (the
// only nondeterministic columns).
func goldenTable1Rows(t *testing.T) []Table1Row {
	t.Helper()
	var rows []Table1Row
	for _, b := range benchsrc.All() {
		s, err := benchsrc.StatsOf(b.Name)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, Table1Row{
			Name: b.Name, Suite: b.Suite,
			LoC: s.LoC, Machines: s.Machines,
			STs: s.StateTransitions, ABs: s.ActionBindings,
			Time:     10 * time.Millisecond,
			FPsNoXSA: b.FPsNoXSA, FPsXSA: b.FPsXSA,
			Verified: b.Verified, HasRacy: b.HasRacy,
			RacyTime: 5 * time.Millisecond, RacesFound: b.HasRacy,
		})
	}
	return rows
}

// TestPrintTable1Golden locks the full 13-row Table 1 render: the header,
// every row in the paper's order, the corpus statistics columns, and the
// dashes in the racy columns of benchmarks without a racy variant.
func TestPrintTable1Golden(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb, goldenTable1Rows(t))
	if got := sb.String(); got != table1Golden {
		t.Errorf("PrintTable1 drifted from the golden render.\ngot:\n%s\nwant:\n%s", got, table1Golden)
	}
}

// TestCheckTable1 exercises the psharp-bench -check comparison on clean and
// drifted rows.
func TestCheckTable1(t *testing.T) {
	rows := goldenTable1Rows(t)
	if drift := CheckTable1(rows); len(drift) != 0 {
		t.Fatalf("clean rows reported drift: %v", drift)
	}
	rows[0].FPsNoXSA++
	rows[6].FPsXSA--
	rows[1].RacesFound = false
	drift := CheckTable1(rows)
	if len(drift) != 3 {
		t.Fatalf("drift = %v, want 3 entries", drift)
	}
	for _, want := range []string{"AsyncSystem", "MultiPaxos", "BoundedAsync"} {
		found := false
		for _, d := range drift {
			if strings.Contains(d, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("drift %v does not mention %s", drift, want)
		}
	}
	if drift := CheckTable1(rows[:5]); len(drift) != 1 || !strings.Contains(drift[0], "row count") {
		t.Errorf("truncated rows: drift = %v, want a row-count mismatch", drift)
	}
}

// TestTable2RowSmoke runs a small-budget Table 2 row end to end and checks
// the cell structure and the first-schedule DFS find on ChainReplication.
func TestTable2RowSmoke(t *testing.T) {
	row, err := RunTable2Row("ChainReplication", Table2Options{
		Iterations: 200, Timeout: time.Minute, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(row.Cells))
	}
	for _, c := range row.Cells {
		if !c.BugFound {
			t.Errorf("%v: ChainReplication bug not found even at small budget", c.Mode)
		}
	}
	dfs := row.Cells[2]
	if dfs.Mode != ModePSharpDFS || dfs.BugIteration != 0 {
		t.Errorf("P# DFS should find ChainReplication on the first schedule, got iteration %d", dfs.BugIteration)
	}
	var sb strings.Builder
	PrintTable2(&sb, []Table2Row{row})
	if !strings.Contains(sb.String(), "ChainReplication") {
		t.Error("printed table missing the row")
	}
}

const table1Golden = `Benchmark            LoC   #M  #ST  #AB       Time   No-xSA    xSA Verified?   RacyTime Races?
AsyncSystem          155    3    7    2     0.010s        6      2        NO          -      -
BoundedAsync         111    3    1    5     0.010s        1      0       yes     0.005s    yes
German               134    3    0    8     0.010s        0      0       yes     0.005s    yes
BasicPaxos           141    4    2    7     0.010s        2      0       yes     0.005s    yes
TwoPhaseCommit       139    3    2    7     0.010s        1      0       yes     0.005s    yes
Chord                 96    3    0    5     0.010s        0      0       yes     0.005s    yes
MultiPaxos           219    5   12    2     0.010s       10      5        NO     0.005s    yes
Raft                 135    3    1    7     0.010s        0      0       yes     0.005s    yes
ChainReplication     115    2    5    1     0.010s        4      0       yes     0.005s    yes
Leader                95    3    0    5     0.010s        0      0       yes          -      -
Pi                   115    4    0    6     0.010s        0      0       yes          -      -
Chameneos            144    4    0    7     0.010s        0      0       yes          -      -
Swordfish            107    4    0    6     0.010s        0      0       yes          -      -
`
