package tables

import (
	"errors"
	"io/fs"
	"strings"
	"testing"
	"time"

	"github.com/psharp-go/psharp/internal/benchsrc"
)

// TestTable1MatchesExpectations cross-checks the harness against the
// benchsrc roster (which itself mirrors the paper's Table 1).
func TestTable1MatchesExpectations(t *testing.T) {
	rows, err := RunTable1()
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			t.Skipf("Table 1 .psl corpus not present in this snapshot: %v", err)
		}
		t.Fatal(err)
	}
	if len(rows) != len(benchsrc.All()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(benchsrc.All()))
	}
	for i, want := range benchsrc.All() {
		got := rows[i]
		if got.Name != want.Name {
			t.Fatalf("row %d: %s, want %s", i, got.Name, want.Name)
		}
		if got.FPsNoXSA != want.FPsNoXSA || got.FPsXSA != want.FPsXSA || got.Verified != want.Verified {
			t.Errorf("%s: FPs (%d,%d,verified=%v), want (%d,%d,%v)",
				got.Name, got.FPsNoXSA, got.FPsXSA, got.Verified,
				want.FPsNoXSA, want.FPsXSA, want.Verified)
		}
		if want.HasRacy && !got.RacesFound {
			t.Errorf("%s: racy variant not flagged", got.Name)
		}
	}
	var sb strings.Builder
	PrintTable1(&sb, rows)
	if !strings.Contains(sb.String(), "MultiPaxos") {
		t.Error("printed table missing rows")
	}
}

// TestTable2RowSmoke runs a small-budget Table 2 row end to end and checks
// the cell structure and the first-schedule DFS find on ChainReplication.
func TestTable2RowSmoke(t *testing.T) {
	row, err := RunTable2Row("ChainReplication", Table2Options{
		Iterations: 200, Timeout: time.Minute, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(row.Cells))
	}
	for _, c := range row.Cells {
		if !c.BugFound {
			t.Errorf("%v: ChainReplication bug not found even at small budget", c.Mode)
		}
	}
	dfs := row.Cells[2]
	if dfs.Mode != ModePSharpDFS || dfs.BugIteration != 0 {
		t.Errorf("P# DFS should find ChainReplication on the first schedule, got iteration %d", dfs.BugIteration)
	}
	var sb strings.Builder
	PrintTable2(&sb, []Table2Row{row})
	if !strings.Contains(sb.String(), "ChainReplication") {
		t.Error("printed table missing the row")
	}
}
