// Package tables regenerates the paper's evaluation tables: Table 1 (the
// static analyzer across the benchmark suites) and Table 2 (the scheduler
// comparison on the buggy protocol implementations). It is shared by the
// psharp-bench command and the root bench_test.go harness.
package tables

import (
	"fmt"
	"io"
	"time"

	"github.com/psharp-go/psharp/analysis"
	"github.com/psharp-go/psharp/internal/benchsrc"
	"github.com/psharp-go/psharp/internal/protocols"
	"github.com/psharp-go/psharp/sct"
)

// Table1Row is one benchmark's static-analysis results.
type Table1Row struct {
	Name       string
	Suite      string
	LoC        int
	Machines   int
	STs        int
	ABs        int
	Time       time.Duration
	FPsNoXSA   int
	FPsXSA     int
	Verified   bool
	RacyTime   time.Duration
	RacesFound bool // "found all data races?" on the racy variant
	HasRacy    bool
}

// RunTable1 analyzes every Table 1 benchmark (non-racy with and without
// xSA, racy where available) and returns the rows in the paper's order.
func RunTable1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range benchsrc.All() {
		stats, err := benchsrc.StatsOf(b.Name)
		if err != nil {
			return nil, err
		}
		prog, err := benchsrc.Source(b.Name, false)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res := analysis.Analyze(prog, analysis.Options{XSA: true})
		elapsed := time.Since(start)
		row := Table1Row{
			Name: b.Name, Suite: b.Suite,
			LoC: stats.LoC, Machines: stats.Machines,
			STs: stats.StateTransitions, ABs: stats.ActionBindings,
			Time:     elapsed,
			FPsNoXSA: len(res.BaseViolations),
			FPsXSA:   len(res.Violations),
			Verified: res.Verified(),
			HasRacy:  b.HasRacy,
		}
		if b.HasRacy {
			rprog, err := benchsrc.Source(b.Name, true)
			if err != nil {
				return nil, err
			}
			rstart := time.Now()
			rres := analysis.Analyze(rprog, analysis.Options{XSA: true})
			row.RacyTime = time.Since(rstart)
			row.RacesFound = len(rres.Violations) > 0
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CheckTable1 compares measured rows against the benchsrc roster (the
// paper's published Table 1 numbers) and returns one human-readable drift
// description per mismatch. An empty result means the analyzer still
// reproduces the paper exactly; psharp-bench -check turns any drift into a
// non-zero exit so CI can gate on it.
func CheckTable1(rows []Table1Row) []string {
	var drift []string
	want := benchsrc.All()
	if len(rows) != len(want) {
		return []string{fmt.Sprintf("row count = %d, want %d", len(rows), len(want))}
	}
	for i, w := range want {
		got := rows[i]
		if got.Name != w.Name {
			drift = append(drift, fmt.Sprintf("row %d: benchmark %q, want %q", i, got.Name, w.Name))
			continue
		}
		if got.FPsNoXSA != w.FPsNoXSA {
			drift = append(drift, fmt.Sprintf("%s: FPs without xSA = %d, want %d", w.Name, got.FPsNoXSA, w.FPsNoXSA))
		}
		if got.FPsXSA != w.FPsXSA {
			drift = append(drift, fmt.Sprintf("%s: FPs with xSA = %d, want %d", w.Name, got.FPsXSA, w.FPsXSA))
		}
		if got.Verified != w.Verified {
			drift = append(drift, fmt.Sprintf("%s: verified = %v, want %v", w.Name, got.Verified, w.Verified))
		}
		if w.HasRacy && !got.RacesFound {
			drift = append(drift, fmt.Sprintf("%s: racy variant not flagged", w.Name))
		}
	}
	return drift
}

// PrintTable1 renders rows like the paper's Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-18s %5s %4s %4s %4s %10s %8s %6s %9s %10s %6s\n",
		"Benchmark", "LoC", "#M", "#ST", "#AB", "Time", "No-xSA", "xSA", "Verified?", "RacyTime", "Races?")
	for _, r := range rows {
		verified := "yes"
		if !r.Verified {
			verified = "NO"
		}
		racyTime, races := "-", "-"
		if r.HasRacy {
			racyTime = fmt.Sprintf("%.3fs", r.RacyTime.Seconds())
			races = "yes"
			if !r.RacesFound {
				races = "NO"
			}
		}
		fmt.Fprintf(w, "%-18s %5d %4d %4d %4d %9.3fs %8d %6d %9s %10s %6s\n",
			r.Name, r.LoC, r.Machines, r.STs, r.ABs, r.Time.Seconds(),
			r.FPsNoXSA, r.FPsXSA, verified, racyTime, races)
	}
}

// SchedulerMode identifies one Table 2 configuration.
type SchedulerMode int

// Table 2 configurations.
const (
	// ModeChessRDOn is the CHESS-like baseline with its happens-before race
	// detector enabled.
	ModeChessRDOn SchedulerMode = iota
	// ModeChessRDOff is the CHESS-like baseline without race detection.
	ModeChessRDOff
	// ModePSharpDFS is the embedded P# DFS scheduler.
	ModePSharpDFS
	// ModePSharpRandom is the embedded P# random scheduler.
	ModePSharpRandom
)

func (m SchedulerMode) String() string {
	switch m {
	case ModeChessRDOn:
		return "CHESS(RD-on)"
	case ModeChessRDOff:
		return "CHESS(RD-off)"
	case ModePSharpDFS:
		return "P#-DFS"
	default:
		return "P#-Random"
	}
}

// Table2Cell is one (benchmark, scheduler) measurement.
type Table2Cell struct {
	Mode         SchedulerMode
	Schedules    int
	SchedPerSec  float64
	MaxSP        int
	BugFound     bool
	BugIteration int
	PercentBuggy float64 // random mode only
}

// Table2Row is one buggy benchmark across all four configurations.
type Table2Row struct {
	Name     string
	Machines int
	Cells    []Table2Cell
}

// Table2Options bounds the exploration (the paper: 10,000 schedules or 5
// minutes, whichever first).
type Table2Options struct {
	Iterations int
	Timeout    time.Duration
	Seed       uint64
	// Workers fans every cell's exploration out over this many parallel
	// workers via sct.RunParallel; 0 or 1 keeps the paper's sequential
	// setup (callers wanting "all cores" pass GOMAXPROCS explicitly).
	// Sharded seed streams keep the explored schedule population identical
	// to the sequential run's.
	Workers int
	// Dynamic opts parallel cells into work-stealing iteration assignment
	// (sct.ParallelOptions.Dynamic): all workers stay busy when iteration
	// costs skew, at the cost of run-to-run population reproducibility.
	Dynamic bool
}

// DefaultTable2Options returns the paper's budgets.
func DefaultTable2Options() Table2Options {
	return Table2Options{Iterations: 10000, Timeout: 5 * time.Minute, Seed: 20150628}
}

// RunTable2Row measures one buggy benchmark under all four configurations.
func RunTable2Row(name string, opts Table2Options) (Table2Row, error) {
	b, ok := protocols.ByName(name, true)
	if !ok {
		return Table2Row{}, fmt.Errorf("tables: no buggy benchmark %q", name)
	}
	row := Table2Row{Name: name, Machines: b.Machines}
	for _, mode := range []SchedulerMode{ModeChessRDOn, ModeChessRDOff, ModePSharpDFS, ModePSharpRandom} {
		row.Cells = append(row.Cells, runCell(b, mode, opts))
	}
	return row, nil
}

// RunTable2 measures all eight buggy protocols.
func RunTable2(opts Table2Options) ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range protocols.Names() {
		if _, ok := protocols.ByName(name, true); !ok {
			continue
		}
		row, err := RunTable2Row(name, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runCell(b protocols.Benchmark, mode SchedulerMode, opts Table2Options) Table2Cell {
	so := sct.Options{
		Iterations:     opts.Iterations,
		Timeout:        opts.Timeout,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: true,
		LivelockAsBug:  b.LivelockAsBug,
	}
	switch mode {
	case ModeChessRDOn:
		so.Strategy = sct.NewDFS()
		so.ChessLike = true
		so.RaceDetect = true
	case ModeChessRDOff:
		so.Strategy = sct.NewDFS()
		so.ChessLike = true
	case ModePSharpDFS:
		so.Strategy = sct.NewDFS()
	case ModePSharpRandom:
		so.Strategy = sct.NewRandom(opts.Seed)
		// As the paper does for the random scheduler, keep exploring after
		// a bug to measure the fraction of buggy schedules.
		so.StopOnFirstBug = false
	}
	var rep sct.Report
	if opts.Workers > 1 {
		rep = sct.RunParallel(b.Setup, sct.ParallelOptions{
			Options: so, Workers: opts.Workers, Dynamic: opts.Dynamic,
		}).Report
	} else {
		rep = sct.Run(b.Setup, so)
	}
	return Table2Cell{
		Mode:         mode,
		Schedules:    rep.Iterations,
		SchedPerSec:  rep.SchedulesPerSecond(),
		MaxSP:        rep.MaxSchedulingPoints,
		BugFound:     rep.BugFound(),
		BugIteration: rep.FirstBugIteration,
		PercentBuggy: rep.PercentBuggy(),
	}
}

// PrintTable2 renders rows like the paper's Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-18s %3s | %-13s | %-13s | %-22s | %-28s\n",
		"Benchmark", "#T", "CHESS RD-on", "CHESS RD-off", "P# DFS", "P# Random")
	fmt.Fprintf(w, "%-18s %3s | %6s %6s | %6s %6s | %6s %6s %8s | %6s %8s %7s %6s\n",
		"", "", "sch/s", "bug?", "sch/s", "bug?", "#SP", "sch/s", "bug?", "#SP", "sch/s", "%buggy", "bug?")
	for _, r := range rows {
		found := func(c Table2Cell) string {
			if c.BugFound {
				return fmt.Sprintf("y@%d", c.BugIteration)
			}
			return "no"
		}
		on, off, dfs, rnd := r.Cells[0], r.Cells[1], r.Cells[2], r.Cells[3]
		fmt.Fprintf(w, "%-18s %3d | %6.1f %6s | %6.1f %6s | %6d %6.1f %8s | %6d %8.1f %6.1f%% %6s\n",
			r.Name, r.Machines,
			on.SchedPerSec, found(on),
			off.SchedPerSec, found(off),
			dfs.MaxSP, dfs.SchedPerSec, found(dfs),
			rnd.MaxSP, rnd.SchedPerSec, rnd.PercentBuggy, found(rnd))
	}
}
