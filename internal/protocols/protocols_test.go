package protocols

import (
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// testIterations is kept modest so `go test` stays fast; the bench harness
// uses the paper's full 10,000-schedule budget.
const testIterations = 300

func runRandom(t *testing.T, b Benchmark, iters int, stopOnBug bool) sct.Report {
	t.Helper()
	return sct.Run(b.Setup, sct.Options{
		Strategy:       sct.NewRandom(20150628),
		Iterations:     iters,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: stopOnBug,
		LivelockAsBug:  b.LivelockAsBug,
	})
}

// TestCorrectVariantsPassRandom checks that no correct benchmark variant
// reports a bug under hundreds of random schedules.
func TestCorrectVariantsPassRandom(t *testing.T) {
	for _, b := range All() {
		if b.Buggy {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rep := runRandom(t, b, testIterations, true)
			if rep.BugFound() {
				t.Fatalf("correct variant found buggy: %v (iteration %d)", rep.FirstBug, rep.FirstBugIteration)
			}
			if rep.BoundReached == rep.Iterations {
				t.Fatalf("every schedule hit the depth bound; bound %d too low", b.MaxSteps)
			}
		})
	}
}

// TestBuggyVariantsFailRandom checks that the random scheduler finds every
// seeded bug (Table 2's headline result) and that the bug replays
// deterministically from its trace.
func TestBuggyVariantsFailRandom(t *testing.T) {
	for _, b := range All() {
		if !b.Buggy {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rep := runRandom(t, b, 2000, true)
			if !rep.BugFound() {
				t.Fatalf("random scheduler missed the seeded bug in %d schedules", rep.Iterations)
			}
			t.Logf("%s: bug at iteration %d: %v", b.ID(), rep.FirstBugIteration, rep.FirstBug)

			res := sct.ReplayTrace(b.Setup, rep.FirstBugTrace, psharp.TestConfig{
				MaxSteps:      b.MaxSteps,
				LivelockAsBug: b.LivelockAsBug,
			})
			if res.Bug == nil {
				t.Fatalf("trace replay did not reproduce the bug")
			}
			if res.Bug.Kind != rep.FirstBug.Kind {
				t.Fatalf("replayed bug kind %v != original %v", res.Bug.Kind, rep.FirstBug.Kind)
			}
		})
	}
}
