package protocols

import "github.com/psharp-go/psharp"

// Lamport's single-decree Paxos (paper reference [16], ported from the P
// benchmark suite): two proposer machines compete to get their values
// chosen by three acceptor machines; a learner machine observes accepted
// ballots and asserts the protocol's safety property — only a single value
// is ever chosen.
//
// The paper injected an artificial bug into this benchmark; we do the same
// with a classic one: the buggy acceptor forgets to persist a promise when
// it has not yet accepted any value, so an earlier proposer's phase-2
// request slips past a newer promise. When the two proposers' rounds
// overlap, both can assemble majorities for different values; when they run
// back to back nothing goes wrong. That makes the bug invisible to a DFS
// exploration whose early schedules are near-sequential, while the random
// scheduler — which interleaves the proposers almost always — hits it in a
// large fraction of schedules, matching the paper's 83% and its DFS miss.

type pxConfig struct {
	psharp.EventBase
	Acceptors  []psharp.MachineID
	Learner    psharp.MachineID
	Registry   psharp.MachineID
	Value      int
	BallotOff  int // proposer index, for globally unique ballots
	StartDelay int // self-paced ticks before the first prepare
}

// pxStartTick paces a proposer's delayed start through its own queue.
type pxStartTick struct {
	psharp.EventBase
	Left int
}

type pxPrepare struct {
	psharp.EventBase
	Ballot   int
	Proposer psharp.MachineID
}

type pxPromise struct {
	psharp.EventBase
	Ballot         int // the ballot being promised
	AcceptedBallot int // 0 when nothing accepted yet
	AcceptedValue  int
}

type pxNack struct {
	psharp.EventBase
	Ballot   int
	Promised int
}

type pxAccept struct {
	psharp.EventBase
	Ballot   int
	Value    int
	Proposer psharp.MachineID
}

type pxAccepted struct {
	psharp.EventBase
	Ballot int
	Value  int
}

type pxPersist struct {
	psharp.EventBase
	Ballot   int
	Proposer psharp.MachineID
}

type pxPersistAck struct {
	psharp.EventBase
	Ballot int
}

// pxAcceptor implements the acceptor role. The injected bug is a runtime
// branch on the buggy instance field (not a schema difference), so the
// static schema is shared by both variants.
type pxAcceptor struct {
	psharp.StaticBase
	learner        psharp.MachineID
	promised       int
	acceptedBallot int
	acceptedValue  int
	buggy          bool
}

type pxAcceptorConfig struct {
	psharp.EventBase
	Learner psharp.MachineID
}

func (*pxAcceptor) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&pxPrepare{}).
		Defer(&pxAccept{}).
		OnEventDoM(&pxAcceptorConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*pxAcceptor).learner = ev.(*pxAcceptorConfig).Learner
			ctx.Goto("Active")
		})
	sc.State("Active").
		OnEventDoM(&pxPrepare{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			a := m.(*pxAcceptor)
			p := ev.(*pxPrepare)
			if p.Ballot <= a.promised {
				ctx.Send(p.Proposer, &pxNack{Ballot: p.Ballot, Promised: a.promised})
				return
			}
			if !(a.buggy && a.acceptedBallot == 0) {
				// The injected bug: an acceptor that has not accepted
				// anything yet forgets to persist its promise, so an older
				// in-flight phase-2 request is not rejected later.
				a.promised = p.Ballot
			}
			ctx.Write("acceptor.promised")
			ctx.Send(p.Proposer, &pxPromise{
				Ballot:         p.Ballot,
				AcceptedBallot: a.acceptedBallot,
				AcceptedValue:  a.acceptedValue,
			})
		}).
		OnEventDoM(&pxAccept{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			a := m.(*pxAcceptor)
			acc := ev.(*pxAccept)
			if acc.Ballot < a.promised {
				ctx.Send(acc.Proposer, &pxNack{Ballot: acc.Ballot, Promised: a.promised})
				return
			}
			a.promised = acc.Ballot
			a.acceptedBallot = acc.Ballot
			a.acceptedValue = acc.Value
			ctx.Write("acceptor.accepted")
			ctx.Send(a.learner, &pxAccepted{Ballot: acc.Ballot, Value: acc.Value})
		})
}

// pxProposer runs phases 1 and 2, retrying with a higher ballot on
// rejection, up to a bounded number of rounds.
type pxProposer struct {
	psharp.StaticBase
	acceptors []psharp.MachineID
	learner   psharp.MachineID
	registry  psharp.MachineID
	myValue   int
	ballotOff int

	round        int
	retriesLeft  int
	ballot       int
	promises     int
	bestBallot   int
	bestValue    int
	acceptsOK    int
	majorityNeed int
}

func (*pxProposer) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDoM(&pxConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			cfg := ev.(*pxConfig)
			p.acceptors = cfg.Acceptors
			p.learner = cfg.Learner
			p.registry = cfg.Registry
			p.myValue = cfg.Value
			p.ballotOff = cfg.BallotOff
			p.retriesLeft = 3
			p.majorityNeed = len(p.acceptors)/2 + 1
			if cfg.StartDelay > 0 {
				ctx.Send(ctx.ID(), &pxStartTick{Left: cfg.StartDelay})
				return
			}
			ctx.Goto("Phase1")
		}).
		OnEventDo(&pxStartTick{}, func(ctx *psharp.Context, ev psharp.Event) {
			t := ev.(*pxStartTick)
			if t.Left > 1 {
				ctx.Send(ctx.ID(), &pxStartTick{Left: t.Left - 1})
				return
			}
			ctx.Goto("Phase1")
		})

	sc.State("Phase1").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			p.round++
			p.ballot = p.round*10 + p.ballotOff
			p.promises = 0
			p.bestBallot = 0
			p.bestValue = 0
			for _, a := range p.acceptors {
				ctx.Send(a, &pxPrepare{Ballot: p.ballot, Proposer: ctx.ID()})
			}
		}).
		OnEventDoM(&pxPromise{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			pr := ev.(*pxPromise)
			if pr.Ballot != p.ballot {
				return // stale promise from an earlier round
			}
			p.promises++
			if pr.AcceptedBallot > p.bestBallot {
				p.bestBallot = pr.AcceptedBallot
				p.bestValue = pr.AcceptedValue
			}
			if p.promises == p.majorityNeed {
				// Persist the won ballot before streaming accepts, as a
				// production proposer must before acting on its leadership.
				ctx.Send(p.registry, &pxPersist{Ballot: p.ballot, Proposer: ctx.ID()})
				ctx.Goto("Persisting")
			}
		}).
		OnEventDoM(&pxNack{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			if ev.(*pxNack).Ballot != p.ballot {
				return
			}
			p.retry(ctx)
		}).
		// A persist acknowledgement from a ballot abandoned by a retry.
		OnEventDoM(&pxPersistAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			ctx.Assert(ev.(*pxPersistAck).Ballot != p.ballot,
				"persist ack for the current ballot %d before persisting", p.ballot)
		})

	sc.State("Persisting").
		OnEventDoM(&pxPersistAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			if ev.(*pxPersistAck).Ballot != m.(*pxProposer).ballot {
				return
			}
			ctx.Goto("Phase2")
		}).
		OnEventDoM(&pxNack{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			if ev.(*pxNack).Ballot != p.ballot {
				return
			}
			p.retry(ctx)
		}).
		Ignore(&pxPromise{})

	sc.State("Phase2").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			value := p.myValue
			if p.bestBallot > 0 {
				// Paxos's value-adoption rule: propose the value of the
				// highest-ballot accepted proposal reported in the promises.
				value = p.bestValue
			}
			p.acceptsOK = 0
			for _, a := range p.acceptors {
				ctx.Send(a, &pxAccept{Ballot: p.ballot, Value: value, Proposer: ctx.ID()})
			}
		}).
		OnEventDoM(&pxNack{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*pxProposer)
			if ev.(*pxNack).Ballot != p.ballot {
				return
			}
			p.retry(ctx)
		}).
		Ignore(&pxPromise{})

	sc.State("Done").
		Ignore(&pxPromise{}).
		Ignore(&pxNack{}).
		Ignore(&pxPersistAck{})

	sc.State("Phase2").
		Ignore(&pxPersistAck{})
}

// pxRegistry persists proposer ballots (one round trip between winning
// phase 1 and streaming phase-2 accepts, widening the window in which the
// proposers' rounds overlap).
type pxRegistry struct{ psharp.StaticBase }

func (*pxRegistry) ConfigureType(sc *psharp.Schema) {
	sc.Start("Ready").
		OnEventDo(&pxPersist{}, func(ctx *psharp.Context, ev psharp.Event) {
			// Writing the ballot durably takes a beat: the write request
			// passes through the registry's own queue once before the
			// acknowledgement goes out.
			ctx.Send(ctx.ID(), &pxPersistDone{Inner: ev.(*pxPersist)})
		}).
		OnEventDo(&pxPersistDone{}, func(ctx *psharp.Context, ev psharp.Event) {
			per := ev.(*pxPersistDone).Inner
			ctx.Write("registry.ballots")
			ctx.Send(per.Proposer, &pxPersistAck{Ballot: per.Ballot})
		})
}

// pxPersistDone paces the registry's durable write through its own queue.
type pxPersistDone struct {
	psharp.EventBase
	Inner *pxPersist
}

func (p *pxProposer) retry(ctx *psharp.Context) {
	if p.retriesLeft == 0 {
		ctx.Goto("Done")
		return
	}
	p.retriesLeft--
	ctx.Goto("Phase1")
}

// pxLearner watches accepted ballots; once some ballot reaches a majority
// its value is chosen, and every chosen value must be identical.
type pxLearner struct {
	psharp.StaticBase
	majorityNeed int
	perBallot    map[int]int
	valueOf      map[int]int
	chosen       int
	hasChosen    bool
}

type pxLearnerConfig struct {
	psharp.EventBase
	NumAcceptors int
}

func (*pxLearner) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&pxAccepted{}).
		OnEventDoM(&pxLearnerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*pxLearner).majorityNeed = ev.(*pxLearnerConfig).NumAcceptors/2 + 1
			ctx.Goto("Learning")
		})
	sc.State("Learning").
		OnEventDoM(&pxAccepted{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*pxLearner)
			acc := ev.(*pxAccepted)
			l.perBallot[acc.Ballot]++
			l.valueOf[acc.Ballot] = acc.Value
			ctx.Write("learner.chosen")
			if l.perBallot[acc.Ballot] < l.majorityNeed {
				return
			}
			if !l.hasChosen {
				l.hasChosen = true
				l.chosen = acc.Value
				return
			}
			ctx.Assert(l.chosen == acc.Value,
				"two different values chosen: %d (earlier) and %d (ballot %d)",
				l.chosen, acc.Value, acc.Ballot)
		})
}

func basicPaxosBenchmark(buggy bool) Benchmark {
	const numAcceptors = 3
	return Benchmark{
		Name:     "BasicPaxos",
		Buggy:    buggy,
		MaxSteps: 2000,
		Machines: numAcceptors + 3,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("PaxosAcceptor", func() psharp.Machine { return &pxAcceptor{buggy: buggy} })
			r.MustRegister("PaxosProposer", func() psharp.Machine { return &pxProposer{} })
			r.MustRegister("PaxosLearner", func() psharp.Machine {
				return &pxLearner{perBallot: make(map[int]int), valueOf: make(map[int]int)}
			})
			r.MustRegister("PaxosRegistry", func() psharp.Machine { return &pxRegistry{} })
			learner := r.MustCreate("PaxosLearner", nil)
			registry := r.MustCreate("PaxosRegistry", nil)
			mustSend(r, learner, &pxLearnerConfig{NumAcceptors: numAcceptors})
			acceptors := make([]psharp.MachineID, numAcceptors)
			for i := range acceptors {
				acceptors[i] = r.MustCreate("PaxosAcceptor", nil)
				mustSend(r, acceptors[i], &pxAcceptorConfig{Learner: learner})
			}
			// The second proposer starts a few self-paced ticks later, so
			// its phase 1 typically lands inside the first proposer's
			// prepare/persist window, where the injected acceptor bug
			// bites (the paper reports 83% buggy schedules).
			for i, v := range []int{101, 202} {
				prop := r.MustCreate("PaxosProposer", nil)
				mustSend(r, prop, &pxConfig{
					Acceptors: acceptors, Learner: learner, Registry: registry,
					Value: v, BallotOff: i + 1, StartDelay: i * 3,
				})
			}
		},
	}
}
