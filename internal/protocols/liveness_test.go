package protocols

// Acceptance tests for the specification layer on the protocol corpus: the
// seeded FairResponder liveness bug is invisible to the plain random
// scheduler but found by RandomFair with hot-state temperature tracking,
// replays deterministically, and produces no false alarms on the correct
// variant; the Raft election-safety monitor catches the double-counted-vote
// bug as a monitor violation at the announcement send; the TwoPhaseCommit
// atomicity monitor stays silent on the benchmark (whose seeded bug is a
// safety bug of a different kind) without perturbing exploration.

import (
	"testing"

	"github.com/psharp-go/psharp"
	"github.com/psharp-go/psharp/sct"
)

// TestLivenessBugNeedsFairScheduling is the headline acceptance check:
//
//   - plain Random (the paper's scheduler, no liveness checking — which an
//     unfair scheduler cannot soundly do) misses the seeded FairResponder
//     bug across the whole budget: nothing safety-visible ever happens;
//   - RandomFair with hot-state temperature tracking finds it, as a
//     BugLiveness attributed to the ResponseMonitor;
//   - the violation replays deterministically through sct.ReplayTrace.
func TestLivenessBugNeedsFairScheduling(t *testing.T) {
	b := MustByName("FairResponder", true)

	plain := sct.Run(b.Setup, sct.Options{
		Strategy:   sct.NewRandom(20150628),
		Iterations: 200,
		MaxSteps:   b.MaxSteps,
	})
	if plain.BugFound() {
		t.Fatalf("plain random reported %v; the seeded bug must be invisible to safety checking", plain.FirstBug)
	}

	fair := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:            sct.NewRandomFair(20150628, b.FairPrefix),
		Iterations:          200,
		MaxSteps:            b.MaxSteps,
		LivenessTemperature: b.Temperature,
		StopOnFirstBug:      true,
	})
	if !fair.BugFound() {
		t.Fatal("RandomFair with temperature tracking missed the seeded liveness bug")
	}
	bug := fair.FirstBug
	if bug.Kind != psharp.BugLiveness || bug.Monitor != "ResponseMonitor" {
		t.Fatalf("bug = %v, want BugLiveness from ResponseMonitor", bug)
	}
	t.Logf("liveness bug at iteration %d: %v", fair.FirstBugIteration, bug)

	res := sct.ReplayTrace(b.SetupMonitored(), fair.FirstBugTrace, psharp.TestConfig{
		MaxSteps:            b.MaxSteps,
		LivenessTemperature: b.Temperature,
	})
	if res.Bug == nil || res.Bug.Kind != psharp.BugLiveness || res.Bug.Message != bug.Message {
		t.Fatalf("replay did not reproduce the liveness bug: got %v, want %v", res.Bug, bug)
	}
}

// TestLivenessCorrectVariantNoFalsePositives checks the zero-false-positive
// side: the correct FairResponder always answers, and with the recommended
// threshold above the random prefix plus a few fair rounds, the monitor can
// never stay hot long enough to alarm.
func TestLivenessCorrectVariantNoFalsePositives(t *testing.T) {
	b := MustByName("FairResponder", false)
	rep := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:            sct.NewRandomFair(20150628, b.FairPrefix),
		Iterations:          300,
		MaxSteps:            b.MaxSteps,
		LivenessTemperature: b.Temperature,
	})
	if rep.BugFound() {
		t.Fatalf("correct variant reported %v at iteration %d", rep.FirstBug, rep.FirstBugIteration)
	}
}

// TestRaftElectionSafetyMonitor checks that a monitor-expressed safety
// violation on a real protocol is found and replayed: the buggy Raft's
// second leader announcement for a term fires the ElectionSafety monitor at
// the send, before the checker machine would see it.
func TestRaftElectionSafetyMonitor(t *testing.T) {
	b := MustByName("Raft", true)
	rep := sct.Run(b.SetupMonitored(), sct.Options{
		Strategy:       sct.NewRandom(20150628),
		Iterations:     2000,
		MaxSteps:       b.MaxSteps,
		StopOnFirstBug: true,
	})
	if !rep.BugFound() {
		t.Fatal("random scheduler missed the seeded Raft bug with the monitor attached")
	}
	bug := rep.FirstBug
	if bug.Kind != psharp.BugMonitor || bug.Monitor != "ElectionSafety" {
		t.Fatalf("bug = %v, want BugMonitor from ElectionSafety (the monitor observes the send first)", bug)
	}
	res := sct.ReplayTrace(b.SetupMonitored(), rep.FirstBugTrace, psharp.TestConfig{MaxSteps: b.MaxSteps})
	if res.Bug == nil || res.Bug.Kind != psharp.BugMonitor || res.Bug.Message != bug.Message {
		t.Fatalf("replay did not reproduce the monitor bug: got %v, want %v", res.Bug, bug)
	}
}

// TestMonitorsDoNotPerturbExploration checks the corpus-level
// zero-interference guarantee: attaching the TwoPhaseCommit atomicity
// monitor changes neither the schedules explored nor the bug found — the
// benchmark's seeded bug is an unhandled stale vote, which the silent
// monitor must not mask or accelerate.
func TestMonitorsDoNotPerturbExploration(t *testing.T) {
	b := MustByName("TwoPhaseCommit", true)
	run := func(setup func(*psharp.Runtime)) sct.Report {
		return sct.Run(setup, sct.Options{
			Strategy:       sct.NewRandom(20150628),
			Iterations:     500,
			MaxSteps:       b.MaxSteps,
			StopOnFirstBug: true,
		})
	}
	plain := run(b.Setup)
	monitored := run(b.SetupMonitored())
	if !plain.BugFound() || !monitored.BugFound() {
		t.Fatalf("bug found: plain=%v monitored=%v; want both", plain.BugFound(), monitored.BugFound())
	}
	if plain.FirstBugIteration != monitored.FirstBugIteration ||
		plain.FirstBug.Kind != monitored.FirstBug.Kind ||
		plain.FirstBug.Message != monitored.FirstBug.Message {
		t.Fatalf("monitor perturbed exploration:\nplain:     iteration %d, %v\nmonitored: iteration %d, %v",
			plain.FirstBugIteration, plain.FirstBug, monitored.FirstBugIteration, monitored.FirstBug)
	}
	if plain.TotalSchedulingPoints != monitored.TotalSchedulingPoints {
		t.Fatalf("scheduling points diverged: plain %d, monitored %d",
			plain.TotalSchedulingPoints, monitored.TotalSchedulingPoints)
	}
}

// TestLivenessBugFoundInParallelPortfolio checks the parallel wiring: a
// portfolio with a fair member finds the liveness bug under RunParallel and
// the trace still replays.
func TestLivenessBugFoundInParallelPortfolio(t *testing.T) {
	b := MustByName("FairResponder", true)
	pf, err := sct.ParsePortfolio("random,fair", 20150628, b.MaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	rep := sct.RunParallel(b.SetupMonitored(), sct.ParallelOptions{
		Options: sct.Options{
			Iterations:          200,
			MaxSteps:            b.MaxSteps,
			LivenessTemperature: b.Temperature,
			StopOnFirstBug:      true,
		},
		Workers:   2,
		Portfolio: pf,
	})
	if !rep.BugFound() {
		t.Fatal("parallel portfolio with a fair member missed the liveness bug")
	}
	if rep.FirstBug.Kind != psharp.BugLiveness {
		t.Fatalf("bug = %v, want BugLiveness", rep.FirstBug)
	}
	res := sct.ReplayTrace(b.SetupMonitored(), rep.FirstBugTrace, psharp.TestConfig{
		MaxSteps:            b.MaxSteps,
		LivenessTemperature: b.Temperature,
	})
	if res.Bug == nil || res.Bug.Kind != psharp.BugLiveness {
		t.Fatalf("replay did not reproduce: got %v", res.Bug)
	}
}
