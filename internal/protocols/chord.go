package protocols

import "github.com/psharp-go/psharp"

// Chord (paper reference [24], implemented — like the paper's version —
// from scratch using the original paper as reference): a peer-to-peer
// lookup ring over a 16-point identifier space. Nodes keep successor
// pointers; a lookup for key k is routed along the ring (chordLookup) until
// the node that precedes k hands it to its successor as a final hop
// (chordClaim); the owner replies to the client. A client machine issues a
// lookup against the stable ring, then lets a new node join between two
// existing nodes — authorized by a supervisor machine that acknowledges the
// join, as the transfer of keys would in a real deployment — and looks up
// the joiner's keys while the join is in flight.
//
// While joining, the new node is already spliced into its predecessor's
// successor pointer but is not yet serving; final-hop claims that arrive in
// that window must be deferred until the join acknowledgement. The buggy
// variant forgets the defer (the paper's common bug class): a claim routed
// into the window is an unhandled event. The window lies directly on the
// default schedule's path, which is why the paper reports this bug found on
// the very first schedule by CHESS and the P# DFS scheduler, and in about a
// third of random schedules.

type chordNodeConfig struct {
	psharp.EventBase
	ID        int
	Successor psharp.MachineID
	SuccID    int
}

// chordLookup routes a lookup along successor pointers.
type chordLookup struct {
	psharp.EventBase
	Key    int
	Client psharp.MachineID
}

// chordClaim is the final hop: the receiver is responsible for Key and
// replies to the client.
type chordClaim struct {
	psharp.EventBase
	Key    int
	Client psharp.MachineID
}

type chordResult struct {
	psharp.EventBase
	Key     int
	OwnerID int
}

type chordJoin struct {
	psharp.EventBase
	ID         int
	Pred       psharp.MachineID
	Successor  psharp.MachineID
	SuccID     int
	Supervisor psharp.MachineID
	Client     psharp.MachineID
}

// chordUpdateSucc rewires the predecessor's successor pointer to the
// joining node.
type chordUpdateSucc struct {
	psharp.EventBase
	Joiner psharp.MachineID
	SuccID int
}

type chordUpdateAck struct{ psharp.EventBase }

// chordJoinReq asks the supervisor to authorize the join (standing in for
// the key-transfer handshake of a full implementation).
type chordJoinReq struct {
	psharp.EventBase
	Joiner psharp.MachineID
}

type chordJoinAck struct{ psharp.EventBase }

// chordJoinStarted tells the client the splice is visible at the
// predecessor, so lookups will now route through the joining node.
type chordJoinStarted struct{ psharp.EventBase }

const chordSpace = 16

// inHalfOpen reports whether key lies in the ring interval (from, to].
func inHalfOpen(key, from, to int) bool {
	key, from, to = key%chordSpace, from%chordSpace, to%chordSpace
	if from < to {
		return from < key && key <= to
	}
	return key > from || key <= to
}

type chordNode struct {
	psharp.StaticBase
	id     int
	succ   psharp.MachineID
	succID int
	buggy  bool
	// pendingClient is the client to notify once the splice is visible at
	// the predecessor (set while joining).
	pendingClient psharp.MachineID
}

// ConfigureType declares the node's schema once per registered type; buggy
// is a registration parameter the factory bakes into the probe.
func (probe *chordNode) ConfigureType(sc *psharp.Schema) {
	route := func(n *chordNode, ctx *psharp.Context, l *chordLookup) {
		ctx.Read("node.successor")
		if inHalfOpen(l.Key, n.id, n.succID) {
			ctx.Send(n.succ, &chordClaim{Key: l.Key, Client: l.Client})
			return
		}
		ctx.Send(n.succ, l)
	}

	sc.Start("Boot").
		Defer(&chordLookup{}).
		Defer(&chordClaim{}).
		Defer(&chordUpdateSucc{}).
		OnEventDoM(&chordNodeConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			n := m.(*chordNode)
			cfg := ev.(*chordNodeConfig)
			n.id = cfg.ID
			n.succ = cfg.Successor
			n.succID = cfg.SuccID
			ctx.Goto("Active")
		}).
		OnEventDoM(&chordJoin{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			n := m.(*chordNode)
			j := ev.(*chordJoin)
			n.id = j.ID
			n.succ = j.Successor
			n.succID = j.SuccID
			// Splice in: the predecessor starts routing through us right
			// away, while the supervisor's acknowledgement is in flight.
			ctx.Send(j.Pred, &chordUpdateSucc{Joiner: ctx.ID(), SuccID: n.id})
			ctx.Send(j.Supervisor, &chordJoinReq{Joiner: ctx.ID()})
			n.pendingClient = j.Client
			ctx.Goto("Joining")
		})

	joining := sc.State("Joining")
	joining.OnEventGoto(&chordJoinAck{}, "Active")
	joining.OnEventDoM(&chordUpdateAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		ctx.Send(m.(*chordNode).pendingClient, &chordJoinStarted{})
	})
	if !probe.buggy {
		// The fix: traffic routed through the half-joined node waits until
		// the join handshake completes.
		joining.Defer(&chordLookup{})
		joining.Defer(&chordClaim{})
	}

	sc.State("Active").
		OnEventDoM(&chordLookup{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			route(m.(*chordNode), ctx, ev.(*chordLookup))
		}).
		OnEventDoM(&chordClaim{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			cl := ev.(*chordClaim)
			ctx.Send(cl.Client, &chordResult{Key: cl.Key, OwnerID: m.(*chordNode).id})
		}).
		OnEventDoM(&chordUpdateSucc{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			n := m.(*chordNode)
			u := ev.(*chordUpdateSucc)
			ctx.Write("node.successor")
			n.succ = u.Joiner
			n.succID = u.SuccID
			ctx.Send(u.Joiner, &chordUpdateAck{})
		}).
		// The predecessor's acknowledgement can trail the supervisor's join
		// acknowledgement, in which case it lands after the transition.
		OnEventDoM(&chordUpdateAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			n := m.(*chordNode)
			if !n.pendingClient.IsNil() {
				ctx.Send(n.pendingClient, &chordJoinStarted{})
				n.pendingClient = psharp.MachineID{}
			}
		})
}

// chordSupervisor authorizes joins; it is deliberately the last-created
// machine so that on the default schedule its acknowledgement trails the
// client's lookups, keeping the join window open.
type chordSupervisor struct{ psharp.StaticBase }

// chordGrant paces the supervisor's authorization through its own queue,
// widening the join window the way the key transfer of a real deployment
// would.
type chordGrant struct {
	psharp.EventBase
	Joiner psharp.MachineID
}

func (*chordSupervisor) ConfigureType(sc *psharp.Schema) {
	sc.Start("Ready").
		OnEventDo(&chordJoinReq{}, func(ctx *psharp.Context, ev psharp.Event) {
			ctx.Send(ctx.ID(), &chordGrant{Joiner: ev.(*chordJoinReq).Joiner})
		}).
		OnEventDo(&chordGrant{}, func(ctx *psharp.Context, ev psharp.Event) {
			ctx.Send(ev.(*chordGrant).Joiner, &chordJoinAck{})
		})
}

type chordClient struct {
	psharp.StaticBase
	nodes   []psharp.MachineID
	nodeIDs []int
	joiner  psharp.MachineID
	joinID  int
	super   psharp.MachineID
	lookups int
	oldOwn  int
}

type chordClientConfig struct {
	psharp.EventBase
	Nodes      []psharp.MachineID
	NodeIDs    []int
	Joiner     psharp.MachineID
	JoinID     int
	Supervisor psharp.MachineID
}

func (*chordClient) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDoM(&chordClientConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*chordClient)
			cfg := ev.(*chordClientConfig)
			c.nodes = cfg.Nodes
			c.nodeIDs = cfg.NodeIDs
			c.joiner = cfg.Joiner
			c.joinID = cfg.JoinID
			c.super = cfg.Supervisor
			c.oldOwn = successorOf(c.joinID, c.nodeIDs)
			// Lookup against the stable ring.
			ctx.Send(c.nodes[0], &chordLookup{Key: c.joinID + 1, Client: ctx.ID()})
			ctx.Goto("FirstLookup")
		})

	sc.State("FirstLookup").
		OnEventDoM(&chordResult{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*chordClient)
			res := ev.(*chordResult)
			want := successorOf(res.Key, c.nodeIDs)
			ctx.Assert(res.OwnerID == want,
				"stable ring: lookup(%d) answered %d, want %d", res.Key, res.OwnerID, want)
			ctx.Send(c.joiner, &chordJoin{
				ID:         c.joinID,
				Pred:       c.nodes[0],
				Successor:  c.nodes[1],
				SuccID:     c.nodeIDs[1],
				Supervisor: c.super,
				Client:     ctx.ID(),
			})
			ctx.Goto("WaitJoin")
		})

	sc.State("WaitJoin").
		OnEventDoM(&chordJoinStarted{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*chordClient)
			c.lookups = 2
			for i := 0; i < c.lookups; i++ {
				ctx.Send(c.nodes[0], &chordLookup{Key: c.joinID, Client: ctx.ID()})
			}
			ctx.Goto("JoinLookup")
		})

	sc.State("JoinLookup").
		OnEventDoM(&chordResult{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*chordClient)
			res := ev.(*chordResult)
			// During a join, a lookup may legitimately be answered by the
			// old owner (the splice is not atomic across the ring); what
			// must never happen is a lost or mis-routed lookup.
			ctx.Assert(res.OwnerID == c.joinID || res.OwnerID == c.oldOwn,
				"after join: lookup(%d) answered %d, want %d or %d",
				res.Key, res.OwnerID, c.joinID, c.oldOwn)
			c.lookups--
			if c.lookups == 0 {
				ctx.Halt()
			}
		})
}

// successorOf returns the id of the node owning key: the first node
// clockwise from key (inclusive).
func successorOf(key int, ids []int) int {
	best, bestDist := ids[0], chordSpace+1
	for _, id := range ids {
		dist := (id - key + chordSpace) % chordSpace
		if dist < bestDist {
			best, bestDist = id, dist
		}
	}
	return best
}

func chordBenchmark(buggy bool) Benchmark {
	ids := []int{2, 7, 12}
	const joinID = 5
	return Benchmark{
		Name:     "Chord",
		Buggy:    buggy,
		MaxSteps: 2000,
		Machines: len(ids) + 3,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("ChordNode", func() psharp.Machine { return &chordNode{buggy: buggy} })
			r.MustRegister("ChordClient", func() psharp.Machine { return &chordClient{} })
			r.MustRegister("ChordSupervisor", func() psharp.Machine { return &chordSupervisor{} })
			nodes := make([]psharp.MachineID, len(ids))
			for i := range ids {
				nodes[i] = r.MustCreate("ChordNode", nil)
			}
			for i, id := range ids {
				mustSend(r, nodes[i], &chordNodeConfig{
					ID:        id,
					Successor: nodes[(i+1)%len(nodes)],
					SuccID:    ids[(i+1)%len(ids)],
				})
			}
			joiner := r.MustCreate("ChordNode", nil)
			client := r.MustCreate("ChordClient", nil)
			super := r.MustCreate("ChordSupervisor", nil)
			mustSend(r, client, &chordClientConfig{
				Nodes: nodes, NodeIDs: ids, Joiner: joiner, JoinID: joinID, Supervisor: super,
			})
		},
	}
}
