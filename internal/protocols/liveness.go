package protocols

import "github.com/psharp-go/psharp"

// FairResponder is the liveness benchmark of the specification layer: a
// client/server request-response protocol whose "every request is
// eventually answered" property is expressed by a hot/cold monitor, with a
// seeded lost-request bug that only fair scheduling can expose.
//
// The server answers a request by chopping the work into chunks (one
// self-send per chunk) before responding, and an admin machine concurrently
// takes the server through a reconfiguration window (Reconfigure ...
// UpdateDone). The correct server defers a request that arrives inside the
// window and answers it afterwards; the buggy server ignores it — the
// request is silently dropped, a classic lost-signal bug. A pacer machine
// ticks forever, so the system never quiesces and never deadlocks: the lost
// request is invisible to every safety check. Only the ResponseMonitor sees
// it — hot from the moment the request is sent, cold at the response — and
// only under a fair schedule is a long-hot monitor a genuine violation
// rather than scheduler starvation of the server. The paper's random
// scheduler therefore misses this bug at any budget (there is nothing
// safety-visible to find), while sct.RandomFair with
// TestConfig.LivenessTemperature reports BugLiveness with a
// deterministically replayable trace.
//
// The temperature arithmetic behind the recommended settings: with 4
// machines and chunked work of depth lvChunks, a continuously hot monitor
// cools within ~4*(lvChunks+4) decisions once scheduling is fair, so any
// threshold above prefix + that bound is false-positive-free on the correct
// variant — the benchmark recommends prefix 40 (NewRandomFair's random
// phase) and temperature 120.

const (
	lvChunks = 6
	// LivenessTemperature is the recommended TestConfig.LivenessTemperature
	// for FairResponder; see the package comment for the arithmetic.
	lvTemperature = 120
	// lvFairPrefix is the recommended random-prefix length for
	// sct.NewRandomFair on this benchmark.
	lvFairPrefix = 40
)

type lvClientConfig struct {
	psharp.EventBase
	Server psharp.MachineID
}

type lvAdminConfig struct {
	psharp.EventBase
	Server psharp.MachineID
}

type lvRequest struct {
	psharp.EventBase
	From psharp.MachineID
}

type lvResponse struct{ psharp.EventBase }

type lvReconfigure struct{ psharp.EventBase }

type lvUpdateDone struct{ psharp.EventBase }

type lvChunk struct {
	psharp.EventBase
	Left   int
	Client psharp.MachineID
}

type lvTick struct{ psharp.EventBase }

// lvServer answers requests in lvChunks pieces of work; a reconfiguration
// window may interrupt it. The seeded bug: the buggy variant drops (ignores)
// a request that arrives during the window instead of deferring it.
type lvServer struct {
	psharp.StaticBase
	buggy bool
}

func (probe *lvServer) ConfigureType(sc *psharp.Schema) {
	serve := func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		req := ev.(*lvRequest)
		ctx.Send(ctx.ID(), &lvChunk{Left: lvChunks, Client: req.From})
	}
	sc.Start("Serving").
		OnEventDoM(&lvRequest{}, serve).
		OnEventDoM(&lvChunk{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := ev.(*lvChunk)
			if c.Left > 0 {
				ctx.Send(ctx.ID(), &lvChunk{Left: c.Left - 1, Client: c.Client})
				return
			}
			ctx.Send(c.Client, &lvResponse{})
		}).
		OnEventGoto(&lvReconfigure{}, "Updating").
		Ignore(&lvUpdateDone{})

	updating := sc.State("Updating")
	updating.Defer(&lvChunk{}) // in-flight work resumes after the window
	updating.OnEventGoto(&lvUpdateDone{}, "Serving")
	if probe.buggy {
		// The seeded liveness bug: a request arriving inside the
		// reconfiguration window is silently dropped. No assertion fails, no
		// event goes unhandled, the system keeps running — only the response
		// obligation is lost.
		updating.Ignore(&lvRequest{})
	} else {
		updating.Defer(&lvRequest{})
	}
}

// lvClient issues one request and passively receives the response.
type lvClient struct{ psharp.StaticBase }

func (*lvClient) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Ignore(&lvResponse{}).
		OnEventDo(&lvClientConfig{}, func(ctx *psharp.Context, ev psharp.Event) {
			ctx.Send(ev.(*lvClientConfig).Server, &lvRequest{From: ctx.ID()})
		})
}

// lvAdmin opens and closes the server's reconfiguration window.
type lvAdmin struct{ psharp.StaticBase }

func (*lvAdmin) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDo(&lvAdminConfig{}, func(ctx *psharp.Context, ev psharp.Event) {
			server := ev.(*lvAdminConfig).Server
			ctx.Send(server, &lvReconfigure{})
			ctx.Send(server, &lvUpdateDone{})
			ctx.Halt()
		})
}

// lvPacer ticks itself forever so the system never quiesces: the lost
// request cannot surface as a deadlock or unhandled event.
type lvPacer struct{ psharp.StaticBase }

func (*lvPacer) ConfigureType(sc *psharp.Schema) {
	sc.Start("Ticking").
		OnEventDo(&lvTick{}, func(ctx *psharp.Context, ev psharp.Event) {
			ctx.Send(ctx.ID(), ev)
		})
}

// lvResponseMonitor is the hot/cold liveness specification: hot between an
// observed request and its response.
func lvResponseMonitor() psharp.Machine {
	return psharp.StaticMachineFunc(func(sc *psharp.Schema) {
		sc.Start("Idle").Cold().
			OnEventGoto(&lvRequest{}, "AwaitingResponse")
		sc.State("AwaitingResponse").Hot().
			OnEventGoto(&lvResponse{}, "Idle")
	})
}

func fairResponderBenchmark(buggy bool) Benchmark {
	return Benchmark{
		Name:        "FairResponder",
		Buggy:       buggy,
		MaxSteps:    600,
		Machines:    4,
		Temperature: lvTemperature,
		FairPrefix:  lvFairPrefix,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("LvServer", func() psharp.Machine { return &lvServer{buggy: buggy} })
			r.MustRegister("LvClient", func() psharp.Machine { return &lvClient{} })
			r.MustRegister("LvAdmin", func() psharp.Machine { return &lvAdmin{} })
			r.MustRegister("LvPacer", func() psharp.Machine { return &lvPacer{} })
			server := r.MustCreate("LvServer", nil)
			client := r.MustCreate("LvClient", nil)
			admin := r.MustCreate("LvAdmin", nil)
			pacer := r.MustCreate("LvPacer", nil)
			mustSend(r, client, &lvClientConfig{Server: server})
			mustSend(r, admin, &lvAdminConfig{Server: server})
			mustSend(r, pacer, &lvTick{})
		},
		Monitors: func(r *psharp.Runtime) {
			r.MustRegisterMonitor("ResponseMonitor", lvResponseMonitor)
		},
	}
}
