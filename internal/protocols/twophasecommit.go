package protocols

import "github.com/psharp-go/psharp"

// The two-phase distributed commit protocol (paper reference [13], ported
// from the P benchmark suite): a coordinator machine runs a series of
// transactions against participant machines. For each transaction the
// coordinator collects votes (participants decide nondeterministically, as
// resource managers do), with a timer machine modeling the vote-collection
// timeout: if the timeout fires before all votes arrive, the transaction
// aborts. A checker machine receives every participant's per-transaction
// outcome and asserts atomicity — for a given transaction, either everyone
// committed or everyone aborted.
//
// After announcing a decision the coordinator persists it through a
// write-ahead log machine and sits in a transient Logging state until the
// log acknowledges. The buggy variant is the paper's most common bug class:
// the coordinator forgets that a straggler vote from a timed-out
// transaction can still arrive while it is Logging; the correct coordinator
// discards such stale votes, the buggy one reports an unhandled event. The
// bug needs the timeout to win the race against both votes and the stale
// vote to land inside the logging window — a rare combination, matching the
// paper's 3% buggy schedules.

type tpcParticipantConfig struct {
	psharp.EventBase
	Coordinator psharp.MachineID
	Checker     psharp.MachineID
}

type tpcCoordinatorConfig struct {
	psharp.EventBase
	Participants []psharp.MachineID
	Timer        psharp.MachineID
	Logger       psharp.MachineID
	Transactions int
}

type tpcPrepare struct {
	psharp.EventBase
	Tx int
}

type tpcVote struct {
	psharp.EventBase
	Tx     int
	Commit bool
	From   psharp.MachineID
}

type tpcDecision struct {
	psharp.EventBase
	Tx     int
	Commit bool
}

type tpcOutcome struct {
	psharp.EventBase
	Tx     int
	Commit bool
	From   psharp.MachineID
}

type tpcStartTimer struct {
	psharp.EventBase
	Tx int
}

type tpcTimeout struct {
	psharp.EventBase
	Tx int
}

type tpcWriteLog struct {
	psharp.EventBase
	Tx int
}

type tpcLogAck struct {
	psharp.EventBase
	Tx int
}

type tpcCoordinator struct {
	psharp.StaticBase
	participants []psharp.MachineID
	timer        psharp.MachineID
	logger       psharp.MachineID
	transactions int
	buggy        bool

	tx       int
	votes    int
	commitOK bool
}

// ConfigureType declares the coordinator's schema once per registered type;
// buggy is a registration parameter the factory bakes into the probe.
func (probe *tpcCoordinator) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDoM(&tpcCoordinatorConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*tpcCoordinator)
			cfg := ev.(*tpcCoordinatorConfig)
			c.participants = cfg.Participants
			c.timer = cfg.Timer
			c.logger = cfg.Logger
			c.transactions = cfg.Transactions
			ctx.Goto("Deciding")
		})

	sc.State("Deciding").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*tpcCoordinator)
			c.tx++
			if c.tx > c.transactions {
				for _, p := range c.participants {
					ctx.Send(p, &psharp.HaltEvent{})
				}
				ctx.Send(c.timer, &psharp.HaltEvent{})
				ctx.Send(c.logger, &psharp.HaltEvent{})
				ctx.Halt()
				return
			}
			c.votes = 0
			c.commitOK = true
			for _, p := range c.participants {
				ctx.Send(p, &tpcPrepare{Tx: c.tx})
			}
			ctx.Send(c.timer, &tpcStartTimer{Tx: c.tx})
			ctx.Goto("WaitVotes")
		})

	logging := sc.State("Logging")
	logging.OnEventGoto(&tpcLogAck{}, "Deciding")
	// Stale timeouts from transactions that decided on full votes drift in
	// while the decision is being logged.
	logging.OnEventDo(&tpcTimeout{}, func(ctx *psharp.Context, ev psharp.Event) {})
	if !probe.buggy {
		// The fix: a vote for an aborted (timed-out) transaction can still
		// arrive while the decision is being logged; discard it.
		logging.OnEventDoM(&tpcVote{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*tpcCoordinator)
			v := ev.(*tpcVote)
			ctx.Assert(v.Tx <= c.tx, "future vote for tx %d while logging tx %d", v.Tx, c.tx)
		})
	}

	sc.State("WaitVotes").
		OnEventDoM(&tpcVote{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*tpcCoordinator)
			v := ev.(*tpcVote)
			if v.Tx != c.tx {
				return // stale vote from a previous, timed-out transaction
			}
			c.votes++
			ctx.Write("coordinator.votes")
			if !v.Commit {
				c.commitOK = false
			}
			if c.votes < len(c.participants) {
				return
			}
			c.decide(ctx, c.commitOK)
		}).
		OnEventDoM(&tpcTimeout{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*tpcCoordinator)
			if ev.(*tpcTimeout).Tx != c.tx {
				return // stale timeout from an earlier transaction
			}
			c.decide(ctx, false)
		})
}

func (c *tpcCoordinator) decide(ctx *psharp.Context, commit bool) {
	for _, p := range c.participants {
		ctx.Send(p, &tpcDecision{Tx: c.tx, Commit: commit})
	}
	ctx.Send(c.logger, &tpcWriteLog{Tx: c.tx})
	ctx.Goto("Logging")
}

// tpcLogger is the coordinator's write-ahead log.
type tpcLogger struct {
	psharp.StaticBase
	coordinator psharp.MachineID
}

func (*tpcLogger) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&tpcWriteLog{}).
		OnEventDoM(&tpcTimerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*tpcLogger).coordinator = ev.(*tpcTimerConfig).Coordinator
			ctx.Goto("Ready")
		})
	sc.State("Ready").
		OnEventDoM(&tpcWriteLog{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ctx.Write("coordinator.log")
			ctx.Send(m.(*tpcLogger).coordinator, &tpcLogAck{Tx: ev.(*tpcWriteLog).Tx})
		})
}

type tpcParticipant struct {
	psharp.StaticBase
	coordinator psharp.MachineID
	checker     psharp.MachineID
}

func (*tpcParticipant) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&tpcPrepare{}).
		Defer(&tpcDecision{}).
		OnEventDoM(&tpcParticipantConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*tpcParticipant)
			cfg := ev.(*tpcParticipantConfig)
			p.coordinator = cfg.Coordinator
			p.checker = cfg.Checker
			ctx.Goto("Working")
		})
	sc.State("Working").
		OnEventDoM(&tpcPrepare{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			prep := ev.(*tpcPrepare)
			// Resource managers are free to vote either way; this is the
			// nondeterministic environment the paper models explicitly.
			ctx.Send(m.(*tpcParticipant).coordinator, &tpcVote{Tx: prep.Tx, Commit: ctx.RandomBool(), From: ctx.ID()})
		}).
		OnEventDoM(&tpcDecision{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := ev.(*tpcDecision)
			ctx.Write("participant.log")
			ctx.Send(m.(*tpcParticipant).checker, &tpcOutcome{Tx: d.Tx, Commit: d.Commit, From: ctx.ID()})
		})
}

// tpcChecker asserts per-transaction atomicity. Outcomes are keyed by
// transaction, so cross-machine message reordering cannot produce false
// alarms. The outcome map is per-instance state, so the factory (not the
// type-level declaration) initializes it.
type tpcChecker struct {
	psharp.StaticBase
	outcome map[int]bool
}

func (*tpcChecker) ConfigureType(sc *psharp.Schema) {
	sc.Start("Checking").
		OnEventDoM(&tpcOutcome{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ch := m.(*tpcChecker)
			o := ev.(*tpcOutcome)
			prev, seen := ch.outcome[o.Tx]
			if !seen {
				ch.outcome[o.Tx] = o.Commit
				return
			}
			ctx.Assert(prev == o.Commit,
				"atomicity violated for tx %d: %s saw commit=%v, earlier participant saw %v",
				o.Tx, o.From, o.Commit, prev)
		})
}

// tpcAtomicityMonitor is the monitor-expressed form of the atomicity
// specification: it observes every tpcOutcome send (the instant a
// participant reports, before the checker machine even dequeues it) and
// asserts that all outcomes of one transaction agree. Unlike tpcChecker it
// is not a machine in the program — it adds no machine, no queue and no
// scheduling points, so the explored schedules are identical with and
// without it.
type tpcAtomicityMonitor struct {
	psharp.StaticBase
	outcome map[int]bool
}

func (*tpcAtomicityMonitor) ConfigureType(sc *psharp.Schema) {
	sc.Start("Observing").
		OnEventDoM(&tpcOutcome{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			mon := m.(*tpcAtomicityMonitor)
			o := ev.(*tpcOutcome)
			prev, seen := mon.outcome[o.Tx]
			if !seen {
				mon.outcome[o.Tx] = o.Commit
				return
			}
			// Branch before Assert: the variadic arguments would otherwise be
			// boxed on every observation, and this runs on the send hot path.
			if prev != o.Commit {
				ctx.Assert(false,
					"atomicity violated for tx %d: %s reported commit=%v, earlier participant reported %v",
					o.Tx, o.From, o.Commit, prev)
			}
		})
}

// tpcTimerConfig configures the timer and logger machines.
type tpcTimerConfig struct {
	psharp.EventBase
	Coordinator psharp.MachineID
}

// tpcTimer races a timeout against the coordinator's vote collection; the
// scheduling of its response is the timing nondeterminism.
type tpcTimer struct {
	psharp.StaticBase
	coordinator psharp.MachineID
}

func (*tpcTimer) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&tpcStartTimer{}).
		OnEventDoM(&tpcTimerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*tpcTimer).coordinator = ev.(*tpcTimerConfig).Coordinator
			ctx.Goto("Armed")
		})
	sc.State("Armed").
		OnEventDo(&tpcStartTimer{}, func(ctx *psharp.Context, ev psharp.Event) {
			// The timeout ticks twice through the timer's own queue before
			// firing, modeling a timeout long enough that it usually loses
			// the race against the votes — which is what makes the buggy
			// coordinator's missing stale-vote handler a rare (paper: 3%)
			// bug rather than a frequent one.
			ctx.Send(ctx.ID(), &tpcTick{Tx: ev.(*tpcStartTimer).Tx, Left: 4})
		}).
		OnEventDoM(&tpcTick{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			tick := ev.(*tpcTick)
			if tick.Left > 0 {
				ctx.Send(ctx.ID(), &tpcTick{Tx: tick.Tx, Left: tick.Left - 1})
				return
			}
			ctx.Send(m.(*tpcTimer).coordinator, &tpcTimeout{Tx: tick.Tx})
		})
}

// tpcTick paces the timer's countdown through its own queue.
type tpcTick struct {
	psharp.EventBase
	Tx   int
	Left int
}

func twoPhaseCommitBenchmark(buggy bool) Benchmark {
	const numParticipants = 2
	const transactions = 3
	return Benchmark{
		Name:     "TwoPhaseCommit",
		Buggy:    buggy,
		MaxSteps: 2000,
		Machines: numParticipants + 3,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("TPCCoordinator", func() psharp.Machine { return &tpcCoordinator{buggy: buggy} })
			r.MustRegister("TPCParticipant", func() psharp.Machine { return &tpcParticipant{} })
			r.MustRegister("TPCChecker", func() psharp.Machine { return &tpcChecker{outcome: make(map[int]bool)} })
			r.MustRegister("TPCTimer", func() psharp.Machine { return &tpcTimer{} })
			r.MustRegister("TPCLogger", func() psharp.Machine { return &tpcLogger{} })
			checker := r.MustCreate("TPCChecker", nil)
			coord := r.MustCreate("TPCCoordinator", nil)
			timer := r.MustCreate("TPCTimer", nil)
			logger := r.MustCreate("TPCLogger", nil)
			mustSend(r, timer, &tpcTimerConfig{Coordinator: coord})
			mustSend(r, logger, &tpcTimerConfig{Coordinator: coord})
			parts := make([]psharp.MachineID, numParticipants)
			for i := range parts {
				parts[i] = r.MustCreate("TPCParticipant", nil)
				mustSend(r, parts[i], &tpcParticipantConfig{Coordinator: coord, Checker: checker})
			}
			mustSend(r, coord, &tpcCoordinatorConfig{
				Participants: parts, Timer: timer, Logger: logger, Transactions: transactions,
			})
		},
		Monitors: func(r *psharp.Runtime) {
			r.MustRegisterMonitor("Atomicity", func() psharp.Machine {
				return &tpcAtomicityMonitor{outcome: make(map[int]bool)}
			})
		},
	}
}
