package protocols

import "github.com/psharp-go/psharp"

// TwoPhaseCommitFT is the crash-tolerant variant of the two-phase commit
// protocol, built for fault-injection exploration (sct.FaultOptions,
// psharp-test -faults): a coordinator that persists every decision in a
// write-ahead log machine and recovers from crashes by replaying the log.
// The log machine models stable storage and is therefore fault-immune
// (Benchmark.FaultImmune); everything else — the coordinator and the
// participants — may be crashed, and their messages dropped, duplicated or
// reordered, by the strategy.
//
// All machines take their configuration as the creation payload, so a
// crash-with-restart reboots them through the same configuration; the
// coordinator's first act after (re)boot is to ask the log what was already
// decided.
//
// The correct coordinator follows the write-ahead discipline: log the
// decision, announce it to participants only once the log acknowledges
// (with the value the log actually holds), and on recovery re-announce
// every logged decision before resuming. The buggy variant announces the
// decision to participants *before* persisting it — harmless in every
// fault-free schedule (the announced and logged values always agree), but
// a crash between the announcement sends and the log append loses the
// decision: recovery re-runs the transaction, the participants vote
// afresh, and the re-run can decide differently than what the first
// participant already heard. The FTAtomicity monitor (same shape as
// TwoPhaseCommit's) observes every outcome report and flags the
// divergence. The bug is unreachable without a crash fault, which is what
// makes this benchmark the acceptance case for fault injection.

type ftCoordConfig struct {
	psharp.EventBase
	Participants []psharp.MachineID
	Log          psharp.MachineID
	Transactions int
}

type ftPartConfig struct {
	psharp.EventBase
	Log psharp.MachineID
}

type ftPrepare struct {
	psharp.EventBase
	Tx   int
	From psharp.MachineID
}

type ftVote struct {
	psharp.EventBase
	Tx     int
	Commit bool
	From   psharp.MachineID
}

type ftDecide struct {
	psharp.EventBase
	Tx     int
	Commit bool
}

// ftAppend asks the log to persist a decision; the log acknowledges with
// the value it holds (first write wins).
type ftAppend struct {
	psharp.EventBase
	Tx     int
	Commit bool
	From   psharp.MachineID
}

type ftAppendAck struct {
	psharp.EventBase
	Tx     int
	Commit bool
}

type ftRecoverReq struct {
	psharp.EventBase
	From psharp.MachineID
}

type ftRecoverResp struct {
	psharp.EventBase
	Decided []ftLogEntry
	Next    int
}

type ftLogEntry struct {
	Tx     int
	Commit bool
}

// ftOutcome is a participant's report that it applied a decision; it goes
// to the log machine (which ignores it) purely so the FTAtomicity monitor
// observes the send on an immune, always-alive target.
type ftOutcome struct {
	psharp.EventBase
	Tx     int
	Commit bool
	From   psharp.MachineID
}

// ftLog models stable storage: a first-write-wins per-transaction decision
// log. It is registered fault-immune, so appends and recovery reads never
// crash, drop or duplicate — exactly the reliability contract of a local
// disk in the crash-failure model.
type ftLog struct {
	psharp.StaticBase
	decided map[int]bool
	order   []ftLogEntry
	next    int
}

func (*ftLog) ConfigureType(sc *psharp.Schema) {
	sc.Start("Logging").
		OnEventDoM(&ftAppend{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*ftLog)
			a := ev.(*ftAppend)
			commit, seen := l.decided[a.Tx]
			if !seen {
				commit = a.Commit
				l.decided[a.Tx] = commit
				l.order = append(l.order, ftLogEntry{Tx: a.Tx, Commit: commit})
				if a.Tx >= l.next {
					l.next = a.Tx + 1
				}
				ctx.Write("ft.log")
			}
			// Acknowledge with the *logged* value: a duplicate append for an
			// already-decided transaction learns the original decision.
			ctx.Send(a.From, &ftAppendAck{Tx: a.Tx, Commit: commit})
		}).
		OnEventDoM(&ftRecoverReq{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*ftLog)
			req := ev.(*ftRecoverReq)
			decided := make([]ftLogEntry, len(l.order))
			copy(decided, l.order)
			next := l.next
			if next == 0 {
				next = 1
			}
			ctx.Send(req.From, &ftRecoverResp{Decided: decided, Next: next})
		}).
		Ignore(&ftOutcome{})
}

// ftCoordinator drives the transactions. Its whole configuration arrives
// as the creation payload, so a restart re-enters Boot with the same
// configuration and recovers through the log.
type ftCoordinator struct {
	psharp.StaticBase
	participants []psharp.MachineID
	log          psharp.MachineID
	transactions int
	buggy        bool

	tx       int
	voted    map[psharp.MachineID]bool
	commitOK bool
}

func (probe *ftCoordinator) ConfigureType(sc *psharp.Schema) {
	// The configuration is the creation payload, delivered to the initial
	// entry action — on first boot and again on every crash-restart.
	sc.Start("Boot").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*ftCoordinator)
			cfg := ev.(*ftCoordConfig)
			c.participants = cfg.Participants
			c.log = cfg.Log
			c.transactions = cfg.Transactions
			ctx.Send(c.log, &ftRecoverReq{From: ctx.ID()})
			ctx.Goto("Recovering")
		})

	sc.State("Recovering").
		OnEventDoM(&ftRecoverResp{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*ftCoordinator)
			resp := ev.(*ftRecoverResp)
			// Re-announce every logged decision: a pre-crash announcement may
			// have reached only some participants (or none), and the dedupe in
			// the participants makes re-delivery harmless.
			for _, e := range resp.Decided {
				for _, p := range c.participants {
					ctx.Send(p, &ftDecide{Tx: e.Tx, Commit: e.Commit})
				}
			}
			c.tx = resp.Next
			ctx.Goto("Preparing")
		}).
		// Stale traffic from before a crash (or from an earlier recovery)
		// can drift in while waiting for the log.
		Ignore(&ftVote{}).
		Ignore(&ftAppendAck{})

	sc.State("Preparing").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*ftCoordinator)
			if c.tx > c.transactions {
				ctx.Goto("Done")
				return
			}
			c.voted = make(map[psharp.MachineID]bool, len(c.participants))
			c.commitOK = true
			for _, p := range c.participants {
				ctx.Send(p, &ftPrepare{Tx: c.tx, From: ctx.ID()})
			}
			ctx.Goto("WaitVotes")
		})

	waitVotes := sc.State("WaitVotes").
		Ignore(&ftAppendAck{}).
		Ignore(&ftRecoverResp{})
	waitVotes.OnEventDoM(&ftVote{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		c := m.(*ftCoordinator)
		v := ev.(*ftVote)
		if v.Tx != c.tx {
			return // stale vote from a pre-crash round
		}
		if c.voted[v.From] {
			return // duplicated vote (message duplication fault)
		}
		c.voted[v.From] = true
		if !v.Commit {
			c.commitOK = false
		}
		if len(c.voted) < len(c.participants) {
			return
		}
		if probe.buggy {
			// BUG: announce the decision before it is persisted. A crash
			// between these sends and the append below loses the decision;
			// recovery re-runs the transaction and can decide differently
			// than what the participants already heard.
			for _, p := range c.participants {
				ctx.Send(p, &ftDecide{Tx: c.tx, Commit: c.commitOK})
			}
		}
		ctx.Send(c.log, &ftAppend{Tx: c.tx, Commit: c.commitOK, From: ctx.ID()})
		ctx.Goto("AwaitAck")
	})

	awaitAck := sc.State("AwaitAck").
		Ignore(&ftVote{}).
		Ignore(&ftRecoverResp{})
	awaitAck.OnEventDoM(&ftAppendAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		c := m.(*ftCoordinator)
		a := ev.(*ftAppendAck)
		if a.Tx != c.tx {
			return // duplicated ack from an earlier transaction
		}
		if !probe.buggy {
			// Correct write-ahead order: announce only once logged, and
			// announce the value the log acknowledged.
			for _, p := range c.participants {
				ctx.Send(p, &ftDecide{Tx: a.Tx, Commit: a.Commit})
			}
		}
		c.tx++
		ctx.Goto("Preparing")
	})

	sc.State("Done").
		Ignore(&ftVote{}).
		Ignore(&ftAppendAck{}).
		Ignore(&ftRecoverResp{})
}

// ftParticipant votes nondeterministically on every prepare and applies
// decisions at most once per transaction, reporting each application to
// the log (where the FTAtomicity monitor observes it).
type ftParticipant struct {
	psharp.StaticBase
	log     psharp.MachineID
	applied map[int]bool
}

func (*ftParticipant) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*ftParticipant).log = ev.(*ftPartConfig).Log
			ctx.Goto("Working")
		})
	sc.State("Working").
		OnEventDoM(&ftPrepare{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			prep := ev.(*ftPrepare)
			ctx.Send(prep.From, &ftVote{Tx: prep.Tx, Commit: ctx.RandomBool(), From: ctx.ID()})
		}).
		OnEventDoM(&ftDecide{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*ftParticipant)
			d := ev.(*ftDecide)
			if p.applied[d.Tx] {
				return // duplicate delivery or recovery re-announcement
			}
			p.applied[d.Tx] = true
			ctx.Write("ft.participant")
			ctx.Send(p.log, &ftOutcome{Tx: d.Tx, Commit: d.Commit, From: ctx.ID()})
		})
}

// ftAtomicityMonitor asserts that every outcome reported for one
// transaction carries the same decision, across crashes and restarts. Like
// tpcAtomicityMonitor it observes the ftOutcome sends directly, so it adds
// no machine and no scheduling points.
type ftAtomicityMonitor struct {
	psharp.StaticBase
	outcome map[int]bool
}

func (*ftAtomicityMonitor) ConfigureType(sc *psharp.Schema) {
	sc.Start("Observing").
		OnEventDoM(&ftOutcome{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			mon := m.(*ftAtomicityMonitor)
			o := ev.(*ftOutcome)
			prev, seen := mon.outcome[o.Tx]
			if !seen {
				mon.outcome[o.Tx] = o.Commit
				return
			}
			if prev != o.Commit {
				ctx.Assert(false,
					"atomicity violated for tx %d: %s applied commit=%v, an earlier participant applied %v",
					o.Tx, o.From, o.Commit, prev)
			}
		})
}

func twoPhaseCommitFTBenchmark(buggy bool) Benchmark {
	const numParticipants = 2
	const transactions = 2
	return Benchmark{
		Name:     "TwoPhaseCommitFT",
		Buggy:    buggy,
		MaxSteps: 1000,
		Machines: numParticipants + 2,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("FTLog", func() psharp.Machine {
				return &ftLog{decided: make(map[int]bool)}
			})
			r.MustRegister("FTParticipant", func() psharp.Machine {
				return &ftParticipant{applied: make(map[int]bool)}
			})
			r.MustRegister("FTCoordinator", func() psharp.Machine {
				return &ftCoordinator{buggy: buggy}
			})
			log := r.MustCreate("FTLog", nil)
			parts := make([]psharp.MachineID, numParticipants)
			for i := range parts {
				parts[i] = r.MustCreate("FTParticipant", &ftPartConfig{Log: log})
			}
			r.MustCreate("FTCoordinator", &ftCoordConfig{
				Participants: parts, Log: log, Transactions: transactions,
			})
		},
		Monitors: func(r *psharp.Runtime) {
			r.MustRegisterMonitor("FTAtomicity", func() psharp.Machine {
				return &ftAtomicityMonitor{outcome: make(map[int]bool)}
			})
		},
		FaultImmune: []string{"FTLog"},
	}
}
