package protocols

import (
	"testing"

	"github.com/psharp-go/psharp/sct"
)

// TestTable2Shape is a regression test for the qualitative shape of the
// paper's Table 2 (scaled down to 1,000 random / 2,000 DFS schedules so it
// stays test-suite fast; the bench harness runs the full budgets):
//
//   - the DFS scheduler finds the Chord, MultiPaxos and ChainReplication
//     bugs on the first schedule, and misses all the others;
//   - the random scheduler finds every bug, with ChainReplication and
//     MultiPaxos near-certain, BasicPaxos frequent, German and Chord
//     moderate, BoundedAsync occasional, and TwoPhaseCommit and Raft rare.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape measurement is skipped in -short mode")
	}
	firstScheduleBugs := map[string]bool{
		"Chord": true, "MultiPaxos": true, "ChainReplication": true,
	}
	// Loose %buggy bands: [lo, hi] per benchmark (paper's values in
	// comments). The bands are wide on purpose; the ordering is the claim.
	bands := map[string][2]float64{
		"BoundedAsync":     {2, 30},   // paper: 6%
		"German":           {10, 60},  // paper: 22%
		"BasicPaxos":       {40, 95},  // paper: 83%
		"TwoPhaseCommit":   {0.5, 15}, // paper: 3%
		"Chord":            {10, 60},  // paper: 35%
		"MultiPaxos":       {70, 100}, // paper: 89%
		"Raft":             {0.1, 10}, // paper: 2%
		"ChainReplication": {80, 100}, // paper: 100%
	}
	for _, name := range Names() {
		b, ok := ByName(name, true)
		if !ok {
			continue
		}
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			rnd := sct.Run(b.Setup, sct.Options{
				Strategy:      sct.NewRandom(7),
				Iterations:    1000,
				MaxSteps:      b.MaxSteps,
				LivelockAsBug: b.LivelockAsBug,
			})
			if !rnd.BugFound() {
				t.Fatalf("random scheduler missed the bug entirely")
			}
			band := bands[b.Name]
			if got := rnd.PercentBuggy(); got < band[0] || got > band[1] {
				t.Errorf("random %%buggy = %.1f, want within [%.1f, %.1f]", got, band[0], band[1])
			}

			dfs := sct.Run(b.Setup, sct.Options{
				Strategy:       sct.NewDFS(),
				Iterations:     2000,
				MaxSteps:       b.MaxSteps,
				StopOnFirstBug: true,
				LivelockAsBug:  b.LivelockAsBug,
			})
			if firstScheduleBugs[b.Name] {
				if !dfs.BugFound() || dfs.FirstBugIteration != 0 {
					t.Errorf("DFS: want bug on the first schedule, got found=%v at iteration %d",
						dfs.BugFound(), dfs.FirstBugIteration)
				}
			} else if dfs.BugFound() {
				t.Errorf("DFS: found the bug at iteration %d; the paper's DFS misses this benchmark",
					dfs.FirstBugIteration)
			}
			t.Logf("random %%buggy=%.1f, DFS found=%v", rnd.PercentBuggy(), dfs.BugFound())
		})
	}
}
