package protocols

import (
	"sort"

	"github.com/psharp-go/psharp"
)

// German's cache coherence protocol (paper reference [10], ported from the
// P benchmark suite): a directory (host) machine serializes coherence
// requests from client machines. Clients ask for shared or exclusive access
// (chosen nondeterministically), use the granted copy, and explicitly
// release it; before granting exclusive access the host invalidates every
// current sharer and the owner, and waits for their acknowledgements. The
// safety property is the host-side coherence invariant: an exclusive grant
// requires no remaining sharers or owner, and a shared grant requires no
// owner.
//
// The buggy variant carries the two bugs the paper found in this benchmark
// (Section 7.2.2), both of which require genuinely concurrent holders and
// in-flight releases, so near-sequential schedules (the early DFS
// iterations) never trigger them:
//
//   - an assertion violation: when the host must invalidate three or more
//     targets at once, an off-by-one drops the last target from its
//     tracking set, so exclusive access is granted while one sharer has not
//     acknowledged;
//   - a livelock: a client whose release is still in flight can receive a
//     stale invalidation while it is already waiting for its next grant;
//     instead of acknowledging, the buggy client responds by sending a
//     retry event to itself forever ("stuck in an infinite loop
//     continuously sending an event to itself"), which also starves the
//     host of the acknowledgement it is waiting for.

type gerConfig struct {
	psharp.EventBase
	Host   psharp.MachineID
	Rounds int
}

type gerReqShared struct {
	psharp.EventBase
	Client psharp.MachineID
}

type gerReqExcl struct {
	psharp.EventBase
	Client psharp.MachineID
}

type gerGrantShared struct{ psharp.EventBase }

type gerGrantExcl struct{ psharp.EventBase }

type gerInvalidate struct{ psharp.EventBase }

type gerInvAck struct {
	psharp.EventBase
	Client psharp.MachineID
}

type gerRelease struct {
	psharp.EventBase
	Client psharp.MachineID
}

type gerNext struct{ psharp.EventBase }

// gerThink paces a client between rounds through its own queue.
type gerThink struct {
	psharp.EventBase
	Left int
}

type gerSpin struct{ psharp.EventBase }

// gerDetach is a finished client's sign-off handshake with the host.
type gerDetach struct {
	psharp.EventBase
	Client psharp.MachineID
}

type gerDetachAck struct{ psharp.EventBase }

// gerHost is the directory. The sharers map is per-instance state, so the
// factory initializes it; the off-by-one bug is a runtime branch on the
// buggy instance field, so both variants share one schema.
type gerHost struct {
	psharp.StaticBase
	sharers map[psharp.MachineID]bool
	owner   psharp.MachineID
	buggy   bool

	pendingClient psharp.MachineID
	pendingExcl   bool
	waiting       map[psharp.MachineID]bool
}

func (*gerHost) ConfigureType(sc *psharp.Schema) {
	idle := sc.Start("Idle")
	idle.OnEventDoM(&gerReqShared{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		h := m.(*gerHost)
		c := ev.(*gerReqShared).Client
		if !h.owner.IsNil() {
			ctx.Send(h.owner, &gerInvalidate{})
			h.beginInvalidation(ctx, c, false, []psharp.MachineID{h.owner})
			return
		}
		h.grantShared(ctx, c)
	})
	idle.OnEventDoM(&gerReqExcl{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		h := m.(*gerHost)
		c := ev.(*gerReqExcl).Client
		targets := h.invalidationTargets(c)
		if len(targets) == 0 {
			h.grantExclusive(ctx, c)
			return
		}
		for _, t := range targets {
			ctx.Send(t, &gerInvalidate{})
		}
		h.beginInvalidation(ctx, c, true, targets)
	})
	idle.OnEventDoM(&gerRelease{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		m.(*gerHost).release(ev.(*gerRelease).Client)
	})
	idle.OnEventDoM(&gerDetach{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		c := ev.(*gerDetach).Client
		m.(*gerHost).release(c)
		ctx.Send(c, &gerDetachAck{})
	})
	// Acknowledgements for invalidations answered by clients that had
	// already released can trickle in while the host is idle.
	idle.OnEventDoM(&gerInvAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		m.(*gerHost).release(ev.(*gerInvAck).Client)
	})

	ackOrRelease := func(h *gerHost, ctx *psharp.Context, c psharp.MachineID) {
		h.release(c)
		if !h.waiting[c] {
			return
		}
		delete(h.waiting, c)
		ctx.Write("host.waiting")
		if len(h.waiting) > 0 {
			return
		}
		if h.pendingExcl {
			h.grantExclusive(ctx, h.pendingClient)
		} else {
			h.grantShared(ctx, h.pendingClient)
		}
		ctx.Goto("Idle")
	}

	sc.State("WaitAcks").
		Defer(&gerReqShared{}).
		Defer(&gerReqExcl{}).
		Defer(&gerDetach{}).
		OnEventDoM(&gerInvAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ackOrRelease(m.(*gerHost), ctx, ev.(*gerInvAck).Client)
		}).
		OnEventDoM(&gerRelease{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			// A release that raced with our invalidation drops the copy,
			// but the invalidation is still in flight and its
			// acknowledgement still settles the wait — settling here would
			// let a stale acknowledgement leak into a later round.
			m.(*gerHost).release(ev.(*gerRelease).Client)
		})
}

func (h *gerHost) beginInvalidation(ctx *psharp.Context, client psharp.MachineID, excl bool, targets []psharp.MachineID) {
	h.pendingClient = client
	h.pendingExcl = excl
	h.waiting = make(map[psharp.MachineID]bool)
	tracked := targets
	if h.buggy && len(targets) > 2 {
		// Off-by-one: with three or more concurrent invalidation targets
		// the last one is dropped from the tracking set, so its
		// acknowledgement is never awaited.
		tracked = targets[:len(targets)-1]
	}
	for _, t := range tracked {
		h.waiting[t] = true
	}
	ctx.Goto("WaitAcks")
}

func (h *gerHost) invalidationTargets(requester psharp.MachineID) []psharp.MachineID {
	var out []psharp.MachineID
	if !h.owner.IsNil() && h.owner != requester {
		out = append(out, h.owner)
	}
	sharers := make([]psharp.MachineID, 0, len(h.sharers))
	for c := range h.sharers {
		if c != requester {
			sharers = append(sharers, c)
		}
	}
	sort.Slice(sharers, func(i, j int) bool { return sharers[i].Seq < sharers[j].Seq })
	h.release(requester) // an upgrade request implicitly releases
	return append(out, sharers...)
}

func (h *gerHost) release(c psharp.MachineID) {
	delete(h.sharers, c)
	if h.owner == c {
		h.owner = psharp.MachineID{}
	}
}

func (h *gerHost) grantShared(ctx *psharp.Context, c psharp.MachineID) {
	h.release(c)
	ctx.Assert(h.owner.IsNil(), "shared grant to %s while %s holds exclusive access", c, h.owner)
	h.sharers[c] = true
	ctx.Send(c, &gerGrantShared{})
}

func (h *gerHost) grantExclusive(ctx *psharp.Context, c psharp.MachineID) {
	h.release(c)
	ctx.Assert(len(h.sharers) == 0 && h.owner.IsNil(),
		"exclusive grant to %s while %d sharers remain (owner %s)", c, len(h.sharers), h.owner)
	h.owner = c
	ctx.Send(c, &gerGrantExcl{})
}

// gerClient requests access for a number of rounds and then stops.
type gerClient struct {
	psharp.StaticBase
	host     psharp.MachineID
	rounds   int
	buggy    bool
	heldExcl bool // the most recent grant was exclusive
}

func (*gerClient) ConfigureType(sc *psharp.Schema) {
	ackInvalidate := func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		ctx.Send(m.(*gerClient).host, &gerInvAck{Client: ctx.ID()})
	}
	// staleInvalidate handles an invalidation that raced with this client's
	// release: the correct client acknowledges it; the buggy one has the
	// mistake in its exclusive-copy (writer) teardown path, where it spins
	// on a self-sent retry event forever instead. The variants share one
	// schema; the mistake is a runtime branch on the buggy instance field.
	staleInvalidate := func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		c := m.(*gerClient)
		if c.buggy && c.heldExcl {
			ctx.Send(ctx.ID(), &gerSpin{})
			return
		}
		ackInvalidate(m, ctx, ev)
	}
	spin := func(ctx *psharp.Context, ev psharp.Event) {
		ctx.Send(ctx.ID(), &gerSpin{})
	}

	sc.Start("Boot").
		OnEventDoM(&gerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*gerClient)
			cfg := ev.(*gerConfig)
			c.host = cfg.Host
			c.rounds = cfg.Rounds
			ctx.Goto("Deciding")
		})

	sc.State("Deciding").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*gerClient)
			if c.rounds == 0 {
				ctx.Send(c.host, &gerDetach{Client: ctx.ID()})
				ctx.Goto("Detaching")
				return
			}
			// Think for a couple of beats between rounds, so the clients'
			// requests spread out in time as real workloads do.
			ctx.Send(ctx.ID(), &gerThink{Left: 2})
		}).
		OnEventDoM(&gerThink{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*gerClient)
			t := ev.(*gerThink)
			if t.Left > 1 {
				ctx.Send(ctx.ID(), &gerThink{Left: t.Left - 1})
				return
			}
			c.rounds--
			// Exclusive access is the rarer request, as in real caches.
			if ctx.RandomInt(4) == 0 {
				ctx.Send(c.host, &gerReqExcl{Client: ctx.ID()})
				ctx.Goto("AskedExcl")
			} else {
				ctx.Send(c.host, &gerReqShared{Client: ctx.ID()})
				ctx.Goto("AskedShared")
			}
		}).
		OnEventDoM(&gerInvalidate{}, ackInvalidate).
		Ignore(&gerNext{})

	asked := func(name string, grantProto psharp.Event, target string) {
		b := sc.State(name)
		b.OnEventGoto(grantProto, target)
		b.OnEventDoM(&gerInvalidate{}, ackInvalidate)
		b.Ignore(&gerNext{})
	}
	asked("AskedShared", &gerGrantShared{}, "HaveShared")
	asked("AskedExcl", &gerGrantExcl{}, "HaveExcl")

	have := func(name, access string) {
		sc.State(name).
			OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
				m.(*gerClient).heldExcl = access == "write"
				if access == "write" {
					ctx.Write("the.cache.line")
				} else {
					ctx.Read("the.cache.line")
				}
				ctx.Send(ctx.ID(), &gerNext{}) // done using the copy
			}).
			OnEventDoM(&gerInvalidate{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
				ackInvalidate(m, ctx, ev)
				ctx.Goto("Deciding")
			}).
			OnEventDoM(&gerNext{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
				ctx.Send(m.(*gerClient).host, &gerRelease{Client: ctx.ID()})
				ctx.Goto("Deciding")
			})
	}
	have("HaveShared", "read")
	have("HaveExcl", "write")

	// While detaching, an invalidation for the copy this client just gave
	// up can still be in flight: the correct client acknowledges it (the
	// host is waiting!), the buggy one spins forever.
	sc.State("Detaching").
		OnEventGoto(&gerDetachAck{}, "Done").
		OnEventDoM(&gerInvalidate{}, staleInvalidate).
		OnEventDo(&gerSpin{}, spin).
		Ignore(&gerNext{})

	sc.State("Done").
		Ignore(&gerNext{}).
		OnEventDoM(&gerInvalidate{}, ackInvalidate)
}

func germanBenchmark(buggy bool) Benchmark {
	const numClients = 4
	const rounds = 2
	return Benchmark{
		Name:          "German",
		Buggy:         buggy,
		MaxSteps:      3000,
		Machines:      numClients + 1,
		LivelockAsBug: buggy,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("GermanHost", func() psharp.Machine {
				return &gerHost{buggy: buggy, sharers: make(map[psharp.MachineID]bool)}
			})
			r.MustRegister("GermanClient", func() psharp.Machine { return &gerClient{buggy: buggy} })
			host := r.MustCreate("GermanHost", nil)
			for i := 0; i < numClients; i++ {
				client := r.MustCreate("GermanClient", nil)
				mustSend(r, client, &gerConfig{Host: host, Rounds: rounds})
			}
		},
	}
}
