package protocols

import (
	"sort"

	"github.com/psharp-go/psharp"
)

// MultiPaxos (paper reference [5], ported from the P benchmark suite): a
// multi-slot variant of Paxos in which a leader establishes a ballot with
// phase 1 once and then streams phase-2 accepts for a sequence of slots. A
// failure-detector machine — nondeterministic environment, as the paper
// models it — eventually tells a standby leader to take over with a higher
// ballot. Acceptors report accepted (slot, ballot, value) triples to a
// learner that asserts the per-slot safety property: a slot is never chosen
// with two different values.
//
// The paper injected an artificial bug here; ours is the classic
// leader-takeover mistake: the buggy leader ignores the accepted values
// reported in the promises it gathers and re-proposes its own values for
// slots that may already be chosen. The violation occurs in (almost) every
// schedule in which the takeover happens after the first leader made
// progress — including the default schedule, which is why the paper's DFS
// and CHESS find it on the first schedule, and why 89% of random schedules
// are buggy.

type mpSlotVal struct {
	Slot   int
	Ballot int
	Value  int
}

type mpLeaderConfig struct {
	psharp.EventBase
	Acceptors []psharp.MachineID
	BallotOff int
	Values    []int // values to propose for slots 1..len(Values)
	Active    bool  // the initial leader starts immediately
}

type mpAcceptorConfig struct {
	psharp.EventBase
	Learner psharp.MachineID
}

type mpDetectorConfig struct {
	psharp.EventBase
	Standby psharp.MachineID
}

type mpPrepare struct {
	psharp.EventBase
	Ballot int
	Leader psharp.MachineID
}

type mpPromise struct {
	psharp.EventBase
	Ballot   int
	Accepted []mpSlotVal
}

type mpNack struct {
	psharp.EventBase
	Ballot   int
	Promised int
}

type mpAccept struct {
	psharp.EventBase
	Slot   int
	Ballot int
	Value  int
	Leader psharp.MachineID
}

type mpAccepted struct {
	psharp.EventBase
	Slot   int
	Ballot int
	Value  int
}

type mpTakeOver struct{ psharp.EventBase }

type mpTick struct{ psharp.EventBase }

type mpAcceptor struct {
	psharp.StaticBase
	learner  psharp.MachineID
	promised int
	accepted map[int]mpSlotVal
}

func (*mpAcceptor) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&mpPrepare{}).
		Defer(&mpAccept{}).
		OnEventDoM(&mpAcceptorConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*mpAcceptor).learner = ev.(*mpAcceptorConfig).Learner
			ctx.Goto("Active")
		})
	sc.State("Active").
		OnEventDoM(&mpPrepare{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			a := m.(*mpAcceptor)
			p := ev.(*mpPrepare)
			if p.Ballot <= a.promised {
				ctx.Send(p.Leader, &mpNack{Ballot: p.Ballot, Promised: a.promised})
				return
			}
			a.promised = p.Ballot
			ctx.Write("acceptor.promised")
			// Snapshot the accepted state in slot order: the promise is a
			// fresh copy, so the leader cannot alias the acceptor's map.
			slots := make([]int, 0, len(a.accepted))
			for s := range a.accepted {
				slots = append(slots, s)
			}
			sort.Ints(slots)
			snap := make([]mpSlotVal, 0, len(slots))
			for _, s := range slots {
				snap = append(snap, a.accepted[s])
			}
			ctx.Send(p.Leader, &mpPromise{Ballot: p.Ballot, Accepted: snap})
		}).
		OnEventDoM(&mpAccept{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			a := m.(*mpAcceptor)
			acc := ev.(*mpAccept)
			if acc.Ballot < a.promised {
				ctx.Send(acc.Leader, &mpNack{Ballot: acc.Ballot, Promised: a.promised})
				return
			}
			a.promised = acc.Ballot
			a.accepted[acc.Slot] = mpSlotVal{Slot: acc.Slot, Ballot: acc.Ballot, Value: acc.Value}
			ctx.Write("acceptor.accepted")
			ctx.Send(a.learner, &mpAccepted{Slot: acc.Slot, Ballot: acc.Ballot, Value: acc.Value})
		})
}

type mpLeader struct {
	psharp.StaticBase
	acceptors []psharp.MachineID
	ballotOff int
	values    []int
	buggy     bool

	round    int
	retries  int
	ballot   int
	promises int
	majority int
	adopted  map[int]mpSlotVal
}

func (*mpLeader) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&mpTakeOver{}).
		OnEventDoM(&mpLeaderConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*mpLeader)
			cfg := ev.(*mpLeaderConfig)
			l.acceptors = cfg.Acceptors
			l.ballotOff = cfg.BallotOff
			l.values = cfg.Values
			l.retries = 2
			l.majority = len(l.acceptors)/2 + 1
			if cfg.Active {
				ctx.Goto("Phase1")
			} else {
				ctx.Goto("Standby")
			}
		})

	sc.State("Standby").
		OnEventGoto(&mpTakeOver{}, "Phase1")

	sc.State("Phase1").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*mpLeader)
			l.round++
			l.ballot = l.round*10 + l.ballotOff
			l.promises = 0
			l.adopted = make(map[int]mpSlotVal)
			for _, a := range l.acceptors {
				ctx.Send(a, &mpPrepare{Ballot: l.ballot, Leader: ctx.ID()})
			}
		}).
		OnEventDoM(&mpPromise{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*mpLeader)
			pr := ev.(*mpPromise)
			if pr.Ballot != l.ballot {
				return
			}
			l.promises++
			for _, sv := range pr.Accepted {
				if best, ok := l.adopted[sv.Slot]; !ok || sv.Ballot > best.Ballot {
					l.adopted[sv.Slot] = sv
				}
			}
			if l.promises == l.majority {
				l.streamAccepts(ctx)
			}
		}).
		OnEventDoM(&mpNack{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*mpLeader)
			if ev.(*mpNack).Ballot != l.ballot {
				return
			}
			l.retry(ctx)
		}).
		Ignore(&mpTakeOver{})

	sc.State("Streaming").
		OnEventDoM(&mpNack{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			l := m.(*mpLeader)
			if ev.(*mpNack).Ballot != l.ballot {
				return
			}
			l.retry(ctx)
		}).
		Ignore(&mpPromise{}).
		Ignore(&mpTakeOver{})

	sc.State("Done").
		Ignore(&mpPromise{}).
		Ignore(&mpNack{}).
		Ignore(&mpTakeOver{})
}

// streamAccepts sends phase-2 accepts for every slot: adopted values first
// (unless buggy), then this leader's own values.
func (l *mpLeader) streamAccepts(ctx *psharp.Context) {
	propose := make(map[int]int)
	for i, v := range l.values {
		propose[i+1] = v
	}
	if !l.buggy {
		// The takeover rule MultiPaxos lives by: slots reported accepted in
		// the promise quorum keep their (highest-ballot) value. The buggy
		// leader skips this and clobbers them with its own proposals.
		for slot, sv := range l.adopted {
			propose[slot] = sv.Value
		}
	}
	slots := make([]int, 0, len(propose))
	for s := range propose {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		for _, a := range l.acceptors {
			ctx.Send(a, &mpAccept{Slot: s, Ballot: l.ballot, Value: propose[s], Leader: ctx.ID()})
		}
	}
	ctx.Goto("Streaming")
}

func (l *mpLeader) retry(ctx *psharp.Context) {
	if l.retries == 0 {
		ctx.Goto("Done")
		return
	}
	l.retries--
	ctx.Goto("Phase1")
}

type mpLearner struct {
	psharp.StaticBase
	majority int
	counts   map[[2]int]int // (slot, ballot) -> acceptor count
	chosen   map[int]int    // slot -> chosen value
}

type mpLearnerConfig struct {
	psharp.EventBase
	NumAcceptors int
}

func (*mpLearner) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&mpAccepted{}).
		OnEventDoM(&mpLearnerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*mpLearner).majority = ev.(*mpLearnerConfig).NumAcceptors/2 + 1
			ctx.Goto("Learning")
		})
	sc.State("Learning").
		OnEventDoM(&mpAccepted{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ln := m.(*mpLearner)
			acc := ev.(*mpAccepted)
			key := [2]int{acc.Slot, acc.Ballot}
			ln.counts[key]++
			ctx.Write("learner.chosen")
			if ln.counts[key] < ln.majority {
				return
			}
			if prev, ok := ln.chosen[acc.Slot]; ok {
				ctx.Assert(prev == acc.Value,
					"slot %d chosen twice with different values: %d then %d (ballot %d)",
					acc.Slot, prev, acc.Value, acc.Ballot)
				return
			}
			ln.chosen[acc.Slot] = acc.Value
		})
}

// mpDetector is the nondeterministic failure detector: after a random number
// of self-paced ticks it tells the standby leader to take over.
type mpDetector struct {
	psharp.StaticBase
	standby psharp.MachineID
	ticks   int
}

func (*mpDetector) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDoM(&mpDetectorConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*mpDetector)
			d.standby = ev.(*mpDetectorConfig).Standby
			d.ticks = 3
			ctx.Send(ctx.ID(), &mpTick{})
			ctx.Goto("Watching")
		})
	sc.State("Watching").
		OnEventDoM(&mpTick{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*mpDetector)
			d.ticks--
			if d.ticks == 0 || ctx.RandomBool() {
				ctx.Send(d.standby, &mpTakeOver{})
				ctx.Halt()
				return
			}
			ctx.Send(ctx.ID(), &mpTick{})
		})
}

func multiPaxosBenchmark(buggy bool) Benchmark {
	const numAcceptors = 3
	return Benchmark{
		Name:     "MultiPaxos",
		Buggy:    buggy,
		MaxSteps: 3000,
		Machines: numAcceptors + 4,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("MPAcceptor", func() psharp.Machine {
				return &mpAcceptor{accepted: make(map[int]mpSlotVal)}
			})
			r.MustRegister("MPLeader", func() psharp.Machine { return &mpLeader{buggy: buggy} })
			r.MustRegister("MPLearner", func() psharp.Machine {
				return &mpLearner{counts: make(map[[2]int]int), chosen: make(map[int]int)}
			})
			r.MustRegister("MPDetector", func() psharp.Machine { return &mpDetector{} })
			learner := r.MustCreate("MPLearner", nil)
			mustSend(r, learner, &mpLearnerConfig{NumAcceptors: numAcceptors})
			acceptors := make([]psharp.MachineID, numAcceptors)
			for i := range acceptors {
				acceptors[i] = r.MustCreate("MPAcceptor", nil)
				mustSend(r, acceptors[i], &mpAcceptorConfig{Learner: learner})
			}
			primary := r.MustCreate("MPLeader", nil)
			standby := r.MustCreate("MPLeader", nil)
			detector := r.MustCreate("MPDetector", nil)
			mustSend(r, primary, &mpLeaderConfig{
				Acceptors: acceptors, BallotOff: 1, Values: []int{11, 12}, Active: true,
			})
			mustSend(r, standby, &mpLeaderConfig{
				Acceptors: acceptors, BallotOff: 2, Values: []int{21, 22}, Active: false,
			})
			mustSend(r, detector, &mpDetectorConfig{Standby: standby})
		},
	}
}
