package protocols

import "github.com/psharp-go/psharp"

// Chain replication (paper reference [26], ported from the P benchmark
// suite): a head → middle → tail chain of replica machines. A client pumps
// a stream of sequenced updates into the head; each replica applies an
// update and forwards it down the chain; the tail acknowledges to the head
// (which trims its unacknowledged-update list) and to the client. A
// failure-detector machine — the nondeterministic environment — kills the
// middle replica at a random point; a master machine then reconfigures the
// chain so the head forwards directly to the tail.
//
// The fault-tolerance obligation of chain replication (van Renesse &
// Schneider's Update Propagation Invariant) is that on reconfiguration the
// new predecessor re-sends its unacknowledged updates to its new successor;
// updates that died with the middle replica (in its queue, or sent to it
// after the crash) are thereby recovered. Two safety checks watch over
// this: the tail asserts it never observes a sequence gap, and after the
// reconfiguration the master audits the chain — it asks the head, which
// forwards the audit down its (new) successor path behind any re-sent
// updates, and the tail asserts it has seen everything the head accepted.
// The buggy variant forgets the re-send, so every schedule in which any
// update was in the doomed window fails the audit (or gaps). The crash is
// triggered by the tail's progress report plus a couple of coin flips, so —
// like the paper's version, whose bug "requires only one of several random
// binary choices" — essentially every random schedule is buggy and the
// default first schedule already fails under DFS and CHESS-like search.

type crServerConfig struct {
	psharp.EventBase
	Succ     psharp.MachineID // zero for the tail
	Head     psharp.MachineID
	Client   psharp.MachineID
	Detector psharp.MachineID
}

type crClientConfig struct {
	psharp.EventBase
	Head   psharp.MachineID
	Writes int
}

type crMasterConfig struct {
	psharp.EventBase
	Head psharp.MachineID
	Tail psharp.MachineID
}

type crDetectorConfig struct {
	psharp.EventBase
	Mid    psharp.MachineID
	Master psharp.MachineID
}

type crWrite struct {
	psharp.EventBase
	Seq int
	Val int
}

type crUpdate struct {
	psharp.EventBase
	Seq int
	Val int
}

type crAck struct {
	psharp.EventBase
	Seq int
}

type crFail struct{ psharp.EventBase }

type crMidFailed struct{ psharp.EventBase }

type crNewConfig struct {
	psharp.EventBase
	Succ psharp.MachineID
}

type crPump struct{ psharp.EventBase }

// crObserved is the tail's progress report to the failure detector.
type crObserved struct {
	psharp.EventBase
	Seq int
}

// crAudit asks the head to verify the chain end to end.
type crAudit struct{ psharp.EventBase }

// crAuditChk travels down the head's successor path, behind any re-sent
// updates, and carries the highest sequence number the head accepted.
type crAuditChk struct {
	psharp.EventBase
	Expect int
}

// crHead is the chain's head replica. The seeded bug is a runtime branch on
// the buggy instance field, so both variants share one schema.
type crHead struct {
	psharp.StaticBase
	succ    psharp.MachineID
	buggy   bool
	lastSeq int
	unacked []crUpdate
}

func (*crHead) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&crWrite{}).
		OnEventDoM(&crServerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*crHead).succ = ev.(*crServerConfig).Succ
			ctx.Goto("Serving")
		})
	sc.State("Serving").
		OnEventDoM(&crWrite{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			h := m.(*crHead)
			w := ev.(*crWrite)
			u := crUpdate{Seq: w.Seq, Val: w.Val}
			h.unacked = append(h.unacked, u)
			h.lastSeq = w.Seq
			ctx.Write("head.history")
			ctx.Send(h.succ, &crUpdate{Seq: u.Seq, Val: u.Val})
		}).
		OnEventDoM(&crAudit{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			h := m.(*crHead)
			// The check rides the same successor path as the updates, so it
			// arrives at the tail behind everything the head forwarded.
			ctx.Send(h.succ, &crAuditChk{Expect: h.lastSeq})
		}).
		OnEventDoM(&crAck{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			h := m.(*crHead)
			seq := ev.(*crAck).Seq
			for i, u := range h.unacked {
				if u.Seq == seq {
					h.unacked = append(h.unacked[:i], h.unacked[i+1:]...)
					break
				}
			}
		}).
		OnEventDoM(&crNewConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			h := m.(*crHead)
			h.succ = ev.(*crNewConfig).Succ
			if h.buggy {
				// The seeded bug: the Update Propagation Invariant is not
				// restored — updates that died with the middle replica are
				// never re-sent.
				return
			}
			for _, u := range h.unacked {
				ctx.Send(h.succ, &crUpdate{Seq: u.Seq, Val: u.Val})
			}
		})
}

// crMid is the middle replica; it can be crashed by the failure detector.
type crMid struct {
	psharp.StaticBase
	succ     psharp.MachineID
	detector psharp.MachineID
}

func (*crMid) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&crUpdate{}).
		Defer(&crFail{}).
		OnEventDoM(&crServerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			md := m.(*crMid)
			cfg := ev.(*crServerConfig)
			md.succ = cfg.Succ
			md.detector = cfg.Detector
			ctx.Goto("Serving")
		})
	sc.State("Serving").
		OnEventDoM(&crUpdate{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			md := m.(*crMid)
			u := ev.(*crUpdate)
			ctx.Write("mid.history")
			ctx.Send(md.succ, &crUpdate{Seq: u.Seq, Val: u.Val})
			if u.Seq >= 2 && !md.detector.IsNil() {
				// The failure detector watches this replica's own traffic,
				// so the crash always lands while the replica is active.
				ctx.Send(md.detector, &crObserved{Seq: u.Seq})
			}
		}).
		OnEventDo(&crFail{}, func(ctx *psharp.Context, ev psharp.Event) {
			// Crash: queued updates die with the replica; later sends to it
			// are dropped by the runtime.
			ctx.Halt()
		})
}

// crTail asserts the gap-free delivery invariant and the end-to-end audit,
// and acknowledges applied updates.
type crTail struct {
	psharp.StaticBase
	head     psharp.MachineID
	client   psharp.MachineID
	detector psharp.MachineID
	last     int
}

func (*crTail) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&crUpdate{}).
		Defer(&crAuditChk{}).
		OnEventDoM(&crServerConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			t := m.(*crTail)
			cfg := ev.(*crServerConfig)
			t.head = cfg.Head
			t.client = cfg.Client
			t.detector = cfg.Detector
			ctx.Goto("Serving")
		})
	sc.State("Serving").
		OnEventDoM(&crUpdate{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			t := m.(*crTail)
			u := ev.(*crUpdate)
			ctx.Assert(u.Seq <= t.last+1,
				"update propagation invariant violated: tail received seq %d after %d (gap of %d lost updates)",
				u.Seq, t.last, u.Seq-t.last-1)
			if u.Seq <= t.last {
				return // duplicate from re-propagation; drop
			}
			t.last = u.Seq
			ctx.Write("tail.history")
			ctx.Send(t.head, &crAck{Seq: u.Seq})
			ctx.Send(t.client, &crAck{Seq: u.Seq})
		}).
		OnEventDoM(&crAuditChk{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			t := m.(*crTail)
			chk := ev.(*crAuditChk)
			ctx.Assert(t.last == chk.Expect,
				"audit failed: head accepted up to seq %d but the tail only holds up to %d (%d updates lost)",
				chk.Expect, t.last, chk.Expect-t.last)
		})
}

// crClient pumps a fixed number of sequenced writes on a self-paced loop.
type crClient struct {
	psharp.StaticBase
	head   psharp.MachineID
	writes int
	seq    int
}

func (*crClient) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDoM(&crClientConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*crClient)
			cfg := ev.(*crClientConfig)
			c.head = cfg.Head
			c.writes = cfg.Writes
			ctx.Send(ctx.ID(), &crPump{})
			ctx.Goto("Pumping")
		})
	sc.State("Pumping").
		OnEventDoM(&crPump{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			c := m.(*crClient)
			// Writes go out in bursts of two, as a batching client would
			// send them, so the chain almost always has updates in flight.
			for i := 0; i < 2 && c.seq < c.writes; i++ {
				c.seq++
				ctx.Send(c.head, &crWrite{Seq: c.seq, Val: 100 + c.seq})
			}
			if c.seq < c.writes {
				ctx.Send(ctx.ID(), &crPump{})
			}
		}).
		Ignore(&crAck{})
}

// crMaster reconfigures the chain when the middle replica fails.
type crMaster struct {
	psharp.StaticBase
	head psharp.MachineID
	tail psharp.MachineID
}

func (*crMaster) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&crMidFailed{}).
		OnEventDoM(&crMasterConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ms := m.(*crMaster)
			cfg := ev.(*crMasterConfig)
			ms.head = cfg.Head
			ms.tail = cfg.Tail
			ctx.Goto("Watching")
		})
	sc.State("Watching").
		OnEventDoM(&crMidFailed{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ms := m.(*crMaster)
			ctx.Send(ms.head, &crNewConfig{Succ: ms.tail})
			ctx.Send(ms.head, &crAudit{})
		})
}

// crDetector kills the middle replica once the tail has made some progress,
// with a couple of coin flips deciding exactly when (the "several random
// binary choices" of the paper's description).
type crDetector struct {
	psharp.StaticBase
	mid    psharp.MachineID
	master psharp.MachineID
}

func (*crDetector) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		Defer(&crObserved{}).
		OnEventDoM(&crDetectorConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*crDetector)
			cfg := ev.(*crDetectorConfig)
			d.mid = cfg.Mid
			d.master = cfg.Master
			ctx.Goto("Waiting")
		})
	sc.State("Waiting").
		OnEventDoM(&crObserved{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*crDetector)
			seq := ev.(*crObserved).Seq
			if seq < 2 {
				return
			}
			if seq >= 3 || ctx.RandomBool() {
				ctx.Send(d.mid, &crFail{})
				ctx.Send(d.master, &crMidFailed{})
				ctx.Halt()
			}
		})
}

func chainReplicationBenchmark(buggy bool) Benchmark {
	const writes = 12
	return Benchmark{
		Name:     "ChainReplication",
		Buggy:    buggy,
		MaxSteps: 3000,
		Machines: 6,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("CRHead", func() psharp.Machine { return &crHead{buggy: buggy} })
			r.MustRegister("CRMid", func() psharp.Machine { return &crMid{} })
			r.MustRegister("CRTail", func() psharp.Machine { return &crTail{} })
			r.MustRegister("CRClient", func() psharp.Machine { return &crClient{} })
			r.MustRegister("CRMaster", func() psharp.Machine { return &crMaster{} })
			r.MustRegister("CRDetector", func() psharp.Machine { return &crDetector{} })
			// Creation order matters for the default schedule: the detector
			// precedes the client so the tail's progress report reaches it
			// promptly, while the master trails the client so the
			// reconfiguration races the client's remaining writes.
			head := r.MustCreate("CRHead", nil)
			mid := r.MustCreate("CRMid", nil)
			tail := r.MustCreate("CRTail", nil)
			detector := r.MustCreate("CRDetector", nil)
			client := r.MustCreate("CRClient", nil)
			master := r.MustCreate("CRMaster", nil)
			mustSend(r, head, &crServerConfig{Succ: mid})
			mustSend(r, mid, &crServerConfig{Succ: tail, Detector: detector})
			mustSend(r, tail, &crServerConfig{Head: head, Client: client})
			mustSend(r, detector, &crDetectorConfig{Mid: mid, Master: master})
			mustSend(r, client, &crClientConfig{Head: head, Writes: writes})
			mustSend(r, master, &crMasterConfig{Head: head, Tail: tail})
		},
	}
}
