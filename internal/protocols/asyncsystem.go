package protocols

import "github.com/psharp-go/psharp"

// AsyncSystemSim is the open-source stand-in for the proprietary Microsoft
// AsyncSystem of the paper's case study (Section 7.1), scaled down to the
// master/worker architecture of the paper's Section 3 figure: a Dispatcher
// machine coordinates a set of services built on an abstract base-service
// API. The dispatcher can change any service into a master (which then asks
// the workers to copy its state) or a worker, and in its Querying state it
// loops, sending nondeterministically chosen requests at the services.
//
// The Go side of the case study is used for runtime validation and the
// examples; the static-analysis side of Table 1 (including the seeded
// false-positive patterns) lives in the benchsrc package as a core-language
// program.

// Public events mirroring Figure 1 of the paper.

type asChangeToMaster struct {
	psharp.EventBase
	Workers []psharp.MachineID
}

type asChangeToWorker struct {
	psharp.EventBase
	Dispatcher psharp.MachineID
}

type asAck struct{ psharp.EventBase }

type asUpdateState struct{ psharp.EventBase }

type asCopyState struct {
	psharp.EventBase
	Data []int
}

type asClientRequest struct {
	psharp.EventBase
	Data int
}

type asServiceInit struct {
	psharp.EventBase
	ID         int
	Dispatcher psharp.MachineID
}

type asDispatcherConfig struct {
	psharp.EventBase
	Services []psharp.MachineID
	Rounds   int
}

// asService is the UserService of the paper's Figure 1: it inherits the
// base-service state machine (Init / Worker / Master) and implements the
// four abstract actions as ordinary methods.
type asService struct {
	psharp.StaticBase
	id         int
	dispatcher psharp.MachineID
	workers    []psharp.MachineID
	data       []int
}

func (s *asService) initializeState()                 { s.data = []int{0, 0, 0} }
func (s *asService) updateState()                     { s.data = append(s.data, s.id) }
func (s *asService) copyState(src []int)              { s.data = append([]int(nil), src...) }
func (s *asService) processClientRequest(req int) int { return req + s.id }

func (*asService) ConfigureType(sc *psharp.Schema) {
	toMaster := func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		s := m.(*asService)
		s.workers = ev.(*asChangeToMaster).Workers
		ctx.Send(s.dispatcher, &asAck{})
		for _, w := range s.workers {
			if w != ctx.ID() {
				// The master hands each worker a fresh copy of its state:
				// ownership of the payload transfers with the event.
				ctx.Send(w, &asCopyState{Data: append([]int(nil), s.data...)})
			}
		}
		ctx.Goto("Master")
	}
	toWorker := func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
		ctx.Send(m.(*asService).dispatcher, &asAck{})
		ctx.Goto("Worker")
	}

	sc.Start("Init").
		Defer(&asChangeToMaster{}).
		Defer(&asChangeToWorker{}).
		Defer(&asUpdateState{}).
		Defer(&asCopyState{}).
		OnEventDoM(&asServiceInit{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*asService)
			cfg := ev.(*asServiceInit)
			s.id = cfg.ID
			s.dispatcher = cfg.Dispatcher
			s.initializeState()
			ctx.Goto("Worker")
		})

	sc.State("Worker").
		OnEventDoM(&asUpdateState{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ctx.Write("service.data")
			m.(*asService).updateState()
		}).
		OnEventDoM(&asCopyState{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ctx.Write("service.data")
			m.(*asService).copyState(ev.(*asCopyState).Data)
		}).
		OnEventDoM(&asChangeToMaster{}, toMaster).
		OnEventDoM(&asChangeToWorker{}, toWorker).
		Ignore(&asClientRequest{}) // stale requests for a demoted master

	sc.State("Master").
		OnEventDoM(&asClientRequest{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ctx.Read("service.data")
			_ = m.(*asService).processClientRequest(ev.(*asClientRequest).Data)
		}).
		OnEventDoM(&asChangeToWorker{}, toWorker).
		OnEventDoM(&asChangeToMaster{}, toMaster).
		// A master keeps serving; state mutations during its reign arrive
		// once it is demoted back to a worker.
		Defer(&asUpdateState{}).
		Defer(&asCopyState{})
}

// asDispatcher is the Dispatcher of Figure 1: in the Querying state it
// loops, picking a service and one of four request kinds nondeterministically.
type asDispatcher struct {
	psharp.StaticBase
	services []psharp.MachineID
	rounds   int
}

func (*asDispatcher) ConfigureType(sc *psharp.Schema) {
	sc.Start("Boot").
		OnEventDoM(&asDispatcherConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*asDispatcher)
			cfg := ev.(*asDispatcherConfig)
			d.services = cfg.Services
			d.rounds = cfg.Rounds
			ctx.Raise(&asAck{})
		}).
		OnEventGoto(&asAck{}, "Querying")

	sc.State("Querying").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			d := m.(*asDispatcher)
			if d.rounds == 0 {
				for _, s := range d.services {
					ctx.Send(s, &psharp.HaltEvent{})
				}
				ctx.Halt()
				return
			}
			d.rounds--
			target := d.services[ctx.RandomInt(len(d.services))]
			switch ctx.RandomInt(4) {
			case 0:
				ctx.Send(target, &asUpdateState{})
				ctx.Raise(&asAck{}) // no ack expected; keep querying
			case 1:
				ctx.Send(target, &asClientRequest{Data: d.rounds})
				ctx.Raise(&asAck{})
			case 2:
				ctx.Send(target, &asChangeToMaster{Workers: d.services})
			case 3:
				ctx.Send(target, &asChangeToWorker{Dispatcher: ctx.ID()})
			}
		}).
		OnEventGoto(&asAck{}, "Querying")
}

func asyncSystemBenchmark() Benchmark {
	const numServices = 3
	const rounds = 6
	return Benchmark{
		Name:     "AsyncSystemSim",
		Buggy:    false,
		MaxSteps: 3000,
		Machines: numServices + 1,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("ASDispatcher", func() psharp.Machine { return &asDispatcher{} })
			r.MustRegister("ASService", func() psharp.Machine { return &asService{} })
			disp := r.MustCreate("ASDispatcher", nil)
			services := make([]psharp.MachineID, numServices)
			for i := range services {
				services[i] = r.MustCreate("ASService", nil)
				mustSend(r, services[i], &asServiceInit{ID: i + 1, Dispatcher: disp})
			}
			mustSend(r, disp, &asDispatcherConfig{Services: services, Rounds: rounds})
		},
	}
}
