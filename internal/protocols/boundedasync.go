package protocols

import "github.com/psharp-go/psharp"

// BoundedAsync (ported from the P benchmark suite): a scheduler machine and
// a ring of process machines that advance in rounds under a predefined
// bound. Every round, each process reports to the scheduler (baReq); once
// all have reported the scheduler broadcasts baResp, the processes advance
// their local round counters, exchange them with their neighbours, and the
// safety property is that two neighbours' counters never drift more than
// one round apart.
//
// Between broadcasting baResp and resuming counting, the scheduler performs
// a round trip with a ticker machine (modeling the timer-driven round pacing
// of the original benchmark) and sits in a transient Broadcasting state. A
// fast process can deliver its next baReq inside that window, so the
// Broadcasting state must defer baReq. The buggy variant forgets the defer —
// the paper's most common bug class ("forgetting to properly handle an
// event in some state") — and the runtime reports an unhandled event.

type baConfig struct {
	psharp.EventBase
	Scheduler psharp.MachineID
	Right     psharp.MachineID
}

type baReq struct{ psharp.EventBase }

type baResp struct{ psharp.EventBase }

type baVal struct {
	psharp.EventBase
	Round int
}

type baTick struct{ psharp.EventBase }

type baTock struct{ psharp.EventBase }

type baSchedulerSetup struct {
	psharp.EventBase
	Procs  []psharp.MachineID
	Ticker psharp.MachineID
	Rounds int
}

type baScheduler struct {
	psharp.StaticBase
	procs    []psharp.MachineID
	ticker   psharp.MachineID
	reqCount int
	round    int
	rounds   int
	buggy    bool
}

// ConfigureType declares the scheduler's schema once per registered type;
// buggy is a registration parameter the factory bakes into the probe.
func (probe *baScheduler) ConfigureType(sc *psharp.Schema) {
	sc.Start("Init").
		Defer(&baReq{}).
		OnEventDoM(&baSchedulerSetup{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*baScheduler)
			cfg := ev.(*baSchedulerSetup)
			s.procs = cfg.Procs
			s.ticker = cfg.Ticker
			s.rounds = cfg.Rounds
			ctx.Goto("Counting")
		})

	sc.State("Counting").
		OnEventDoM(&baReq{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			s := m.(*baScheduler)
			s.reqCount++
			ctx.Write("scheduler.reqCount")
			if s.reqCount < len(s.procs) {
				return
			}
			s.reqCount = 0
			s.round++
			if s.round > s.rounds {
				for _, p := range s.procs {
					ctx.Send(p, &psharp.HaltEvent{})
				}
				ctx.Send(s.ticker, &psharp.HaltEvent{})
				ctx.Halt()
				return
			}
			// The tick is dispatched before the responses, so the ticker's
			// round trip usually completes before any process can race a
			// new request into the Broadcasting window — the buggy missing
			// defer only bites in rare schedules (the paper reports 6%).
			ctx.Send(s.ticker, &baTick{})
			for _, p := range s.procs {
				ctx.Send(p, &baResp{})
			}
			ctx.Goto("Broadcasting")
		})

	broadcasting := sc.State("Broadcasting")
	broadcasting.OnEventGoto(&baTock{}, "Counting")
	if !probe.buggy {
		// The fix: requests that race ahead of the ticker round trip stay
		// queued until the scheduler is counting again.
		broadcasting.Defer(&baReq{})
	}
}

// baRelay is the network hop between the processes and the scheduler: it
// forwards requests unchanged.
type baRelay struct {
	psharp.StaticBase
	sched psharp.MachineID
}

func (*baRelay) ConfigureType(sc *psharp.Schema) {
	sc.Start("Forwarding").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*baRelay).sched = ev.(*baConfig).Scheduler
		}).
		OnEventDo(&baReq{}, func(ctx *psharp.Context, ev psharp.Event) {
			// Two queue passes per request: the relay models a network with
			// store-and-forward latency.
			ctx.Send(ctx.ID(), &baFwd{})
		}).
		OnEventDoM(&baFwd{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ctx.Send(m.(*baRelay).sched, &baReq{})
		})
}

// baFwd paces a relayed request through the relay's own queue.
type baFwd struct{ psharp.EventBase }

type baTicker struct {
	psharp.StaticBase
	sched psharp.MachineID
}

func (*baTicker) ConfigureType(sc *psharp.Schema) {
	sc.Start("Idle").
		OnEntryM(func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			m.(*baTicker).sched = ev.(*baConfig).Scheduler
		}).
		OnEventDoM(&baTick{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			ctx.Send(m.(*baTicker).sched, &baTock{})
		})
}

type baProcess struct {
	psharp.StaticBase
	sched psharp.MachineID
	right psharp.MachineID
	round int
}

// Process requests travel through a relay machine (the "network" between
// the processes and the scheduler), so a request needs two hops to race
// ahead of the ticker's one-hop round trip — keeping the buggy missing
// defer a rare event, as in the paper (6% of schedules).

func (*baProcess) ConfigureType(sc *psharp.Schema) {
	sc.Start("Init").
		// A configured left neighbour may exchange values before this
		// process has seen its own configuration event.
		Defer(&baVal{}).
		OnEventDoM(&baConfig{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*baProcess)
			cfg := ev.(*baConfig)
			p.sched = cfg.Scheduler
			p.right = cfg.Right
			ctx.Send(p.sched, &baReq{})
			ctx.Goto("Syncing")
		})
	sc.State("Syncing").
		OnEventDoM(&baResp{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*baProcess)
			p.round++
			ctx.Write("process.round")
			ctx.Send(p.right, &baVal{Round: p.round})
			ctx.Send(p.sched, &baReq{})
		}).
		OnEventDoM(&baVal{}, func(m psharp.Machine, ctx *psharp.Context, ev psharp.Event) {
			p := m.(*baProcess)
			v := ev.(*baVal)
			ctx.Read("process.round")
			diff := v.Round - p.round
			if diff < 0 {
				diff = -diff
			}
			ctx.Assert(diff <= 1, "round drift %d between neighbours (mine %d, theirs %d)",
				diff, p.round, v.Round)
		})
}

func boundedAsyncBenchmark(buggy bool) Benchmark {
	const numProcs = 3
	const rounds = 3
	return Benchmark{
		Name:     "BoundedAsync",
		Buggy:    buggy,
		MaxSteps: 2000,
		Machines: numProcs + 2,
		Setup: func(r *psharp.Runtime) {
			r.MustRegister("BAScheduler", func() psharp.Machine { return &baScheduler{buggy: buggy} })
			r.MustRegister("BATicker", func() psharp.Machine { return &baTicker{} })
			r.MustRegister("BARelay", func() psharp.Machine { return &baRelay{} })
			r.MustRegister("BAProcess", func() psharp.Machine { return &baProcess{} })
			sched := r.MustCreate("BAScheduler", nil)
			ticker := r.MustCreate("BATicker", &baConfig{Scheduler: sched})
			relay := r.MustCreate("BARelay", &baConfig{Scheduler: sched})
			procs := make([]psharp.MachineID, numProcs)
			for i := range procs {
				procs[i] = r.MustCreate("BAProcess", nil)
			}
			for i, p := range procs {
				// Processes talk to the scheduler through the relay.
				mustSend(r, p, &baConfig{Scheduler: relay, Right: procs[(i+1)%numProcs]})
			}
			mustSend(r, sched, &baSchedulerSetup{Procs: procs, Ticker: ticker, Rounds: rounds})
		},
	}
}

// mustSend is a setup helper: environment sends cannot legitimately fail.
func mustSend(r *psharp.Runtime, target psharp.MachineID, ev psharp.Event) {
	if err := r.SendEvent(target, ev); err != nil {
		panic(err)
	}
}
