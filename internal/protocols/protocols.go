// Package protocols contains the PSharpBench benchmark suite from the
// paper's evaluation (Section 7.2): P# implementations of well-known
// distributed algorithms, each in a correct variant (used to validate the
// runtime and the static analysis story) and a buggy variant (used for the
// Table 2 scheduler comparison). As in the paper, the programs are
// single-box, shared-state simulations of the distributed algorithms, with
// additional nondeterministic machines modeling the environment (failures,
// client choices, timers).
//
// The buggy variants follow the paper's description of its bugs: most are
// genuine state-machine mistakes — forgetting to handle (or defer) an event
// in some state — while BasicPaxos and MultiPaxos carry injected assertion
// bugs, German additionally has a livelock, and the ChainReplication bug
// hangs off the environment's random choices and therefore shows up in
// almost every schedule.
package protocols

import (
	"fmt"

	"github.com/psharp-go/psharp"
)

// Benchmark describes one entry of the suite.
type Benchmark struct {
	// Name is the benchmark's name as used in the paper's tables.
	Name string
	// Buggy selects the buggy variant.
	Buggy bool
	// Setup builds the program in a runtime (register types + create the
	// harness machines).
	Setup func(r *psharp.Runtime)
	// MaxSteps is the recommended per-iteration depth bound.
	MaxSteps int
	// Machines is the number of machine instances the program creates
	// (the paper's #T column counts threads per execution).
	Machines int
	// LivelockAsBug marks benchmarks whose bug is (partly) a livelock and
	// therefore needs the depth bound reported as a bug (German).
	LivelockAsBug bool
	// Monitors, if non-nil, registers the protocol's specification monitors
	// (safety invariants and hot/cold liveness properties) on the runtime.
	// Kept separate from Setup so the Table 2 measurements stay comparable
	// to the paper; attach them with SetupMonitored (psharp-test -monitors).
	Monitors func(r *psharp.Runtime)
	// Temperature is the recommended TestConfig.LivenessTemperature for the
	// benchmark's liveness monitors; 0 means the benchmark carries no
	// liveness specification.
	Temperature int
	// FairPrefix is the recommended random-prefix length for
	// sct.NewRandomFair on this benchmark (only meaningful with Temperature).
	FairPrefix int
	// FaultImmune lists machine types that model reliable infrastructure
	// (stable storage, the specification harness) and must never be faulted;
	// wire it into sct.FaultOptions.Immune when exploring with fault
	// injection. Empty for benchmarks not designed for fault injection.
	FaultImmune []string
}

// SetupMonitored returns Setup with the benchmark's specification monitors
// attached (identical to Setup when the benchmark declares none). Monitors
// make no scheduling decisions, so the explored schedules and their traces
// are unchanged by attaching them.
func (b Benchmark) SetupMonitored() func(r *psharp.Runtime) {
	if b.Monitors == nil {
		return b.Setup
	}
	setup, monitors := b.Setup, b.Monitors
	return func(r *psharp.Runtime) {
		setup(r)
		monitors(r)
	}
}

// ID returns a unique key such as "German(buggy)".
func (b Benchmark) ID() string {
	if b.Buggy {
		return b.Name + "(buggy)"
	}
	return b.Name
}

// All returns the full suite: for every protocol the correct variant and,
// where defined, the buggy one. Ordering matches the paper's Table 2. The
// liveness benchmarks are not included — their bugs are only observable
// through monitors under fair scheduling, so they are not comparable to the
// Table 2 safety measurements; see Liveness.
func All() []Benchmark {
	var out []Benchmark
	for _, name := range Names() {
		for _, buggy := range []bool{false, true} {
			b, ok := ByName(name, buggy)
			if !ok {
				continue
			}
			out = append(out, b)
		}
	}
	return out
}

// Names lists the protocol names in Table 2 order.
func Names() []string {
	return []string{
		"BoundedAsync", "German", "BasicPaxos", "TwoPhaseCommit",
		"Chord", "MultiPaxos", "Raft", "ChainReplication", "AsyncSystemSim",
	}
}

// Liveness returns the liveness benchmark suite: protocols whose seeded
// bugs violate a monitor-expressed "eventually" property rather than a
// safety one. They run with the benchmark's Monitors attached
// (SetupMonitored), TestConfig.LivenessTemperature set to the benchmark's
// Temperature, and a fair strategy (sct.NewRandomFair with the benchmark's
// FairPrefix) — an unfair scheduler cannot soundly report their bugs at
// all, and a plain random run simply sees nothing.
func Liveness() []Benchmark {
	return []Benchmark{
		fairResponderBenchmark(false),
		fairResponderBenchmark(true),
	}
}

// FaultTolerant returns the crash-tolerant benchmark suite: protocols
// written to survive machine crashes, restarts and message faults, whose
// buggy variants hide bugs that only a fault can expose. They run with
// their Monitors attached (SetupMonitored) and fault injection enabled
// (sct.FaultOptions with the benchmark's FaultImmune list) — a fault-free
// run explores only schedules where the bug cannot manifest.
func FaultTolerant() []Benchmark {
	return []Benchmark{
		twoPhaseCommitFTBenchmark(false),
		twoPhaseCommitFTBenchmark(true),
	}
}

// ByName returns the benchmark with the given name and variant.
func ByName(name string, buggy bool) (Benchmark, bool) {
	switch name {
	case "BoundedAsync":
		return boundedAsyncBenchmark(buggy), true
	case "German":
		return germanBenchmark(buggy), true
	case "BasicPaxos":
		return basicPaxosBenchmark(buggy), true
	case "TwoPhaseCommit":
		return twoPhaseCommitBenchmark(buggy), true
	case "Chord":
		return chordBenchmark(buggy), true
	case "MultiPaxos":
		return multiPaxosBenchmark(buggy), true
	case "Raft":
		return raftBenchmark(buggy), true
	case "ChainReplication":
		return chainReplicationBenchmark(buggy), true
	case "AsyncSystemSim":
		if buggy {
			return Benchmark{}, false // analysis-only case study; no seeded bug
		}
		return asyncSystemBenchmark(), true
	case "FairResponder":
		return fairResponderBenchmark(buggy), true
	case "TwoPhaseCommitFT":
		return twoPhaseCommitFTBenchmark(buggy), true
	default:
		return Benchmark{}, false
	}
}

// MustByName is ByName that panics when the benchmark does not exist.
func MustByName(name string, buggy bool) Benchmark {
	b, ok := ByName(name, buggy)
	if !ok {
		panic(fmt.Sprintf("protocols: no benchmark %q (buggy=%v)", name, buggy))
	}
	return b
}
